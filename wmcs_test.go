package wmcs

import (
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
)

func smallCloud(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64() * 10
		}
		pts[i] = p
	}
	return pts
}

func TestNewEuclideanNetwork(t *testing.T) {
	nw := NewEuclideanNetwork([][]float64{{0, 0}, {3, 4}}, 2, 0)
	if nw.N() != 2 || math.Abs(nw.C(0, 1)-25) > 1e-9 {
		t.Fatalf("C(0,1) = %g want 25", nw.C(0, 1))
	}
}

func TestNewSymmetricNetwork(t *testing.T) {
	nw, err := NewSymmetricNetwork([][]float64{{0, 2}, {2, 0}}, 0)
	if err != nil || nw.C(0, 1) != 2 {
		t.Fatalf("err=%v", err)
	}
	if _, err := NewSymmetricNetwork([][]float64{{0, 1}, {2, 0}}, 0); err == nil {
		t.Error("asymmetric matrix accepted")
	}
	if _, err := NewSymmetricNetwork([][]float64{{0, 1}}, 0); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestByNameAllMechanismsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range MechanismNames() {
		var nw *Network
		switch name {
		case "alpha1-shapley", "alpha1-mc":
			nw = NewEuclideanNetwork(smallCloud(rng, 6, 2), 1, 0)
		case "line-shapley", "line-mc":
			nw = NewEuclideanNetwork(smallCloud(rng, 6, 1), 2, 0)
		default:
			nw = NewEuclideanNetwork(smallCloud(rng, 6, 2), 2, 0)
		}
		m, err := ByName(name, nw)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		u := make(Profile, nw.N())
		for i := range u {
			u[i] = rng.Float64() * 50
		}
		o := m.Run(u)
		isMC := name == "universal-mc" || name == "alpha1-mc" || name == "line-mc"
		if !isMC && len(o.Receivers) > 0 {
			// Budget-balanced family: full axiom bundle incl. cost recovery.
			if err := Verify(u, o); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if isMC && o.TotalShares() > o.Cost+1e-7 {
			// Efficient family: may run a deficit but never a surplus.
			t.Fatalf("%s collected a surplus: %g > %g", name, o.TotalShares(), o.Cost)
		}
		if err := VerifyStrategyproof(m, u); err != nil {
			t.Fatalf("%s not strategyproof: %v", name, err)
		}
	}
}

func TestByNameValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nw2 := NewEuclideanNetwork(smallCloud(rng, 5, 2), 2, 0)
	if _, err := ByName("alpha1-shapley", nw2); err == nil {
		t.Error("alpha1 on α=2 accepted")
	}
	if _, err := ByName("line-mc", nw2); err == nil {
		t.Error("line mechanism on d=2 accepted")
	}
	if _, err := ByName("bogus", nw2); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestOptimalCostDispatch(t *testing.T) {
	nw := NewEuclideanNetwork([][]float64{{0}, {1}, {2}}, 2, 0)
	if got := OptimalCost(nw, []int{2}); math.Abs(got-2) > 1e-9 {
		t.Errorf("line optimal = %g want 2 (two unit hops)", got)
	}
	if OptimalCost(nw, nil) != 0 {
		t.Error("empty R should cost 0")
	}
}

// End-to-end smoke: the BB mechanism recovers cost and stays within the
// paper's bound on a small network, via only the public API.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw := NewEuclideanNetwork(smallCloud(rng, 8, 2), 2, 0)
	m := WirelessBudgetBalanced(nw)
	u := make(Profile, nw.N())
	for i := range u {
		u[i] = 1e8
	}
	o := m.Run(u)
	if len(o.Receivers) != nw.N()-1 {
		t.Fatalf("receivers = %v", o.Receivers)
	}
	opt := OptimalCost(nw, o.Receivers)
	if o.TotalShares() < o.Cost-1e-7 {
		t.Error("cost recovery failed")
	}
	k := float64(len(o.Receivers))
	if o.TotalShares() > 2*(1+2*math.Log(k))*opt+1e-7 {
		t.Errorf("shares %g far above bound (opt %g)", o.TotalShares(), opt)
	}
}

// Serving smoke via only the public API: register a spec, serve one
// query over HTTP, and watch the repeat hit the cache byte-identically.
func TestPublicServingSurface(t *testing.T) {
	reg := NewRegistry()
	if err := reg.RegisterSpec(Spec{Name: "pub", Scenario: "uniform", N: 8, Alpha: 2, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, ServeOptions{})
	defer s.Close()
	entry, ok := reg.Get("pub")
	if !ok {
		t.Fatal("registered network missing")
	}
	body := `{"network":"pub","mech":"universal-shapley","profile":[0,5,5,5,5,5,5,5]}`
	post := func() (*httptest.ResponseRecorder, string) {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest("POST", "/v1/evaluate", strings.NewReader(body)))
		return w, w.Header().Get("X-Wmcs-Cache")
	}
	cold, src1 := post()
	warm, src2 := post()
	if cold.Code != 200 || warm.Code != 200 {
		t.Fatalf("status %d/%d: %s", cold.Code, warm.Code, cold.Body.String())
	}
	if src1 != "miss" || src2 != "hit" {
		t.Fatalf("cache sources %q/%q, want miss/hit", src1, src2)
	}
	if cold.Body.String() != warm.Body.String() {
		t.Fatal("cache hit not byte-identical to cold response")
	}
	if entry.Ev == nil || entry.Net.N() != 8 {
		t.Fatalf("registry entry malformed: %+v", entry)
	}
}

// Lifecycle smoke via only the public API: mutate a network through the
// aliased ops, drive a versioned evaluator, and PATCH a hosted network
// over HTTP watching the version advance.
func TestPublicLifecycleSurface(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nw := NewEuclideanNetwork(smallCloud(rng, 8, 2), 2, 0)
	if nw.Version() != 0 {
		t.Fatalf("fresh version %d", nw.Version())
	}
	v := NewVersionedEvaluator(nw)
	u := make(Profile, nw.N())
	for i := 1; i < nw.N(); i++ {
		u[i] = 25
	}
	before, err := v.Evaluator().Evaluate(MechUniversalShapley, nil, u)
	if err != nil {
		t.Fatal(err)
	}
	up := NetworkUpdate{Moves: []MoveOp{{Station: 2, Point: []float64{0.5, 0.5}}}}
	if res, err := v.Update(up.Apply); err != nil || res.NewVersion != 1 {
		t.Fatalf("Update: %+v err=%v", res, err)
	}
	after, err := v.Evaluator().Evaluate(MechUniversalShapley, nil, u)
	if err != nil {
		t.Fatal(err)
	}
	if before.Cost == after.Cost {
		t.Log("note: move left the tree cost unchanged (possible but unusual)")
	}

	// And over HTTP: PATCH bumps the hosted network's version.
	reg := NewRegistry()
	if err := reg.RegisterSpec(Spec{Name: "live", Scenario: "uniform", N: 8, Alpha: 2, Seed: 6}); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, ServeOptions{})
	defer s.Close()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("PATCH", "/v1/networks/live",
		strings.NewReader(`{"move":[{"station":3,"point":[1.0,2.0]}]}`)))
	if w.Code != 200 {
		t.Fatalf("PATCH: %d %s", w.Code, w.Body.String())
	}
	entry, _ := reg.Get("live")
	if got := entry.Ev.Version(); got != 1 {
		t.Fatalf("hosted version %d after PATCH, want 1", got)
	}
}
