package wmcs

import (
	"errors"
	"math/rand"
	"os"
	"strings"
	"testing"

	"wmcs/internal/mechreg"
)

// TestREADMEMechanismTableInSync regenerates the README's mechanism
// table from the descriptor registry and fails if the embedded copy
// drifted — the registry is the single source of truth for names,
// domains and guarantees, and the docs table is generated output, not a
// second declaration. To update README.md, paste mechreg.MarkdownTable()
// between the mechtable markers.
func TestREADMEMechanismTableInSync(t *testing.T) {
	const begin = "<!-- mechtable:begin"
	const end = "<!-- mechtable:end -->"
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	bi := strings.Index(s, begin)
	ei := strings.Index(s, end)
	if bi < 0 || ei < 0 || ei < bi {
		t.Fatal("README.md has no mechtable markers")
	}
	// The block starts after the marker's line break.
	block := s[bi:ei]
	block = block[strings.Index(block, "\n")+1:]
	want := mechreg.MarkdownTable()
	if block != want {
		t.Fatalf("README mechanism table drifted from the registry.\n-- README --\n%s\n-- registry --\n%s", block, want)
	}
}

// TestFacadeRegistrySurface pins the public registry surface: the name
// constants resolve through ByName, Mechanisms() mirrors the registry,
// SupportedMechanisms matches the evaluator's accept set, and the typed
// errors surface through the façade.
func TestFacadeRegistrySurface(t *testing.T) {
	names := MechanismNames()
	if len(Mechanisms()) != len(names) {
		t.Fatalf("Mechanisms()/MechanismNames() length mismatch")
	}
	constants := []string{
		MechUniversalShapley, MechUniversalMC, MechWirelessBB,
		MechAlpha1Shapley, MechAlpha1MC, MechLineShapley, MechLineMC, MechJVMoat,
	}
	if len(constants) != len(names) {
		t.Fatalf("exported name constants: %d, registry: %d — keep them in sync", len(constants), len(names))
	}
	for i, c := range constants {
		if c != names[i] {
			t.Errorf("constant %d is %q, registry order says %q", i, c, names[i])
		}
	}
	rng := rand.New(rand.NewSource(4))
	nw := NewEuclideanNetwork(smallCloud(rng, 7, 2), 2, 0) // planar α=2
	supported := SupportedMechanisms(nw)
	if len(supported) != 4 {
		t.Fatalf("planar α=2 supports %v", supported)
	}
	// Facade constructors report registry names.
	if m := UniversalShapley(nw); m.Name() != MechUniversalShapley {
		t.Errorf("UniversalShapley(nw).Name() = %q", m.Name())
	}
	if m := WirelessBudgetBalanced(nw); m.Name() != MechWirelessBB {
		t.Errorf("WirelessBudgetBalanced(nw).Name() = %q", m.Name())
	}
	// Typed errors through ByName.
	if _, err := ByName("bogus", nw); !errors.Is(err, ErrUnknownMechanism) {
		t.Errorf("ByName(bogus) = %v, want ErrUnknownMechanism", err)
	}
	if _, err := ByName(MechLineShapley, nw); !errors.Is(err, ErrUnsupportedDomain) {
		t.Errorf("ByName(line-shapley, planar) = %v, want ErrUnsupportedDomain", err)
	}
}
