// Package wmcs is the public façade of the reproduction of Bilò,
// Flammini, Melideo, Moscardelli, Navarra: "Sharing the cost of multicast
// transmissions in wireless networks" (SPAA 2004 / TCS 369 (2006)).
//
// It exposes the wireless network model, every cost-sharing mechanism the
// paper constructs, and the axiom checkers of the simulated evaluation:
//
//   - UniversalShapley / UniversalMC — §2.1 mechanisms on a fixed
//     universal broadcast tree (budget balanced group-strategyproof vs
//     efficient strategyproof);
//   - WirelessBudgetBalanced — the §2.2.3 3·ln(k+1)-BB mechanism for
//     general symmetric networks via the NWST reduction;
//   - Alpha1Shapley / Alpha1MC and LineShapley / LineMC — the optimal
//     Euclidean mechanisms of Theorem 3.2 (α = 1 or d = 1);
//   - Moat — the Theorem 3.6/3.7 Jain–Vazirani family, 2(3^d−1)-BB
//     (12-BB at d = 2) and group strategyproof.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the measured
// reproduction of every theorem and figure.
package wmcs

import (
	"fmt"

	"wmcs/internal/geom"
	"wmcs/internal/graph"
	"wmcs/internal/instances"
	"wmcs/internal/jv"
	"wmcs/internal/mech"
	"wmcs/internal/mechreg"
	"wmcs/internal/query"
	"wmcs/internal/serve"
	"wmcs/internal/wireless"
)

// Network is a symmetric wireless network (see internal/wireless).
type Network = wireless.Network

// Assignment is a power assignment over the stations.
type Assignment = wireless.Assignment

// Profile is a reported utility profile indexed by station id.
type Profile = mech.Profile

// Outcome is a mechanism outcome: receivers, shares and solution cost.
type Outcome = mech.Outcome

// Mechanism is a cost-sharing mechanism.
type Mechanism = mech.Mechanism

// NewEuclideanNetwork builds a network from d-dimensional station
// coordinates with power cost dist^alpha and the given source station.
func NewEuclideanNetwork(points [][]float64, alpha float64, source int) *Network {
	pts := make([]geom.Point, len(points))
	for i, p := range points {
		pts[i] = geom.Point(p)
	}
	return wireless.NewEuclidean(pts, geom.NewPowerCost(alpha), source)
}

// NewSymmetricNetwork builds an abstract symmetric network from a cost
// matrix given as rows (costs[i][j] must equal costs[j][i]).
func NewSymmetricNetwork(costs [][]float64, source int) (*Network, error) {
	n := len(costs)
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		if len(costs[i]) != n {
			return nil, fmt.Errorf("wmcs: row %d has %d entries, want %d", i, len(costs[i]), n)
		}
		for j := i + 1; j < n; j++ {
			if costs[i][j] != costs[j][i] {
				return nil, fmt.Errorf("wmcs: asymmetric cost at (%d,%d)", i, j)
			}
			m.Set(i, j, costs[i][j])
		}
	}
	return wireless.NewSymmetric(m, source), nil
}

// The registry mechanism names, re-exported so callers can name a
// mechanism (Evaluate, EvaluateBatch, ByName) without spelling the
// string: the descriptor registry (internal/mechreg, DESIGN.md §9) is
// the single source of truth for names, domains and guarantees.
const (
	MechUniversalShapley = mechreg.UniversalShapley
	MechUniversalMC      = mechreg.UniversalMC
	MechWirelessBB       = mechreg.WirelessBB
	MechAlpha1Shapley    = mechreg.Alpha1Shapley
	MechAlpha1MC         = mechreg.Alpha1MC
	MechLineShapley      = mechreg.LineShapley
	MechLineMC           = mechreg.LineMC
	MechJVMoat           = mechreg.JVMoat
)

// ErrUnknownMechanism and ErrUnsupportedDomain are the registry's typed
// lookup errors: every name-resolution failure out of ByName or an
// Evaluator wraps one of them — branch with errors.Is.
var (
	ErrUnknownMechanism  = mechreg.ErrUnknownMechanism
	ErrUnsupportedDomain = mechreg.ErrUnsupportedDomain
)

// MechanismInfo describes one registry mechanism: name, family, domain,
// paper anchor, and the declared guarantees the conformance suite
// verifies. See Mechanisms.
type MechanismInfo = mechreg.Descriptor

// Mechanisms returns the descriptor registry in presentation order —
// the machine-readable form of the README's mechanism table. The slice
// is the caller's to keep: mutating it cannot corrupt the registry.
func Mechanisms() []MechanismInfo {
	return append([]MechanismInfo(nil), mechreg.All()...)
}

// mustBuild constructs a registry mechanism for nw, panicking on a
// domain mismatch — the behavior the one-shot constructors have always
// had (euclid1's constructors panicked on the wrong network class).
func mustBuild(name string, nw *Network) Mechanism {
	m, err := mechreg.Build(name, mechreg.NewBuildContext(nw))
	if err != nil {
		panic(err)
	}
	return m
}

// UniversalShapley returns the §2.1 budget-balanced group-strategyproof
// Shapley mechanism on a shortest-path universal tree.
func UniversalShapley(nw *Network) Mechanism {
	return mustBuild(MechUniversalShapley, nw)
}

// UniversalMC returns the §2.1 efficient strategyproof marginal-cost
// mechanism on a shortest-path universal tree.
func UniversalMC(nw *Network) Mechanism {
	return mustBuild(MechUniversalMC, nw)
}

// WirelessBudgetBalanced returns the §2.2.3 mechanism: 3·ln(k+1)-BB,
// strategyproof, NPT/VP/CS, for arbitrary symmetric networks.
func WirelessBudgetBalanced(nw *Network) Mechanism {
	return mustBuild(MechWirelessBB, nw)
}

// Alpha1Shapley returns the Theorem 3.2 optimally budget-balanced
// mechanism for Euclidean networks with α = 1.
func Alpha1Shapley(nw *Network) Mechanism {
	return mustBuild(MechAlpha1Shapley, nw)
}

// Alpha1MC returns the Theorem 3.2 efficient mechanism for α = 1.
func Alpha1MC(nw *Network) Mechanism {
	return mustBuild(MechAlpha1MC, nw)
}

// LineShapley returns the Theorem 3.2 optimally budget-balanced mechanism
// for 1-dimensional networks.
func LineShapley(nw *Network) Mechanism {
	return mustBuild(MechLineShapley, nw)
}

// LineMC returns the Theorem 3.2 efficient mechanism for d = 1.
func LineMC(nw *Network) Mechanism {
	return mustBuild(MechLineMC, nw)
}

// Moat returns the Theorem 3.6/3.7 Jain–Vazirani moat mechanism
// (2(3^d−1)-BB, group strategyproof); weights parameterize the family.
// nil weights select the uniform member — the registry's jv-moat — and
// custom weights a non-registry family member (reported under the
// package-internal "moat" name).
func Moat(nw *Network, weights func(agent int) float64) Mechanism {
	if weights == nil {
		return mustBuild(MechJVMoat, nw)
	}
	return jv.NewMechanism(nw, weights)
}

// Evaluator is the reusable query engine over one fixed network: it
// caches the per-network substrates (NWST reduction, universal tree,
// interval tables, one mechanism instance per name) and serves any number
// of Evaluate/EvaluateBatch queries against them. Build one per network
// with NewEvaluator; see internal/query and DESIGN.md §7.
type Evaluator = query.Evaluator

// Request is one EvaluateBatch query: mechanism name, candidate receiver
// set (nil = all stations) and reported profile.
type Request = query.Request

// Response is the outcome of one batched query.
type Response = query.Response

// NewEvaluator builds the query engine for a network. All per-network
// construction happens lazily on the first query that needs it, so this
// is cheap; repeated queries then amortize it.
func NewEvaluator(nw *Network) *Evaluator { return query.NewEvaluator(nw) }

// MechanismNames lists the names accepted by ByName and the Evaluator,
// in registry order.
func MechanismNames() []string { return mechreg.Names() }

// SupportedMechanisms lists, in registry order, the mechanism names
// whose declared domain admits nw — the names Evaluate will accept
// rather than reject with ErrUnsupportedDomain.
func SupportedMechanisms(nw *Network) []string { return mechreg.SupportedNames(nw) }

// ByName constructs a fresh mechanism by its registry name, validating
// the network against the mechanism's requirements. For repeated queries
// prefer NewEvaluator, which caches the mechanism and its substrates.
func ByName(name string, nw *Network) (Mechanism, error) {
	return query.NewEvaluator(nw).Mechanism(name)
}

// Spec names one network drawn from the scenario registry (family,
// size, gradient, seed); it is the unit of manifest-driven construction
// for the serving layer. Building the same Spec always yields the same
// network.
type Spec = instances.Spec

// NetworkUpdate is one atomic network delta — the wire form of the
// serving layer's PATCH /v1/networks/{name} and the unit the churn
// models emit. Networks themselves carry the underlying mutation ops
// (SetCost, MoveStation, SetStationEnabled, Snapshot, Version), since
// Network aliases the wireless type; see DESIGN.md §10 for the
// lifecycle contract.
type NetworkUpdate = instances.Update

// CostSet and MoveOp are NetworkUpdate's op types: a symmetric cost
// assignment and a station relocation.
type (
	CostSet = instances.CostSet
	MoveOp  = instances.MoveOp
)

// VersionedEvaluator is the live-network face of the query engine: a
// lock-free Current() view for queries plus an Update method that
// applies a mutation atomically and swaps in a rebuilt evaluator while
// in-flight queries drain against the old one. The serving registry
// runs one per hosted network.
type VersionedEvaluator = query.VersionedEvaluator

// NewVersionedEvaluator wraps a network (snapshotted at entry) in a
// versioned evaluator.
func NewVersionedEvaluator(nw *Network) *VersionedEvaluator { return query.NewVersioned(nw) }

// Registry hosts named networks for serving, one shared Evaluator per
// network. Populate it with RegisterSpec/Register (or LoadManifest) and
// hand it to NewServer; see internal/serve and DESIGN.md §8.
type Registry = serve.Registry

// Server is the HTTP face of the query service: /v1/networks,
// /v1/evaluate, /v1/batch, /healthz and /statsz over a registry, with
// canonicalized result caching, singleflight coalescing and admission
// batching. It implements http.Handler; Close it when done.
type Server = serve.Server

// ServeOptions tune a Server (cache capacity and sharding, engine-pool
// width, admission batch size); the zero value selects the defaults.
type ServeOptions = serve.Options

// NewRegistry returns an empty serving registry.
func NewRegistry() *Registry { return serve.NewRegistry() }

// NewServer builds the query service over a registry. Serve it with any
// http.Server (it is an http.Handler); cmd/wmcsd is the packaged
// daemon, cmd/wmcsload the workload driver against it.
func NewServer(reg *Registry, opts ServeOptions) *Server { return serve.NewServer(reg, opts) }

// OptimalCost returns C*(R) from the best exact solver available for the
// network class (closed forms for α = 1 and d = 1, subset-Dijkstra
// otherwise; the latter is limited to small n).
func OptimalCost(nw *Network, R []int) float64 {
	return wireless.OptimalMulticastCost(nw, R)
}

// Verify checks NPT, VP and cost recovery of an outcome under a profile.
func Verify(u Profile, o Outcome) error { return mech.CheckAll(u, o) }

// VerifyStrategyproof probes the mechanism with the default deviation
// factors around the given truthful profile.
func VerifyStrategyproof(m Mechanism, truth Profile) error {
	return mech.CheckStrategyproof(m, truth, nil)
}
