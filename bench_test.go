package wmcs

// Benchmark harness: one benchmark per experiment table of the simulated
// evaluation (DESIGN.md §4) — BenchmarkE01…BenchmarkE13 and the ablations
// BenchmarkA01/A04 regenerate the same rows cmd/benchtab prints — plus
// micro benchmarks of the algorithmic substrates the mechanisms stand on,
// and the serial-vs-parallel RunAll pair exposing the engine speedup.

import (
	"io"
	"math/rand"
	"testing"

	"wmcs/internal/euclid1"
	"wmcs/internal/experiments"
	"wmcs/internal/instances"
	"wmcs/internal/jv"
	"wmcs/internal/mech"
	"wmcs/internal/memtred"
	"wmcs/internal/mst"
	"wmcs/internal/nwst"
	"wmcs/internal/nwstmech"
	"wmcs/internal/query"
	"wmcs/internal/sharing"
	"wmcs/internal/steiner"
	"wmcs/internal/universal"
	"wmcs/internal/wireless"
	"wmcs/internal/wmech"
)

func benchExperiment(b *testing.B, id string) {
	e := experiments.Lookup(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := experiments.Config{Quick: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := e.Run(cfg)
		tab.Render(io.Discard)
	}
}

func BenchmarkE01UniversalSubmodular(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE02UniversalShapley(b *testing.B)    { benchExperiment(b, "E2") }
func BenchmarkE03UniversalMC(b *testing.B)         { benchExperiment(b, "E3") }
func BenchmarkE04Fig1Collusion(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE05NWSTMechanism(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE06WirelessBB(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE07Alpha1(b *testing.B)              { benchExperiment(b, "E7") }
func BenchmarkE08Line(b *testing.B)                { benchExperiment(b, "E8") }
func BenchmarkE09PentagonCore(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10MSTRatio(b *testing.B)            { benchExperiment(b, "E10") }
func BenchmarkE11MoatMechanism(b *testing.B)       { benchExperiment(b, "E11") }
func BenchmarkE12Multicast(b *testing.B)           { benchExperiment(b, "E12") }
func BenchmarkE13ScenarioSweep(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14ShareStability(b *testing.B)      { benchExperiment(b, "E14") }
func BenchmarkE15UpdateLatency(b *testing.B)       { benchExperiment(b, "E15") }
func BenchmarkE15bFullRebuild(b *testing.B)        { benchExperiment(b, "E15b") }
func BenchmarkA01TreeChoice(b *testing.B)          { benchExperiment(b, "A1") }
func BenchmarkA04EfficiencyLoss(b *testing.B)      { benchExperiment(b, "A4") }

// BenchmarkRunAllSerial/Parallel expose the engine speedup: identical
// bytes, different wall clock (compare ns/op at -cpu settings ≥ 4).
func BenchmarkRunAllSerial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunAll(io.Discard, experiments.Config{Quick: true, Workers: 1})
	}
}

func BenchmarkRunAllParallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.RunAll(io.Discard, experiments.Config{Quick: true})
	}
}

// --- the amortized query path vs the one-shot path ---

// repeatedQuerySetup builds one network and a fixed set of profiles, the
// shape of the E6/E13 hot path: many receiver-set queries against one
// fixed network.
func repeatedQuerySetup() (*wireless.Network, []mech.Profile) {
	rng := rand.New(rand.NewSource(21))
	nw := instances.RandomEuclidean(rng, 10, 2, 2, 10)
	profiles := make([]mech.Profile, 8)
	for i := range profiles {
		profiles[i] = mech.RandomProfile(rng, nw.N(), 50)
	}
	return nw, profiles
}

// BenchmarkOneShotQueries rebuilds the whole pipeline (reduction, states)
// for every query — the pre-Evaluator pattern.
func BenchmarkOneShotQueries(b *testing.B) {
	nw, profiles := repeatedQuerySetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range profiles {
			m := wmech.New(nw, nwst.KleinRaviOracle)
			m.Run(u)
		}
	}
}

// BenchmarkEvaluatorRepeatedQueries serves the same queries from one
// Evaluator, amortizing the reduction and the contraction-state pool.
// Compare allocs/op and ns/op with BenchmarkOneShotQueries.
func BenchmarkEvaluatorRepeatedQueries(b *testing.B) {
	nw, profiles := repeatedQuerySetup()
	ev := query.NewEvaluator(nw, query.WithOracle(nwst.KleinRaviOracle))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range profiles {
			if _, err := ev.Evaluate("wireless-bb", nil, u); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEvaluatorBatch is the same workload through EvaluateBatch on a
// GOMAXPROCS-wide pool (byte-identical outcomes to the serial loop).
func BenchmarkEvaluatorBatch(b *testing.B) {
	nw, profiles := repeatedQuerySetup()
	ev := query.NewEvaluator(nw, query.WithOracle(nwst.KleinRaviOracle))
	reqs := make([]query.Request, len(profiles))
	for i, u := range profiles {
		reqs[i] = query.Request{Mech: "wireless-bb", Profile: u}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.EvaluateBatch(reqs, 0)
	}
}

// --- the delta-aware update path vs the full-rebuild baseline ---

// patchBench drives single-row SetCost updates through a warm versioned
// evaluator at serving scale (n = 96, reduction + universal-shapley
// built). The two entry points below differ only in the evaluator
// options; their ns/op ratio is the tentpole's ≥5× claim, gated in CI
// through the E15/E15b wall clocks.
func patchBench(b *testing.B, opts ...query.Option) {
	const n = 96
	sc, err := instances.ScenarioByName("symmetric")
	if err != nil {
		b.Fatal(err)
	}
	nw := sc.Gen(rand.New(rand.NewSource(27)), n, 2)
	ve := query.NewVersioned(nw, opts...)
	ve.Evaluator().Reduction()
	if _, err := ve.Evaluator().Mechanism("universal-shapley"); err != nil {
		b.Fatal(err)
	}
	// Alternate between two fixed values so no iteration is a same-value
	// no-op and the costs stay bounded for any b.N.
	c0 := nw.C(3, 7)
	targets := [2]float64{c0 * 1.25, c0 * 0.9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target := targets[i%2]
		if _, err := ve.Update(func(nw *wireless.Network) error {
			_, err := nw.SetCost(3, 7, target)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPatchSingleRow(b *testing.B)   { patchBench(b) }
func BenchmarkPatchFullRebuild(b *testing.B) { patchBench(b, query.WithoutDeltaRebuild()) }

// --- micro benchmarks of the substrates ---

func BenchmarkExactMEMT12(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	nw := instances.RandomEuclidean(rng, 12, 2, 2, 10)
	R := nw.AllReceivers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wireless.ExactMEMT(nw, R)
	}
}

func BenchmarkMSTBroadcast64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	nw := instances.RandomEuclidean(rng, 64, 2, 2, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wireless.MSTBroadcast(nw)
	}
}

func BenchmarkBIPBroadcast64(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	nw := instances.RandomEuclidean(rng, 64, 2, 2, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wireless.BIPBroadcast(nw)
	}
}

func BenchmarkLineOptimal32(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	nw := instances.RandomLine(rng, 32, 2, 10)
	R := nw.AllReceivers()[:16]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wireless.LineOptimal(nw, R)
	}
}

func BenchmarkTreeShapley64(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	nw := instances.RandomEuclidean(rng, 64, 2, 2, 10)
	ut := universal.SPT(nw)
	R := nw.AllReceivers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ut.Shapley(R)
	}
}

func BenchmarkExactShapley12(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	nw := instances.RandomEuclidean(rng, 13, 2, 2, 10)
	ut := universal.SPT(nw)
	agents := nw.AllReceivers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh := sharing.NewShapley(agents, ut.CostFunc())
		sh.Shares(agents)
	}
}

func BenchmarkLineGameBuild24(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	nw := instances.RandomLine(rng, 24, 2, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		euclid1.NewLineGame(nw)
	}
}

func BenchmarkLineShapley16(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	nw := instances.RandomLine(rng, 16, 2, 10)
	g := euclid1.NewLineGame(nw)
	R := nw.AllReceivers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Shapley(R)
	}
}

func BenchmarkMoats32(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	nw := instances.RandomEuclidean(rng, 32, 2, 2, 10)
	R := nw.AllReceivers()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jv.Moats(nw, R, nil)
	}
}

func BenchmarkSpiderOracleKR(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	nw := instances.RandomEuclidean(rng, 8, 2, 2, 10)
	rd := memtred.New(nw)
	in := rd.Instance(nw.AllReceivers())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := nwst.NewState(in)
		nwst.KleinRaviOracle(st, 3)
	}
}

func BenchmarkSpiderOracleBranch(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	nw := instances.RandomEuclidean(rng, 8, 2, 2, 10)
	rd := memtred.New(nw)
	in := rd.Instance(nw.AllReceivers())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := nwst.NewState(in)
		nwst.BranchSpiderOracle(st, 3)
	}
}

func BenchmarkNWSTMechanism(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	nw := instances.RandomEuclidean(rng, 8, 2, 2, 10)
	rd := memtred.New(nw)
	in := rd.Instance(nw.AllReceivers())
	u := make(mech.Profile, rd.G.N())
	for _, r := range nw.AllReceivers() {
		u[rd.In[r]] = 1e6
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := nwstmech.New(in, nwst.KleinRaviOracle)
		m.Run(u)
	}
}

func BenchmarkWirelessBBMechanism(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	nw := instances.RandomEuclidean(rng, 10, 2, 2, 10)
	u := mech.UniformProfile(nw.N(), 1e6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := wmech.New(nw, nwst.KleinRaviOracle)
		m.Run(u)
	}
}

func BenchmarkDreyfusWagner(b *testing.B) {
	p := instances.Pentagon(6, 2)
	terms := append([]int{p.Source}, p.Externals...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		steiner.DreyfusWagner(p.Chain, terms)
	}
}

func BenchmarkKMB64(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	nw := instances.RandomEuclidean(rng, 64, 2, 2, 10)
	g := nw.CompleteGraph()
	terms := []int{0, 5, 17, 33, 60}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		steiner.KMB(g, terms)
	}
}

func BenchmarkMSTPrimMatrix128(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	nw := instances.RandomEuclidean(rng, 128, 2, 2, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mst.PrimMatrix(nw.CostMatrix(), 0)
	}
}
