package wmcs

// Integration battery: every public mechanism is run over a grid of
// degenerate and adversarial instance families — duplicate stations,
// collinear clouds, boundary α, two-station networks, zero and huge
// utilities — asserting the axioms that theory guarantees for each
// mechanism class and, above all, that nothing panics.

import (
	"math"
	"math/rand"
	"testing"
)

type familyFn func(rng *rand.Rand) *Network

func euclidFamily(n, d int, alpha float64) familyFn {
	return func(rng *rand.Rand) *Network {
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, d)
			for j := range p {
				p[j] = rng.Float64() * 10
			}
			pts[i] = p
		}
		return NewEuclideanNetwork(pts, alpha, 0)
	}
}

// duplicateFamily places station pairs at identical coordinates:
// zero-cost edges stress every tie-break in the tree builders.
func duplicateFamily(n int) familyFn {
	return func(rng *rand.Rand) *Network {
		pts := make([][]float64, 0, n)
		for len(pts) < n {
			p := []float64{rng.Float64() * 10, rng.Float64() * 10}
			pts = append(pts, p)
			if len(pts) < n {
				pts = append(pts, []float64{p[0], p[1]})
			}
		}
		return NewEuclideanNetwork(pts, 2, 0)
	}
}

// collinearFamily embeds a line in the plane (d = 2 but degenerate
// geometry).
func collinearFamily(n int) familyFn {
	return func(rng *rand.Rand) *Network {
		pts := make([][]float64, n)
		for i := range pts {
			x := rng.Float64() * 10
			pts[i] = []float64{x, 2 * x}
		}
		return NewEuclideanNetwork(pts, 2, 0)
	}
}

func TestIntegrationMechanismGrid(t *testing.T) {
	families := map[string]familyFn{
		"tiny-n2":       euclidFamily(2, 2, 2),
		"small-d2":      euclidFamily(7, 2, 2),
		"small-d3":      euclidFamily(7, 3, 3),
		"alpha-huge":    euclidFamily(6, 2, 6),
		"duplicates":    duplicateFamily(6),
		"collinear-d2":  collinearFamily(7),
		"alpha1-planar": euclidFamily(7, 2, 1),
		"line-d1":       euclidFamily(7, 1, 2),
	}
	profiles := map[string]func(rng *rand.Rand, n int) Profile{
		"zero": func(_ *rand.Rand, n int) Profile { return make(Profile, n) },
		"rich": func(_ *rand.Rand, n int) Profile {
			u := make(Profile, n)
			for i := range u {
				u[i] = 1e9
			}
			return u
		},
		"random": func(rng *rand.Rand, n int) Profile {
			u := make(Profile, n)
			for i := range u {
				u[i] = rng.Float64() * 40
			}
			return u
		},
		"mixed": func(rng *rand.Rand, n int) Profile {
			u := make(Profile, n)
			for i := range u {
				if i%2 == 0 {
					u[i] = rng.Float64() * 1e-6
				} else {
					u[i] = 1e6
				}
			}
			return u
		},
	}
	for fname, fam := range families {
		for _, mechName := range MechanismNames() {
			rng := rand.New(rand.NewSource(int64(len(fname) + len(mechName))))
			nw := fam(rng)
			// Skip mechanisms whose preconditions the family violates.
			m, err := ByName(mechName, nw)
			if err != nil {
				continue
			}
			for pname, pf := range profiles {
				u := pf(rng, nw.N())
				o := m.Run(u) // must not panic
				label := fname + "/" + mechName + "/" + pname
				// Universal axioms for every mechanism: NPT and VP.
				for i, c := range o.Shares {
					if c < -1e-7 {
						t.Fatalf("%s: negative share %g for %d", label, c, i)
					}
					if o.IsReceiver(i) && c > u[i]+1e-7 {
						t.Fatalf("%s: share %g exceeds utility %g", label, c, u[i])
					}
				}
				// BB family also recovers cost; MC family never surpluses.
				isMC := mechName == "universal-mc" || mechName == "alpha1-mc" || mechName == "line-mc"
				if !isMC && len(o.Receivers) > 0 && o.TotalShares() < o.Cost-1e-7 {
					t.Fatalf("%s: deficit %g < %g", label, o.TotalShares(), o.Cost)
				}
				if isMC && o.TotalShares() > o.Cost+1e-7 {
					t.Fatalf("%s: surplus %g > %g", label, o.TotalShares(), o.Cost)
				}
				// Receivers must be agents; shares only on receivers.
				agents := map[int]bool{}
				for _, a := range m.Agents() {
					agents[a] = true
				}
				for _, r := range o.Receivers {
					if !agents[r] {
						t.Fatalf("%s: non-agent receiver %d", label, r)
					}
				}
				// Rich profile must serve everyone (consumer sovereignty).
				if pname == "rich" && len(o.Receivers) != len(m.Agents()) {
					t.Fatalf("%s: rich profile served %d/%d", label, len(o.Receivers), len(m.Agents()))
				}
				// Zero profile can never charge anyone.
				if pname == "zero" && o.TotalShares() > 1e-7 {
					t.Fatalf("%s: zero-utility agents charged %g", label, o.TotalShares())
				}
			}
		}
	}
}

// Costs of all mechanisms' outcomes are realizable: re-verify against an
// exact optimum lower bound on a shared small instance.
func TestIntegrationCostsAboveOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	nw := euclidFamily(7, 2, 2)(rng)
	u := make(Profile, nw.N())
	for i := range u {
		u[i] = 1e9
	}
	for _, name := range []string{"universal-shapley", "wireless-bb", "jv-moat"} {
		m, err := ByName(name, nw)
		if err != nil {
			t.Fatal(err)
		}
		o := m.Run(u)
		opt := OptimalCost(nw, o.Receivers)
		if o.Cost < opt-1e-9 {
			t.Fatalf("%s: claimed cost %g below the optimum %g", name, o.Cost, opt)
		}
		if math.IsNaN(o.Cost) || math.IsInf(o.Cost, 0) {
			t.Fatalf("%s: cost is %g", name, o.Cost)
		}
	}
}
