package instances

import (
	"fmt"
	"math/rand"

	"wmcs/internal/geom"
	"wmcs/internal/wireless"
)

// This file is the churn side of the instances registry: the Update
// delta type the serving layer's PATCH endpoint decodes, and a registry
// of churn models — deterministic generators of update streams that
// model how real ad-hoc networks drift (node mobility, battery drain,
// stations flapping). The scenario registry answers "what does a
// deployment look like"; the churn registry answers "how does it
// change".

// CostSet is one symmetric cost assignment c(i, j) = c(j, i) = cost.
type CostSet struct {
	I    int     `json:"i"`
	J    int     `json:"j"`
	Cost float64 `json:"cost"`
}

// MoveOp relocates one station of a Euclidean network; the cost row
// follows from the power model.
type MoveOp struct {
	Station int       `json:"station"`
	Point   []float64 `json:"point"`
}

// Update is one atomic network delta — the wire form of
// PATCH /v1/networks/{name} and the unit a churn model emits. Ops apply
// in field order (costs, moves, disables, enables); an op that fails
// validation fails the whole update with nothing applied (the versioned
// evaluator mutates a private copy and discards it on error).
type Update struct {
	SetCosts []CostSet `json:"set_costs,omitempty"`
	Moves    []MoveOp  `json:"move,omitempty"`
	Disable  []int     `json:"disable,omitempty"`
	Enable   []int     `json:"enable,omitempty"`
}

// Empty reports whether the update carries no ops.
func (u Update) Empty() bool {
	return len(u.SetCosts) == 0 && len(u.Moves) == 0 && len(u.Disable) == 0 && len(u.Enable) == 0
}

// Ops returns the op count (an upper bound on the version bumps the
// update performs when it applies: an op that rewrites the present state
// — same cost, same coordinates — is a true no-op and bumps nothing).
func (u Update) Ops() int {
	return len(u.SetCosts) + len(u.Moves) + len(u.Disable) + len(u.Enable)
}

// Apply performs the update's ops on nw in order, stopping at the first
// error. Callers needing atomicity apply to a throwaway
// wireless.(*Network).Snapshot and publish only on success — which is
// exactly what query.VersionedEvaluator.Update does.
func (u Update) Apply(nw *wireless.Network) error {
	for _, c := range u.SetCosts {
		if _, err := nw.SetCost(c.I, c.J, c.Cost); err != nil {
			return err
		}
	}
	for _, m := range u.Moves {
		if _, err := nw.MoveStation(m.Station, geom.Point(m.Point)); err != nil {
			return err
		}
	}
	for _, s := range u.Disable {
		if _, err := nw.SetStationEnabled(s, false); err != nil {
			return err
		}
	}
	for _, s := range u.Enable {
		if _, err := nw.SetStationEnabled(s, true); err != nil {
			return err
		}
	}
	return nil
}

// Churner draws a deterministic stream of updates for one network. Next
// returns a delta valid against the network state reached by applying
// every previously returned delta in order (the churner tracks that
// state internally); callers replaying the stream elsewhere apply the
// same deltas to their own replica. Churners are not safe for
// concurrent use.
type Churner interface {
	Next() Update
}

// ChurnOptions tune a churn model; zero values select defaults.
type ChurnOptions struct {
	// Stations is how many stations one mobility update moves
	// (default 2).
	Stations int
	// Step is the mobility random-walk step — the per-coordinate
	// gaussian stddev as a fraction of the deployment's coordinate
	// spread (default 0.05: gentle drift).
	Step float64
	// Drain bounds the battery model's multiplicative cost growth per
	// update: a draining station's costs scale by a factor uniform in
	// [1, 1+Drain] (default 0.25).
	Drain float64
	// FlapProb is the battery model's probability that an update flaps
	// a station (disable, or re-enable a dead one) instead of draining
	// (default 0.2).
	FlapProb float64
}

func (o ChurnOptions) withDefaults() ChurnOptions {
	if o.Stations <= 0 {
		o.Stations = 2
	}
	if o.Step <= 0 {
		o.Step = 0.05
	}
	if o.Drain <= 0 {
		o.Drain = 0.25
	}
	if o.FlapProb <= 0 {
		o.FlapProb = 0.2
	}
	return o
}

// ChurnModel is a named churn family in the registry. Applies reports
// whether the model can drive the given network class; New builds a
// churner over it (the network is snapshotted — later mutations of the
// caller's copy do not affect the stream).
type ChurnModel struct {
	Name    string
	Desc    string
	Applies func(nw *wireless.Network) bool
	New     func(rng *rand.Rand, nw *wireless.Network, opt ChurnOptions) Churner
}

// churnModels is the registry, in presentation order.
var churnModels = []ChurnModel{
	{
		Name: "mobility", Desc: "random-walk station drift (Euclidean networks): moves re-derive cost rows from the power model",
		Applies: func(nw *wireless.Network) bool { return nw.IsEuclidean() },
		New: func(rng *rand.Rand, nw *wireless.Network, opt ChurnOptions) Churner {
			return newMobilityChurner(rng, nw, opt.withDefaults())
		},
	},
	{
		Name: "battery", Desc: "battery-drain decay (abstract networks): per-station multiplicative cost growth, occasional station flaps",
		Applies: func(nw *wireless.Network) bool { return !nw.IsEuclidean() },
		New: func(rng *rand.Rand, nw *wireless.Network, opt ChurnOptions) Churner {
			return newBatteryChurner(rng, nw, opt.withDefaults())
		},
	},
}

// ChurnModels returns the registry in presentation order (shared slice,
// do not modify).
func ChurnModels() []ChurnModel { return churnModels }

// ChurnModelNames lists the registry names in order.
func ChurnModelNames() []string {
	names := make([]string, len(churnModels))
	for i, m := range churnModels {
		names[i] = m.Name
	}
	return names
}

// ChurnByName looks a churn model up by its registry name.
func ChurnByName(name string) (ChurnModel, error) {
	for _, m := range churnModels {
		if m.Name == name {
			return m, nil
		}
	}
	return ChurnModel{}, fmt.Errorf("instances: unknown churn model %q (have %v)", name, ChurnModelNames())
}

// ChurnModelFor picks the first registry model whose class predicate
// admits nw — how the workload driver's "auto" selection resolves.
func ChurnModelFor(nw *wireless.Network) ChurnModel {
	for _, m := range churnModels {
		if m.Applies(nw) {
			return m
		}
	}
	// Unreachable: mobility+battery partition the class space.
	panic("instances: no churn model applies")
}

// mobilityChurner random-walks station positions. Each update moves
// opt.Stations distinct stations by a gaussian step scaled to the
// deployment's initial coordinate spread, clamped to the initial
// bounding box so the instance cannot drift off its scenario's scale.
type mobilityChurner struct {
	rng   *rand.Rand
	state *wireless.Network
	opt   ChurnOptions
	lo    geom.Point // initial bounding box
	hi    geom.Point
	step  float64 // absolute per-coordinate stddev
}

func newMobilityChurner(rng *rand.Rand, nw *wireless.Network, opt ChurnOptions) *mobilityChurner {
	state := nw.Snapshot()
	dim := state.Dim()
	lo := make(geom.Point, dim)
	hi := make(geom.Point, dim)
	for d := 0; d < dim; d++ {
		lo[d], hi[d] = state.Points()[0][d], state.Points()[0][d]
	}
	spread := 0.0
	for _, p := range state.Points() {
		for d, v := range p {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	for d := 0; d < dim; d++ {
		if s := hi[d] - lo[d]; s > spread {
			spread = s
		}
	}
	if spread == 0 {
		spread = 1
	}
	return &mobilityChurner{
		rng: rng, state: state, opt: opt,
		lo: lo, hi: hi, step: opt.Step * spread,
	}
}

func (c *mobilityChurner) Next() Update {
	n := c.state.N()
	k := c.opt.Stations
	if k > n {
		k = n
	}
	// Distinct stations, drawn deterministically; disabled stations
	// cannot move (their rows are frozen at DisabledCost).
	moved := make(map[int]bool, k)
	var up Update
	for len(up.Moves) < k {
		s := c.rng.Intn(n)
		if moved[s] || !c.state.StationEnabled(s) {
			if len(moved) >= n {
				break
			}
			moved[s] = true
			continue
		}
		moved[s] = true
		p := c.state.Points()[s].Clone()
		for d := range p {
			p[d] += c.rng.NormFloat64() * c.step
			if p[d] < c.lo[d] {
				p[d] = c.lo[d]
			}
			if p[d] > c.hi[d] {
				p[d] = c.hi[d]
			}
		}
		up.Moves = append(up.Moves, MoveOp{Station: s, Point: p})
	}
	if err := up.Apply(c.state); err != nil {
		// Ops were generated against c.state; failure is a bug.
		panic(fmt.Sprintf("instances: mobility churner emitted an invalid update: %v", err))
	}
	return up
}

// batteryChurner models radio decay on abstract symmetric networks:
// most updates pick one draining non-source station and scale its whole
// cost row up by a factor uniform in [1, 1+Drain]; with probability
// FlapProb the update instead flaps a station — disabling a live one,
// or re-enabling a dead one when any exists.
type batteryChurner struct {
	rng   *rand.Rand
	state *wireless.Network
	opt   ChurnOptions
}

func newBatteryChurner(rng *rand.Rand, nw *wireless.Network, opt ChurnOptions) *batteryChurner {
	return &batteryChurner{rng: rng, state: nw.Snapshot(), opt: opt}
}

// pickStation draws a uniformly random non-source station with the
// requested enabled state; ok is false when none exists.
func (c *batteryChurner) pickStation(enabled bool) (int, bool) {
	var candidates []int
	for s := 0; s < c.state.N(); s++ {
		if s != c.state.Source() && c.state.StationEnabled(s) == enabled {
			candidates = append(candidates, s)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	return candidates[c.rng.Intn(len(candidates))], true
}

func (c *batteryChurner) Next() Update {
	var up Update
	if c.rng.Float64() < c.opt.FlapProb {
		// Flap: prefer reviving a dead station (keeps the long-run
		// enabled population stable), otherwise kill a live one.
		if s, ok := c.pickStation(false); ok {
			up.Enable = []int{s}
		} else if s, ok := c.pickStation(true); ok {
			up.Disable = []int{s}
		}
	}
	if up.Empty() {
		s, ok := c.pickStation(true)
		if !ok {
			return up // every non-source station is dead; nothing to drain
		}
		f := 1 + c.rng.Float64()*c.opt.Drain
		for j := 0; j < c.state.N(); j++ {
			if j == s || !c.state.StationEnabled(j) {
				continue
			}
			up.SetCosts = append(up.SetCosts, CostSet{I: s, J: j, Cost: c.state.C(s, j) * f})
		}
	}
	if err := up.Apply(c.state); err != nil {
		panic(fmt.Sprintf("instances: battery churner emitted an invalid update: %v", err))
	}
	return up
}
