// Package instances provides the concrete problem instances of the paper
// — the Fig. 1 NWST collusion gadget and the Fig. 2 pentagon family with
// an empty core — plus the random generators used by the simulated
// evaluation (uniform Euclidean clouds, lines, and abstract symmetric
// cost graphs).
package instances

import (
	"math"
	"math/rand"

	"wmcs/internal/geom"
	"wmcs/internal/graph"
	"wmcs/internal/mech"
	"wmcs/internal/nwst"
	"wmcs/internal/steiner"
	"wmcs/internal/wireless"
)

// Fig. 1 vertex ids (terminals carry zero weight as in the paper).
const (
	Fig1T1 = 0 // terminal "1"
	Fig1T5 = 1 // terminal "5"
	Fig1T6 = 2 // terminal "6"
	Fig1T7 = 3 // terminal "7"
	Fig1A  = 4 // spider Sp2's center, weight 3
	Fig1P  = 5 // the "1→4→6" connector, weight 3
	Fig1D  = 6 // spider Sp1's center, weight 4
)

// Fig1NWST reconstructs the Fig. 1 instance of §2.2.2 together with the
// truthful profile (u₁ = u₅ = u₆ = 3, u₇ = 3/2) and the colluding profile
// in which x₇ shades its report to 3/2 − ε. Replaying the mechanism on
// both profiles reproduces the paper's numbers exactly: truthful shares
// are all 3/2, while under collusion x₇ is dropped and the others pay 4/3
// each, strictly increasing their welfare — the mechanism is not group
// strategyproof.
func Fig1NWST(eps float64) (nwst.Instance, mech.Profile, mech.Profile) {
	g := graph.New(7)
	w := []float64{0, 0, 0, 0, 3, 3, 4}
	// Spider Sp2: center A adjacent to terminals 1, 5, 7 (cost 3, ratio 1).
	g.AddEdge(Fig1A, Fig1T1, 0)
	g.AddEdge(Fig1A, Fig1T5, 0)
	g.AddEdge(Fig1A, Fig1T7, 0)
	// Connector P: the "path 1→4→6" of cost 3 (ratio 3/2 over 2 terms).
	g.AddEdge(Fig1P, Fig1T1, 0)
	g.AddEdge(Fig1P, Fig1T6, 0)
	// Spider Sp1: center D adjacent to terminals 1, 5, 6 (cost 4, ratio 4/3).
	g.AddEdge(Fig1D, Fig1T1, 0)
	g.AddEdge(Fig1D, Fig1T5, 0)
	g.AddEdge(Fig1D, Fig1T6, 0)
	inst := nwst.Instance{
		G:         g,
		Weights:   w,
		Terminals: []int{Fig1T1, Fig1T5, Fig1T6, Fig1T7},
	}
	truth := mech.Profile{3, 3, 3, 1.5, 0, 0, 0}
	collude := truth.Clone()
	collude[Fig1T7] = 1.5 - eps
	return inst, truth, collude
}

// PentagonInstance is the Lemma 3.3 / Fig. 2 construction: five external
// stations on a circle of radius m around the source, five internal
// stations on the half-radius circle rotated to sit between adjacent
// externals, and unit-spaced relay chains along every dotted line of the
// figure (source to every station, internals to their two closest
// externals).
type PentagonInstance struct {
	Net       *wireless.Network
	Source    int
	Externals []int // the five agents x₀..x₄ of the lemma
	Internals []int // y₀..y₄
	// Chain is the relay graph: edges between stations within unit-hop
	// range, weighted by transmission cost; optimal multicasts on this
	// family live on it.
	Chain *graph.Graph
}

// Pentagon builds the instance for circle radius m (the lemma's scale
// parameter) and distance-power gradient alpha > 1.
func Pentagon(m, alpha float64) *PentagonInstance {
	var pts []geom.Point
	src := geom.Point{0, 0}
	pts = append(pts, src)
	ext := geom.Circle(5, m, 0, 0, math.Pi/2)
	inner := geom.Circle(5, m/2, 0, 0, math.Pi/2+math.Pi/5)
	extIdx := make([]int, 5)
	innerIdx := make([]int, 5)
	for i, p := range ext {
		extIdx[i] = len(pts)
		pts = append(pts, p)
	}
	for i, p := range inner {
		innerIdx[i] = len(pts)
		pts = append(pts, p)
	}
	addChain := func(a, b geom.Point) {
		for _, p := range geom.Segment(a, b, 1) {
			pts = append(pts, p)
		}
	}
	for i := 0; i < 5; i++ {
		addChain(src, ext[i])
		addChain(src, inner[i])
		// Internal y_i sits between externals i and i+1 (mod 5).
		addChain(inner[i], ext[i])
		addChain(inner[i], ext[(i+1)%5])
	}
	nw := wireless.NewEuclidean(pts, geom.NewPowerCost(alpha), 0)
	chain := graph.New(len(pts))
	const hop = 1.45 // links unit chain steps but no two-hop shortcuts
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if geom.Dist(pts[i], pts[j]) <= hop {
				chain.AddEdge(i, j, nw.C(i, j))
			}
		}
	}
	return &PentagonInstance{
		Net:       nw,
		Source:    0,
		Externals: extIdx,
		Internals: innerIdx,
		Chain:     chain,
	}
}

// Cost estimates C*(R) for a subset of the agents by an exact Steiner
// tree on the relay graph followed by the tree→power conversion (each
// station pays its heaviest child edge). On this family optimal
// assignments use unit chain hops, so the estimate is tight up to the
// O(1) branching savings the lemma itself declares negligible.
func (p *PentagonInstance) Cost(R []int) float64 {
	if len(R) == 0 {
		return 0
	}
	terms := append([]int{p.Source}, R...)
	st := steiner.DreyfusWagner(p.Chain, terms)
	tree := wireless.TreeFromUndirectedEdges(p.Net.N(), st.Edges, p.Source)
	return p.Net.AssignmentForTree(tree).Total()
}

// RandomEuclidean returns a network of n uniform stations in [0, side]^d
// with gradient alpha; station 0 is the source.
func RandomEuclidean(rng *rand.Rand, n, d int, alpha, side float64) *wireless.Network {
	return wireless.NewEuclidean(geom.RandomCloud(rng, n, d, side), geom.NewPowerCost(alpha), 0)
}

// RandomLine returns n stations uniform on a segment of the given length
// (d = 1) with a uniformly random source.
func RandomLine(rng *rand.Rand, n int, alpha, length float64) *wireless.Network {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * length
	}
	return wireless.NewEuclidean(geom.Line(xs...), geom.NewPowerCost(alpha), rng.Intn(n))
}

// RandomSymmetric returns an abstract symmetric network with costs drawn
// uniformly from [lo, hi] — not necessarily metric, exercising the
// general model of §2.2.
func RandomSymmetric(rng *rand.Rand, n int, lo, hi float64) *wireless.Network {
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, lo+rng.Float64()*(hi-lo))
		}
	}
	return wireless.NewSymmetric(m, 0)
}
