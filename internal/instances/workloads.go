package instances

import (
	"fmt"
	"math/rand"
	"sort"

	"wmcs/internal/mech"
	"wmcs/internal/wireless"
)

// Query is one serving-layer request drawn by a workload sampler: a
// candidate receiver set (sorted, source excluded) and the reported
// utilities of its members. Utilities are quantized to the serving
// codec's grid upstream; samplers just draw raw floats.
type Query struct {
	R []int
	U mech.Profile
}

// Sampler draws a deterministic stream of queries from the rng it was
// built with. Samplers are not safe for concurrent use — give each
// client goroutine its own, seeded per worker (engine.SeedFor), so the
// stream never depends on scheduling. Returned queries may alias the
// sampler's internal pool (that is what makes a hot set hot): treat
// them as read-only.
type Sampler interface {
	Next() Query
}

// WorkloadOptions tune a workload family; zero values select defaults.
type WorkloadOptions struct {
	// HotSets is the pool size of the hot-set families: how many distinct
	// queries the Zipf distribution draws over (default 64).
	HotSets int
	// ZipfS is the Zipf exponent over the hot pool, > 1 (default 1.2,
	// mildly skewed; larger is hotter).
	ZipfS float64
	// UMax bounds the uniform utility draw [0, UMax) (default 50).
	UMax float64
	// MixCold is the fraction of fresh (never-repeating) queries in the
	// "mixed" family (default 0.2).
	MixCold float64
	// PoolRNG, when non-nil, draws the hot pool instead of the sampler's
	// own rng: seed it identically across client workers and they share
	// one working set (the cache-relevant identity) while their Zipf
	// draw orders stay independent.
	PoolRNG *rand.Rand
}

func (o WorkloadOptions) withDefaults() WorkloadOptions {
	if o.HotSets <= 0 {
		o.HotSets = 64
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.UMax <= 0 {
		o.UMax = 50
	}
	if o.MixCold <= 0 || o.MixCold >= 1 {
		o.MixCold = 0.2
	}
	return o
}

// Workload is a named receiver-set workload family in the registry. New
// builds a sampler over the given network from the rng; all randomness
// (including the hot pool itself) derives from that rng, so equal seeds
// give equal query streams.
type Workload struct {
	Name string
	Desc string
	New  func(rng *rand.Rand, nw *wireless.Network, opt WorkloadOptions) Sampler
}

// workloads is the registry, in presentation order. "uniform" is the
// cache-adversarial baseline (every query fresh), "hotset" the Zipf
// repeated-query service workload the caching layer is built for, and
// "mixed" the 80/20 blend between them.
var workloads = []Workload{
	{
		Name: "uniform", Desc: "every query a fresh uniform receiver set + profile (no repeats)",
		New: func(rng *rand.Rand, nw *wireless.Network, opt WorkloadOptions) Sampler {
			opt = opt.withDefaults()
			return &uniformSampler{rng: rng, nw: nw, umax: opt.UMax}
		},
	},
	{
		Name: "hotset", Desc: "Zipf draw over a fixed pool of pre-drawn queries (hot working set)",
		New: func(rng *rand.Rand, nw *wireless.Network, opt WorkloadOptions) Sampler {
			opt = opt.withDefaults()
			return newHotSetSampler(rng, nw, opt)
		},
	},
	{
		Name: "mixed", Desc: "hotset with a cold fraction of fresh queries (default 20%)",
		New: func(rng *rand.Rand, nw *wireless.Network, opt WorkloadOptions) Sampler {
			opt = opt.withDefaults()
			return &mixedSampler{
				rng:  rng,
				hot:  newHotSetSampler(rng, nw, opt),
				cold: &uniformSampler{rng: rng, nw: nw, umax: opt.UMax},
				p:    opt.MixCold,
			}
		},
	},
}

// Workloads returns the registry in presentation order (shared slice, do
// not modify).
func Workloads() []Workload { return workloads }

// WorkloadNames lists the registry names in order.
func WorkloadNames() []string {
	names := make([]string, len(workloads))
	for i, w := range workloads {
		names[i] = w.Name
	}
	return names
}

// WorkloadByName looks a workload up by its registry name.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range workloads {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("instances: unknown workload %q (have %v)", name, WorkloadNames())
}

// drawQuery draws one fresh query: every non-source station joins R with
// probability 1/2 (re-drawn until R is nonempty) and reports a uniform
// utility in [0, umax).
func drawQuery(rng *rand.Rand, nw *wireless.Network, umax float64) Query {
	n, src := nw.N(), nw.Source()
	var R []int
	for len(R) == 0 {
		R = R[:0]
		for i := 0; i < n; i++ {
			if i != src && rng.Intn(2) == 0 {
				R = append(R, i)
			}
		}
	}
	sort.Ints(R)
	u := make(mech.Profile, n)
	for _, r := range R {
		u[r] = rng.Float64() * umax
	}
	return Query{R: R, U: u}
}

type uniformSampler struct {
	rng  *rand.Rand
	nw   *wireless.Network
	umax float64
}

func (s *uniformSampler) Next() Query { return drawQuery(s.rng, s.nw, s.umax) }

// hotSetSampler pre-draws a pool of queries and serves them under a Zipf
// popularity law: query i of the pool is drawn with probability ∝
// 1/(i+1)^s. The pool and the draw order both derive from the
// constructing rng only.
type hotSetSampler struct {
	pool []Query
	zipf *rand.Zipf
}

func newHotSetSampler(rng *rand.Rand, nw *wireless.Network, opt WorkloadOptions) *hotSetSampler {
	poolRNG := opt.PoolRNG
	if poolRNG == nil {
		poolRNG = rng
	}
	pool := make([]Query, opt.HotSets)
	for i := range pool {
		pool[i] = drawQuery(poolRNG, nw, opt.UMax)
	}
	return &hotSetSampler{
		pool: pool,
		zipf: rand.NewZipf(rng, opt.ZipfS, 1, uint64(len(pool)-1)),
	}
}

func (s *hotSetSampler) Next() Query { return s.pool[s.zipf.Uint64()] }

type mixedSampler struct {
	rng  *rand.Rand
	hot  *hotSetSampler
	cold *uniformSampler
	p    float64
}

func (s *mixedSampler) Next() Query {
	if s.rng.Float64() < s.p {
		return s.cold.Next()
	}
	return s.hot.Next()
}
