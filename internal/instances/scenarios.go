package instances

import (
	"fmt"
	"math"
	"math/rand"

	"wmcs/internal/geom"
	"wmcs/internal/wireless"
)

// Scenario is a named random-instance family in the registry. Gen draws
// one network of about n stations with distance-power gradient alpha from
// rng; station geometry (and for "symmetric" the lack of it) is what
// distinguishes the families. Every generator makes station 0 the source,
// except "line", which keeps the seed behaviour of a uniformly random
// source on the segment.
type Scenario struct {
	Name string
	Desc string
	// Euclidean reports whether instances carry coordinates (false only
	// for the abstract symmetric family, where alpha is ignored).
	Euclidean bool
	Gen       func(rng *rand.Rand, n int, alpha float64) *wireless.Network
}

// scenarios is the registry, in presentation order. The first three are
// the seed's original models; the rest widen the topology coverage of the
// sweeps (hotspot clusters, lattices, rings, highways, variable-density
// disks).
var scenarios = []Scenario{
	{
		Name: "uniform", Desc: "n stations uniform in the square [0,10]²", Euclidean: true,
		Gen: func(rng *rand.Rand, n int, alpha float64) *wireless.Network {
			return RandomEuclidean(rng, n, 2, alpha, 10)
		},
	},
	{
		Name: "line", Desc: "n stations uniform on a length-10 segment (d = 1)", Euclidean: true,
		Gen: func(rng *rand.Rand, n int, alpha float64) *wireless.Network {
			return RandomLine(rng, n, alpha, 10)
		},
	},
	{
		Name: "symmetric", Desc: "abstract symmetric costs uniform in [0.5, 10] (non-metric)", Euclidean: false,
		Gen: func(rng *rand.Rand, n int, alpha float64) *wireless.Network {
			return RandomSymmetric(rng, n, 0.5, 10)
		},
	},
	{
		Name: "clustered", Desc: "hotspot clusters: 3 dense gaussian blobs in [0,10]²", Euclidean: true,
		Gen: func(rng *rand.Rand, n int, alpha float64) *wireless.Network {
			return RandomClustered(rng, n, alpha, 10, 3, 0.6)
		},
	},
	{
		Name: "grid", Desc: "jittered √n×√n lattice over [0,10]²", Euclidean: true,
		Gen: func(rng *rand.Rand, n int, alpha float64) *wireless.Network {
			return RandomGrid(rng, n, alpha, 10, 0.25)
		},
	},
	{
		Name: "ring", Desc: "source at the centre, receivers on a wobbly radius-5 ring", Euclidean: true,
		Gen: func(rng *rand.Rand, n int, alpha float64) *wireless.Network {
			return RandomRing(rng, n, alpha, 5, 0.15)
		},
	},
	{
		Name: "highway", Desc: "length-10 highway with perpendicular exit spurs", Euclidean: true,
		Gen: func(rng *rand.Rand, n int, alpha float64) *wireless.Network {
			return RandomHighway(rng, n, alpha, 10, 3)
		},
	},
	{
		Name: "disk", Desc: "radius-5 disk, density rising toward the centre (γ = 2)", Euclidean: true,
		Gen: func(rng *rand.Rand, n int, alpha float64) *wireless.Network {
			return RandomDisk(rng, n, alpha, 5, 2)
		},
	},
}

// Scenarios returns the registry in presentation order (shared slice, do
// not modify).
func Scenarios() []Scenario { return scenarios }

// ScenarioNames lists the registry names in order.
func ScenarioNames() []string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return names
}

// ScenarioByName looks a scenario up by its registry name.
func ScenarioByName(name string) (Scenario, error) {
	for _, s := range scenarios {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("instances: unknown scenario %q (have %v)", name, ScenarioNames())
}

// RandomClustered draws a hotspot topology: `clusters` gaussian blobs
// with standard deviation spread whose centres are uniform in [0,side]².
// Station 0 (the source) sits at the first centre; the remaining stations
// are dealt to the blobs round-robin so every blob is populated. Clamped
// to the square so costs stay comparable with the uniform family.
func RandomClustered(rng *rand.Rand, n int, alpha, side float64, clusters int, spread float64) *wireless.Network {
	if clusters < 1 {
		clusters = 1
	}
	centers := make([]geom.Point, clusters)
	for i := range centers {
		centers[i] = geom.Point{rng.Float64() * side, rng.Float64() * side}
	}
	clamp := func(v float64) float64 { return math.Min(side, math.Max(0, v)) }
	pts := make([]geom.Point, n)
	pts[0] = centers[0].Clone()
	for i := 1; i < n; i++ {
		c := centers[i%clusters]
		pts[i] = geom.Point{
			clamp(c[0] + rng.NormFloat64()*spread),
			clamp(c[1] + rng.NormFloat64()*spread),
		}
	}
	return wireless.NewEuclidean(pts, geom.NewPowerCost(alpha), 0)
}

// RandomGrid places n stations on the first n cells of the smallest
// square lattice covering [0,side]², each jittered uniformly by at most
// jitter·cellsize in both coordinates — the "planned deployment with
// installation error" topology. Station 0 is the corner cell.
func RandomGrid(rng *rand.Rand, n int, alpha, side, jitter float64) *wireless.Network {
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	cell := side / float64(cols)
	pts := make([]geom.Point, n)
	for i := range pts {
		x := (float64(i%cols) + 0.5) * cell
		y := (float64(i/cols) + 0.5) * cell
		pts[i] = geom.Point{
			x + (rng.Float64()*2-1)*jitter*cell,
			y + (rng.Float64()*2-1)*jitter*cell,
		}
	}
	return wireless.NewEuclidean(pts, geom.NewPowerCost(alpha), 0)
}

// RandomRing puts the source at the origin and n−1 receivers near the
// circle of the given radius: angles uniform, radii wobbled by the
// relative factor wobble. The broadcast optimum on this family needs
// either one huge source transmission or a relayed walk around the rim,
// which is exactly the trade-off the MST/BIP heuristics resolve
// differently.
func RandomRing(rng *rand.Rand, n int, alpha, radius, wobble float64) *wireless.Network {
	pts := make([]geom.Point, n)
	pts[0] = geom.Point{0, 0}
	for i := 1; i < n; i++ {
		a := rng.Float64() * 2 * math.Pi
		r := radius * (1 + (rng.Float64()*2-1)*wobble)
		pts[i] = geom.Point{r * math.Cos(a), r * math.Sin(a)}
	}
	return wireless.NewEuclidean(pts, geom.NewPowerCost(alpha), 0)
}

// RandomHighway models a road deployment: the source at kilometre zero of
// a straight highway of the given length, most stations scattered along
// it with small lateral offsets, and `exits` perpendicular spur roads at
// random positions carrying the remaining stations outward. Spur stations
// are reachable only through their exit region, stretching multicast
// trees into combs.
func RandomHighway(rng *rand.Rand, n int, alpha, length float64, exits int) *wireless.Network {
	if exits < 0 {
		exits = 0
	}
	exitAt := make([]float64, exits)
	for i := range exitAt {
		exitAt[i] = rng.Float64() * length
	}
	pts := make([]geom.Point, n)
	pts[0] = geom.Point{0, 0}
	// About a third of the stations live on spurs (none when there are
	// no exits to carry them).
	spur := n / 3
	if exits == 0 {
		spur = 0
	}
	for i := 1; i < n; i++ {
		if i <= n-1-spur {
			pts[i] = geom.Point{rng.Float64() * length, (rng.Float64()*2 - 1) * 0.2}
		} else {
			e := exitAt[rng.Intn(exits)]
			side := 1.0
			if rng.Intn(2) == 0 {
				side = -1
			}
			pts[i] = geom.Point{
				e + (rng.Float64()*2-1)*0.2,
				side * (0.5 + rng.Float64()*0.3*length),
			}
		}
	}
	return wireless.NewEuclidean(pts, geom.NewPowerCost(alpha), 0)
}

// RandomDisk draws n stations in the disk of the given radius with a
// radial density knob: radii follow r = radius·u^((2+gamma)/4) for
// uniform u, i.e. the radial pdf is ∝ r^(2−gamma)/(2+gamma). gamma = 0 is
// the uniform disk, gamma > 0 concentrates stations at the centre (urban
// core), gamma < 0 (down to > −2) pushes them to the rim. The source is
// the station closest to the centre, reindexed to 0.
func RandomDisk(rng *rand.Rand, n int, alpha, radius, gamma float64) *wireless.Network {
	if gamma <= -2 {
		gamma = -1.9
	}
	pts := make([]geom.Point, n)
	best, bestR := 0, math.Inf(1)
	for i := range pts {
		a := rng.Float64() * 2 * math.Pi
		r := radius * math.Pow(rng.Float64(), (2+gamma)/4)
		pts[i] = geom.Point{r * math.Cos(a), r * math.Sin(a)}
		if r < bestR {
			best, bestR = i, r
		}
	}
	pts[0], pts[best] = pts[best], pts[0]
	return wireless.NewEuclidean(pts, geom.NewPowerCost(alpha), 0)
}
