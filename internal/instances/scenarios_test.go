package instances

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/geom"
)

func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) != len(Scenarios()) {
		t.Fatal("names and registry disagree")
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("duplicate scenario name %q", name)
		}
		seen[name] = true
		s, err := ScenarioByName(name)
		if err != nil || s.Name != name {
			t.Fatalf("ScenarioByName(%q) = %+v, %v", name, s, err)
		}
	}
	for _, want := range []string{"uniform", "line", "symmetric", "clustered", "grid", "ring", "highway", "disk"} {
		if !seen[want] {
			t.Errorf("registry missing scenario %q", want)
		}
	}
	if _, err := ScenarioByName("no-such"); err == nil {
		t.Error("unknown scenario must error")
	}
}

// Every scenario must generate valid networks: right size, source 0,
// symmetric nonnegative costs, coordinates iff Euclidean — and the draw
// must be a pure function of the rng state.
func TestScenarioGeneratorsValidAndDeterministic(t *testing.T) {
	for _, s := range Scenarios() {
		for _, n := range []int{2, 9, 16} {
			nw := s.Gen(rand.New(rand.NewSource(7)), n, 2)
			if nw.N() != n {
				t.Fatalf("%s: N = %d, want %d", s.Name, nw.N(), n)
			}
			if s.Name == "line" {
				if src := nw.Source(); src < 0 || src >= n {
					t.Fatalf("line: source %d out of range", src)
				}
			} else if nw.Source() != 0 {
				t.Fatalf("%s: source = %d, want 0", s.Name, nw.Source())
			}
			if nw.IsEuclidean() != s.Euclidean {
				t.Fatalf("%s: IsEuclidean = %v, registry says %v", s.Name, nw.IsEuclidean(), s.Euclidean)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if c := nw.C(i, j); c < 0 || math.IsNaN(c) || nw.C(j, i) != c {
						t.Fatalf("%s: bad cost C(%d,%d) = %g", s.Name, i, j, c)
					}
				}
			}
			again := s.Gen(rand.New(rand.NewSource(7)), n, 2)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if nw.C(i, j) != again.C(i, j) {
						t.Fatalf("%s: generation is not deterministic in the seed", s.Name)
					}
				}
			}
		}
	}
}

func TestRandomClusteredShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw := RandomClustered(rng, 30, 2, 10, 3, 0.4)
	for _, p := range nw.Points() {
		for _, v := range p {
			if v < 0 || v > 10 {
				t.Fatalf("clustered point %v escapes the square", p)
			}
		}
	}
}

func TestRandomGridShape(t *testing.T) {
	nw := RandomGrid(rand.New(rand.NewSource(4)), 9, 2, 9, 0)
	// jitter 0: exact 3×3 lattice with cell 3, so nearest-neighbour
	// distance is exactly 3.
	d := geom.Dist(nw.Points()[0], nw.Points()[1])
	if math.Abs(d-3) > 1e-12 {
		t.Fatalf("unjittered grid spacing = %g, want 3", d)
	}
}

func TestRandomRingShape(t *testing.T) {
	nw := RandomRing(rand.New(rand.NewSource(5)), 12, 2, 5, 0.1)
	if nw.Points()[0].Norm() != 0 {
		t.Fatal("ring source must sit at the centre")
	}
	for _, p := range nw.Points()[1:] {
		r := p.Norm()
		if r < 5*0.89 || r > 5*1.11 {
			t.Fatalf("ring station at radius %g outside the wobble band", r)
		}
	}
}

func TestRandomHighwayShape(t *testing.T) {
	nw := RandomHighway(rand.New(rand.NewSource(6)), 24, 2, 10, 3)
	if nw.Points()[0][0] != 0 || nw.Points()[0][1] != 0 {
		t.Fatal("highway source must sit at kilometre zero")
	}
	onRoad, onSpur := 0, 0
	for _, p := range nw.Points()[1:] {
		if math.Abs(p[1]) <= 0.2 {
			onRoad++
		} else {
			onSpur++
		}
	}
	if onRoad == 0 || onSpur == 0 {
		t.Fatalf("highway needs both road (%d) and spur (%d) stations", onRoad, onSpur)
	}
}

func TestRandomDiskDensityKnob(t *testing.T) {
	meanR := func(gamma float64) float64 {
		nw := RandomDisk(rand.New(rand.NewSource(8)), 400, 2, 5, gamma)
		var sum float64
		for _, p := range nw.Points() {
			sum += p.Norm()
		}
		return sum / float64(nw.N())
	}
	core, uniform, rim := meanR(4), meanR(0), meanR(-1)
	if !(core < uniform && uniform < rim) {
		t.Fatalf("density knob inverted: mean radii core=%g uniform=%g rim=%g", core, uniform, rim)
	}
	for _, p := range RandomDisk(rand.New(rand.NewSource(9)), 50, 2, 5, 0).Points() {
		if p.Norm() > 5+1e-9 {
			t.Fatalf("disk point %v outside the radius", p)
		}
	}
}
