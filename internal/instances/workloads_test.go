package instances

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSpecBuildDeterministic: equal specs build byte-equal networks;
// different seeds differ.
func TestSpecBuildDeterministic(t *testing.T) {
	for _, scenario := range append([]string{"euclid"}, ScenarioNames()...) {
		s := Spec{Name: "t", Scenario: scenario, N: 9, Alpha: 2, Seed: 42}
		a, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", scenario, err)
		}
		b, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", scenario, err)
		}
		if a.N() != 9 || b.N() != 9 {
			t.Fatalf("%s: wrong station count %d/%d", scenario, a.N(), b.N())
		}
		for i := 0; i < a.N(); i++ {
			for j := 0; j < a.N(); j++ {
				if a.C(i, j) != b.C(i, j) {
					t.Fatalf("%s: rebuild diverged at C(%d,%d)", scenario, i, j)
				}
			}
		}
		s2 := s
		s2.Seed = 43
		c, err := s2.Build()
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := 0; i < a.N() && same; i++ {
			for j := 0; j < a.N(); j++ {
				if a.C(i, j) != c.C(i, j) {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatalf("%s: different seeds built identical networks", scenario)
		}
	}
}

func TestSpecBuildValidates(t *testing.T) {
	if _, err := (Spec{Scenario: "uniform", N: 1}).Build(); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := (Spec{Scenario: "nope", N: 8}).Build(); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestWorkloadStreamsDeterministic: equal seeds give equal query streams,
// for every registry workload.
func TestWorkloadStreamsDeterministic(t *testing.T) {
	nw, err := Spec{Scenario: "uniform", N: 12, Seed: 7}.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range Workloads() {
		a := w.New(rand.New(rand.NewSource(3)), nw, WorkloadOptions{})
		b := w.New(rand.New(rand.NewSource(3)), nw, WorkloadOptions{})
		for i := 0; i < 200; i++ {
			qa, qb := a.Next(), b.Next()
			if !reflect.DeepEqual(qa, qb) {
				t.Fatalf("%s: stream diverged at query %d", w.Name, i)
			}
			if len(qa.R) == 0 {
				t.Fatalf("%s: empty receiver set at query %d", w.Name, i)
			}
			for k := 1; k < len(qa.R); k++ {
				if qa.R[k-1] >= qa.R[k] {
					t.Fatalf("%s: receiver set not sorted/unique: %v", w.Name, qa.R)
				}
			}
			if src := nw.Source(); qa.U[src] != 0 {
				t.Fatalf("%s: source carries utility %g", w.Name, qa.U[src])
			}
		}
	}
}

// TestHotSetRepeats: the Zipf hot-set sampler repeats queries — the
// property the serving cache feeds on — while uniform essentially never
// does.
func TestHotSetRepeats(t *testing.T) {
	nw, err := Spec{Scenario: "uniform", N: 14, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(name string, draws int) int {
		w, err := WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := w.New(rand.New(rand.NewSource(11)), nw, WorkloadOptions{HotSets: 16})
		seen := map[string]bool{}
		for i := 0; i < draws; i++ {
			q := s.Next()
			key := ""
			for _, r := range q.R {
				key += string(rune(r)) + ":"
			}
			for _, u := range q.U {
				key += string(rune(int(u*1000))) + ","
			}
			seen[key] = true
		}
		return len(seen)
	}
	if d := distinct("hotset", 400); d > 16 {
		t.Fatalf("hotset drew %d distinct queries from a pool of 16", d)
	}
	if d := distinct("uniform", 400); d < 390 {
		t.Fatalf("uniform repeated itself: only %d distinct in 400", d)
	}
}
