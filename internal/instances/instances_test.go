package instances

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/geom"
	"wmcs/internal/nwst"
	"wmcs/internal/paths"
)

func TestFig1Structure(t *testing.T) {
	inst, truth, collude := Fig1NWST(0.01)
	inst.Validate()
	if inst.G.N() != 7 || len(inst.Terminals) != 4 {
		t.Fatalf("N=%d terminals=%v", inst.G.N(), inst.Terminals)
	}
	if truth[Fig1T7] != 1.5 || collude[Fig1T7] != 1.49 {
		t.Errorf("profiles wrong: %g %g", truth[Fig1T7], collude[Fig1T7])
	}
	// The intended optimum: D (weight 4) spans {1,5,6}; 7 needs A (3).
	opt, ok := nwst.ExactSmall(inst, 10)
	if !ok || math.Abs(opt-6) > 1e-12 {
		t.Errorf("exact = %g want 6 (A + P or A + D−...)", opt)
	}
}

func TestFig1MinRatioSpiderIsSp2(t *testing.T) {
	inst, _, _ := Fig1NWST(0.01)
	st := nwst.NewState(inst)
	sp, ok := nwst.KleinRaviOracle(st, 3)
	if !ok {
		t.Fatal("no spider")
	}
	if math.Abs(sp.Ratio-1) > 1e-12 || sp.Paying != 3 {
		t.Fatalf("first spider should be Sp2 (ratio 1 over 3 terminals), got %+v", sp)
	}
	// Its terminals are 1, 5, 7.
	want := []int{Fig1T1, Fig1T5, Fig1T7}
	for i, w := range want {
		if sp.Terms[i] != w {
			t.Fatalf("spider terms = %v want %v", sp.Terms, want)
		}
	}
}

func TestPentagonGeometry(t *testing.T) {
	p := Pentagon(8, 2)
	if len(p.Externals) != 5 || len(p.Internals) != 5 {
		t.Fatal("wrong agent counts")
	}
	pts := p.Net.Points()
	for _, x := range p.Externals {
		if math.Abs(pts[x].Norm()-8) > 1e-9 {
			t.Errorf("external at radius %g", pts[x].Norm())
		}
	}
	for _, y := range p.Internals {
		if math.Abs(pts[y].Norm()-4) > 1e-9 {
			t.Errorf("internal at radius %g", pts[y].Norm())
		}
	}
	// Each internal is equidistant from its two closest externals.
	for i, y := range p.Internals {
		d1 := geom.Dist(pts[y], pts[p.Externals[i]])
		d2 := geom.Dist(pts[y], pts[p.Externals[(i+1)%5]])
		if math.Abs(d1-d2) > 1e-9 {
			t.Errorf("internal %d not equidistant: %g vs %g", i, d1, d2)
		}
	}
	// The relay graph must connect everything to the source.
	reach, _, _ := paths.BFS(p.Chain, p.Source)
	for v, ok := range reach {
		if !ok {
			t.Fatalf("station %d unreachable in chain graph", v)
		}
	}
}

func TestPentagonCostSanity(t *testing.T) {
	p := Pentagon(8, 2)
	if p.Cost(nil) != 0 {
		t.Error("empty cost must be 0")
	}
	single := p.Cost(p.Externals[:1])
	pair := p.Cost(p.Externals[:2])
	grand := p.Cost(p.Externals)
	if single <= 0 || pair < single-1e-9 || grand < pair-1e-9 {
		t.Errorf("costs not monotone: single=%g pair=%g grand=%g", single, pair, grand)
	}
	// Reaching one external costs roughly m unit hops (≈ 8), certainly
	// less than the direct m^α = 64 blast.
	if single > 16 {
		t.Errorf("single = %g, expected chain-hop scale ≈ 8", single)
	}
	// Lemma 3.3's driver: serving adjacent externals via the shared
	// internal is cheaper than two separate lines.
	if pair > 2*single-1 {
		t.Errorf("pair = %g should save over 2×single = %g via the internal relay", pair, 2*single)
	}
}

func TestRandomGeneratorsDeterministic(t *testing.T) {
	a := RandomEuclidean(rand.New(rand.NewSource(9)), 6, 2, 2, 10)
	b := RandomEuclidean(rand.New(rand.NewSource(9)), 6, 2, 2, 10)
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			if a.C(i, j) != b.C(i, j) {
				t.Fatal("RandomEuclidean not deterministic under a fixed seed")
			}
		}
	}
	l := RandomLine(rand.New(rand.NewSource(1)), 5, 2, 10)
	if l.Dim() != 1 || l.N() != 5 {
		t.Error("RandomLine malformed")
	}
	s := RandomSymmetric(rand.New(rand.NewSource(1)), 5, 0.5, 10)
	if s.IsEuclidean() {
		t.Error("RandomSymmetric should be abstract")
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j && (s.C(i, j) < 0.5 || s.C(i, j) > 10) {
				t.Errorf("cost out of range: %g", s.C(i, j))
			}
			if s.C(i, j) != s.C(j, i) {
				t.Error("asymmetric cost")
			}
		}
	}
}
