package instances

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"wmcs/internal/wireless"
)

// Spec names one network drawn from the scenario registry: the scenario
// family plus the generator parameters. It is the unit of manifest-driven
// construction — the serving layer's startup manifests and the workload
// driver both describe their networks as Specs — and it is deterministic:
// the same Spec always builds the same network, because the generator rng
// is seeded from the Spec alone.
type Spec struct {
	// Name is the handle the network is registered under. Optional for
	// direct Build calls; the serving registry requires it.
	Name string `json:"name"`
	// Scenario is a registry family name (see ScenarioNames), or "euclid",
	// the CLI's legacy spelling of "uniform" honouring Dim.
	Scenario string `json:"scenario"`
	// N is the station count (station 0 is the source in every family but
	// "line").
	N int `json:"n"`
	// Alpha is the distance-power gradient (ignored by "symmetric";
	// defaulted to 2 when zero).
	Alpha float64 `json:"alpha,omitempty"`
	// Seed seeds the generator rng.
	Seed int64 `json:"seed"`
	// Dim is the Euclidean dimension for the legacy "euclid" scenario
	// (defaulted to 2 when zero); registry families fix their own geometry.
	Dim int `json:"dim,omitempty"`
}

// String renders the spec compactly for logs and table headers.
func (s Spec) String() string {
	name := s.Name
	if name == "" {
		name = s.Scenario
	}
	return fmt.Sprintf("%s(%s n=%d α=%g seed=%d)", name, s.Scenario, s.N, s.Alpha, s.Seed)
}

// ParseManifest reads a manifest — a JSON array of Specs — rejecting
// unknown fields so typos fail loudly at parse time. It is the one
// manifest parser: the serving registry and the workload driver both
// use it, so a manifest one accepts the other accepts too.
func ParseManifest(src io.Reader) ([]Spec, error) {
	var specs []Spec
	dec := json.NewDecoder(src)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("instances: parsing manifest: %w", err)
	}
	return specs, nil
}

// Build draws the spec's network. It validates the scenario name and the
// station count, applies the Alpha/Dim defaults, and returns the same
// network for the same spec every time.
func (s Spec) Build() (*wireless.Network, error) {
	if s.N < 2 {
		return nil, fmt.Errorf("instances: spec %q needs n >= 2 stations, have %d", s.Name, s.N)
	}
	alpha := s.Alpha
	if alpha == 0 {
		alpha = 2
	}
	rng := rand.New(rand.NewSource(s.Seed))
	if s.Scenario == "euclid" {
		d := s.Dim
		if d == 0 {
			d = 2
		}
		return RandomEuclidean(rng, s.N, d, alpha, 10), nil
	}
	sc, err := ScenarioByName(s.Scenario)
	if err != nil {
		return nil, err
	}
	return sc.Gen(rng, s.N, alpha), nil
}
