package instances

import (
	"math/rand"
	"testing"

	"wmcs/internal/wireless"
)

func churnNet(t *testing.T, scenario string, seed int64) *wireless.Network {
	t.Helper()
	nw, err := Spec{Name: "c", Scenario: scenario, N: 10, Alpha: 2, Seed: seed}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// TestChurnStreamsAreDeterministicAndReplayable: two churners with
// equal seeds emit equal streams, and replaying a stream against an
// independent replica reproduces the churner's internal state — cost
// matrix, versions and all. That replay property is what the workload
// driver's generation-pinned verification rests on.
func TestChurnStreamsAreDeterministicAndReplayable(t *testing.T) {
	for _, tc := range []struct{ model, scenario string }{
		{"mobility", "uniform"},
		{"battery", "symmetric"},
	} {
		m, err := ChurnByName(tc.model)
		if err != nil {
			t.Fatal(err)
		}
		nw := churnNet(t, tc.scenario, 77)
		if !m.Applies(nw) {
			t.Fatalf("%s does not apply to %s", tc.model, tc.scenario)
		}
		replica := nw.Snapshot()
		a := m.New(rand.New(rand.NewSource(5)), nw, ChurnOptions{})
		b := m.New(rand.New(rand.NewSource(5)), nw, ChurnOptions{})
		for step := 0; step < 12; step++ {
			ua, ub := a.Next(), b.Next()
			if ua.Ops() != ub.Ops() {
				t.Fatalf("%s step %d: streams diverge (%d vs %d ops)", tc.model, step, ua.Ops(), ub.Ops())
			}
			if ua.Empty() {
				t.Fatalf("%s step %d: empty update", tc.model, step)
			}
			if err := ua.Apply(replica); err != nil {
				t.Fatalf("%s step %d: replay failed: %v", tc.model, step, err)
			}
		}
		if replica.Version() == 0 {
			t.Fatalf("%s: replay did not advance the version", tc.model)
		}
		// The churner's internal state and the replayed replica agree.
		inner := probeChurnState(a)
		if inner.Version() != replica.Version() {
			t.Fatalf("%s: churner at version %d, replica at %d", tc.model, inner.Version(), replica.Version())
		}
		for i := 0; i < replica.N(); i++ {
			for j := 0; j < replica.N(); j++ {
				if inner.C(i, j) != replica.C(i, j) {
					t.Fatalf("%s: cost (%d,%d) diverged: %g vs %g", tc.model, i, j, inner.C(i, j), replica.C(i, j))
				}
			}
		}
	}
}

// probeChurnState reaches into a churner for its tracked network.
func probeChurnState(c Churner) *wireless.Network {
	switch c := c.(type) {
	case *mobilityChurner:
		return c.state
	case *batteryChurner:
		return c.state
	}
	panic("unknown churner type")
}

// TestChurnModelForPartitionsClasses: auto-selection picks mobility for
// Euclidean deployments and battery for abstract ones.
func TestChurnModelForPartitionsClasses(t *testing.T) {
	if m := ChurnModelFor(churnNet(t, "uniform", 1)); m.Name != "mobility" {
		t.Fatalf("uniform -> %s", m.Name)
	}
	if m := ChurnModelFor(churnNet(t, "symmetric", 1)); m.Name != "battery" {
		t.Fatalf("symmetric -> %s", m.Name)
	}
	if _, err := ChurnByName("bogus"); err == nil {
		t.Fatal("unknown churn model accepted")
	}
}

// TestMobilityStaysInBoundingBox: drifted coordinates stay within the
// deployment's initial bounding box (the scenario's scale).
func TestMobilityStaysInBoundingBox(t *testing.T) {
	nw := churnNet(t, "clustered", 9)
	lo := []float64{nw.Points()[0][0], nw.Points()[0][1]}
	hi := append([]float64(nil), lo...)
	for _, p := range nw.Points() {
		for d, v := range p {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	c := ChurnModels()[0].New(rand.New(rand.NewSource(3)), nw, ChurnOptions{Step: 0.5})
	replica := nw.Snapshot()
	for step := 0; step < 20; step++ {
		if err := c.Next().Apply(replica); err != nil {
			t.Fatal(err)
		}
	}
	for s, p := range replica.Points() {
		for d, v := range p {
			if v < lo[d] || v > hi[d] {
				t.Fatalf("station %d drifted outside the box: coord %d = %g not in [%g, %g]", s, d, v, lo[d], hi[d])
			}
		}
	}
}

// TestBatteryFlapsAndDrains: over a long stream the battery model both
// drains (costs grow) and flaps (stations disable/enable), and never
// emits an invalid op.
func TestBatteryFlapsAndDrains(t *testing.T) {
	nw := churnNet(t, "symmetric", 21)
	total0 := 0.0
	for i := 0; i < nw.N(); i++ {
		for j := i + 1; j < nw.N(); j++ {
			total0 += nw.C(i, j)
		}
	}
	c := ChurnByNameMust(t, "battery").New(rand.New(rand.NewSource(8)), nw, ChurnOptions{FlapProb: 0.5})
	replica := nw.Snapshot()
	flaps := 0
	for step := 0; step < 40; step++ {
		u := c.Next()
		flaps += len(u.Disable) + len(u.Enable)
		if err := u.Apply(replica); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	if flaps == 0 {
		t.Fatal("no flaps in 40 updates at FlapProb 0.5")
	}
	grew := false
	for i := 0; i < replica.N() && !grew; i++ {
		for j := i + 1; j < replica.N(); j++ {
			if replica.StationEnabled(i) && replica.StationEnabled(j) && replica.C(i, j) > nw.C(i, j) {
				grew = true
				break
			}
		}
	}
	if !grew {
		t.Fatal("no cost drained upward in 40 updates")
	}
}

// ChurnByNameMust is the test-side lookup helper.
func ChurnByNameMust(t *testing.T, name string) ChurnModel {
	t.Helper()
	m, err := ChurnByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
