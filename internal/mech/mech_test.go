package mech

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestOutcomeHelpers(t *testing.T) {
	o := Outcome{
		Receivers: []int{1, 3},
		Shares:    map[int]float64{1: 2, 3: 1},
		Cost:      3,
	}
	if !o.IsReceiver(3) || o.IsReceiver(2) {
		t.Error("IsReceiver wrong")
	}
	if o.Share(1) != 2 || o.Share(2) != 0 {
		t.Error("Share wrong")
	}
	if o.TotalShares() != 3 {
		t.Errorf("TotalShares = %g", o.TotalShares())
	}
	u := Profile{0, 5, 0, 1.5}
	if got := o.Welfare(u, 1); got != 3 {
		t.Errorf("Welfare(1) = %g", got)
	}
	if got := o.Welfare(u, 2); got != 0 {
		t.Errorf("Welfare(2) = %g", got)
	}
	if got := o.NetWorth(u); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("NetWorth = %g", got)
	}
	c := u.Clone()
	c[1] = 99
	if u[1] != 5 {
		t.Error("Clone aliases")
	}
}

func TestAxiomCheckers(t *testing.T) {
	good := Outcome{Receivers: []int{0}, Shares: map[int]float64{0: 1}, Cost: 1}
	u := Profile{2}
	if err := CheckAll(u, good); err != nil {
		t.Errorf("good outcome rejected: %v", err)
	}
	if err := CheckNPT(Outcome{Shares: map[int]float64{0: -1}}); err == nil {
		t.Error("negative share accepted")
	}
	if err := CheckVP(Profile{0.5}, good); err == nil {
		t.Error("overcharge accepted")
	}
	if err := CheckVP(Profile{2}, Outcome{Receivers: nil, Shares: map[int]float64{0: 1}}); err == nil {
		t.Error("charging a non-receiver accepted")
	}
	if err := CheckCostRecovery(Outcome{Shares: map[int]float64{0: 1}, Cost: 2}); err == nil {
		t.Error("deficit accepted")
	}
	if err := CheckBetaBB(good, 1, 1); err != nil {
		t.Errorf("1-BB rejected: %v", err)
	}
	if err := CheckBetaBB(Outcome{Receivers: []int{0}, Shares: map[int]float64{0: 5}, Cost: 5}, 1, 2); err == nil {
		t.Error("overcharging vs β·opt accepted")
	}
}

// fixedPrice is a strategyproof posted-price mechanism: serve anyone whose
// report meets the price; charge the price.
type fixedPrice struct {
	n     int
	price float64
}

func (m fixedPrice) Name() string { return "fixed-price" }
func (m fixedPrice) Agents() []int {
	out := make([]int, m.n)
	for i := range out {
		out[i] = i
	}
	return out
}
func (m fixedPrice) Run(u Profile) Outcome {
	o := Outcome{Shares: map[int]float64{}}
	for i := 0; i < m.n; i++ {
		if u[i] >= m.price {
			o.Receivers = append(o.Receivers, i)
			o.Shares[i] = m.price
			o.Cost += m.price
		}
	}
	return o
}

// reportProportional charges half the report — blatantly manipulable.
type reportProportional struct{ n int }

func (m reportProportional) Name() string  { return "report-proportional" }
func (m reportProportional) Agents() []int { return fixedPrice{n: m.n}.Agents() }
func (m reportProportional) Run(u Profile) Outcome {
	o := Outcome{Shares: map[int]float64{}}
	for i := 0; i < m.n; i++ {
		if u[i] > 0 {
			o.Receivers = append(o.Receivers, i)
			o.Shares[i] = u[i] / 2
			o.Cost += u[i] / 2
		}
	}
	return o
}

// crowdDiscount gives everyone a lower price when many agents bid high —
// strategyproof for a single agent? No: it is SP-ish individually but a
// coalition jointly exaggerating lowers everyone's price, breaking GSP.
type crowdDiscount struct{ n int }

func (m crowdDiscount) Name() string  { return "crowd-discount" }
func (m crowdDiscount) Agents() []int { return fixedPrice{n: m.n}.Agents() }
func (m crowdDiscount) Run(u Profile) Outcome {
	high := 0
	for i := 0; i < m.n; i++ {
		if u[i] >= 5 {
			high++
		}
	}
	price := 2.0
	if high >= 2 {
		price = 1.0
	}
	o := Outcome{Shares: map[int]float64{}}
	for i := 0; i < m.n; i++ {
		if u[i] >= price {
			o.Receivers = append(o.Receivers, i)
			o.Shares[i] = price
			o.Cost += price
		}
	}
	return o
}

func TestCheckStrategyproof(t *testing.T) {
	truth := Profile{1, 2.5, 0.4, 3}
	if err := CheckStrategyproof(fixedPrice{n: 4, price: 1}, truth, nil); err != nil {
		t.Errorf("fixed price flagged: %v", err)
	}
	if err := CheckStrategyproof(reportProportional{n: 4}, truth, nil); err == nil {
		t.Error("manipulable mechanism passed")
	}
}

func TestCheckGroupStrategyproof(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	truth := Profile{3, 3, 3, 3}
	if err := CheckGroupStrategyproof(fixedPrice{n: 4, price: 1}, truth, rng, 200, nil); err != nil {
		t.Errorf("fixed price flagged: %v", err)
	}
	if err := CheckGroupStrategyproof(crowdDiscount{n: 4}, truth, rng, 500, nil); err == nil {
		t.Error("collusion-prone mechanism passed")
	}
}

func TestCheckCS(t *testing.T) {
	if err := CheckCS(fixedPrice{n: 3, price: 1}, Profile{0, 0, 0}, 100); err != nil {
		t.Errorf("CS flagged: %v", err)
	}
	// A mechanism that never serves agent 2 fails CS.
	bad := MechanismFunc{
		name:   "never-2",
		agents: []int{0, 1, 2},
		run: func(u Profile) Outcome {
			o := Outcome{Shares: map[int]float64{}}
			for i := 0; i < 2; i++ {
				if u[i] > 0 {
					o.Receivers = append(o.Receivers, i)
				}
			}
			return o
		},
	}
	if err := CheckCS(bad, Profile{0, 0, 0}, 100); err == nil {
		t.Error("CS violation missed")
	}
}

// MechanismFunc is a tiny test helper.
type MechanismFunc struct {
	name   string
	agents []int
	run    func(Profile) Outcome
}

func (m MechanismFunc) Name() string          { return m.name }
func (m MechanismFunc) Agents() []int         { return m.agents }
func (m MechanismFunc) Run(u Profile) Outcome { return m.run(u) }

func TestBruteForceNetWorth(t *testing.T) {
	agents := []int{0, 1, 2}
	u := Profile{2, 3, 1}
	// C(R) = 2·|R|: serve exactly those with u_i > 2 → {1}, NW = 1.
	cost := func(R []int) float64 { return 2 * float64(len(R)) }
	if got := BruteForceNetWorth(agents, u, cost); math.Abs(got-1) > 1e-12 {
		t.Errorf("NW = %g want 1", got)
	}
	// Empty set is allowed: all utilities below cost → NW 0.
	if got := BruteForceNetWorth(agents, Profile{0.1, 0.1, 0.1}, cost); got != 0 {
		t.Errorf("NW = %g want 0", got)
	}
}

func TestProfiles(t *testing.T) {
	u := UniformProfile(3, 2.5)
	if len(u) != 3 || u[2] != 2.5 {
		t.Errorf("UniformProfile = %v", u)
	}
	r := RandomProfile(rand.New(rand.NewSource(1)), 5, 4)
	if len(r) != 5 {
		t.Fatalf("len = %d", len(r))
	}
	for _, v := range r {
		if v < 0 || v >= 4 {
			t.Errorf("value %g out of range", v)
		}
	}
}

func TestDefaultDeviationFactorsSorted(t *testing.T) {
	f := append([]float64(nil), DefaultDeviationFactors...)
	sort.Float64s(f)
	if f[0] != 0 {
		t.Error("factor 0 (drop out) must be present")
	}
	hasOver := false
	for _, v := range f {
		if v > 1 {
			hasOver = true
		}
	}
	if !hasOver {
		t.Error("over-reporting factors must be present")
	}
}
