// Package mech defines the cost-sharing mechanism abstraction of the
// paper and the axiom checkers used by the simulated evaluation: no
// positive transfers (NPT), voluntary participation (VP), consumer
// sovereignty (CS), cost recovery, β-approximate budget balance (β-BB),
// strategyproofness and group strategyproofness.
//
// A mechanism maps a reported utility profile to an outcome: the receiver
// set R(u), the cost C(R(u)) of the solution built, and a cost share per
// receiver. Axioms are checked either exactly (NPT, VP, cost recovery,
// β-BB) or by adversarial deviation sampling (SP, GSP, CS), which is the
// standard empirical methodology for mechanism properties.
package mech

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Profile is a reported utility profile, indexed by agent id. Entries for
// non-agents (e.g. the source station) are ignored by mechanisms.
type Profile []float64

// Clone returns an independent copy of the profile.
func (u Profile) Clone() Profile {
	v := make(Profile, len(u))
	copy(v, u)
	return v
}

// Outcome is the result of running a mechanism on a profile.
type Outcome struct {
	Receivers []int           // selected receiver set R(u), sorted
	Shares    map[int]float64 // cost share per receiver; absent ⇒ 0
	Cost      float64         // cost C(R(u)) of the solution built
}

// IsReceiver reports whether agent i is served.
func (o Outcome) IsReceiver(i int) bool {
	idx := sort.SearchInts(o.Receivers, i)
	return idx < len(o.Receivers) && o.Receivers[idx] == i
}

// Share returns agent i's cost share (0 for non-receivers).
func (o Outcome) Share(i int) float64 { return o.Shares[i] }

// TotalShares returns Σ_i shares, summed in agent order so the float
// result is identical across runs (map iteration order would otherwise
// perturb the low bits and break reproducible table output).
func (o Outcome) TotalShares() float64 {
	ids := make([]int, 0, len(o.Shares))
	for i := range o.Shares {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	var s float64
	for _, i := range ids {
		s += o.Shares[i]
	}
	return s
}

// Welfare returns agent i's individual welfare w_i = u_i − c_i if served,
// 0 otherwise.
func (o Outcome) Welfare(u Profile, i int) float64 {
	if !o.IsReceiver(i) {
		return 0
	}
	return u[i] - o.Shares[i]
}

// NetWorth returns the overall welfare NW = Σ_{i∈R} u_i − C(R).
func (o Outcome) NetWorth(u Profile) float64 {
	var s float64
	for _, r := range o.Receivers {
		s += u[r]
	}
	return s - o.Cost
}

// Mechanism is a cost-sharing mechanism over a fixed agent set.
type Mechanism interface {
	// Name identifies the mechanism in reports.
	Name() string
	// Agents returns the agent ids the mechanism serves, sorted.
	Agents() []int
	// Run executes the mechanism on a reported profile.
	Run(u Profile) Outcome
}

// Eps is the default tolerance for axiom checks.
const Eps = 1e-7

// CheckNPT verifies no positive transfers: every share is nonnegative.
// (It iterates the Shares map directly: the pass/fail verdict is
// order-independent; only which violation is named first can vary, and
// no deterministic output depends on the message.)
func CheckNPT(o Outcome) error {
	for i, c := range o.Shares {
		if c < -Eps {
			return fmt.Errorf("NPT violated: agent %d share %g < 0", i, c)
		}
	}
	return nil
}

// CheckVP verifies voluntary participation: receivers never pay more than
// their reported utility, and non-receivers pay nothing. Like CheckNPT,
// its verdict is independent of the Shares map iteration order.
func CheckVP(u Profile, o Outcome) error {
	for i, c := range o.Shares {
		if !o.IsReceiver(i) && c > Eps {
			return fmt.Errorf("VP violated: non-receiver %d charged %g", i, c)
		}
		if o.IsReceiver(i) && c > u[i]+Eps {
			return fmt.Errorf("VP violated: agent %d charged %g > utility %g", i, c, u[i])
		}
	}
	return nil
}

// CheckCostRecovery verifies Σ shares ≥ cost.
func CheckCostRecovery(o Outcome) error {
	if tot := o.TotalShares(); tot < o.Cost-Eps {
		return fmt.Errorf("cost recovery violated: shares %g < cost %g", tot, o.Cost)
	}
	return nil
}

// CheckBetaBB verifies β-approximate budget balance against the optimal
// cost: cost recovery plus Σ shares ≤ β·opt.
func CheckBetaBB(o Outcome, opt, beta float64) error {
	if err := CheckCostRecovery(o); err != nil {
		return err
	}
	if tot := o.TotalShares(); tot > beta*opt+Eps {
		return fmt.Errorf("%g-BB violated: shares %g > %g·opt (opt=%g)", beta, tot, beta*opt, opt)
	}
	return nil
}

// CheckCS verifies consumer sovereignty empirically: for each agent, with
// the other agents reporting u, reporting the huge utility `high` gets the
// agent served.
func CheckCS(m Mechanism, u Profile, high float64) error {
	for _, i := range m.Agents() {
		v := u.Clone()
		v[i] = high
		if o := m.Run(v); !o.IsReceiver(i) {
			return fmt.Errorf("CS violated: agent %d not served despite bid %g", i, high)
		}
	}
	return nil
}

// DefaultDeviationFactors are the multiplicative misreports used by the
// strategyproofness checkers: shading to zero, under-reporting,
// over-reporting and a large exaggeration.
var DefaultDeviationFactors = []float64{0, 0.25, 0.5, 0.9, 0.99, 1.01, 1.5, 3, 10}

// CheckStrategyproof verifies, for each agent and each deviation factor,
// that truthful reporting yields at least the welfare of the misreport
// (with the true utility used to evaluate welfare in both cases).
func CheckStrategyproof(m Mechanism, truth Profile, factors []float64) error {
	if factors == nil {
		factors = DefaultDeviationFactors
	}
	honest := m.Run(truth)
	for _, i := range m.Agents() {
		truthful := honest.Welfare(truth, i)
		for _, f := range factors {
			v := truth.Clone()
			v[i] = truth[i] * f
			if v[i] == truth[i] {
				continue
			}
			dev := m.Run(v)
			if got := dev.Welfare(truth, i); got > truthful+Eps {
				return fmt.Errorf("SP violated: agent %d gains %g > %g by reporting %g instead of %g",
					i, got, truthful, v[i], truth[i])
			}
		}
	}
	return nil
}

// CheckGroupStrategyproof samples random coalitions and joint deviations
// and verifies that no coalition can make a member strictly better off
// without making some member worse off. It returns nil if no violation is
// found among the sampled deviations (a one-sided check, as in the paper's
// own counterexample methodology).
func CheckGroupStrategyproof(m Mechanism, truth Profile, rng *rand.Rand, coalitions int, factors []float64) error {
	if factors == nil {
		factors = DefaultDeviationFactors
	}
	agents := m.Agents()
	if len(agents) < 2 {
		return nil
	}
	honest := m.Run(truth)
	base := make(map[int]float64, len(agents))
	for _, i := range agents {
		base[i] = honest.Welfare(truth, i)
	}
	for trial := 0; trial < coalitions; trial++ {
		size := 2 + rng.Intn(len(agents)-1)
		perm := rng.Perm(len(agents))[:size]
		v := truth.Clone()
		coalition := make([]int, 0, size)
		for _, idx := range perm {
			i := agents[idx]
			coalition = append(coalition, i)
			v[i] = truth[i] * factors[rng.Intn(len(factors))]
		}
		dev := m.Run(v)
		anyBetter, anyWorse := false, false
		for _, i := range coalition {
			w := dev.Welfare(truth, i)
			if w > base[i]+Eps {
				anyBetter = true
			}
			if w < base[i]-Eps {
				anyWorse = true
			}
		}
		if anyBetter && !anyWorse {
			sort.Ints(coalition)
			return fmt.Errorf("GSP violated by coalition %v (trial %d)", coalition, trial)
		}
	}
	return nil
}

// CheckAll bundles NPT, VP and cost recovery for a single outcome.
func CheckAll(u Profile, o Outcome) error {
	if err := CheckNPT(o); err != nil {
		return err
	}
	if err := CheckVP(u, o); err != nil {
		return err
	}
	return CheckCostRecovery(o)
}

// UniformProfile returns a profile with every agent at utility val.
func UniformProfile(n int, val float64) Profile {
	u := make(Profile, n)
	for i := range u {
		u[i] = val
	}
	return u
}

// RandomProfile returns utilities drawn uniformly from [0, max) for every
// index (callers overwrite or ignore non-agent slots).
func RandomProfile(rng *rand.Rand, n int, max float64) Profile {
	u := make(Profile, n)
	for i := range u {
		u[i] = rng.Float64() * max
	}
	return u
}

// BruteForceNetWorth maximizes Σ_{i∈R} u_i − C(R) over all subsets of
// agents by enumeration (≤ 20 agents), returning the best net worth. It
// is the efficiency reference for the MC mechanism experiments.
func BruteForceNetWorth(agents []int, u Profile, C func(R []int) float64) float64 {
	if len(agents) > 20 {
		panic("mech: BruteForceNetWorth limited to 20 agents")
	}
	best := math.Inf(-1)
	k := len(agents)
	R := make([]int, 0, k)
	for mask := 0; mask < 1<<k; mask++ {
		R = R[:0]
		var util float64
		for b := 0; b < k; b++ {
			if mask&(1<<b) != 0 {
				R = append(R, agents[b])
				util += u[agents[b]]
			}
		}
		if nw := util - C(R); nw > best {
			best = nw
		}
	}
	return best
}
