package mech

import "fmt"

// This file defines the approximate-evaluation contract. Some mechanisms
// offer, besides the exact Run, a sampled tier: the same Moulin–Shenker
// iteration driven by a sampled-permutation Shapley estimator instead of
// the 2^k exact enumeration, with an explicit (ε, δ) certificate on the
// final shares. The tiers never mix: a request either runs exact or runs
// sampled with a full certificate, and the serving layer keys its cache
// so the two can never collide.

// ApproxSpec selects and parameterizes the sampled tier of a mechanism
// that implements ApproxRunner.
type ApproxSpec struct {
	// Samples is the number of sampled permutations per share
	// evaluation, ≥ 1. More samples shrink ε at the usual 1/√m rate.
	Samples int
	// Delta is the certificate's failure-probability budget in (0, 1):
	// with probability ≥ 1−Delta every reported share is within the
	// certificate's Epsilon of its exact value.
	Delta float64
	// Seed pins the permutation stream. Equal (Samples, Delta, Seed)
	// specs on equal inputs reproduce byte-equal outcomes.
	Seed int64
}

// Validate rejects specs outside the contract; the error is suitable to
// surface to a client verbatim.
func (s ApproxSpec) Validate() error {
	if s.Samples < 1 {
		return fmt.Errorf("approx: samples must be >= 1, got %d", s.Samples)
	}
	if !(s.Delta > 0 && s.Delta < 1) { // also rejects NaN
		return fmt.Errorf("approx: delta must be in (0,1), got %g", s.Delta)
	}
	return nil
}

// ApproxCert is the statistical guarantee returned with a sampled
// outcome: with probability at least 1−Delta, every reported share is
// within Epsilon of the exact Shapley share of the same receiver set
// (Hoeffding over Samples permutation marginals, union-bounded over the
// agents; DeltaMax is the marginal range the bound used).
type ApproxCert struct {
	Samples  int
	Epsilon  float64
	Delta    float64
	DeltaMax float64
}

// ApproxRunner is implemented by mechanisms with a sampled tier.
type ApproxRunner interface {
	Mechanism
	// RunApprox executes the sampled tier. The error reports an invalid
	// spec; a valid spec always produces an outcome plus certificate.
	RunApprox(u Profile, spec ApproxSpec) (Outcome, ApproxCert, error)
}
