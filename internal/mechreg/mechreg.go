// Package mechreg is the mechanism descriptor registry: the single
// source of truth for the mechanism family the paper constructs — their
// registry names, declared domains (general symmetric, Euclidean α = 1,
// d = 1), declared theorem guarantees (β-budget-balance, SP vs GSP,
// NPT/VP/CS), paper anchors, and constructors. Every layer that needs to
// know "what mechanisms exist and where do they apply" — the query
// engine, the serving layer, the experiment sweeps, the CLIs, the public
// façade — reads this registry instead of keeping its own name list, so
// the declared guarantees are machine-checkable in one place (see
// conformance.go) and a new mechanism family plugs in by adding one
// Descriptor to registry.go.
//
// The Descriptor type conceptually belongs next to mech.Mechanism, but
// it lives here rather than in package mech because descriptors close
// over every mechanism package (universal, wmech, euclid1, jv) — all of
// which import mech — and because BuildContext carries concrete
// substrate types (memtred.Reduction, universal.Tree, nwst.Oracle) that
// would cycle back into mech the same way. DESIGN.md §9 records the
// contract.
package mechreg

import (
	"errors"
	"fmt"
	"strings"

	"wmcs/internal/engine"
	"wmcs/internal/mech"
	"wmcs/internal/memtred"
	"wmcs/internal/nwst"
	"wmcs/internal/sharing"
	"wmcs/internal/universal"
	"wmcs/internal/wireless"
)

// ErrUnknownMechanism marks a lookup of a name no descriptor registers.
// Callers branch on it with errors.Is; the serving layer maps it to 400.
var ErrUnknownMechanism = errors.New("unknown mechanism")

// ErrUnsupportedDomain marks a build attempt on a network outside the
// mechanism's declared domain (e.g. a d = 1 mechanism on a planar
// network). The name is valid — only the (mechanism, network) pairing is
// not — so the serving layer maps it to a structured 422, distinct from
// the 400 of ErrUnknownMechanism.
var ErrUnsupportedDomain = errors.New("unsupported network domain")

// Strength is a strategyproofness grade: SP (no single agent profits by
// misreporting) or GSP (no coalition profits without hurting a member).
type Strength int

const (
	// SP is plain strategyproofness.
	SP Strength = iota
	// GSP is group strategyproofness (implies SP).
	GSP
)

// String renders the grade the way the paper's tables abbreviate it.
func (s Strength) String() string {
	if s == GSP {
		return "GSP"
	}
	return "SP"
}

// BBReference names the cost a budget-balance guarantee is stated
// against. The distinction matters for checking: the universal-tree
// Shapley mechanism balances exactly against the cost of the tree
// solution it builds (which may exceed the optimum without bound on
// adversarial geometries), while the β-BB theorems bound Σ shares by
// β·C*(R) against the true optimum.
type BBReference int

const (
	// BBNone: no budget-balance or cost-recovery guarantee (the
	// marginal-cost mechanisms, which trade budget balance for
	// efficiency — the §1.1 impossibility).
	BBNone BBReference = iota
	// BBSolution: Σ shares equals the cost of the solution the
	// mechanism built, exactly (β = 1 against its own cost function).
	BBSolution
	// BBOptimum: cost recovery plus Σ shares ≤ β(nw, k) · C*(R) against
	// the exact multicast optimum.
	BBOptimum
)

// String renders the reference for metadata listings.
func (r BBReference) String() string {
	switch r {
	case BBSolution:
		return "solution"
	case BBOptimum:
		return "optimum"
	}
	return "none"
}

// Guarantees is the machine-checkable statement of a mechanism's
// theorem: what the paper declares, in the form the conformance harness
// verifies (conformance.go).
type Guarantees struct {
	// BB states which budget-balance guarantee holds (see BBReference).
	BB BBReference
	// Beta returns the declared budget-balance factor for a k-receiver
	// outcome on nw; only consulted when BB == BBOptimum. A return
	// ≤ 0 means the theorem declares no factor for this network class
	// (e.g. the moat mechanism outside Euclidean geometry), so the β
	// check is skipped there while cost recovery still applies.
	Beta func(nw *wireless.Network, k int) float64
	// BetaLabel is the human form of Beta for tables: "1", "3·ln(k+1)",
	// "2(3^d−1)". Empty when BB == BBNone.
	BetaLabel string
	// Strategyproofness is the declared grade, checked by deviation
	// sampling with the matching checker (SP: unilateral deviations;
	// GSP: sampled coalitions too).
	Strategyproofness Strength
	// SPGap names a documented finding (EXPERIMENTS.md) when the
	// paper's strategyproofness claim has a known counterexample; the
	// conformance harness then reports sampled violations as the known
	// gap instead of failing. Empty for mechanisms whose claim holds.
	SPGap string
	// NPT, VP, CS are the declared axioms: no positive transfers,
	// voluntary participation, consumer sovereignty.
	NPT, VP, CS bool
	// Efficient marks the mechanisms that maximize net worth (the
	// marginal-cost family) — metadata only, measured by E3/E7/E8.
	Efficient bool
}

// BBLabel renders the declared budget-balance guarantee for listings:
// "1-BB (vs its solution)", "3·ln(k+1)-BB (vs C*)", or "no BB". Every
// human-facing rendering (the README table, cmd/wmcs -list) goes
// through this one method so the semantics cannot fork.
func (g Guarantees) BBLabel() string {
	switch g.BB {
	case BBSolution:
		return g.BetaLabel + "-BB (vs its solution)"
	case BBOptimum:
		return g.BetaLabel + "-BB (vs C*)"
	}
	return "no BB"
}

// SPLabel renders the strategyproofness grade for listings: "GSP" or
// "SP", a "*" marking a declared gap (SPGap), ", efficient" appended
// for the marginal-cost family.
func (g Guarantees) SPLabel() string {
	s := g.Strategyproofness.String()
	if g.SPGap != "" {
		s += "*"
	}
	if g.Efficient {
		s += ", efficient"
	}
	return s
}

// Descriptor declares one registry mechanism: identity, domain,
// guarantees, and how to build it over the shared substrate.
type Descriptor struct {
	// Name is the registry name, unique and stable — the one string
	// clients, caches and reports use.
	Name string
	// Family groups variants built from the same game ("universal-tree",
	// "nwst-reduction", "euclid-alpha1", "euclid-line", "moat").
	Family string
	// Domain is the human-readable network-class requirement.
	Domain string
	// PaperRef anchors the descriptor to the theorem or section that
	// proves its guarantees.
	PaperRef string
	// Desc is a one-line description for listings.
	Desc string
	// Approx declares that the built mechanism offers the sampled
	// Shapley tier (mech.ApproxRunner): requests may carry an ApproxSpec
	// and receive an (ε, δ)-certified outcome. The conformance tests
	// verify the flag against what Build actually produces, so a
	// descriptor cannot advertise a tier its mechanism lacks (or hide
	// one it has).
	Approx bool
	// Parallel declares that the mechanism has a parallel evaluation
	// tier (DESIGN.md §14): when the BuildContext carries an engine
	// pool, some part of its evaluation — the spider-oracle center
	// scans, the sampled tier's permutation streams — runs at the
	// pool's width with width-invariant bytes. Mechanisms without the
	// flag ignore the pool entirely (closed-form evaluations have
	// nothing to partition). Advertised per network in /v1/mechanisms.
	Parallel bool
	// Guarantees is the declared theorem statement.
	Guarantees Guarantees
	// Supports reports whether the mechanism's domain admits nw: nil
	// means every symmetric network. A non-nil return wraps
	// ErrUnsupportedDomain.
	Supports func(nw *wireless.Network) error
	// CarrySafe, when non-nil, is the mechanism's delta-safety predicate
	// for the serving layer's cache carry-forward pass (DESIGN.md §12):
	// it reports whether an exact-tier outcome computed on old, for the
	// canonical support set (the stations with nonzero canonical
	// utility), is provably byte-identical on new, where d is the delta
	// of the update that produced new from old. nil means "never carry"
	// — the conservative default every mechanism keeps unless a
	// documented proof argues otherwise. Implementations must never
	// return true on a hunch: a wrong true serves stale bytes.
	CarrySafe func(old, new *wireless.Network, d wireless.Delta, support []int) bool
	// Build constructs the mechanism over the shared substrate. It must
	// only be called after Supports accepted ctx's network; the registry
	// wraps the result so Name() always reports the registry name.
	Build func(ctx *BuildContext) (mech.Mechanism, error)
}

// BuildContext carries the per-network substrate a Build closure may
// need, constructed at most once and shared across every mechanism
// built for the same network: the network itself, the spider oracle
// selection, the MEMT→NWST reduction and the universal shortest-path
// tree (both built lazily on first use).
//
// A BuildContext is NOT safe for concurrent use — the query evaluator
// owns one per network and serializes access under its own mutex, which
// is the ownership rule DESIGN.md §9 documents.
type BuildContext struct {
	// Net is the network every substrate hangs off.
	Net *wireless.Network
	// Oracle is the NWST spider oracle for the general wireless
	// mechanism; nil selects nwst.BranchSpiderOracle (the paper's
	// 1.5·ln k choice) — or its parallel tier when Pool is set.
	Oracle nwst.Oracle
	// Pool, when non-nil, opts mechanisms with a parallel tier
	// (Descriptor.Parallel) into it at this width: the default spider
	// oracle becomes nwst.ParallelBranchSpiderOracle(Pool) and the
	// sampled Shapley tier shards its permutation streams over the
	// pool. An explicit Oracle always wins over the pool's default.
	Pool *engine.Pool

	rd  *memtred.Reduction
	spt *universal.Tree
}

// NewBuildContext wraps a network with an empty substrate cache.
func NewBuildContext(nw *wireless.Network) *BuildContext {
	return &BuildContext{Net: nw}
}

// Reduction returns the MEMT→NWST reduction, built on first call and
// shared by every later mechanism built from this context.
func (c *BuildContext) Reduction() *memtred.Reduction {
	if c.rd == nil {
		c.rd = memtred.New(c.Net)
	}
	return c.rd
}

// SeedReduction installs a pre-built reduction so later Reduction calls
// reuse it instead of paying memtred.New. The versioned evaluator's
// delta path seeds the incrementally rebuilt reduction
// (memtred.Rebuild) here; rd.Net must be the context's network.
func (c *BuildContext) SeedReduction(rd *memtred.Reduction) {
	if rd.Net != c.Net {
		panic("mechreg: SeedReduction: reduction built over a different network")
	}
	c.rd = rd
}

// PeekReduction returns the reduction if one has been built (or
// seeded), else nil — the donor probe of the incremental update path,
// which must not force a build just to ask.
func (c *BuildContext) PeekReduction() *memtred.Reduction { return c.rd }

// SPT returns the universal shortest-path tree, built on first call.
func (c *BuildContext) SPT() *universal.Tree {
	if c.spt == nil {
		c.spt = universal.SPT(c.Net)
	}
	return c.spt
}

// oracle resolves the context's oracle selection: an explicit Oracle,
// else the parallel default when a pool is configured, else the serial
// default.
func (c *BuildContext) oracle() nwst.Oracle {
	if c.Oracle != nil {
		return c.Oracle
	}
	if c.Pool != nil {
		return nwst.ParallelBranchSpiderOracle(c.Pool)
	}
	return nwst.BranchSpiderOracle
}

// named pins a built mechanism's reported name to its registry name, so
// the descriptor is the only place a public mechanism name is spelled:
// mechanism packages may keep package-internal default names for direct
// construction, but everything built through the registry answers with
// the descriptor's.
type named struct {
	name string
	mech.Mechanism
}

func (n named) Name() string { return n.name }

// namedApprox is named for mechanisms with a sampled tier: it forwards
// RunApprox so the mech.ApproxRunner assertion survives the name-pinning
// wrapper. build selects it exactly when the built mechanism implements
// the interface.
type namedApprox struct {
	named
	ar mech.ApproxRunner
}

// RunApprox implements mech.ApproxRunner.
func (n namedApprox) RunApprox(u mech.Profile, spec mech.ApproxSpec) (mech.Outcome, mech.ApproxCert, error) {
	return n.ar.RunApprox(u, spec)
}

// All returns the registry in presentation order (shared slice, do not
// modify). The order is the paper's: §2 general constructions first,
// then the §3 Euclidean specials.
func All() []Descriptor { return registry }

// Names lists the registry names in order.
func Names() []string {
	names := make([]string, len(registry))
	for i, d := range registry {
		names[i] = d.Name
	}
	return names
}

// Default is the registry's first name — the CLI's default mechanism.
func Default() string { return registry[0].Name }

// ByName looks a descriptor up, or fails with ErrUnknownMechanism.
func ByName(name string) (Descriptor, error) {
	for _, d := range registry {
		if d.Name == name {
			return d, nil
		}
	}
	return Descriptor{}, fmt.Errorf("wmcs: %w %q (try one of %v)", ErrUnknownMechanism, name, Names())
}

// Supports reports whether the named mechanism's declared domain admits
// nw; the error wraps ErrUnknownMechanism or ErrUnsupportedDomain.
func Supports(name string, nw *wireless.Network) error {
	d, err := ByName(name)
	if err != nil {
		return err
	}
	if d.Supports == nil {
		return nil
	}
	return d.Supports(nw)
}

// SupportedNames lists, in registry order, the mechanisms whose domain
// admits nw. This is what /v1/networks advertises per network and what
// the workload driver re-pins within.
func SupportedNames(nw *wireless.Network) []string {
	names := make([]string, 0, len(registry))
	for _, d := range registry {
		if d.Supports == nil || d.Supports(nw) == nil {
			names = append(names, d.Name)
		}
	}
	return names
}

// GeneralNames lists the mechanisms whose domain is every symmetric
// network (Supports == nil) — the set a multi-network workload can pin
// queries to without ever re-pinning.
func GeneralNames() []string {
	names := make([]string, 0, len(registry))
	for _, d := range registry {
		if d.Supports == nil {
			names = append(names, d.Name)
		}
	}
	return names
}

// Build constructs the named mechanism over ctx, enforcing the declared
// domain first. The result reports the registry name and is safe for
// concurrent Run (every registry mechanism is immutable after
// construction; the wireless mechanism's contraction states come from a
// mutex-guarded pool).
func Build(name string, ctx *BuildContext) (mech.Mechanism, error) {
	d, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return d.build(ctx)
}

// build is Descriptor-level Build: domain check, construct, pin name.
func (d Descriptor) build(ctx *BuildContext) (mech.Mechanism, error) {
	if d.Supports != nil {
		if err := d.Supports(ctx.Net); err != nil {
			return nil, err
		}
	}
	m, err := d.Build(ctx)
	if err != nil {
		return nil, err
	}
	if ctx.Pool != nil && d.Parallel {
		// The Moulin–Shenker wrappers own the sampled tier; handing them
		// the pool opts that tier into the stream-sharded estimator.
		// (wireless-bb's parallelism flows through ctx.oracle instead.)
		if mm, ok := m.(*sharing.MechanismFromMethod); ok {
			mm.Pool = ctx.Pool
		}
	}
	nm := named{name: d.Name, Mechanism: m}
	if ar, ok := m.(mech.ApproxRunner); ok {
		return namedApprox{named: nm, ar: ar}, nil
	}
	return nm, nil
}

// unsupported builds the canonical domain-mismatch error: "wmcs: <msg>"
// wrapping ErrUnsupportedDomain so every layer can branch on the type
// while the message stays what the CLIs have always printed.
func unsupported(format string, args ...any) error {
	return fmt.Errorf("wmcs: %s (%w)", fmt.Sprintf(format, args...), ErrUnsupportedDomain)
}

// MarkdownTable renders the registry as the README's mechanism table:
// one row per descriptor — name, domain, β-BB, SP/GSP, paper anchor.
// README.md embeds the output between mechtable markers and an
// integration test regenerates and compares it, so the documented table
// can never drift from the registry.
func MarkdownTable() string {
	var b strings.Builder
	b.WriteString("| name | domain | β-BB | SP/GSP | axioms | paper |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, d := range registry {
		g := d.Guarantees
		bb := g.BBLabel()
		sp := g.SPLabel()
		axioms := make([]string, 0, 3)
		if g.NPT {
			axioms = append(axioms, "NPT")
		}
		if g.VP {
			axioms = append(axioms, "VP")
		}
		if g.CS {
			axioms = append(axioms, "CS")
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s | %s |\n",
			d.Name, d.Domain, bb, sp, strings.Join(axioms, "/"), d.PaperRef)
	}
	return b.String()
}
