package mechreg

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/nwst"
)

// TestRegistryInvariants pins the structural contract every layer leans
// on: unique non-empty names, complete metadata, and an order that
// starts with the default mechanism.
func TestRegistryInvariants(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range All() {
		if d.Name == "" || d.Family == "" || d.Domain == "" || d.PaperRef == "" || d.Desc == "" {
			t.Errorf("descriptor %+v has empty metadata", d.Name)
		}
		if seen[d.Name] {
			t.Errorf("duplicate name %q", d.Name)
		}
		seen[d.Name] = true
		if d.Build == nil {
			t.Errorf("%s has no Build", d.Name)
		}
		g := d.Guarantees
		if g.BB != BBNone && g.BetaLabel == "" {
			t.Errorf("%s declares budget balance without a BetaLabel", d.Name)
		}
		if g.BB == BBOptimum && g.Beta == nil {
			t.Errorf("%s declares BBOptimum without a Beta function", d.Name)
		}
		if g.BB == BBNone && !g.Efficient {
			t.Errorf("%s declares neither budget balance nor efficiency", d.Name)
		}
	}
	if len(Names()) != len(All()) {
		t.Fatal("Names/All length mismatch")
	}
	if Default() != Names()[0] {
		t.Fatal("Default is not the first registry name")
	}
	if _, err := ByName("bogus"); !errors.Is(err, ErrUnknownMechanism) {
		t.Fatalf("ByName(bogus) = %v, want ErrUnknownMechanism", err)
	}
}

// TestBuildPinsRegistryName: mechanisms built through the registry must
// answer with the registry name, whatever the package-internal default
// is (the packages no longer own the public names).
func TestBuildPinsRegistryName(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nets := map[string]func() *BuildContext{
		"general": func() *BuildContext { return NewBuildContext(instances.RandomEuclidean(rng, 8, 2, 2, 10)) },
		"alpha1":  func() *BuildContext { return NewBuildContext(instances.RandomEuclidean(rng, 8, 2, 1, 10)) },
		"line":    func() *BuildContext { return NewBuildContext(instances.RandomLine(rng, 8, 2, 10)) },
	}
	for _, d := range All() {
		built := false
		for _, mk := range nets {
			ctx := mk()
			if d.Supports != nil && d.Supports(ctx.Net) != nil {
				continue
			}
			m, err := Build(d.Name, ctx)
			if err != nil {
				t.Fatalf("%s: %v", d.Name, err)
			}
			if m.Name() != d.Name {
				t.Errorf("%s: built mechanism reports name %q", d.Name, m.Name())
			}
			if len(m.Agents()) == 0 {
				t.Errorf("%s: no agents", d.Name)
			}
			built = true
		}
		if !built {
			t.Errorf("%s: no test network admits it", d.Name)
		}
	}
}

// TestSupportsTypedErrors: domain mismatches must be ErrUnsupportedDomain
// (the serving layer maps them to 422), unknown names ErrUnknownMechanism
// (400), and the two must not overlap.
func TestSupportsTypedErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	planar := instances.RandomEuclidean(rng, 8, 2, 2, 10) // d=2, α=2
	for _, name := range []string{Alpha1Shapley, Alpha1MC, LineShapley, LineMC} {
		err := Supports(name, planar)
		if !errors.Is(err, ErrUnsupportedDomain) {
			t.Errorf("Supports(%s, planar α=2) = %v, want ErrUnsupportedDomain", name, err)
		}
		if errors.Is(err, ErrUnknownMechanism) {
			t.Errorf("Supports(%s) conflates the two error kinds", name)
		}
		if _, err := Build(name, NewBuildContext(planar)); !errors.Is(err, ErrUnsupportedDomain) {
			t.Errorf("Build(%s, planar α=2) = %v, want ErrUnsupportedDomain", name, err)
		}
	}
	if err := Supports("bogus", planar); !errors.Is(err, ErrUnknownMechanism) {
		t.Errorf("Supports(bogus) = %v, want ErrUnknownMechanism", err)
	}
	line := instances.RandomLine(rng, 8, 1, 10) // d=1 AND α=1
	for _, name := range Names() {
		if err := Supports(name, line); err != nil {
			t.Errorf("Supports(%s, line α=1) = %v, want nil (d=1, α=1 admits everything)", name, err)
		}
	}
}

// TestSupportedNames: the per-network supported set is exactly the
// descriptors whose Supports accepts, in registry order.
func TestSupportedNames(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	planar := instances.RandomEuclidean(rng, 8, 2, 2, 10)
	got := SupportedNames(planar)
	want := []string{UniversalShapley, UniversalMC, WirelessBB, JVMoat}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("SupportedNames(planar α=2) = %v, want %v", got, want)
	}
	sym := instances.RandomSymmetric(rng, 8, 0.5, 10)
	if g := SupportedNames(sym); strings.Join(g, ",") != strings.Join(want, ",") {
		t.Fatalf("SupportedNames(symmetric) = %v, want %v", g, want)
	}
	if g := GeneralNames(); strings.Join(g, ",") != strings.Join(want, ",") {
		t.Fatalf("GeneralNames() = %v, want %v", g, want)
	}
	line := instances.RandomLine(rng, 8, 1, 10)
	if g := SupportedNames(line); len(g) != len(All()) {
		t.Fatalf("SupportedNames(line α=1) = %v, want all %d", g, len(All()))
	}
}

// TestBuildContextSharesSubstrate: one context hands every build the
// same reduction and universal tree, and honors the oracle selection.
func TestBuildContextSharesSubstrate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ctx := NewBuildContext(instances.RandomEuclidean(rng, 8, 2, 2, 10))
	ctx.Oracle = nwst.KleinRaviOracle
	if ctx.Reduction() != ctx.Reduction() || ctx.SPT() != ctx.SPT() {
		t.Fatal("substrates rebuilt on second access")
	}
	a, err := Build(WirelessBB, ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(UniversalShapley, ctx)
	if err != nil {
		t.Fatal(err)
	}
	u := mech.UniformProfile(8, 30)
	if a.Run(u).Cost <= 0 || b.Run(u).Cost <= 0 {
		t.Fatal("shared-substrate mechanisms produced empty solutions on a rich profile")
	}
}

// TestMarkdownTable: the generated docs table carries one row per
// descriptor with its name and paper anchor (README embeds this output;
// TestREADMEMechanismTableInSync at the repo root pins the embedding).
func TestMarkdownTable(t *testing.T) {
	tab := MarkdownTable()
	for _, d := range All() {
		if !strings.Contains(tab, "`"+d.Name+"`") {
			t.Errorf("table misses %s", d.Name)
		}
		if !strings.Contains(tab, d.PaperRef) {
			t.Errorf("table misses paper ref %s", d.PaperRef)
		}
	}
	if rows := strings.Count(tab, "\n"); rows != len(All())+2 {
		t.Errorf("table has %d lines, want %d", rows, len(All())+2)
	}
}
