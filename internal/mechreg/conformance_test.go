package mechreg

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/wireless"
)

// TestConformanceSweep is the registry-driven conformance suite: every
// descriptor runs on every compatible registry scenario (the α = 2
// sweep, plus α = 1 instances so the Theorem 3.2 α = 1 mechanisms are
// covered) and is verified against exactly what it declares — axioms,
// β-BB with the declared β, sampled SP/GSP at the declared strength.
// The declared theorems are a table test: a descriptor whose guarantee
// does not hold on some compatible scenario fails here.
func TestConformanceSweep(t *testing.T) {
	const n = 8
	type netCase struct {
		label string
		alpha float64
	}
	// One network per (scenario, α): the α = 2 grid covers the general
	// mechanisms on every topology family; α = 1 on the uniform and
	// line families covers the Euclidean specials ("line" is both d = 1
	// and, at α = 1, in the airport domain).
	var combos []struct {
		d     Descriptor
		scen  string
		alpha float64
		nw    *wireless.Network
	}
	type labeledNet struct {
		label string
		nw    *wireless.Network
	}
	var nets []labeledNet
	addNet := func(scen string, alpha float64, seed int64) {
		sp := instances.Spec{Name: scen, Scenario: scen, N: n, Alpha: alpha, Seed: seed}
		nw, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		nets = append(nets, labeledNet{fmt.Sprintf("%s-a%g", scen, alpha), nw})
	}
	for si, sc := range instances.Scenarios() {
		addNet(sc.Name, 2, int64(500+si))
	}
	addNet("uniform", 1, 600)
	addNet("line", 1, 601)

	for _, ln := range nets {
		for _, d := range All() {
			if d.Supports != nil && d.Supports(ln.nw) != nil {
				continue // auto-skip: outside the declared domain
			}
			combos = append(combos, struct {
				d     Descriptor
				scen  string
				alpha float64
				nw    *wireless.Network
			}{d: d, scen: ln.label, nw: ln.nw})
		}
	}
	// Coverage is decided by the grid itself, before any check runs: a
	// descriptor no scenario admits would make the suite vacuous for it.
	byName := map[string]int{}
	for _, c := range combos {
		byName[c.d.Name]++
	}
	for _, d := range All() {
		if byName[d.Name] == 0 {
			t.Fatalf("%s is admitted by no scenario network — the conformance sweep would pass vacuously", d.Name)
		}
	}
	for ci, c := range combos {
		c, ci := c, ci
		t.Run(c.d.Name+"/"+c.scen, func(t *testing.T) {
			t.Parallel()
			rep, err := CheckConformance(c.d, c.nw, ConformanceOptions{
				Profiles:   2,
				Coalitions: 6,
				Seed:       int64(900 + ci),
				// A reduced deviation set keeps the sweep fast on the
				// expensive NWST mechanism; shading, zeroing and large
				// exaggeration are the deviations that have ever found
				// violations (F3 is an over-report).
				Factors: []float64{0, 0.5, 1.5, 10},
			})
			if err != nil {
				t.Fatalf("declared guarantees of %s do not hold on %s: %v", c.d.Name, c.scen, err)
			}
			if rep.Profiles == 0 {
				t.Fatal("no profiles checked")
			}
			for _, hit := range rep.KnownGapHits {
				t.Logf("%s on %s: tolerated known gap: %s", c.d.Name, c.scen, hit)
			}
		})
	}
}

// --- mis-declaration fixtures -----------------------------------------

// thresholdMech is a deliberately SP-but-not-GSP mechanism: agent i is
// served at price p_i, where p_i is 10 unless some OTHER agent reports
// at least 15, in which case p_i drops to 1. An agent's own report never
// moves its own price, so unilateral deviations only toggle service at a
// fixed price (exactly SP); but a coalition can have one member
// over-report past 15 (keeping its own welfare intact) to crash a
// partner's price from 10 to 1 — a clean GSP violation.
type thresholdMech struct{ n, source int }

func (m thresholdMech) Name() string { return "threshold-discount" }
func (m thresholdMech) Agents() []int {
	ids := make([]int, 0, m.n-1)
	for i := 0; i < m.n; i++ {
		if i != m.source {
			ids = append(ids, i)
		}
	}
	return ids
}

func (m thresholdMech) Run(u mech.Profile) mech.Outcome {
	o := mech.Outcome{Shares: map[int]float64{}}
	for _, i := range m.Agents() {
		price := 10.0
		for _, j := range m.Agents() {
			if j != i && u[j] >= 15 {
				price = 1
				break
			}
		}
		if u[i] >= price {
			o.Receivers = append(o.Receivers, i)
			o.Shares[i] = price
			o.Cost += price
		}
	}
	sort.Ints(o.Receivers)
	return o
}

// fixtureDescriptor wraps a hand-built mechanism in a descriptor with
// arbitrary claimed guarantees.
func fixtureDescriptor(name string, g Guarantees, build func(ctx *BuildContext) (mech.Mechanism, error)) Descriptor {
	return Descriptor{
		Name: name, Family: "test", Domain: "any", PaperRef: "none", Desc: "fixture",
		Guarantees: g, Build: build,
	}
}

// TestMisdeclaredDescriptorsFail pins that the conformance harness is
// not vacuous: descriptors that over-claim — a β below what the
// mechanism actually collects, exact budget balance for a deficit
// mechanism, GSP for a mechanism that is only SP — must fail.
func TestMisdeclaredDescriptorsFail(t *testing.T) {
	nw, err := (instances.Spec{Name: "x", Scenario: "uniform", N: 9, Alpha: 2, Seed: 77}).Build()
	if err != nil {
		t.Fatal(err)
	}
	// Rich profiles so somebody is always served (an empty receiver set
	// would skip the budget checks and let a wrong β slip through).
	opts := ConformanceOptions{Profiles: 2, Coalitions: 40, Seed: 4, UMax: 1e5}

	t.Run("wrong beta", func(t *testing.T) {
		d, err := ByName(WirelessBB)
		if err != nil {
			t.Fatal(err)
		}
		d.Guarantees.Beta = func(*wireless.Network, int) float64 { return 0.5 }
		if _, err := CheckConformance(d, nw, opts); err == nil {
			t.Fatal("β = 0.5 declared for wireless-bb passed — the β check is vacuous")
		} else if !strings.Contains(err.Error(), "BB violated") {
			t.Fatalf("wrong failure: %v", err)
		}
	})

	t.Run("false cost recovery", func(t *testing.T) {
		d, err := ByName(UniversalMC)
		if err != nil {
			t.Fatal(err)
		}
		// The MC mechanism runs a deficit by design; claiming exact
		// budget balance against its own solution must fail.
		d.Guarantees.BB = BBSolution
		d.Guarantees.BetaLabel = "1"
		if _, err := CheckConformance(d, nw, opts); err == nil {
			t.Fatal("exact budget balance declared for universal-mc passed — the BB check is vacuous")
		}
	})

	t.Run("claims GSP but is only SP", func(t *testing.T) {
		build := func(ctx *BuildContext) (mech.Mechanism, error) {
			return thresholdMech{n: ctx.Net.N(), source: ctx.Net.Source()}, nil
		}
		honest := fixtureDescriptor("threshold-discount", Guarantees{
			Strategyproofness: SP, NPT: true, VP: true, CS: true, Efficient: true,
		}, build)
		// UMax just under the price-crash threshold: truthful runs keep
		// every price at 10, so a coalition's over-reporter can crash a
		// partner's price — the violation the GSP sampler must find.
		gspOpts := ConformanceOptions{Profiles: 4, Coalitions: 600, Seed: 11, UMax: 14}
		if _, err := CheckConformance(honest, nw, gspOpts); err != nil {
			t.Fatalf("SP-declared threshold mechanism failed its honest declaration: %v", err)
		}
		lying := honest
		lying.Guarantees.Strategyproofness = GSP
		if _, err := CheckConformance(lying, nw, gspOpts); err == nil {
			t.Fatal("GSP declared for an SP-only mechanism passed — the GSP sampler is vacuous")
		} else if !strings.Contains(err.Error(), "GSP violated") {
			t.Fatalf("wrong failure: %v", err)
		}
	})

	t.Run("undeclared SP gap fails, declared gap is tolerated", func(t *testing.T) {
		// reportProportional charges a share proportional to the report:
		// shading the report is always profitable, so SP must fail loudly
		// — unless the descriptor declares the gap, which downgrades the
		// violation to a report entry.
		build := func(ctx *BuildContext) (mech.Mechanism, error) {
			return proportionalMech{n: ctx.Net.N(), source: ctx.Net.Source()}, nil
		}
		d := fixtureDescriptor("report-proportional", Guarantees{
			Strategyproofness: SP, NPT: true, Efficient: true,
		}, build)
		if _, err := CheckConformance(d, nw, opts); err == nil {
			t.Fatal("report-proportional passed an SP declaration")
		}
		d.Guarantees.SPGap = "test-gap"
		rep, err := CheckConformance(d, nw, opts)
		if err != nil {
			t.Fatalf("declared gap still failed: %v", err)
		}
		if len(rep.KnownGapHits) == 0 {
			t.Fatal("declared gap produced no report entries")
		}
	})
}

// proportionalMech serves everyone with a positive report and charges
// 10% of the report — blatantly not strategyproof (shade to pay less).
type proportionalMech struct{ n, source int }

func (m proportionalMech) Name() string  { return "report-proportional" }
func (m proportionalMech) Agents() []int { return thresholdMech{n: m.n, source: m.source}.Agents() }

func (m proportionalMech) Run(u mech.Profile) mech.Outcome {
	o := mech.Outcome{Shares: map[int]float64{}}
	for _, i := range m.Agents() {
		if u[i] > 0 {
			o.Receivers = append(o.Receivers, i)
			o.Shares[i] = u[i] / 10
			o.Cost += u[i] / 10
		}
	}
	sort.Ints(o.Receivers)
	return o
}

// TestConformanceRejectsUnsupportedNetwork: the harness refuses to "pass"
// a mechanism on a network outside its domain.
func TestConformanceRejectsUnsupportedNetwork(t *testing.T) {
	nw, err := (instances.Spec{Name: "x", Scenario: "uniform", N: 8, Alpha: 2, Seed: 3}).Build()
	if err != nil {
		t.Fatal(err)
	}
	d, err := ByName(LineShapley)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CheckConformance(d, nw, ConformanceOptions{Profiles: 1, Seed: 1}); !errors.Is(err, ErrUnsupportedDomain) {
		t.Fatalf("line mechanism on a planar network: %v, want ErrUnsupportedDomain", err)
	}
}
