package mechreg

import (
	"fmt"
	"math"
	"math/rand"

	"wmcs/internal/mech"
	"wmcs/internal/wireless"
)

// This file is the conformance harness: it turns a Descriptor's declared
// Guarantees into executable checks, so the registry's theorem table is
// a table *test* — every registered mechanism is run on every compatible
// scenario (mechreg tests) and verified against exactly what it
// declares: the per-outcome axioms, β-budget-balance with the declared β
// against the declared reference, and sampled (G)SP at the declared
// strength. A descriptor that over-claims (wrong β, GSP for an
// SP-only mechanism, cost recovery for a deficit mechanism) fails here —
// TestMisdeclaredDescriptorsFail pins that the harness cannot pass
// vacuously.

// ConformanceOptions tune a conformance run; zero values select the
// defaults in brackets.
type ConformanceOptions struct {
	// Profiles is the number of random utility profiles probed [3].
	Profiles int
	// UMax scales the random utilities [50].
	UMax float64
	// Coalitions is the number of sampled coalitions per profile for
	// GSP-declared mechanisms [8].
	Coalitions int
	// Seed derives every random draw; equal seeds replay identically.
	Seed int64
	// HighBid is the consumer-sovereignty probe utility [1e6].
	HighBid float64
	// Factors are the multiplicative misreports the (G)SP samplers
	// probe; nil selects mech.DefaultDeviationFactors.
	Factors []float64
	// OptimalCost computes C*(R) for the β-BB check; nil selects
	// wireless.OptimalMulticastCost. Set SkipBeta to skip the β check
	// entirely (e.g. networks too large for exact optima).
	OptimalCost func(nw *wireless.Network, R []int) float64
	// SkipBeta disables the β-BB-against-optimum check.
	SkipBeta bool
}

func (o ConformanceOptions) withDefaults() ConformanceOptions {
	if o.Profiles <= 0 {
		o.Profiles = 3
	}
	if o.UMax <= 0 {
		o.UMax = 50
	}
	if o.Coalitions <= 0 {
		o.Coalitions = 8
	}
	if o.HighBid <= 0 {
		o.HighBid = 1e6
	}
	if o.OptimalCost == nil {
		o.OptimalCost = wireless.OptimalMulticastCost
	}
	return o
}

// ConformanceReport summarizes a passing run.
type ConformanceReport struct {
	// Profiles is how many utility profiles were probed.
	Profiles int
	// BetaChecked counts outcomes verified against the declared β.
	BetaChecked int
	// KnownGapHits records sampled strategyproofness violations that
	// were tolerated because the descriptor declares the gap (SPGap);
	// an empty slice means the sampled checks were violation-free.
	KnownGapHits []string
}

// CheckOutcome verifies the declared per-outcome axioms of g: NPT and VP
// when declared, and cost recovery when any budget-balance guarantee is
// declared (the marginal-cost mechanisms declare none — they may run a
// deficit by design, which must not read as a violation).
func (g Guarantees) CheckOutcome(u mech.Profile, o mech.Outcome) error {
	if g.NPT {
		if err := mech.CheckNPT(o); err != nil {
			return err
		}
	}
	if g.VP {
		if err := mech.CheckVP(u, o); err != nil {
			return err
		}
	}
	if g.BB != BBNone {
		if err := mech.CheckCostRecovery(o); err != nil {
			return err
		}
	}
	return nil
}

// CheckConformance builds d's mechanism on nw and verifies every
// guarantee the descriptor declares, by exact check where the guarantee
// is exact (axioms, budget balance) and by adversarial deviation
// sampling where it is game-theoretic (SP, GSP, CS). It returns the
// first violation found; a nil error means every declared check passed
// (with sampled violations under a declared SPGap reported, not fatal).
func CheckConformance(d Descriptor, nw *wireless.Network, opts ConformanceOptions) (ConformanceReport, error) {
	var rep ConformanceReport
	opts = opts.withDefaults()
	// build enforces the declared domain: a network outside it returns
	// the ErrUnsupportedDomain the caller's auto-skip branches on.
	m, err := d.build(NewBuildContext(nw))
	if err != nil {
		return rep, err
	}
	// The Approx flag is a declaration like any guarantee: it must match
	// what the built mechanism actually implements, in both directions.
	if _, ok := m.(mech.ApproxRunner); ok != d.Approx {
		return rep, fmt.Errorf("%s: descriptor declares Approx=%v but the built mechanism's sampled tier is %v",
			d.Name, d.Approx, ok)
	}
	g := d.Guarantees
	rng := rand.New(rand.NewSource(opts.Seed))
	for trial := 0; trial < opts.Profiles; trial++ {
		u := mech.RandomProfile(rng, nw.N(), opts.UMax)
		u[nw.Source()] = 0
		o := m.Run(u)
		if err := g.CheckOutcome(u, o); err != nil {
			return rep, fmt.Errorf("%s trial %d: %w", d.Name, trial, err)
		}
		if err := checkBudgetBalance(g, nw, o, opts, &rep); err != nil {
			return rep, fmt.Errorf("%s trial %d: %w", d.Name, trial, err)
		}
		if g.CS {
			if err := mech.CheckCS(m, u, opts.HighBid); err != nil {
				return rep, fmt.Errorf("%s trial %d: %w", d.Name, trial, err)
			}
		}
		if err := mech.CheckStrategyproof(m, u, opts.Factors); err != nil {
			if g.SPGap == "" {
				return rep, fmt.Errorf("%s trial %d: %w", d.Name, trial, err)
			}
			rep.KnownGapHits = append(rep.KnownGapHits,
				fmt.Sprintf("trial %d: SP (known gap %s): %v", trial, g.SPGap, err))
		}
		if g.Strategyproofness == GSP {
			if err := mech.CheckGroupStrategyproof(m, u, rng, opts.Coalitions, opts.Factors); err != nil {
				if g.SPGap == "" {
					return rep, fmt.Errorf("%s trial %d: %w", d.Name, trial, err)
				}
				rep.KnownGapHits = append(rep.KnownGapHits,
					fmt.Sprintf("trial %d: GSP (known gap %s): %v", trial, g.SPGap, err))
			}
		}
		if d.Approx && trial == 0 {
			// Smoke the sampled tier once: it must produce a well-formed
			// certificate and an outcome meeting the same per-outcome
			// axioms (Σ sampled shares telescopes to C(R) exactly per
			// permutation, so even budget balance survives sampling).
			ar := m.(mech.ApproxRunner)
			ao, cert, err := ar.RunApprox(u, mech.ApproxSpec{Samples: 64, Delta: 0.05, Seed: opts.Seed})
			if err != nil {
				return rep, fmt.Errorf("%s: sampled tier rejected a valid spec: %w", d.Name, err)
			}
			if cert.Samples != 64 || cert.Delta != 0.05 || math.IsNaN(cert.Epsilon) || cert.Epsilon < 0 {
				return rep, fmt.Errorf("%s: malformed certificate %+v", d.Name, cert)
			}
			if err := g.CheckOutcome(u, ao); err != nil {
				return rep, fmt.Errorf("%s sampled tier: %w", d.Name, err)
			}
		}
		rep.Profiles++
	}
	return rep, nil
}

// checkBudgetBalance verifies the declared budget-balance statement for
// one outcome: exact balance against the built solution's cost
// (BBSolution), or cost recovery plus Σ shares ≤ β·C*(R) against the
// exact optimum (BBOptimum, skipped when the descriptor declares no
// factor for this network class — β ≤ 0 — or the caller disabled it).
func checkBudgetBalance(g Guarantees, nw *wireless.Network, o mech.Outcome, opts ConformanceOptions, rep *ConformanceReport) error {
	switch g.BB {
	case BBSolution:
		tot := o.TotalShares()
		if diff := math.Abs(tot - o.Cost); diff > mech.Eps*(1+math.Abs(o.Cost)) {
			return fmt.Errorf("declared exact budget balance violated: shares %g vs cost %g", tot, o.Cost)
		}
	case BBOptimum:
		if opts.SkipBeta || g.Beta == nil || len(o.Receivers) == 0 {
			return nil
		}
		beta := g.Beta(nw, len(o.Receivers))
		if beta <= 0 {
			return nil // no factor declared for this network class
		}
		opt := opts.OptimalCost(nw, o.Receivers)
		if opt <= 1e-12 {
			return nil
		}
		if err := mech.CheckBetaBB(o, opt, beta); err != nil {
			return err
		}
		rep.BetaChecked++
	}
	return nil
}
