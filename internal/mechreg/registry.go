package mechreg

// This file is the descriptor registry proper: the ONE non-test file in
// the repository that spells the public mechanism names. Everything
// else — the query engine, the serving layer, the experiment sweeps,
// the CLIs, the façade, the docs table — derives its name lists, domain
// checks and guarantee statements from here. To add a mechanism family
// (e.g. a min-cost coded-multicast variant in the spirit of Lun et
// al.), append one Descriptor; every layer picks it up.

import (
	"math"

	"wmcs/internal/euclid1"
	"wmcs/internal/jv"
	"wmcs/internal/mech"
	"wmcs/internal/universal"
	"wmcs/internal/wireless"
	"wmcs/internal/wmech"
)

// The registry names, exported so other layers can refer to a specific
// mechanism (CLI defaults, examples, tests) without respelling the
// string.
const (
	UniversalShapley = "universal-shapley"
	UniversalMC      = "universal-mc"
	WirelessBB       = "wireless-bb"
	Alpha1Shapley    = "alpha1-shapley"
	Alpha1MC         = "alpha1-mc"
	LineShapley      = "line-shapley"
	LineMC           = "line-mc"
	JVMoat           = "jv-moat"
)

// Domain predicates. A nil Supports means "every symmetric network";
// the two non-trivial domains are the Lemma 3.1 polynomial cases.

// supportsAlpha1 admits Euclidean networks with gradient α = 1.
func supportsAlpha1(name string) func(nw *wireless.Network) error {
	return func(nw *wireless.Network) error {
		if !nw.IsEuclidean() || nw.PowerModel().Alpha != 1 {
			return unsupported("%s requires a Euclidean network with alpha = 1", name)
		}
		return nil
	}
}

// supportsLine admits 1-dimensional networks.
func supportsLine(name string) func(nw *wireless.Network) error {
	return func(nw *wireless.Network) error {
		if nw.Dim() != 1 {
			return unsupported("%s requires a 1-dimensional network", name)
		}
		return nil
	}
}

// betaOne is the exact-budget-balance factor of the Theorem 3.2
// mechanisms.
func betaOne(*wireless.Network, int) float64 { return 1 }

// alpha1ShapleyCarrySafe is the one non-nil CarrySafe in the registry
// (DESIGN.md §12.3 states the proof obligations in full). The airport
// Shapley mechanism reads only the source's distance row c(s, ·), so
// under the delta pair contract an outcome can be disturbed only by
// touched stations (the source itself untouched). The predicate accepts
// exactly when every touched station m
//
//   - is not the source (else the whole row is suspect),
//   - has zero canonical utility (m is outside the cached support), and
//   - sits at distance c(s, m) > n·mech.Eps in BOTH networks,
//
// which makes the outcome invariant: m's round-one Shapley share is at
// least c(s, m)/(n−1) > mech.Eps in either network, so no ε-stable
// coalition contains m — Moulin–Shenker's iteration on the cross-
// monotone airport ξ converges to the maximal stable set, the family of
// stable sets is identical in both networks (sets with m are unstable
// in both; sets without any touched station have bitwise-equal shares,
// since every distance they read is untouched), and the final
// receivers, shares and tree cost are recomputed fresh on that set from
// clean distances. alpha1-mc deliberately has NO predicate: its
// best-prefix scan serves zero-utility stations inside the winning
// prefix, so a touched station's distance can move it across the
// served/unserved boundary and change the receiver list even at zero
// utility. The sampled (approx) tier is never carried for any
// mechanism: its permutations range over the full agent set and observe
// touched distances directly.
func alpha1ShapleyCarrySafe(old, nu *wireless.Network, d wireless.Delta, support []int) bool {
	src := nu.Source()
	touched := d.TouchedStations()
	if d.Empty() || len(touched) == 0 {
		return false
	}
	tol := float64(nu.N()) * mech.Eps
	for _, m := range touched {
		if m == src {
			return false
		}
		for _, r := range support {
			if r == m {
				return false
			}
		}
		if !(old.C(src, m) > tol && nu.C(src, m) > tol) {
			return false
		}
	}
	return true
}

// registry lists the paper's mechanism family in presentation order.
var registry = []Descriptor{
	{
		Name:     UniversalShapley,
		Family:   "universal-tree",
		Domain:   "general symmetric",
		PaperRef: "§2.1",
		Desc:     "Shapley value on a fixed universal broadcast tree (Moulin–Shenker)",
		Approx:   true,
		Parallel: true,
		Guarantees: Guarantees{
			BB:                BBSolution,
			BetaLabel:         "1",
			Strategyproofness: GSP,
			NPT:               true, VP: true, CS: true,
		},
		Build: func(ctx *BuildContext) (mech.Mechanism, error) {
			return universal.ShapleyMechanism(ctx.SPT()), nil
		},
	},
	{
		Name:     UniversalMC,
		Family:   "universal-tree",
		Domain:   "general symmetric",
		PaperRef: "§2.1",
		Desc:     "marginal-cost (VCG) mechanism on the universal tree",
		Guarantees: Guarantees{
			BB:                BBNone,
			Strategyproofness: SP,
			NPT:               true, VP: true, CS: true,
			Efficient: true,
		},
		Build: func(ctx *BuildContext) (mech.Mechanism, error) {
			return universal.MCMechanism(ctx.SPT()), nil
		},
	},
	{
		Name:     WirelessBB,
		Family:   "nwst-reduction",
		Domain:   "general symmetric",
		PaperRef: "§2.2.3 (Thm 2.2/2.3)",
		Desc:     "MEMT→NWST reduction with the spider-contraction mechanism",
		Parallel: true,
		Guarantees: Guarantees{
			BB:                BBOptimum,
			Beta:              func(_ *wireless.Network, k int) float64 { return wmech.BetaBound(k) },
			BetaLabel:         "3·ln(k+1)",
			Strategyproofness: SP,
			// Theorem 2.3's SP proof has a documented gap: an agent can
			// over-report to outlive a multi-drop restart (finding F3,
			// EXPERIMENTS.md) — sampled violations are the known gap,
			// not an implementation bug.
			SPGap: "F3",
			NPT:   true, VP: true, CS: true,
		},
		Build: func(ctx *BuildContext) (mech.Mechanism, error) {
			return wmech.NewFromReduction(ctx.Reduction(), ctx.oracle()), nil
		},
	},
	{
		Name:     Alpha1Shapley,
		Family:   "euclid-alpha1",
		Domain:   "Euclidean, α = 1",
		PaperRef: "Thm 3.2 (α = 1)",
		Desc:     "airport-game Shapley mechanism (closed form)",
		Approx:   true,
		Parallel: true,
		Guarantees: Guarantees{
			BB:                BBOptimum,
			Beta:              betaOne,
			BetaLabel:         "1",
			Strategyproofness: GSP,
			NPT:               true, VP: true, CS: true,
		},
		Supports:  supportsAlpha1(Alpha1Shapley),
		CarrySafe: alpha1ShapleyCarrySafe,
		Build: func(ctx *BuildContext) (mech.Mechanism, error) {
			return euclid1.NewAirportGame(ctx.Net).ShapleyMechanism(), nil
		},
	},
	{
		Name:     Alpha1MC,
		Family:   "euclid-alpha1",
		Domain:   "Euclidean, α = 1",
		PaperRef: "Thm 3.2 (α = 1)",
		Desc:     "airport-game marginal-cost mechanism (distance prefixes)",
		Guarantees: Guarantees{
			BB:                BBNone,
			Strategyproofness: SP,
			NPT:               true, VP: true, CS: true,
			Efficient: true,
		},
		Supports: supportsAlpha1(Alpha1MC),
		Build: func(ctx *BuildContext) (mech.Mechanism, error) {
			return euclid1.NewAirportGame(ctx.Net).MCMechanism(), nil
		},
	},
	{
		Name:     LineShapley,
		Family:   "euclid-line",
		Domain:   "d = 1 (stations on a line)",
		PaperRef: "Thm 3.2 (d = 1)",
		Desc:     "interval-game Shapley mechanism over exact interval optima",
		Approx:   true,
		Parallel: true,
		Guarantees: Guarantees{
			BB:                BBOptimum,
			Beta:              betaOne,
			BetaLabel:         "1",
			Strategyproofness: GSP,
			NPT:               true, VP: true, CS: true,
		},
		Supports: supportsLine(LineShapley),
		Build: func(ctx *BuildContext) (mech.Mechanism, error) {
			return euclid1.NewLineGame(ctx.Net).ShapleyMechanism(), nil
		},
	},
	{
		Name:     LineMC,
		Family:   "euclid-line",
		Domain:   "d = 1 (stations on a line)",
		PaperRef: "Thm 3.2 (d = 1)",
		Desc:     "interval-game marginal-cost mechanism",
		Guarantees: Guarantees{
			BB:                BBNone,
			Strategyproofness: SP,
			NPT:               true, VP: true, CS: true,
			Efficient: true,
		},
		Supports: supportsLine(LineMC),
		Build: func(ctx *BuildContext) (mech.Mechanism, error) {
			return euclid1.NewLineGame(ctx.Net).MCMechanism(), nil
		},
	},
	{
		Name:     JVMoat,
		Family:   "moat",
		Domain:   "general symmetric (β declared for Euclidean)",
		PaperRef: "Thms 3.6/3.7",
		Desc:     "Jain–Vazirani moat-growing mechanism (uniform weights)",
		Guarantees: Guarantees{
			BB: BBOptimum,
			// 2(3^d − 1)-BB — 12 in the plane, 4 on a line. The theorem
			// is Euclidean: on abstract symmetric networks the mechanism
			// runs (and still recovers its cost) but declares no factor.
			Beta: func(nw *wireless.Network, _ int) float64 {
				if !nw.IsEuclidean() {
					return 0
				}
				return 2 * (math.Pow(3, float64(nw.Dim())) - 1)
			},
			BetaLabel:         "2(3^d−1)",
			Strategyproofness: GSP,
			NPT:               true, VP: true, CS: true,
		},
		Build: func(ctx *BuildContext) (mech.Mechanism, error) {
			return jv.NewMechanism(ctx.Net, nil), nil
		},
	},
}
