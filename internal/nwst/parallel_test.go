package nwst

import (
	"math/rand"
	"testing"

	"wmcs/internal/engine"
)

// spidersEqual compares every exported field bitwise.
func spidersEqual(a, b Spider) bool {
	if a.Center != b.Center || a.Paying != b.Paying || a.Cost != b.Cost || a.Ratio != b.Ratio {
		return false
	}
	if len(a.Nodes) != len(b.Nodes) || len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return false
		}
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] {
			return false
		}
	}
	return true
}

// TestParallelOraclesMatchSerial pins the parallel oracles to the serial
// ones spider-for-spider across random instances and minCover values:
// the per-center arithmetic is shared, so on real instances (no sub-eps
// ratio chains) the winners must coincide exactly.
func TestParallelOraclesMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := engine.New(4)
	pkr := ParallelKleinRaviOracle(pool)
	pbs := ParallelBranchSpiderOracle(pool)
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(20)
		k := 2 + rng.Intn(n/2)
		in := randomInstance(rng, n, k)
		for _, minCover := range []int{1, 2, 3} {
			if minCover > k {
				continue
			}
			sSer := NewState(in)
			wantKR, okSer := KleinRaviOracle(sSer, minCover)
			sPar := NewState(in)
			gotKR, okPar := pkr(sPar, minCover)
			if okSer != okPar || (okSer && !spidersEqual(wantKR, gotKR)) {
				t.Fatalf("trial %d minCover %d: KR parallel %+v (%v) != serial %+v (%v)",
					trial, minCover, gotKR, okPar, wantKR, okSer)
			}
			sSer2 := NewState(in)
			wantBS, okSer2 := BranchSpiderOracle(sSer2, minCover)
			sPar2 := NewState(in)
			gotBS, okPar2 := pbs(sPar2, minCover)
			if okSer2 != okPar2 || (okSer2 && !spidersEqual(wantBS, gotBS)) {
				t.Fatalf("trial %d minCover %d: BS parallel %+v (%v) != serial %+v (%v)",
					trial, minCover, gotBS, okPar2, wantBS, okSer2)
			}
		}
	}
}

// TestParallelOracleWidthInvariant: the parallel oracles produce the
// same spider at width 1 and every wider pool (the fixed-slice
// contract), including through a full greedy Solve.
func TestParallelOracleWidthInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(24)
		k := 3 + rng.Intn(n/3)
		in := randomInstance(rng, n, k)
		base, okBase := Solve(in, ParallelBranchSpiderOracle(engine.Serial()))
		for _, width := range []int{2, 4, 8} {
			got, ok := Solve(in, ParallelBranchSpiderOracle(engine.New(width)))
			if ok != okBase {
				t.Fatalf("trial %d width %d: ok %v != %v", trial, width, ok, okBase)
			}
			if !ok {
				continue
			}
			if got.Cost != base.Cost || len(got.Nodes) != len(base.Nodes) {
				t.Fatalf("trial %d width %d: cost %v nodes %d != cost %v nodes %d",
					trial, width, got.Cost, len(got.Nodes), base.Cost, len(base.Nodes))
			}
			for i := range base.Nodes {
				if got.Nodes[i] != base.Nodes[i] {
					t.Fatalf("trial %d width %d: nodes %v != %v", trial, width, got.Nodes, base.Nodes)
				}
			}
		}
	}
}

// TestParallelSolveMatchesSerialSolve: end-to-end greedy equality —
// same contractions, same final solution — between serial and parallel
// oracles.
func TestParallelSolveMatchesSerialSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pool := engine.New(4)
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(20)
		k := 2 + rng.Intn(n/3)
		in := randomInstance(rng, n, k)
		want, okW := Solve(in, BranchSpiderOracle)
		got, okG := Solve(in, ParallelBranchSpiderOracle(pool))
		if okW != okG {
			t.Fatalf("trial %d: ok %v != %v", trial, okG, okW)
		}
		if !okW {
			continue
		}
		if got.Cost != want.Cost {
			t.Fatalf("trial %d: parallel cost %v != serial %v", trial, got.Cost, want.Cost)
		}
		for i := range want.Nodes {
			if got.Nodes[i] != want.Nodes[i] {
				t.Fatalf("trial %d: nodes %v != %v", trial, got.Nodes, want.Nodes)
			}
		}
	}
}
