package nwst

import (
	"math/rand"
	"reflect"
	"testing"
)

// withFreeSource marks the first terminal of a randomInstance free, the
// shape the wireless reduction produces.
func withFreeSource(in Instance) Instance {
	free := make([]bool, len(in.Terminals))
	free[0] = true
	in.Free = free
	return in
}

// runGreedy drives a state through the oracle/shrink loop the way Solve
// and the mechanisms do, recording every spider it selects.
func runGreedy(t *testing.T, st *State, oracle Oracle) []Spider {
	t.Helper()
	var picked []Spider
	for {
		live := st.LiveTerminals()
		if len(live) <= 2 {
			break
		}
		minCover := len(st.PayingTerminals())
		if minCover > 3 {
			minCover = 3
		}
		sp, ok := oracle(st, minCover)
		if !ok {
			break
		}
		picked = append(picked, sp)
		st.Shrink(sp)
	}
	return picked
}

// TestResetMatchesFresh is the workspace differential test at the solver
// layer: a pooled, Reset state must produce byte-identical oracle
// decisions to a freshly allocated state, across both oracles and many
// random instances, including after full contraction runs.
func TestResetMatchesFresh(t *testing.T) {
	oracles := map[string]Oracle{"klein-ravi": KleinRaviOracle, "branch": BranchSpiderOracle}
	for name, oracle := range oracles {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 12; trial++ {
			in := withFreeSource(randomInstance(rng, 10+rng.Intn(8), 4+rng.Intn(3)))
			fresh := NewState(in)
			// Dirty a second state with a full greedy run, then Reset it:
			// it must replay the fresh state's decisions exactly.
			reused := NewState(in)
			runGreedy(t, reused, oracle)
			reused.Reset(in.Terminals, in.Free)

			want := runGreedy(t, fresh, oracle)
			got := runGreedy(t, reused, oracle)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s trial %d: reset state diverged\nfresh: %+v\nreset: %+v", name, trial, want, got)
			}
		}
	}
}

// TestStatePoolDifferential checks that states cycling through a pool
// behave identically to fresh states for Solve-style use.
func TestStatePoolDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := withFreeSource(randomInstance(rng, 14, 5))
	pool := NewStatePool(in.G, in.Weights)
	want := runGreedy(t, NewState(in), BranchSpiderOracle)
	for round := 0; round < 3; round++ {
		st := pool.Get(in.Terminals, in.Free)
		got := runGreedy(t, st, BranchSpiderOracle)
		pool.Put(st)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d: pooled state diverged", round)
		}
	}
}

// TestResetAfterDropTerminal verifies Reset also undoes DropTerminal and
// terminal-set changes: resetting onto a different terminal set behaves
// like constructing with that set.
func TestResetAfterDropTerminal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := withFreeSource(randomInstance(rng, 12, 5))
	st := NewState(in)
	st.DropTerminal(in.Terminals[1])
	runGreedy(t, st, KleinRaviOracle)

	alt := Instance{G: in.G, Weights: in.Weights, Terminals: in.Terminals[:3], Free: in.Free[:3]}
	st.Reset(alt.Terminals, alt.Free)
	want := runGreedy(t, NewState(alt), KleinRaviOracle)
	st2 := st
	got := runGreedy(t, st2, KleinRaviOracle)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("reset onto new terminal set diverged")
	}
}
