// Package nwst implements the node-weighted Steiner tree (NWST) machinery
// of §2.2 of the paper: node-weighted shortest paths, minimum-ratio spider
// oracles in the style of Klein–Ravi [33] and Guha–Khuller [28], the
// shrink/contract greedy, and an exact solver for small instances.
//
// An NWST instance is an undirected graph with nonnegative *node* weights
// and a set of terminals; the goal is a minimum-weight connected subgraph
// containing all terminals (edge weights play no role). The §2.2.2
// mechanism drives the same oracle/shrink machinery but interleaves the
// utility checks; package nwstmech builds on the State type exported here.
package nwst

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"wmcs/internal/graph"
)

// Instance is a node-weighted Steiner tree instance.
type Instance struct {
	G         *graph.Graph // host graph; edge weights are ignored
	Weights   []float64    // node weights, len == G.N()
	Terminals []int        // required terminals
	// Free marks terminals that must be connected but never pay and are
	// not counted in spider ratios (the wireless reduction's source
	// terminal). len(Free) == len(Terminals) or nil for "all paying".
	Free []bool
}

// Validate panics on malformed instances; used by constructors of
// dependent packages.
func (in Instance) Validate() {
	if len(in.Weights) != in.G.N() {
		panic(fmt.Sprintf("nwst: %d weights for %d nodes", len(in.Weights), in.G.N()))
	}
	if in.Free != nil && len(in.Free) != len(in.Terminals) {
		panic("nwst: Free length mismatch")
	}
	for _, w := range in.Weights {
		if w < 0 {
			panic("nwst: negative node weight")
		}
	}
}

// Spider is a candidate structure chosen by a ratio oracle: a center and a
// union of node-weighted paths ("legs") covering a set of terminals. Cost
// is the exact total weight of the node union; Ratio is Cost divided by
// the number of covered *paying* terminals.
type Spider struct {
	Center int
	Nodes  []int // node union, live ids, includes Center and terminals
	Terms  []int // covered live terminals (paying and free)
	Paying int   // number of covered paying terminals
	Cost   float64
	Ratio  float64
}

// Oracle finds a low-ratio spider covering at least minCover paying
// terminals, returning ok=false if none exists.
type Oracle func(s *State, minCover int) (Spider, bool)

// State is the mutable contracted instance shared by the greedy algorithm
// and the §2.2.2 mechanism. Contracting a spider kills its nodes and adds
// a fresh zero-weight terminal adjacent to all their live neighbors; the
// new terminal remembers the original terminals it contains
// (the paper's N+_t).
//
// A State owns a private copy of the host graph plus the scratch buffers
// of the spider oracles, so it can be Reset and reused across queries on
// the same host instance without reallocating (see StatePool). A State is
// not safe for concurrent use.
type State struct {
	n0     int // number of original vertices
	g      *graph.Graph
	base   graph.Snapshot // host extent; Reset rewinds contractions to it
	w      []float64
	alive  []bool
	isTerm []bool
	free   []bool
	cons   [][]int // constituents: original terminal ids inside vertex
	// consBase backs the singleton constituent slices of original paying
	// terminals: cons[t] == consBase[t : t+1], so Reset re-points slices
	// instead of reallocating them.
	consBase []int
	sc       scratch
	ws       *Workspace
}

// scratch holds the reusable buffers of NodeDist and the spider oracles.
// Everything here is sized lazily to the current (contracted) graph and
// carries no information across calls.
type scratch struct {
	heap *graph.IndexHeap
	done []bool
	// single-source node-distance buffers (Klein–Ravi, PathBetween).
	dist1 []float64
	par1  []int
	// all-pairs buffers (BranchSpiderOracle), one row per live center.
	dists   [][]float64
	parents [][]int
	// spider assembly.
	inUnion  []bool
	nodesBuf []int
	termsBuf []int
	pathBuf  []int
	sortBuf  []int
	// branch-oracle greedy.
	items   []legItem
	legEnds []int
	hubLegs []legItem
	covered []bool
	sorter  termDistSorter
	// Shrink.
	inSpider []bool
	seen     []bool
	touched  []int
}

// NewState initializes the contraction state from an instance.
func NewState(in Instance) *State {
	in.Validate()
	n := in.G.N()
	s := &State{
		n0:       n,
		g:        in.G.Clone(),
		w:        append([]float64(nil), in.Weights...),
		alive:    make([]bool, n),
		isTerm:   make([]bool, n),
		free:     make([]bool, n),
		cons:     make([][]int, n),
		consBase: make([]int, n),
	}
	s.base = s.g.Snapshot()
	for i := range s.consBase {
		s.consBase[i] = i
	}
	s.sc.heap = graph.NewIndexHeap(n)
	for i := range s.alive {
		s.alive[i] = true
	}
	s.setTerminals(in.Terminals, in.Free)
	return s
}

// setTerminals marks the terminal set on a state whose alive/isTerm/free/
// cons arrays are already cleared to the "no terminals" baseline.
func (s *State) setTerminals(terminals []int, free []bool) {
	for ti, t := range terminals {
		s.isTerm[t] = true
		if free != nil && free[ti] {
			s.free[t] = true
		} else {
			s.cons[t] = s.consBase[t : t+1]
		}
	}
}

// Reset rewinds every contraction and DropTerminal and installs a new
// terminal set, reusing all buffers: after Reset the state behaves
// exactly like NewState of the same host instance with the new
// terminals. free follows the Instance convention (aligned with
// terminals; nil means all paying).
func (s *State) Reset(terminals []int, free []bool) {
	s.g.Rewind(s.base)
	n := s.n0
	s.w = s.w[:n]
	s.alive = s.alive[:n]
	s.isTerm = s.isTerm[:n]
	s.free = s.free[:n]
	for i := n; i < len(s.cons); i++ {
		s.cons[i] = nil // release super-terminal constituent slices
	}
	s.cons = s.cons[:n]
	for i := 0; i < n; i++ {
		s.alive[i] = true
		s.isTerm[i] = false
		s.free[i] = false
		s.cons[i] = nil
	}
	s.setTerminals(terminals, free)
}

// StatePool is a mutex-guarded free list of States over one host
// instance (graph + weights). Get hands out a Reset state for the given
// terminal set, building a new one only when the pool is empty, so
// concurrent queries share the amortized graph copies. Because Reset
// restores a state bit-for-bit to its freshly-constructed behavior,
// results never depend on which pooled state served a query.
type StatePool struct {
	mu   sync.Mutex
	free []*State
	g    *graph.Graph
	w    []float64
}

// NewStatePool returns an empty pool over the host graph and weights.
func NewStatePool(g *graph.Graph, weights []float64) *StatePool {
	return &StatePool{g: g, w: weights}
}

// Get returns a state for the given terminals, reusing a pooled one when
// available. Callers return it with Put when done.
func (p *StatePool) Get(terminals []int, free []bool) *State {
	p.mu.Lock()
	var st *State
	if k := len(p.free); k > 0 {
		st = p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
	}
	p.mu.Unlock()
	if st == nil {
		return NewState(Instance{G: p.g, Weights: p.w, Terminals: terminals, Free: free})
	}
	st.Reset(terminals, free)
	return st
}

// Put returns a state to the pool for reuse.
func (p *StatePool) Put(st *State) {
	p.mu.Lock()
	p.free = append(p.free, st)
	p.mu.Unlock()
}

// N0 returns the number of original vertices.
func (s *State) N0() int { return s.n0 }

// Weight returns the node weight of a live or dead vertex.
func (s *State) Weight(v int) float64 { return s.w[v] }

// IsTerminal reports whether live vertex v is a terminal.
func (s *State) IsTerminal(v int) bool { return s.isTerm[v] }

// IsFree reports whether terminal v is a non-paying (source) terminal.
func (s *State) IsFree(v int) bool { return s.free[v] }

// Alive reports whether vertex v has not been contracted away.
func (s *State) Alive(v int) bool { return s.alive[v] }

// Constituents returns the original paying terminals contained in vertex
// v (the paper's N+_t); a singleton for an original paying terminal, nil
// for non-terminals and free terminals.
func (s *State) Constituents(v int) []int { return s.cons[v] }

// LiveTerminals returns the live terminal ids in increasing order.
func (s *State) LiveTerminals() []int {
	var out []int
	for v := 0; v < s.g.N(); v++ {
		if s.alive[v] && s.isTerm[v] {
			out = append(out, v)
		}
	}
	return out
}

// PayingTerminals returns live terminals that share costs.
func (s *State) PayingTerminals() []int {
	var out []int
	for _, t := range s.LiveTerminals() {
		if !s.free[t] {
			out = append(out, t)
		}
	}
	return out
}

// DropTerminal removes terminal status from an original terminal (used by
// the mechanism when an agent cannot pay). The vertex stays in the graph
// as an optional relay.
func (s *State) DropTerminal(v int) {
	s.isTerm[v] = false
	s.cons[v] = nil
}

// NodeDist computes node-weighted shortest-path distances from src over
// live vertices: dist[v] = min over paths of Σ weights of path nodes
// excluding src itself. parent gives the predecessor on an optimal path.
// The returned slices are freshly allocated; the oracles use the
// scratch-backed nodeDistInto instead.
func (s *State) NodeDist(src int) (dist []float64, parent []int) {
	n := s.g.N()
	dist = make([]float64, n)
	parent = make([]int, n)
	s.nodeDistInto(src, dist, parent)
	return dist, parent
}

// nodeDistInto is NodeDist writing into caller-provided slices of length
// g.N(), reusing the state's heap and visited mask.
func (s *State) nodeDistInto(src int, dist []float64, parent []int) {
	s.nodeDistStop(src, dist, parent, -1)
}

// nodeDistStop is nodeDistInto with an optional early stop: stopTerms > 0
// halts the search once that many live *paying* terminals have settled.
// Every entry a caller may read is final by then — a settled vertex's
// dist and the parents along its optimal path (all settled strictly
// earlier) never change afterwards — so for callers that only consume
// paying-terminal distances and their paths (the Klein–Ravi sweep) the
// observable bytes match an exhaustive run; entries past the stop are
// garbage and must not be read. stopTerms ≤ 0 runs to exhaustion.
func (s *State) nodeDistStop(src int, dist []float64, parent []int, stopTerms int) {
	s.nodeDistStopWith(s.sc.heap, &s.sc.done, src, dist, parent, stopTerms)
}

// nodeDistStopWith is nodeDistStop running on caller-provided heap and
// visited scratch instead of the state's own, so the parallel oracles
// (parallel.go) can run many sweeps over one read-only State at once.
// The arithmetic is byte-for-byte that of the historical method.
func (s *State) nodeDistStopWith(h *graph.IndexHeap, doneBuf *[]bool, src int, dist []float64, parent []int, stopTerms int) {
	n := s.g.N()
	for i := 0; i < n; i++ {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	if !s.alive[src] {
		return
	}
	h.Grow(n)
	h.Reset()
	if cap(*doneBuf) < n {
		*doneBuf = make([]bool, n)
	}
	done := (*doneBuf)[:n]
	for i := 0; i < n; i++ {
		done[i] = false
	}
	dist[src] = 0
	h.Push(src, 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if done[u] {
			continue
		}
		done[u] = true
		if stopTerms > 0 && s.isTerm[u] && !s.free[u] {
			if stopTerms--; stopTerms == 0 {
				return
			}
		}
		for _, e := range s.g.Neighbors(u) {
			v := e.To
			if !s.alive[v] || done[v] {
				continue
			}
			if nd := du + s.w[v]; nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				h.PushOrDecrease(v, nd)
			}
		}
	}
}

// pathNodes walks parent pointers from v back to the source of a NodeDist
// call, returning the node sequence source..v.
func pathNodes(parent []int, v int) []int {
	var rev []int
	for x := v; x != -1; x = parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathBetween returns the minimum node-weight path between live vertices
// a and b (inclusive of both) and its total node weight.
func (s *State) PathBetween(a, b int) ([]int, float64) {
	dist, parent := s.sc.distBufs(s.g.N())
	s.nodeDistInto(a, dist, parent)
	if math.IsInf(dist[b], 1) {
		return nil, math.Inf(1)
	}
	return pathNodes(parent, b), dist[b] + s.w[a]
}

// distBufs returns the single-source distance scratch sized to n.
func (sc *scratch) distBufs(n int) ([]float64, []int) {
	if cap(sc.dist1) < n {
		sc.dist1 = make([]float64, n)
		sc.par1 = make([]int, n)
	}
	return sc.dist1[:n], sc.par1[:n]
}

// spiderBufs returns the spider-assembly scratch (membership mask plus
// node/terminal accumulators) sized to n, cleared.
func (sc *scratch) spiderBufs(n int) []bool {
	if cap(sc.inUnion) < n {
		sc.inUnion = make([]bool, n)
	}
	sc.inUnion = sc.inUnion[:n]
	sc.nodesBuf = sc.nodesBuf[:0]
	sc.termsBuf = sc.termsBuf[:0]
	return sc.inUnion
}

// Clone returns a Spider owning independent Nodes/Terms slices. The
// oracles assemble candidate spiders in scratch buffers and clone only
// the running best, so the per-candidate work is allocation-free.
func (sp Spider) Clone() Spider {
	sp.Nodes = append([]int(nil), sp.Nodes...)
	sp.Terms = append([]int(nil), sp.Terms...)
	return sp
}

// appendPath walks parent pointers from v back to the source of a
// nodeDistInto call and appends the path source..v to buf.
func appendPath(parent []int, v int, buf []int) []int {
	start := len(buf)
	for x := v; x != -1; x = parent[x] {
		buf = append(buf, x)
	}
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf
}

// finishSpider computes cost/terms/ratio over the accumulated node union
// (in insertion order, so float summation order matches the historical
// fresh-allocation code) and sorts the scratch-backed slices.
func (s *State) finishSpider(center int, nodes []int) Spider {
	var cost float64
	terms := s.sc.termsBuf[:0]
	paying := 0
	for _, v := range nodes {
		cost += s.w[v]
		if s.isTerm[v] {
			terms = append(terms, v)
			if !s.free[v] {
				paying++
			}
		}
	}
	sort.Ints(nodes)
	sort.Ints(terms)
	s.sc.nodesBuf = nodes
	s.sc.termsBuf = terms
	ratio := math.Inf(1)
	if paying > 0 {
		ratio = cost / float64(paying)
	}
	return Spider{Center: center, Nodes: nodes, Terms: terms, Paying: paying, Cost: cost, Ratio: ratio}
}

// KleinRaviOracle finds a minimum-ratio spider in the style of Klein–Ravi
// [33]: for every live center, take the minCover, minCover+1, … nearest
// paying terminals by node-weighted distance and keep the prefix whose
// exact union cost per covered paying terminal is smallest.
func KleinRaviOracle(s *State, minCover int) (Spider, bool) {
	best := Spider{Ratio: math.Inf(1)}
	found := false
	n := s.g.N()
	paying := s.PayingTerminals()
	if len(paying) == 0 {
		return best, false
	}
	if minCover > len(paying) {
		minCover = len(paying)
	}
	for v := 0; v < n; v++ {
		if !s.alive[v] {
			continue
		}
		dist, parent := s.sc.distBufs(n)
		// Settle only as far as the last paying terminal: nothing past it
		// is read (see nodeDistStop).
		s.nodeDistStop(v, dist, parent, len(paying))
		// Paying terminals sorted by distance from v. The comparator is a
		// total order (ties broken by id), so the sorted sequence — and
		// with it every downstream byte — does not depend on the sort
		// algorithm. sort.Sort on the pointer sorter avoids the per-call
		// closure and reflect.Swapper allocations of sort.Slice, the
		// dominant allocation site of the whole oracle.
		terms := append(s.sc.sortBuf[:0], paying...)
		s.sc.sortBuf = terms
		s.sc.sorter = termDistSorter{terms: terms, dist: dist}
		sort.Sort(&s.sc.sorter)
		if math.IsInf(dist[terms[minCover-1]], 1) {
			continue
		}
		// Incremental prefix union: leg j extends the union of legs
		// 1..j−1 in place instead of rebuilding it (the historical
		// buildSpider-per-prefix was quadratic in the leg count). Nodes
		// are appended in the same order the rebuild would produce —
		// center first, then each leg's path nodes, skipping ones
		// already present — and cost/terms accumulate at append time,
		// which is the same strictly left-to-right float summation
		// finishSpider performs, so every candidate's Cost, Ratio and
		// Paying are bit-identical to the rebuilt spider's.
		inUnion := s.sc.spiderBufs(n)
		nodes := append(s.sc.nodesBuf, v)
		inUnion[v] = true
		unionTerms := s.sc.termsBuf[:0]
		var cost float64
		paying := 0
		admit := func(x int) {
			cost += s.w[x]
			if s.isTerm[x] {
				unionTerms = append(unionTerms, x)
				if !s.free[x] {
					paying++
				}
			}
		}
		admit(v)
		for j := 1; j <= len(terms); j++ {
			if math.IsInf(dist[terms[j-1]], 1) {
				break
			}
			s.sc.pathBuf = appendPath(parent, terms[j-1], s.sc.pathBuf[:0])
			for _, x := range s.sc.pathBuf {
				if !inUnion[x] {
					inUnion[x] = true
					nodes = append(nodes, x)
					admit(x)
				}
			}
			if j < minCover {
				continue
			}
			ratio := math.Inf(1)
			if paying > 0 {
				ratio = cost / float64(paying)
			}
			if paying >= minCover && ratio < best.Ratio-1e-15 {
				bn := append([]int(nil), nodes...)
				bt := append([]int(nil), unionTerms...)
				sort.Ints(bn)
				sort.Ints(bt)
				best = Spider{Center: v, Nodes: bn, Terms: bt, Paying: paying, Cost: cost, Ratio: ratio}
				found = true
			}
		}
		for _, x := range nodes {
			inUnion[x] = false
		}
		s.sc.nodesBuf = nodes
		s.sc.termsBuf = unionTerms
	}
	return best, found
}

// allPairs returns the all-pairs distance scratch: n rows of length n,
// grown lazily and reused across oracle calls.
func (sc *scratch) allPairs(n int) ([][]float64, [][]int) {
	for len(sc.dists) < n {
		sc.dists = append(sc.dists, nil)
		sc.parents = append(sc.parents, nil)
	}
	ds, ps := sc.dists[:n], sc.parents[:n]
	for i := 0; i < n; i++ {
		if cap(ds[i]) < n {
			ds[i] = make([]float64, n)
			ps[i] = make([]int, n)
			sc.dists[i] = ds[i]
			sc.parents[i] = ps[i]
		}
		ds[i] = ds[i][:n]
		ps[i] = ps[i][:n]
	}
	return ds, ps
}

// BranchSpiderOracle extends KleinRaviOracle with Guha–Khuller style
// branch legs: a leg may route to an intermediate hub and fork to two
// terminals there, which is what improves the greedy from 2 ln k towards
// 1.5 ln k. Per center it greedily combines single and forked legs by
// cost per newly covered terminal, keeping the best exact-ratio prefix.
func BranchSpiderOracle(s *State, minCover int) (Spider, bool) {
	base, okBase := KleinRaviOracle(s, minCover)
	n := s.g.N()
	paying := s.PayingTerminals()
	if len(paying) == 0 {
		return base, okBase
	}
	if minCover > len(paying) {
		minCover = len(paying)
	}
	// All-pairs node distances from every live vertex (hubs and centers).
	dists, parents := s.sc.allPairs(n)
	for v := 0; v < n; v++ {
		if s.alive[v] {
			s.nodeDistInto(v, dists[v], parents[v])
		}
	}
	best := base
	found := okBase
	if cap(s.sc.covered) < n {
		s.sc.covered = make([]bool, n)
	}
	covered := s.sc.covered[:n]
	for v := 0; v < n; v++ {
		if !s.alive[v] {
			continue
		}
		items := s.sc.items[:0]
		for _, t := range paying {
			if !math.IsInf(dists[v][t], 1) {
				items = append(items, legItem{cost: dists[v][t], hub: -1, t1: t, t2: -1})
			}
		}
		for u := 0; u < n; u++ {
			if !s.alive[u] || u == v || math.IsInf(dists[v][u], 1) {
				continue
			}
			// Two nearest paying terminals from hub u.
			t1, t2 := -1, -1
			for _, t := range paying {
				if math.IsInf(dists[u][t], 1) {
					continue
				}
				if t1 < 0 || dists[u][t] < dists[u][t1] {
					t1, t2 = t, t1
				} else if t2 < 0 || dists[u][t] < dists[u][t2] {
					t2 = t
				}
			}
			if t1 < 0 || t2 < 0 {
				continue
			}
			items = append(items, legItem{
				cost: dists[v][u] + dists[u][t1] + dists[u][t2],
				hub:  u,
				t1:   t1,
				t2:   t2,
			})
		}
		s.sc.items = items
		// Greedy by cost per newly covered terminal.
		for _, t := range paying {
			covered[t] = false
		}
		nCovered := 0
		legEnds := s.sc.legEnds[:0]
		hubLegs := s.sc.hubLegs[:0]
		for nCovered < len(paying) {
			bi, bc := -1, math.Inf(1)
			for i, it := range items {
				nu := 0
				if !covered[it.t1] {
					nu++
				}
				if it.t2 >= 0 && !covered[it.t2] {
					nu++
				}
				if nu == 0 {
					continue
				}
				if per := it.cost / float64(nu); per < bc {
					bi, bc = i, per
				}
			}
			if bi < 0 {
				break
			}
			it := items[bi]
			if !covered[it.t1] {
				covered[it.t1] = true
				nCovered++
			}
			if it.t2 >= 0 && !covered[it.t2] {
				covered[it.t2] = true
				nCovered++
			}
			if it.hub < 0 {
				legEnds = append(legEnds, it.t1)
			} else {
				hubLegs = append(hubLegs, it)
			}
			if nCovered >= minCover {
				sp := s.assembleBranchSpider(v, parents, legEnds, hubLegs)
				if sp.Paying >= minCover && sp.Ratio < best.Ratio-1e-15 {
					best = sp.Clone()
					found = true
				}
			}
		}
		s.sc.legEnds = legEnds
		s.sc.hubLegs = hubLegs
	}
	return best, found
}

// termDistSorter sorts terminal ids by (distance, id) — a total order,
// so the result is algorithm-independent.
type termDistSorter struct {
	terms []int
	dist  []float64
}

func (t *termDistSorter) Len() int { return len(t.terms) }
func (t *termDistSorter) Less(a, b int) bool {
	if t.dist[t.terms[a]] != t.dist[t.terms[b]] {
		return t.dist[t.terms[a]] < t.dist[t.terms[b]]
	}
	return t.terms[a] < t.terms[b]
}
func (t *termDistSorter) Swap(a, b int) {
	t.terms[a], t.terms[b] = t.terms[b], t.terms[a]
}

// legItem is a candidate spider leg: either a direct path to one terminal
// (hub < 0, t2 < 0) or a path to a hub that forks to the two terminals
// t1, t2.
type legItem struct {
	cost   float64
	hub    int // −1 for single legs
	t1, t2 int // covered terminals; t2 == −1 for single legs
}

// assembleBranchSpider unions the center's single legs with hub-forked
// legs and computes exact cost, terminals and ratio. Like buildSpider,
// the result aliases scratch; Clone to keep it.
func (s *State) assembleBranchSpider(center int, parents [][]int, singleEnds []int, hubLegs []legItem) Spider {
	inUnion := s.sc.spiderBufs(s.g.N())
	nodes := append(s.sc.nodesBuf, center)
	inUnion[center] = true
	add := func(parent []int, end int) {
		s.sc.pathBuf = appendPath(parent, end, s.sc.pathBuf[:0])
		for _, v := range s.sc.pathBuf {
			if !inUnion[v] {
				inUnion[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	for _, e := range singleEnds {
		add(parents[center], e)
	}
	for _, hl := range hubLegs {
		add(parents[center], hl.hub)
		add(parents[hl.hub], hl.t1)
		add(parents[hl.hub], hl.t2)
	}
	sp := s.finishSpider(center, nodes)
	for _, v := range sp.Nodes {
		inUnion[v] = false
	}
	return sp
}

// Shrink contracts the spider's nodes into a fresh zero-weight terminal
// and returns its id. The new terminal inherits the union of the covered
// terminals' constituents and adjacency to every live neighbor of the
// spider. It is free only if every covered terminal was free: a
// super-terminal that swallowed the source alongside paying agents keeps
// paying through its constituents (§2.2.3's modified sharing).
func (s *State) Shrink(sp Spider) int {
	nv := s.g.AddVertex()
	s.w = append(s.w, 0)
	s.alive = append(s.alive, true)
	s.isTerm = append(s.isTerm, true)
	if cap(s.sc.inSpider) < nv+1 {
		s.sc.inSpider = make([]bool, nv+1)
		s.sc.seen = make([]bool, nv+1)
	}
	inSpider := s.sc.inSpider[:nv+1]
	seen := s.sc.seen[:nv+1]
	for _, v := range sp.Nodes {
		inSpider[v] = true
	}
	var cons []int
	freeAll := true
	for _, t := range sp.Terms {
		cons = append(cons, s.cons[t]...)
		if !s.free[t] {
			freeAll = false
		}
	}
	sort.Ints(cons)
	s.cons = append(s.cons, cons)
	s.free = append(s.free, freeAll)
	// Wire the new vertex to live outside neighbors, then kill the spider.
	touched := s.sc.touched[:0]
	for _, v := range sp.Nodes {
		for _, e := range s.g.Neighbors(v) {
			u := e.To
			if s.alive[u] && !inSpider[u] && !seen[u] {
				seen[u] = true
				touched = append(touched, u)
				s.g.AddEdge(nv, u, 0)
			}
		}
	}
	s.sc.touched = touched
	for _, u := range touched {
		seen[u] = false
	}
	for _, v := range sp.Nodes {
		inSpider[v] = false
		s.alive[v] = false
	}
	return nv
}

// Solution is the output of the greedy NWST algorithm: the selected
// original vertices (terminals included) and their total node weight.
type Solution struct {
	Nodes []int
	Cost  float64
}

// Solve runs the shrink-greedy NWST approximation: repeatedly contract
// the oracle's minimum-ratio spider until at most two terminals remain,
// then connect those optimally. Returns ok=false if the terminals are not
// connected in the instance.
func Solve(in Instance, oracle Oracle) (Solution, bool) {
	s := NewState(in)
	chosen := map[int]bool{}
	record := func(nodes []int) {
		for _, v := range nodes {
			if v < s.n0 {
				chosen[v] = true
			}
		}
	}
	for _, t := range in.Terminals {
		chosen[t] = true
	}
	for {
		live := s.LiveTerminals()
		if len(live) <= 1 {
			break
		}
		if len(live) == 2 {
			path, cost := s.PathBetween(live[0], live[1])
			if math.IsInf(cost, 1) {
				return Solution{}, false
			}
			record(path)
			break
		}
		sp, ok := oracle(s, min(3, len(s.PayingTerminals())))
		if !ok {
			return Solution{}, false
		}
		record(sp.Nodes)
		s.Shrink(sp)
	}
	var nodes []int
	for v := range chosen {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	// Sum in node order: map order would perturb the float low bits.
	var cost float64
	for _, v := range nodes {
		cost += in.Weights[v]
	}
	return Solution{Nodes: nodes, Cost: cost}, true
}

// SpanningTree returns a BFS spanning tree (edge list) of the subgraph of
// g induced by the given nodes, rooted at root. Node-weighted cost does
// not depend on the chosen edges, so any spanning tree of the induced
// subgraph realizes the solution; the reduction back to wireless multicast
// needs one concrete tree.
func SpanningTree(g *graph.Graph, nodes []int, root int) []graph.Edge {
	in := map[int]bool{}
	for _, v := range nodes {
		in[v] = true
	}
	seen := map[int]bool{root: true}
	var edges []graph.Edge
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Neighbors(u) {
			if in[e.To] && !seen[e.To] {
				seen[e.To] = true
				edges = append(edges, graph.Edge{From: u, To: e.To, W: e.W})
				queue = append(queue, e.To)
			}
		}
	}
	return edges
}

// ExactSmall computes the optimal NWST cost by enumerating subsets of
// non-terminal vertices (≤ maxOptional of them) and checking terminal
// connectivity of the induced subgraph.
func ExactSmall(in Instance, maxOptional int) (float64, bool) {
	in.Validate()
	n := in.G.N()
	isTerm := make([]bool, n)
	for _, t := range in.Terminals {
		isTerm[t] = true
	}
	var optional []int
	var termWeight float64
	for v := 0; v < n; v++ {
		if isTerm[v] {
			termWeight += in.Weights[v]
		} else {
			optional = append(optional, v)
		}
	}
	if len(optional) > maxOptional {
		panic(fmt.Sprintf("nwst: ExactSmall limited to %d optional nodes, got %d", maxOptional, len(optional)))
	}
	if len(in.Terminals) <= 1 {
		return termWeight, true
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(optional); mask++ {
		var w float64
		inSet := make([]bool, n)
		for _, t := range in.Terminals {
			inSet[t] = true
		}
		for b, v := range optional {
			if mask&(1<<b) != 0 {
				inSet[v] = true
				w += in.Weights[v]
			}
		}
		if w+termWeight >= best {
			continue
		}
		if connectedOn(in.G, inSet, in.Terminals) {
			best = w + termWeight
		}
	}
	return best, !math.IsInf(best, 1)
}

func connectedOn(g *graph.Graph, inSet []bool, terms []int) bool {
	start := terms[0]
	seen := make([]bool, g.N())
	seen[start] = true
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Neighbors(u) {
			if inSet[e.To] && !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	for _, t := range terms {
		if !seen[t] {
			return false
		}
	}
	return true
}
