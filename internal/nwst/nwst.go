// Package nwst implements the node-weighted Steiner tree (NWST) machinery
// of §2.2 of the paper: node-weighted shortest paths, minimum-ratio spider
// oracles in the style of Klein–Ravi [33] and Guha–Khuller [28], the
// shrink/contract greedy, and an exact solver for small instances.
//
// An NWST instance is an undirected graph with nonnegative *node* weights
// and a set of terminals; the goal is a minimum-weight connected subgraph
// containing all terminals (edge weights play no role). The §2.2.2
// mechanism drives the same oracle/shrink machinery but interleaves the
// utility checks; package nwstmech builds on the State type exported here.
package nwst

import (
	"fmt"
	"math"
	"sort"

	"wmcs/internal/graph"
)

// Instance is a node-weighted Steiner tree instance.
type Instance struct {
	G         *graph.Graph // host graph; edge weights are ignored
	Weights   []float64    // node weights, len == G.N()
	Terminals []int        // required terminals
	// Free marks terminals that must be connected but never pay and are
	// not counted in spider ratios (the wireless reduction's source
	// terminal). len(Free) == len(Terminals) or nil for "all paying".
	Free []bool
}

// Validate panics on malformed instances; used by constructors of
// dependent packages.
func (in Instance) Validate() {
	if len(in.Weights) != in.G.N() {
		panic(fmt.Sprintf("nwst: %d weights for %d nodes", len(in.Weights), in.G.N()))
	}
	if in.Free != nil && len(in.Free) != len(in.Terminals) {
		panic("nwst: Free length mismatch")
	}
	for _, w := range in.Weights {
		if w < 0 {
			panic("nwst: negative node weight")
		}
	}
}

// Spider is a candidate structure chosen by a ratio oracle: a center and a
// union of node-weighted paths ("legs") covering a set of terminals. Cost
// is the exact total weight of the node union; Ratio is Cost divided by
// the number of covered *paying* terminals.
type Spider struct {
	Center int
	Nodes  []int // node union, live ids, includes Center and terminals
	Terms  []int // covered live terminals (paying and free)
	Paying int   // number of covered paying terminals
	Cost   float64
	Ratio  float64
}

// Oracle finds a low-ratio spider covering at least minCover paying
// terminals, returning ok=false if none exists.
type Oracle func(s *State, minCover int) (Spider, bool)

// State is the mutable contracted instance shared by the greedy algorithm
// and the §2.2.2 mechanism. Contracting a spider kills its nodes and adds
// a fresh zero-weight terminal adjacent to all their live neighbors; the
// new terminal remembers the original terminals it contains
// (the paper's N+_t).
type State struct {
	n0     int // number of original vertices
	g      *graph.Graph
	w      []float64
	alive  []bool
	isTerm []bool
	free   []bool
	cons   [][]int // constituents: original terminal ids inside vertex
}

// NewState initializes the contraction state from an instance.
func NewState(in Instance) *State {
	in.Validate()
	n := in.G.N()
	s := &State{
		n0:     n,
		g:      in.G.Clone(),
		w:      append([]float64(nil), in.Weights...),
		alive:  make([]bool, n),
		isTerm: make([]bool, n),
		free:   make([]bool, n),
		cons:   make([][]int, n),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	for ti, t := range in.Terminals {
		s.isTerm[t] = true
		if in.Free != nil && in.Free[ti] {
			s.free[t] = true
		} else {
			s.cons[t] = []int{t}
		}
	}
	return s
}

// N0 returns the number of original vertices.
func (s *State) N0() int { return s.n0 }

// Weight returns the node weight of a live or dead vertex.
func (s *State) Weight(v int) float64 { return s.w[v] }

// IsTerminal reports whether live vertex v is a terminal.
func (s *State) IsTerminal(v int) bool { return s.isTerm[v] }

// IsFree reports whether terminal v is a non-paying (source) terminal.
func (s *State) IsFree(v int) bool { return s.free[v] }

// Alive reports whether vertex v has not been contracted away.
func (s *State) Alive(v int) bool { return s.alive[v] }

// Constituents returns the original paying terminals contained in vertex
// v (the paper's N+_t); a singleton for an original paying terminal, nil
// for non-terminals and free terminals.
func (s *State) Constituents(v int) []int { return s.cons[v] }

// LiveTerminals returns the live terminal ids in increasing order.
func (s *State) LiveTerminals() []int {
	var out []int
	for v := 0; v < s.g.N(); v++ {
		if s.alive[v] && s.isTerm[v] {
			out = append(out, v)
		}
	}
	return out
}

// PayingTerminals returns live terminals that share costs.
func (s *State) PayingTerminals() []int {
	var out []int
	for _, t := range s.LiveTerminals() {
		if !s.free[t] {
			out = append(out, t)
		}
	}
	return out
}

// DropTerminal removes terminal status from an original terminal (used by
// the mechanism when an agent cannot pay). The vertex stays in the graph
// as an optional relay.
func (s *State) DropTerminal(v int) {
	s.isTerm[v] = false
	s.cons[v] = nil
}

// NodeDist computes node-weighted shortest-path distances from src over
// live vertices: dist[v] = min over paths of Σ weights of path nodes
// excluding src itself. parent gives the predecessor on an optimal path.
func (s *State) NodeDist(src int) (dist []float64, parent []int) {
	n := s.g.N()
	dist = make([]float64, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	if !s.alive[src] {
		return dist, parent
	}
	h := graph.NewIndexHeap(n)
	dist[src] = 0
	h.Push(src, 0)
	done := make([]bool, n)
	for h.Len() > 0 {
		u, du := h.Pop()
		if done[u] {
			continue
		}
		done[u] = true
		for _, e := range s.g.Neighbors(u) {
			v := e.To
			if !s.alive[v] || done[v] {
				continue
			}
			if nd := du + s.w[v]; nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				h.PushOrDecrease(v, nd)
			}
		}
	}
	return dist, parent
}

// pathNodes walks parent pointers from v back to the source of a NodeDist
// call, returning the node sequence source..v.
func pathNodes(parent []int, v int) []int {
	var rev []int
	for x := v; x != -1; x = parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathBetween returns the minimum node-weight path between live vertices
// a and b (inclusive of both) and its total node weight.
func (s *State) PathBetween(a, b int) ([]int, float64) {
	dist, parent := s.NodeDist(a)
	if math.IsInf(dist[b], 1) {
		return nil, math.Inf(1)
	}
	return pathNodes(parent, b), dist[b] + s.w[a]
}

// buildSpider assembles an exact-cost Spider from a center and a set of
// leg endpoints with their parent forest.
func (s *State) buildSpider(center int, parent []int, legEnds []int) Spider {
	inUnion := map[int]bool{center: true}
	nodes := []int{center}
	for _, end := range legEnds {
		for _, v := range pathNodes(parent, end) {
			if !inUnion[v] {
				inUnion[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	var cost float64
	var terms []int
	paying := 0
	for _, v := range nodes {
		cost += s.w[v]
		if s.isTerm[v] {
			terms = append(terms, v)
			if !s.free[v] {
				paying++
			}
		}
	}
	sort.Ints(nodes)
	sort.Ints(terms)
	ratio := math.Inf(1)
	if paying > 0 {
		ratio = cost / float64(paying)
	}
	return Spider{Center: center, Nodes: nodes, Terms: terms, Paying: paying, Cost: cost, Ratio: ratio}
}

// KleinRaviOracle finds a minimum-ratio spider in the style of Klein–Ravi
// [33]: for every live center, take the minCover, minCover+1, … nearest
// paying terminals by node-weighted distance and keep the prefix whose
// exact union cost per covered paying terminal is smallest.
func KleinRaviOracle(s *State, minCover int) (Spider, bool) {
	best := Spider{Ratio: math.Inf(1)}
	found := false
	n := s.g.N()
	paying := s.PayingTerminals()
	if len(paying) == 0 {
		return best, false
	}
	if minCover > len(paying) {
		minCover = len(paying)
	}
	for v := 0; v < n; v++ {
		if !s.alive[v] {
			continue
		}
		dist, parent := s.NodeDist(v)
		// Paying terminals sorted by distance from v.
		terms := append([]int(nil), paying...)
		sort.Slice(terms, func(a, b int) bool {
			if dist[terms[a]] != dist[terms[b]] {
				return dist[terms[a]] < dist[terms[b]]
			}
			return terms[a] < terms[b]
		})
		if math.IsInf(dist[terms[minCover-1]], 1) {
			continue
		}
		for j := minCover; j <= len(terms); j++ {
			if math.IsInf(dist[terms[j-1]], 1) {
				break
			}
			sp := s.buildSpider(v, parent, terms[:j])
			if sp.Paying >= minCover && sp.Ratio < best.Ratio-1e-15 {
				best = sp
				found = true
			}
		}
	}
	return best, found
}

// BranchSpiderOracle extends KleinRaviOracle with Guha–Khuller style
// branch legs: a leg may route to an intermediate hub and fork to two
// terminals there, which is what improves the greedy from 2 ln k towards
// 1.5 ln k. Per center it greedily combines single and forked legs by
// cost per newly covered terminal, keeping the best exact-ratio prefix.
func BranchSpiderOracle(s *State, minCover int) (Spider, bool) {
	base, okBase := KleinRaviOracle(s, minCover)
	n := s.g.N()
	paying := s.PayingTerminals()
	if len(paying) == 0 {
		return base, okBase
	}
	if minCover > len(paying) {
		minCover = len(paying)
	}
	// All-pairs node distances from every live vertex (hubs and centers).
	dists := make([][]float64, n)
	parents := make([][]int, n)
	for v := 0; v < n; v++ {
		if s.alive[v] {
			dists[v], parents[v] = s.NodeDist(v)
		}
	}
	best := base
	found := okBase
	for v := 0; v < n; v++ {
		if !s.alive[v] {
			continue
		}
		var items []legItem
		for _, t := range paying {
			if !math.IsInf(dists[v][t], 1) {
				items = append(items, legItem{cost: dists[v][t], ends: []int{t}, hub: -1, terms: []int{t}})
			}
		}
		for u := 0; u < n; u++ {
			if !s.alive[u] || u == v || math.IsInf(dists[v][u], 1) {
				continue
			}
			// Two nearest paying terminals from hub u.
			t1, t2 := -1, -1
			for _, t := range paying {
				if math.IsInf(dists[u][t], 1) {
					continue
				}
				if t1 < 0 || dists[u][t] < dists[u][t1] {
					t1, t2 = t, t1
				} else if t2 < 0 || dists[u][t] < dists[u][t2] {
					t2 = t
				}
			}
			if t1 < 0 || t2 < 0 {
				continue
			}
			items = append(items, legItem{
				cost:  dists[v][u] + dists[u][t1] + dists[u][t2],
				ends:  []int{t1, t2},
				hub:   u,
				terms: []int{t1, t2},
			})
		}
		// Greedy by cost per newly covered terminal.
		covered := map[int]bool{}
		var legEnds []int
		var hubLegs []legItem
		for len(covered) < len(paying) {
			bi, bc := -1, math.Inf(1)
			for i, it := range items {
				nu := 0
				for _, t := range it.terms {
					if !covered[t] {
						nu++
					}
				}
				if nu == 0 {
					continue
				}
				if per := it.cost / float64(nu); per < bc {
					bi, bc = i, per
				}
			}
			if bi < 0 {
				break
			}
			it := items[bi]
			for _, t := range it.terms {
				covered[t] = true
			}
			if it.hub < 0 {
				legEnds = append(legEnds, it.ends...)
			} else {
				hubLegs = append(hubLegs, it)
			}
			if len(covered) >= minCover {
				sp := s.assembleBranchSpider(v, parents, legEnds, hubLegs)
				if sp.Paying >= minCover && sp.Ratio < best.Ratio-1e-15 {
					best = sp
					found = true
				}
			}
		}
	}
	return best, found
}

// legItem is a candidate spider leg: either a direct path to one terminal
// (hub < 0) or a path to a hub that forks to two terminals.
type legItem struct {
	cost  float64
	ends  []int // leg endpoints (terminals), walked in the relevant forest
	hub   int   // −1 for single legs
	terms []int
}

// assembleBranchSpider unions the center's single legs with hub-forked
// legs and computes exact cost, terminals and ratio.
func (s *State) assembleBranchSpider(center int, parents [][]int, singleEnds []int, hubLegs []legItem) Spider {
	inUnion := map[int]bool{center: true}
	nodes := []int{center}
	add := func(parent []int, end int) {
		for _, v := range pathNodes(parent, end) {
			if !inUnion[v] {
				inUnion[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	for _, e := range singleEnds {
		add(parents[center], e)
	}
	for _, hl := range hubLegs {
		add(parents[center], hl.hub)
		for _, e := range hl.ends {
			add(parents[hl.hub], e)
		}
	}
	var cost float64
	var terms []int
	paying := 0
	for _, v := range nodes {
		cost += s.w[v]
		if s.isTerm[v] {
			terms = append(terms, v)
			if !s.free[v] {
				paying++
			}
		}
	}
	sort.Ints(nodes)
	sort.Ints(terms)
	ratio := math.Inf(1)
	if paying > 0 {
		ratio = cost / float64(paying)
	}
	return Spider{Center: center, Nodes: nodes, Terms: terms, Paying: paying, Cost: cost, Ratio: ratio}
}

// Shrink contracts the spider's nodes into a fresh zero-weight terminal
// and returns its id. The new terminal inherits the union of the covered
// terminals' constituents and adjacency to every live neighbor of the
// spider. It is free only if every covered terminal was free: a
// super-terminal that swallowed the source alongside paying agents keeps
// paying through its constituents (§2.2.3's modified sharing).
func (s *State) Shrink(sp Spider) int {
	nv := s.g.AddVertex()
	s.w = append(s.w, 0)
	s.alive = append(s.alive, true)
	s.isTerm = append(s.isTerm, true)
	inSpider := map[int]bool{}
	for _, v := range sp.Nodes {
		inSpider[v] = true
	}
	var cons []int
	freeAll := true
	for _, t := range sp.Terms {
		cons = append(cons, s.cons[t]...)
		if !s.free[t] {
			freeAll = false
		}
	}
	sort.Ints(cons)
	s.cons = append(s.cons, cons)
	s.free = append(s.free, freeAll)
	// Wire the new vertex to live outside neighbors, then kill the spider.
	seen := map[int]bool{}
	for _, v := range sp.Nodes {
		for _, e := range s.g.Neighbors(v) {
			u := e.To
			if s.alive[u] && !inSpider[u] && !seen[u] {
				seen[u] = true
				s.g.AddEdge(nv, u, 0)
			}
		}
	}
	for _, v := range sp.Nodes {
		s.alive[v] = false
	}
	return nv
}

// Solution is the output of the greedy NWST algorithm: the selected
// original vertices (terminals included) and their total node weight.
type Solution struct {
	Nodes []int
	Cost  float64
}

// Solve runs the shrink-greedy NWST approximation: repeatedly contract
// the oracle's minimum-ratio spider until at most two terminals remain,
// then connect those optimally. Returns ok=false if the terminals are not
// connected in the instance.
func Solve(in Instance, oracle Oracle) (Solution, bool) {
	s := NewState(in)
	chosen := map[int]bool{}
	record := func(nodes []int) {
		for _, v := range nodes {
			if v < s.n0 {
				chosen[v] = true
			}
		}
	}
	for _, t := range in.Terminals {
		chosen[t] = true
	}
	for {
		live := s.LiveTerminals()
		if len(live) <= 1 {
			break
		}
		if len(live) == 2 {
			path, cost := s.PathBetween(live[0], live[1])
			if math.IsInf(cost, 1) {
				return Solution{}, false
			}
			record(path)
			break
		}
		sp, ok := oracle(s, min(3, len(s.PayingTerminals())))
		if !ok {
			return Solution{}, false
		}
		record(sp.Nodes)
		s.Shrink(sp)
	}
	var nodes []int
	for v := range chosen {
		nodes = append(nodes, v)
	}
	sort.Ints(nodes)
	// Sum in node order: map order would perturb the float low bits.
	var cost float64
	for _, v := range nodes {
		cost += in.Weights[v]
	}
	return Solution{Nodes: nodes, Cost: cost}, true
}

// SpanningTree returns a BFS spanning tree (edge list) of the subgraph of
// g induced by the given nodes, rooted at root. Node-weighted cost does
// not depend on the chosen edges, so any spanning tree of the induced
// subgraph realizes the solution; the reduction back to wireless multicast
// needs one concrete tree.
func SpanningTree(g *graph.Graph, nodes []int, root int) []graph.Edge {
	in := map[int]bool{}
	for _, v := range nodes {
		in[v] = true
	}
	seen := map[int]bool{root: true}
	var edges []graph.Edge
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Neighbors(u) {
			if in[e.To] && !seen[e.To] {
				seen[e.To] = true
				edges = append(edges, graph.Edge{From: u, To: e.To, W: e.W})
				queue = append(queue, e.To)
			}
		}
	}
	return edges
}

// ExactSmall computes the optimal NWST cost by enumerating subsets of
// non-terminal vertices (≤ maxOptional of them) and checking terminal
// connectivity of the induced subgraph.
func ExactSmall(in Instance, maxOptional int) (float64, bool) {
	in.Validate()
	n := in.G.N()
	isTerm := make([]bool, n)
	for _, t := range in.Terminals {
		isTerm[t] = true
	}
	var optional []int
	var termWeight float64
	for v := 0; v < n; v++ {
		if isTerm[v] {
			termWeight += in.Weights[v]
		} else {
			optional = append(optional, v)
		}
	}
	if len(optional) > maxOptional {
		panic(fmt.Sprintf("nwst: ExactSmall limited to %d optional nodes, got %d", maxOptional, len(optional)))
	}
	if len(in.Terminals) <= 1 {
		return termWeight, true
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(optional); mask++ {
		var w float64
		inSet := make([]bool, n)
		for _, t := range in.Terminals {
			inSet[t] = true
		}
		for b, v := range optional {
			if mask&(1<<b) != 0 {
				inSet[v] = true
				w += in.Weights[v]
			}
		}
		if w+termWeight >= best {
			continue
		}
		if connectedOn(in.G, inSet, in.Terminals) {
			best = w + termWeight
		}
	}
	return best, !math.IsInf(best, 1)
}

func connectedOn(g *graph.Graph, inSet []bool, terms []int) bool {
	start := terms[0]
	seen := make([]bool, g.N())
	seen[start] = true
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Neighbors(u) {
			if inSet[e.To] && !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	for _, t := range terms {
		if !seen[t] {
			return false
		}
	}
	return true
}
