package nwst

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/graph"
)

// fig1Instance reproduces the node-weighted graph of the paper's Fig. 1:
// terminals 1, 5, 6, 7 (zero weight), internal nodes 2, 3, 4 with weights
// chosen so the minimum-ratio spiders Sp2 {1,5,7 via 2,3} and Sp3 exist
// as in the worked example. We use vertex ids:
//
//	0:t1  1:t5  2:t6  3:t7  4:w=3 (node "4")  5:w=1.5 (node "2")
//	6:w=1.5 (node "3")
//
// Edges: t1-5, 5-t7, t7-6, 6-t5, t1-4, 4-t6, plus t1-... mirroring the
// paper's figure: spider Sp2 = {t1, 2, 7, 3, 5} with cost 3 covering
// terminals {1,5,7} at ratio 1, and the path t1-4-t6 with cost 3 / ratio
// 3/2 connecting the rest; spider Sp1 = the 3-leg spider through 4.
func fig1Instance() Instance {
	g := graph.New(7)
	w := []float64{0, 0, 0, 0, 3, 1.5, 1.5}
	g.AddEdge(0, 5, 0) // t1 - node2
	g.AddEdge(5, 3, 0) // node2 - t7
	g.AddEdge(3, 6, 0) // t7 - node3
	g.AddEdge(6, 1, 0) // node3 - t5
	g.AddEdge(0, 4, 0) // t1 - node4
	g.AddEdge(4, 2, 0) // node4 - t6
	g.AddEdge(4, 1, 0) // node4 - t5
	return Instance{G: g, Weights: w, Terminals: []int{0, 1, 2, 3}}
}

func TestValidate(t *testing.T) {
	in := fig1Instance()
	in.Validate() // must not panic
	bad := Instance{G: graph.New(2), Weights: []float64{1}, Terminals: nil}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad.Validate()
}

func TestValidateRejectsNegativeWeight(t *testing.T) {
	g := graph.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Instance{G: g, Weights: []float64{-1}}.Validate()
}

func TestNodeDist(t *testing.T) {
	in := fig1Instance()
	s := NewState(in)
	dist, parent := s.NodeDist(0)
	if dist[0] != 0 {
		t.Errorf("dist[src] = %g", dist[0])
	}
	// t1 → node2(1.5) → t7(0): distance 1.5.
	if dist[3] != 1.5 {
		t.Errorf("dist[t7] = %g", dist[3])
	}
	// t1 → node4(3) → t6: 3.
	if dist[2] != 3 {
		t.Errorf("dist[t6] = %g", dist[2])
	}
	if got := pathNodes(parent, 3); len(got) != 3 || got[0] != 0 || got[1] != 5 || got[2] != 3 {
		t.Errorf("path = %v", got)
	}
}

func TestPathBetween(t *testing.T) {
	s := NewState(fig1Instance())
	nodes, cost := s.PathBetween(0, 2)
	if math.Abs(cost-3) > 1e-12 {
		t.Errorf("cost = %g want 3", cost)
	}
	if len(nodes) != 3 || nodes[1] != 4 {
		t.Errorf("nodes = %v", nodes)
	}
}

func TestKleinRaviOracleFig1(t *testing.T) {
	s := NewState(fig1Instance())
	sp, ok := KleinRaviOracle(s, 3)
	if !ok {
		t.Fatal("oracle found nothing")
	}
	// The paper: minimum-ratio 3-terminal spiders have ratio 1 (Sp2/Sp3).
	if math.Abs(sp.Ratio-1) > 1e-12 {
		t.Errorf("ratio = %g want 1 (spider %+v)", sp.Ratio, sp)
	}
	if sp.Paying != 3 {
		t.Errorf("paying = %d", sp.Paying)
	}
}

func TestShrinkBookkeeping(t *testing.T) {
	s := NewState(fig1Instance())
	sp, _ := KleinRaviOracle(s, 3)
	nv := s.Shrink(sp)
	if !s.Alive(nv) || !s.IsTerminal(nv) || s.Weight(nv) != 0 {
		t.Error("new terminal malformed")
	}
	if got := s.Constituents(nv); len(got) != 3 {
		t.Errorf("constituents = %v", got)
	}
	for _, v := range sp.Nodes {
		if s.Alive(v) {
			t.Errorf("spider node %d still alive", v)
		}
	}
	// Two terminals remain: nv and the uncovered one.
	if got := s.LiveTerminals(); len(got) != 2 {
		t.Errorf("live terminals = %v", got)
	}
}

func TestSolveFig1(t *testing.T) {
	in := fig1Instance()
	for name, oracle := range map[string]Oracle{"kr": KleinRaviOracle, "branch": BranchSpiderOracle} {
		sol, ok := Solve(in, oracle)
		if !ok {
			t.Fatalf("%s: no solution", name)
		}
		// Optimal solution: terminals + nodes {4} (spider Sp1, cost 3)
		// or {2,3}+{4} (cost 6) depending on greedy path; exact optimum
		// is 3 (all terminals through node 4 alone... node 4 connects
		// t1, t5, t6; t7 needs node2 or node3, so OPT = 3 + 1.5 = 4.5).
		opt, okx := ExactSmall(in, 10)
		if !okx {
			t.Fatal("exact failed")
		}
		if math.Abs(opt-4.5) > 1e-12 {
			t.Fatalf("exact = %g want 4.5", opt)
		}
		if sol.Cost < opt-1e-9 {
			t.Fatalf("%s: solution %g beats optimum %g", name, sol.Cost, opt)
		}
		// ln(4) ≈ 1.39; allow the full 2·ln k factor.
		if sol.Cost > opt*2*math.Log(4)+1e-9 {
			t.Fatalf("%s: solution %g exceeds 2 ln k bound (opt %g)", name, sol.Cost, opt)
		}
		// The node set must connect the terminals.
		edges := SpanningTree(in.G, sol.Nodes, in.Terminals[0])
		if len(edges) != len(sol.Nodes)-1 {
			t.Fatalf("%s: chosen nodes do not induce a connected subgraph", name)
		}
	}
}

func TestFreeTerminalsExcludedFromRatio(t *testing.T) {
	in := fig1Instance()
	in.Free = []bool{true, false, false, false} // t1 becomes the source
	s := NewState(in)
	if got := s.PayingTerminals(); len(got) != 3 {
		t.Fatalf("paying = %v", got)
	}
	if !s.IsFree(0) {
		t.Error("t1 should be free")
	}
	if s.Constituents(0) != nil {
		t.Error("free terminal must have no constituents")
	}
	sp, ok := KleinRaviOracle(s, 2)
	if !ok {
		t.Fatal("no spider")
	}
	// Ratio must divide by paying terminals only.
	var cost float64
	for _, v := range sp.Nodes {
		cost += s.Weight(v)
	}
	if math.Abs(sp.Ratio-cost/float64(sp.Paying)) > 1e-12 {
		t.Errorf("ratio %g inconsistent with cost %g / paying %d", sp.Ratio, cost, sp.Paying)
	}
}

func TestDropTerminal(t *testing.T) {
	s := NewState(fig1Instance())
	s.DropTerminal(0)
	if s.IsTerminal(0) || s.Constituents(0) != nil {
		t.Error("DropTerminal did not clear state")
	}
	if got := s.LiveTerminals(); len(got) != 3 {
		t.Errorf("live = %v", got)
	}
}

// randomInstance builds a connected random node-weighted instance.
func randomInstance(rng *rand.Rand, n, k int) Instance {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i), 0) // random tree keeps it connected
	}
	extra := n / 2
	for e := 0; e < extra; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 0)
		}
	}
	w := make([]float64, n)
	perm := rng.Perm(n)
	terms := perm[:k]
	isTerm := make([]bool, n)
	for _, t := range terms {
		isTerm[t] = true
	}
	for v := 0; v < n; v++ {
		if !isTerm[v] {
			w[v] = rng.Float64()*4 + 0.1
		}
	}
	return Instance{G: g, Weights: w, Terminals: terms}
}

// Property: both oracles yield solutions within the 2 ln k guarantee of
// the exact optimum on random instances, and never below it.
func TestSolveApproximationRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(8)
		k := 3 + rng.Intn(3)
		if k >= n {
			k = n - 1
		}
		in := randomInstance(rng, n, k)
		opt, ok := ExactSmall(in, 18)
		if !ok {
			t.Fatalf("trial %d: exact failed", trial)
		}
		for name, oracle := range map[string]Oracle{"kr": KleinRaviOracle, "branch": BranchSpiderOracle} {
			sol, ok := Solve(in, oracle)
			if !ok {
				t.Fatalf("trial %d %s: no solution", trial, name)
			}
			if sol.Cost < opt-1e-9 {
				t.Fatalf("trial %d %s: %g beats optimum %g", trial, name, sol.Cost, opt)
			}
			bound := opt * (1 + 2*math.Log(float64(k)))
			if sol.Cost > bound+1e-9 {
				t.Fatalf("trial %d %s: %g exceeds bound %g (opt %g, k=%d)",
					trial, name, sol.Cost, bound, opt, k)
			}
			edges := SpanningTree(in.G, sol.Nodes, in.Terminals[0])
			if len(edges) != len(sol.Nodes)-1 {
				t.Fatalf("trial %d %s: solution disconnected", trial, name)
			}
		}
	}
}

func TestExactSmallGuard(t *testing.T) {
	in := randomInstance(rand.New(rand.NewSource(1)), 25, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExactSmall(in, 5)
}

func TestExactSmallSingleTerminal(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 0)
	in := Instance{G: g, Weights: []float64{2, 1, 1}, Terminals: []int{0}}
	c, ok := ExactSmall(in, 5)
	if !ok || c != 2 {
		t.Errorf("got %g ok=%v", c, ok)
	}
}

func TestSolveDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 0)
	g.AddEdge(2, 3, 0)
	in := Instance{G: g, Weights: []float64{0, 0, 0, 0}, Terminals: []int{0, 2}}
	if _, ok := Solve(in, KleinRaviOracle); ok {
		t.Error("disconnected terminals should fail")
	}
}
