package nwst

// Workspace is the flat per-run scratch of the §2.2.2 mechanism loop
// (package nwstmech): cost shares and chosen-node flags indexed by
// original vertex id, and Eq. (5) super-terminal utilities indexed by
// contracted vertex id. It replaces the per-attempt maps the mechanism
// historically allocated — a State is already the pooled per-query
// workspace, so hanging the buffers here makes every attempt
// allocation-free without changing who owns mutable state: one
// goroutine per checked-out State.
//
// The three slices are kept at a common length covering every vertex
// id minted so far; Reset shrinks and zeroes them for a fresh run,
// Grow extends them (zero-filled) as Shrink mints super-terminals.
type Workspace struct {
	Shares []float64 // per original-vertex cost shares
	VT     []float64 // Eq. (5) super-terminal utilities, by vertex id
	Chosen []bool    // original vertices selected into the solution
}

// Workspace returns the state's mechanism scratch, allocated on first
// use and reused across Reset cycles like every other State buffer.
func (s *State) Workspace() *Workspace {
	if s.ws == nil {
		s.ws = &Workspace{}
	}
	return s.ws
}

// Reset sizes the buffers to n entries, all zero.
func (w *Workspace) Reset(n int) {
	if cap(w.Shares) < n {
		w.Shares = make([]float64, n)
		w.VT = make([]float64, n)
		w.Chosen = make([]bool, n)
		return
	}
	w.Shares = w.Shares[:n]
	w.VT = w.VT[:n]
	w.Chosen = w.Chosen[:n]
	for i := 0; i < n; i++ {
		w.Shares[i] = 0
		w.VT[i] = 0
		w.Chosen[i] = false
	}
}

// Grow extends the buffers to at least n entries, new entries zero.
func (w *Workspace) Grow(n int) {
	for len(w.Shares) < n {
		w.Shares = append(w.Shares, 0)
		w.VT = append(w.VT, 0)
		w.Chosen = append(w.Chosen, false)
	}
}
