package nwst

import (
	"encoding/binary"
	"sync"
)

// This file implements the trajectory memo behind the E6/serving hot
// path. The observation (DESIGN.md §11): the shrink-greedy spider
// trajectory of the §2.2.2 mechanism — which spider the oracle picks at
// each step, and the final two-terminal path — depends only on the
// contraction state, which in turn depends only on the terminal set the
// run started from. The reported utility profile decides *acceptance*:
// either every covered terminal affords the ratio and the state evolves
// exactly as the oracle dictates, or someone cannot pay and the whole
// attempt aborts (the mechanism restarts on a smaller terminal set,
// which is a different memo key). So for a fixed terminal set the
// spider sequence is one deterministic trajectory, and every re-run —
// a deviation probe in CheckStrategyproof, a repeat query against the
// serving layer, a Moulin–Shenker restart that returns to a set seen
// before — can replay recorded spiders instead of re-running the
// oracle's Dijkstra sweeps, byte-identically: the stored spiders are
// the exact structs a fresh run would compute.

// TrajectoryStepKind classifies one recorded step of a spider
// trajectory.
type TrajectoryStepKind uint8

const (
	// StepSpider is an oracle-chosen spider (three or more live
	// terminals at the time).
	StepSpider TrajectoryStepKind = iota
	// StepPath is the two-terminal endgame: the optimal connecting path
	// wrapped as a degenerate spider.
	StepPath
	// StepFail records that the trajectory dead-ends here: the oracle
	// found no spider, or the last two terminals are disconnected.
	StepFail
)

// TrajectoryStep is one recorded step. Spider is meaningful for
// StepSpider and StepPath and must be treated as immutable: replayers
// and the recording run share the same backing slices.
type TrajectoryStep struct {
	Kind   TrajectoryStepKind
	Spider Spider
}

// TrajectoryKey encodes a terminal set with its free flags as a memo
// key. Callers must present terminals in a deterministic order (the
// mechanism's: free terminals in instance order, then paying terminals
// sorted) — the key is positional, which is exactly what makes equal
// runs collide and unequal runs not.
func TrajectoryKey(terms []int, free []bool) string {
	buf := make([]byte, 0, 2*len(terms)+4)
	for i, t := range terms {
		v := uint64(t) << 1
		if free[i] {
			v |= 1
		}
		buf = binary.AppendUvarint(buf, v)
	}
	return string(buf)
}

// defaultTrajectoryEntries bounds a memo's distinct terminal sets. The
// mechanism's keys are the active sets visited by Moulin–Shenker drop
// loops and deviation probes — dozens per network in practice; the cap
// only exists so an adversarial query stream cannot grow the table
// without bound. At the cap, new keys run unmemoized (correct, just
// not accelerated).
const defaultTrajectoryEntries = 1 << 14

// TrajectoryMemo records spider trajectories per terminal-set key. It
// is safe for concurrent use; concurrent runs of the same key publish
// identical steps (the trajectory is deterministic), so later
// publishes of an already-recorded index are dropped.
//
// Lifetime contract (DESIGN.md §11): a memo belongs to one mechanism
// instance, which belongs to one evaluator generation. Rebuilding the
// evaluator — which is what query.VersionedEvaluator.Update does on
// every network delta — builds new mechanisms and with them fresh,
// empty memos, so no recorded spider can survive a version bump.
type TrajectoryMemo struct {
	mu      sync.Mutex
	entries map[string]*trajectory
	max     int
}

type trajectory struct {
	steps []TrajectoryStep
}

// NewTrajectoryMemo builds an empty memo; maxEntries ≤ 0 selects the
// default cap.
func NewTrajectoryMemo(maxEntries int) *TrajectoryMemo {
	if maxEntries <= 0 {
		maxEntries = defaultTrajectoryEntries
	}
	return &TrajectoryMemo{entries: make(map[string]*trajectory), max: maxEntries}
}

// Lookup returns the recorded prefix for a key. The returned slice is
// a stable snapshot: publishers append (never mutate in place), so a
// reader's view stays valid while the trajectory grows behind it.
func (m *TrajectoryMemo) Lookup(key string) []TrajectoryStep {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[key]; ok {
		return e.steps
	}
	return nil
}

// Publish records step idx of a key's trajectory. Only the next
// unrecorded index is accepted — earlier indices are already recorded
// (identically, by determinism) and later ones would leave a hole; a
// run that computed past another publisher's frontier re-publishes
// step by step, so the frontier only ever advances by one.
func (m *TrajectoryMemo) Publish(key string, idx int, step TrajectoryStep) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		if len(m.entries) >= m.max {
			return
		}
		e = &trajectory{}
		m.entries[key] = e
	}
	if len(e.steps) == idx {
		e.steps = append(e.steps, step)
	}
}

// Len reports the number of recorded keys (observability and tests).
func (m *TrajectoryMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
