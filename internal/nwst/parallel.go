package nwst

import (
	"math"
	"sort"
	"sync"

	"wmcs/internal/engine"
	"wmcs/internal/graph"
)

// This file is the parallel tier of the spider oracles (DESIGN.md §14).
// Both oracles are center scans: every live vertex is scored
// independently against read-only state (graph, weights, terminal
// marks), and the winner is picked by the deterministic total order the
// serial oracles already use. Parallelizing is therefore a partition of
// the center range into *fixed* contiguous slices — a function of the
// vertex count only, never of the pool width — each scanned by one task
// with its own scratch, followed by a fold of the slice winners in slice
// order under the serial acceptance predicate (ratio < best − 1e-15,
// first winner kept on near-ties). Width 1 runs the identical slicing
// serially, so the parallel oracles are byte-identical at every width.
//
// Relative to the *serial* oracles the fold is grouped differently, so
// in the adversarial case of a chain of candidates each within 1e-15 of
// the last the two tiers could keep different (equally minimal-ratio)
// spiders; on the repo's scenario grid they agree bit for bit — the
// differential tests pin that — and the parallel tier is opt-in.

// oracleSliceCap bounds the number of center slices: min(n, 32) slices
// keeps the fold trivially cheap while feeding any realistic pool.
const oracleSliceCap = 32

// oracleSlices returns the fixed slice count for an n-vertex scan.
func oracleSlices(n int) int {
	if n < oracleSliceCap {
		return n
	}
	return oracleSliceCap
}

// oracleScratch is one task's private set of the buffers the serial
// oracles keep in State.sc. It carries no information across uses, so
// which pooled scratch serves which slice never affects a byte.
type oracleScratch struct {
	heap     *graph.IndexHeap
	done     []bool
	dist     []float64
	par      []int
	sortBuf  []int
	sorter   termDistSorter
	inUnion  []bool
	nodesBuf []int
	termsBuf []int
	pathBuf  []int
	items    []legItem
	legEnds  []int
	hubLegs  []legItem
	covered  []bool
}

var oracleScratchPool = sync.Pool{New: func() any { return &oracleScratch{heap: graph.NewIndexHeap(0)} }}

// grow sizes the scratch to an n-vertex graph.
func (sc *oracleScratch) grow(n int) {
	sc.heap.Grow(n)
	if cap(sc.dist) < n {
		sc.dist = make([]float64, n)
		sc.par = make([]int, n)
	}
	sc.dist = sc.dist[:n]
	sc.par = sc.par[:n]
	if cap(sc.inUnion) < n {
		sc.inUnion = make([]bool, n)
	}
	sc.inUnion = sc.inUnion[:n]
	if cap(sc.covered) < n {
		sc.covered = make([]bool, n)
	}
	sc.covered = sc.covered[:n]
}

// spiderBufs mirrors scratch.spiderBufs on the task-local scratch.
func (sc *oracleScratch) spiderBufs() []bool {
	sc.nodesBuf = sc.nodesBuf[:0]
	sc.termsBuf = sc.termsBuf[:0]
	return sc.inUnion
}

// sliceResult is one center slice's winner.
type sliceResult struct {
	sp Spider
	ok bool
}

// foldSlices merges slice winners in slice order under the serial
// acceptance predicate, starting from base.
func foldSlices(base Spider, okBase bool, out []sliceResult) (Spider, bool) {
	best, found := base, okBase
	for _, r := range out {
		if r.ok && r.sp.Ratio < best.Ratio-1e-15 {
			best = r.sp
			found = true
		}
	}
	return best, found
}

// ParallelKleinRaviOracle returns KleinRaviOracle with the center scan
// partitioned across the pool's workers. The returned oracle requires
// that the State not be used concurrently by anything else during a
// call (the mechanism's call discipline already guarantees this).
func ParallelKleinRaviOracle(pool *engine.Pool) Oracle {
	return func(s *State, minCover int) (Spider, bool) {
		return kleinRaviParallel(s, minCover, pool)
	}
}

func kleinRaviParallel(s *State, minCover int, pool *engine.Pool) (Spider, bool) {
	n := s.g.N()
	paying := s.PayingTerminals()
	if len(paying) == 0 {
		return Spider{Ratio: math.Inf(1)}, false
	}
	if minCover > len(paying) {
		minCover = len(paying)
	}
	ns := oracleSlices(n)
	out := engine.Map(pool, ns, func(b int) sliceResult {
		lo, hi := b*n/ns, (b+1)*n/ns
		sc := oracleScratchPool.Get().(*oracleScratch)
		defer oracleScratchPool.Put(sc)
		sc.grow(n)
		sp, ok := krScanCenters(s, lo, hi, paying, minCover, sc)
		return sliceResult{sp, ok}
	})
	return foldSlices(Spider{Ratio: math.Inf(1)}, false, out)
}

// krScanCenters runs the Klein–Ravi center loop over [lo, hi) with
// task-local scratch. The per-center arithmetic — early-stop sweep,
// (distance, id) terminal order, incremental prefix union with
// left-to-right cost accumulation — is byte-for-byte the serial
// KleinRaviOracle's; keep the two in lockstep.
func krScanCenters(s *State, lo, hi int, paying []int, minCover int, sc *oracleScratch) (Spider, bool) {
	best := Spider{Ratio: math.Inf(1)}
	found := false
	for v := lo; v < hi; v++ {
		if !s.alive[v] {
			continue
		}
		dist, parent := sc.dist, sc.par
		s.nodeDistStopWith(sc.heap, &sc.done, v, dist, parent, len(paying))
		terms := append(sc.sortBuf[:0], paying...)
		sc.sortBuf = terms
		sc.sorter = termDistSorter{terms: terms, dist: dist}
		sort.Sort(&sc.sorter)
		if math.IsInf(dist[terms[minCover-1]], 1) {
			continue
		}
		inUnion := sc.spiderBufs()
		nodes := append(sc.nodesBuf, v)
		inUnion[v] = true
		unionTerms := sc.termsBuf[:0]
		var cost float64
		payCnt := 0
		admit := func(x int) {
			cost += s.w[x]
			if s.isTerm[x] {
				unionTerms = append(unionTerms, x)
				if !s.free[x] {
					payCnt++
				}
			}
		}
		admit(v)
		for j := 1; j <= len(terms); j++ {
			if math.IsInf(dist[terms[j-1]], 1) {
				break
			}
			sc.pathBuf = appendPath(parent, terms[j-1], sc.pathBuf[:0])
			for _, x := range sc.pathBuf {
				if !inUnion[x] {
					inUnion[x] = true
					nodes = append(nodes, x)
					admit(x)
				}
			}
			if j < minCover {
				continue
			}
			ratio := math.Inf(1)
			if payCnt > 0 {
				ratio = cost / float64(payCnt)
			}
			if payCnt >= minCover && ratio < best.Ratio-1e-15 {
				bn := append([]int(nil), nodes...)
				bt := append([]int(nil), unionTerms...)
				sort.Ints(bn)
				sort.Ints(bt)
				best = Spider{Center: v, Nodes: bn, Terms: bt, Paying: payCnt, Cost: cost, Ratio: ratio}
				found = true
			}
		}
		for _, x := range nodes {
			inUnion[x] = false
		}
		sc.nodesBuf = nodes
		sc.termsBuf = unionTerms
	}
	return best, found
}

// ParallelBranchSpiderOracle returns BranchSpiderOracle with its three
// scans — the Klein–Ravi base, the all-pairs distance build (disjoint
// row writes), and the per-center greedy — partitioned across the
// pool's workers.
func ParallelBranchSpiderOracle(pool *engine.Pool) Oracle {
	return func(s *State, minCover int) (Spider, bool) {
		base, okBase := kleinRaviParallel(s, minCover, pool)
		n := s.g.N()
		paying := s.PayingTerminals()
		if len(paying) == 0 {
			return base, okBase
		}
		if minCover > len(paying) {
			minCover = len(paying)
		}
		// All-pairs rows live in the state's scratch (grown serially
		// here); tasks write disjoint rows with task-local heaps, so the
		// table contents equal the serial build's exactly.
		dists, parents := s.sc.allPairs(n)
		ns := oracleSlices(n)
		engine.Map(pool, ns, func(b int) struct{} {
			sc := oracleScratchPool.Get().(*oracleScratch)
			defer oracleScratchPool.Put(sc)
			sc.grow(n)
			for v := b * n / ns; v < (b+1)*n/ns; v++ {
				if s.alive[v] {
					s.nodeDistStopWith(sc.heap, &sc.done, v, dists[v], parents[v], -1)
				}
			}
			return struct{}{}
		})
		out := engine.Map(pool, ns, func(b int) sliceResult {
			lo, hi := b*n/ns, (b+1)*n/ns
			sc := oracleScratchPool.Get().(*oracleScratch)
			defer oracleScratchPool.Put(sc)
			sc.grow(n)
			sp, ok := branchScanCenters(s, lo, hi, paying, minCover, dists, parents, sc)
			return sliceResult{sp, ok}
		})
		return foldSlices(base, okBase, out)
	}
}

// branchScanCenters runs the branch-leg greedy over centers [lo, hi)
// with task-local scratch, reading the shared all-pairs tables. The
// per-center arithmetic is byte-for-byte the serial
// BranchSpiderOracle's; keep the two in lockstep.
func branchScanCenters(s *State, lo, hi int, paying []int, minCover int, dists [][]float64, parents [][]int, sc *oracleScratch) (Spider, bool) {
	best := Spider{Ratio: math.Inf(1)}
	found := false
	covered := sc.covered
	for v := lo; v < hi; v++ {
		if !s.alive[v] {
			continue
		}
		items := sc.items[:0]
		for _, t := range paying {
			if !math.IsInf(dists[v][t], 1) {
				items = append(items, legItem{cost: dists[v][t], hub: -1, t1: t, t2: -1})
			}
		}
		n := s.g.N()
		for u := 0; u < n; u++ {
			if !s.alive[u] || u == v || math.IsInf(dists[v][u], 1) {
				continue
			}
			t1, t2 := -1, -1
			for _, t := range paying {
				if math.IsInf(dists[u][t], 1) {
					continue
				}
				if t1 < 0 || dists[u][t] < dists[u][t1] {
					t1, t2 = t, t1
				} else if t2 < 0 || dists[u][t] < dists[u][t2] {
					t2 = t
				}
			}
			if t1 < 0 || t2 < 0 {
				continue
			}
			items = append(items, legItem{
				cost: dists[v][u] + dists[u][t1] + dists[u][t2],
				hub:  u,
				t1:   t1,
				t2:   t2,
			})
		}
		sc.items = items
		for _, t := range paying {
			covered[t] = false
		}
		nCovered := 0
		legEnds := sc.legEnds[:0]
		hubLegs := sc.hubLegs[:0]
		for nCovered < len(paying) {
			bi, bc := -1, math.Inf(1)
			for i, it := range items {
				nu := 0
				if !covered[it.t1] {
					nu++
				}
				if it.t2 >= 0 && !covered[it.t2] {
					nu++
				}
				if nu == 0 {
					continue
				}
				if per := it.cost / float64(nu); per < bc {
					bi, bc = i, per
				}
			}
			if bi < 0 {
				break
			}
			it := items[bi]
			if !covered[it.t1] {
				covered[it.t1] = true
				nCovered++
			}
			if it.t2 >= 0 && !covered[it.t2] {
				covered[it.t2] = true
				nCovered++
			}
			if it.hub < 0 {
				legEnds = append(legEnds, it.t1)
			} else {
				hubLegs = append(hubLegs, it)
			}
			if nCovered >= minCover {
				sp := assembleBranchSpiderWith(sc, s, v, parents, legEnds, hubLegs)
				if sp.Paying >= minCover && sp.Ratio < best.Ratio-1e-15 {
					best = sp.Clone()
					found = true
				}
			}
		}
		sc.legEnds = legEnds
		sc.hubLegs = hubLegs
	}
	return best, found
}

// assembleBranchSpiderWith is assembleBranchSpider on task-local
// scratch; like it, the result aliases the scratch — Clone to keep it.
func assembleBranchSpiderWith(sc *oracleScratch, s *State, center int, parents [][]int, singleEnds []int, hubLegs []legItem) Spider {
	inUnion := sc.spiderBufs()
	nodes := append(sc.nodesBuf, center)
	inUnion[center] = true
	add := func(parent []int, end int) {
		sc.pathBuf = appendPath(parent, end, sc.pathBuf[:0])
		for _, v := range sc.pathBuf {
			if !inUnion[v] {
				inUnion[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	for _, e := range singleEnds {
		add(parents[center], e)
	}
	for _, hl := range hubLegs {
		add(parents[center], hl.hub)
		add(parents[hl.hub], hl.t1)
		add(parents[hl.hub], hl.t2)
	}
	sp := finishSpiderWith(sc, s, center, nodes)
	for _, v := range sp.Nodes {
		inUnion[v] = false
	}
	return sp
}

// finishSpiderWith is finishSpider on task-local scratch: cost summed in
// insertion order, then nodes/terms sorted in place.
func finishSpiderWith(sc *oracleScratch, s *State, center int, nodes []int) Spider {
	var cost float64
	terms := sc.termsBuf[:0]
	paying := 0
	for _, v := range nodes {
		cost += s.w[v]
		if s.isTerm[v] {
			terms = append(terms, v)
			if !s.free[v] {
				paying++
			}
		}
	}
	sort.Ints(nodes)
	sort.Ints(terms)
	sc.nodesBuf = nodes
	sc.termsBuf = terms
	ratio := math.Inf(1)
	if paying > 0 {
		ratio = cost / float64(paying)
	}
	return Spider{Center: center, Nodes: nodes, Terms: terms, Paying: paying, Cost: cost, Ratio: ratio}
}
