package wireless

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wmcs/internal/geom"
)

// Property: raising any station's power never shrinks the reach set
// (the transmission digraph grows monotonically with power).
func TestQuickPowerMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(seed uint16, station uint8, bump uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		nw := NewEuclidean(geom.RandomCloud(r, 7, 2, 10), geom.NewPowerCost(2), 0)
		a := make(Assignment, nw.N())
		for i := range a {
			a[i] = r.Float64() * 50
		}
		before := nw.ReachSet(a)
		b := a.Clone()
		b[int(station)%nw.N()] += float64(bump) + 1
		after := nw.ReachSet(b)
		for v := range before {
			if before[v] && !after[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: the optimal multicast cost is monotone in the receiver set
// and bounded by the broadcast optimum.
func TestQuickOptimalCostMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	f := func(seed uint16, mask uint8) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		nw := NewEuclidean(geom.RandomCloud(r, 6, 2, 10), geom.NewPowerCost(2), 0)
		var R []int
		for _, v := range nw.AllReceivers() {
			if mask&(1<<uint(v%8)) != 0 {
				R = append(R, v)
			}
		}
		sub, _ := ExactMEMT(nw, R)
		all, _ := ExactMEMT(nw, nw.AllReceivers())
		return sub <= all+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: the tree→power Steiner heuristic never exceeds the tree's
// edge-weight sum (each station pays only its max child edge).
func TestQuickTreePowerAtMostEdgeSum(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		nw := NewEuclidean(geom.RandomCloud(r, 8, 2, 10), geom.NewPowerCost(2), 0)
		tr, a := MSTBroadcast(nw)
		var edgeSum float64
		for v, p := range tr.Parent {
			if p >= 0 {
				edgeSum += nw.C(p, v)
			}
		}
		return a.Total() <= edgeSum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}
