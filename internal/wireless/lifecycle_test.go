package wireless

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/geom"
	"wmcs/internal/graph"
)

// testSymmetric builds a small abstract symmetric network with distinct
// off-diagonal costs.
func testSymmetric(n int) *Network {
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, float64(1+i*n+j))
		}
	}
	return NewSymmetric(m, 0)
}

func testEuclidean(n, dim int) *Network {
	rng := rand.New(rand.NewSource(7))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 10
		}
		pts[i] = p
	}
	return NewEuclidean(pts, geom.NewPowerCost(2), 0)
}

func TestSetCostSymmetricAndVersion(t *testing.T) {
	nw := testSymmetric(5)
	if nw.Version() != 0 {
		t.Fatalf("fresh network version %d, want 0", nw.Version())
	}
	if _, err := nw.SetCost(1, 3, 42.5); err != nil {
		t.Fatal(err)
	}
	if nw.C(1, 3) != 42.5 || nw.C(3, 1) != 42.5 {
		t.Fatalf("SetCost not symmetric: %g / %g", nw.C(1, 3), nw.C(3, 1))
	}
	if nw.Version() != 1 {
		t.Fatalf("version %d after one op, want 1", nw.Version())
	}
	for _, bad := range []struct {
		i, j int
		w    float64
	}{
		{1, 1, 5},           // diagonal
		{-1, 2, 5},          // out of range
		{0, 5, 5},           // out of range
		{0, 1, -2},          // negative
		{0, 1, math.NaN()},  // NaN
		{0, 1, math.Inf(1)}, // Inf
	} {
		if _, err := nw.SetCost(bad.i, bad.j, bad.w); err == nil {
			t.Errorf("SetCost(%d,%d,%g) accepted", bad.i, bad.j, bad.w)
		}
	}
	if nw.Version() != 1 {
		t.Fatalf("failed ops bumped the version to %d", nw.Version())
	}
	// Euclidean networks refuse direct cost mutation.
	if _, err := testEuclidean(4, 2).SetCost(1, 2, 3); err == nil {
		t.Fatal("SetCost accepted on a Euclidean network")
	}
}

func TestMoveStationRecomputesRow(t *testing.T) {
	nw := testEuclidean(6, 2)
	dst := geom.Point{1.25, -3.5}
	if _, err := nw.MoveStation(2, dst); err != nil {
		t.Fatal(err)
	}
	if !nw.Points()[2].Equal(dst) {
		t.Fatalf("point not moved: %v", nw.Points()[2])
	}
	pc := nw.PowerModel()
	for j := 0; j < nw.N(); j++ {
		if j == 2 {
			continue
		}
		want := pc.Cost(dst, nw.Points()[j])
		if nw.C(2, j) != want || nw.C(j, 2) != want {
			t.Fatalf("cost (2,%d) = %g / %g, want %g", j, nw.C(2, j), nw.C(j, 2), want)
		}
	}
	if nw.Version() != 1 {
		t.Fatalf("version %d, want 1", nw.Version())
	}
	// Class-preserving validation.
	if _, err := nw.MoveStation(2, geom.Point{1}); err == nil {
		t.Fatal("dimension change accepted")
	}
	if _, err := nw.MoveStation(2, geom.Point{math.NaN(), 0}); err == nil {
		t.Fatal("NaN coordinate accepted")
	}
	if _, err := nw.MoveStation(9, dst); err == nil {
		t.Fatal("out-of-range station accepted")
	}
	if _, err := testSymmetric(4).MoveStation(1, geom.Point{0, 0}); err == nil {
		t.Fatal("MoveStation accepted on an abstract network")
	}
}

func TestDisableEnableRoundTrip(t *testing.T) {
	nw := testSymmetric(5)
	orig := nw.Snapshot()
	if _, err := nw.SetStationEnabled(3, false); err != nil {
		t.Fatal(err)
	}
	if nw.StationEnabled(3) {
		t.Fatal("station 3 still enabled")
	}
	for j := 0; j < nw.N(); j++ {
		if j != 3 && nw.C(3, j) != DisabledCost {
			t.Fatalf("cost (3,%d) = %g, want DisabledCost", j, nw.C(3, j))
		}
	}
	// Costs not incident to 3 are untouched.
	if nw.C(1, 2) != orig.C(1, 2) {
		t.Fatal("unrelated cost changed")
	}
	// Mutations touching a disabled station are rejected.
	if _, err := nw.SetCost(3, 1, 7); err == nil {
		t.Fatal("SetCost accepted on a disabled station")
	}
	if _, err := nw.SetStationEnabled(3, false); err == nil {
		t.Fatal("double disable accepted")
	}
	if _, err := nw.SetStationEnabled(0, false); err == nil {
		t.Fatal("source disable accepted")
	}
	if _, err := nw.SetStationEnabled(3, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nw.N(); i++ {
		for j := 0; j < nw.N(); j++ {
			if nw.C(i, j) != orig.C(i, j) {
				t.Fatalf("cost (%d,%d) = %g after re-enable, want %g", i, j, nw.C(i, j), orig.C(i, j))
			}
		}
	}
	if _, err := nw.SetStationEnabled(3, true); err == nil {
		t.Fatal("double enable accepted")
	}
	if nw.Version() != 2 {
		t.Fatalf("version %d, want 2 (disable + enable)", nw.Version())
	}
}

// TestOverlappingDisableWindowsRestoreExactly is the regression for the
// phantom-edge bug: disabling station 4 while 3 was already down used
// to save C(3,4) = DisabledCost as if it were a real cost, so enabling
// both (in either order) corrupted the matrix permanently — and
// enabling 3 while 4 stayed down restored a finite edge toward a dead
// station. Every enable/disable interleaving must land back on the
// original matrix once everyone is up, and a down station's edges must
// read DisabledCost throughout.
func TestOverlappingDisableWindowsRestoreExactly(t *testing.T) {
	for _, order := range [][]int{{3, 4}, {4, 3}} {
		nw := testSymmetric(6)
		orig := nw.Snapshot()
		for _, s := range []int{3, 4} {
			if _, err := nw.SetStationEnabled(s, false); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := nw.SetStationEnabled(order[0], true); err != nil {
			t.Fatal(err)
		}
		// One station still down: every edge incident to it stays at
		// the sentinel, including toward the freshly revived one.
		for j := 0; j < nw.N(); j++ {
			if j != order[1] && nw.C(order[1], j) != DisabledCost {
				t.Fatalf("order %v: edge (%d,%d) = %g while %d is down",
					order, order[1], j, nw.C(order[1], j), order[1])
			}
		}
		if _, err := nw.SetStationEnabled(order[1], true); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nw.N(); i++ {
			for j := 0; j < nw.N(); j++ {
				if nw.C(i, j) != orig.C(i, j) {
					t.Fatalf("order %v: cost (%d,%d) = %g after full recovery, want %g",
						order, i, j, nw.C(i, j), orig.C(i, j))
				}
			}
		}
	}
}

func TestMoveWhileNeighborDisabledPatchesSavedRow(t *testing.T) {
	// Moving station i while j is disabled must leave j's live row at
	// DisabledCost but update j's *saved* cost to the post-move value,
	// so re-enabling restores geometry-coherent costs.
	nw := testEuclidean(5, 2)
	if _, err := nw.SetStationEnabled(4, false); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.MoveStation(1, geom.Point{9, 9}); err != nil {
		t.Fatal(err)
	}
	if nw.C(1, 4) != DisabledCost {
		t.Fatalf("live cost to disabled neighbor %g, want DisabledCost", nw.C(1, 4))
	}
	if _, err := nw.SetStationEnabled(4, true); err != nil {
		t.Fatal(err)
	}
	want := nw.PowerModel().Cost(nw.Points()[1], nw.Points()[4])
	if nw.C(1, 4) != want || nw.C(4, 1) != want {
		t.Fatalf("re-enabled cost %g / %g, want %g (post-move geometry)", nw.C(1, 4), nw.C(4, 1), want)
	}
}

func TestSnapshotIsIndependent(t *testing.T) {
	nw := testSymmetric(4)
	if _, err := nw.SetStationEnabled(2, false); err != nil {
		t.Fatal(err)
	}
	snap := nw.Snapshot()
	if snap.Version() != nw.Version() || snap.StationEnabled(2) {
		t.Fatalf("snapshot state: version %d enabled(2)=%v", snap.Version(), snap.StationEnabled(2))
	}
	if _, err := nw.SetCost(0, 1, 99); err != nil {
		t.Fatal(err)
	}
	if snap.C(0, 1) == 99 {
		t.Fatal("mutation leaked into the snapshot")
	}
	if _, err := snap.SetStationEnabled(2, true); err != nil {
		t.Fatal(err)
	}
	if nw.StationEnabled(2) {
		t.Fatal("snapshot mutation leaked into the original")
	}
	// Euclidean snapshots clone the points.
	e := testEuclidean(4, 2)
	esnap := e.Snapshot()
	if _, err := e.MoveStation(1, geom.Point{0, 0}); err != nil {
		t.Fatal(err)
	}
	if esnap.Points()[1].Equal(e.Points()[1]) {
		t.Fatal("move leaked into the snapshot's points")
	}
}

// TestDisabledStationIsUnattractive pins the semantic point of the
// DisabledCost model: a disabled station stops being a useful relay
// (every route through it costs ≥ 1e9), so multicast heuristics route
// around it.
func TestDisabledStationIsUnattractive(t *testing.T) {
	nw := testSymmetric(6)
	if _, err := nw.SetStationEnabled(4, false); err != nil {
		t.Fatal(err)
	}
	R := []int{1, 2, 3, 5}
	tr, a := SteinerMulticast(nw, R)
	if !tr.Spans(R) {
		t.Fatal("Steiner tree does not span R")
	}
	if a.Total() >= DisabledCost {
		t.Fatalf("multicast routed through the disabled station (cost %g)", a.Total())
	}
}
