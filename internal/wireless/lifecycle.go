package wireless

import (
	"fmt"
	"math"

	"wmcs/internal/geom"
)

// This file is the network lifecycle surface (DESIGN.md §10): the
// paper's mechanisms are defined over a fixed network, but the ad-hoc
// deployments the model describes churn — stations move (mobility),
// radios degrade (battery drain), stations die and come back. The
// mutation ops below change a network *in place* while keeping every
// class invariant the mechanism registry relies on:
//
//   - the class never changes: a Euclidean network stays Euclidean with
//     the same dimension and power model (mutate it by moving stations,
//     which recomputes the affected cost row from the model), and an
//     abstract symmetric network stays abstract (mutate its costs
//     directly);
//   - the cost matrix stays symmetric with a zero diagonal;
//   - station count and source are immutable — "churn" in a fixed-id
//     model is enable/disable, not add/remove.
//
// Every successful mutation bumps a monotonic version counter, which is
// what the versioned query evaluator (internal/query) and the serving
// layer's generation-prefixed cache keys key off. A Network is NOT safe
// for concurrent mutation: callers that share one (the serving
// registry) must serialize mutations and hand read paths an immutable
// Snapshot.

// DisabledCost is the transmission cost installed on every edge of a
// disabled station: large enough that no multicast solution routes
// through a dead station or serves it under any sane utility, small
// enough that sums over n stations stay far from float64 overflow.
const DisabledCost = 1e9

// Version returns the mutation counter: 0 for a freshly built network,
// incremented by every successful mutation op. Snapshot preserves it.
func (nw *Network) Version() uint64 { return nw.version }

// StationEnabled reports whether station i is enabled (every station
// starts enabled; only SetStationEnabled changes it).
func (nw *Network) StationEnabled(i int) bool {
	return nw.savedRows == nil || nw.savedRows[i] == nil
}

// Snapshot returns an independent deep copy: later mutations of either
// network cannot be observed through the other. It is how the versioned
// evaluator freezes the state a query generation evaluates against.
func (nw *Network) Snapshot() *Network {
	c := &Network{
		cost:    nw.cost.Clone(),
		source:  nw.source,
		pc:      nw.pc,
		version: nw.version,
	}
	if nw.points != nil {
		c.points = make([]geom.Point, len(nw.points))
		for i, p := range nw.points {
			c.points[i] = p.Clone()
		}
	}
	if nw.savedRows != nil {
		c.savedRows = make(map[int][]float64, len(nw.savedRows))
		for i, row := range nw.savedRows {
			c.savedRows[i] = append([]float64(nil), row...)
		}
	}
	return c
}

// StateEqual reports whether two networks are in bitwise-identical
// evaluation state: same station count, source, class, coordinates,
// cost entries (exact float equality) and disabled-station bookkeeping.
// Version and pending delta are deliberately ignored — the point of the
// comparison is the versioned evaluator's fast path for update closures
// whose ops cancel out (a disable+enable round trip), where the old
// evaluator can be republished under the new version with zero rebuild.
// The power model is not compared: mutation ops never change it, and
// both operands of every call descend from the same snapshot chain.
func (nw *Network) StateEqual(o *Network) bool {
	n := nw.N()
	if o.N() != n || o.source != nw.source || o.IsEuclidean() != nw.IsEuclidean() {
		return false
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if nw.cost.At(i, j) != o.cost.At(i, j) {
				return false
			}
		}
	}
	if nw.points != nil {
		for i, p := range nw.points {
			if !p.Equal(o.points[i]) {
				return false
			}
		}
	}
	if len(nw.savedRows) != len(o.savedRows) {
		return false
	}
	for i, row := range nw.savedRows {
		orow := o.savedRows[i]
		if orow == nil || len(orow) != len(row) {
			return false
		}
		for j, w := range row {
			if orow[j] != w {
				return false
			}
		}
	}
	return true
}

// checkStation validates a station index for a mutation op.
func (nw *Network) checkStation(op string, i int) error {
	if i < 0 || i >= nw.N() {
		return fmt.Errorf("wireless: %s: station %d out of range [0, %d)", op, i, nw.N())
	}
	return nil
}

// checkEnabled rejects mutation ops touching a disabled station (its
// saved row would go stale; re-enable it first).
func (nw *Network) checkEnabled(op string, i int) error {
	if !nw.StationEnabled(i) {
		return fmt.Errorf("wireless: %s: station %d is disabled", op, i)
	}
	return nil
}

// SetCost assigns the symmetric transmission cost c(i, j) = c(j, i) = w
// and bumps the version, returning the op's Delta (rows {i, j}). It
// applies to abstract symmetric networks only: on a Euclidean network
// costs are a function of the geometry and mutating one directly would
// silently desynchronize the matrix from the coordinates the α = 1 and
// d = 1 mechanisms read — move stations instead (MoveStation). Writing
// the value already present is a true no-op: no version bump, empty
// delta, so the serving layer retires nothing.
func (nw *Network) SetCost(i, j int, w float64) (Delta, error) {
	if nw.IsEuclidean() {
		return Delta{}, fmt.Errorf("wireless: SetCost: network is Euclidean; costs follow the geometry (use MoveStation)")
	}
	if err := nw.checkStation("SetCost", i); err != nil {
		return Delta{}, err
	}
	if err := nw.checkStation("SetCost", j); err != nil {
		return Delta{}, err
	}
	if i == j {
		return Delta{}, fmt.Errorf("wireless: SetCost: diagonal (%d,%d) is fixed at 0", i, j)
	}
	if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return Delta{}, fmt.Errorf("wireless: SetCost(%d,%d): cost %g is not finite and nonnegative", i, j, w)
	}
	if err := nw.checkEnabled("SetCost", i); err != nil {
		return Delta{}, err
	}
	if err := nw.checkEnabled("SetCost", j); err != nil {
		return Delta{}, err
	}
	if nw.cost.At(i, j) == w && nw.cost.At(j, i) == w {
		return Delta{}, nil
	}
	nw.cost.Set(i, j, w)
	return nw.record(nw.rowsDelta([]int{i, j}, false, false)), nil
}

// MoveStation relocates station i to p and recomputes its cost row from
// the power model, keeping the matrix coherent with the coordinates. It
// applies to Euclidean networks only and requires p to match the
// network's dimension (a move cannot change the class). The returned
// Delta dirties every row (column i changes in each) but touches only
// station i — the refinement the carry-forward predicates exploit.
// Moving a station to its current coordinates is a true no-op: no
// version bump, empty delta.
func (nw *Network) MoveStation(i int, p geom.Point) (Delta, error) {
	if !nw.IsEuclidean() {
		return Delta{}, fmt.Errorf("wireless: MoveStation: network is abstract (no coordinates; use SetCost)")
	}
	if err := nw.checkStation("MoveStation", i); err != nil {
		return Delta{}, err
	}
	if p.Dim() != nw.Dim() {
		return Delta{}, fmt.Errorf("wireless: MoveStation: point has dimension %d, network is %d-dimensional", p.Dim(), nw.Dim())
	}
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Delta{}, fmt.Errorf("wireless: MoveStation: coordinate %g is not finite", v)
		}
	}
	if err := nw.checkEnabled("MoveStation", i); err != nil {
		return Delta{}, err
	}
	if nw.points[i].Equal(p) {
		return Delta{}, nil
	}
	nw.points[i] = p.Clone()
	for j := 0; j < nw.N(); j++ {
		if j == i {
			continue
		}
		if nw.StationEnabled(j) {
			nw.cost.Set(i, j, nw.pc.Cost(nw.points[i], nw.points[j]))
		} else {
			// The disabled neighbor's row keeps DisabledCost; patch its
			// *saved* cost so re-enabling restores the post-move value.
			nw.savedRows[j][i] = nw.pc.Cost(nw.points[i], nw.points[j])
		}
	}
	return nw.record(nw.rowsDelta([]int{i}, true, false)), nil
}

// SetStationEnabled turns station i off (every incident cost becomes
// DisabledCost, so no solution routes through it and no sane utility
// buys it service) or back on (the pre-disable costs are restored; on a
// Euclidean network those track any moves made in the meantime).
// Toggling to the current state is an error — churn drivers replaying
// delta streams want double-disables surfaced, not absorbed. The source
// cannot be disabled: every multicast is rooted there.
func (nw *Network) SetStationEnabled(i int, enabled bool) (Delta, error) {
	if err := nw.checkStation("SetStationEnabled", i); err != nil {
		return Delta{}, err
	}
	if enabled {
		row := nw.savedRows[i]
		if row == nil {
			return Delta{}, fmt.Errorf("wireless: SetStationEnabled: station %d is already enabled", i)
		}
		for j := 0; j < nw.N(); j++ {
			if j == i {
				continue
			}
			if nw.StationEnabled(j) {
				nw.cost.Set(i, j, row[j])
			} else {
				// The neighbor is still down: its edges stay at
				// DisabledCost, and its own saved row already carries
				// the true cost for when it comes back.
				nw.cost.Set(i, j, DisabledCost)
			}
		}
		delete(nw.savedRows, i)
		return nw.record(nw.rowsDelta([]int{i}, true, true)), nil
	}
	if i == nw.source {
		return Delta{}, fmt.Errorf("wireless: SetStationEnabled: cannot disable the source station %d", i)
	}
	if !nw.StationEnabled(i) {
		return Delta{}, fmt.Errorf("wireless: SetStationEnabled: station %d is already disabled", i)
	}
	row := make([]float64, nw.N())
	for j := 0; j < nw.N(); j++ {
		if j == i {
			continue
		}
		if nw.StationEnabled(j) {
			row[j] = nw.cost.At(i, j)
		} else {
			// The live matrix holds DisabledCost toward a down
			// neighbor; the true cost lives in that neighbor's saved
			// row. Saving the sentinel here would resurrect a phantom
			// 1e9 edge when both stations come back (disable {3,4},
			// enable {3,4} used to corrupt C(3,4) permanently).
			row[j] = nw.savedRows[j][i]
		}
		nw.cost.Set(i, j, DisabledCost)
	}
	if nw.savedRows == nil {
		nw.savedRows = make(map[int][]float64)
	}
	nw.savedRows[i] = row
	return nw.record(nw.rowsDelta([]int{i}, true, true)), nil
}
