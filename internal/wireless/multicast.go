package wireless

import (
	"wmcs/internal/graph"
	"wmcs/internal/mst"
)

// SPTMulticast builds a multicast tree from the shortest-path tree of the
// cost graph pruned to the receivers — the Penna–Ventre [43] universal
// choice specialized to one receiver set. It is the cheapest-per-path
// baseline: good when receivers are scattered, weak when relaying could
// share power.
func SPTMulticast(nw *Network, R []int) (Tree, Assignment) {
	n := nw.N()
	dist := make([]float64, n)
	parent := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = 1e308
		parent[i] = -1
	}
	dist[nw.Source()] = 0
	for it := 0; it < n; it++ {
		u, best := -1, 1e308
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for v := 0; v < n; v++ {
			if !done[v] {
				if nd := best + nw.C(u, v); nd < dist[v] {
					dist[v] = nd
					parent[v] = u
				}
			}
		}
	}
	t := NewTree(n, nw.Source())
	copy(t.Parent, parent)
	t.Parent[nw.Source()] = -1
	t = PruneTree(t, R)
	return t, nw.AssignmentForTree(t)
}

// BIPMulticast runs the BIP broadcast heuristic and prunes the resulting
// tree to the receivers (the "pruned BIP" multicast baseline of
// Wieselthier et al. [50]).
func BIPMulticast(nw *Network, R []int) (Tree, Assignment) {
	t, _ := BIPBroadcast(nw)
	t = PruneTree(t, R)
	return t, nw.AssignmentForTree(t)
}

// MSTMulticast prunes the MST broadcast tree to the receivers, the
// multicast analogue of the MST heuristic.
func MSTMulticast(nw *Network, R []int) (Tree, Assignment) {
	edges := mst.PrimMatrix(nw.CostMatrix(), nw.Source())
	t := TreeFromUndirectedEdges(nw.N(), edges, nw.Source())
	t = PruneTree(t, R)
	return t, nw.AssignmentForTree(t)
}

// MulticastHeuristics names the multicast tree builders compared by
// experiment E12.
var MulticastHeuristics = []struct {
	Name  string
	Build func(nw *Network, R []int) (Tree, Assignment)
}{
	{Name: "steiner-kmb", Build: SteinerMulticast},
	{Name: "mst-pruned", Build: MSTMulticast},
	{Name: "bip-pruned", Build: BIPMulticast},
	{Name: "spt-pruned", Build: SPTMulticast},
}

// ArcsOf lists the directed edges of a multicast tree (parent → child),
// useful for rendering and debugging.
func ArcsOf(t Tree) []graph.Edge {
	var arcs []graph.Edge
	for v, p := range t.Parent {
		if p >= 0 {
			arcs = append(arcs, graph.Edge{From: p, To: v})
		}
	}
	return arcs
}
