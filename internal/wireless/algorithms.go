package wireless

import (
	"fmt"
	"math"
	"sort"

	"wmcs/internal/graph"
	"wmcs/internal/mst"
	"wmcs/internal/steiner"
)

// MSTBroadcast implements the MST heuristic of Wieselthier et al. [50]:
// compute a minimum spanning tree of the cost graph, orient it away from
// the source, and set each station's power to its maximum child edge.
// For Euclidean instances its cost is at most (3^d − 1)·OPT (Lemma 3.4 /
// [21]), and at most 6·OPT for d = 2 [1].
func MSTBroadcast(nw *Network) (Tree, Assignment) {
	edges := mst.PrimMatrix(nw.CostMatrix(), nw.Source())
	t := TreeFromUndirectedEdges(nw.N(), edges, nw.Source())
	return t, nw.AssignmentForTree(t)
}

// BIPBroadcast implements the Broadcast Incremental Power heuristic of
// Wieselthier et al. [50]: greedily add the station whose reachability
// costs the least *additional* power at some already-covered station.
func BIPBroadcast(nw *Network) (Tree, Assignment) {
	n := nw.N()
	t := NewTree(n, nw.Source())
	a := make(Assignment, n)
	in := make([]bool, n)
	in[nw.Source()] = true
	for added := 1; added < n; added++ {
		bestU, bestV, bestInc := -1, -1, math.Inf(1)
		for u := 0; u < n; u++ {
			if !in[u] {
				continue
			}
			for v := 0; v < n; v++ {
				if in[v] {
					continue
				}
				if inc := nw.C(u, v) - a[u]; inc < bestInc {
					bestU, bestV, bestInc = u, v, inc
				}
			}
		}
		if bestU < 0 {
			break
		}
		if bestInc > 0 {
			a[bestU] = nw.C(bestU, bestV)
		}
		in[bestV] = true
		t.Parent[bestV] = bestU
	}
	return t, a
}

// SteinerMulticast computes a multicast tree for receivers R via the
// Kou–Markowsky–Berman 2-approximate Steiner tree on the cost graph, then
// applies the Steiner heuristic (§3.2): orient the tree downward from the
// source and give each station the power of its costliest child edge. The
// resulting assignment costs at most the Steiner tree's weight.
func SteinerMulticast(nw *Network, R []int) (Tree, Assignment) {
	terms := append([]int{nw.Source()}, R...)
	st := steiner.KMB(nw.CompleteGraph(), terms)
	t := TreeFromUndirectedEdges(nw.N(), st.Edges, nw.Source())
	t = PruneTree(t, R)
	return t, nw.AssignmentForTree(t)
}

// MaxExactStations bounds the instance size accepted by ExactMEMT; the
// state space is 2^n.
const MaxExactStations = 20

// ExactMEMT computes a minimum-energy multicast assignment exactly by
// running Dijkstra over subsets of covered stations: a state is the set of
// stations already reached, and a transition raises one covered station's
// power to one of its distinct edge costs, paying that power. Every
// optimal assignment decomposes into such a transition sequence (ordering
// the transmitters of its multicast tree in BFS order), and conversely any
// sequence induces a feasible assignment of no larger total power, so the
// minimum over sequences is exactly C*(R).
//
// Panics if n > MaxExactStations.
func ExactMEMT(nw *Network, R []int) (float64, Assignment) {
	n := nw.N()
	if n > MaxExactStations {
		panic(fmt.Sprintf("wireless: ExactMEMT limited to %d stations, got %d", MaxExactStations, n))
	}
	target := 0
	for _, r := range R {
		target |= 1 << r
	}
	target |= 1 << nw.Source()
	if target == 1<<nw.Source() {
		return 0, make(Assignment, n)
	}
	// Per-station sorted power levels and cumulative coverage masks.
	type level struct {
		power float64
		cover int
	}
	levels := make([][]level, n)
	for i := 0; i < n; i++ {
		idx := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				idx = append(idx, j)
			}
		}
		sort.Slice(idx, func(a, b int) bool { return nw.C(i, idx[a]) < nw.C(i, idx[b]) })
		mask := 0
		var ls []level
		for _, j := range idx {
			mask |= 1 << j
			p := nw.C(i, j)
			if len(ls) > 0 && ls[len(ls)-1].power == p {
				ls[len(ls)-1].cover = mask
			} else {
				ls = append(ls, level{power: p, cover: mask})
			}
		}
		levels[i] = ls
	}
	size := 1 << n
	dist := make([]float64, size)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	type pred struct {
		state, station, lvl int
	}
	preds := make([]pred, size)
	start := 1 << nw.Source()
	dist[start] = 0
	h := graph.NewIndexHeap(size)
	h.Push(start, 0)
	visited := make([]bool, size)
	goal := -1
	for h.Len() > 0 {
		s, d := h.Pop()
		if visited[s] {
			continue
		}
		visited[s] = true
		if s&target == target {
			goal = s
			break
		}
		for i := 0; i < n; i++ {
			if s&(1<<i) == 0 {
				continue
			}
			for li, lv := range levels[i] {
				ns := s | lv.cover
				if ns == s {
					continue
				}
				if nd := d + lv.power; nd < dist[ns] {
					dist[ns] = nd
					preds[ns] = pred{state: s, station: i, lvl: li}
					h.PushOrDecrease(ns, nd)
				}
			}
		}
	}
	if goal < 0 {
		return math.Inf(1), nil
	}
	a := make(Assignment, n)
	for s := goal; s != start; s = preds[s].state {
		p := preds[s]
		if pw := levels[p.station][p.lvl].power; pw > a[p.station] {
			a[p.station] = pw
		}
	}
	return dist[goal], a
}

// Alpha1Optimal returns an optimal multicast assignment for Euclidean
// networks with α = 1 (Lemma 3.1): the source transmits directly to the
// farthest receiver; relaying can never help because distances obey the
// triangle inequality.
func Alpha1Optimal(nw *Network, R []int) (float64, Assignment) {
	a := make(Assignment, nw.N())
	var p float64
	for _, r := range R {
		if c := nw.C(nw.Source(), r); c > p {
			p = c
		}
	}
	a[nw.Source()] = p
	return p, a
}

// LineOptimal returns an optimal multicast assignment for 1-dimensional
// Euclidean networks with any α ≥ 1, by Dijkstra over *interval states*:
// in one dimension a transmitter's coverage disk is an interval, so the
// set of reached stations is always an interval containing the source; a
// transition raises one reached station's power to one of its edge costs
// and extends the interval accordingly. This is exact (cross-validated
// against ExactMEMT) and runs in polynomial time, confirming the
// polynomial solvability claim of Lemma 3.1 for d = 1.
//
// Note: the constructive argument printed in Lemma 3.1 (fix the source
// power, then relay outward with consecutive-neighbor hops) is *not*
// always optimal — a relay on one side of the source can cover receivers
// on the other side with the same disk, which the chain canonical form
// pays for twice. LineChainCanonical implements the paper's construction
// so experiments can measure the gap; see EXPERIMENTS.md.
func LineOptimal(nw *Network, R []int) (float64, Assignment) {
	if nw.Dim() != 1 {
		panic("wireless: LineOptimal requires a 1-dimensional network")
	}
	n := nw.N()
	if len(R) == 0 {
		return 0, make(Assignment, n)
	}
	order := nw.SortByCoordinate()
	rank := make([]int, n)
	for r, v := range order {
		rank[v] = r
	}
	coord := make([]float64, n)
	for r, v := range order {
		coord[r] = nw.Points()[v][0]
	}
	k := rank[nw.Source()]
	fR, lR := k, k
	for _, r := range R {
		if rank[r] < fR {
			fR = rank[r]
		}
		if rank[r] > lR {
			lR = rank[r]
		}
	}
	pc := nw.PowerModel()

	// Interval state [i, j] encoded as i*n + j.
	enc := func(i, j int) int { return i*n + j }
	dist := make([]float64, n*n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	type pred struct {
		state, station int
		power          float64
	}
	preds := make([]pred, n*n)
	start := enc(k, k)
	dist[start] = 0
	h := graph.NewIndexHeap(n * n)
	h.Push(start, 0)
	visited := make([]bool, n*n)
	goal := -1
	for h.Len() > 0 {
		s, d := h.Pop()
		if visited[s] {
			continue
		}
		visited[s] = true
		i, j := s/n, s%n
		if i <= fR && j >= lR {
			goal = s
			break
		}
		for t := i; t <= j; t++ {
			st := order[t]
			for u := 0; u < n; u++ {
				if u >= i && u <= j {
					continue
				}
				p := nw.C(st, order[u])
				rg := pc.Range(p) + costEps
				// Coverage interval of station st's disk, by binary search
				// over the sorted coordinates.
				lo := sort.SearchFloat64s(coord, coord[t]-rg)
				hi := sort.SearchFloat64s(coord, coord[t]+rg) - 1
				ni, nj := i, j
				if lo < ni {
					ni = lo
				}
				if hi > nj {
					nj = hi
				}
				ns := enc(ni, nj)
				if ns == s {
					continue
				}
				if nd := d + p; nd < dist[ns] {
					dist[ns] = nd
					preds[ns] = pred{state: s, station: st, power: p}
					h.PushOrDecrease(ns, nd)
				}
			}
		}
	}
	if goal < 0 {
		return math.Inf(1), nil
	}
	a := make(Assignment, n)
	for s := goal; s != start; s = preds[s].state {
		p := preds[s]
		if p.power > a[p.station] {
			a[p.station] = p.power
		}
	}
	return dist[goal], a
}

// LineChainCanonical implements the Lemma 3.1 construction for d = 1
// verbatim: try each of the ≤ n−1 powers for the source; for each, reach
// the rest of the target interval by consecutive-neighbor relay chains.
// It is an upper bound on C*(R) that the paper claims is optimal; the E8
// experiment measures the (small, occasionally nonzero) gap to LineOptimal.
func LineChainCanonical(nw *Network, R []int) (float64, Assignment) {
	if nw.Dim() != 1 {
		panic("wireless: LineChainCanonical requires a 1-dimensional network")
	}
	n := nw.N()
	if len(R) == 0 {
		return 0, make(Assignment, n)
	}
	order := nw.SortByCoordinate()
	rank := make([]int, n)
	for r, v := range order {
		rank[v] = r
	}
	k := rank[nw.Source()]
	fR, lR := k, k
	for _, r := range R {
		if rank[r] < fR {
			fR = rank[r]
		}
		if rank[r] > lR {
			lR = rank[r]
		}
	}
	// gap[r] = cost between consecutive stations at ranks r and r+1;
	// prefix sums for O(1) chain costs.
	gap := make([]float64, n-1)
	pre := make([]float64, n)
	for r := 0; r+1 < n; r++ {
		gap[r] = nw.C(order[r], order[r+1])
		pre[r+1] = pre[r] + gap[r]
	}
	chain := func(lo, hi int) float64 { return pre[hi] - pre[lo] } // Σ gap[lo..hi−1]

	best := math.Inf(1)
	bestJ := -1
	for j := 0; j < n; j++ {
		if order[j] == nw.Source() {
			continue
		}
		p := nw.C(nw.Source(), order[j])
		// Direct coverage interval [a, b] around the source.
		a := k
		for a > 0 && nw.C(nw.Source(), order[a-1]) <= p+costEps {
			a--
		}
		b := k
		for b+1 < n && nw.C(nw.Source(), order[b+1]) <= p+costEps {
			b++
		}
		if fR < a && a == k {
			continue // cannot start a leftward chain
		}
		if lR > b && b == k {
			continue // cannot start a rightward chain
		}
		total := p
		if fR < a {
			total += chain(fR, a)
		}
		if lR > b {
			total += chain(b, lR)
		}
		if total < best {
			best = total
			bestJ = j
		}
	}
	if bestJ < 0 {
		return math.Inf(1), nil
	}
	// Rebuild the winning assignment.
	a := make(Assignment, n)
	p := nw.C(nw.Source(), order[bestJ])
	a[nw.Source()] = p
	lo := k
	for lo > 0 && nw.C(nw.Source(), order[lo-1]) <= p+costEps {
		lo--
	}
	hi := k
	for hi+1 < n && nw.C(nw.Source(), order[hi+1]) <= p+costEps {
		hi++
	}
	for r := lo - 1; r >= fR; r-- { // station at rank r+1 relays to r
		if gap[r] > a[order[r+1]] {
			a[order[r+1]] = gap[r]
		}
	}
	for r := hi; r < lR; r++ { // station at rank r relays to r+1
		if gap[r] > a[order[r]] {
			a[order[r]] = gap[r]
		}
	}
	return best, a
}

// OptimalMulticastCost returns C*(R) using the best available exact
// method: the closed forms for α = 1 and d = 1 on Euclidean networks, or
// ExactMEMT for small abstract networks. It is the reference oracle the
// experiments measure β-BB ratios against.
func OptimalMulticastCost(nw *Network, R []int) float64 {
	if len(R) == 0 {
		return 0
	}
	if nw.IsEuclidean() && nw.PowerModel().Alpha == 1 {
		c, _ := Alpha1Optimal(nw, R)
		return c
	}
	if nw.Dim() == 1 {
		c, _ := LineOptimal(nw, R)
		return c
	}
	c, _ := ExactMEMT(nw, R)
	return c
}

// LowerBoundMulticastCost returns a lower bound on C*(R) usable at any n:
// the maximum over receivers of the cheapest single relay hop into that
// receiver is necessary, and so is the cost of the source's cheapest
// outgoing edge; the bound is their maximum combined with a shortest-path
// bound (the cheapest c-weighted path from s to the farthest receiver,
// which no assignment can undercut because each hop must be paid by its
// transmitter).
func LowerBoundMulticastCost(nw *Network, R []int) float64 {
	if len(R) == 0 {
		return 0
	}
	tree := dijkstraFromSource(nw)
	var bound float64
	for _, r := range R {
		if tree[r] > bound {
			bound = tree[r]
		}
	}
	return bound
}

// dijkstraFromSource returns single-source shortest path distances over
// the complete cost graph.
func dijkstraFromSource(nw *Network) []float64 {
	n := nw.N()
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[nw.Source()] = 0
	for it := 0; it < n; it++ {
		u, best := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for v := 0; v < n; v++ {
			if !done[v] {
				if nd := best + nw.C(u, v); nd < dist[v] {
					dist[v] = nd
				}
			}
		}
	}
	return dist
}
