package wireless

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/geom"
	"wmcs/internal/graph"
)

func lineNet(alpha float64, src float64, xs ...float64) *Network {
	pts := geom.Line(xs...)
	srcIdx := -1
	for i, p := range pts {
		if p[0] == src {
			srcIdx = i
		}
	}
	return NewEuclidean(pts, geom.NewPowerCost(alpha), srcIdx)
}

func randomNet(rng *rand.Rand, n, d int, alpha float64) *Network {
	pts := geom.RandomCloud(rng, n, d, 10)
	return NewEuclidean(pts, geom.NewPowerCost(alpha), 0)
}

func TestNetworkBasics(t *testing.T) {
	nw := lineNet(2, 0, 0, 1, 3)
	if nw.N() != 3 || nw.Source() != 0 {
		t.Fatalf("N=%d src=%d", nw.N(), nw.Source())
	}
	if nw.C(0, 2) != 9 || nw.C(2, 0) != 9 {
		t.Errorf("C(0,2) = %g want 9", nw.C(0, 2))
	}
	if !nw.IsEuclidean() || nw.Dim() != 1 {
		t.Error("Euclidean metadata wrong")
	}
	if got := nw.AllReceivers(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("AllReceivers = %v", got)
	}
	if g := nw.CompleteGraph(); g.M() != 3 {
		t.Errorf("complete graph M = %d", g.M())
	}
}

func TestNewSymmetricValidatesSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSymmetric(graph.NewMatrix(3), 5)
}

func TestReachSetAndFeasible(t *testing.T) {
	nw := lineNet(2, 0, 0, 1, 2, 5)
	// Power 1 at source reaches station 1 only; power 1 there reaches 2.
	a := Assignment{1, 1, 0, 0}
	reach := nw.ReachSet(a)
	if !reach[1] || !reach[2] || reach[3] {
		t.Errorf("reach = %v", reach)
	}
	if !nw.Feasible(a, []int{1, 2}) {
		t.Error("should be feasible for {1,2}")
	}
	if nw.Feasible(a, []int{3}) {
		t.Error("station 3 is out of range")
	}
	if got := a.Total(); got != 2 {
		t.Errorf("Total = %g", got)
	}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Error("Clone aliases")
	}
}

func TestTreeOperations(t *testing.T) {
	tr := NewTree(5, 0)
	tr.Parent[1] = 0
	tr.Parent[2] = 1
	tr.Parent[3] = 1
	if !tr.InTree(3) || tr.InTree(4) {
		t.Error("InTree wrong")
	}
	ch := tr.Children()
	if len(ch[1]) != 2 || ch[1][0] != 2 {
		t.Errorf("Children = %v", ch)
	}
	if got := tr.Members(); len(got) != 4 {
		t.Errorf("Members = %v", got)
	}
	if !tr.Spans([]int{2, 3}) || tr.Spans([]int{4}) {
		t.Error("Spans wrong")
	}
	pruned := PruneTree(tr, []int{2})
	if pruned.InTree(3) || !pruned.InTree(2) || !pruned.InTree(1) {
		t.Errorf("PruneTree parent = %v", pruned.Parent)
	}
}

func TestTreeSpansDetectsCycle(t *testing.T) {
	tr := NewTree(3, 0)
	tr.Parent[1] = 2
	tr.Parent[2] = 1 // cycle 1↔2 detached from root
	if tr.Spans([]int{1}) {
		t.Error("cycle must not span")
	}
}

func TestAssignmentForTree(t *testing.T) {
	nw := lineNet(1, 0, 0, 1, 2, 3)
	tr := NewTree(4, 0)
	tr.Parent[1] = 0
	tr.Parent[2] = 0 // source reaches 1 and 2: power = max(1, 2) = 2
	tr.Parent[3] = 2 // station 2 reaches 3: power 1
	a := nw.AssignmentForTree(tr)
	if a[0] != 2 || a[2] != 1 || a[1] != 0 {
		t.Errorf("assignment = %v", a)
	}
	if !nw.Feasible(a, []int{1, 2, 3}) {
		t.Error("tree assignment must be feasible")
	}
}

func TestTreeFromUndirectedEdges(t *testing.T) {
	edges := []graph.Edge{{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 1}}
	tr := TreeFromUndirectedEdges(4, edges, 2)
	if tr.Parent[1] != 2 || tr.Parent[0] != 1 || tr.InTree(3) {
		t.Errorf("parents = %v", tr.Parent)
	}
}

func TestMSTBroadcastFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		nw := randomNet(rng, 8, 2, 2)
		tr, a := MSTBroadcast(nw)
		if !tr.Spans(nw.AllReceivers()) {
			t.Fatalf("trial %d: MST tree does not span", trial)
		}
		if !nw.Feasible(a, nw.AllReceivers()) {
			t.Fatalf("trial %d: MST assignment infeasible", trial)
		}
		// Tree power ≤ MST weight (max child edge ≤ sum of child edges).
		var mstW float64
		for v, p := range tr.Parent {
			if p >= 0 {
				mstW += nw.C(p, v)
			}
		}
		if a.Total() > mstW+1e-9 {
			t.Fatalf("trial %d: power %g exceeds MST weight %g", trial, a.Total(), mstW)
		}
	}
}

func TestBIPBroadcastFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		nw := randomNet(rng, 9, 2, 2)
		tr, a := BIPBroadcast(nw)
		if !tr.Spans(nw.AllReceivers()) || !nw.Feasible(a, nw.AllReceivers()) {
			t.Fatalf("trial %d: BIP infeasible", trial)
		}
	}
}

func TestSteinerMulticastFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		nw := randomNet(rng, 10, 2, 2)
		R := []int{1, 4, 7}
		tr, a := SteinerMulticast(nw, R)
		if !tr.Spans(R) || !nw.Feasible(a, R) {
			t.Fatalf("trial %d: Steiner multicast infeasible", trial)
		}
		// Pruning must not keep receiver-free branches: every leaf is a
		// receiver or the root.
		ch := tr.Children()
		isR := map[int]bool{}
		for _, r := range R {
			isR[r] = true
		}
		for _, v := range tr.Members() {
			if len(ch[v]) == 0 && v != tr.Root && !isR[v] {
				t.Fatalf("trial %d: non-receiver leaf %d survived pruning", trial, v)
			}
		}
	}
}

// bruteMEMT enumerates all power-level combinations (tiny n only).
func bruteMEMT(nw *Network, R []int) float64 {
	n := nw.N()
	levels := make([][]float64, n)
	for i := 0; i < n; i++ {
		ls := []float64{0}
		for j := 0; j < n; j++ {
			if j != i {
				ls = append(ls, nw.C(i, j))
			}
		}
		levels[i] = ls
	}
	best := math.Inf(1)
	var rec func(i int, a Assignment, cost float64)
	rec = func(i int, a Assignment, cost float64) {
		if cost >= best {
			return
		}
		if i == n {
			if nw.Feasible(a, R) {
				best = cost
			}
			return
		}
		for _, p := range levels[i] {
			a[i] = p
			rec(i+1, a, cost+p)
		}
		a[i] = 0
	}
	rec(0, make(Assignment, n), 0)
	return best
}

func TestExactMEMTMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		nw := randomNet(rng, 5, 2, 1+rng.Float64()*3)
		var R []int
		for _, v := range nw.AllReceivers() {
			if rng.Float64() < 0.7 {
				R = append(R, v)
			}
		}
		if len(R) == 0 {
			R = []int{1}
		}
		want := bruteMEMT(nw, R)
		got, a := ExactMEMT(nw, R)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: exact=%g brute=%g", trial, got, want)
		}
		if !nw.Feasible(a, R) {
			t.Fatalf("trial %d: exact assignment infeasible", trial)
		}
		if math.Abs(a.Total()-got) > 1e-9 {
			t.Fatalf("trial %d: assignment total %g != reported %g", trial, a.Total(), got)
		}
	}
}

func TestExactMEMTEmptyReceivers(t *testing.T) {
	nw := lineNet(2, 0, 0, 1)
	c, a := ExactMEMT(nw, nil)
	if c != 0 || a.Total() != 0 {
		t.Errorf("empty multicast should cost 0, got %g", c)
	}
}

func TestExactMEMTGuardsSize(t *testing.T) {
	pts := geom.RandomCloud(rand.New(rand.NewSource(1)), MaxExactStations+1, 2, 5)
	nw := NewEuclidean(pts, geom.NewPowerCost(2), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized instance")
		}
	}()
	ExactMEMT(nw, nw.AllReceivers())
}

func TestHeuristicsNeverBeatExact(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		nw := randomNet(rng, 8, 2, 2)
		R := nw.AllReceivers()
		opt, _ := ExactMEMT(nw, R)
		_, am := MSTBroadcast(nw)
		_, ab := BIPBroadcast(nw)
		_, as := SteinerMulticast(nw, R)
		for name, a := range map[string]Assignment{"mst": am, "bip": ab, "steiner": as} {
			if a.Total() < opt-1e-9 {
				t.Fatalf("trial %d: %s total %g beats optimum %g", trial, name, a.Total(), opt)
			}
		}
	}
}

func TestAlpha1OptimalMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 12; trial++ {
		nw := randomNet(rng, 7, 2, 1)
		R := []int{1, 3, 5}
		want, _ := ExactMEMT(nw, R)
		got, a := Alpha1Optimal(nw, R)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: alpha1=%g exact=%g", trial, got, want)
		}
		if !nw.Feasible(a, R) {
			t.Fatalf("trial %d: infeasible", trial)
		}
	}
}

func TestLineOptimalMatchesExactRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(6)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		pts := geom.Line(xs...)
		src := rng.Intn(n)
		alpha := 1 + rng.Float64()*3
		nw := NewEuclidean(pts, geom.NewPowerCost(alpha), src)
		var R []int
		for _, v := range nw.AllReceivers() {
			if rng.Float64() < 0.6 {
				R = append(R, v)
			}
		}
		if len(R) == 0 {
			continue
		}
		want, _ := ExactMEMT(nw, R)
		got, a := LineOptimal(nw, R)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: line=%g exact=%g (src=%d xs=%v R=%v α=%g)",
				trial, got, want, src, xs, R, alpha)
		}
		if !nw.Feasible(a, R) || math.Abs(a.Total()-got) > 1e-9 {
			t.Fatalf("trial %d: assignment inconsistent", trial)
		}
		// The paper's chain construction is a feasible upper bound.
		chain, ca := LineChainCanonical(nw, R)
		if chain < got-1e-9 {
			t.Fatalf("trial %d: canonical chain %g beats optimum %g", trial, chain, got)
		}
		if !nw.Feasible(ca, R) || math.Abs(ca.Total()-chain) > 1e-9 {
			t.Fatalf("trial %d: chain assignment inconsistent", trial)
		}
	}
}

// The instance on which the Lemma 3.1 chain construction is strictly
// suboptimal: a relay left of the source covers the rightmost receiver
// with the same disk it uses to bridge a large left gap, so the canonical
// form (which makes the source pay for the right side again) loses.
func TestLineChainCanonicalCanBeSuboptimal(t *testing.T) {
	xs := []float64{0.436, 8.256, 2.739, 6.769, 2.950, 1.922, 2.126, 6.973, 2.791}
	pts := geom.Line(xs...)
	nw := NewEuclidean(pts, geom.PowerCost{Alpha: 3.0447505838318136, Kappa: 1}, 7)
	R := []int{1, 2, 5, 8}
	opt, _ := LineOptimal(nw, R)
	exact, _ := ExactMEMT(nw, R)
	if math.Abs(opt-exact) > 1e-9 {
		t.Fatalf("LineOptimal %g != ExactMEMT %g", opt, exact)
	}
	chain, _ := LineChainCanonical(nw, R)
	if chain <= opt+1e-9 {
		t.Fatalf("expected strict gap: chain=%g opt=%g", chain, opt)
	}
}

func TestLowerBoundMulticastCost(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 15; trial++ {
		nw := randomNet(rng, 8, 2, 2)
		R := []int{1, 3, 5, 7}
		opt, _ := ExactMEMT(nw, R)
		lb := LowerBoundMulticastCost(nw, R)
		if lb > opt+1e-9 {
			t.Fatalf("trial %d: lower bound %g exceeds optimum %g", trial, lb, opt)
		}
		if lb <= 0 {
			t.Fatalf("trial %d: lower bound should be positive", trial)
		}
	}
	if LowerBoundMulticastCost(randomNet(rng, 5, 2, 2), nil) != 0 {
		t.Error("empty R should bound 0")
	}
}

func TestLineOptimalEmpty(t *testing.T) {
	nw := lineNet(2, 0, 0, 1, 2)
	c, a := LineOptimal(nw, nil)
	if c != 0 || a.Total() != 0 {
		t.Error("empty receivers should cost 0")
	}
}

func TestOptimalMulticastCostDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	// α = 1 path.
	nw := randomNet(rng, 6, 2, 1)
	R := []int{1, 2}
	want, _ := ExactMEMT(nw, R)
	if got := OptimalMulticastCost(nw, R); math.Abs(got-want) > 1e-9 {
		t.Errorf("alpha1 dispatch: %g vs %g", got, want)
	}
	// d = 1 path.
	nl := lineNet(2, 0, 0, 1, 2, 4)
	want, _ = ExactMEMT(nl, []int{3})
	if got := OptimalMulticastCost(nl, []int{3}); math.Abs(got-want) > 1e-9 {
		t.Errorf("line dispatch: %g vs %g", got, want)
	}
	// generic path.
	na := NewSymmetric(nl.CostMatrix(), 0)
	want, _ = ExactMEMT(na, []int{3})
	if got := OptimalMulticastCost(na, []int{3}); math.Abs(got-want) > 1e-9 {
		t.Errorf("generic dispatch: %g vs %g", got, want)
	}
	if OptimalMulticastCost(nw, nil) != 0 {
		t.Error("empty R should cost 0")
	}
}

func TestSortByCoordinate(t *testing.T) {
	nw := lineNet(1, 3, 3, 1, 2)
	order := nw.SortByCoordinate()
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("order = %v", order)
	}
	n2 := randomNet(rand.New(rand.NewSource(1)), 4, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("SortByCoordinate should panic on d=2")
		}
	}()
	n2.SortByCoordinate()
}
