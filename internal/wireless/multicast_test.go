package wireless

import (
	"math/rand"
	"testing"
)

func TestMulticastHeuristicsFeasibleAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 12; trial++ {
		nw := randomNet(rng, 9, 2, 1+rng.Float64()*3)
		var R []int
		for _, v := range nw.AllReceivers() {
			if rng.Float64() < 0.6 {
				R = append(R, v)
			}
		}
		if len(R) == 0 {
			R = []int{1}
		}
		opt, _ := ExactMEMT(nw, R)
		for _, h := range MulticastHeuristics {
			tr, a := h.Build(nw, R)
			if !tr.Spans(R) {
				t.Fatalf("trial %d: %s tree does not span %v", trial, h.Name, R)
			}
			if !nw.Feasible(a, R) {
				t.Fatalf("trial %d: %s assignment infeasible", trial, h.Name)
			}
			if a.Total() < opt-1e-9 {
				t.Fatalf("trial %d: %s total %g beats optimum %g", trial, h.Name, a.Total(), opt)
			}
			// Every leaf of the pruned tree must be a receiver.
			ch := tr.Children()
			isR := map[int]bool{}
			for _, r := range R {
				isR[r] = true
			}
			for _, v := range tr.Members() {
				if v != tr.Root && len(ch[v]) == 0 && !isR[v] {
					t.Fatalf("trial %d: %s kept non-receiver leaf %d", trial, h.Name, v)
				}
			}
		}
	}
}

func TestSPTMulticastSingleReceiverIsShortestPath(t *testing.T) {
	// On a line with α = 2, the shortest c-path to the farthest station
	// hops through every intermediate station.
	nw := lineNet(2, 0, 0, 1, 2, 3)
	_, a := SPTMulticast(nw, []int{3})
	if a.Total() != 3 { // three unit hops, each cost 1
		t.Errorf("SPT cost = %g want 3", a.Total())
	}
	opt, _ := ExactMEMT(nw, []int{3})
	if a.Total() != opt {
		t.Errorf("SPT on a chain should be optimal: %g vs %g", a.Total(), opt)
	}
}

func TestArcsOf(t *testing.T) {
	tr := NewTree(4, 0)
	tr.Parent[1] = 0
	tr.Parent[2] = 1
	arcs := ArcsOf(tr)
	if len(arcs) != 2 || arcs[0].From != 0 || arcs[1].To != 2 {
		t.Errorf("arcs = %v", arcs)
	}
}
