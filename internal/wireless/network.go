// Package wireless implements the paper's wireless network model: a
// complete symmetric cost graph (S, c) over radio stations, power
// assignments, the transmission digraphs they induce, multicast trees and
// their induced power assignments, plus broadcast/multicast energy
// algorithms — the MST heuristic and BIP of Wieselthier et al. [50], a
// KMB-Steiner multicast heuristic (§3.2's "Steiner heuristic"), an exact
// minimum-energy multicast solver for small n, and the polynomial exact
// algorithms for the Euclidean cases α = 1 and d = 1 (Lemma 3.1).
package wireless

import (
	"fmt"
	"sort"

	"wmcs/internal/geom"
	"wmcs/internal/graph"
)

// Network is a symmetric wireless network: stations 0..N()−1, a source
// station, and a symmetric transmission cost c(i, j) ≥ 0. Euclidean
// networks additionally carry station coordinates and the power-cost
// model, enabling the specialized algorithms of §3.
type Network struct {
	cost   *graph.Matrix
	source int
	points []geom.Point   // nil for abstract symmetric networks
	pc     geom.PowerCost // valid only when points != nil

	// Lifecycle state (lifecycle.go): the mutation counter every
	// successful in-place op bumps, and the pre-disable cost rows of
	// currently disabled stations (nil while every station is enabled).
	version   uint64
	savedRows map[int][]float64
	// pending accumulates the Deltas of mutation ops since the last
	// TakeDelta (delta.go). Snapshot deliberately does not copy it: a
	// fresh copy starts with a clean accumulator.
	pending Delta
}

// NewSymmetric wraps a symmetric cost matrix as a network. The matrix is
// used directly (not copied).
func NewSymmetric(m *graph.Matrix, source int) *Network {
	if source < 0 || source >= m.N() {
		panic(fmt.Sprintf("wireless: source %d out of range", source))
	}
	return &Network{cost: m, source: source}
}

// NewEuclidean builds a network over the given points with cost
// c(i, j) = kappa·dist(i, j)^alpha.
func NewEuclidean(pts []geom.Point, pc geom.PowerCost, source int) *Network {
	nw := NewSymmetric(graph.MatrixFrom(len(pts), pc.CostMatrix(pts)), source)
	nw.points = pts
	nw.pc = pc
	return nw
}

// N returns the number of stations.
func (nw *Network) N() int { return nw.cost.N() }

// Source returns the source station index.
func (nw *Network) Source() int { return nw.source }

// C returns the transmission cost between stations i and j.
func (nw *Network) C(i, j int) float64 { return nw.cost.At(i, j) }

// CostMatrix returns the underlying cost matrix (shared, do not modify).
func (nw *Network) CostMatrix() *graph.Matrix { return nw.cost }

// IsEuclidean reports whether the network carries coordinates.
func (nw *Network) IsEuclidean() bool { return nw.points != nil }

// Points returns the station coordinates (nil for abstract networks).
func (nw *Network) Points() []geom.Point { return nw.points }

// PowerModel returns the Euclidean power-cost model; only meaningful when
// IsEuclidean.
func (nw *Network) PowerModel() geom.PowerCost { return nw.pc }

// Dim returns the Euclidean dimension, or 0 for abstract networks.
func (nw *Network) Dim() int {
	if nw.points == nil {
		return 0
	}
	return nw.points[0].Dim()
}

// CompleteGraph returns the complete undirected cost graph, used by the
// Steiner and moat machinery.
func (nw *Network) CompleteGraph() *graph.Graph { return nw.cost.Complete() }

// AllReceivers returns every station except the source, the default agent
// set of the mechanisms.
func (nw *Network) AllReceivers() []int {
	out := make([]int, 0, nw.N()-1)
	for i := 0; i < nw.N(); i++ {
		if i != nw.source {
			out = append(out, i)
		}
	}
	return out
}

// Assignment is a power assignment π: station → transmission power. Its
// cost is the total power.
type Assignment []float64

// Total returns the overall power consumption Σ π(x).
func (a Assignment) Total() float64 {
	var s float64
	for _, p := range a {
		s += p
	}
	return s
}

// Clone returns an independent copy.
func (a Assignment) Clone() Assignment {
	b := make(Assignment, len(a))
	copy(b, a)
	return b
}

// ReachSet returns the stations reachable from the source in the
// transmission digraph induced by a (edge i→j iff a[i] ≥ c(i, j)), via BFS
// over the implicit digraph in O(n²).
func (nw *Network) ReachSet(a Assignment) []bool {
	n := nw.N()
	reach := make([]bool, n)
	reach[nw.source] = true
	queue := []int{nw.source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if a[u] <= 0 {
			continue
		}
		for v := 0; v < n; v++ {
			if !reach[v] && nw.C(u, v) <= a[u]+costEps {
				reach[v] = true
				queue = append(queue, v)
			}
		}
	}
	return reach
}

// costEps absorbs floating-point noise when comparing powers to costs.
const costEps = 1e-9

// Feasible reports whether assignment a implements a multicast from the
// source to every station in R.
func (nw *Network) Feasible(a Assignment, R []int) bool {
	reach := nw.ReachSet(a)
	for _, r := range R {
		if !reach[r] {
			return false
		}
	}
	return true
}

// Tree is a directed multicast tree rooted at Root: Parent[v] is the
// predecessor of v, −1 for the root and for stations outside the tree.
type Tree struct {
	Root   int
	Parent []int
}

// NewTree returns a tree containing only the root.
func NewTree(n, root int) Tree {
	t := Tree{Root: root, Parent: make([]int, n)}
	for i := range t.Parent {
		t.Parent[i] = -1
	}
	return t
}

// InTree reports whether v belongs to the tree.
func (t Tree) InTree(v int) bool { return v == t.Root || t.Parent[v] >= 0 }

// Children returns the children lists of every station.
func (t Tree) Children() [][]int {
	ch := make([][]int, len(t.Parent))
	for v, p := range t.Parent {
		if p >= 0 {
			ch[p] = append(ch[p], v)
		}
	}
	return ch
}

// Members returns the stations in the tree, in increasing order.
func (t Tree) Members() []int {
	var out []int
	for v := range t.Parent {
		if t.InTree(v) {
			out = append(out, v)
		}
	}
	return out
}

// Spans reports whether the tree contains every station in R and is a
// well-formed arborescence (every non-root member reaches the root by
// parent pointers, acyclically).
func (t Tree) Spans(R []int) bool {
	n := len(t.Parent)
	for _, r := range R {
		if !t.InTree(r) {
			return false
		}
		// Walk to root with a step bound to detect cycles.
		v := r
		for steps := 0; v != t.Root; steps++ {
			if steps > n || v < 0 {
				return false
			}
			v = t.Parent[v]
		}
	}
	return true
}

// AssignmentForTree returns the power assignment implementing the tree:
// each station transmits at the maximum cost of an edge to one of its
// children ("Steiner heuristic" of §3.2).
func (nw *Network) AssignmentForTree(t Tree) Assignment {
	a := make(Assignment, nw.N())
	for v, p := range t.Parent {
		if p >= 0 && nw.C(p, v) > a[p] {
			a[p] = nw.C(p, v)
		}
	}
	return a
}

// TreeFromUndirectedEdges orients an undirected tree (edge list) away from
// root into a multicast Tree. Stations not connected to root stay outside.
func TreeFromUndirectedEdges(n int, edges []graph.Edge, root int) Tree {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	t := NewTree(n, root)
	seen := make([]bool, n)
	seen[root] = true
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				t.Parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	return t
}

// PruneTree removes branches containing no station in keep, returning the
// minimal subtree spanning keep ∪ {root}.
func PruneTree(t Tree, keep []int) Tree {
	n := len(t.Parent)
	need := make([]bool, n)
	need[t.Root] = true
	for _, v := range keep {
		if !t.InTree(v) {
			continue
		}
		for x := v; x != -1 && !need[x]; x = t.Parent[x] {
			need[x] = true
		}
	}
	out := NewTree(n, t.Root)
	for v := 0; v < n; v++ {
		if need[v] && v != t.Root {
			out.Parent[v] = t.Parent[v]
		}
	}
	return out
}

// SortByCoordinate returns station indices sorted by their 1-D coordinate.
// It panics unless the network is Euclidean with d = 1.
func (nw *Network) SortByCoordinate() []int {
	if nw.Dim() != 1 {
		panic("wireless: SortByCoordinate requires a 1-dimensional network")
	}
	idx := make([]int, nw.N())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return nw.points[idx[a]][0] < nw.points[idx[b]][0]
	})
	return idx
}
