package wireless

// Delta is the typed change record of a mutation-op sequence: which cost
// rows may differ from the pre-mutation state, which stations an op
// named directly, and whether the enabled node set changed. Consumers
// (the versioned evaluator's incremental rebuild and the serving layer's
// cache carry-forward, DESIGN.md §12) treat it as a sound
// over-approximation — an entry a Delta marks clean is *guaranteed*
// byte-unchanged; an entry it marks dirty merely may have changed.
//
// The contract has two layers, both preserved under Merge:
//
//   - row layer: cost entry c(a, b) may differ only if
//     DirtyRows[a] && DirtyRows[b] — the entry lies in both rows, so
//     either row being provably clean pins it;
//   - station layer: c(a, b) may additionally differ only if
//     Touched[a] || Touched[b] — every op changes only entries incident
//     to a station it names. This is what keeps a MoveStation delta
//     useful: all rows are dirty (column i changes in every row), but
//     only pairs incident to the moved station i can differ.
//
// Per op: SetCost(i, j) dirties rows {i, j} and touches {i, j} (the
// entry-exact case); MoveStation(i) and SetStationEnabled(i) dirty every
// row and touch {i}; SetStationEnabled additionally sets NodeSetChanged.
// A no-op (SetCost writing the present value, MoveStation to the current
// point) contributes an empty Delta and bumps nothing.
type Delta struct {
	// N is the station count the flag slices are indexed by (0 for an
	// empty delta).
	N int
	// DirtyRows[r] reports that cost row r may differ. nil means no row
	// is dirty.
	DirtyRows []bool
	// Touched[s] reports that an op named station s directly. nil means
	// no station was touched.
	Touched []bool
	// NodeSetChanged reports that a station was enabled or disabled.
	NodeSetChanged bool
	// Ops counts the non-no-op mutations merged in — exactly the version
	// bumps the sequence performed.
	Ops int
}

// Empty reports whether the delta records no effective mutation.
func (d Delta) Empty() bool { return d.Ops == 0 }

// RowDirty reports whether cost row r may differ.
func (d Delta) RowDirty(r int) bool {
	return d.DirtyRows != nil && r >= 0 && r < len(d.DirtyRows) && d.DirtyRows[r]
}

// DirtyRowCount returns the number of dirty rows.
func (d Delta) DirtyRowCount() int {
	c := 0
	for _, b := range d.DirtyRows {
		if b {
			c++
		}
	}
	return c
}

// AllRowsDirty reports whether every row is dirty (nothing row-level to
// reuse).
func (d Delta) AllRowsDirty() bool {
	return d.N > 0 && d.DirtyRowCount() == d.N
}

// PairDirty reports whether entry c(a, b) may differ under both contract
// layers. A false return is a guarantee of byte-identity.
func (d Delta) PairDirty(a, b int) bool {
	if !d.RowDirty(a) || !d.RowDirty(b) {
		return false
	}
	ta := d.Touched != nil && a < len(d.Touched) && d.Touched[a]
	tb := d.Touched != nil && b < len(d.Touched) && d.Touched[b]
	return ta || tb
}

// TouchedStations returns the touched stations in increasing order.
func (d Delta) TouchedStations() []int {
	var out []int
	for s, t := range d.Touched {
		if t {
			out = append(out, s)
		}
	}
	return out
}

// Merge accumulates another delta into d. Unions are sound: an entry
// changed by the sequence was changed by some op, whose own flags (a
// subset of the union's) already admitted it.
func (d *Delta) Merge(o Delta) {
	if o.Empty() {
		return
	}
	if d.N == 0 {
		d.N = o.N
	}
	if o.DirtyRows != nil {
		if d.DirtyRows == nil {
			d.DirtyRows = make([]bool, d.N)
		}
		for r, b := range o.DirtyRows {
			if b {
				d.DirtyRows[r] = true
			}
		}
	}
	if o.Touched != nil {
		if d.Touched == nil {
			d.Touched = make([]bool, d.N)
		}
		for s, t := range o.Touched {
			if t {
				d.Touched[s] = true
			}
		}
	}
	d.NodeSetChanged = d.NodeSetChanged || o.NodeSetChanged
	d.Ops += o.Ops
}

// rowsDelta builds a single-op delta touching the given stations; when
// allRows is set every row is marked dirty (column writes reach every
// row), otherwise only the touched stations' rows are.
func (nw *Network) rowsDelta(touched []int, allRows, nodeSet bool) Delta {
	n := nw.N()
	d := Delta{N: n, NodeSetChanged: nodeSet, Ops: 1,
		DirtyRows: make([]bool, n), Touched: make([]bool, n)}
	for _, s := range touched {
		d.Touched[s] = true
		d.DirtyRows[s] = true
	}
	if allRows {
		for r := range d.DirtyRows {
			d.DirtyRows[r] = true
		}
	}
	return d
}

// record merges an op's delta into the network's pending accumulator and
// bumps the version; it returns the op delta for the caller.
func (nw *Network) record(d Delta) Delta {
	nw.version++
	nw.pending.Merge(d)
	return d
}

// TakeDelta returns the delta accumulated by mutation ops since the last
// TakeDelta (or since construction/Snapshot — a snapshot starts with a
// clean accumulator) and resets the accumulator. The versioned evaluator
// drains it once per Update closure.
func (nw *Network) TakeDelta() Delta {
	d := nw.pending
	nw.pending = Delta{}
	return d
}
