package wireless

import (
	"testing"
)

// The no-op regressions: an op that writes the value already present
// must contribute nothing — no version bump, no pending delta — so the
// serving layer retires no cache and swaps no evaluator for it.

func TestSetCostSameValueIsNoOp(t *testing.T) {
	nw := testSymmetric(5)
	d, err := nw.SetCost(1, 3, nw.C(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("same-value SetCost returned a non-empty delta: %+v", d)
	}
	if nw.Version() != 0 {
		t.Fatalf("same-value SetCost bumped the version to %d", nw.Version())
	}
	if got := nw.TakeDelta(); !got.Empty() {
		t.Fatalf("same-value SetCost left a pending delta: %+v", got)
	}
}

func TestMoveStationSamePointIsNoOp(t *testing.T) {
	nw := testEuclidean(5, 2)
	d, err := nw.MoveStation(2, nw.Points()[2].Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("same-point MoveStation returned a non-empty delta: %+v", d)
	}
	if nw.Version() != 0 {
		t.Fatalf("same-point MoveStation bumped the version to %d", nw.Version())
	}
	if got := nw.TakeDelta(); !got.Empty() {
		t.Fatalf("same-point MoveStation left a pending delta: %+v", got)
	}
}

// TestDeltaShapePerOp pins each op's declared flags: SetCost is
// entry-exact (rows and touched = {i, j}); MoveStation dirties every
// row but touches only the moved station; SetStationEnabled adds
// NodeSetChanged.
func TestDeltaShapePerOp(t *testing.T) {
	nw := testSymmetric(5)
	d, err := nw.SetCost(1, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ops != 1 || d.NodeSetChanged || d.DirtyRowCount() != 2 || !d.RowDirty(1) || !d.RowDirty(3) {
		t.Fatalf("SetCost delta: %+v", d)
	}
	if got := d.TouchedStations(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("SetCost touched %v, want [1 3]", got)
	}
	// Pair dirtiness under both layers: (1,3) is suspect, (1,2) is
	// suspect only via row 1 — but row 2 is clean, so the entry is
	// pinned; (0,2) is clean on both layers.
	if !d.PairDirty(1, 3) || d.PairDirty(1, 2) || d.PairDirty(0, 2) {
		t.Fatalf("SetCost pair flags wrong: %+v", d)
	}

	ew := testEuclidean(5, 2)
	p := ew.Points()[2].Clone()
	p[0] += 0.25
	d, err = ew.MoveStation(2, p)
	if err != nil {
		t.Fatal(err)
	}
	if !d.AllRowsDirty() || d.NodeSetChanged {
		t.Fatalf("MoveStation delta: %+v", d)
	}
	if got := d.TouchedStations(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("MoveStation touched %v, want [2]", got)
	}
	// Every row is dirty, but only pairs incident to station 2 may
	// differ (the station layer).
	if !d.PairDirty(2, 4) || d.PairDirty(0, 1) || d.PairDirty(3, 4) {
		t.Fatalf("MoveStation pair flags wrong: %+v", d)
	}

	d, err = ew.SetStationEnabled(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if !d.NodeSetChanged || !d.AllRowsDirty() {
		t.Fatalf("SetStationEnabled delta: %+v", d)
	}
}

// TestTakeDeltaAccumulatesAndResets: ops merge into one pending delta
// (union flags, summed ops), draining resets it, and a Snapshot starts
// with a clean accumulator even when the parent has pending ops.
func TestTakeDeltaAccumulatesAndResets(t *testing.T) {
	nw := testSymmetric(6)
	if _, err := nw.SetCost(0, 1, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.SetCost(2, 3, 60); err != nil {
		t.Fatal(err)
	}
	snap := nw.Snapshot()
	if got := snap.TakeDelta(); !got.Empty() {
		t.Fatalf("snapshot inherited a pending delta: %+v", got)
	}
	d := nw.TakeDelta()
	if d.Ops != 2 || d.DirtyRowCount() != 4 {
		t.Fatalf("accumulated delta: %+v", d)
	}
	for _, r := range []int{0, 1, 2, 3} {
		if !d.RowDirty(r) {
			t.Fatalf("row %d not dirty in %+v", r, d)
		}
	}
	if d.RowDirty(4) || d.RowDirty(5) {
		t.Fatalf("clean rows marked dirty: %+v", d)
	}
	if got := nw.TakeDelta(); !got.Empty() {
		t.Fatalf("TakeDelta did not reset the accumulator: %+v", got)
	}
}

// TestStateEqual pins the bitwise evaluation-state comparison: version
// and pending bookkeeping are ignored, costs/points/enabled state are
// not — so an op sequence that cancels out compares equal and anything
// else does not.
func TestStateEqual(t *testing.T) {
	nw := testEuclidean(5, 2)
	snap := nw.Snapshot()
	if !nw.StateEqual(snap) {
		t.Fatal("snapshot not StateEqual to its source")
	}
	// A disable+enable round trip restores the state bitwise (savedRows
	// puts the exact cost bytes back) while bumping the version twice.
	if _, err := snap.SetStationEnabled(2, false); err != nil {
		t.Fatal(err)
	}
	if nw.StateEqual(snap) {
		t.Fatal("disabled station compares StateEqual")
	}
	if _, err := snap.SetStationEnabled(2, true); err != nil {
		t.Fatal(err)
	}
	if !nw.StateEqual(snap) {
		t.Fatal("disable+enable round trip not StateEqual")
	}
	if snap.Version() == nw.Version() {
		t.Fatal("round trip did not bump the version")
	}
	// A real mutation breaks equality.
	p := snap.Points()[1].Clone()
	p[0] += 1
	if _, err := snap.MoveStation(1, p); err != nil {
		t.Fatal(err)
	}
	if nw.StateEqual(snap) {
		t.Fatal("moved station compares StateEqual")
	}
}
