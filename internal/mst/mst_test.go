package mst

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/graph"
)

func TestPrimKnownTree(t *testing.T) {
	// Classic example: MST weight 1+2+3 = 6.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 3)
	g.AddEdge(0, 3, 10)
	g.AddEdge(0, 2, 9)
	edges := Prim(g, 0)
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	if w := Weight(edges); w != 6 {
		t.Errorf("weight = %g want 6", w)
	}
}

func TestKruskalForestOnDisconnected(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 2)
	edges := Kruskal(g)
	if len(edges) != 2 || Weight(edges) != 3 {
		t.Errorf("forest = %v", edges)
	}
}

func TestPrimDisconnectedSpansComponentOnly(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	edges := Prim(g, 0)
	if len(edges) != 1 {
		t.Errorf("edges = %v", edges)
	}
}

// Property: Prim, PrimMatrix and Kruskal agree on total weight for random
// complete graphs (MST weight is unique even when the tree is not).
func TestMSTAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(14)
		m := graph.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, rng.Float64()*10+0.001)
			}
		}
		g := m.Complete()
		wp := Weight(Prim(g, rng.Intn(n)))
		wk := Weight(Kruskal(g))
		wm := Weight(PrimMatrix(m, rng.Intn(n)))
		if math.Abs(wp-wk) > 1e-9 || math.Abs(wp-wm) > 1e-9 {
			t.Fatalf("trial %d: prim=%g kruskal=%g matrix=%g", trial, wp, wk, wm)
		}
	}
}

// Property: MST weight is minimal over 200 random spanning trees.
func TestMSTIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 8
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, rng.Float64()*10)
		}
	}
	g := m.Complete()
	opt := Weight(Kruskal(g))
	for trial := 0; trial < 200; trial++ {
		// Random spanning tree by random-order Kruskal.
		perm := rng.Perm(g.M())
		edges := g.Edges()
		uf := graph.NewUnionFind(n)
		var w float64
		cnt := 0
		for _, idx := range perm {
			e := edges[idx]
			if uf.Union(e.From, e.To) {
				w += e.W
				cnt++
			}
		}
		if cnt != n-1 {
			t.Fatal("random spanning tree incomplete")
		}
		if w < opt-1e-9 {
			t.Fatalf("found spanning tree of weight %g < MST %g", w, opt)
		}
	}
}

func TestOrient(t *testing.T) {
	// Path 0-1-2-3 rooted at 2 must orient as 2→1→0 and 2→3.
	edges := []graph.Edge{{From: 0, To: 1, W: 1}, {From: 1, To: 2, W: 2}, {From: 2, To: 3, W: 3}}
	d := Orient(4, edges, 2)
	if d.M() != 3 {
		t.Fatalf("arcs = %d", d.M())
	}
	hasArc := func(u, v int) bool {
		for _, a := range d.Out(u) {
			if a.To == v {
				return true
			}
		}
		return false
	}
	if !hasArc(2, 1) || !hasArc(1, 0) || !hasArc(2, 3) {
		t.Errorf("bad orientation: %v", d.Arcs())
	}
	if len(d.In(2)) != 0 {
		t.Error("root must have no incoming arcs")
	}
}

func TestOrientSkipsDisconnected(t *testing.T) {
	edges := []graph.Edge{{From: 0, To: 1, W: 1}}
	d := Orient(4, edges, 3)
	if d.M() != 0 {
		t.Errorf("expected no arcs, got %v", d.Arcs())
	}
}
