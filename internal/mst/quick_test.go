package mst

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wmcs/internal/graph"
)

// Property: adding an edge never increases the MST weight, and removing a
// non-bridge edge never decreases it.
func TestQuickMSTMonotoneInEdges(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 3 + rng.Intn(8)
		g := graph.New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(i, rng.Intn(i), rng.Float64()*5+0.01)
		}
		before := Weight(Kruskal(g))
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			return true
		}
		g.AddEdge(u, v, rng.Float64()*5+0.01)
		after := Weight(Kruskal(g))
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property (cut optimality): for every tree edge of the MST, no non-tree
// edge crossing the cut it defines is strictly cheaper.
func TestQuickMSTCutProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 3 + rng.Intn(7)
		m := graph.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, rng.Float64()*10+0.01)
			}
		}
		edges := PrimMatrix(m, 0)
		for _, te := range edges {
			// Remove te: split vertices into the two components.
			uf := graph.NewUnionFind(n)
			for _, oe := range edges {
				if oe != te {
					uf.Union(oe.From, oe.To)
				}
			}
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if !uf.Same(u, v) && m.At(u, v) < te.W-1e-9 {
						return false // cheaper crossing edge exists
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
