// Package mst implements minimum spanning tree algorithms (Prim and
// Kruskal) plus utilities to orient a spanning tree away from a root.
// MSTs back the MST broadcast heuristic of Wieselthier et al. [50], the
// Kou–Markowsky–Berman Steiner approximation, and the universal trees of
// §2.1 of the paper.
package mst

import (
	"wmcs/internal/graph"
)

// Workspace owns the buffers of the spanning-tree algorithms (heap,
// in-tree mask, best-edge table, union-find) so repeated runs on graphs
// of (at most) the same size allocate nothing. Not safe for concurrent
// use. The edge slices returned by its methods are owned by the
// workspace and valid until its next call.
type Workspace struct {
	heap     *graph.IndexHeap
	uf       *graph.UnionFind
	inTree   []bool
	bestEdge []graph.Edge
	edges    []graph.Edge
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace {
	return &Workspace{heap: graph.NewIndexHeap(0), uf: graph.NewUnionFind(0)}
}

func (ws *Workspace) begin(n int) {
	ws.heap.Grow(n)
	ws.heap.Reset()
	if cap(ws.inTree) < n {
		ws.inTree = make([]bool, n)
		ws.bestEdge = make([]graph.Edge, n)
	}
	ws.inTree = ws.inTree[:n]
	ws.bestEdge = ws.bestEdge[:n]
	for i := 0; i < n; i++ {
		ws.inTree[i] = false
	}
	ws.edges = ws.edges[:0]
}

// Prim returns MST edges of start's component, reusing the workspace.
func (ws *Workspace) Prim(g *graph.Graph, start int) []graph.Edge {
	ws.begin(g.N())
	h, inTree, bestEdge := ws.heap, ws.inTree, ws.bestEdge
	h.Push(start, 0)
	for h.Len() > 0 {
		u, _ := h.Pop()
		if inTree[u] {
			continue
		}
		inTree[u] = true
		if u != start {
			ws.edges = append(ws.edges, bestEdge[u])
		}
		for _, e := range g.Neighbors(u) {
			if inTree[e.To] {
				continue
			}
			if !h.Contains(e.To) || e.W < h.Priority(e.To) {
				bestEdge[e.To] = e
				h.PushOrDecrease(e.To, e.W)
			}
		}
	}
	return ws.edges
}

// Kruskal returns the edges of a minimum spanning forest of g, reusing
// the workspace union-find (the edge scan itself still sorts a fresh
// slice inside g.Edges()).
func (ws *Workspace) Kruskal(g *graph.Graph) []graph.Edge {
	ws.uf.Reset(g.N())
	ws.edges = ws.edges[:0]
	for _, e := range g.Edges() { // Edges() is weight-sorted
		if ws.uf.Union(e.From, e.To) {
			ws.edges = append(ws.edges, e)
		}
	}
	return ws.edges
}

// Prim returns the edges of a minimum spanning tree of the connected
// component of start, using the indexed heap. On a disconnected graph only
// the component of start is spanned. The one-shot entry point; repeated
// runs should hold a Workspace.
func Prim(g *graph.Graph, start int) []graph.Edge {
	n := g.N()
	ws := &Workspace{
		heap:     graph.NewIndexHeap(n),
		inTree:   make([]bool, n),
		bestEdge: make([]graph.Edge, n),
	}
	return ws.Prim(g, start)
}

// PrimMatrix returns MST edges of the complete graph given by the
// symmetric matrix m in O(n²), the natural choice for the paper's complete
// cost graphs.
func PrimMatrix(m *graph.Matrix, start int) []graph.Edge {
	n := m.N()
	inTree := make([]bool, n)
	dist := make([]float64, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = inf
		from[i] = -1
	}
	dist[start] = 0
	var edges []graph.Edge
	for iter := 0; iter < n; iter++ {
		u, best := -1, inf
		for v := 0; v < n; v++ {
			if !inTree[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break
		}
		inTree[u] = true
		if from[u] >= 0 {
			edges = append(edges, graph.Edge{From: from[u], To: u, W: dist[u]})
		}
		for v := 0; v < n; v++ {
			if !inTree[v] && m.At(u, v) < dist[v] {
				dist[v] = m.At(u, v)
				from[v] = u
			}
		}
	}
	return edges
}

const inf = 1e308

// Kruskal returns the edges of a minimum spanning forest of g.
func Kruskal(g *graph.Graph) []graph.Edge {
	uf := graph.NewUnionFind(g.N())
	var out []graph.Edge
	for _, e := range g.Edges() { // Edges() is weight-sorted
		if uf.Union(e.From, e.To) {
			out = append(out, e)
		}
	}
	return out
}

// Weight sums the weights of the given edges.
func Weight(edges []graph.Edge) float64 {
	var s float64
	for _, e := range edges {
		s += e.W
	}
	return s
}

// Orient turns an undirected spanning tree (given by its edge list over n
// vertices) into an out-arborescence rooted at root: the result digraph
// has an arc parent→child for every tree edge. Vertices not connected to
// root keep no arcs.
func Orient(n int, edges []graph.Edge, root int) *graph.Digraph {
	adj := make([][]graph.Edge, n)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
		adj[e.To] = append(adj[e.To], graph.Edge{From: e.To, To: e.From, W: e.W})
	}
	d := graph.NewDigraph(n)
	seen := make([]bool, n)
	queue := []int{root}
	seen[root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				d.AddArc(u, e.To, e.W)
				queue = append(queue, e.To)
			}
		}
	}
	return d
}
