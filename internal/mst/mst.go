// Package mst implements minimum spanning tree algorithms (Prim and
// Kruskal) plus utilities to orient a spanning tree away from a root.
// MSTs back the MST broadcast heuristic of Wieselthier et al. [50], the
// Kou–Markowsky–Berman Steiner approximation, and the universal trees of
// §2.1 of the paper.
package mst

import (
	"wmcs/internal/graph"
)

// Prim returns the edges of a minimum spanning tree of the connected
// component of start, using the indexed heap. On a disconnected graph only
// the component of start is spanned.
func Prim(g *graph.Graph, start int) []graph.Edge {
	n := g.N()
	inTree := make([]bool, n)
	bestEdge := make([]graph.Edge, n)
	h := graph.NewIndexHeap(n)
	h.Push(start, 0)
	var edges []graph.Edge
	for h.Len() > 0 {
		u, _ := h.Pop()
		if inTree[u] {
			continue
		}
		inTree[u] = true
		if u != start {
			edges = append(edges, bestEdge[u])
		}
		for _, e := range g.Neighbors(u) {
			if inTree[e.To] {
				continue
			}
			if !h.Contains(e.To) || e.W < h.Priority(e.To) {
				bestEdge[e.To] = e
				h.PushOrDecrease(e.To, e.W)
			}
		}
	}
	return edges
}

// PrimMatrix returns MST edges of the complete graph given by the
// symmetric matrix m in O(n²), the natural choice for the paper's complete
// cost graphs.
func PrimMatrix(m *graph.Matrix, start int) []graph.Edge {
	n := m.N()
	inTree := make([]bool, n)
	dist := make([]float64, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = inf
		from[i] = -1
	}
	dist[start] = 0
	var edges []graph.Edge
	for iter := 0; iter < n; iter++ {
		u, best := -1, inf
		for v := 0; v < n; v++ {
			if !inTree[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			break
		}
		inTree[u] = true
		if from[u] >= 0 {
			edges = append(edges, graph.Edge{From: from[u], To: u, W: dist[u]})
		}
		for v := 0; v < n; v++ {
			if !inTree[v] && m.At(u, v) < dist[v] {
				dist[v] = m.At(u, v)
				from[v] = u
			}
		}
	}
	return edges
}

const inf = 1e308

// Kruskal returns the edges of a minimum spanning forest of g.
func Kruskal(g *graph.Graph) []graph.Edge {
	uf := graph.NewUnionFind(g.N())
	var out []graph.Edge
	for _, e := range g.Edges() { // Edges() is weight-sorted
		if uf.Union(e.From, e.To) {
			out = append(out, e)
		}
	}
	return out
}

// Weight sums the weights of the given edges.
func Weight(edges []graph.Edge) float64 {
	var s float64
	for _, e := range edges {
		s += e.W
	}
	return s
}

// Orient turns an undirected spanning tree (given by its edge list over n
// vertices) into an out-arborescence rooted at root: the result digraph
// has an arc parent→child for every tree edge. Vertices not connected to
// root keep no arcs.
func Orient(n int, edges []graph.Edge, root int) *graph.Digraph {
	adj := make([][]graph.Edge, n)
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e)
		adj[e.To] = append(adj[e.To], graph.Edge{From: e.To, To: e.From, W: e.W})
	}
	d := graph.NewDigraph(n)
	seen := make([]bool, n)
	queue := []int{root}
	seen[root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				d.AddArc(u, e.To, e.W)
				queue = append(queue, e.To)
			}
		}
	}
	return d
}
