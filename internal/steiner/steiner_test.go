package steiner

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/graph"
	"wmcs/internal/mst"
)

// starGadget: terminals 0,1,2 on a star with hub 3; direct edges are more
// expensive than going through the hub. Optimal Steiner tree uses the hub.
func starGadget() *graph.Graph {
	g := graph.New(4)
	g.AddEdge(0, 3, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 1, 1.9)
	g.AddEdge(1, 2, 1.9)
	g.AddEdge(0, 2, 1.9)
	return g
}

func TestDreyfusWagnerStar(t *testing.T) {
	tr := DreyfusWagner(starGadget(), []int{0, 1, 2})
	if math.Abs(tr.Cost-3) > 1e-9 {
		t.Errorf("cost = %g want 3", tr.Cost)
	}
	if !IsSteinerTree(4, tr.Edges, []int{0, 1, 2}) {
		t.Errorf("not a Steiner tree: %v", tr.Edges)
	}
}

func TestKMBStarIsWithinFactor2(t *testing.T) {
	tr := KMB(starGadget(), []int{0, 1, 2})
	if !IsSteinerTree(4, tr.Edges, []int{0, 1, 2}) {
		t.Fatalf("not a Steiner tree: %v", tr.Edges)
	}
	if tr.Cost > 2*3+1e-9 {
		t.Errorf("cost = %g exceeds 2×OPT", tr.Cost)
	}
}

func TestTwoTerminalsIsShortestPath(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 1, 1)
	for _, tr := range []Tree{KMB(g, []int{0, 1}), DreyfusWagner(g, []int{0, 1})} {
		if math.Abs(tr.Cost-3) > 1e-9 {
			t.Errorf("cost = %g want 3 (path through 2,3)", tr.Cost)
		}
	}
}

func TestSingleAndEmptyTerminals(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	if tr := KMB(g, []int{0}); tr.Cost != 0 || len(tr.Edges) != 0 {
		t.Error("single-terminal KMB should be empty")
	}
	if tr := DreyfusWagner(g, nil); tr.Cost != 0 {
		t.Error("empty DW should be empty")
	}
}

func TestPrune(t *testing.T) {
	// Path 0-1-2-3 with terminal {0,1}: vertices 2,3 must be pruned.
	edges := []graph.Edge{
		{From: 0, To: 1, W: 1},
		{From: 1, To: 2, W: 1},
		{From: 2, To: 3, W: 1},
	}
	out := Prune(4, edges, []int{0, 1})
	if len(out) != 1 || out[0].From != 0 || out[0].To != 1 {
		t.Errorf("Prune = %v", out)
	}
}

func TestIsSteinerTreeRejectsCycleAndDisconnect(t *testing.T) {
	cyc := []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}}
	if IsSteinerTree(3, cyc, []int{0, 1}) {
		t.Error("cycle accepted")
	}
	disc := []graph.Edge{{From: 0, To: 1}}
	if IsSteinerTree(4, disc, []int{0, 3}) {
		t.Error("disconnected accepted")
	}
}

// exactByEdgeSubsets brute-forces the minimum Steiner tree by trying every
// subset of edges (only for tiny graphs).
func exactByEdgeSubsets(g *graph.Graph, terms []int) float64 {
	edges := g.Edges()
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(edges); mask++ {
		var chosen []graph.Edge
		var w float64
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				chosen = append(chosen, e)
				w += e.W
			}
		}
		if w >= best {
			continue
		}
		if IsSteinerTree(g.N(), chosen, terms) {
			best = w
		}
	}
	return best
}

// Property: DW matches a brute force over edge subsets on tiny graphs, and
// KMB is between OPT and 2·OPT.
func TestDWMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(2)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.8 {
					g.AddEdge(i, j, 0.5+rng.Float64()*4)
				}
			}
		}
		k := 2 + rng.Intn(n-2)
		terms := rng.Perm(n)[:k]
		// Require connectivity among terminals.
		uf := graph.NewUnionFind(n)
		for _, e := range g.Edges() {
			uf.Union(e.From, e.To)
		}
		connected := true
		for _, tm := range terms[1:] {
			if !uf.Same(terms[0], tm) {
				connected = false
			}
		}
		if !connected {
			continue
		}
		opt := exactByEdgeSubsets(g, terms)
		dw := DreyfusWagner(g, terms)
		if math.Abs(dw.Cost-opt) > 1e-6 {
			t.Fatalf("trial %d: DW=%g brute=%g (terms=%v)", trial, dw.Cost, opt, terms)
		}
		if !IsSteinerTree(n, dw.Edges, terms) {
			t.Fatalf("trial %d: DW output not a Steiner tree", trial)
		}
		kmb := KMB(g, terms)
		if !IsSteinerTree(n, kmb.Edges, terms) {
			t.Fatalf("trial %d: KMB output not a Steiner tree", trial)
		}
		if kmb.Cost < opt-1e-6 || kmb.Cost > 2*opt+1e-6 {
			t.Fatalf("trial %d: KMB=%g outside [OPT, 2·OPT]=[%g, %g]", trial, kmb.Cost, opt, 2*opt)
		}
	}
}

// Property: on larger random graphs, KMB ≥ DW and both are valid trees.
func TestKMBvsDWRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(10)
		g := graph.New(n)
		// Ring + chords guarantees connectivity.
		for i := 0; i < n; i++ {
			g.AddEdge(i, (i+1)%n, 0.5+rng.Float64()*3)
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 0.5+rng.Float64()*6)
			}
		}
		k := 3 + rng.Intn(5)
		terms := rng.Perm(n)[:k]
		dw := DreyfusWagner(g, terms)
		kmb := KMB(g, terms)
		if !IsSteinerTree(n, dw.Edges, terms) || !IsSteinerTree(n, kmb.Edges, terms) {
			t.Fatalf("trial %d: invalid tree", trial)
		}
		if dw.Cost > kmb.Cost+1e-9 {
			t.Fatalf("trial %d: DW %g > KMB %g", trial, dw.Cost, kmb.Cost)
		}
		if kmb.Cost > 2*dw.Cost+1e-9 {
			t.Fatalf("trial %d: KMB %g > 2×OPT %g", trial, kmb.Cost, 2*dw.Cost)
		}
	}
}

func TestTreeCostMatchesEdges(t *testing.T) {
	g := starGadget()
	tr := KMB(g, []int{0, 1, 2})
	if math.Abs(tr.Cost-mst.Weight(tr.Edges)) > 1e-12 {
		t.Error("Cost field inconsistent with edges")
	}
}
