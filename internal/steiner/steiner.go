// Package steiner implements Steiner tree algorithms on edge-weighted
// graphs: the Kou–Markowsky–Berman 2-approximation [34] and the exact
// Dreyfus–Wagner dynamic program for small terminal sets. The paper uses
// Steiner trees twice: as the comparator of the 2-BB Jain–Vazirani methods
// (§3.2) and, in node-weighted form, inside the §2.2 mechanisms.
package steiner

import (
	"math"
	"sort"

	"wmcs/internal/graph"
	"wmcs/internal/mst"
	"wmcs/internal/paths"
)

// Tree is a Steiner tree: a set of edges of the host graph connecting all
// terminals, and its total weight.
type Tree struct {
	Edges []graph.Edge
	Cost  float64
}

// KMB computes the Kou–Markowsky–Berman 2(1−1/k)-approximate Steiner tree
// for the given terminals: MST of the terminal metric closure, expanded to
// shortest paths, re-spanned and pruned. All terminals must be in one
// connected component.
func KMB(g *graph.Graph, terms []int) Tree {
	if len(terms) == 0 {
		return Tree{}
	}
	if len(terms) == 1 {
		return Tree{}
	}
	closure, trees := paths.MetricClosure(g, terms)
	closureMST := mst.PrimMatrix(closure, 0)
	// Expand closure edges into shortest paths; collect unique host edges.
	used := map[pair]float64{}
	addPath(trees, closureMST, used)
	// Build the expansion subgraph and take its MST.
	sub := graph.New(g.N())
	for p, w := range used {
		sub.AddEdge(p.u, p.v, w)
	}
	// Prim from a terminal: expansion subgraph is connected by construction.
	treeEdges := mst.Prim(sub, terms[0])
	treeEdges = Prune(g.N(), treeEdges, terms)
	return Tree{Edges: treeEdges, Cost: mst.Weight(treeEdges)}
}

// pair is an unordered vertex pair key (u < v).
type pair struct{ u, v int }

func addPath(trees []*paths.Tree, closureMST []graph.Edge, used map[pair]float64) {
	for _, ce := range closureMST {
		// ce connects terminal indices ce.From, ce.To in the closure; walk
		// the shortest path in the tree rooted at terminal ce.From.
		t := trees[ce.From]
		target := trees[ce.To].Root
		path := t.PathTo(target)
		for i := 0; i+1 < len(path); i++ {
			a, b := path[i], path[i+1]
			w := t.Dist[path[i+1]] - t.Dist[path[i]]
			if a > b {
				a, b = b, a
			}
			if old, ok := used[pair{a, b}]; !ok || w < old {
				used[pair{a, b}] = w
			}
		}
	}
}

// Prune repeatedly removes non-terminal leaves from the edge set, leaving
// a tree whose leaves are all terminals.
func Prune(n int, edges []graph.Edge, terms []int) []graph.Edge {
	isTerm := make([]bool, n)
	for _, t := range terms {
		isTerm[t] = true
	}
	deg := make([]int, n)
	alive := make([]bool, len(edges))
	for i, e := range edges {
		alive[i] = true
		deg[e.From]++
		deg[e.To]++
	}
	for changed := true; changed; {
		changed = false
		for i, e := range edges {
			if !alive[i] {
				continue
			}
			var leaf int = -1
			if deg[e.From] == 1 && !isTerm[e.From] {
				leaf = e.From
			} else if deg[e.To] == 1 && !isTerm[e.To] {
				leaf = e.To
			}
			if leaf >= 0 {
				alive[i] = false
				deg[e.From]--
				deg[e.To]--
				changed = true
			}
		}
	}
	var out []graph.Edge
	for i, e := range edges {
		if alive[i] {
			out = append(out, e)
		}
	}
	return out
}

// IsSteinerTree verifies that edges form an acyclic connected subgraph
// containing every terminal.
func IsSteinerTree(n int, edges []graph.Edge, terms []int) bool {
	if len(terms) <= 1 {
		return len(edges) == 0
	}
	uf := graph.NewUnionFind(n)
	for _, e := range edges {
		if !uf.Union(e.From, e.To) {
			return false // cycle
		}
	}
	for _, t := range terms[1:] {
		if !uf.Same(terms[0], t) {
			return false
		}
	}
	return true
}

// choice records how a Dreyfus–Wagner dp entry was reached, for tree
// reconstruction.
type choice struct {
	kind byte // 'b' base, 'm' merge, 'r' relax
	sub  int  // merge: submask
	u    int  // relax: predecessor vertex
}

// DreyfusWagner computes an exact minimum Steiner tree for the terminals
// using the classical O(3^t·n + 2^t·n²) dynamic program over the metric
// closure. Practical for t ≤ ~12 terminals. All terminals must be
// connected in g.
func DreyfusWagner(g *graph.Graph, terms []int) Tree {
	if len(terms) <= 1 {
		return Tree{}
	}
	n := g.N()
	// All-pairs shortest paths from every vertex that can appear in the dp.
	trees := make([]*paths.Tree, n)
	for v := 0; v < n; v++ {
		trees[v] = paths.Dijkstra(g, v)
	}
	dist := func(u, v int) float64 { return trees[u].Dist[v] }

	root := terms[0]
	q := terms[1:]
	k := len(q)
	full := (1 << k) - 1
	dp := make([][]float64, full+1)
	ch := make([][]choice, full+1)
	for m := 1; m <= full; m++ {
		dp[m] = make([]float64, n)
		ch[m] = make([]choice, n)
		for v := range dp[m] {
			dp[m][v] = math.Inf(1)
		}
	}
	for i, t := range q {
		m := 1 << i
		for v := 0; v < n; v++ {
			dp[m][v] = dist(t, v)
			ch[m][v] = choice{kind: 'b', u: t}
		}
	}
	for m := 1; m <= full; m++ {
		if m&(m-1) != 0 { // not a singleton: merge submasks
			for sub := (m - 1) & m; sub > 0; sub = (sub - 1) & m {
				if sub < m^sub { // visit each split once
					continue
				}
				rest := m ^ sub
				for v := 0; v < n; v++ {
					if c := dp[sub][v] + dp[rest][v]; c < dp[m][v] {
						dp[m][v] = c
						ch[m][v] = choice{kind: 'm', sub: sub}
					}
				}
			}
		}
		// Relaxation: Dijkstra-like pass over the metric closure.
		relaxDense(dp[m], ch[m], dist, n)
	}
	// Reconstruct.
	type frame struct {
		mask, v int
	}
	edgeSet := map[[2]int]float64{}
	stack := []frame{{full, root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := ch[f.mask][f.v]
		switch c.kind {
		case 'b':
			collectPath(trees[c.u], f.v, edgeSet)
		case 'm':
			stack = append(stack, frame{c.sub, f.v}, frame{f.mask ^ c.sub, f.v})
		case 'r':
			collectPath(trees[c.u], f.v, edgeSet)
			stack = append(stack, frame{f.mask, c.u})
		}
	}
	var edges []graph.Edge
	for p, w := range edgeSet {
		edges = append(edges, graph.Edge{From: p[0], To: p[1], W: w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	// Summed after the sort: float addition does not commute exactly,
	// so accumulating in map order would let Go's iteration seed pick
	// the tree cost's low bits.
	var cost float64
	for _, e := range edges {
		cost += e.W
	}
	// Defensive: shared subpaths between merged branches can create cycles
	// in degenerate tie cases; re-span and prune to a clean tree.
	sub := graph.New(n)
	for _, e := range edges {
		sub.AddEdge(e.From, e.To, e.W)
	}
	clean := Prune(n, mst.Prim(sub, root), terms)
	return Tree{Edges: clean, Cost: mst.Weight(clean)}
}

// relaxDense performs the DW relax step dp[v] = min(dp[v], dp[u]+dist(u,v))
// to a fixed point, via an O(n²) Dijkstra-style sweep, recording
// predecessors in ch.
func relaxDense(dp []float64, ch []choice, dist func(int, int) float64, n int) {
	done := make([]bool, n)
	for iter := 0; iter < n; iter++ {
		u, best := -1, math.Inf(1)
		for v := 0; v < n; v++ {
			if !done[v] && dp[v] < best {
				u, best = v, dp[v]
			}
		}
		if u < 0 {
			return
		}
		done[u] = true
		for v := 0; v < n; v++ {
			if done[v] {
				continue
			}
			if c := best + dist(u, v); c < dp[v] {
				dp[v] = c
				ch[v] = choice{kind: 'r', u: u}
			}
		}
	}
}

func collectPath(t *paths.Tree, v int, edgeSet map[[2]int]float64) {
	path := t.PathTo(v)
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		w := t.Dist[path[i+1]] - t.Dist[path[i]]
		if a > b {
			a, b = b, a
		}
		if old, ok := edgeSet[[2]int{a, b}]; !ok || w < old {
			edgeSet[[2]int{a, b}] = w
		}
	}
}
