package wmech

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/nwst"
	"wmcs/internal/wireless"
)

func TestRichProfileServesEveryoneFeasibly(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		nw := instances.RandomEuclidean(rng, 6+rng.Intn(4), 2, 2, 10)
		m := New(nw, nwst.KleinRaviOracle)
		u := mech.UniformProfile(nw.N(), 1e8)
		res := m.RunDetailed(u)
		o := res.Outcome
		if len(o.Receivers) != nw.N()-1 {
			t.Fatalf("trial %d: receivers %v, want everyone", trial, o.Receivers)
		}
		if !nw.Feasible(res.Assignment, o.Receivers) {
			t.Fatalf("trial %d: assignment infeasible", trial)
		}
		if math.Abs(res.Assignment.Total()-o.Cost) > 1e-9 {
			t.Fatalf("trial %d: cost field inconsistent", trial)
		}
		if err := mech.CheckAll(u, o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestBetaBBAgainstExactOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 8; trial++ {
		nw := instances.RandomSymmetric(rng, 7, 0.5, 10)
		m := New(nw, nwst.BranchSpiderOracle)
		u := mech.UniformProfile(nw.N(), 1e8)
		o := m.Run(u)
		if len(o.Receivers) == 0 {
			t.Fatalf("trial %d: nobody served", trial)
		}
		opt, _ := wireless.ExactMEMT(nw, o.Receivers)
		k := len(o.Receivers)
		// Allow the weaker oracle bound 2·(1 + 2 ln k) as the envelope.
		bound := 2 * (1 + 2*math.Log(float64(k))) * opt
		if o.TotalShares() > bound+1e-7 {
			t.Fatalf("trial %d: shares %g exceed bound %g (opt %g, k=%d)",
				trial, o.TotalShares(), bound, opt, k)
		}
		if err := mech.CheckCostRecovery(o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestAxiomsOnRandomProfiles(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 10; trial++ {
		nw := instances.RandomEuclidean(rng, 7, 2, 2, 10)
		m := New(nw, nwst.KleinRaviOracle)
		u := mech.RandomProfile(rng, nw.N(), 60)
		res := m.RunDetailed(u)
		o := res.Outcome
		if err := mech.CheckNPT(o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := mech.CheckVP(u, o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(o.Receivers) > 0 {
			if err := mech.CheckCostRecovery(o); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !nw.Feasible(res.Assignment, o.Receivers) {
				t.Fatalf("trial %d: infeasible", trial)
			}
		}
	}
}

func TestStrategyproofSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 5; trial++ {
		nw := instances.RandomEuclidean(rng, 6, 2, 2, 10)
		m := New(nw, nwst.KleinRaviOracle)
		truth := mech.RandomProfile(rng, nw.N(), 40)
		if err := mech.CheckStrategyproof(m, truth, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestConsumerSovereignty(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	nw := instances.RandomEuclidean(rng, 6, 2, 2, 10)
	m := New(nw, nwst.KleinRaviOracle)
	if err := mech.CheckCS(m, mech.RandomProfile(rng, nw.N(), 5), 1e9); err != nil {
		t.Error(err)
	}
}

func TestPoorProfileDropsEveryone(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	nw := instances.RandomEuclidean(rng, 6, 2, 2, 10)
	m := New(nw, nwst.KleinRaviOracle)
	o := m.Run(mech.UniformProfile(nw.N(), 1e-12))
	if len(o.Receivers) != 0 {
		t.Fatalf("receivers = %v, want none", o.Receivers)
	}
}

func TestBetaBound(t *testing.T) {
	if BetaBound(0) != 1 || BetaBound(-1) != 1 {
		t.Error("degenerate bounds should be 1")
	}
	if got := BetaBound(9); math.Abs(got-3*math.Log(10)) > 1e-12 {
		t.Errorf("BetaBound(9) = %g", got)
	}
}

func TestDiffSorted(t *testing.T) {
	got := diffSorted([]int{1, 2, 3, 5, 8}, []int{2, 5})
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 8 {
		t.Errorf("diffSorted = %v", got)
	}
	if diffSorted(nil, []int{1}) != nil {
		t.Error("empty diff should be nil")
	}
}
