// Package wmech implements the §2.2.3 cost-sharing mechanism for
// multicast transmissions in general symmetric wireless networks: reduce
// to node-weighted Steiner tree via the Caragiannis et al. construction
// (internal/memtred), run the §2.2.2 NWST mechanism (internal/nwstmech)
// with the source's input node as a free terminal, extract the directed
// multicast tree by BFS orientation, and then charge the orientation's
// extra powers to the downstream receivers (step (c)), dropping and
// restarting whenever someone cannot pay. With a β(k)-approximate spider
// oracle the mechanism is 2β(k)-BB — 3 ln(k+1) for the paper's 1.5 ln k
// oracle — strategyproof, and meets NPT, VP and CS; like its NWST core it
// is not group strategyproof.
package wmech

import (
	"math"
	"sort"
	"sync"

	"wmcs/internal/mech"
	"wmcs/internal/memtred"
	"wmcs/internal/nwst"
	"wmcs/internal/nwstmech"
	"wmcs/internal/wireless"
)

// Mechanism is the §2.2.3 wireless multicast cost-sharing mechanism.
//
// Construction precomputes the MEMT→NWST reduction once; every Run is a
// query against it, drawing contraction states from a shared pool, so
// repeated queries (different profiles, different receiver sets) pay no
// reduction or graph-copy cost. Run is safe for concurrent use: the
// reduction is read-only after New and the state pool is mutex-guarded.
type Mechanism struct {
	Net    *wireless.Network
	Oracle nwst.Oracle
	rd     *memtred.Reduction
	spool  *nwst.StatePool
	// memo records the inner mechanism's spider trajectories per active
	// receiver set: repeated runs (deviation probes, repeat queries)
	// replay them instead of re-running the oracle, byte-identically.
	// The memo's lifetime is this mechanism instance — the query layer
	// builds a fresh mechanism per evaluator generation, so an update
	// (query.VersionedEvaluator.Update) retires it wholesale.
	memo *nwst.TrajectoryMemo
	// uhPool recycles the H-node utility profiles of attempt.
	uhPool sync.Pool
}

const eps = 1e-9

// New builds the mechanism; a nil oracle defaults to the branch-spider
// greedy (the paper's 1.5 ln k choice).
func New(nw *wireless.Network, oracle nwst.Oracle) *Mechanism {
	return NewFromReduction(memtred.New(nw), oracle)
}

// NewFromReduction builds the mechanism on an already-computed reduction,
// so callers holding one per network (e.g. the query evaluator) share it
// across mechanism variants instead of rebuilding the H graph.
func NewFromReduction(rd *memtred.Reduction, oracle nwst.Oracle) *Mechanism {
	if oracle == nil {
		oracle = nwst.BranchSpiderOracle
	}
	return &Mechanism{
		Net:    rd.Net,
		Oracle: oracle,
		rd:     rd,
		spool:  nwst.NewStatePool(rd.G, rd.Weights),
		memo:   nwst.NewTrajectoryMemo(0),
	}
}

// DisableMemo turns trajectory memoization off: every attempt then
// recomputes its full spider sequence. This is the seed evaluation
// path, kept reachable so the differential tests can pin memoized runs
// byte-identical against it.
func (m *Mechanism) DisableMemo() { m.memo = nil }

// Name implements mech.Mechanism.
// Name is the package-internal default for direct constructions; the
// descriptor registry (internal/mechreg) assigns the public wireless-bb
// name to registry-built instances.
func (m *Mechanism) Name() string { return "nwst-wireless" }

// Agents implements mech.Mechanism: every station except the source.
func (m *Mechanism) Agents() []int { return m.Net.AllReceivers() }

// Result extends the outcome with the power assignment actually built.
type Result struct {
	Outcome    mech.Outcome
	Assignment wireless.Assignment
}

// Run implements mech.Mechanism.
func (m *Mechanism) Run(u mech.Profile) mech.Outcome { return m.RunDetailed(u).Outcome }

// RunDetailed executes the full reduce–share–orient–surcharge loop.
func (m *Mechanism) RunDetailed(u mech.Profile) Result {
	active := append([]int(nil), m.Net.AllReceivers()...)
	for len(active) > 0 {
		res, dropped, ok := m.attempt(u, active)
		if ok {
			return res
		}
		if len(dropped) == 0 {
			break
		}
		// Both lists are sorted, so the survivors are a sorted merge-diff
		// — no scratch set needed.
		active = diffSorted(active, dropped)
	}
	return Result{
		Outcome:    mech.Outcome{Shares: map[int]float64{}},
		Assignment: make(wireless.Assignment, m.Net.N()),
	}
}

// attempt performs one outer iteration on the active receiver set. It
// returns ok=false with the stations to drop when step (c) finds an
// unaffordable surcharge, or when the inner NWST mechanism itself shrank
// the receiver set (the outer loop then re-reduces on the smaller set, as
// in the paper's "while R′ ≠ R(v)" loop).
func (m *Mechanism) attempt(u mech.Profile, active []int) (Result, []int, bool) {
	inst := m.rd.Instance(active)
	// Utility profile over H nodes: each receiver's input node inherits
	// the station's report. The buffer is pooled and zeroed, which is
	// byte-equivalent to the fresh allocation it replaces.
	n := m.rd.G.N()
	uh, _ := m.uhPool.Get().(mech.Profile)
	// Deferred closure, not a plain defer: uh is rebound when the
	// pooled buffer is too small, and the grown buffer is the one
	// worth keeping.
	defer func() { m.uhPool.Put(uh) }()
	if cap(uh) < n {
		uh = make(mech.Profile, n)
	}
	uh = uh[:n]
	for i := range uh {
		uh[i] = 0
	}
	for _, r := range active {
		uh[m.rd.In[r]] = u[r]
	}
	inner := nwstmech.NewMemoized(inst, m.Oracle, m.spool, m.memo)
	det := inner.RunDetailed(uh)
	// Map surviving input-node terminals back to stations.
	var served []int
	for _, t := range det.Outcome.Receivers {
		served = append(served, m.rd.Station(t))
	}
	sort.Ints(served)
	if len(served) == 0 {
		return Result{}, nil, false
	}
	if len(served) < len(active) {
		// The inner mechanism dropped someone: restart the outer loop on
		// the smaller set so the reduction, orientation and shares are
		// all rebuilt consistently.
		drop := diffSorted(active, served)
		return Result{}, drop, false
	}
	shares := make(map[int]float64, len(served))
	for _, t := range det.Outcome.Receivers {
		shares[m.rd.Station(t)] = det.Outcome.Shares[t]
	}
	ex := m.rd.Extract(det.Nodes, served)
	down := ex.DownstreamReceivers(m.Net.N(), served)
	// Step (c): walk stations backward along the BFS enumeration; any
	// station transmitting more than the NWST solution paid for charges
	// its full power equally to its downstream receivers.
	var dropped []int
	for i := len(ex.Order) - 1; i >= 0; i-- {
		xi := ex.Order[i]
		if ex.Pi[xi] <= ex.PiNWST[xi]+eps {
			continue
		}
		ni := down[xi]
		if len(ni) == 0 {
			continue // nothing downstream to charge; power stays covered by cost recovery of the tree
		}
		slice := ex.Pi[xi] / float64(len(ni))
		for _, xj := range ni {
			if u[xj]-shares[xj] < slice-eps {
				dropped = append(dropped, xj)
			}
		}
		if len(dropped) > 0 {
			sort.Ints(dropped)
			return Result{}, dropped, false
		}
		for _, xj := range ni {
			shares[xj] += slice
		}
	}
	return Result{
		Outcome: mech.Outcome{
			Receivers: served,
			Shares:    shares,
			Cost:      ex.Pi.Total(),
		},
		Assignment: ex.Pi,
	}, nil, true
}

// diffSorted returns the elements of a (sorted) not present in b (sorted).
func diffSorted(a, b []int) []int {
	var out []int
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// BetaBound returns the nominal budget-balance guarantee 3·ln(k+1) for k
// receivers (the paper's Theorem for the 1.5 ln k oracle); experiment E6
// measures the actual ratios, which also cover the Klein–Ravi oracle's
// 4 ln k variant.
func BetaBound(k int) float64 {
	if k <= 0 {
		return 1
	}
	b := 3 * math.Log(float64(k)+1)
	if b < 1 {
		return 1
	}
	return b
}
