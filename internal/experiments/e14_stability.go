package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"wmcs/internal/detorder"
	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/mechreg"
	"wmcs/internal/query"
	"wmcs/internal/stats"
	"wmcs/internal/wireless"
)

// E14ShareStability measures how each registry mechanism's cost shares
// respond to small network perturbations — the serving-layer question
// the live lifecycle (DESIGN.md §10) makes operational: when a station
// drifts or a radio degrades and the daemon PATCHes the network, how
// much do the answers move? A mechanism whose shares jump
// discontinuously under ε-perturbations churns its whole cached result
// set for nothing and (worse) makes prices unstable for the agents.
//
// Setup, per (base, mechanism, ε) row: draw the base network, fix a
// truthful profile, run the mechanism; apply one ε-scaled perturbation
// directly through the lifecycle mutation ops (a gaussian mobility step
// on every non-source station of a Euclidean base — the dense analogue
// of the churn registry's mobility random walk — and ±ε relative cost
// noise on the symmetric base); run the mechanism cold on the perturbed
// network. Report, averaged over trials:
//
//   - share drift: Σ_i |x_i − x'_i| normalized by the base total
//     charge (0 when nobody is charged in either outcome);
//   - served churn: |S Δ S'| / |S ∪ S'|, the Jaccard distance of the
//     served sets (0 = same receivers, 1 = disjoint).
//
// The grid derives from the mechanism registry exactly like E13: every
// descriptor appears on every base its declared domain admits (the
// α = 1 and d = 1 specials on their own bases).
func E14ShareStability(cfg Config) *stats.Table {
	t := stats.NewTable("E14 — cost-share stability under ε-perturbations (n=10)",
		"base", "mechanism", "eps", "trials", "share drift", "max drift", "served churn")
	trials := cfg.trials(6, 2)
	const n = 10
	epsilons := []float64{0.02, 0.1}

	// Perturbation bases: one Euclidean (mobility), one line (mobility
	// in d = 1), one α = 1 (the airport specials), one abstract
	// symmetric (cost noise).
	type base struct {
		name     string
		scenario string
		alpha    float64
	}
	bases := []base{
		{"uniform", "uniform", 2},
		{"line", "line", 2},
		{"alpha1", "uniform", 1},
		{"symmetric", "symmetric", 2},
	}
	type combo struct {
		b   base
		d   mechreg.Descriptor
		eps float64
	}
	var combos []combo
	for bi, b := range bases {
		sc, err := instances.ScenarioByName(b.scenario)
		if err != nil {
			panic(err)
		}
		probe := sc.Gen(setupRNG(141, bi), n, b.alpha)
		for _, d := range mechreg.All() {
			if d.Supports != nil && d.Supports(probe) != nil {
				continue
			}
			for _, eps := range epsilons {
				combos = append(combos, combo{b, d, eps})
			}
		}
	}
	type res struct {
		drift float64
		churn float64
	}
	out := cells(cfg, 141, len(combos)*trials, func(task int, rng *rand.Rand) res {
		c := combos[task/trials]
		sc, err := instances.ScenarioByName(c.b.scenario)
		if err != nil {
			panic(err)
		}
		nw := sc.Gen(rng, n, c.b.alpha)
		u := mech.RandomProfile(rng, n, 60)
		before := runCold(nw, c.d.Name, u)
		perturbed := nw.Snapshot()
		if err := perturb(rng, perturbed, c.eps); err != nil {
			panic(err)
		}
		after := runCold(perturbed, c.d.Name, u)
		return res{
			drift: shareDrift(before, after),
			churn: servedChurn(before.Receivers, after.Receivers),
		}
	})
	for row := 0; row < len(combos); row++ {
		c := combos[row]
		var drifts, churns []float64
		for trial := 0; trial < trials; trial++ {
			r := out[row*trials+trial]
			drifts = append(drifts, r.drift)
			churns = append(churns, r.churn)
		}
		sd := stats.Summarize(drifts)
		sc := stats.Summarize(churns)
		t.Add(c.b.name, c.d.Name, fmt.Sprintf("%g", c.eps), fmt.Sprint(trials),
			stats.F(sd.Mean), stats.F(sd.Max), stats.F(sc.Mean))
	}
	t.Note("perturbation: mobility random-walk of scale eps on Euclidean bases, +/-eps relative cost noise on the symmetric base")
	t.Note("share drift = sum |x_i - x'_i| / base total charge; served churn = Jaccard distance of the served sets")
	t.Note("grid derived from the mechanism registry; combos outside a declared domain are skipped")
	return t
}

// runCold evaluates one mechanism cold over a network.
func runCold(nw *wireless.Network, name string, u mech.Profile) mech.Outcome {
	m, err := query.NewEvaluator(nw).Mechanism(name)
	if err != nil {
		panic(err) // the probe admitted this combo; same class here
	}
	return m.Run(u)
}

// perturb applies one ε-scaled delta through the lifecycle ops:
// Euclidean networks get a mobility step on every non-source station
// (gaussian, stddev ε × coordinate spread); abstract ones get
// independent relative cost noise c · (1 + ε·U[−1,1]) on every edge.
func perturb(rng *rand.Rand, nw *wireless.Network, eps float64) error {
	if nw.IsEuclidean() {
		spread := 0.0
		pts := nw.Points()
		for d := 0; d < nw.Dim(); d++ {
			lo, hi := pts[0][d], pts[0][d]
			for _, p := range pts {
				if p[d] < lo {
					lo = p[d]
				}
				if p[d] > hi {
					hi = p[d]
				}
			}
			if s := hi - lo; s > spread {
				spread = s
			}
		}
		if spread == 0 {
			spread = 1
		}
		for s := 0; s < nw.N(); s++ {
			if s == nw.Source() {
				continue
			}
			p := pts[s].Clone()
			for d := range p {
				p[d] += rng.NormFloat64() * eps * spread
			}
			if _, err := nw.MoveStation(s, p); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < nw.N(); i++ {
		for j := i + 1; j < nw.N(); j++ {
			c := nw.C(i, j) * (1 + eps*(rng.Float64()*2-1))
			if _, err := nw.SetCost(i, j, c); err != nil {
				return err
			}
		}
	}
	return nil
}

// shareDrift is the L1 distance between two share vectors, normalized
// by the base outcome's total charge (0/0 reads as perfectly stable).
func shareDrift(before, after mech.Outcome) float64 {
	// Both sums iterate in ascending agent order (detorder contract):
	// float addition does not commute exactly, so summing in map order
	// would make the drift's low bits a function of Go's per-range
	// iteration seed.
	total := 0.0
	for _, a := range detorder.Keys(before.Shares) {
		total += math.Abs(before.Shares[a])
	}
	agents := map[int]bool{}
	for a := range before.Shares {
		agents[a] = true
	}
	for a := range after.Shares {
		agents[a] = true
	}
	diff := 0.0
	for _, a := range detorder.Keys(agents) {
		diff += math.Abs(before.Shares[a] - after.Shares[a])
	}
	if diff == 0 {
		return 0
	}
	if total == 0 {
		return 1 // charged nobody before, somebody after: maximal instability
	}
	return diff / total
}

// servedChurn is the Jaccard distance of the served sets.
func servedChurn(before, after []int) float64 {
	a := map[int]bool{}
	for _, r := range before {
		a[r] = true
	}
	inter, union := 0, len(a)
	for _, r := range after {
		if a[r] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return 1 - float64(inter)/float64(union)
}
