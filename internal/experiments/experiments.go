// Package experiments implements the simulated evaluation of the paper:
// one experiment per theorem/figure (see DESIGN.md §4), each producing a
// text table in the style of an evaluation section. The paper itself is
// purely theoretical, so these tables are the "figures" the reproduction
// regenerates: measured budget-balance ratios against exact optima,
// axiom-violation counts under adversarial deviation sampling, the Fig. 1
// collusion walkthrough, and the Fig. 2 empty-core family.
//
// Every experiment is organized as a batch of independent cells — one
// cell per (configuration, trial) pair, each with its own derived RNG —
// scheduled on the internal/engine worker pool (DESIGN.md §5). Cell
// results are collected in index order, so the rendered tables are
// byte-identical at every worker count.
package experiments

import (
	"bytes"
	"io"
	"math/rand"

	"wmcs/internal/engine"
	"wmcs/internal/stats"
)

// Config tunes experiment sizes and scheduling. Quick mode shrinks trial
// counts so the whole suite stays in benchmark-friendly time.
type Config struct {
	Quick bool
	// Workers bounds the evaluation engine's concurrency: 1 runs fully
	// serial, anything ≤ 0 selects GOMAXPROCS. The bound is global —
	// RunAll threads one token pool through every nested Map — and
	// output is byte-identical at every setting.
	Workers int
	// pool, when set (RunAll), is the shared engine pool enforcing the
	// global Workers bound across experiments and their cells.
	pool *engine.Pool
}

func (c Config) trials(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Pool returns the engine pool the experiment cells are scheduled on:
// the shared pool inside a RunAll, or a fresh one for a standalone
// experiment run (where a single cells() Map is live at a time, so the
// per-call pool is the global bound).
func (c Config) Pool() *engine.Pool {
	if c.pool != nil {
		return c.pool
	}
	return engine.New(c.Workers)
}

// shared returns a copy of c carrying one pool for every nested Map.
func (c Config) shared() Config {
	c.pool = engine.New(c.Workers)
	return c
}

// cells evaluates fn over n independent tasks under cfg's pool and
// returns the results in task order. Each task receives a private RNG
// derived from (seed, task), so results do not depend on scheduling; an
// experiment that needs a second stream inside one task (e.g. to rebuild
// a per-row network shared by many cells) derives it with
// engine.RNG(seed, setupTask+k) for setupTask offsets ≥ setupBase.
func cells[T any](cfg Config, seed int64, n int, fn func(task int, rng *rand.Rand) T) []T {
	return engine.Map(cfg.Pool(), n, func(i int) T { return fn(i, engine.RNG(seed, i)) })
}

// setupBase offsets the task space used for per-row setup RNGs (network
// construction shared by every trial of a row) away from per-cell RNGs.
const setupBase = 1 << 20

// setupRNG derives the RNG for per-row instance construction: every cell
// of a row rebuilds the identical instance from it, which keeps cells
// share-nothing without sharing a generator.
func setupRNG(seed int64, row int) *rand.Rand {
	return engine.RNG(seed, setupBase+row)
}

// Experiment is a named runner in the registry.
type Experiment struct {
	ID   string
	Name string
	Run  func(cfg Config) *stats.Table
}

// All lists every experiment in DESIGN.md §4 order.
var All = []Experiment{
	{ID: "E1", Name: "Lemma 2.1: universal-tree cost is monotone & submodular", Run: E01UniversalSubmodular},
	{ID: "E2", Name: "§2.1: universal-tree Shapley mechanism (BB, GSP)", Run: E02UniversalShapley},
	{ID: "E3", Name: "§2.1: universal-tree MC mechanism (efficiency, SP)", Run: E03UniversalMC},
	{ID: "E4", Name: "Fig. 1: NWST collusion counterexample replay", Run: E04Fig1Collusion},
	{ID: "E5", Name: "Thm 2.2/2.3: NWST mechanism ratio & SP (oracle ablation A2)", Run: E05NWSTMechanism},
	{ID: "E6", Name: "§2.2.3: wireless mechanism β-BB vs 3·ln(k+1)", Run: E06WirelessBB},
	{ID: "E7", Name: "Lemma 3.1 (α=1): airport mechanisms", Run: E07Alpha1},
	{ID: "E8", Name: "Lemma 3.1 (d=1): line mechanisms & canonical-form gap", Run: E08Line},
	{ID: "E9", Name: "Lemma 3.3 / Fig. 2: pentagon empty core", Run: E09PentagonCore},
	{ID: "E10", Name: "Lemmas 3.4/3.5: MST broadcast ratio vs 3^d−1", Run: E10MSTRatio},
	{ID: "E11", Name: "Thms 3.6/3.7: JV moat mechanism (weights ablation A3)", Run: E11MoatMechanism},
	{ID: "E12", Name: "Multicast heuristics vs exact optimum (who wins where)", Run: E12MulticastHeuristics},
	{ID: "E13", Name: "Scenario sweep: mechanisms × topology families", Run: E13ScenarioSweep},
	{ID: "E14", Name: "Lifecycle: cost-share stability under ε-perturbations", Run: E14ShareStability},
	{ID: "E15", Name: "Lifecycle: delta-aware update latency (DESIGN.md §12)", Run: E15UpdateLatency},
	{ID: "E15b", Name: "Lifecycle: full-rebuild update baseline (control for E15)", Run: E15bUpdateLatencyFull},
	{ID: "E16", Name: "Parallel tier: exact Shapley, blocked flat-table (DESIGN.md §14)", Run: E16ParallelShapley},
	{ID: "E16b", Name: "Parallel tier: exact Shapley, memo-map baseline (control for E16)", Run: E16bSerialShapley},
	{ID: "A1", Name: "Ablation: universal tree choice SPT vs MST", Run: A01TreeChoice},
	{ID: "A4", Name: "Ablation: efficiency loss, Shapley vs incremental [38]", Run: A04EfficiencyLoss},
}

// RunAll executes every experiment and renders the tables to w in
// registry order. Experiments run concurrently under cfg's pool (each
// rendering into its own buffer), and their cells are parallel too, so
// the suite's wall clock approaches the heaviest single cell — while the
// bytes written are identical to a Workers: 1 run.
func RunAll(w io.Writer, cfg Config) {
	cfg = cfg.shared()
	rendered := engine.Map(cfg.Pool(), len(All), func(i int) []byte {
		var buf bytes.Buffer
		All[i].Run(cfg).Render(&buf)
		return buf.Bytes()
	})
	for _, b := range rendered {
		w.Write(b)
	}
}

// RunAllJSON is RunAll with machine-readable output: one JSON object per
// table, one per line, in registry order.
func RunAllJSON(w io.Writer, cfg Config) error {
	cfg = cfg.shared()
	tables := engine.Map(cfg.Pool(), len(All), func(i int) *stats.Table {
		return All[i].Run(cfg)
	})
	for _, t := range tables {
		if err := t.RenderJSON(w); err != nil {
			return err
		}
	}
	return nil
}

// Lookup returns the experiment with the given ID, or nil.
func Lookup(id string) *Experiment {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}
