// Package experiments implements the simulated evaluation of the paper:
// one experiment per theorem/figure (see DESIGN.md §4), each producing a
// text table in the style of an evaluation section. The paper itself is
// purely theoretical, so these tables are the "figures" the reproduction
// regenerates: measured budget-balance ratios against exact optima,
// axiom-violation counts under adversarial deviation sampling, the Fig. 1
// collusion walkthrough, and the Fig. 2 empty-core family.
package experiments

import (
	"io"

	"wmcs/internal/stats"
)

// Config tunes experiment sizes. Quick mode shrinks trial counts so the
// whole suite stays in benchmark-friendly time.
type Config struct {
	Quick bool
}

func (c Config) trials(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Experiment is a named runner in the registry.
type Experiment struct {
	ID   string
	Name string
	Run  func(cfg Config) *stats.Table
}

// All lists every experiment in DESIGN.md §4 order.
var All = []Experiment{
	{ID: "E1", Name: "Lemma 2.1: universal-tree cost is monotone & submodular", Run: E01UniversalSubmodular},
	{ID: "E2", Name: "§2.1: universal-tree Shapley mechanism (BB, GSP)", Run: E02UniversalShapley},
	{ID: "E3", Name: "§2.1: universal-tree MC mechanism (efficiency, SP)", Run: E03UniversalMC},
	{ID: "E4", Name: "Fig. 1: NWST collusion counterexample replay", Run: E04Fig1Collusion},
	{ID: "E5", Name: "Thm 2.2/2.3: NWST mechanism ratio & SP (oracle ablation A2)", Run: E05NWSTMechanism},
	{ID: "E6", Name: "§2.2.3: wireless mechanism β-BB vs 3·ln(k+1)", Run: E06WirelessBB},
	{ID: "E7", Name: "Lemma 3.1 (α=1): airport mechanisms", Run: E07Alpha1},
	{ID: "E8", Name: "Lemma 3.1 (d=1): line mechanisms & canonical-form gap", Run: E08Line},
	{ID: "E9", Name: "Lemma 3.3 / Fig. 2: pentagon empty core", Run: E09PentagonCore},
	{ID: "E10", Name: "Lemmas 3.4/3.5: MST broadcast ratio vs 3^d−1", Run: E10MSTRatio},
	{ID: "E11", Name: "Thms 3.6/3.7: JV moat mechanism (weights ablation A3)", Run: E11MoatMechanism},
	{ID: "E12", Name: "Multicast heuristics vs exact optimum (who wins where)", Run: E12MulticastHeuristics},
	{ID: "A1", Name: "Ablation: universal tree choice SPT vs MST", Run: A01TreeChoice},
	{ID: "A4", Name: "Ablation: efficiency loss, Shapley vs incremental [38]", Run: A04EfficiencyLoss},
}

// RunAll executes every experiment and renders the tables to w.
func RunAll(w io.Writer, cfg Config) {
	for _, e := range All {
		t := e.Run(cfg)
		t.Render(w)
	}
}

// Lookup returns the experiment with the given ID, or nil.
func Lookup(id string) *Experiment {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}
