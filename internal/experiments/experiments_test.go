package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// Every experiment must run in quick mode and produce a non-empty table.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(cfg)
			if tab == nil || len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if buf.Len() == 0 {
				t.Fatalf("%s rendered nothing", e.ID)
			}
		})
	}
}

func TestRunAllAndLookup(t *testing.T) {
	var buf bytes.Buffer
	RunAll(&buf, Config{Quick: true})
	out := buf.String()
	for _, id := range []string{"E1", "E4", "E9", "A1"} {
		if Lookup(id) == nil {
			t.Errorf("Lookup(%s) = nil", id)
		}
	}
	if Lookup("E99") != nil {
		t.Error("Lookup of unknown id should be nil")
	}
	if !strings.Contains(out, "Fig. 1") || !strings.Contains(out, "pentagon") {
		t.Error("RunAll output missing expected tables")
	}
}

// The E1 violation counts must be zero: Lemma 2.1 is a theorem.
func TestE01NoViolations(t *testing.T) {
	tab := E01UniversalSubmodular(Config{Quick: true})
	for _, row := range tab.Rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("submodularity violation reported: %v", row)
		}
	}
}

// The E4 table must report the collusion success at every ε.
func TestE04AlwaysBreaksGSP(t *testing.T) {
	tab := E04Fig1Collusion(Config{Quick: true})
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" || row[len(row)-2] != "true" {
			t.Fatalf("Fig. 1 replay did not break GSP: %v", row)
		}
	}
}

// The E9 pentagon core must be empty at every listed radius.
func TestE09CoreEmpty(t *testing.T) {
	tab := E09PentagonCore(Config{Quick: true})
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("pentagon core not empty: %v", row)
		}
	}
}

// E10's measured maxima must respect the analytic bound at d ≥ 2.
func TestE10RespectsBound(t *testing.T) {
	tab := E10MSTRatio(Config{Quick: true})
	for _, row := range tab.Rows {
		if row[0] == "1" {
			continue // the d=1 row reports measured values only
		}
		maxCol, boundCol := row[5], row[8]
		var maxV, boundV float64
		if _, err := sscan(maxCol, &maxV); err != nil {
			t.Fatalf("bad max %q", maxCol)
		}
		if _, err := sscan(boundCol, &boundV); err != nil {
			t.Fatalf("bad bound %q", boundCol)
		}
		if maxV > boundV+1e-9 {
			t.Fatalf("MST ratio %g exceeds bound %g: %v", maxV, boundV, row)
		}
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
