package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"wmcs/internal/instances"
	"wmcs/internal/stats"
)

// Every experiment must run in quick mode and produce a non-empty table.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(cfg)
			if tab == nil || len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			if buf.Len() == 0 {
				t.Fatalf("%s rendered nothing", e.ID)
			}
		})
	}
}

// quickSuite renders the quick suite once, serially and at 8 workers,
// and shares the bytes across tests: the suite is expensive under the
// race detector, so every test that only needs its output reuses this.
var quickSuite = sync.OnceValues(func() (serial, parallel []byte) {
	var s, p bytes.Buffer
	RunAll(&s, Config{Quick: true, Workers: 1})
	RunAll(&p, Config{Quick: true, Workers: 8})
	return s.Bytes(), p.Bytes()
})

func TestRunAllAndLookup(t *testing.T) {
	serial, _ := quickSuite()
	out := string(serial)
	for _, id := range []string{"E1", "E4", "E9", "E13", "A1"} {
		if Lookup(id) == nil {
			t.Errorf("Lookup(%s) = nil", id)
		}
	}
	if Lookup("E99") != nil {
		t.Error("Lookup of unknown id should be nil")
	}
	if !strings.Contains(out, "Fig. 1") || !strings.Contains(out, "pentagon") || !strings.Contains(out, "scenario sweep") {
		t.Error("RunAll output missing expected tables")
	}
}

// The engine's core guarantee: the rendered suite is byte-identical no
// matter how many workers evaluate it.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	serial, parallel := quickSuite()
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("parallel output diverges from serial:\n%s",
			firstDiff(string(serial), string(parallel)))
	}
}

// firstDiff returns a window around the first differing byte, to keep
// failure output readable.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 80
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first divergence at byte %d:\nserial:   %q\nparallel: %q",
				i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d bytes", len(a), len(b))
}

// Single experiments must also be worker-count independent, including the
// ones that rebuild per-row instances from setup seeds. E6 is left out —
// it dominates the suite's cost and the full-suite comparison above
// already covers it.
func TestExperimentsWorkerIndependent(t *testing.T) {
	for _, id := range []string{"E2", "E5", "E13"} {
		e := Lookup(id)
		var serial, parallel bytes.Buffer
		e.Run(Config{Quick: true, Workers: 1}).Render(&serial)
		e.Run(Config{Quick: true, Workers: 4}).Render(&parallel)
		if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
			t.Errorf("%s diverges across worker counts:\n%s", id, firstDiff(serial.String(), parallel.String()))
		}
	}
}

// On machines with real parallelism the engine must buy a substantial
// wall-clock win on the suite. Skipped below 4 cores, where the
// byte-identity tests above still guarantee correctness.
func TestRunAllParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race detector skews timing; byte-identity tests still cover correctness")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("needs ≥4 cores, have %d", runtime.GOMAXPROCS(0))
	}
	start := time.Now()
	RunAll(io.Discard, Config{Quick: true, Workers: 1})
	serial := time.Since(start)
	start = time.Now()
	RunAll(io.Discard, Config{Quick: true})
	parallel := time.Since(start)
	// Timing on shared machines is noisy, so only a gross inversion —
	// parallel clearly *slower* than serial — fails; the logged ratio
	// (and BenchmarkRunAllSerial/Parallel) carry the real measurement.
	// The full-suite bar is 2× on ≥4 cores.
	if parallel > serial*5/4 {
		t.Errorf("parallel quick suite %v vs serial %v: parallel is slower at %d cores",
			parallel, serial, runtime.GOMAXPROCS(0))
	}
	t.Logf("serial %v, parallel %v (%.1f×)", serial, parallel, float64(serial)/float64(parallel))
}

func TestRunAllJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAllJSON(&buf, Config{Quick: true}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(All) {
		t.Fatalf("got %d JSON lines, want %d", len(lines), len(All))
	}
	for i, line := range lines {
		var tab stats.Table
		if err := json.Unmarshal([]byte(line), &tab); err != nil {
			t.Fatalf("line %d is not a table: %v", i, err)
		}
		if tab.Title == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("line %d decoded to an empty table: %+v", i, tab)
		}
	}
}

// E13 must cover every registered scenario.
func TestE13CoversAllScenarios(t *testing.T) {
	tab := E13ScenarioSweep(Config{Quick: true})
	seen := map[string]bool{}
	for _, row := range tab.Rows {
		seen[row[0]] = true
	}
	for _, name := range instances.ScenarioNames() {
		if !seen[name] {
			t.Errorf("E13 missing scenario %q", name)
		}
	}
}

// The E1 violation counts must be zero: Lemma 2.1 is a theorem.
func TestE01NoViolations(t *testing.T) {
	tab := E01UniversalSubmodular(Config{Quick: true})
	for _, row := range tab.Rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("submodularity violation reported: %v", row)
		}
	}
}

// The E4 table must report the collusion success at every ε.
func TestE04AlwaysBreaksGSP(t *testing.T) {
	tab := E04Fig1Collusion(Config{Quick: true})
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" || row[len(row)-2] != "true" {
			t.Fatalf("Fig. 1 replay did not break GSP: %v", row)
		}
	}
}

// The E9 pentagon core must be empty at every listed radius.
func TestE09CoreEmpty(t *testing.T) {
	tab := E09PentagonCore(Config{Quick: true})
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("pentagon core not empty: %v", row)
		}
	}
}

// E10's measured maxima must respect the analytic bound at d ≥ 2.
func TestE10RespectsBound(t *testing.T) {
	tab := E10MSTRatio(Config{Quick: true})
	for _, row := range tab.Rows {
		if row[0] == "1" {
			continue // the d=1 row reports measured values only
		}
		maxCol, boundCol := row[5], row[8]
		var maxV, boundV float64
		if _, err := sscan(maxCol, &maxV); err != nil {
			t.Fatalf("bad max %q", maxCol)
		}
		if _, err := sscan(boundCol, &boundV); err != nil {
			t.Fatalf("bad bound %q", boundCol)
		}
		if maxV > boundV+1e-9 {
			t.Fatalf("MST ratio %g exceeds bound %g: %v", maxV, boundV, row)
		}
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
