package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"wmcs/internal/check"
	"wmcs/internal/euclid1"
	"wmcs/internal/instances"
	"wmcs/internal/jv"
	"wmcs/internal/mech"
	"wmcs/internal/mechreg"
	"wmcs/internal/nwst"
	"wmcs/internal/query"
	"wmcs/internal/sharing"
	"wmcs/internal/stats"
	"wmcs/internal/universal"
	"wmcs/internal/wireless"
	"wmcs/internal/wmech"
)

// E06WirelessBB measures the §2.2.3 wireless mechanism: Σshares/C*(R)
// against the 3·ln(k+1) guarantee, cost recovery, axioms and SP. This is
// the heaviest experiment of the suite (exact optima at n = 12), so it
// parallelizes at the finest grain: one cell per (model, n, trial).
func E06WirelessBB(cfg Config) *stats.Table {
	t := stats.NewTable("E6 — §2.2.3 wireless mechanism: Σshares/C* vs 3·ln(k+1)",
		"model", "n", "trials", "mean ratio", "max ratio", "bound", "axiom viol", "SP viol")
	trials := cfg.trials(8, 2)
	models := []string{"euclid-d2-a2", "symmetric"}
	ns := []int{8, 10, 12}
	nRows := len(models) * len(ns)
	type res struct {
		ratio     float64
		hasRatio  bool
		axiom, sp int
	}
	out := cells(cfg, 106, nRows*trials, func(task int, rng *rand.Rand) res {
		row := task / trials
		trial := task % trials
		model := models[row/len(ns)]
		n := ns[row%len(ns)]
		var nw *wireless.Network
		if model == "euclid-d2-a2" {
			nw = instances.RandomEuclidean(rng, n, 2, 2, 10)
		} else {
			nw = instances.RandomSymmetric(rng, n, 0.5, 10)
		}
		var r res
		// One query evaluator per trial network: the rich probe, the
		// random-profile probe and every SP deviation below share the
		// reduction and contraction-state pool.
		ev := query.NewEvaluator(nw, query.WithOracle(nwst.KleinRaviOracle))
		m, _ := ev.Mechanism(mechreg.WirelessBB)
		rich := mech.UniformProfile(n, 1e8)
		o := m.Run(rich)
		if len(o.Receivers) > 0 {
			opt, _ := wireless.ExactMEMT(nw, o.Receivers)
			if opt > 1e-12 {
				r.ratio = o.TotalShares() / opt
				r.hasRatio = true
			}
		}
		u := mech.RandomProfile(rng, n, 50)
		ro := m.Run(u)
		if mech.CheckNPT(ro) != nil || mech.CheckVP(u, ro) != nil {
			r.axiom++
		}
		if len(ro.Receivers) > 0 && mech.CheckCostRecovery(ro) != nil {
			r.axiom++
		}
		if trial == 0 && mech.CheckStrategyproof(m, u, nil) != nil {
			r.sp++
		}
		return r
	})
	for row := 0; row < nRows; row++ {
		model := models[row/len(ns)]
		n := ns[row%len(ns)]
		var ratios []float64
		axiom, sp := 0, 0
		for trial := 0; trial < trials; trial++ {
			r := out[row*trials+trial]
			if r.hasRatio {
				ratios = append(ratios, r.ratio)
			}
			axiom += r.axiom
			sp += r.sp
		}
		s := stats.Summarize(ratios)
		t.Add(model, fmt.Sprint(n), fmt.Sprint(len(ratios)), stats.F(s.Mean), stats.F(s.Max),
			stats.F(wmech.BetaBound(n-1)), fmt.Sprint(axiom), fmt.Sprint(sp))
	}
	t.Note("paper: 3·ln(k+1)-BB with the 1.5·ln k oracle; measured ratios sit far below the bound")
	t.Note("nonzero SP counts inherit finding F3 from the inner §2.2.2 mechanism (see EXPERIMENTS.md)")
	return t
}

// E07Alpha1 validates Theorem 3.2 for α = 1: the airport Shapley
// mechanism is exactly 1-BB and group strategyproof, the MC mechanism is
// efficient, and the Shapley efficiency loss is reported. One cell per
// (n, profile); the per-n network comes from the row's setup seed.
func E07Alpha1(cfg Config) *stats.Table {
	t := stats.NewTable("E7 — Lemma 3.1/Thm 3.2 (α=1): airport mechanisms",
		"n", "profiles", "max |Σc−C*|", "GSP viol", "MC eff gap", "mean NW(Sh)/NW(MC)")
	profiles := cfg.trials(25, 5)
	coalitions := cfg.trials(40, 8)
	ns := []int{8, 16, 32}
	type res struct {
		bb, eff float64
		gsp     int
		loss    float64
		hasLoss bool
	}
	out := cells(cfg, 107, len(ns)*profiles, func(task int, rng *rand.Rand) res {
		nIdx := task / profiles
		n := ns[nIdx]
		nw := instances.RandomEuclidean(setupRNG(107, nIdx), n, 2, 1, 10)
		g := euclid1.NewAirportGame(nw)
		shap := g.ShapleyMechanism()
		mc := g.MCMechanism()
		u := mech.RandomProfile(rng, n, 15)
		var r res
		o := shap.Run(u)
		opt := wireless.OptimalMulticastCost(nw, o.Receivers)
		r.bb = math.Abs(o.TotalShares() - opt)
		if mech.CheckGroupStrategyproof(shap, u, rng, coalitions, nil) != nil {
			r.gsp++
		}
		om := mc.Run(u)
		if n <= 16 {
			best := mech.BruteForceNetWorth(nw.AllReceivers(), u, g.Cost)
			r.eff = math.Abs(om.NetWorth(u) - best)
		}
		if nm := om.NetWorth(u); nm > 1e-9 {
			r.loss = o.NetWorth(u) / nm
			r.hasLoss = true
		}
		return r
	})
	for nIdx, n := range ns {
		maxBB, maxEff := 0.0, 0.0
		gsp := 0
		var loss []float64
		for p := 0; p < profiles; p++ {
			r := out[nIdx*profiles+p]
			maxBB = math.Max(maxBB, r.bb)
			maxEff = math.Max(maxEff, r.eff)
			gsp += r.gsp
			if r.hasLoss {
				loss = append(loss, r.loss)
			}
		}
		t.Add(fmt.Sprint(n), fmt.Sprint(profiles), stats.F(maxBB), fmt.Sprint(gsp),
			stats.F(maxEff), stats.F(stats.Summarize(loss).Mean))
	}
	t.Note("paper: Shapley is optimally (1-)BB and GSP; MC maximizes net worth; all gaps must be ~0")
	return t
}

// E08Line validates the d = 1 case and measures two reproduction
// findings: (a) the gap between the paper's Lemma 3.1 chain construction
// and the true optimum — finding F1: the canonical form is occasionally
// suboptimal — and (b) an empirical submodularity probe of the *true*
// optimal cost. One cell per (n, α, trial).
func E08Line(cfg Config) *stats.Table {
	t := stats.NewTable("E8 — Lemma 3.1/Thm 3.2 (d=1): line mechanisms & canonical-form gap",
		"n", "α", "trials", "max |Σc−C*|", "chain>opt (%)", "max chain/opt", "submod viol", "GSP viol")
	trials := cfg.trials(20, 4)
	submodSamples := cfg.trials(80, 15)
	coalitions := cfg.trials(30, 6)
	ns := []int{8, 10}
	alphas := []float64{2, 3}
	nRows := len(ns) * len(alphas)
	type res struct {
		bb           float64
		chainChecked bool
		chainWorse   bool
		chainRatio   float64
		submod, gsp  int
	}
	out := cells(cfg, 108, nRows*trials, func(task int, rng *rand.Rand) res {
		row := task / trials
		n := ns[row/len(alphas)]
		alpha := alphas[row%len(alphas)]
		nw := instances.RandomLine(rng, n, alpha, 10)
		g := euclid1.NewLineGame(nw)
		m := g.ShapleyMechanism()
		u := mech.RandomProfile(rng, n, 40)
		var r res
		r.chainRatio = 1.0
		o := m.Run(u)
		if len(o.Receivers) > 0 {
			opt := g.Cost(o.Receivers)
			r.bb = math.Abs(o.TotalShares() - opt)
		}
		// Canonical-form gap on a random receiver subset.
		var R []int
		for _, a := range nw.AllReceivers() {
			if rng.Intn(2) == 0 {
				R = append(R, a)
			}
		}
		if len(R) > 0 {
			opt, _ := wireless.LineOptimal(nw, R)
			chain, _ := wireless.LineChainCanonical(nw, R)
			r.chainChecked = true
			if chain > opt+1e-9 {
				r.chainWorse = true
				r.chainRatio = chain / opt
			}
		}
		if sharing.CheckSubmodular(g.Cost, nw.AllReceivers(), rng, submodSamples, 1e-9) != nil {
			r.submod++
		}
		if mech.CheckGroupStrategyproof(m, u, rng, coalitions, nil) != nil {
			r.gsp++
		}
		return r
	})
	for row := 0; row < nRows; row++ {
		n := ns[row/len(alphas)]
		alpha := alphas[row%len(alphas)]
		maxBB, maxChainRatio := 0.0, 1.0
		chainWorse, chainChecked := 0, 0
		submod, gsp := 0, 0
		for trial := 0; trial < trials; trial++ {
			r := out[row*trials+trial]
			maxBB = math.Max(maxBB, r.bb)
			maxChainRatio = math.Max(maxChainRatio, r.chainRatio)
			if r.chainChecked {
				chainChecked++
			}
			if r.chainWorse {
				chainWorse++
			}
			submod += r.submod
			gsp += r.gsp
		}
		pct := 0.0
		if chainChecked > 0 {
			pct = 100 * float64(chainWorse) / float64(chainChecked)
		}
		t.Add(fmt.Sprint(n), stats.F(alpha), fmt.Sprint(trials), stats.F(maxBB),
			stats.F(pct), stats.F(maxChainRatio), fmt.Sprint(submod), fmt.Sprint(gsp))
	}
	t.Note("finding: the paper's chain construction is not always optimal (see wireless.LineChainCanonical)")
	t.Note("C* here is the exact interval-state optimum; submodularity violations would undercut Lemma 3.1's proof route")
	return t
}

// E09PentagonCore reproduces Fig. 2 / Lemma 3.3: on the pentagon family
// the 5-agent multicast game has an empty core, certified both by the
// lemma's symmetry inequalities and by LP infeasibility. The instances
// are deterministic; one cell per radius m.
func E09PentagonCore(cfg Config) *stats.Table {
	t := stats.NewTable("E9 — Lemma 3.3 / Fig. 2: pentagon family core",
		"m", "stations", "C*(R)", "C*(pair)", "C*(single)", "pair slack", "single slack", "core empty (LP)")
	ms := []float64{6, 8, 10, 16, 25}
	if cfg.Quick {
		ms = []float64{6}
	}
	rows := cells(cfg, 109, len(ms), func(task int, _ *rand.Rand) []string {
		m := ms[task]
		p := instances.Pentagon(m, 2)
		// The cell evaluates C* on overlapping agent subsets three times
		// over (the lemma inequalities, the 2^5−1 LP constraint sweep, and
		// the reported columns), and each call is a Dreyfus–Wagner Steiner
		// solve on a few-hundred-node relay graph. Memoize by subset
		// bitmask: every caller below passes agents drawn from
		// p.Externals, and C* is a set function, so the first caller's
		// value serves them all.
		bit := make(map[int]uint32, len(p.Externals))
		for i, a := range p.Externals {
			bit[a] = 1 << i
		}
		memo := make(map[uint32]float64, 1<<len(p.Externals))
		cost := func(R []int) float64 {
			var key uint32
			for _, a := range R {
				key |= bit[a]
			}
			if v, ok := memo[key]; ok {
				return v
			}
			v := p.Cost(R)
			memo[key] = v
			return v
		}
		pairSlack, singleSlack := check.Lemma33Inequalities(p.Externals, cost)
		ok, _ := check.CoreNonEmpty(p.Externals, cost)
		grand := cost(p.Externals)
		pair := cost(p.Externals[:2])
		single := cost(p.Externals[:1])
		return []string{stats.F(m), fmt.Sprint(p.Net.N()), stats.F(grand), stats.F(pair), stats.F(single),
			stats.F(pairSlack), stats.F(singleSlack), fmt.Sprint(!ok)}
	})
	for _, r := range rows {
		t.Add(r...)
	}
	t.Note("lemma: pair slack < 0 and single slack > 0 force an empty core as m grows")
	t.Note("the LP can certify emptiness before the pair inequality binds: larger coalitions secede first")
	return t
}

// E10MSTRatio measures the MST broadcast heuristic (and the BIP baseline)
// against exact optima across dimensions, testing the 3^d − 1 bound of
// Lemma 3.4/[21] and the improved 6 at d = 2 [1]. One cell per
// ((d, α), trial).
func E10MSTRatio(cfg Config) *stats.Table {
	t := stats.NewTable("E10 — MST broadcast heuristic ratio vs 3^d−1 (and 6 at d=2)",
		"d", "α", "n", "trials", "MST mean", "MST max", "BIP mean", "BIP max", "bound")
	trials := cfg.trials(25, 5)
	type rowCfg struct {
		d     int
		alpha float64
	}
	var rowCfgs []rowCfg
	for _, d := range []int{1, 2, 3} {
		for _, alpha := range []float64{2, 4} {
			if alpha < float64(d) {
				continue // the bound's hypothesis α ≥ d
			}
			rowCfgs = append(rowCfgs, rowCfg{d, alpha})
		}
	}
	const n = 9
	type res struct {
		mst, bip float64
		valid    bool
	}
	out := cells(cfg, 110, len(rowCfgs)*trials, func(task int, rng *rand.Rand) res {
		rc := rowCfgs[task/trials]
		nw := instances.RandomEuclidean(rng, n, rc.d, rc.alpha, 10)
		R := nw.AllReceivers()
		opt, _ := wireless.ExactMEMT(nw, R)
		if opt <= 1e-12 {
			return res{}
		}
		_, am := wireless.MSTBroadcast(nw)
		_, ab := wireless.BIPBroadcast(nw)
		return res{mst: am.Total() / opt, bip: ab.Total() / opt, valid: true}
	})
	for ri, rc := range rowCfgs {
		var mstR, bipR []float64
		for trial := 0; trial < trials; trial++ {
			r := out[ri*trials+trial]
			if r.valid {
				mstR = append(mstR, r.mst)
				bipR = append(bipR, r.bip)
			}
		}
		bound := math.Pow(3, float64(rc.d)) - 1
		if rc.d == 2 {
			bound = 6
		}
		if rc.d == 1 {
			bound = 1 // MST on a line is the chain: optimal for broadcast? keep measured
		}
		sm, sb := stats.Summarize(mstR), stats.Summarize(bipR)
		t.Add(fmt.Sprint(rc.d), stats.F(rc.alpha), fmt.Sprint(n), fmt.Sprint(len(mstR)),
			stats.F(sm.Mean), stats.F(sm.Max), stats.F(sb.Mean), stats.F(sb.Max), stats.F(bound))
	}
	t.Note("paper: ratio ≤ 3^d−1 for α ≥ d [21], ≤ 6 for d=2 [1]; measured maxima must respect the bound")
	return t
}

// E11MoatMechanism validates Theorems 3.6/3.7: the JV moat mechanism is
// within 2(3^d−1)-BB (12 at d = 2) of the exact optimum, cross-monotonic,
// and group strategyproof; ablation A3 varies the weight maps f_i. One
// cell per ((d, n), trial).
func E11MoatMechanism(cfg Config) *stats.Table {
	t := stats.NewTable("E11 — Thm 3.6/3.7 JV moat mechanism: Σshares/C* vs 2(3^d−1)",
		"d", "n", "trials", "mean ratio", "max ratio", "bound", "xmono viol", "GSP viol", "A3 Δsplit")
	trials := cfg.trials(10, 3)
	samples := cfg.trials(40, 8)
	type rowCfg struct{ d, n int }
	var rowCfgs []rowCfg
	for _, d := range []int{2, 3} {
		for _, n := range []int{8, 12} {
			rowCfgs = append(rowCfgs, rowCfg{d, n})
		}
	}
	type res struct {
		ratio      float64
		hasRatio   bool
		xmono, gsp int
		split      float64
	}
	out := cells(cfg, 111, len(rowCfgs)*trials, func(task int, rng *rand.Rand) res {
		rc := rowCfgs[task/trials]
		nw := instances.RandomEuclidean(rng, rc.n, rc.d, float64(rc.d), 10)
		m := jv.NewMechanism(nw, nil)
		rich := mech.UniformProfile(rc.n, 1e8)
		o := m.Run(rich)
		var r res
		if len(o.Receivers) > 0 && rc.n <= 14 {
			opt, _ := wireless.ExactMEMT(nw, o.Receivers)
			if opt > 1e-12 {
				r.ratio = o.TotalShares() / opt
				r.hasRatio = true
			}
		}
		if sharing.CheckCrossMonotone(jv.Method(nw, nil), nw.AllReceivers(), rng, samples, 1e-9) != nil {
			r.xmono++
		}
		u := mech.RandomProfile(rng, rc.n, 60)
		if mech.CheckGroupStrategyproof(m, u, rng, samples, nil) != nil {
			r.gsp++
		}
		// A3: weighted family keeps the same total, moves the split.
		w := func(a int) float64 { return 1 + float64(a%3) }
		uni := jv.Moats(nw, nw.AllReceivers(), nil)
		wei := jv.Moats(nw, nw.AllReceivers(), w)
		for _, a := range nw.AllReceivers() {
			if dlt := math.Abs(uni.Shares[a] - wei.Shares[a]); dlt > r.split {
				r.split = dlt
			}
		}
		return r
	})
	for ri, rc := range rowCfgs {
		var ratios []float64
		xmono, gsp := 0, 0
		maxSplit := 0.0
		for trial := 0; trial < trials; trial++ {
			r := out[ri*trials+trial]
			if r.hasRatio {
				ratios = append(ratios, r.ratio)
			}
			xmono += r.xmono
			gsp += r.gsp
			maxSplit = math.Max(maxSplit, r.split)
		}
		s := stats.Summarize(ratios)
		t.Add(fmt.Sprint(rc.d), fmt.Sprint(rc.n), fmt.Sprint(trials), stats.F(s.Mean), stats.F(s.Max),
			stats.F(jv.BetaBound(rc.d)), fmt.Sprint(xmono), fmt.Sprint(gsp), stats.F(maxSplit))
	}
	t.Note("paper: 2(3^d−1)-BB (12 at d=2); the f_i family shifts shares without changing the total")
	return t
}

// A01TreeChoice is the universal-tree ablation: SPT versus MST universal
// trees change the induced broadcast cost and therefore every Shapley
// share; the table quantifies by how much. One cell per (n, trial).
func A01TreeChoice(cfg Config) *stats.Table {
	t := stats.NewTable("A1 — ablation: universal tree choice (SPT vs MST)",
		"n", "trials", "mean C_spt/C*", "mean C_mst/C*", "mean C_spt/C_mst")
	trials := cfg.trials(15, 4)
	ns := []int{8, 12}
	type res struct {
		rs, rm, rr float64
		valid      bool
	}
	out := cells(cfg, 115, len(ns)*trials, func(task int, rng *rand.Rand) res {
		n := ns[task/trials]
		nw := instances.RandomEuclidean(rng, n, 2, 2, 10)
		R := nw.AllReceivers()
		opt, _ := wireless.ExactMEMT(nw, R)
		if opt <= 1e-12 {
			return res{}
		}
		cs := universal.SPT(nw).Cost(R)
		cm := universal.MST(nw).Cost(R)
		return res{rs: cs / opt, rm: cm / opt, rr: cs / cm, valid: true}
	})
	for nIdx, n := range ns {
		var rs, rm, rr []float64
		for trial := 0; trial < trials; trial++ {
			r := out[nIdx*trials+trial]
			if r.valid {
				rs = append(rs, r.rs)
				rm = append(rm, r.rm)
				rr = append(rr, r.rr)
			}
		}
		t.Add(fmt.Sprint(n), fmt.Sprint(len(rs)),
			stats.F(stats.Summarize(rs).Mean), stats.F(stats.Summarize(rm).Mean),
			stats.F(stats.Summarize(rr).Mean))
	}
	t.Note("the paper notes universal trees can be arbitrarily more expensive than optimal (§2.1)")
	return t
}
