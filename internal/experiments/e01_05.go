package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"wmcs/internal/graph"
	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/nwst"
	"wmcs/internal/nwstmech"
	"wmcs/internal/sharing"
	"wmcs/internal/stats"
	"wmcs/internal/universal"
	"wmcs/internal/wireless"
)

// E01UniversalSubmodular validates Lemma 2.1: the cost function induced
// by a universal broadcast tree is non-decreasing and submodular, on both
// Euclidean and abstract symmetric networks. One cell per (n, model)
// pair; both trees are checked on the same instance inside the cell.
func E01UniversalSubmodular(cfg Config) *stats.Table {
	t := stats.NewTable("E1 — Lemma 2.1: universal-tree cost monotone & submodular",
		"model", "n", "tree", "samples", "violations")
	samples := cfg.trials(400, 60)
	ns := []int{8, 12, 16}
	models := []string{"euclid-d2-a2", "symmetric"}
	rows := cells(cfg, 101, len(ns)*len(models), func(task int, rng *rand.Rand) [][]string {
		n := ns[task/len(models)]
		model := models[task%len(models)]
		var nw *wireless.Network
		if model == "euclid-d2-a2" {
			nw = instances.RandomEuclidean(rng, n, 2, 2, 10)
		} else {
			nw = instances.RandomSymmetric(rng, n, 0.5, 10)
		}
		var out [][]string
		for _, treeName := range []string{"spt", "mst"} {
			var ut *universal.Tree
			if treeName == "spt" {
				ut = universal.SPT(nw)
			} else {
				ut = universal.MST(nw)
			}
			violations := 0
			if err := sharing.CheckSubmodular(ut.CostFunc(), nw.AllReceivers(), rng, samples, 1e-9); err != nil {
				violations++
			}
			out = append(out, []string{model, fmt.Sprint(n), treeName, fmt.Sprint(samples), fmt.Sprint(violations)})
		}
		return out
	})
	for _, rs := range rows {
		for _, r := range rs {
			t.Add(r...)
		}
	}
	t.Note("paper: Lemma 2.1 proves 0 violations; any nonzero count would falsify it")
	return t
}

// E02UniversalShapley validates the §2.1 Shapley mechanism: exact budget
// balance on the induced cost, NPT/VP/CS, strategyproofness and sampled
// group strategyproofness. One cell per (n, profile); the network of a
// row is rebuilt in each cell from the row's setup seed.
func E02UniversalShapley(cfg Config) *stats.Table {
	t := stats.NewTable("E2 — §2.1 universal-tree Shapley mechanism",
		"n", "profiles", "max |Σc−C|", "axiom viol", "SP viol", "GSP viol (sampled)")
	profiles := cfg.trials(30, 6)
	coalitions := cfg.trials(60, 10)
	ns := []int{8, 12, 16}
	type res struct {
		gap            float64
		axiom, sp, gsp int
	}
	out := cells(cfg, 102, len(ns)*profiles, func(task int, rng *rand.Rand) res {
		nIdx := task / profiles
		n := ns[nIdx]
		nw := instances.RandomEuclidean(setupRNG(102, nIdx), n, 2, 2, 10)
		m := universal.ShapleyMechanism(universal.SPT(nw))
		u := mech.RandomProfile(rng, n, 30)
		o := m.Run(u)
		var r res
		r.gap = math.Abs(o.TotalShares() - o.Cost)
		if mech.CheckAll(u, o) != nil {
			r.axiom++
		}
		if mech.CheckStrategyproof(m, u, nil) != nil {
			r.sp++
		}
		if mech.CheckGroupStrategyproof(m, u, rng, coalitions, nil) != nil {
			r.gsp++
		}
		return r
	})
	for nIdx, n := range ns {
		maxGap := 0.0
		axiom, sp, gsp := 0, 0, 0
		for p := 0; p < profiles; p++ {
			r := out[nIdx*profiles+p]
			maxGap = math.Max(maxGap, r.gap)
			axiom += r.axiom
			sp += r.sp
			gsp += r.gsp
		}
		t.Add(fmt.Sprint(n), fmt.Sprint(profiles), stats.F(maxGap),
			fmt.Sprint(axiom), fmt.Sprint(sp), fmt.Sprint(gsp))
	}
	t.Note("paper: BB exactly, group strategyproof [37,38]; all counts must be 0")
	return t
}

// E03UniversalMC validates the §2.1 MC mechanism: efficiency equals the
// brute-force optimum, strategyproofness, and the no-surplus property;
// it also reports the Shapley mechanism's efficiency loss, the tradeoff
// §1.1 discusses. One cell per (n, profile).
func E03UniversalMC(cfg Config) *stats.Table {
	t := stats.NewTable("E3 — §2.1 universal-tree MC mechanism",
		"n", "profiles", "max eff gap", "SP viol", "surplus viol", "mean NW(Shapley)/NW(MC)")
	profiles := cfg.trials(25, 5)
	ns := []int{8, 10, 12}
	type res struct {
		gap         float64
		sp, surplus int
		loss        float64
		hasLoss     bool
	}
	out := cells(cfg, 103, len(ns)*profiles, func(task int, rng *rand.Rand) res {
		nIdx := task / profiles
		n := ns[nIdx]
		nw := instances.RandomEuclidean(setupRNG(103, nIdx), n, 2, 2, 10)
		ut := universal.SPT(nw)
		mc := universal.MCMechanism(ut)
		shap := universal.ShapleyMechanism(ut)
		u := mech.RandomProfile(rng, n, 30)
		o := mc.Run(u)
		opt := mech.BruteForceNetWorth(nw.AllReceivers(), u, func(R []int) float64 { return ut.Cost(R) })
		var r res
		r.gap = math.Abs(o.NetWorth(u) - opt)
		if mech.CheckStrategyproof(mc, u, nil) != nil {
			r.sp++
		}
		if o.TotalShares() > o.Cost+1e-7 {
			r.surplus++
		}
		if opt > 1e-9 {
			r.loss = shap.Run(u).NetWorth(u) / opt
			r.hasLoss = true
		}
		return r
	})
	for nIdx, n := range ns {
		maxGap := 0.0
		sp, surplus := 0, 0
		var lossRatios []float64
		for p := 0; p < profiles; p++ {
			r := out[nIdx*profiles+p]
			maxGap = math.Max(maxGap, r.gap)
			sp += r.sp
			surplus += r.surplus
			if r.hasLoss {
				lossRatios = append(lossRatios, r.loss)
			}
		}
		t.Add(fmt.Sprint(n), fmt.Sprint(profiles), stats.F(maxGap), fmt.Sprint(sp),
			fmt.Sprint(surplus), stats.F(stats.Summarize(lossRatios).Mean))
	}
	t.Note("paper: MC is efficient & SP but never runs a surplus; Shapley trades efficiency for BB")
	return t
}

// E04Fig1Collusion replays the paper's Fig. 1 worked example across a
// sweep of deviations ε, reproducing exactly the published shares and the
// group-strategyproofness failure. One (deterministic) cell per ε.
func E04Fig1Collusion(cfg Config) *stats.Table {
	t := stats.NewTable("E4 — Fig. 1 collusion replay (§2.2.2)",
		"ε", "truthful shares", "colluding shares", "w(1,5,6): before→after", "x7 dropped", "GSP broken")
	epss := []float64{0.01, 0.1, 0.5}
	rows := cells(cfg, 104, len(epss), func(task int, _ *rand.Rand) []string {
		eps := epss[task]
		inst, truth, collude := instances.Fig1NWST(eps)
		m := nwstmech.New(inst, nwst.KleinRaviOracle)
		honest := m.Run(truth)
		dev := m.Run(collude)
		gspBroken := true
		improved := false
		for _, i := range []int{instances.Fig1T1, instances.Fig1T5, instances.Fig1T6, instances.Fig1T7} {
			wT, wD := honest.Welfare(truth, i), dev.Welfare(truth, i)
			if wD < wT-1e-9 {
				gspBroken = false
			}
			if wD > wT+1e-9 {
				improved = true
			}
		}
		gspBroken = gspBroken && improved
		return []string{stats.F(eps),
			fmt.Sprintf("all %s", stats.F(honest.Share(instances.Fig1T1))),
			fmt.Sprintf("1,5,6: %s", stats.F(dev.Share(instances.Fig1T1))),
			fmt.Sprintf("%s → %s", stats.F(honest.Welfare(truth, instances.Fig1T1)), stats.F(dev.Welfare(truth, instances.Fig1T1))),
			fmt.Sprint(!dev.IsReceiver(instances.Fig1T7)),
			fmt.Sprint(gspBroken)}
	})
	for _, r := range rows {
		t.Add(r...)
	}
	t.Note("paper: truthful c=3/2 each, colluding c=4/3 for {1,5,6}, welfares 3/2 → 5/3; matches")
	return t
}

// E05NWSTMechanism measures the §2.2.2 mechanism's budget-balance ratio
// against the exact NWST optimum and its strategyproofness, for both
// spider oracles (ablation A2). One cell per (k, oracle, trial).
func E05NWSTMechanism(cfg Config) *stats.Table {
	t := stats.NewTable("E5 — §2.2.2 NWST mechanism: Σshares/OPT vs β(k) (A2: oracle choice)",
		"k", "oracle", "trials", "mean ratio", "max ratio", "β bound", "SP viol")
	trials := cfg.trials(12, 3)
	oracles := []struct {
		name string
		o    nwst.Oracle
	}{{"klein-ravi", nwst.KleinRaviOracle}, {"branch-spider", nwst.BranchSpiderOracle}}
	ks := []int{3, 5, 7}
	nRows := len(ks) * len(oracles)
	type res struct {
		ratio    float64
		hasRatio bool
		sp       int
	}
	out := cells(cfg, 105, nRows*trials, func(task int, rng *rand.Rand) res {
		row := task / trials
		k := ks[row/len(oracles)]
		or := oracles[row%len(oracles)]
		var r res
		in := randomNWSTInstance(rng, 8+rng.Intn(5), k)
		m := nwstmech.New(in, or.o)
		rich := mech.UniformProfile(in.G.N(), 1e8)
		o := m.Run(rich)
		if len(o.Receivers) == k {
			if opt, ok := nwst.ExactSmall(in, 18); ok && opt > 1e-12 {
				r.ratio = o.TotalShares() / opt
				r.hasRatio = true
				truth := mech.RandomProfile(rng, in.G.N(), 6)
				if mech.CheckStrategyproof(m, truth, nil) != nil {
					r.sp++
				}
			}
		}
		return r
	})
	for row := 0; row < nRows; row++ {
		k := ks[row/len(oracles)]
		or := oracles[row%len(oracles)]
		var ratios []float64
		sp := 0
		for trial := 0; trial < trials; trial++ {
			r := out[row*trials+trial]
			if r.hasRatio {
				ratios = append(ratios, r.ratio)
			}
			sp += r.sp
		}
		s := stats.Summarize(ratios)
		bound := 1 + 2*math.Log(float64(k))
		t.Add(fmt.Sprint(k), or.name, fmt.Sprint(len(ratios)),
			stats.F(s.Mean), stats.F(s.Max), stats.F(bound), fmt.Sprint(sp))
	}
	t.Note("paper bound: 1.5·ln k with the exact GK oracle; our oracles stay within the 2·ln k envelope")
	t.Note("nonzero SP counts are finding F3: simultaneous multi-terminal drops break Theorem 2.3's proof")
	return t
}

// randomNWSTInstance builds a connected node-weighted instance with k
// zero-weight terminals.
func randomNWSTInstance(rng *rand.Rand, n, k int) nwst.Instance {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i), 0)
	}
	for e := 0; e < n/2; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 0)
		}
	}
	w := make([]float64, n)
	terms := rng.Perm(n)[:k]
	isTerm := make([]bool, n)
	for _, t := range terms {
		isTerm[t] = true
	}
	for v := 0; v < n; v++ {
		if !isTerm[v] {
			w[v] = rng.Float64()*4 + 0.1
		}
	}
	return nwst.Instance{G: g, Weights: w, Terminals: terms}
}
