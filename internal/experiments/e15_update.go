package experiments

import (
	"fmt"
	"reflect"

	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/query"
	"wmcs/internal/stats"
	"wmcs/internal/wireless"
)

// E15UpdateLatency measures the delta-aware update path (DESIGN.md §12):
// a stream of single-row SetCost mutations through a VersionedEvaluator
// whose outgoing evaluator owns both the MEMT→NWST reduction and the
// universal-shapley mechanism. Each update must take the incremental
// path — memtred.Rebuild reuses every clean station's runs, so the
// per-update cost scales with the two dirty rows instead of the full
// n³ reduction build — and every probe must answer bitwise-identically
// to a cold evaluator over the same snapshot. The latency signal lives
// in benchtab -timings wall_ms, where the benchcmp gate asserts
// E15 <= 0.2·E15b (the incremental path at least 5× faster than the
// full-rebuild baseline below).
func E15UpdateLatency(cfg Config) *stats.Table {
	return e15Run(cfg, false,
		"E15 — delta-aware update latency (single-row SetCost stream)")
}

// E15bUpdateLatencyFull is the control: the identical update stream
// through a WithoutDeltaRebuild evaluator, which rebuilds the reduction
// from scratch on every update. Its table must agree with E15's on
// everything except the incremental count (0 here) — the wall-clock gap
// between the two is the tentpole's measured win.
func E15bUpdateLatencyFull(cfg Config) *stats.Table {
	return e15Run(cfg, true,
		"E15b — full-rebuild update baseline (WithoutDeltaRebuild)")
}

func e15Run(cfg Config, fullRebuild bool, title string) *stats.Table {
	t := stats.NewTable(title,
		"n", "updates", "incremental", "probes", "mismatches")
	n := 96
	if cfg.Quick {
		n = 48
	}
	updates := cfg.trials(60, 12)

	rng := setupRNG(151, 0)
	sc, err := instances.ScenarioByName("symmetric")
	if err != nil {
		panic(err)
	}
	nw := sc.Gen(rng, n, 2)
	u := mech.RandomProfile(rng, n, 60)
	var opts []query.Option
	if fullRebuild {
		opts = append(opts, query.WithoutDeltaRebuild())
	}
	ve := query.NewVersioned(nw, opts...)
	// Warm the working set the update stream keeps rebuilding: the
	// reduction substrate (built, never Run — Klein–Ravi at this n is an
	// experiment of its own) and the universal-shapley mechanism the
	// probes query.
	ve.Evaluator().Reduction()
	if _, err := ve.Evaluator().Mechanism("universal-shapley"); err != nil {
		panic(err)
	}

	incremental, probes, mismatches := 0, 0, 0
	for k := 0; k < updates; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		for j == i {
			j = rng.Intn(n)
		}
		factor := 0.8 + rng.Float64()*0.4
		res, err := ve.Update(func(nw *wireless.Network) error {
			_, err := nw.SetCost(i, j, nw.C(i, j)*factor)
			return err
		})
		if err != nil {
			panic(err)
		}
		if res.Incremental {
			incremental++
		}
		if k%6 == 5 {
			// Byte-identity audit: the warmed evaluator against a cold one
			// over the same frozen snapshot.
			probes++
			got, err := ve.Evaluator().Evaluate("universal-shapley", nil, u)
			if err != nil {
				panic(err)
			}
			want, err := query.NewEvaluator(ve.Network()).Evaluate("universal-shapley", nil, u)
			if err != nil {
				panic(err)
			}
			if !reflect.DeepEqual(got, want) {
				mismatches++
			}
		}
	}
	t.Add(fmt.Sprint(n), fmt.Sprint(updates), fmt.Sprint(incremental),
		fmt.Sprint(probes), fmt.Sprint(mismatches))
	t.Note("one versioned evaluator, warm reduction + universal-shapley; each update is a single-row SetCost (random pair, x0.8..1.2)")
	t.Note("incremental counts updates that seeded the reduction via memtred.Rebuild; mismatches must be 0 (warm vs cold bitwise)")
	t.Note("latency is the point: benchtab -timings wall_ms, gated in CI as E15 <= 0.2 * E15b")
	return t
}
