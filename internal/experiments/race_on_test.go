//go:build race

package experiments

// raceEnabled reports whether this test binary runs under the race
// detector, whose slowdown makes wall-clock assertions meaningless.
const raceEnabled = true
