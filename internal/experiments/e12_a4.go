package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/sharing"
	"wmcs/internal/stats"
	"wmcs/internal/universal"
	"wmcs/internal/wireless"
)

// E12MulticastHeuristics compares the multicast tree builders the paper's
// ecosystem relies on — KMB-Steiner (§3.2's heuristic), pruned MST,
// pruned BIP [50] and pruned SPT [43] — against the exact optimum. The
// "who wins where" shape: Steiner and BIP lead at α ≥ 2 where relaying
// pays, SPT leads at α = 1 where direct paths are optimal.
func E12MulticastHeuristics(cfg Config) *stats.Table {
	t := stats.NewTable("E12 — multicast heuristics vs exact optimum (ratio to C*)",
		"α", "k", "trials", "steiner-kmb", "mst-pruned", "bip-pruned", "spt-pruned", "winner")
	rng := rand.New(rand.NewSource(112))
	trials := cfg.trials(20, 5)
	for _, alpha := range []float64{1, 2, 4} {
		for _, k := range []int{3, 6} {
			sums := map[string]float64{}
			counts := 0
			for trial := 0; trial < trials; trial++ {
				nw := instances.RandomEuclidean(rng, 10, 2, alpha, 10)
				perm := rng.Perm(nw.N() - 1)
				R := make([]int, 0, k)
				for _, p := range perm[:k] {
					R = append(R, p+1)
				}
				sort.Ints(R)
				opt, _ := wireless.ExactMEMT(nw, R)
				if opt <= 1e-12 {
					continue
				}
				counts++
				for _, h := range wireless.MulticastHeuristics {
					_, a := h.Build(nw, R)
					sums[h.Name] += a.Total() / opt
				}
			}
			if counts == 0 {
				continue
			}
			row := []string{stats.F(alpha), fmt.Sprint(k), fmt.Sprint(counts)}
			bestName, bestVal := "", 1e308
			for _, h := range wireless.MulticastHeuristics {
				mean := sums[h.Name] / float64(counts)
				row = append(row, stats.F(mean))
				if mean < bestVal {
					bestName, bestVal = h.Name, mean
				}
			}
			row = append(row, bestName)
			t.Add(row...)
		}
	}
	t.Note("shape check: bip and spt tie at ratio 1 for α=1 (direct transmission is optimal, Lemma 3.1)")
	t.Note("at α ≥ 2 relaying pays and the incremental/Steiner heuristics pull ahead of spt")
	return t
}

// A04EfficiencyLoss is the Moulin–Shenker [38] ablation: among
// budget-balanced group-strategyproof mechanisms M(ξ), the Shapley value
// minimizes worst-case efficiency loss. We compare M(Shapley) against
// M(Incremental) under adversarial priority orders on universal-tree
// games and report realized welfare relative to the efficient (MC)
// optimum.
func A04EfficiencyLoss(cfg Config) *stats.Table {
	t := stats.NewTable("A4 — ablation: efficiency loss of BB mechanisms (Shapley vs incremental [38])",
		"n", "profiles", "mean NW(Shapley)/OPT", "mean NW(incremental)/OPT", "Shapley wins (%)")
	rng := rand.New(rand.NewSource(113))
	profiles := cfg.trials(30, 6)
	for _, n := range []int{8, 12} {
		nw := instances.RandomEuclidean(rng, n, 2, 2, 10)
		ut := universal.SPT(nw)
		agents := nw.AllReceivers()
		cost := ut.CostFunc()
		shap := &sharing.MechanismFromMethod{
			MechName: "shapley", AgentSet: agents, Xi: ut.ShapleyMethod(), Cost: cost,
		}
		// Adversarial order: farthest stations (largest singleton cost)
		// charged their marginal first.
		order := append([]int(nil), agents...)
		sort.Slice(order, func(a, b int) bool {
			return cost([]int{order[a]}) > cost([]int{order[b]})
		})
		incr := &sharing.MechanismFromMethod{
			MechName: "incremental", AgentSet: agents,
			Xi:   sharing.NewIncremental(order, cost),
			Cost: cost,
		}
		var rs, ri []float64
		wins := 0
		for p := 0; p < profiles; p++ {
			u := mech.RandomProfile(rng, n, 20)
			opt := mech.BruteForceNetWorth(agents, u, cost)
			if opt <= 1e-9 {
				continue
			}
			ns := shap.Run(u).NetWorth(u)
			ni := incr.Run(u).NetWorth(u)
			rs = append(rs, ns/opt)
			ri = append(ri, ni/opt)
			if ns >= ni-1e-9 {
				wins++
			}
		}
		pct := 0.0
		if len(rs) > 0 {
			pct = 100 * float64(wins) / float64(len(rs))
		}
		t.Add(fmt.Sprint(n), fmt.Sprint(len(rs)),
			stats.F(stats.Summarize(rs).Mean), stats.F(stats.Summarize(ri).Mean), stats.F(pct))
	}
	t.Note("[38]: the Shapley value minimizes worst-case efficiency loss among cross-monotonic BB methods")
	return t
}
