package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/sharing"
	"wmcs/internal/stats"
	"wmcs/internal/universal"
	"wmcs/internal/wireless"
)

// E12MulticastHeuristics compares the multicast tree builders the paper's
// ecosystem relies on — KMB-Steiner (§3.2's heuristic), pruned MST,
// pruned BIP [50] and pruned SPT [43] — against the exact optimum. The
// "who wins where" shape: Steiner and BIP lead at α ≥ 2 where relaying
// pays, SPT leads at α = 1 where direct paths are optimal. One cell per
// ((α, k), trial).
func E12MulticastHeuristics(cfg Config) *stats.Table {
	t := stats.NewTable("E12 — multicast heuristics vs exact optimum (ratio to C*)",
		"α", "k", "trials", "steiner-kmb", "mst-pruned", "bip-pruned", "spt-pruned", "winner")
	trials := cfg.trials(20, 5)
	type rowCfg struct {
		alpha float64
		k     int
	}
	var rowCfgs []rowCfg
	for _, alpha := range []float64{1, 2, 4} {
		for _, k := range []int{3, 6} {
			rowCfgs = append(rowCfgs, rowCfg{alpha, k})
		}
	}
	type res struct {
		ratios []float64 // per heuristic, in MulticastHeuristics order
		valid  bool
	}
	out := cells(cfg, 112, len(rowCfgs)*trials, func(task int, rng *rand.Rand) res {
		rc := rowCfgs[task/trials]
		nw := instances.RandomEuclidean(rng, 10, 2, rc.alpha, 10)
		perm := rng.Perm(nw.N() - 1)
		R := make([]int, 0, rc.k)
		for _, p := range perm[:rc.k] {
			R = append(R, p+1)
		}
		sort.Ints(R)
		opt, _ := wireless.ExactMEMT(nw, R)
		if opt <= 1e-12 {
			return res{}
		}
		r := res{valid: true}
		for _, h := range wireless.MulticastHeuristics {
			_, a := h.Build(nw, R)
			r.ratios = append(r.ratios, a.Total()/opt)
		}
		return r
	})
	for ri, rc := range rowCfgs {
		sums := make([]float64, len(wireless.MulticastHeuristics))
		counts := 0
		for trial := 0; trial < trials; trial++ {
			r := out[ri*trials+trial]
			if !r.valid {
				continue
			}
			counts++
			for hi, v := range r.ratios {
				sums[hi] += v
			}
		}
		if counts == 0 {
			continue
		}
		row := []string{stats.F(rc.alpha), fmt.Sprint(rc.k), fmt.Sprint(counts)}
		bestName, bestVal := "", 1e308
		for hi, h := range wireless.MulticastHeuristics {
			mean := sums[hi] / float64(counts)
			row = append(row, stats.F(mean))
			if mean < bestVal {
				bestName, bestVal = h.Name, mean
			}
		}
		row = append(row, bestName)
		t.Add(row...)
	}
	t.Note("shape check: bip and spt tie at ratio 1 for α=1 (direct transmission is optimal, Lemma 3.1)")
	t.Note("at α ≥ 2 relaying pays and the incremental/Steiner heuristics pull ahead of spt")
	return t
}

// A04EfficiencyLoss is the Moulin–Shenker [38] ablation: among
// budget-balanced group-strategyproof mechanisms M(ξ), the Shapley value
// minimizes worst-case efficiency loss. We compare M(Shapley) against
// M(Incremental) under adversarial priority orders on universal-tree
// games and report realized welfare relative to the efficient (MC)
// optimum. One cell per (n, profile); the per-n game is rebuilt from the
// row's setup seed.
func A04EfficiencyLoss(cfg Config) *stats.Table {
	t := stats.NewTable("A4 — ablation: efficiency loss of BB mechanisms (Shapley vs incremental [38])",
		"n", "profiles", "mean NW(Shapley)/OPT", "mean NW(incremental)/OPT", "Shapley wins (%)")
	profiles := cfg.trials(30, 6)
	ns := []int{8, 12}
	type res struct {
		rs, ri float64
		win    bool
		valid  bool
	}
	out := cells(cfg, 113, len(ns)*profiles, func(task int, rng *rand.Rand) res {
		nIdx := task / profiles
		n := ns[nIdx]
		nw := instances.RandomEuclidean(setupRNG(113, nIdx), n, 2, 2, 10)
		ut := universal.SPT(nw)
		agents := nw.AllReceivers()
		cost := ut.CostFunc()
		shap := &sharing.MechanismFromMethod{
			MechName: "shapley", AgentSet: agents, Xi: ut.ShapleyMethod(), Cost: cost,
		}
		// Adversarial order: farthest stations (largest singleton cost)
		// charged their marginal first.
		order := append([]int(nil), agents...)
		sort.Slice(order, func(a, b int) bool {
			return cost([]int{order[a]}) > cost([]int{order[b]})
		})
		incr := &sharing.MechanismFromMethod{
			MechName: "incremental", AgentSet: agents,
			Xi:   sharing.NewIncremental(order, cost),
			Cost: cost,
		}
		u := mech.RandomProfile(rng, n, 20)
		opt := mech.BruteForceNetWorth(agents, u, cost)
		if opt <= 1e-9 {
			return res{}
		}
		nwShap := shap.Run(u).NetWorth(u)
		nwIncr := incr.Run(u).NetWorth(u)
		return res{rs: nwShap / opt, ri: nwIncr / opt, win: nwShap >= nwIncr-1e-9, valid: true}
	})
	for nIdx, n := range ns {
		var rs, ri []float64
		wins := 0
		for p := 0; p < profiles; p++ {
			r := out[nIdx*profiles+p]
			if !r.valid {
				continue
			}
			rs = append(rs, r.rs)
			ri = append(ri, r.ri)
			if r.win {
				wins++
			}
		}
		pct := 0.0
		if len(rs) > 0 {
			pct = 100 * float64(wins) / float64(len(rs))
		}
		t.Add(fmt.Sprint(n), fmt.Sprint(len(rs)),
			stats.F(stats.Summarize(rs).Mean), stats.F(stats.Summarize(ri).Mean), stats.F(pct))
	}
	t.Note("[38]: the Shapley value minimizes worst-case efficiency loss among cross-monotonic BB methods")
	return t
}
