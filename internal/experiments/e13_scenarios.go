package experiments

import (
	"fmt"
	"math/rand"

	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/nwst"
	"wmcs/internal/query"
	"wmcs/internal/stats"
	"wmcs/internal/wireless"
)

// E13ScenarioSweep crosses the general-network mechanisms with every
// topology family in the instances registry — the seed's three models
// plus the clustered/grid/ring/highway/disk families — and reports, per
// (scenario, mechanism) pair: how many agents get served under moderate
// utilities, the budget-balance ratio Σc/C*(R) against the exact optimum,
// and axiom violations. It is the "does the theory survive contact with
// realistic deployments" table: the guarantees are worst-case, so the
// interesting output is how the measured ratios move with the geometry
// (hotspot clusters reward relaying, rings punish the universal tree,
// non-metric symmetric costs stress everything). One cell per
// (scenario, mechanism, trial).
func E13ScenarioSweep(cfg Config) *stats.Table {
	t := stats.NewTable("E13 — scenario sweep: mechanisms × topology families (n=10, α=2)",
		"scenario", "mechanism", "trials", "served/agents", "mean Σc/C*", "max Σc/C*", "axiom viol")
	trials := cfg.trials(6, 2)
	const n = 10
	scens := instances.Scenarios()
	// Mechanisms come from the query-engine registry; each cell builds one
	// evaluator for its network and asks it by name.
	mechNames := []string{"universal-shapley", "wireless-bb", "jv-moat"}
	nRows := len(scens) * len(mechNames)
	type res struct {
		served, agents int
		ratio          float64
		hasRatio       bool
		axiom          int
	}
	out := cells(cfg, 114, nRows*trials, func(task int, rng *rand.Rand) res {
		row := task / trials
		sc := scens[row/len(mechNames)]
		name := mechNames[row%len(mechNames)]
		nw := sc.Gen(rng, n, 2)
		ev := query.NewEvaluator(nw, query.WithOracle(nwst.KleinRaviOracle))
		m, err := ev.Mechanism(name)
		if err != nil {
			panic(err) // registry names are valid for every scenario network
		}
		u := mech.RandomProfile(rng, n, 60)
		o := m.Run(u)
		var r res
		r.served = len(o.Receivers)
		r.agents = len(m.Agents())
		if mech.CheckAll(u, o) != nil {
			r.axiom++
		}
		if len(o.Receivers) > 0 {
			if opt := wireless.OptimalMulticastCost(nw, o.Receivers); opt > 1e-12 {
				r.ratio = o.TotalShares() / opt
				r.hasRatio = true
			}
		}
		return r
	})
	for row := 0; row < nRows; row++ {
		sc := scens[row/len(mechNames)]
		name := mechNames[row%len(mechNames)]
		served, agents, axiom := 0, 0, 0
		var ratios []float64
		for trial := 0; trial < trials; trial++ {
			r := out[row*trials+trial]
			served += r.served
			agents += r.agents
			axiom += r.axiom
			if r.hasRatio {
				ratios = append(ratios, r.ratio)
			}
		}
		s := stats.Summarize(ratios)
		t.Add(sc.Name, name, fmt.Sprint(trials),
			fmt.Sprintf("%d/%d", served, agents),
			stats.F(s.Mean), stats.F(s.Max), fmt.Sprint(axiom))
	}
	t.Note("C* is the exact multicast optimum (closed form on lines, subset-Dijkstra otherwise)")
	t.Note("universal-shapley balances against its tree cost, not C*, so ratios < 1 are possible on rings")
	return t
}
