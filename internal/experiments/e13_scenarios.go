package experiments

import (
	"fmt"
	"math/rand"

	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/mechreg"
	"wmcs/internal/nwst"
	"wmcs/internal/query"
	"wmcs/internal/stats"
	"wmcs/internal/wireless"
)

// E13ScenarioSweep crosses the mechanism descriptor registry with every
// topology family in the instances registry — the seed's three models
// plus the clustered/grid/ring/highway/disk families — and reports, per
// (scenario, mechanism) pair: how many agents get served under moderate
// utilities, the budget-balance ratio Σc/C*(R) against the exact optimum,
// and violations of the *declared* axioms. It is the "does the theory
// survive contact with realistic deployments" table: the guarantees are
// worst-case, so the interesting output is how the measured ratios move
// with the geometry (hotspot clusters reward relaying, rings punish the
// universal tree, non-metric symmetric costs stress everything). One
// cell per (scenario, mechanism, trial).
//
// The grid derives from the registry: every descriptor appears on every
// scenario whose networks its declared domain admits, and incompatible
// combinations (the α = 1 specials on this α = 2 sweep, the line
// mechanisms off the line family) are skipped automatically — the same
// Supports predicate the serving layer advertises. Axiom accounting is
// declaration-aware too: the marginal-cost mechanisms declare no cost
// recovery, so their deficits are visible in the ratio column without
// reading as violations.
func E13ScenarioSweep(cfg Config) *stats.Table {
	t := stats.NewTable("E13 — scenario sweep: registry mechanisms × topology families (n=10, α=2)",
		"scenario", "mechanism", "trials", "served/agents", "mean Σc/C*", "max Σc/C*", "axiom viol")
	trials := cfg.trials(6, 2)
	const n = 10
	const alpha = 2
	// One combo per (scenario, descriptor) the descriptor's domain
	// admits. Support depends only on the family's network class
	// (geometry, dimension, α), so one probe instance per scenario
	// decides the whole row deterministically.
	type combo struct {
		sc instances.Scenario
		d  mechreg.Descriptor
	}
	var combos []combo
	for si, sc := range instances.Scenarios() {
		probe := sc.Gen(setupRNG(114, si), n, alpha)
		for _, d := range mechreg.All() {
			if d.Supports != nil && d.Supports(probe) != nil {
				continue
			}
			combos = append(combos, combo{sc, d})
		}
	}
	nRows := len(combos)
	type res struct {
		served, agents int
		ratio          float64
		hasRatio       bool
		axiom          int
	}
	out := cells(cfg, 114, nRows*trials, func(task int, rng *rand.Rand) res {
		c := combos[task/trials]
		nw := c.sc.Gen(rng, n, alpha)
		ev := query.NewEvaluator(nw, query.WithOracle(nwst.KleinRaviOracle))
		m, err := ev.Mechanism(c.d.Name)
		if err != nil {
			panic(err) // the probe admitted this combo; same class here
		}
		u := mech.RandomProfile(rng, n, 60)
		o := m.Run(u)
		var r res
		r.served = len(o.Receivers)
		r.agents = len(m.Agents())
		if c.d.Guarantees.CheckOutcome(u, o) != nil {
			r.axiom++
		}
		if len(o.Receivers) > 0 {
			if opt := wireless.OptimalMulticastCost(nw, o.Receivers); opt > 1e-12 {
				r.ratio = o.TotalShares() / opt
				r.hasRatio = true
			}
		}
		return r
	})
	for row := 0; row < nRows; row++ {
		c := combos[row]
		served, agents, axiom := 0, 0, 0
		var ratios []float64
		for trial := 0; trial < trials; trial++ {
			r := out[row*trials+trial]
			served += r.served
			agents += r.agents
			axiom += r.axiom
			if r.hasRatio {
				ratios = append(ratios, r.ratio)
			}
		}
		s := stats.Summarize(ratios)
		t.Add(c.sc.Name, c.d.Name, fmt.Sprint(trials),
			fmt.Sprintf("%d/%d", served, agents),
			stats.F(s.Mean), stats.F(s.Max), fmt.Sprint(axiom))
	}
	t.Note("grid derived from the mechanism registry; combos outside a declared domain are skipped")
	t.Note("C* is the exact multicast optimum (closed form on lines, subset-Dijkstra otherwise)")
	t.Note("universal-shapley balances against its tree cost, not C*, so ratios < 1 are possible on rings")
	t.Note("marginal-cost mechanisms declare no cost recovery: ratios < 1 are the efficiency-vs-BB tradeoff, not violations")
	return t
}
