package experiments

import (
	"fmt"
	"math"
	"math/bits"

	"wmcs/internal/sharing"
	"wmcs/internal/stats"
)

// E16 and E16b time the exact-Shapley tentpole (DESIGN.md §14): the
// blocked flat-table enumeration of Shapley.SharesParallel against the
// historical map-memoized Shapley.Shares on the identical instance. The
// pair follows the E15/E15b convention — the measured signal is benchtab
// -timings wall_ms, gated in CI as E16 <= 0.4 * E16b. On a single-core
// runner the gap is the algorithmic one (a flat 2^k cost table and
// per-block partial sums instead of ~2^k·k memo-map probes); on a
// multi-core runner the same blocked reduction additionally spreads its
// blocks across the pool, with bytes unchanged at any width.

// e16K is the enumeration size: 2^18 subsets, the "k ≥ 18 receivers"
// point the exact tier is specified to handle.
const e16K = 18

// e16Cost builds the shared oracle: k agents each covering a fixed
// random subset of m weighted ground elements, C(R) = total weight
// covered. Monotone and submodular (coverage), and cheap — a few OR and
// bit-walk ops — so the 2^k enumeration machinery, not the oracle,
// dominates what the pair times.
func e16Cost(k int) (agents []int, cost sharing.CostFunc) {
	const m = 48
	rng := setupRNG(161, 0)
	weights := make([]float64, m)
	for e := range weights {
		weights[e] = 1 + rng.Float64()*9
	}
	covers := make([]uint64, k)
	for i := range covers {
		for e := 0; e < m; e++ {
			if rng.Intn(3) == 0 { // ~16 elements per agent
				covers[i] |= 1 << uint(e)
			}
		}
	}
	agents = make([]int, k)
	for i := range agents {
		agents[i] = i
	}
	cost = func(R []int) float64 {
		var mask uint64
		for _, a := range R {
			mask |= covers[a]
		}
		var c float64
		for mask != 0 {
			c += weights[bits.TrailingZeros64(mask)]
			mask &= mask - 1
		}
		return c
	}
	return agents, cost
}

// E16ParallelShapley runs the blocked flat-table exact enumeration on
// the experiment pool.
func E16ParallelShapley(cfg Config) *stats.Table {
	return e16Run(cfg, true,
		"E16 — exact Shapley, blocked flat-table tier (SharesParallel)")
}

// E16bSerialShapley is the control: the historical memo-map enumeration
// on the identical instance. Its shares must agree with E16's to
// float-sum reassociation tolerance (the tiers fold marginals in
// different orders; exact equality is a per-tier property, pinned by the
// width-invariance sweep, not a cross-tier one).
func E16bSerialShapley(cfg Config) *stats.Table {
	return e16Run(cfg, false,
		"E16b — exact Shapley, memo-map baseline (control for E16)")
}

func e16Run(cfg Config, parallel bool, title string) *stats.Table {
	t := stats.NewTable(title,
		"k", "trials", "C(R)", "sum shares", "balance resid", "max share", "min share")
	k := e16K
	if cfg.Quick {
		k = 12
	}
	trials := cfg.trials(2, 1)
	agents, cost := e16Cost(k)

	var shares map[int]float64
	for trial := 0; trial < trials; trial++ {
		// A fresh method per trial: the memo cache must start cold each
		// time or later trials would time map hits instead of the
		// enumeration.
		s := sharing.NewShapley(agents, cost)
		if parallel {
			shares = s.SharesParallel(agents, cfg.Pool())
		} else {
			shares = s.Shares(agents)
		}
	}
	grand := cost(agents)
	var sum float64
	maxSh, minSh := math.Inf(-1), math.Inf(1)
	for _, a := range agents {
		sh := shares[a]
		sum += sh
		maxSh = math.Max(maxSh, sh)
		minSh = math.Min(minSh, sh)
	}
	t.Add(fmt.Sprint(k), fmt.Sprint(trials), stats.F(grand), stats.F(sum),
		stats.F(math.Abs(sum-grand)), stats.F(maxSh), stats.F(minSh))
	t.Note("one weighted-coverage instance (48 elements), fresh method per trial so the 2^k enumeration is what's timed")
	t.Note("budget balance is the correctness check here; cross-tier byte identity is pinned in sharing's parallel tests")
	t.Note("latency is the point: benchtab -timings wall_ms, gated in CI as E16 <= 0.4 * E16b")
	return t
}
