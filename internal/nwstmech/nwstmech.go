// Package nwstmech implements the §2.2.2 strategyproof cost-sharing
// mechanism for the non-cooperative node-weighted Steiner tree problem:
// repeatedly pick the minimum-ratio spider; if every covered terminal can
// pay the ratio, charge it and shrink; otherwise drop the agents that
// cannot afford their slice and restart from scratch. Super-terminal
// utilities follow Eq. (5): v_t = |T_Sp| · min_{t'∈T_Sp}(v_{t'} − c_{t'}).
//
// Faithfulness note: the published drop rule compares residual budgets to
// v_t/|N⁺_t|, which would make never-charged terminals undroppable and
// contradicts the paper's own Fig. 1 walkthrough; we use the threshold
// ratio(Sp)/|N⁺_t| that makes the walkthrough come out exactly (see
// DESIGN.md §3.2). The mechanism is β(k)-BB for whatever ratio guarantee
// the configured spider oracle provides (Theorem 2.2's argument is
// oracle-agnostic). It is deliberately *not* group strategyproof, which
// experiment E4 demonstrates by replaying Fig. 1.
//
// Reproduction finding F3 (see EXPERIMENTS.md): Theorem 2.3's
// strategyproofness claim has a gap. When a failing spider covers several
// simultaneously-unaffordable terminals, they drop together, and the
// restarted run can build a structurally cheaper solution; an agent can
// over-report, outlive a competitor's drop, and pay a share below its
// true utility. TestMultiDropSPCounterexample pins a concrete instance;
// the proof step "c_i(v) ≤ u_i by VP" only bounds shares by the
// *reported* utility. Single-agent deviations are still unprofitable on
// the overwhelming majority of sampled instances (experiments E5/E6).
package nwstmech

import (
	"math"
	"sort"

	"wmcs/internal/mech"
	"wmcs/internal/nwst"
)

// Mechanism is the §2.2.2 NWST cost-sharing mechanism.
type Mechanism struct {
	inst   nwst.Instance
	oracle nwst.Oracle
	agents []int
	pool   *nwst.StatePool
	// memo, when non-nil, replays recorded spider trajectories for
	// terminal sets seen before (nwst.TrajectoryMemo): the greedy's
	// spider sequence depends only on the terminal set, never on the
	// profile, so replays are byte-identical to fresh computation.
	memo *nwst.TrajectoryMemo
}

// eps absorbs floating-point noise in budget comparisons.
const eps = 1e-9

// New builds the mechanism for an NWST instance. Paying terminals are the
// agents; free terminals (the wireless source) are always connected and
// never charged. The mechanism owns a private state pool; use NewShared
// to amortize contraction states across many mechanisms over the same
// host graph.
func New(inst nwst.Instance, oracle nwst.Oracle) *Mechanism {
	return NewShared(inst, oracle, nil)
}

// NewShared is New with an external state pool, which must be over the
// same host graph and weights as inst. Queries drawing states from a
// shared pool produce byte-identical results to private-pool queries:
// nwst.State.Reset restores a pooled state to as-constructed behavior.
// A nil pool allocates a private one.
func NewShared(inst nwst.Instance, oracle nwst.Oracle, pool *nwst.StatePool) *Mechanism {
	return NewMemoized(inst, oracle, pool, nil)
}

// NewMemoized is NewShared with a trajectory memo: runs record the
// spider sequence per terminal set and replay it on re-runs instead of
// re-invoking the oracle. The memo must be used only with this host
// instance and oracle (the wireless mechanism owns one per reduction);
// nil disables memoization.
func NewMemoized(inst nwst.Instance, oracle nwst.Oracle, pool *nwst.StatePool, memo *nwst.TrajectoryMemo) *Mechanism {
	inst.Validate()
	if oracle == nil {
		oracle = nwst.BranchSpiderOracle
	}
	if pool == nil {
		pool = nwst.NewStatePool(inst.G, inst.Weights)
	}
	m := &Mechanism{inst: inst, oracle: oracle, pool: pool, memo: memo}
	for ti, t := range inst.Terminals {
		if inst.Free == nil || !inst.Free[ti] {
			m.agents = append(m.agents, t)
		}
	}
	sort.Ints(m.agents)
	return m
}

// Name implements mech.Mechanism.
func (m *Mechanism) Name() string { return "nwst-spider" }

// Agents implements mech.Mechanism: the paying terminal node ids.
func (m *Mechanism) Agents() []int { return append([]int(nil), m.agents...) }

// Result bundles the mechanism outcome with the chosen host-graph nodes,
// which the wireless mechanism needs to realize the multicast tree.
type Result struct {
	Outcome mech.Outcome
	Nodes   []int // selected host nodes (terminals included), sorted
}

// Run implements mech.Mechanism.
func (m *Mechanism) Run(u mech.Profile) mech.Outcome { return m.RunDetailed(u).Outcome }

// RunDetailed executes the mechanism and also reports the chosen nodes.
func (m *Mechanism) RunDetailed(u mech.Profile) Result {
	active := map[int]bool{}
	for _, a := range m.agents {
		active[a] = true
	}
	var freeTerms []int
	for ti, t := range m.inst.Terminals {
		if m.inst.Free != nil && m.inst.Free[ti] {
			freeTerms = append(freeTerms, t)
		}
	}
	for {
		res, droppedAgents, ok := m.attempt(u, active, freeTerms)
		if ok {
			return res
		}
		if len(droppedAgents) == 0 {
			// Defensive: guarantee progress even under numerical ties.
			return Result{Outcome: mech.Outcome{Shares: map[int]float64{}}}
		}
		for _, x := range droppedAgents {
			delete(active, x)
		}
		if len(active) == 0 {
			return Result{Outcome: mech.Outcome{Shares: map[int]float64{}}}
		}
	}
}

// attempt runs one full pass with the given active agent set. It returns
// ok=false with the agents to drop when some spider is unaffordable.
func (m *Mechanism) attempt(u mech.Profile, active map[int]bool, freeTerms []int) (Result, []int, bool) {
	var terms []int
	var free []bool
	for _, t := range freeTerms {
		terms = append(terms, t)
		free = append(free, true)
	}
	var sortedActive []int
	for a := range active {
		sortedActive = append(sortedActive, a)
	}
	sort.Ints(sortedActive)
	for _, a := range sortedActive {
		terms = append(terms, a)
		free = append(free, false)
	}
	st := m.pool.Get(terms, free)
	defer m.pool.Put(st)

	// Recorded trajectory for this terminal set, if any: the steps are
	// exactly what a fresh run would compute (profile-independence, see
	// nwst.TrajectoryMemo), so replaying them skips the oracle without
	// perturbing a single byte.
	var memoKey string
	var steps []nwst.TrajectoryStep
	if m.memo != nil {
		memoKey = nwst.TrajectoryKey(terms, free)
		steps = m.memo.Lookup(memoKey)
	}

	// Flat per-run scratch off the pooled state: shares and chosen are
	// indexed by original vertex id, vt (Eq. 5) by contracted vertex id.
	ws := st.Workspace()
	ws.Reset(st.N0())
	shares, vt, chosen := ws.Shares, ws.VT, ws.Chosen
	for _, t := range terms {
		chosen[t] = true
	}
	// value returns the utility bound of a live covered terminal.
	value := func(t int) float64 {
		if st.IsFree(t) {
			return math.Inf(1)
		}
		if t < st.N0() {
			return u[t]
		}
		return vt[t]
	}
	sumShares := func(t int) float64 {
		var s float64
		for _, x := range st.Constituents(t) {
			s += shares[x]
		}
		return s
	}
	accept := func(sp nwst.Spider) ([]int, bool) {
		var drop []int
		for _, t := range sp.Terms {
			if st.IsFree(t) {
				continue
			}
			if value(t) >= sp.Ratio-eps {
				continue
			}
			// Terminal t cannot pay; mark the constituents below the
			// per-member threshold ratio/|N⁺_t| for removal.
			cons := st.Constituents(t)
			if t < st.N0() {
				cons = []int{t}
			}
			thr := sp.Ratio / float64(len(cons))
			worst, worstResid := -1, math.Inf(1)
			for _, x := range cons {
				resid := u[x] - shares[x]
				if resid < thr-eps {
					drop = append(drop, x)
				}
				if resid < worstResid {
					worst, worstResid = x, resid
				}
			}
			if len(drop) == 0 && worst >= 0 {
				drop = append(drop, worst) // numerical-tie fallback
			}
		}
		if len(drop) > 0 {
			sort.Ints(drop)
			return drop, false
		}
		return nil, true
	}
	charge := func(sp nwst.Spider) {
		for _, t := range sp.Terms {
			if st.IsFree(t) {
				continue
			}
			if t < st.N0() {
				shares[t] = sp.Ratio
				continue
			}
			cons := st.Constituents(t)
			slice := sp.Ratio / float64(len(cons))
			for _, x := range cons {
				shares[x] += slice
			}
		}
	}
	record := func(nodes []int) {
		for _, v := range nodes {
			if v < st.N0() {
				chosen[v] = true
			}
		}
	}
	newVT := func(sp nwst.Spider) float64 {
		minResid := math.Inf(1)
		paying := 0
		for _, t := range sp.Terms {
			if st.IsFree(t) {
				continue
			}
			paying++
			var resid float64
			if t < st.N0() {
				resid = u[t] - shares[t]
			} else {
				resid = vt[t] - sumShares(t)
			}
			if resid < minResid {
				minResid = resid
			}
		}
		if paying == 0 {
			return math.Inf(1)
		}
		return float64(paying) * minResid
	}

	for stepIdx := 0; ; stepIdx++ {
		live := st.LiveTerminals()
		if len(live) <= 1 {
			break
		}
		expect := nwst.StepSpider
		if len(live) == 2 {
			expect = nwst.StepPath
		}
		var sp nwst.Spider
		replayed := false
		if stepIdx < len(steps) {
			stp := steps[stepIdx]
			if stp.Kind == nwst.StepFail {
				return Result{}, nil, false // recorded dead end
			}
			if stp.Kind == expect {
				sp = stp.Spider
				replayed = true
			}
		}
		if !replayed {
			if len(live) == 2 {
				path, cost := st.PathBetween(live[0], live[1])
				if math.IsInf(cost, 1) {
					m.publish(memoKey, stepIdx, nwst.TrajectoryStep{Kind: nwst.StepFail})
					return Result{}, nil, false // disconnected: give up
				}
				sp = spiderFromPath(st, path)
				m.publish(memoKey, stepIdx, nwst.TrajectoryStep{Kind: nwst.StepPath, Spider: sp})
			} else {
				minCover := len(st.PayingTerminals())
				if minCover > 3 {
					minCover = 3
				}
				var ok bool
				sp, ok = m.oracle(st, minCover)
				if !ok {
					m.publish(memoKey, stepIdx, nwst.TrajectoryStep{Kind: nwst.StepFail})
					return Result{}, nil, false
				}
				m.publish(memoKey, stepIdx, nwst.TrajectoryStep{Kind: nwst.StepSpider, Spider: sp})
			}
		}
		drop, ok := accept(sp)
		if !ok {
			return Result{}, drop, false
		}
		charge(sp)
		record(sp.Nodes)
		// The residuals in Eq. (5) use the post-charge shares, but vt of
		// covered super-terminals must be read before Shrink retires them.
		newUtility := newVT(sp)
		nv := st.Shrink(sp)
		ws.Grow(nv + 1)
		shares, vt, chosen = ws.Shares, ws.VT, ws.Chosen
		vt[nv] = newUtility
		if len(live) == 2 {
			break
		}
	}
	var nodes []int
	for v := 0; v < st.N0(); v++ {
		if chosen[v] {
			nodes = append(nodes, v)
		}
	}
	// Sum in node order: map order would perturb the float low bits.
	var cost float64
	for _, v := range nodes {
		cost += m.inst.Weights[v]
	}
	receivers := make([]int, 0, len(active))
	for a := range active {
		receivers = append(receivers, a)
	}
	sort.Ints(receivers)
	sharesOut := make(map[int]float64, len(receivers))
	for _, r := range receivers {
		sharesOut[r] = shares[r]
	}
	return Result{
		Outcome: mech.Outcome{Receivers: receivers, Shares: sharesOut, Cost: cost},
		Nodes:   nodes,
	}, nil, true
}

// publish records one trajectory step when memoization is on.
func (m *Mechanism) publish(key string, idx int, step nwst.TrajectoryStep) {
	if m.memo != nil {
		m.memo.Publish(key, idx, step)
	}
}

// spiderFromPath builds the final "connect the last two terminals
// optimally" step as a degenerate spider so the accept/charge logic is
// shared.
func spiderFromPath(st *nwst.State, path []int) nwst.Spider {
	var cost float64
	var terms []int
	paying := 0
	for _, v := range path {
		cost += st.Weight(v)
		if st.IsTerminal(v) {
			terms = append(terms, v)
			if !st.IsFree(v) {
				paying++
			}
		}
	}
	sort.Ints(terms)
	ratio := math.Inf(1)
	if paying > 0 {
		ratio = cost / float64(paying)
	}
	nodes := append([]int(nil), path...)
	sort.Ints(nodes)
	return nwst.Spider{
		Center: path[0],
		Nodes:  nodes,
		Terms:  terms,
		Paying: paying,
		Cost:   cost,
		Ratio:  ratio,
	}
}
