package nwstmech

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/graph"
	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/nwst"
)

func TestFig1TruthfulReplay(t *testing.T) {
	inst, truth, _ := instances.Fig1NWST(0.01)
	m := New(inst, nwst.KleinRaviOracle)
	o := m.Run(truth)
	if len(o.Receivers) != 4 {
		t.Fatalf("receivers = %v, want all four terminals", o.Receivers)
	}
	// Paper's walkthrough: c1 = c5 = c7 = 3/2 and c6 = 3/2.
	for _, i := range o.Receivers {
		if math.Abs(o.Shares[i]-1.5) > 1e-9 {
			t.Errorf("share[%d] = %g want 1.5", i, o.Shares[i])
		}
	}
	// Welfares: w1 = w5 = w6 = 3/2, w7 = 0.
	for _, i := range []int{instances.Fig1T1, instances.Fig1T5, instances.Fig1T6} {
		if got := o.Welfare(truth, i); math.Abs(got-1.5) > 1e-9 {
			t.Errorf("welfare[%d] = %g want 1.5", i, got)
		}
	}
	if got := o.Welfare(truth, instances.Fig1T7); math.Abs(got) > 1e-9 {
		t.Errorf("welfare[7] = %g want 0", got)
	}
	// Solution cost: spider Sp2 (3) plus connector (3) = 6.
	if math.Abs(o.Cost-6) > 1e-9 {
		t.Errorf("cost = %g want 6", o.Cost)
	}
}

func TestFig1CollusionReplay(t *testing.T) {
	inst, truth, collude := instances.Fig1NWST(0.01)
	m := New(inst, nwst.KleinRaviOracle)
	o := m.Run(collude)
	// x7 is dropped; the rest are served through spider Sp1 at ratio 4/3.
	if len(o.Receivers) != 3 || o.IsReceiver(instances.Fig1T7) {
		t.Fatalf("receivers = %v, want {1,5,6} without 7", o.Receivers)
	}
	for _, i := range o.Receivers {
		if math.Abs(o.Shares[i]-4.0/3) > 1e-9 {
			t.Errorf("share[%d] = %g want 4/3", i, o.Shares[i])
		}
	}
	// The coalition weakly improves: colluders go from 3/2 to 5/3, x7
	// stays at 0 — the mechanism is not group strategyproof.
	honest := m.Run(truth)
	improved := 0
	for _, i := range []int{instances.Fig1T1, instances.Fig1T5, instances.Fig1T6, instances.Fig1T7} {
		wDev, wTruth := o.Welfare(truth, i), honest.Welfare(truth, i)
		if wDev < wTruth-1e-9 {
			t.Fatalf("coalition member %d made worse off (%g < %g)", i, wDev, wTruth)
		}
		if wDev > wTruth+1e-9 {
			improved++
		}
	}
	if improved == 0 {
		t.Fatal("collusion should strictly help someone")
	}
}

func TestFig1Strategyproof(t *testing.T) {
	inst, truth, _ := instances.Fig1NWST(0.01)
	m := New(inst, nwst.KleinRaviOracle)
	if err := mech.CheckStrategyproof(m, truth, nil); err != nil {
		t.Error(err)
	}
}

func randomNWST(rng *rand.Rand, n, k int) nwst.Instance {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i), 0)
	}
	for e := 0; e < n/2; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 0)
		}
	}
	w := make([]float64, n)
	terms := rng.Perm(n)[:k]
	isTerm := make([]bool, n)
	for _, t := range terms {
		isTerm[t] = true
	}
	for v := 0; v < n; v++ {
		if !isTerm[v] {
			w[v] = rng.Float64()*4 + 0.1
		}
	}
	return nwst.Instance{G: g, Weights: w, Terminals: terms}
}

func TestRandomAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		in := randomNWST(rng, 8+rng.Intn(6), 3+rng.Intn(3))
		m := New(in, nwst.BranchSpiderOracle)
		u := mech.RandomProfile(rng, in.G.N(), 8)
		o := m.Run(u)
		if err := mech.CheckNPT(o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := mech.CheckVP(u, o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(o.Receivers) > 0 {
			if err := mech.CheckCostRecovery(o); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestRandomStrategyproof(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		in := randomNWST(rng, 9, 4)
		m := New(in, nwst.KleinRaviOracle)
		truth := mech.RandomProfile(rng, in.G.N(), 6)
		if err := mech.CheckStrategyproof(m, truth, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestConsumerSovereignty(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	in := randomNWST(rng, 9, 4)
	m := New(in, nwst.BranchSpiderOracle)
	u := mech.UniformProfile(in.G.N(), 1e7) // everyone rich: all served
	o := m.Run(u)
	if len(o.Receivers) != len(m.Agents()) {
		t.Fatalf("rich profile should serve everyone: %v", o.Receivers)
	}
	if err := mech.CheckCS(m, mech.RandomProfile(rng, in.G.N(), 3), 1e9); err != nil {
		t.Error(err)
	}
}

func TestBetaBBAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		in := randomNWST(rng, 9, 4)
		m := New(in, nwst.BranchSpiderOracle)
		u := mech.UniformProfile(in.G.N(), 1e7)
		o := m.Run(u)
		if len(o.Receivers) != 4 {
			t.Fatalf("trial %d: not everyone served", trial)
		}
		opt, ok := nwst.ExactSmall(in, 18)
		if !ok {
			t.Fatal("exact failed")
		}
		k := float64(len(o.Receivers))
		bound := (1 + 2*math.Log(k)) * opt
		if o.TotalShares() > bound+1e-7 {
			t.Fatalf("trial %d: shares %g exceed β bound %g (opt %g)", trial, o.TotalShares(), bound, opt)
		}
		if o.TotalShares() < o.Cost-1e-7 {
			t.Fatalf("trial %d: cost recovery failed", trial)
		}
	}
}

func TestRunDetailedNodesConnectReceivers(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	in := randomNWST(rng, 10, 4)
	m := New(in, nwst.KleinRaviOracle)
	res := m.RunDetailed(mech.UniformProfile(in.G.N(), 1e7))
	if len(res.Outcome.Receivers) == 0 {
		t.Fatal("no receivers")
	}
	edges := nwst.SpanningTree(in.G, res.Nodes, res.Outcome.Receivers[0])
	if len(edges) != len(res.Nodes)-1 {
		t.Fatalf("chosen nodes disconnected: %d nodes, %d tree edges", len(res.Nodes), len(edges))
	}
}

func TestAllPoorDropsEveryone(t *testing.T) {
	// Fig. 1 has strictly positive connection costs, so agents reporting
	// (essentially) zero cannot afford any spider. Without a source, a
	// single terminal is trivially connected at zero cost, so at most one
	// survivor remains — and it pays nothing.
	inst, _, _ := instances.Fig1NWST(0.01)
	m := New(inst, nwst.KleinRaviOracle)
	o := m.Run(mech.UniformProfile(inst.G.N(), 1e-12))
	if len(o.Receivers) > 1 || o.TotalShares() != 0 {
		t.Fatalf("penniless agents should be dropped to ≤ 1 free survivor: %v", o)
	}
	// With terminal 1 acting as a mandatory free source, even a lone
	// paying terminal must buy a connection it cannot afford: all drop.
	inst.Free = []bool{true, false, false, false}
	m = New(inst, nwst.KleinRaviOracle)
	o = m.Run(mech.UniformProfile(inst.G.N(), 1e-12))
	if len(o.Receivers) != 0 || o.TotalShares() != 0 {
		t.Fatalf("with a free source all poor agents must drop: %v", o)
	}
}

// TestMultiDropSPCounterexample pins down a reproduction finding (F3 in
// EXPERIMENTS.md): Theorem 2.3's strategyproofness proof has a gap. When
// a failing spider has several simultaneously-unaffordable terminals they
// are dropped together; the restart can then build a structurally cheaper
// solution. An agent can therefore over-report, outlive a competitor's
// drop, and pay a post-restart share *below its true utility* — a strict
// welfare gain. The phenomenon is oracle-independent (it reproduces with
// both spider oracles) and the paper's proof step "c_i(v) ≤ u_i by VP" is
// exactly where it leaks: VP only bounds shares by the reported utility.
func TestMultiDropSPCounterexample(t *testing.T) {
	g := graph.New(9)
	for _, e := range [][2]int{{1, 0}, {2, 0}, {3, 2}, {4, 1}, {5, 3}, {6, 0}, {7, 1}, {8, 6}, {7, 6}, {3, 0}} {
		g.AddEdge(e[0], e[1], 0)
	}
	w := []float64{2.8672445723964546, 2.098193096479188, 0, 3.1720680406966477,
		1.7801484689145581, 0, 3.963874660690606, 0.9749479745486701, 0}
	in := nwst.Instance{G: g, Weights: w, Terminals: []int{2, 8, 5}}
	truth := make(mech.Profile, 9)
	truth[2], truth[8], truth[5] = 1.5999125377097512, 3.24097465560732, 3.5297249622863123

	for name, oracle := range map[string]nwst.Oracle{"kr": nwst.KleinRaviOracle, "branch": nwst.BranchSpiderOracle} {
		m := New(in, oracle)
		honest := m.Run(truth)
		// Truthful: the cheapest 3-terminal spider (ratio ≈ 3.334) is
		// unaffordable for agents 2 and 8 simultaneously; both drop and
		// only terminal 5 survives (alone, at zero cost).
		if honest.IsReceiver(2) || honest.IsReceiver(8) || !honest.IsReceiver(5) {
			t.Fatalf("%s: honest receivers = %v, expected only 5", name, honest.Receivers)
		}
		// Over-report by agent 2: only 8 drops; the restart connects
		// {2, 5} through node 3 at ratio 3.172/2 ≈ 1.586 < u_2.
		dev := truth.Clone()
		dev[2] = 3 * truth[2]
		o := m.Run(dev)
		if !o.IsReceiver(2) {
			t.Fatalf("%s: over-report no longer serves agent 2", name)
		}
		if math.Abs(o.Shares[2]-w[3]/2) > 1e-9 {
			t.Fatalf("%s: share = %g want %g", name, o.Shares[2], w[3]/2)
		}
		gain := o.Welfare(truth, 2) - honest.Welfare(truth, 2)
		if gain <= 1e-9 {
			t.Fatalf("%s: expected a strict SP violation, gain = %g", name, gain)
		}
	}
}

func TestFreeSourceNeverCharged(t *testing.T) {
	inst, truth, _ := instances.Fig1NWST(0.01)
	// Re-tag terminal 1 as a free source.
	inst.Free = []bool{true, false, false, false}
	m := New(inst, nwst.KleinRaviOracle)
	if got := m.Agents(); len(got) != 3 {
		t.Fatalf("agents = %v", got)
	}
	o := m.Run(truth)
	if _, charged := o.Shares[instances.Fig1T1]; charged {
		t.Error("free source must not appear in shares")
	}
	if err := mech.CheckNPT(o); err != nil {
		t.Error(err)
	}
}
