package obs

import (
	"io"
	"math"
	"strconv"
	"strings"
)

// This file renders Prometheus text exposition format (version 0.0.4)
// without any client library: HELP/TYPE headers, escaped labels, and a
// cumulative-`le` histogram materialized from the serve layer's log2
// nanosecond buckets.
//
// The log2 → le mapping (DESIGN.md §13.2): source bucket i counts
// observations in [2^(i-1), 2^i) ns, so the cumulative count at
// boundary le = 2^i seconds·1e-9 is exactly the sum of source buckets
// 0..i — no resampling, no loss. A query answered from such a histogram
// inherits the log2 resolution: any quantile read as "the smallest le
// with cumulative count past the rank" is an upper bound within 2× of
// the true latency, the same contract /statsz documents. Only
// boundaries 2^Log2BucketLo .. 2^Log2BucketHi ns are emitted; counts
// below the first boundary fold into it (cumulative histograms make
// that exact) and counts above the last fold into +Inf.

// Log2BucketLo and Log2BucketHi bound the emitted le boundaries:
// 2^10 ns ≈ 1 µs up to 2^40 ns ≈ 18.3 min, 31 buckets plus +Inf.
const (
	Log2BucketLo = 10
	Log2BucketHi = 40
)

// Label is one metric label pair. Writers emit labels in the order
// given — callers keep them sorted if they care about canonical form.
type Label struct{ Key, Value string }

// PromWriter renders one exposition document. Write errors are sticky:
// rendering continues silently (the transport notices), Err reports the
// first failure.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps an io.Writer.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) writeString(s string) {
	if p.err == nil {
		_, p.err = io.WriteString(p.w, s)
	}
}

// Header writes the HELP and TYPE lines for a metric family. typ is one
// of "counter", "gauge", "histogram", "untyped".
func (p *PromWriter) Header(name, help, typ string) {
	p.writeString("# HELP " + name + " " + escapeHelp(help) + "\n")
	p.writeString("# TYPE " + name + " " + typ + "\n")
}

// Sample writes one sample line with a float value.
func (p *PromWriter) Sample(name string, labels []Label, v float64) {
	p.writeString(name)
	p.labels(labels)
	p.writeString(" " + formatValue(v) + "\n")
}

// SampleUint writes one sample line with an exact integer value
// (counters rendered without float formatting).
func (p *PromWriter) SampleUint(name string, labels []Label, v uint64) {
	p.writeString(name)
	p.labels(labels)
	p.writeString(" " + strconv.FormatUint(v, 10) + "\n")
}

// Counter is Header + one unlabeled SampleUint — the common case for
// the daemon's monotone atomics.
func (p *PromWriter) Counter(name, help string, v uint64) {
	p.Header(name, help, "counter")
	p.SampleUint(name, nil, v)
}

// Gauge is Header + one unlabeled float Sample.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.Header(name, help, "gauge")
	p.Sample(name, nil, v)
}

// Log2Histogram writes the bucket/sum/count series of one histogram
// series (labels identify the series; the caller writes the family
// Header once). buckets[i] counts observations in [2^(i-1), 2^i) ns;
// sumNS and count are the histogram's running totals.
func (p *PromWriter) Log2Histogram(name string, labels []Label, buckets []uint64, count, sumNS uint64) {
	var cum uint64
	next := 0
	for i := Log2BucketLo; i <= Log2BucketHi; i++ {
		for next <= i && next < len(buckets) {
			cum += buckets[next]
			next++
		}
		le := float64(uint64(1)<<uint(i)) / 1e9
		p.SampleUint(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", formatValue(le)}), cum)
	}
	p.SampleUint(name+"_bucket", append(labels[:len(labels):len(labels)], Label{"le", "+Inf"}), count)
	p.Sample(name+"_sum", labels, float64(sumNS)/1e9)
	p.SampleUint(name+"_count", labels, count)
}

func (p *PromWriter) labels(labels []Label) {
	if len(labels) == 0 {
		return
	}
	p.writeString("{")
	for i, l := range labels {
		if i > 0 {
			p.writeString(",")
		}
		p.writeString(l.Key + "=\"" + escapeLabel(l.Value) + "\"")
	}
	p.writeString("}")
}

// formatValue renders a float the exposition way: shortest round-trip
// form, "+Inf"/"-Inf"/"NaN" spelled the Prometheus way.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
