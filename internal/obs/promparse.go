package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"wmcs/internal/detorder"
)

// This file is the scrape side of prom.go: a strict parser for the text
// exposition format, used by wmcsload (the -report queue-wait share) and
// by the /metricsz tests. Strict means every line must be a well-formed
// comment or sample — a malformed line is an error, not a skip — because
// the parser's main job here is to certify that the daemon's exposition
// is valid, not to survive someone else's.

// PromSample is one parsed sample line.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily groups the samples of one metric family with its declared
// type. Histogram families collect their _bucket/_sum/_count samples.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// PromDoc is one parsed exposition document.
type PromDoc struct {
	Families map[string]*PromFamily
	// Order preserves first-appearance family order (tests diff layouts).
	Order []string
}

// ParseProm parses a text exposition document.
func ParseProm(r io.Reader) (*PromDoc, error) {
	doc := &PromDoc{Families: make(map[string]*PromFamily)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := doc.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		f := doc.family(familyName(s.Name))
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return doc, nil
}

// familyName strips the histogram/summary sample suffixes so _bucket,
// _sum and _count land in their family.
func familyName(sample string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		s := strings.TrimSuffix(sample, suf)
		if s != sample {
			return s
		}
	}
	return sample
}

func (d *PromDoc) family(name string) *PromFamily {
	if f, ok := d.Families[name]; ok {
		return f
	}
	f := &PromFamily{Name: name, Type: "untyped"}
	d.Families[name] = f
	d.Order = append(d.Order, name)
	return f
}

func (d *PromDoc) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare "#" comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		f := d.family(fields[2])
		if len(fields) == 4 {
			f.Help = fields[3]
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
		d.family(fields[2]).Type = fields[3]
	}
	return nil
}

func parseSample(line string) (PromSample, error) {
	s := PromSample{}
	rest := line
	// Metric name: up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	// A timestamp may follow the value; the daemon never emits one, but
	// accept it (split on whitespace, value first).
	valStr, _, _ := strings.Cut(rest, " ")
	if valStr == "" {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	v, err := parsePromValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q in %q", valStr, line)
	}
	s.Value = v
	return s, nil
}

func parsePromValue(v string) (float64, error) {
	switch v {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(v, 64)
}

func validMetricName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

// parseLabels consumes a {k="v",...} block, returning the map and the
// remaining tail after '}'.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		// Skip whitespace and a trailing comma.
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		key := s[i : i+eq]
		if !validMetricName(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label %q value is not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("unterminated label value for %q", key)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape %q in label %q", s[i:i+2], key)
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
	}
}

// Get returns the value of the sample with exactly the given name whose
// labels include every pair in match (nil matches any sample of the
// name; the first match in document order wins).
func (d *PromDoc) Get(name string, match map[string]string) (float64, bool) {
	f, ok := d.Families[familyName(name)]
	if !ok {
		return 0, false
	}
	for _, s := range f.Samples {
		if s.Name != name || !labelsMatch(s.Labels, match) {
			continue
		}
		return s.Value, true
	}
	return 0, false
}

// Sum adds the values of every sample with the given name whose labels
// include every pair in match.
func (d *PromDoc) Sum(name string, match map[string]string) float64 {
	f, ok := d.Families[familyName(name)]
	if !ok {
		return 0
	}
	total := 0.0
	for _, s := range f.Samples {
		if s.Name == name && labelsMatch(s.Labels, match) {
			total += s.Value
		}
	}
	return total
}

func labelsMatch(have, want map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

// CheckHistograms validates every histogram family: cumulative buckets
// must be monotone in le within each series, the +Inf bucket must equal
// the series' _count, and _sum must be present and non-negative for
// all-non-negative observations (latencies). It returns the first
// violation found.
func (d *PromDoc) CheckHistograms() error {
	for _, name := range d.Order {
		f := d.Families[name]
		if f.Type != "histogram" {
			continue
		}
		series := map[string][]PromSample{} // key: labels minus le
		sums := map[string]float64{}
		counts := map[string]float64{}
		haveSum := map[string]bool{}
		haveCount := map[string]bool{}
		for _, s := range f.Samples {
			key := seriesKey(s.Labels)
			switch s.Name {
			case name + "_bucket":
				series[key] = append(series[key], s)
			case name + "_sum":
				sums[key] = s.Value
				haveSum[key] = true
			case name + "_count":
				counts[key] = s.Value
				haveCount[key] = true
			}
		}
		for key, buckets := range series {
			sort.Slice(buckets, func(i, j int) bool {
				return leOf(buckets[i]) < leOf(buckets[j])
			})
			prev := -1.0
			var inf float64
			haveInf := false
			for _, b := range buckets {
				if b.Value < prev {
					return fmt.Errorf("%s{%s}: bucket counts not monotone (le=%g: %g < %g)",
						name, key, leOf(b), b.Value, prev)
				}
				prev = b.Value
				if math.IsInf(leOf(b), 1) {
					inf, haveInf = b.Value, true
				}
			}
			if !haveInf {
				return fmt.Errorf("%s{%s}: no +Inf bucket", name, key)
			}
			if !haveCount[key] || !haveSum[key] {
				return fmt.Errorf("%s{%s}: missing _sum or _count", name, key)
			}
			if inf != counts[key] {
				return fmt.Errorf("%s{%s}: +Inf bucket %g != count %g", name, key, inf, counts[key])
			}
			if sums[key] < 0 {
				return fmt.Errorf("%s{%s}: negative sum %g", name, key, sums[key])
			}
		}
	}
	return nil
}

func leOf(s PromSample) float64 {
	v, err := parsePromValue(s.Labels["le"])
	if err != nil {
		return math.NaN()
	}
	return v
}

// seriesKey renders labels-minus-le deterministically.
func seriesKey(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range detorder.Sorted(labels) {
		if k != "le" {
			parts = append(parts, k+"="+v)
		}
	}
	return strings.Join(parts, ",")
}
