// Package obs is the daemon's zero-dependency observability layer
// (DESIGN.md §13): request-scoped span traces with a pooled, fixed-size
// recorder (no allocations per span on the serving hot path), a bounded
// ring of the slowest traces seen, and Prometheus text-format exposition
// over the serve layer's log2 latency histograms — plus the matching
// exposition parser the load driver and the tests scrape with.
//
// The package is deliberately below the serve layer: it knows nothing
// about networks, mechanisms, caches or HTTP. The serve layer owns what
// gets traced and what gets exposed; obs owns how a trace is recorded
// and how a metric is rendered.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Stage labels one span of a request's path through the daemon. The
// serving stages follow the admission pipeline in order; the update
// stages cover PATCH. String() names are the wire form (span JSON, the
// stage label of wmcs_stage_duration_seconds) — stable, snake_case.
type Stage uint8

const (
	// StageAdmission covers request decode and registry resolution.
	StageAdmission Stage = iota
	// StageCanonicalize covers request validation + canonical key build.
	StageCanonicalize
	// StageCacheLookup covers the result-cache probe (hit or miss).
	StageCacheLookup
	// StageCoalesce covers a follower's wait on another caller's
	// identical in-flight computation (singleflight).
	StageCoalesce
	// StageQueueWait covers enqueue → dispatcher drain in the admission
	// batcher.
	StageQueueWait
	// StageEvaluate covers the whole dispatch round's EvaluateBatch wall
	// time (shared by every request in the round's group).
	StageEvaluate
	// StageCompute is this request's own evaluation inside the batch —
	// nested within StageEvaluate, with its start aligned to the batch
	// start (only its duration is per-request).
	StageCompute
	// StageEncode covers outcome → canonical response bytes.
	StageEncode
	// StageRebuild covers a PATCH's evaluator rebuild+warm+swap.
	StageRebuild
	// StageCarryForward covers a PATCH's cache carry-forward pass.
	StageCarryForward
	// StagePurge covers a PATCH's retired-prefix cache purge.
	StagePurge
	// StageParallelEvaluate covers a dispatch round's concurrent group
	// window when replica slots are enabled (serve.Options.ParallelEval):
	// from the round's start to the moment this task's group finished
	// evaluating on its slot — slot wait included, so the span widening
	// past StageEvaluate is the cost of slot contention.
	StageParallelEvaluate
	// NumStages bounds Stage values (array sizing).
	NumStages
)

var stageNames = [NumStages]string{
	"admission", "canonicalize", "cache_lookup", "coalesce", "queue_wait",
	"evaluate", "compute", "encode", "rebuild", "carry_forward", "purge",
	"parallel_evaluate",
}

// String returns the stage's stable wire name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage" + strconv.Itoa(int(s))
}

// StageNames lists every stage's wire name in Stage order — the fixed
// label set of the per-stage exposition.
func StageNames() []string { return stageNames[:] }

// MaxSpans bounds how many spans one trace records; recording past the
// cap drops the span (a trace is a diagnostic, never a ledger).
const MaxSpans = 16

// Span is one recorded stage: its offset from the trace start and its
// duration. Spans may nest or overlap (StageCompute sits inside
// StageEvaluate); coverage arithmetic unions the intervals.
type Span struct {
	Stage Stage
	Start time.Duration // offset from Trace.Begin
	Dur   time.Duration
}

// Trace is one request's span recorder: a fixed-size span array plus
// the request annotations the serving layer fills in. Recording is not
// synchronized — the serving path hands a trace between goroutines only
// across happens-before edges (channel send/receive), never
// concurrently. A nil *Trace is valid everywhere and records nothing,
// so untraced paths (in-process callers) pass nil.
type Trace struct {
	ID    string
	Begin time.Time

	// Request annotations, set by the owner as they become known.
	Op      string // "evaluate" | "batch" | "update"
	Network string
	Mech    string
	Source  string // "cache" | "coalesced" | "computed" (evaluate ops)
	Version uint64 // network lifecycle version served (0 = unknown)
	Status  int    // HTTP status answered
	Err     string // terminal error, if any

	spans [MaxSpans]Span
	n     int
	total time.Duration // set by Finish; 0 while live
}

// Record appends one span with an absolute start time. Nil-safe; spans
// past MaxSpans are dropped.
func (t *Trace) Record(st Stage, start time.Time, d time.Duration) {
	if t == nil || t.n >= MaxSpans {
		return
	}
	if d < 0 {
		d = 0
	}
	t.spans[t.n] = Span{Stage: st, Start: start.Sub(t.Begin), Dur: d}
	t.n++
}

// RecordSince is Record with d = now - start — the common "span ends
// now" form.
func (t *Trace) RecordSince(st Stage, start time.Time) {
	t.Record(st, start, time.Since(start))
}

// Finish stamps the trace's total wall time (idempotent: the first call
// wins, so a snapshot taken mid-flight does not shorten the final one).
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	if t.total == 0 {
		t.total = time.Since(t.Begin)
	}
	return t.total
}

// Total returns the finished wall time, or the live elapsed time for an
// unfinished trace.
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	if t.total > 0 {
		return t.total
	}
	return time.Since(t.Begin)
}

// Spans returns the recorded spans (a view of the fixed array — valid
// until the trace is released to its pool).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans[:t.n]
}

// Covered returns the union length of the span intervals — the portion
// of the trace's timeline that some span accounts for. Nested and
// overlapping spans count once, which is what makes "spans cover ≥ 95%
// of the wall time" a meaningful contract.
func (t *Trace) Covered() time.Duration {
	if t == nil || t.n == 0 {
		return 0
	}
	iv := make([]Span, t.n)
	copy(iv, t.spans[:t.n])
	sort.Slice(iv, func(i, j int) bool { return iv[i].Start < iv[j].Start })
	var covered, end time.Duration
	end = -1
	var cur time.Duration
	started := false
	for _, s := range iv {
		lo, hi := s.Start, s.Start+s.Dur
		if !started || lo > end {
			if started {
				covered += end - cur
			}
			cur, end, started = lo, hi, true
			continue
		}
		if hi > end {
			end = hi
		}
	}
	if started {
		covered += end - cur
	}
	return covered
}

// SpanSnap is the wire form of one span (microseconds, like /statsz).
type SpanSnap struct {
	Stage   string  `json:"stage"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// Snapshot is a trace frozen for the wire: what ?trace=1 inlines and
// what the slow ring retains after the live Trace returns to its pool.
type Snapshot struct {
	ID        string     `json:"trace_id"`
	Op        string     `json:"op"`
	Network   string     `json:"network,omitempty"`
	Mech      string     `json:"mech,omitempty"`
	Source    string     `json:"source,omitempty"`
	Version   uint64     `json:"version,omitempty"`
	Status    int        `json:"status,omitempty"`
	Error     string     `json:"error,omitempty"`
	Start     time.Time  `json:"start"`
	TotalUS   float64    `json:"total_us"`
	CoveredUS float64    `json:"covered_us"`
	Spans     []SpanSnap `json:"spans"`
}

// Snapshot freezes the trace. Safe on a live trace (total falls back to
// elapsed-so-far); the result shares nothing with the pooled Trace.
func (t *Trace) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	snap := Snapshot{
		ID: t.ID, Op: t.Op, Network: t.Network, Mech: t.Mech,
		Source: t.Source, Version: t.Version, Status: t.Status, Error: t.Err,
		Start:     t.Begin,
		TotalUS:   float64(t.Total().Nanoseconds()) / 1e3,
		CoveredUS: float64(t.Covered().Nanoseconds()) / 1e3,
		Spans:     make([]SpanSnap, t.n),
	}
	for i, s := range t.spans[:t.n] {
		snap.Spans[i] = SpanSnap{
			Stage:   s.Stage.String(),
			StartUS: float64(s.Start.Nanoseconds()) / 1e3,
			DurUS:   float64(s.Dur.Nanoseconds()) / 1e3,
		}
	}
	return snap
}

// Tracer hands out pooled traces with process-unique IDs and owns the
// slow-trace ring. IDs are salt-seq pairs: an 8-hex-char random process
// salt (so IDs from different daemon runs are distinguishable in logs)
// plus a monotone per-tracer sequence number.
type Tracer struct {
	salt string
	seq  atomic.Uint64
	pool sync.Pool
	ring *SlowRing
}

// NewTracer builds a tracer whose slow ring retains the ringSize
// slowest traces (ringSize <= 0 disables retention; Offer becomes a
// no-op).
func NewTracer(ringSize int) *Tracer {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// A salt is only for cross-process log readability; fall back to
		// the clock rather than failing construction.
		binary.LittleEndian.PutUint32(b[:], uint32(time.Now().UnixNano()))
	}
	tr := &Tracer{salt: hex8(binary.LittleEndian.Uint32(b[:]))}
	tr.pool.New = func() any { return new(Trace) }
	if ringSize > 0 {
		tr.ring = NewSlowRing(ringSize)
	}
	return tr
}

func hex8(v uint32) string {
	const digits = "0123456789abcdef"
	var out [8]byte
	for i := 7; i >= 0; i-- {
		out[i] = digits[v&0xf]
		v >>= 4
	}
	return string(out[:])
}

// Start checks a reset trace out of the pool with a fresh ID and the
// given op. Release it (after any ring Offer) when the request is done.
func (tr *Tracer) Start(op string) *Trace {
	//lint:poolput ownership transfers to the caller, who returns it via Tracer.Release when the request finishes
	t := tr.pool.Get().(*Trace)
	*t = Trace{
		ID:    tr.salt + "-" + strconv.FormatUint(tr.seq.Add(1), 16),
		Begin: time.Now(),
		Op:    op,
	}
	return t
}

// StartChild is Start for a sub-request (one /v1/batch element): the
// child's ID is the parent's plus ".i", so a slow element's ring entry
// points back at the batch that carried it.
func (tr *Tracer) StartChild(parent *Trace, i int) *Trace {
	//lint:poolput ownership transfers to the caller, who returns it via Tracer.Release when the request finishes
	t := tr.pool.Get().(*Trace)
	*t = Trace{
		ID:    parent.ID + "." + strconv.Itoa(i),
		Begin: time.Now(),
		Op:    parent.Op,
	}
	return t
}

// Offer finishes the trace and retains a snapshot in the slow ring if
// it ranks among the slowest seen. Call before Release.
func (tr *Tracer) Offer(t *Trace) {
	if t == nil || tr.ring == nil {
		return
	}
	t.Finish()
	tr.ring.Offer(t)
}

// Release returns the trace to the pool. The caller must not touch it
// afterwards (snapshots taken earlier stay valid — they share nothing).
func (tr *Tracer) Release(t *Trace) {
	if t != nil {
		tr.pool.Put(t)
	}
}

// Slowest returns the ring's snapshots, slowest first (empty when the
// ring is disabled).
func (tr *Tracer) Slowest() []Snapshot {
	if tr.ring == nil {
		return nil
	}
	return tr.ring.Slowest()
}
