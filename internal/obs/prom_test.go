package obs

import (
	"math"
	"strings"
	"testing"
)

// TestPromWriterRoundTrip: everything the writer emits, the parser
// accepts — headers, escaped labels, counters, gauges, and the log2
// histogram — and the parsed values equal what went in.
func TestPromWriterRoundTrip(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("wmcs_requests_total", "Requests admitted.", 42)
	p.Gauge("wmcs_in_flight_requests", "Gauge of requests inside handlers.", 3)
	p.Header("wmcs_network_version", "Per-network lifecycle version.", "gauge")
	p.Sample("wmcs_network_version", []Label{{"network", `we"ird\net`}}, 7)

	// A histogram with observations in known buckets: bucket 12 holds
	// [2^11, 2^12) ns, bucket 20 holds [2^19, 2^20) ns.
	buckets := make([]uint64, 48)
	buckets[12] = 3
	buckets[20] = 2
	p.Header("wmcs_request_duration_seconds", "Service latency.", "histogram")
	p.Log2Histogram("wmcs_request_duration_seconds", []Label{{"mech", "wireless-bb"}}, buckets, 5, 5_000_000)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	doc, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse of own exposition failed: %v\n%s", err, b.String())
	}
	if v, ok := doc.Get("wmcs_requests_total", nil); !ok || v != 42 {
		t.Fatalf("requests_total = %v, %v", v, ok)
	}
	if v, ok := doc.Get("wmcs_network_version", map[string]string{"network": `we"ird\net`}); !ok || v != 7 {
		t.Fatalf("escaped label round-trip failed: %v, %v", v, ok)
	}
	if f := doc.Families["wmcs_request_duration_seconds"]; f.Type != "histogram" {
		t.Fatalf("histogram family type = %q", f.Type)
	}
	if err := doc.CheckHistograms(); err != nil {
		t.Fatal(err)
	}

	// Cumulative mapping: the le = 2^12 ns boundary must already hold
	// the 3 observations of source bucket 12 ([2^11, 2^12) ns); the
	// le = 2^19 boundary must still hold 3 (bucket 20 is above it); the
	// le = 2^20 boundary and +Inf hold all 5.
	le := func(exp int) string { return formatValue(float64(uint64(1)<<uint(exp)) / 1e9) }
	cases := []struct {
		le   string
		want float64
	}{{le(12), 3}, {le(19), 3}, {le(20), 5}, {"+Inf", 5}}
	for _, c := range cases {
		v, ok := doc.Get("wmcs_request_duration_seconds_bucket",
			map[string]string{"mech": "wireless-bb", "le": c.le})
		if !ok || v != c.want {
			t.Fatalf("bucket le=%s = %v (ok=%v), want %v", c.le, v, ok, c.want)
		}
	}
	if v, ok := doc.Get("wmcs_request_duration_seconds_sum", map[string]string{"mech": "wireless-bb"}); !ok || math.Abs(v-0.005) > 1e-12 {
		t.Fatalf("sum = %v, want 0.005", v)
	}
	if v, ok := doc.Get("wmcs_request_duration_seconds_count", map[string]string{"mech": "wireless-bb"}); !ok || v != 5 {
		t.Fatalf("count = %v, want 5", v)
	}
}

// TestLog2HistogramFolding: observations below the first emitted
// boundary fold into it; observations above the last fold into +Inf
// only — so bucket counts stay monotone and +Inf equals count.
func TestLog2HistogramFolding(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	buckets := make([]uint64, 48)
	buckets[2] = 7              // ~2-4 ns: below the 2^10 boundary
	buckets[Log2BucketHi+3] = 1 // above the last emitted boundary
	p.Header("h", "fold test", "histogram")
	p.Log2Histogram("h", nil, buckets, 8, 1000)
	doc, err := ParseProm(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := doc.CheckHistograms(); err != nil {
		t.Fatal(err)
	}
	first, ok := doc.Get("h_bucket", map[string]string{"le": formatValue(float64(uint64(1)<<Log2BucketLo) / 1e9)})
	if !ok || first != 7 {
		t.Fatalf("first bucket = %v, want 7 (folded down)", first)
	}
	last, ok := doc.Get("h_bucket", map[string]string{"le": formatValue(float64(uint64(1)<<Log2BucketHi) / 1e9)})
	if !ok || last != 7 {
		t.Fatalf("last finite bucket = %v, want 7 (the high outlier only in +Inf)", last)
	}
	inf, ok := doc.Get("h_bucket", map[string]string{"le": "+Inf"})
	if !ok || inf != 8 {
		t.Fatalf("+Inf bucket = %v, want 8", inf)
	}
}

// TestParserRejectsMalformed: the parser is a validator — every
// malformed line is an error.
func TestParserRejectsMalformed(t *testing.T) {
	bad := []string{
		"wmcs_requests_total",              // no value
		"wmcs_requests_total notanumber",   // bad value
		`x{le="0.1} 3`,                     // unterminated label value
		`x{le=0.1} 3`,                      // unquoted label value
		`x{9le="0.1"} 3`,                   // bad label name
		"# TYPE wmcs_requests_total blorp", // unknown type
		"0bad_name 3",                      // metric names cannot start with a digit
	}
	for _, line := range bad {
		if _, err := ParseProm(strings.NewReader(line + "\n")); err == nil {
			t.Fatalf("parser accepted %q", line)
		}
	}
	// And a benign document parses.
	ok := "# some comment\n\n# HELP a b\n# TYPE a counter\na 1\na_more{x=\"y\"} 2.5e-3 1700000000\n"
	doc, err := ParseProm(strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := doc.Get("a_more", map[string]string{"x": "y"}); v != 2.5e-3 {
		t.Fatalf("timestamped sample value = %v", v)
	}
}

// TestCheckHistogramsCatchesViolations: hand-built bad expositions fail
// the structural checks the /metricsz test relies on.
func TestCheckHistogramsCatchesViolations(t *testing.T) {
	cases := map[string]string{
		"non-monotone": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"no +Inf":      "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"inf != count": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
		"missing sum":  "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
	}
	for name, text := range cases {
		doc, err := ParseProm(strings.NewReader(text))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := doc.CheckHistograms(); err == nil {
			t.Fatalf("%s: CheckHistograms accepted a bad histogram", name)
		}
	}
}
