package obs

import (
	"container/heap"
	"sort"
	"sync"
	"time"
)

// SlowRing retains the N slowest trace snapshots seen since boot: a
// bounded min-heap keyed by total duration, so admission is O(log N)
// and a fast trace under a full ring costs one comparison under the
// lock. "Slowest since boot" (not "recent slow") is the deliberate
// semantics — the ring answers "what do our worst requests spend their
// time on", and the worst offenders must not be rotated out by a stream
// of merely-slow ones (DESIGN.md §13.3).
type SlowRing struct {
	mu  sync.Mutex
	cap int
	h   snapHeap
}

// NewSlowRing builds a ring retaining the n slowest traces (n >= 1).
func NewSlowRing(n int) *SlowRing {
	if n < 1 {
		n = 1
	}
	return &SlowRing{cap: n, h: make(snapHeap, 0, n)}
}

// Offer considers a finished trace for retention; it snapshots only
// when the trace is admitted, so rejected offers allocate nothing.
func (r *SlowRing) Offer(t *Trace) {
	total := t.Total()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.h) < r.cap {
		heap.Push(&r.h, ringEntry{total: total, snap: t.Snapshot()})
		return
	}
	if total <= r.h[0].total {
		return
	}
	r.h[0] = ringEntry{total: total, snap: t.Snapshot()}
	heap.Fix(&r.h, 0)
}

// Slowest returns the retained snapshots, slowest first.
func (r *SlowRing) Slowest() []Snapshot {
	r.mu.Lock()
	entries := make([]ringEntry, len(r.h))
	copy(entries, r.h)
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].total > entries[j].total })
	out := make([]Snapshot, len(entries))
	for i, e := range entries {
		out[i] = e.snap
	}
	return out
}

// Len reports how many snapshots the ring holds.
func (r *SlowRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.h)
}

type ringEntry struct {
	total time.Duration
	snap  Snapshot
}

type snapHeap []ringEntry

func (h snapHeap) Len() int           { return len(h) }
func (h snapHeap) Less(i, j int) bool { return h[i].total < h[j].total }
func (h snapHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *snapHeap) Push(x any)        { *h = append(*h, x.(ringEntry)) }
func (h *snapHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
