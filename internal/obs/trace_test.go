package obs

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// TestTraceRecordAndCoverage pins the span arithmetic: offsets are
// relative to Begin, Covered unions overlapping intervals (so a nested
// StageCompute inside StageEvaluate counts once), and recording past
// MaxSpans drops instead of growing.
func TestTraceRecordAndCoverage(t *testing.T) {
	tr := NewTracer(0)
	tc := tr.Start("evaluate")
	base := tc.Begin

	tc.Record(StageAdmission, base, 10*time.Millisecond)
	tc.Record(StageEvaluate, base.Add(10*time.Millisecond), 80*time.Millisecond)
	// Nested inside evaluate: must not double-count.
	tc.Record(StageCompute, base.Add(10*time.Millisecond), 60*time.Millisecond)
	// Overlapping tail.
	tc.Record(StageEncode, base.Add(85*time.Millisecond), 10*time.Millisecond)

	if got, want := tc.Covered(), 95*time.Millisecond; got != want {
		t.Fatalf("Covered = %v, want %v", got, want)
	}
	if n := len(tc.Spans()); n != 4 {
		t.Fatalf("recorded %d spans, want 4", n)
	}
	for i := 0; i < 2*MaxSpans; i++ {
		tc.Record(StagePurge, base, time.Millisecond)
	}
	if n := len(tc.Spans()); n != MaxSpans {
		t.Fatalf("span cap not enforced: %d spans", n)
	}

	// A nil trace records nothing and answers zero everywhere.
	var nilT *Trace
	nilT.Record(StageAdmission, base, time.Second)
	nilT.RecordSince(StageEncode, base)
	if nilT.Covered() != 0 || nilT.Total() != 0 || nilT.Finish() != 0 {
		t.Fatal("nil trace is not inert")
	}
	tr.Release(tc)
}

// TestTraceCoverageGap: disjoint spans with a hole between them cover
// only their own lengths.
func TestTraceCoverageGap(t *testing.T) {
	tr := NewTracer(0)
	tc := tr.Start("evaluate")
	base := tc.Begin
	tc.Record(StageAdmission, base, 5*time.Millisecond)
	tc.Record(StageEncode, base.Add(20*time.Millisecond), 5*time.Millisecond)
	if got, want := tc.Covered(), 10*time.Millisecond; got != want {
		t.Fatalf("Covered = %v, want %v", got, want)
	}
	tr.Release(tc)
}

// TestTracerIDsUnique: IDs are unique within a tracer and children
// carry their parent's ID as a prefix.
func TestTracerIDsUnique(t *testing.T) {
	tr := NewTracer(0)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		tc := tr.Start("evaluate")
		if seen[tc.ID] {
			t.Fatalf("duplicate trace ID %q", tc.ID)
		}
		seen[tc.ID] = true
		if i == 0 {
			child := tr.StartChild(tc, 3)
			if want := tc.ID + ".3"; child.ID != want {
				t.Fatalf("child ID = %q, want %q", child.ID, want)
			}
			tr.Release(child)
		}
		tr.Release(tc)
	}
}

// TestSnapshotJSON: the snapshot wire form carries the annotations and
// stage names, and survives a pool round-trip (shares nothing with the
// released trace).
func TestSnapshotJSON(t *testing.T) {
	tr := NewTracer(0)
	tc := tr.Start("evaluate")
	tc.Network, tc.Mech, tc.Source, tc.Status = "uni", "wireless-bb", "computed", 200
	tc.Record(StageQueueWait, tc.Begin, 2*time.Millisecond)
	tc.Finish()
	snap := tc.Snapshot()
	tr.Release(tc)
	// Reuse the pooled trace for something else entirely.
	other := tr.Start("update")
	other.Network = "clobber"
	defer tr.Release(other)

	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Network != "uni" || decoded.Mech != "wireless-bb" || decoded.Status != 200 {
		t.Fatalf("snapshot lost annotations: %+v", decoded)
	}
	if len(decoded.Spans) != 1 || decoded.Spans[0].Stage != "queue_wait" {
		t.Fatalf("snapshot spans: %+v", decoded.Spans)
	}
	if decoded.TotalUS <= 0 || decoded.CoveredUS <= 0 {
		t.Fatalf("snapshot totals: %+v", decoded)
	}
}

// TestSlowRingKeepsSlowest: the ring retains exactly the N slowest
// traces regardless of offer order, sorted slowest-first on read.
func TestSlowRingKeepsSlowest(t *testing.T) {
	ring := NewSlowRing(3)
	// Offer durations 1..10 ms in a scrambled order.
	for _, ms := range []int{4, 9, 1, 7, 3, 10, 2, 8, 5, 6} {
		tc := &Trace{ID: fmt.Sprintf("t%d", ms), Begin: time.Now()}
		tc.total = time.Duration(ms) * time.Millisecond
		ring.Offer(tc)
	}
	got := ring.Slowest()
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	for i, want := range []string{"t10", "t9", "t8"} {
		if got[i].ID != want {
			t.Fatalf("slowest[%d] = %s, want %s (all: %v)", i, got[i].ID, want, got)
		}
	}
	// A fast trace against a full ring is rejected without shrinking it.
	fast := &Trace{ID: "fast", Begin: time.Now()}
	fast.total = time.Microsecond
	ring.Offer(fast)
	if got := ring.Slowest(); len(got) != 3 || got[2].ID != "t8" {
		t.Fatalf("fast offer disturbed the ring: %v", got)
	}
}

// TestStageNamesStable pins the wire names: exposition labels and span
// JSON depend on them.
func TestStageNamesStable(t *testing.T) {
	want := []string{"admission", "canonicalize", "cache_lookup", "coalesce",
		"queue_wait", "evaluate", "compute", "encode", "rebuild", "carry_forward", "purge",
		"parallel_evaluate"}
	names := StageNames()
	if len(names) != len(want) || len(names) != int(NumStages) {
		t.Fatalf("StageNames() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("stage %d named %q, want %q", i, names[i], want[i])
		}
	}
}

// BenchmarkTraceRecord pins the hot-path claim: recording a span into a
// pooled trace allocates nothing.
func BenchmarkTraceRecord(b *testing.B) {
	tr := NewTracer(0)
	tc := tr.Start("evaluate")
	defer tr.Release(tc)
	base := tc.Begin
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.n = 0
		tc.Record(StageEvaluate, base, time.Millisecond)
	}
}
