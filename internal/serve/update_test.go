package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/query"
	"wmcs/internal/wireless"
)

// updateFor builds a small class-appropriate delta for a network:
// moves on Euclidean networks, cost changes on abstract ones. step
// varies the delta so successive calls produce distinct states.
func updateFor(nw *wireless.Network, step int) instances.Update {
	if nw.IsEuclidean() {
		p := nw.Points()[1].Clone()
		p[0] += 0.5 + 0.25*float64(step)
		return instances.Update{Moves: []instances.MoveOp{{Station: 1, Point: p}}}
	}
	return instances.Update{SetCosts: []instances.CostSet{
		{I: 1, J: 2, Cost: 1.5 + float64(step)},
		{I: 2, J: 3, Cost: 2.5 + float64(step)},
	}}
}

// TestPatchDifferentialAllMechanisms is the lifecycle differential
// test: after a PATCH, the served bytes for every supported mechanism
// must equal a fresh one-shot evaluation over an independently mutated
// replica of the network — and the first post-update request must be a
// miss (old-generation entries are unreachable, not served).
func TestPatchDifferentialAllMechanisms(t *testing.T) {
	specs := []instances.Spec{
		{Name: "u-uni", Scenario: "uniform", N: 9, Alpha: 2, Seed: 61},
		{Name: "u-sym", Scenario: "symmetric", N: 9, Alpha: 2, Seed: 62},
		{Name: "u-line", Scenario: "line", N: 8, Alpha: 2, Seed: 63},
		{Name: "u-a1", Scenario: "uniform", N: 8, Alpha: 1, Seed: 64},
	}
	reg := NewRegistry()
	for _, sp := range specs {
		if err := reg.RegisterSpec(sp); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(reg, Options{Workers: 1})
	defer s.Close()

	for _, sp := range specs {
		entry, _ := reg.Get(sp.Name)
		nw := entry.Net
		up := updateFor(nw, 0)
		// The verification replica: same spec, same delta, fresh stack.
		replica, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		if err := up.Apply(replica); err != nil {
			t.Fatal(err)
		}

		wire := profileFor(nw.N(), nw.Source(), 17)
		// Warm the cache pre-update for every mechanism.
		for _, name := range entry.Supported {
			req := EvalRequest{Network: sp.Name, Mech: name, Profile: wire}
			if w := do(t, s, "POST", "/v1/evaluate", req); w.Code != http.StatusOK {
				t.Fatalf("%s/%s pre-update: %d %s", sp.Name, name, w.Code, w.Body.String())
			}
			if w := do(t, s, "POST", "/v1/evaluate", req); w.Header().Get("X-Wmcs-Cache") != "hit" {
				t.Fatalf("%s/%s pre-update warm-up not a hit", sp.Name, name)
			}
		}

		w := do(t, s, "PATCH", "/v1/networks/"+sp.Name, up)
		if w.Code != http.StatusOK {
			t.Fatalf("%s: PATCH: %d %s", sp.Name, w.Code, w.Body.String())
		}
		var ur updateResponse
		if err := json.Unmarshal(w.Body.Bytes(), &ur); err != nil {
			t.Fatal(err)
		}
		if ur.OldVersion != 0 || ur.Version != uint64(up.Ops()) || ur.Ops != up.Ops() {
			t.Fatalf("%s: update response %+v, want 0 -> %d", sp.Name, ur, up.Ops())
		}
		if ur.CacheEntriesDropped != len(entry.Supported) {
			t.Fatalf("%s: dropped %d cache entries, want %d", sp.Name, ur.CacheEntriesDropped, len(entry.Supported))
		}

		for _, name := range entry.Supported {
			req := EvalRequest{Network: sp.Name, Mech: name, Profile: wire}
			label := sp.Name + "/" + name
			post := do(t, s, "POST", "/v1/evaluate", req)
			if post.Code != http.StatusOK {
				t.Fatalf("%s post-update: %d %s", label, post.Code, post.Body.String())
			}
			if src := post.Header().Get("X-Wmcs-Cache"); src != "miss" {
				t.Fatalf("%s: first post-update request was a %q, want miss (stale generation served?)", label, src)
			}
			if got := post.Header().Get("X-Wmcs-Version"); got != strconv.Itoa(up.Ops()) {
				t.Fatalf("%s: version header %q, want %d", label, got, up.Ops())
			}
			c, err := Canonicalize(req, nw.N(), nw.Source())
			if err != nil {
				t.Fatal(err)
			}
			m, err := query.NewEvaluator(replica).Mechanism(name)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			oneShot, err := EncodeOutcome(sp.Name, name, m.Run(c.Profile))
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !bytes.Equal(post.Body.Bytes(), oneShot) {
				t.Fatalf("%s: post-update response differs from one-shot on the mutated replica\nserved:   %s\none-shot: %s",
					label, post.Body.String(), oneShot)
			}
			// And the repeat is a hit on the new generation.
			if w := do(t, s, "POST", "/v1/evaluate", req); w.Header().Get("X-Wmcs-Cache") != "hit" ||
				!bytes.Equal(w.Body.Bytes(), oneShot) {
				t.Fatalf("%s: post-update repeat not an identical hit", label)
			}
		}
	}
}

// TestPatchOverlappingDisableWindows drives the phantom-edge regression
// through the HTTP surface: disable two stations in one delta, revive
// them in another, and the served bytes must equal a fresh evaluation
// on the original network (the overlap used to leave a permanent
// DisabledCost edge between the revived pair).
func TestPatchOverlappingDisableWindows(t *testing.T) {
	sp := instances.Spec{Name: "flap", Scenario: "symmetric", N: 8, Seed: 71}
	reg := NewRegistry()
	if err := reg.RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, Options{Workers: 1})
	defer s.Close()
	wire := profileFor(8, 0, 31)
	req := EvalRequest{Network: "flap", Mech: "universal-shapley", Profile: wire}
	before := do(t, s, "POST", "/v1/evaluate", req)
	if before.Code != http.StatusOK {
		t.Fatalf("pre-churn: %d %s", before.Code, before.Body.String())
	}
	for _, up := range []instances.Update{
		{Disable: []int{3, 4}},
		{Enable: []int{3, 4}},
	} {
		if w := do(t, s, "PATCH", "/v1/networks/flap", up); w.Code != http.StatusOK {
			t.Fatalf("PATCH %+v: %d %s", up, w.Code, w.Body.String())
		}
	}
	after := do(t, s, "POST", "/v1/evaluate", req)
	if after.Code != http.StatusOK {
		t.Fatalf("post-churn: %d %s", after.Code, after.Body.String())
	}
	if !bytes.Equal(before.Body.Bytes(), after.Body.Bytes()) {
		t.Fatalf("full recovery serves different bytes (phantom edge?)\nbefore: %s\nafter:  %s",
			before.Body.String(), after.Body.String())
	}
	if src := after.Header().Get("X-Wmcs-Cache"); src != "miss" {
		t.Fatalf("post-recovery request was a %q (version 4 is a new generation)", src)
	}
}

// TestPatchErrors pins the PATCH failure modes: unknown network (404),
// empty or malformed delta (400), an op the network's class rejects
// (422) — with nothing applied in any failure case.
func TestPatchErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	if w := do(t, s, "PATCH", "/v1/networks/nope", instances.Update{Disable: []int{1}}); w.Code != http.StatusNotFound {
		t.Fatalf("unknown network: %d", w.Code)
	}
	if w := do(t, s, "PATCH", "/v1/networks/uni", instances.Update{}); w.Code != http.StatusBadRequest {
		t.Fatalf("empty update: %d", w.Code)
	}
	cases := []instances.Update{
		{SetCosts: []instances.CostSet{{I: 1, J: 2, Cost: 5}}},         // uni is Euclidean: costs follow geometry
		{Moves: []instances.MoveOp{{Station: 1, Point: []float64{1}}}}, // dimension change
		{Moves: []instances.MoveOp{{Station: 99, Point: []float64{1, 1}}}},
		{Disable: []int{0}}, // the source
		{Enable: []int{3}},  // already enabled
	}
	for i, up := range cases {
		if w := do(t, s, "PATCH", "/v1/networks/uni", up); w.Code != http.StatusUnprocessableEntity {
			t.Errorf("case %d: %d, want 422 (%s)", i, w.Code, w.Body.String())
		}
	}
	// A failing multi-op delta applies nothing: version still 0.
	bad := instances.Update{
		Moves: []instances.MoveOp{{Station: 1, Point: []float64{5, 5}}, {Station: 99, Point: []float64{1, 1}}},
	}
	if w := do(t, s, "PATCH", "/v1/networks/uni", bad); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("partial delta: %d", w.Code)
	}
	entry, _ := s.reg.Get("uni")
	if v := entry.Ev.Version(); v != 0 {
		t.Fatalf("failed PATCH advanced the version to %d", v)
	}
}

// TestPatchObservability: /statsz exposes the update counters, the
// rebuild histogram and the per-network generation, and the generation
// string proves the bump happened in place (same registration half).
func TestPatchObservability(t *testing.T) {
	s := newTestServer(t, Options{})
	before := statszFor(t, s)
	genBefore, ok := before.Generations["uni"]
	if !ok {
		t.Fatalf("no generation for uni: %+v", before.Generations)
	}
	entry, _ := s.reg.Get("uni")
	up := updateFor(entry.Net, 0)
	if w := do(t, s, "PATCH", "/v1/networks/uni", up); w.Code != http.StatusOK {
		t.Fatalf("PATCH: %d %s", w.Code, w.Body.String())
	}
	after := statszFor(t, s)
	if after.Updates != before.Updates+1 || after.UpdateOps != before.UpdateOps+uint64(up.Ops()) {
		t.Fatalf("update counters: %+v -> %+v", before, after)
	}
	if after.RebuildUS.Count != before.RebuildUS.Count+1 {
		t.Fatalf("rebuild histogram count %d -> %d", before.RebuildUS.Count, after.RebuildUS.Count)
	}
	genAfter := after.Generations["uni"]
	if genAfter == genBefore {
		t.Fatalf("generation did not bump: %s", genAfter)
	}
	reg, regAfter := genBefore[:len(genBefore)-2], genAfter[:len(genAfter)-2]
	if reg != regAfter {
		t.Fatalf("registration half changed (%s -> %s): update forced a re-register", genBefore, genAfter)
	}
}

func statszFor(t *testing.T, s *Server) statszPayload {
	t.Helper()
	w := do(t, s, "GET", "/statsz", nil)
	var p statszPayload
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestUpdateMidFlightLeavesNoDeadCacheEntry is the update twin of the
// evict regression: a task admitted at version v whose Put lands after
// the PATCH handler's purge of version v's prefix must delete its own
// key instead of stranding it in LRU capacity forever.
func TestUpdateMidFlightLeavesNoDeadCacheEntry(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	entry, _ := s.reg.Get("uni")
	c, err := Canonicalize(EvalRequest{Network: "uni", Mech: "universal-mc", Profile: profileFor(10, 0, 23)}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the admission pair, then let the update and its purge win the
	// race before the task's Put runs — the worst-case interleaving.
	cur := entry.Ev.Current()
	key := entry.prefixFor(cur.Version) + c.Key
	if w := do(t, s, "PATCH", "/v1/networks/uni", updateFor(entry.Net, 0)); w.Code != http.StatusOK {
		t.Fatalf("PATCH: %d %s", w.Code, w.Body.String())
	}
	body, err := s.batch.do(entry, cur.Ev, cur.Version, c, key, nil)
	if err != nil || len(body) == 0 {
		t.Fatalf("in-flight task after update: body=%q err=%v", body, err)
	}
	if _, ok := s.cache.Get(key); ok {
		t.Fatal("dead entry resident under retired version")
	}
}

// TestConcurrentReadersNeverSeeTornState is the -race hammer for the
// tentpole invariant: while a writer PATCHes a network through several
// versions, every concurrently served response must be byte-identical
// to the expected bytes of the exact version its X-Wmcs-Version header
// names — a reader can never observe a half-applied delta or bytes
// mislabeled with another version.
func TestConcurrentReadersNeverSeeTornState(t *testing.T) {
	const (
		nStations  = 8
		versionsN  = 4 // PATCHes applied by the writer
		readers    = 4
		queriesPer = 24
	)
	sp := instances.Spec{Name: "torn", Scenario: "symmetric", N: nStations, Seed: 91}
	reg := NewRegistry()
	if err := reg.RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, Options{})
	defer s.Close()

	// Precompute the update stream and, per reachable version, the
	// expected bytes of the probe queries (universal-mc and jv-moat are
	// cheap; wireless-bb would blow the single-core -race budget).
	mechs := []string{"universal-mc", "jv-moat"}
	profiles := [][]float64{profileFor(nStations, 0, 3), profileFor(nStations, 0, 8)}
	replica, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	updates := make([]instances.Update, versionsN)
	expected := map[string][]byte{} // "version/mech/profileIdx" -> bytes
	record := func() {
		snap := replica.Snapshot()
		ev := query.NewEvaluator(snap)
		for _, mech := range mechs {
			m, err := ev.Mechanism(mech)
			if err != nil {
				t.Fatal(err)
			}
			for pi, wire := range profiles {
				c, err := Canonicalize(EvalRequest{Network: sp.Name, Mech: mech, Profile: wire}, nStations, snap.Source())
				if err != nil {
					t.Fatal(err)
				}
				b, err := EncodeOutcome(sp.Name, mech, m.Run(c.Profile))
				if err != nil {
					t.Fatal(err)
				}
				expected[fmt.Sprintf("%d/%s/%d", snap.Version(), mech, pi)] = b
			}
		}
	}
	record()
	for i := range updates {
		updates[i] = instances.Update{SetCosts: []instances.CostSet{
			{I: 1, J: 2, Cost: 1 + float64(i)},
			{I: 3, J: 4, Cost: 2 + float64(i)},
			{I: 5, J: 6, Cost: 3 + float64(i)},
		}}
		if err := updates[i].Apply(replica); err != nil {
			t.Fatal(err)
		}
		record()
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the writer
		defer wg.Done()
		for _, up := range updates {
			if w := do(t, s, "PATCH", "/v1/networks/"+sp.Name, up); w.Code != http.StatusOK {
				t.Errorf("PATCH: %d %s", w.Code, w.Body.String())
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for q := 0; q < queriesPer; q++ {
				mech := mechs[(r+q)%len(mechs)]
				pi := q % len(profiles)
				w := do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: sp.Name, Mech: mech, Profile: profiles[pi]})
				if w.Code != http.StatusOK {
					t.Errorf("reader %d: %d %s", r, w.Code, w.Body.String())
					return
				}
				ver := w.Header().Get("X-Wmcs-Version")
				want, ok := expected[ver+"/"+mech+"/"+strconv.Itoa(pi)]
				if !ok {
					t.Errorf("reader %d: served version %q is not a committed state (torn swap?)", r, ver)
					return
				}
				if !bytes.Equal(w.Body.Bytes(), want) {
					t.Errorf("reader %d: bytes differ from version %s's expected state\nserved:   %s\nexpected: %s",
						r, ver, w.Body.String(), want)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	// Every version advanced the generation in place.
	entry, _ := s.reg.Get(sp.Name)
	if got, want := entry.Ev.Version(), uint64(versionsN*3); got != want {
		t.Fatalf("final version %d, want %d", got, want)
	}
}
