package serve

import (
	"errors"
	"sync"
)

// flightGroup coalesces concurrent identical work: while one caller
// computes the value for a key, later callers with the same key wait for
// that computation instead of repeating it. This is what turns a
// thundering herd of identical queries into one engine evaluation — the
// cache only helps after the first completion; the flight group helps
// during it.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do runs fn once per key among concurrent callers and hands every
// caller the same result. shared reports whether this caller rode on
// another's computation (it never ran fn itself).
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	// Clear the key and release the waiters even if fn panics (handler
	// goroutines are recovered by net/http, so the process survives a
	// panicking flight — but waiters parked on wg.Wait and every future
	// caller of the key must not be stranded on the dead call). The
	// panic itself propagates past this frame untouched.
	completed := false
	defer func() {
		if !completed {
			c.err = errFlightPanicked
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val, c.err = fn()
	completed = true
	return c.val, c.err, false
}

// errFlightPanicked is what waiters coalesced onto a panicking
// computation receive: their leader died before producing a result, and
// a nil-body success would be indistinguishable from a real answer.
var errFlightPanicked = errors.New("coalesced computation panicked")
