package serve

import "sync"

// flightGroup coalesces concurrent identical work: while one caller
// computes the value for a key, later callers with the same key wait for
// that computation instead of repeating it. This is what turns a
// thundering herd of identical queries into one engine evaluation — the
// cache only helps after the first completion; the flight group helps
// during it.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do runs fn once per key among concurrent callers and hands every
// caller the same result. shared reports whether this caller rode on
// another's computation (it never ran fn itself).
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.val, c.err, false
}
