package serve

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"wmcs/internal/instances"
	"wmcs/internal/mechreg"
	"wmcs/internal/query"
	"wmcs/internal/wireless"
)

// ErrDuplicateNetwork marks a Register/RegisterSpec failure caused by
// the name being taken (as opposed to the spec being invalid); the HTTP
// layer maps it to 409 and everything else to 400.
var ErrDuplicateNetwork = errors.New("already registered")

// Registry holds the named networks a server hosts, one shared
// query.Evaluator per network — the evaluator caches the per-network
// substrates (NWST reduction, universal tree, mechanism instances), so
// every client of a network amortizes the same construction. Safe for
// concurrent use.
type Registry struct {
	mu    sync.RWMutex
	nets  map[string]*NetworkEntry
	order []string // registration order, for stable listings
	// parallel is the intra-query parallel width every *future*
	// registration builds its evaluators with (query.WithParallel);
	// 0 keeps the historical serial tier. Set it before registering —
	// SetParallel does not retrofit existing entries.
	parallel int
}

// NetworkEntry is one hosted network. Spec is the manifest spec it was
// built from (zero-valued when the network was registered directly).
type NetworkEntry struct {
	Name string
	Spec instances.Spec
	// Net is the network as registered. Its station count, source and
	// class are immutable under the lifecycle ops, so request
	// validation and domain checks read it freely; *current* costs live
	// in the versioned evaluator's snapshot (Ev.Network()), which PATCH
	// updates swap out from under it.
	Net *wireless.Network
	// Ev is the versioned query engine: reads resolve one consistent
	// {evaluator, version} pair, updates mutate a private copy and swap
	// atomically while admitted queries drain on the pair they hold.
	Ev *query.VersionedEvaluator
	// Supported is the registry-derived mechanism set this network's
	// domain admits, in registry order — exactly what /v1/networks
	// advertises for the entry and what evaluation will not 422.
	// Computed once at registration (the network class never changes,
	// updates included: mutation ops preserve it by construction).
	Supported []string
	supports  map[string]bool
	// gen is this registration's unique generation number: cache keys
	// are prefixed with it, so results computed against this entry can
	// never be served for a later network registered under the same
	// name (the evict → re-register race).
	gen uint64
	// evicted flips (before the evict handler purges the name's cache
	// prefix) when the entry leaves its registry. The batcher re-checks
	// it after caching a result so a task that was admitted before the
	// evict cannot strand an unreachable entry in LRU capacity.
	evicted atomic.Bool
}

// registrations hands out generation numbers, unique across every
// registry in the process.
var registrations atomic.Uint64

// prefixFor is the cache-key prefix of one (registration, version)
// generation: `name ␟ regGen.version ␟`. The registration half retires
// the keys across evict → re-register cycles; the version half retires
// them across in-place updates — either bump makes every older key
// unreachable by construction, which is why invalidation is O(1) and
// race-free (no purge has to *complete* before correctness holds; the
// purges only reclaim space). It starts with name+0x1f so eviction by
// name prefix (networkKeyPrefix) catches every generation of the name.
func (e *NetworkEntry) prefixFor(version uint64) string {
	return e.Name + "\x1f" + strconv.FormatUint(e.gen, 10) + "." + strconv.FormatUint(version, 10) + "\x1f"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{nets: make(map[string]*NetworkEntry)}
}

// SetParallel makes every future registration build its versioned
// evaluators on the parallel evaluation tier at the given width
// (DESIGN.md §14); workers <= 0 selects the serial tier. The width
// carries across PATCH swaps automatically (VersionedEvaluator re-applies
// its construction options on every rebuild). Call before registering
// networks — entries already hosted keep the tier they were built with.
func (r *Registry) SetParallel(workers int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if workers < 0 {
		workers = 0
	}
	r.parallel = workers
}

// evalOpts resolves the evaluator construction options a new entry uses.
func (r *Registry) evalOpts() []query.Option {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.parallel >= 1 {
		return []query.Option{query.WithParallel(query.ParallelSpec{Workers: r.parallel})}
	}
	return nil
}

// DefaultSpecs is the demo manifest wmcsd and wmcsload fall back to
// when no -manifest is given: a small scenario-diverse set, cheap
// enough that cold wireless-bb queries stay in the tens of
// milliseconds.
func DefaultSpecs() []instances.Spec {
	return []instances.Spec{
		{Name: "uni12", Scenario: "uniform", N: 12, Alpha: 2, Seed: 1},
		{Name: "clust12", Scenario: "clustered", N: 12, Alpha: 2, Seed: 2},
		{Name: "ring10", Scenario: "ring", N: 10, Alpha: 2, Seed: 3},
		{Name: "line12", Scenario: "line", N: 12, Alpha: 2, Seed: 4},
	}
}

// Register hosts a network under a name. Names are unique: registering
// an existing name is an error (evict first — silent replacement would
// let stale cache entries describe a different network).
func (r *Registry) Register(name string, nw *wireless.Network) error {
	// Validate the name before NewVersioned snapshots the network, so a
	// rejected registration does no construction work.
	if err := validateName(name); err != nil {
		return err
	}
	return r.add(&NetworkEntry{Name: name, Net: nw, Ev: query.NewVersioned(nw, r.evalOpts()...)})
}

// RegisterSpec builds a scenario-registry spec and hosts the result
// under the spec's name.
func (r *Registry) RegisterSpec(sp instances.Spec) error {
	if sp.Name == "" {
		return fmt.Errorf("serve: spec %v has no name", sp)
	}
	nw, err := sp.Build()
	if err != nil {
		return err
	}
	return r.add(&NetworkEntry{Name: sp.Name, Spec: sp, Net: nw, Ev: query.NewVersioned(nw, r.evalOpts()...)})
}

// CheckMech reports whether the entry's network admits the named
// mechanism; a non-nil error wraps mechreg.ErrUnsupportedDomain (or
// ErrUnknownMechanism) and is what the HTTP layer maps to a structured
// 422. The common case is an O(1) set lookup against the snapshot taken
// at registration.
func (e *NetworkEntry) CheckMech(name string) error {
	if e.supports != nil && e.supports[name] {
		return nil
	}
	// Miss or hand-built entry (tests): ask the registry for the
	// canonical typed error.
	return mechreg.Supports(name, e.Net)
}

func (r *Registry) add(e *NetworkEntry) error {
	if err := validateName(e.Name); err != nil {
		return err
	}
	e.Supported = mechreg.SupportedNames(e.Net)
	e.supports = make(map[string]bool, len(e.Supported))
	for _, n := range e.Supported {
		e.supports[n] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nets[e.Name]; ok {
		return fmt.Errorf("serve: network %q %w", e.Name, ErrDuplicateNetwork)
	}
	e.gen = registrations.Add(1)
	r.nets[e.Name] = e
	r.order = append(r.order, e.Name)
	return nil
}

// validateName rejects names that would break the machinery around
// them: control characters collide with the 0x1f cache-key separator
// (a name "a\x1fb" would be purged by evicting "a"), and '/' can never
// be addressed by the DELETE /v1/networks/{name} route.
func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: network name is empty")
	}
	for _, c := range name {
		if c < 0x20 || c == 0x7f || c == '/' {
			return fmt.Errorf("serve: network name %q contains %q (control characters and '/' are not allowed)", name, c)
		}
	}
	return nil
}

// Evict removes a network, reporting whether it was present. In-flight
// queries keep the entry they were admitted with and complete normally
// (their results land under the evicted generation's cache keys, which
// no future request can form); the server purges the name's cache
// entries.
func (r *Registry) Evict(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.nets[name]
	if !ok {
		return false
	}
	e.evicted.Store(true)
	delete(r.nets, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// Get looks a network up by name.
func (r *Registry) Get(name string) (*NetworkEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.nets[name]
	return e, ok
}

// Entries lists the hosted networks in registration order.
func (r *Registry) Entries() []*NetworkEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*NetworkEntry, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.nets[name])
	}
	return out
}

// Len returns the number of hosted networks.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nets)
}

// LoadManifest registers every spec of a startup manifest: a JSON array
// of scenario-registry specs, e.g.
//
//	[{"name": "uni-32", "scenario": "uniform", "n": 32, "alpha": 2, "seed": 7},
//	 {"name": "line-16", "scenario": "line", "n": 16, "seed": 3}]
//
// It returns how many networks it registered; on error the networks
// registered before the failing spec stay registered (the daemon treats
// any error as fatal at boot).
func (r *Registry) LoadManifest(src io.Reader) (int, error) {
	specs, err := instances.ParseManifest(src)
	if err != nil {
		return 0, err
	}
	for i, sp := range specs {
		if err := r.RegisterSpec(sp); err != nil {
			return i, fmt.Errorf("serve: manifest entry %d (%s): %w", i, sp, err)
		}
	}
	return len(specs), nil
}
