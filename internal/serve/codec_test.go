package serve

import (
	"strings"
	"testing"

	"wmcs/internal/mech"
)

func TestCanonicalizeFoldsRIntoProfile(t *testing.T) {
	// (R, u) must key identically to (nil, mask(u)): the mechanism only
	// ever sees the masked profile.
	full := []float64{0, 5, 7, 3, 9}
	a, err := Canonicalize(EvalRequest{Network: "n", Mech: "universal-shapley", R: []int{3, 1, 3}, Profile: full}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	masked := []float64{0, 5, 0, 3, 0}
	b, err := Canonicalize(EvalRequest{Network: "n", Mech: "universal-shapley", Profile: masked}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key != b.Key {
		t.Fatalf("restricted and pre-masked requests keyed differently:\n%q\n%q", a.Key, b.Key)
	}
	// Reporting zero is identical to not requesting: dropping index 3
	// from R but zeroing its utility gives the same key as excluding it.
	c, err := Canonicalize(EvalRequest{Network: "n", Mech: "universal-shapley", R: []int{1}, Profile: full}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Canonicalize(EvalRequest{Network: "n", Mech: "universal-shapley", Profile: []float64{0, 5, 0, 0, 0}}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Key != d.Key {
		t.Fatalf("zero-report and non-request keyed differently")
	}
}

func TestCanonicalizeQuantizes(t *testing.T) {
	mk := func(v float64) string {
		c, err := Canonicalize(EvalRequest{Network: "n", Mech: "jv-moat", Profile: []float64{0, v}}, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		return c.Key
	}
	if mk(1.00000049) != mk(1.0) {
		t.Fatal("sub-grid difference changed the key")
	}
	if mk(1.0000006) == mk(1.0) {
		t.Fatal("super-grid difference did not change the key")
	}
	// The source utility never reaches the key.
	a, _ := Canonicalize(EvalRequest{Network: "n", Mech: "jv-moat", Profile: []float64{42, 1}}, 2, 0)
	b, _ := Canonicalize(EvalRequest{Network: "n", Mech: "jv-moat", Profile: []float64{0, 1}}, 2, 0)
	if a.Key != b.Key {
		t.Fatal("source utility leaked into the key")
	}
}

func TestCanonicalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		req  EvalRequest
	}{
		{"unknown mech", EvalRequest{Mech: "nope", Profile: []float64{0, 1}}},
		{"short profile", EvalRequest{Mech: "jv-moat", Profile: []float64{0}}},
		{"long profile", EvalRequest{Mech: "jv-moat", Profile: []float64{0, 1, 2}}},
		{"receiver out of range", EvalRequest{Mech: "jv-moat", R: []int{2}, Profile: []float64{0, 1}}},
		{"negative receiver", EvalRequest{Mech: "jv-moat", R: []int{-1}, Profile: []float64{0, 1}}},
		{"negative utility", EvalRequest{Mech: "jv-moat", Profile: []float64{0, -1}}},
		{"nan utility", EvalRequest{Mech: "jv-moat", Profile: []float64{0, nan()}}},
		{"nan outside R", EvalRequest{Mech: "jv-moat", R: []int{0}, Profile: []float64{1, nan()}}},
		{"negative outside R", EvalRequest{Mech: "jv-moat", R: []int{0}, Profile: []float64{1, -2}}},
		// v/Quantum overflows float64 near 1.8e302: a finite wire
		// utility with no grid point must be rejected, not
		// canonicalized to +Inf (REVIEW: NaN shares downstream).
		{"grid overflow", EvalRequest{Mech: "jv-moat", Profile: []float64{0, 1e303}}},
		{"grid overflow outside R", EvalRequest{Mech: "jv-moat", R: []int{0}, Profile: []float64{1, 1e303}}},
	}
	for _, c := range cases {
		if _, err := Canonicalize(c.req, 2, 0); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func nan() float64 { var z float64; return z / z }

func TestEncodeOutcomeDeterministic(t *testing.T) {
	o := mech.Outcome{
		Receivers: []int{1, 3, 4},
		Shares:    map[int]float64{4: 2.5, 1: 1.25, 3: 0.125},
		Cost:      3.875,
	}
	ab, err := EncodeOutcome("net", "jv-moat", o)
	if err != nil {
		t.Fatal(err)
	}
	a := string(ab)
	for i := 0; i < 50; i++ {
		bb, err := EncodeOutcome("net", "jv-moat", o)
		if err != nil {
			t.Fatal(err)
		}
		if b := string(bb); b != a {
			t.Fatalf("encoding varied across calls:\n%s\n%s", a, b)
		}
	}
	if !strings.Contains(a, `"shares":[{"agent":1,"share":1.25},{"agent":3,"share":0.125},{"agent":4,"share":2.5}]`) {
		t.Fatalf("shares not sorted by agent: %s", a)
	}
	// Empty outcomes encode arrays, not nulls.
	eb, err := EncodeOutcome("net", "jv-moat", mech.Outcome{})
	if err != nil {
		t.Fatal(err)
	}
	if e := string(eb); strings.Contains(e, "null") {
		t.Fatalf("empty outcome encoded null: %s", e)
	}
	// An unrepresentable outcome is an error, never a panic: the caller
	// is the admission dispatcher, which must survive it.
	if _, err := EncodeOutcome("net", "jv-moat", mech.Outcome{Shares: map[int]float64{0: nan()}}); err == nil {
		t.Fatal("NaN share encoded without error")
	}
}
