package serve

import (
	"errors"
	"fmt"
	"sync"

	"wmcs/internal/query"
)

// errInternal marks server-side faults — recovered evaluation panics,
// unencodable outcomes — as distinct from request errors, so the HTTP
// layer can answer 500 instead of blaming the client with a 4xx.
var errInternal = errors.New("internal error")

// batcher is the admission layer between HTTP handlers and the engine
// pool. Handlers submit one canonical query each; a single dispatcher
// goroutine drains whatever has accumulated, groups it by network, and
// runs each group as one EvaluateBatch on the evaluator's engine pool.
// Under load this turns N concurrent distinct queries into a few
// pool-wide batches instead of N independent evaluations; when idle it
// degenerates to batch size 1 with no added latency (the dispatcher
// blocks on the channel, not on a timer).
//
// Tasks carry the NetworkEntry they were admitted with: an entry
// evicted mid-flight still answers (correctly, for the network the
// client addressed), and its result is cached under that registration's
// generation prefix — unreachable by any future request, so a
// re-registered name can never serve a predecessor's bytes.
type batcher struct {
	cache   *Cache
	stats   *Stats
	workers int
	maxWait int // max tasks drained into one dispatch round

	tasks    chan *admitTask
	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

type admitTask struct {
	entry *NetworkEntry
	canon CanonRequest
	key   string // full cache key (generation prefix + canon.Key)
	reply chan taskResult
}

type taskResult struct {
	body []byte
	err  error
}

func newBatcher(cache *Cache, stats *Stats, workers, maxBatch int) *batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	b := &batcher{
		cache:   cache,
		stats:   stats,
		workers: workers,
		maxWait: maxBatch,
		tasks:   make(chan *admitTask, maxBatch),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go b.loop()
	return b
}

// do evaluates one canonical query through the admission queue and
// blocks for its result. Callers sit behind the singleflight group, so
// at most one task per distinct key is in the queue at a time.
func (b *batcher) do(entry *NetworkEntry, c CanonRequest, key string) ([]byte, error) {
	t := &admitTask{entry: entry, canon: c, key: key, reply: make(chan taskResult, 1)}
	select {
	case b.tasks <- t:
	case <-b.quit:
		return nil, errShuttingDown
	}
	select {
	case r := <-t.reply:
		return r.body, r.err
	case <-b.quit:
		// The dispatcher may have exited between our enqueue and its
		// drain; prefer a result if one landed (the reply channel is
		// buffered, so a late dispatcher reply never blocks either way).
		select {
		case r := <-t.reply:
			return r.body, r.err
		default:
			return nil, errShuttingDown
		}
	}
}

var errShuttingDown = fmt.Errorf("server shutting down")

// close stops the dispatcher after it finishes the round in progress;
// tasks still queued are failed cleanly. Idempotent.
func (b *batcher) close() {
	b.stopOnce.Do(func() { close(b.quit) })
	<-b.done
}

func (b *batcher) loop() {
	defer close(b.done)
	for {
		select {
		case <-b.quit:
			b.failQueued()
			return
		case t := <-b.tasks:
			batch := []*admitTask{t}
		drain:
			for len(batch) < b.maxWait {
				select {
				case t2 := <-b.tasks:
					batch = append(batch, t2)
				default:
					break drain
				}
			}
			b.run(batch)
		}
	}
}

func (b *batcher) failQueued() {
	for {
		select {
		case t := <-b.tasks:
			t.reply <- taskResult{err: errShuttingDown}
		default:
			return
		}
	}
}

// run executes one dispatch round: group by admitted entry, evaluate
// each group as one batch on the engine pool, encode, fill the cache,
// reply.
func (b *batcher) run(batch []*admitTask) {
	b.stats.Batches.Add(1)
	b.stats.BatchedQueries.Add(uint64(len(batch)))
	byEntry := make(map[*NetworkEntry][]*admitTask)
	var order []*NetworkEntry
	for _, t := range batch {
		if _, ok := byEntry[t.entry]; !ok {
			order = append(order, t.entry)
		}
		byEntry[t.entry] = append(byEntry[t.entry], t)
	}
	for _, entry := range order {
		b.runGroup(entry, byEntry[entry])
	}
}

// runGroup evaluates one network's share of a dispatch round. It runs
// on the dispatcher goroutine, where net/http's per-handler recover
// cannot reach — an uncaught panic here kills the whole daemon — so any
// panic out of evaluation or encoding is converted into an error reply
// for every task still waiting.
func (b *batcher) runGroup(entry *NetworkEntry, group []*admitTask) {
	replied := 0
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("evaluating %s: %w: %v", entry.Name, errInternal, r)
			for _, t := range group[replied:] {
				t.reply <- taskResult{err: err}
			}
		}
	}()
	reqs := make([]query.Request, len(group))
	for i, t := range group {
		reqs[i] = query.Request{Mech: t.canon.Mech, Profile: t.canon.Profile}
	}
	resps := entry.Ev.EvaluateBatch(reqs, b.workers)
	for i, t := range group {
		var res taskResult
		if resps[i].Err != nil {
			res.err = resps[i].Err
		} else if body, err := EncodeOutcome(entry.Name, t.canon.Mech, resps[i].Outcome); err != nil {
			res.err = fmt.Errorf("%w: %v", errInternal, err)
		} else {
			b.cache.Put(t.key, body)
			if entry.evicted.Load() {
				// The entry left the registry while we were evaluating.
				// Our Put may have landed after the evict handler's
				// DeletePrefix, which would strand an entry no future
				// request can reach (the generation is retired) in LRU
				// capacity forever. Deleting our own key closes the
				// race: if we instead observed evicted == false, the
				// flag was set after our Put and the handler's
				// DeletePrefix — which runs after the flag store — is
				// guaranteed to sweep it.
				b.cache.Delete(t.key)
			}
			res.body = body
		}
		replied++
		t.reply <- res
	}
}
