package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"wmcs/internal/obs"
	"wmcs/internal/query"
)

// errInternal marks server-side faults — recovered evaluation panics,
// unencodable outcomes — as distinct from request errors, so the HTTP
// layer can answer 500 instead of blaming the client with a 4xx.
var errInternal = errors.New("internal error")

// batcher is the admission layer between HTTP handlers and the engine
// pool. Handlers submit one canonical query each; a single dispatcher
// goroutine drains whatever has accumulated, groups it by network, and
// runs each group as one EvaluateBatch on the evaluator's engine pool.
// Under load this turns N concurrent distinct queries into a few
// pool-wide batches instead of N independent evaluations; when idle it
// degenerates to batch size 1 with no added latency (the dispatcher
// blocks on the channel, not on a timer).
//
// Tasks carry the NetworkEntry *and* the {evaluator, version} pair they
// were admitted with: an entry evicted or updated mid-flight still
// answers (correctly, for the network state the client was admitted
// against), and its result is cached under that registration's
// generation-and-version prefix — unreachable by any future request, so
// neither a re-registered name nor an updated network can ever serve a
// predecessor's bytes.
// When parallel > 1 the dispatcher additionally runs a round's *groups*
// concurrently on up to that many replica slots (DESIGN.md §14): tasks
// admitted against different network versions no longer serialize
// behind one another's evaluations. Correctness does not depend on the
// schedule — every group evaluates on its own concurrency-safe
// evaluator, each task has a private buffered reply channel, and cache
// Puts for a given key always carry the same bytes — so replica
// dispatch changes wall clock only, never a response byte.
type batcher struct {
	cache   *Cache
	stats   *Stats
	workers int
	maxWait int // max tasks drained into one dispatch round

	// parallel is the replica-slot count (serve.Options.ParallelEval);
	// slots is the semaphore bounding concurrent group dispatch. 0 or 1
	// keeps the historical serial group loop.
	parallel int
	slots    chan struct{}

	tasks    chan *admitTask
	quit     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

type admitTask struct {
	entry *NetworkEntry
	// ev and ver are the consistent pair resolved at admission: the
	// evaluator the task runs on and the network version its cache key
	// encodes. Both come from one atomic Current() load, so a task can
	// never cache bytes computed on one version under another's key.
	ev    *query.Evaluator
	ver   uint64
	canon CanonRequest
	key   string // full cache key (generation/version prefix + canon.Key)
	reply chan taskResult

	// enq and spans are the task's trace bookkeeping. The dispatcher owns
	// spans until it sends the reply; the submitting handler replays them
	// into its own *obs.Trace only after receiving from the reply channel,
	// so the two goroutines never touch a trace concurrently (the channel
	// edge is the happens-before). Fixed-size: the dispatcher records at
	// most queue_wait, evaluate, compute, parallel_evaluate and encode.
	enq    time.Time
	spans  [5]spanRec
	nspans int
}

// spanRec is a dispatcher-side span: absolute start plus duration,
// converted to a trace-relative obs.Span at replay time.
type spanRec struct {
	st    obs.Stage
	start time.Time
	dur   time.Duration
}

// span records one dispatcher-side stage; over-recording is dropped
// (mirrors obs.Trace semantics).
func (t *admitTask) span(st obs.Stage, start time.Time, d time.Duration) {
	if t.nspans < len(t.spans) {
		t.spans[t.nspans] = spanRec{st: st, start: start, dur: d}
		t.nspans++
	}
}

// replay copies the dispatcher-recorded spans into the handler's trace.
// Call only from the goroutine that owns tr, after <-t.reply.
func (t *admitTask) replay(tr *obs.Trace) {
	for _, s := range t.spans[:t.nspans] {
		tr.Record(s.st, s.start, s.dur)
	}
}

type taskResult struct {
	body []byte
	err  error
}

func newBatcher(cache *Cache, stats *Stats, workers, maxBatch, parallel int) *batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	b := &batcher{
		cache:    cache,
		stats:    stats,
		workers:  workers,
		maxWait:  maxBatch,
		parallel: parallel,
		tasks:    make(chan *admitTask, maxBatch),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if parallel > 1 {
		b.slots = make(chan struct{}, parallel)
	}
	go b.loop()
	return b
}

// do evaluates one canonical query through the admission queue and
// blocks for its result. Callers sit behind the singleflight group, so
// at most one task per distinct key is in the queue at a time. tr (nil
// ok) receives the dispatcher-side spans — replayed here, on the
// caller's goroutine, never on the shutdown path where the trace may
// already be released by the time the dispatcher drains the task.
func (b *batcher) do(entry *NetworkEntry, ev *query.Evaluator, ver uint64, c CanonRequest, key string, tr *obs.Trace) ([]byte, error) {
	t := &admitTask{entry: entry, ev: ev, ver: ver, canon: c, key: key,
		reply: make(chan taskResult, 1), enq: time.Now()}
	select {
	case b.tasks <- t:
	case <-b.quit:
		return nil, errShuttingDown
	}
	select {
	case r := <-t.reply:
		t.replay(tr)
		return r.body, r.err
	case <-b.quit:
		// The dispatcher may have exited between our enqueue and its
		// drain; prefer a result if one landed (the reply channel is
		// buffered, so a late dispatcher reply never blocks either way).
		select {
		case r := <-t.reply:
			t.replay(tr)
			return r.body, r.err
		default:
			return nil, errShuttingDown
		}
	}
}

var errShuttingDown = fmt.Errorf("server shutting down")

// close stops the dispatcher after it finishes the round in progress;
// tasks still queued are failed cleanly. Idempotent.
func (b *batcher) close() {
	b.stopOnce.Do(func() { close(b.quit) })
	<-b.done
}

func (b *batcher) loop() {
	defer close(b.done)
	for {
		select {
		case <-b.quit:
			b.failQueued()
			return
		case t := <-b.tasks:
			batch := []*admitTask{t}
		drain:
			for len(batch) < b.maxWait {
				select {
				case t2 := <-b.tasks:
					batch = append(batch, t2)
				default:
					break drain
				}
			}
			b.run(batch)
		}
	}
}

func (b *batcher) failQueued() {
	for {
		select {
		case t := <-b.tasks:
			t.reply <- taskResult{err: errShuttingDown}
		default:
			return
		}
	}
}

// run executes one dispatch round: group by the evaluator tasks were
// admitted with (one per live network version), evaluate each group as
// one batch on the engine pool, encode, fill the cache, reply. Grouping
// by evaluator rather than entry matters under churn: tasks admitted on
// either side of an update carry different evaluators and must not
// share a batch.
func (b *batcher) run(batch []*admitTask) {
	b.stats.Batches.Add(1)
	b.stats.BatchedQueries.Add(uint64(len(batch)))
	byEv := make(map[*query.Evaluator][]*admitTask)
	var order []*query.Evaluator
	for _, t := range batch {
		if _, ok := byEv[t.ev]; !ok {
			order = append(order, t.ev)
		}
		byEv[t.ev] = append(byEv[t.ev], t)
	}
	if b.slots != nil && len(order) > 1 {
		// Replica dispatch: every group gets a slot (bounded by the
		// configured width) and runs concurrently. Each group still owns
		// its tasks exclusively and answers on per-task buffered
		// channels, so no reply ordering is imposed across groups.
		b.stats.ReplicaRounds.Add(1)
		b.stats.ReplicaGroups.Add(uint64(len(order)))
		roundStart := time.Now()
		var wg sync.WaitGroup
		for _, ev := range order {
			ev, group := ev, byEv[ev]
			b.slots <- struct{}{}
			wg.Add(1)
			go func() {
				defer func() { <-b.slots; wg.Done() }()
				b.runGroup(ev, group, roundStart)
			}()
		}
		wg.Wait()
		return
	}
	for _, ev := range order {
		b.runGroup(ev, byEv[ev], time.Time{})
	}
}

// runGroup evaluates one network version's share of a dispatch round.
// It runs on the dispatcher goroutine (or a replica-slot goroutine when
// parallel dispatch is enabled), where net/http's per-handler recover
// cannot reach — an uncaught panic here kills the whole daemon — so any
// panic out of evaluation or encoding is converted into an error reply
// for every task still waiting. A non-zero roundStart marks replica
// dispatch and anchors each task's parallel_evaluate span.
func (b *batcher) runGroup(ev *query.Evaluator, group []*admitTask, roundStart time.Time) {
	entry := group[0].entry // one evaluator never spans entries
	replied := 0
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("evaluating %s: %w: %v", entry.Name, errInternal, r)
			for _, t := range group[replied:] {
				t.reply <- taskResult{err: err}
			}
		}
	}()
	// Per-task queue wait ends when this group's evaluation starts; a
	// group later in the round legitimately waits through its
	// predecessors' evaluations.
	groupStart := time.Now()
	for _, t := range group {
		t.span(obs.StageQueueWait, t.enq, groupStart.Sub(t.enq))
	}
	reqs := make([]query.Request, len(group))
	for i, t := range group {
		reqs[i] = query.Request{Mech: t.canon.Mech, Profile: t.canon.Profile, Approx: t.canon.Approx}
	}
	resps, durs := ev.EvaluateBatchTimed(reqs, b.workers)
	evalDur := time.Since(groupStart)
	for i, t := range group {
		// Every task shares the round's evaluate wall; its own compute
		// time nests inside (start aligned to the batch start — the
		// engine does not report per-request scheduling offsets).
		t.span(obs.StageEvaluate, groupStart, evalDur)
		t.span(obs.StageCompute, groupStart, durs[i])
		if !roundStart.IsZero() {
			// Replica dispatch: the concurrent window this group occupied,
			// slot wait included (its excess over evaluate is contention).
			t.span(obs.StageParallelEvaluate, roundStart, time.Since(roundStart))
		}
	}
	for i, t := range group {
		var res taskResult
		encStart := time.Now()
		if resps[i].Err != nil {
			res.err = resps[i].Err
		} else if body, err := EncodeOutcomeCert(entry.Name, t.canon.Mech, resps[i].Outcome, resps[i].Cert); err != nil {
			res.err = fmt.Errorf("%w: %v", errInternal, err)
		} else {
			b.cache.Put(t.key, body)
			if t.entry.evicted.Load() || t.entry.Ev.Version() != t.ver {
				// The entry left the registry — or its network was
				// updated past the version we were admitted with — while
				// we were evaluating. Our Put may have landed after the
				// handler's DeletePrefix for our retired prefix, which
				// would strand an entry no future request can reach in
				// LRU capacity forever. Deleting our own key closes the
				// race: if we instead observed evicted == false and our
				// own version, the flip happened after our Put, and the
				// handler's DeletePrefix — which runs after the flip —
				// is guaranteed to sweep it.
				b.cache.Delete(t.key)
			}
			res.body = body
			t.span(obs.StageEncode, encStart, time.Since(encStart))
		}
		replied++
		t.reply <- res
	}
}
