package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/mech"
)

// newTestServer hosts two small networks ("uni", 10 stations uniform;
// "line", 8 stations on a segment) behind a fresh server.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	reg := NewRegistry()
	for _, sp := range []instances.Spec{
		{Name: "uni", Scenario: "uniform", N: 10, Alpha: 2, Seed: 1},
		{Name: "line", Scenario: "line", N: 8, Alpha: 2, Seed: 2},
	} {
		if err := reg.RegisterSpec(sp); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(reg, opts)
	t.Cleanup(s.Close)
	return s
}

// do runs one request through the handler and returns the recorder.
func do(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func profileFor(n, source int, seed int64) []float64 {
	u := make([]float64, n)
	for i := range u {
		if i != source {
			u[i] = float64((int64(i)*7+seed*13)%50) + 0.5
		}
	}
	return u
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Options{})
	w := do(t, s, "GET", "/healthz", nil)
	if w.Code != http.StatusOK || strings.TrimSpace(w.Body.String()) != "ok" {
		t.Fatalf("healthz: %d %q", w.Code, w.Body.String())
	}
}

func TestListAndRegisterAndEvict(t *testing.T) {
	s := newTestServer(t, Options{})
	w := do(t, s, "GET", "/v1/networks", nil)
	var list struct {
		Networks   []networkInfo `json:"networks"`
		Mechanisms []string      `json:"mechanisms"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Networks) != 2 || list.Networks[0].Name != "uni" || list.Networks[1].Name != "line" {
		t.Fatalf("listing: %+v", list.Networks)
	}
	if len(list.Mechanisms) == 0 {
		t.Fatal("no mechanisms listed")
	}
	// Register a third network over the API, query it.
	w = do(t, s, "POST", "/v1/networks", instances.Spec{Name: "ring9", Scenario: "ring", N: 9, Seed: 5})
	if w.Code != http.StatusCreated {
		t.Fatalf("register: %d %s", w.Code, w.Body.String())
	}
	// Duplicate registration conflicts.
	w = do(t, s, "POST", "/v1/networks", instances.Spec{Name: "ring9", Scenario: "ring", N: 9, Seed: 5})
	if w.Code != http.StatusConflict {
		t.Fatalf("duplicate register: %d", w.Code)
	}
	w = do(t, s, "POST", "/v1/evaluate", EvalRequest{
		Network: "ring9", Mech: "universal-shapley", Profile: profileFor(9, 0, 3),
	})
	if w.Code != http.StatusOK {
		t.Fatalf("evaluate on registered network: %d %s", w.Code, w.Body.String())
	}
	// Evict and verify it is gone and its cache entries are dropped.
	w = do(t, s, "DELETE", "/v1/networks/ring9", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("evict: %d %s", w.Code, w.Body.String())
	}
	var ev struct {
		Dropped int `json:"cache_entries_dropped"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Dropped != 1 {
		t.Fatalf("evict dropped %d cache entries, want 1", ev.Dropped)
	}
	if w = do(t, s, "DELETE", "/v1/networks/ring9", nil); w.Code != http.StatusNotFound {
		t.Fatalf("second evict: %d", w.Code)
	}
	if w = do(t, s, "POST", "/v1/evaluate", EvalRequest{
		Network: "ring9", Mech: "universal-shapley", Profile: profileFor(9, 0, 3),
	}); w.Code != http.StatusNotFound {
		t.Fatalf("evaluate on evicted network: %d", w.Code)
	}
}

func TestEvaluateHitIsByteIdentical(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	req := EvalRequest{Network: "uni", Mech: "wireless-bb", Profile: profileFor(10, 0, 7)}
	cold := do(t, s, "POST", "/v1/evaluate", req)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold: %d %s", cold.Code, cold.Body.String())
	}
	if got := cold.Header().Get("X-Wmcs-Cache"); got != "miss" {
		t.Fatalf("cold source %q", got)
	}
	warm := do(t, s, "POST", "/v1/evaluate", req)
	if got := warm.Header().Get("X-Wmcs-Cache"); got != "hit" {
		t.Fatalf("warm source %q", got)
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatalf("hit differed from cold:\n%s\n%s", cold.Body.String(), warm.Body.String())
	}
	// A request that differs only under the quantization grid hits too.
	bumped := req
	bumped.Profile = append([]float64(nil), req.Profile...)
	bumped.Profile[3] += Quantum / 8
	w := do(t, s, "POST", "/v1/evaluate", bumped)
	if got := w.Header().Get("X-Wmcs-Cache"); got != "hit" {
		t.Fatalf("sub-grid request source %q, want hit", got)
	}
	if !bytes.Equal(cold.Body.Bytes(), w.Body.Bytes()) {
		t.Fatal("sub-grid hit differed from cold")
	}
	var resp EvalResponse
	if err := json.Unmarshal(cold.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Network != "uni" || resp.Mech != "wireless-bb" || len(resp.Receivers) == 0 {
		t.Fatalf("response: %+v", resp)
	}
}

func TestEvaluateErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	cases := []struct {
		name string
		req  EvalRequest
		code int
	}{
		{"unknown network", EvalRequest{Network: "nope", Mech: "jv-moat", Profile: []float64{0, 1}}, http.StatusNotFound},
		{"unknown mech", EvalRequest{Network: "uni", Mech: "nope", Profile: profileFor(10, 0, 1)}, http.StatusBadRequest},
		{"wrong profile length", EvalRequest{Network: "uni", Mech: "jv-moat", Profile: []float64{1}}, http.StatusBadRequest},
		{"class mismatch", EvalRequest{Network: "uni", Mech: "line-shapley", Profile: profileFor(10, 0, 1)}, http.StatusUnprocessableEntity},
		{"alpha mismatch", EvalRequest{Network: "uni", Mech: "alpha1-mc", Profile: profileFor(10, 0, 1)}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		w := do(t, s, "POST", "/v1/evaluate", c.req)
		if w.Code != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.name, w.Code, c.code, w.Body.String())
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: no error body: %s", c.name, w.Body.String())
		}
	}
	// line mechanisms do work on the line network.
	w := do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "line", Mech: "line-shapley", Profile: profileFor(8, 0, 1)})
	if w.Code != http.StatusOK {
		t.Fatalf("line-shapley on line: %d %s", w.Code, w.Body.String())
	}
}

// TestEvaluateCoalesces fires many concurrent identical cold queries;
// the flight group must collapse them to (nearly) one evaluation, and
// every caller must get the same bytes.
func TestEvaluateCoalesces(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	req := EvalRequest{Network: "uni", Mech: "wireless-bb", Profile: profileFor(10, 0, 21)}
	const callers = 16
	bodies := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := do(t, s, "POST", "/v1/evaluate", req)
			if w.Code == http.StatusOK {
				bodies[i] = w.Body.Bytes()
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if bodies[i] == nil || !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("caller %d got different bytes", i)
		}
	}
	if evals := s.Stats().BatchedQueries.Load(); evals >= callers/2 {
		t.Fatalf("%d evaluations for %d identical concurrent queries — coalescing broken", evals, callers)
	}
	if total := s.Stats().Queries.Load(); total != callers {
		t.Fatalf("admitted %d queries, want %d", total, callers)
	}
}

// TestBatchMatchesSingles: each /v1/batch element carries exactly the
// bytes the single endpoint returns, errors included per element.
func TestBatchMatchesSingles(t *testing.T) {
	s := newTestServer(t, Options{})
	reqs := []EvalRequest{
		{Network: "uni", Mech: "universal-shapley", Profile: profileFor(10, 0, 1)},
		{Network: "line", Mech: "line-mc", Profile: profileFor(8, 0, 2)},
		{Network: "uni", Mech: "universal-shapley", Profile: profileFor(10, 0, 1)}, // duplicate of [0]
		{Network: "nope", Mech: "jv-moat", Profile: []float64{0, 1}},               // error element
		{Network: "uni", Mech: "jv-moat", Profile: profileFor(10, 0, 3)},
	}
	w := do(t, s, "POST", "/v1/batch", reqs)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	var elems []json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &elems); err != nil {
		t.Fatal(err)
	}
	if len(elems) != len(reqs) {
		t.Fatalf("%d elements, want %d", len(elems), len(reqs))
	}
	for i, r := range reqs {
		if r.Network == "nope" {
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(elems[i], &e); err != nil || e.Error == "" {
				t.Fatalf("element %d: expected error object, got %s", i, elems[i])
			}
			continue
		}
		single := do(t, s, "POST", "/v1/evaluate", r)
		if single.Code != http.StatusOK {
			t.Fatalf("single %d: %d %s", i, single.Code, single.Body.String())
		}
		if !bytes.Equal(single.Body.Bytes(), elems[i]) {
			t.Fatalf("element %d differs from single endpoint:\n%s\n%s", i, elems[i], single.Body.Bytes())
		}
	}
	if !bytes.Equal(elems[0], elems[2]) {
		t.Fatal("duplicate batch elements differ")
	}
}

// TestRegisterInvalidSpecIs400 separates "bad spec" (400) from
// "name taken" (409).
func TestRegisterInvalidSpecIs400(t *testing.T) {
	s := newTestServer(t, Options{})
	if w := do(t, s, "POST", "/v1/networks", instances.Spec{Name: "x", Scenario: "bogus", N: 8, Seed: 1}); w.Code != http.StatusBadRequest {
		t.Fatalf("bad scenario: %d, want 400", w.Code)
	}
	if w := do(t, s, "POST", "/v1/networks", instances.Spec{Name: "x", Scenario: "uniform", N: 1, Seed: 1}); w.Code != http.StatusBadRequest {
		t.Fatalf("n=1: %d, want 400", w.Code)
	}
	if w := do(t, s, "POST", "/v1/networks", instances.Spec{Name: "uni", Scenario: "uniform", N: 8, Seed: 1}); w.Code != http.StatusConflict {
		t.Fatalf("duplicate name: %d, want 409", w.Code)
	}
	// Names that would break key-prefix eviction or the DELETE route.
	for _, bad := range []string{"a\x1fb", "a/b", ""} {
		if w := do(t, s, "POST", "/v1/networks", instances.Spec{Name: bad, Scenario: "uniform", N: 8, Seed: 1}); w.Code != http.StatusBadRequest {
			t.Fatalf("name %q: %d, want 400", bad, w.Code)
		}
	}
	if err := NewRegistry().Register("", nil); err == nil {
		t.Fatal("Register accepted an empty name")
	}
}

// TestEvictReRegisterNeverServesStaleBytes: a name re-registered with a
// different spec must answer from its own network, never from the
// predecessor's cache entries (the generation-prefix contract).
func TestEvictReRegisterNeverServesStaleBytes(t *testing.T) {
	s := newTestServer(t, Options{})
	profile := profileFor(9, 0, 5)
	register := func(seed int64) {
		w := do(t, s, "POST", "/v1/networks", instances.Spec{Name: "gen", Scenario: "uniform", N: 9, Seed: seed})
		if w.Code != http.StatusCreated {
			t.Fatalf("register: %d %s", w.Code, w.Body.String())
		}
	}
	evaluate := func() (*httptest.ResponseRecorder, string) {
		w := do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "gen", Mech: "universal-shapley", Profile: profile})
		if w.Code != http.StatusOK {
			t.Fatalf("evaluate: %d %s", w.Code, w.Body.String())
		}
		return w, w.Header().Get("X-Wmcs-Cache")
	}
	register(11)
	old, _ := evaluate()
	if _, src := evaluate(); src != "hit" {
		t.Fatalf("warm-up not a hit: %s", src)
	}
	if w := do(t, s, "DELETE", "/v1/networks/gen", nil); w.Code != http.StatusOK {
		t.Fatalf("evict: %d", w.Code)
	}
	register(12) // different network under the same name
	fresh, src := evaluate()
	if src != "miss" {
		t.Fatalf("first query on re-registered network was a %q, want miss", src)
	}
	if bytes.Equal(old.Body.Bytes(), fresh.Body.Bytes()) {
		t.Fatal("re-registered network served the predecessor's bytes")
	}
	if _, src := evaluate(); src != "hit" {
		t.Fatalf("second query on re-registered network was a %q, want hit", src)
	}
}

func TestBatchSizeLimit(t *testing.T) {
	s := newTestServer(t, Options{MaxBatchRequest: 2})
	reqs := make([]EvalRequest, 3)
	for i := range reqs {
		reqs[i] = EvalRequest{Network: "uni", Mech: "jv-moat", Profile: profileFor(10, 0, int64(i))}
	}
	if w := do(t, s, "POST", "/v1/batch", reqs); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize batch: %d", w.Code)
	}
}

func TestStatsz(t *testing.T) {
	s := newTestServer(t, Options{})
	req := EvalRequest{Network: "uni", Mech: "universal-mc", Profile: profileFor(10, 0, 4)}
	do(t, s, "POST", "/v1/evaluate", req)
	do(t, s, "POST", "/v1/evaluate", req)
	w := do(t, s, "GET", "/statsz", nil)
	var p statszPayload
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Networks != 2 || p.Queries != 2 || p.Cache.Hits != 1 {
		t.Fatalf("statsz: %+v", p)
	}
	lat, ok := p.LatencyUS["universal-mc"]
	if !ok || lat.Count != 2 || lat.P50US <= 0 || lat.P99US < lat.P50US {
		t.Fatalf("latency summary: %+v", p.LatencyUS)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	manifest := `[
	  {"name": "m1", "scenario": "uniform", "n": 8, "alpha": 2, "seed": 1},
	  {"name": "m2", "scenario": "grid", "n": 9, "seed": 2}
	]`
	reg := NewRegistry()
	n, err := reg.LoadManifest(strings.NewReader(manifest))
	if err != nil || n != 2 {
		t.Fatalf("LoadManifest: n=%d err=%v", n, err)
	}
	if _, ok := reg.Get("m2"); !ok {
		t.Fatal("m2 not registered")
	}
	// Bad entries fail with the entry's index named.
	_, err = NewRegistry().LoadManifest(strings.NewReader(`[{"name": "x", "scenario": "nope", "n": 8, "seed": 1}]`))
	if err == nil || !strings.Contains(err.Error(), "entry 0") {
		t.Fatalf("bad manifest error: %v", err)
	}
	// Unknown fields are rejected (catches typo'd manifests at boot).
	if _, err := NewRegistry().LoadManifest(strings.NewReader(`[{"name": "x", "scenari": "uniform"}]`)); err == nil {
		t.Fatal("typo'd manifest accepted")
	}
}

func TestServerShutdownFailsCleanly(t *testing.T) {
	s := newTestServer(t, Options{})
	s.Close()
	w := do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "uni", Mech: "jv-moat", Profile: profileFor(10, 0, 9)})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-close evaluate: %d %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "shutting down") {
		t.Fatalf("post-close body: %s", w.Body.String())
	}
}

// TestOutcomeSanity decodes one response and cross-checks it against
// the mechanism axioms on the canonical profile.
func TestOutcomeSanity(t *testing.T) {
	s := newTestServer(t, Options{})
	wire := profileFor(10, 0, 11)
	w := do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "uni", Mech: "universal-shapley", Profile: wire})
	if w.Code != http.StatusOK {
		t.Fatalf("evaluate: %d %s", w.Code, w.Body.String())
	}
	var resp EvalResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	o := mech.Outcome{Receivers: resp.Receivers, Shares: map[int]float64{}, Cost: resp.Cost}
	for _, sh := range resp.Shares {
		o.Shares[sh.Agent] = sh.Share
	}
	c, err := Canonicalize(EvalRequest{Network: "uni", Mech: "universal-shapley", Profile: wire}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := mech.CheckAll(c.Profile, o); err != nil {
		t.Fatalf("served outcome violates axioms: %v", err)
	}
}

// TestOverflowUtilityIs400: a finite wire utility whose quantization
// overflows float64 (v/Quantum > MaxFloat64, i.e. v >= ~1.8e302) must
// be rejected at validation — before the fix it canonicalized to +Inf,
// the mechanism produced NaN shares, and encoding panicked on the
// dispatcher goroutine, killing the daemon.
func TestOverflowUtilityIs400(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	p := profileFor(10, 0, 5)
	p[3] = 1e303
	w := do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "uni", Mech: "universal-mc", Profile: p})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("overflowing utility: %d %s, want 400", w.Code, w.Body.String())
	}
	// The daemon is still alive and serving.
	ok := do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "uni", Mech: "universal-mc", Profile: profileFor(10, 0, 5)})
	if ok.Code != http.StatusOK {
		t.Fatalf("follow-up query: %d %s", ok.Code, ok.Body.String())
	}
}

// TestBatcherSurvivesEvaluationPanic injects a panic into a dispatch
// round (a nil evaluator dereferences on the dispatcher goroutine,
// where net/http's recover cannot reach) and checks the task gets an
// error reply and the dispatcher keeps serving later tasks.
func TestBatcherSurvivesEvaluationPanic(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	bad := &NetworkEntry{Name: "bad"} // nil Ev: EvaluateBatch panics
	c, err := Canonicalize(EvalRequest{Network: "bad", Mech: "universal-mc", Profile: profileFor(10, 0, 9)}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.batch.do(bad, nil, 0, c, bad.prefixFor(0)+c.Key, nil); !errors.Is(err, errInternal) {
		t.Fatalf("panicking evaluation: err=%v, want errInternal (mapped to 500, not 422)", err)
	}
	// The dispatcher survived: a well-formed query still answers.
	w := do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "uni", Mech: "universal-mc", Profile: profileFor(10, 0, 9)})
	if w.Code != http.StatusOK {
		t.Fatalf("query after panic: %d %s", w.Code, w.Body.String())
	}
}

// TestEvictMidFlightLeavesNoDeadCacheEntry: a task admitted before its
// network's eviction completes after the handler's DeletePrefix; its
// Put lands under a retired generation no request can ever form, so it
// must not stay resident (it would occupy LRU capacity forever).
func TestEvictMidFlightLeavesNoDeadCacheEntry(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	entry, ok := s.reg.Get("uni")
	if !ok {
		t.Fatal("uni not registered")
	}
	c, err := Canonicalize(EvalRequest{Network: "uni", Mech: "universal-mc", Profile: profileFor(10, 0, 13)}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Evict first (handler order: Evict, then DeletePrefix), then run
	// the already-admitted task — the worst-case interleaving, where the
	// Put happens strictly after the purge.
	s.reg.Evict("uni")
	s.cache.DeletePrefix(networkKeyPrefix("uni"))
	cur := entry.Ev.Current()
	key := entry.prefixFor(cur.Version) + c.Key
	body, err := s.batch.do(entry, cur.Ev, cur.Version, c, key, nil)
	if err != nil || len(body) == 0 {
		t.Fatalf("in-flight task after evict: body=%q err=%v", body, err)
	}
	if _, ok := s.cache.Get(key); ok {
		t.Fatal("dead entry resident under retired generation")
	}
	if st := s.cache.Stats(); st.Len != 0 {
		t.Fatalf("cache holds %d entries after evict, want 0", st.Len)
	}
}
