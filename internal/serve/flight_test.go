package serve

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

// TestFlightGroupPanicReleasesKey: a panicking computation must not
// strand its key — before the fix, the flightCall's WaitGroup was never
// Done and the map entry never deleted, so every later caller of the
// same key blocked forever.
func TestFlightGroupPanicReleasesKey(t *testing.T) {
	var g flightGroup
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate out of Do")
			}
		}()
		g.Do("k", func() ([]byte, error) { panic("boom") })
	}()
	// The key must be free again: this Do must run fn (not wait on the
	// dead flight) and return its result.
	val, err, shared := g.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || shared || !bytes.Equal(val, []byte("ok")) {
		t.Fatalf("Do after panic: val=%q err=%v shared=%v", val, err, shared)
	}
}

// TestFlightGroupPanicFailsWaiters: a caller coalesced onto a flight
// whose leader panics must receive an error, never a nil-body success.
func TestFlightGroupPanicFailsWaiters(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() { recover() }() // the leader's own panic
		g.Do("k", func() ([]byte, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	waited := make(chan struct{})
	var val []byte
	var err error
	var shared bool
	go func() {
		defer wg.Done()
		<-started
		close(waited)
		val, err, shared = g.Do("k", func() ([]byte, error) { return []byte("fresh"), nil })
	}()
	<-waited
	close(release)
	wg.Wait()
	if shared {
		// The waiter rode the panicking flight: it must see the error.
		if !errors.Is(err, errFlightPanicked) {
			t.Fatalf("coalesced waiter: val=%q err=%v, want errFlightPanicked", val, err)
		}
	} else if err != nil || !bytes.Equal(val, []byte("fresh")) {
		// The waiter missed the flight window and ran its own fn.
		t.Fatalf("independent waiter: val=%q err=%v", val, err)
	}
}
