// Package serve is the multi-network query service over the query
// engine (DESIGN.md §8): a registry of named networks each backed by one
// shared query.Evaluator, a canonicalizing request codec feeding a
// sharded LRU result cache, singleflight coalescing of concurrent
// identical queries, admission batching of distinct ones onto the engine
// pool, and a stdlib net/http JSON surface (/v1/networks, /v1/evaluate,
// /v1/batch, /healthz, /statsz).
//
// The load-bearing invariant is byte-identity: a query's HTTP response
// body is the same byte string whether it was computed cold, replayed
// from the cache, coalesced onto another caller's computation, or
// evaluated inside a batch — because the cache stores the encoded
// response itself and the codec canonicalizes every request before the
// key is formed.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"wmcs/internal/mech"
	"wmcs/internal/mechreg"
)

// Quantum is the utility quantization grid: every reported utility is
// rounded to the nearest multiple before keying and before evaluation,
// so two requests that differ below the grid are the same query — and,
// crucially, a cache hit is exactly a cold evaluation of the same
// canonical profile, never of a nearby one.
const Quantum = 1e-6

// EvalRequest is the wire form of one /v1/evaluate query (and of each
// element of /v1/batch).
type EvalRequest struct {
	// Network is the registry name of the network to query.
	Network string `json:"network"`
	// Mech is a mechanism registry name (mechreg.Names).
	Mech string `json:"mech"`
	// R is the candidate receiver set; empty/absent means every station
	// may be served. Order and duplicates are irrelevant: the codec
	// sorts, dedups, and folds R into the profile mask.
	R []int `json:"receivers,omitempty"`
	// Profile holds the reported utilities, indexed by station id; its
	// length must equal the network's station count.
	Profile []float64 `json:"profile"`
}

// CanonRequest is a request in canonical form: the profile is masked to
// R (and zeroed at the source), quantized to the grid, and Key
// identifies the query *within its network* (mechanism + sparse
// profile). Two wire requests with equal semantics canonicalize to
// equal keys; the server prefixes Key with the target registration's
// name and generation to form the cache key, so entries can never
// outlive the registration they were computed against.
type CanonRequest struct {
	Network string
	Mech    string
	Profile mech.Profile
	Key     string
}

// mechNames is the set form of the descriptor registry's names for O(1)
// validation. (Whether the *target network's* domain admits the
// mechanism is the serving layer's per-entry check, mapped to 422; an
// unknown name is a 400 here.)
var mechNames = func() map[string]bool {
	m := make(map[string]bool)
	for _, n := range mechreg.Names() {
		m[n] = true
	}
	return m
}()

// Canonicalize validates a wire request against a network of n stations
// with the given source and produces its canonical form. The rules (the
// cache-key contract, DESIGN.md §8):
//
//  1. the mechanism name must be a registry name;
//  2. len(Profile) must equal n, every entry finite, >= 0, and small
//     enough that quantization stays finite (v/Quantum overflows
//     float64 near 1.8e302 — such a utility has no grid point, so the
//     request is rejected rather than canonicalized to +Inf);
//  3. R entries must lie in [0, n); R is sorted and deduplicated, then
//     folded into the profile: utilities outside R (and at the source)
//     become 0 — mechanisms only ever see the masked profile, so (R, u)
//     and (nil, mask(u)) are the same query and share a cache entry;
//  4. every remaining utility is rounded to the nearest multiple of
//     Quantum (ties away from zero, -0 normalized to +0);
//  5. the key encodes the mechanism and the sparse nonzero entries of
//     the canonical profile (reporting 0 is identical to not requesting
//     service, so zeros never reach the key); the network's identity
//     enters at the serving layer as a name+generation prefix.
func Canonicalize(req EvalRequest, n, source int) (CanonRequest, error) {
	if !mechNames[req.Mech] {
		return CanonRequest{}, fmt.Errorf("%w %q (have %s)", mechreg.ErrUnknownMechanism, req.Mech, strings.Join(mechreg.Names(), ", "))
	}
	if len(req.Profile) != n {
		return CanonRequest{}, fmt.Errorf("profile has %d entries, network has %d stations", len(req.Profile), n)
	}
	// Validate the wire profile in full — entries outside R included —
	// so a malformed request is 4xx'd rather than silently masked away.
	for i, v := range req.Profile {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return CanonRequest{}, fmt.Errorf("utility %d is not finite", i)
		}
		if v < 0 {
			return CanonRequest{}, fmt.Errorf("utility %d is negative (%g)", i, v)
		}
		if math.IsInf(quantize(v), 0) {
			return CanonRequest{}, fmt.Errorf("utility %d (%g) overflows the quantization grid", i, v)
		}
	}
	u := make(mech.Profile, n)
	if len(req.R) == 0 {
		// Absent and explicitly-empty R read the same on the wire:
		// every station may be served ("nobody" is expressed by an
		// all-zero profile, identically to excluding everyone).
		copy(u, req.Profile)
	} else {
		for _, r := range req.R {
			if r < 0 || r >= n {
				return CanonRequest{}, fmt.Errorf("receiver %d out of range [0, %d)", r, n)
			}
			u[r] = req.Profile[r]
		}
	}
	if source >= 0 && source < n {
		u[source] = 0
	}
	for i, v := range u {
		u[i] = quantize(v)
	}
	c := CanonRequest{Network: req.Network, Mech: req.Mech, Profile: u}
	c.Key = buildKey(c)
	return c, nil
}

// quantize rounds to the Quantum grid, normalizing -0 so the key byte
// encoding of "zero" is unique.
func quantize(v float64) float64 {
	q := math.Round(v/Quantum) * Quantum
	if q == 0 {
		return 0
	}
	return q
}

// buildKey renders the canonical key. Nonzero utilities are encoded as
// exact hex floats ('x' formatting round-trips float64 bit patterns),
// so distinct grid points never collide; 0x1f separators cannot appear
// in any component.
func buildKey(c CanonRequest) string {
	var b strings.Builder
	b.Grow(len(c.Mech) + 16*len(c.Profile)/2)
	b.WriteString(c.Mech)
	for i, v := range c.Profile {
		if v == 0 {
			continue
		}
		b.WriteByte(0x1f)
		b.WriteString(strconv.Itoa(i))
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	}
	return b.String()
}

// networkKeyPrefix is the prefix every key of a network's entries
// shares; eviction purges by it.
func networkKeyPrefix(network string) string { return network + "\x1f" }

// EvalResponse is the canonical wire form of one outcome. Shares are a
// sorted array (not a map) so encoding/json marshals deterministically;
// Receivers is sorted by the mechanism contract.
type EvalResponse struct {
	Network   string       `json:"network"`
	Mech      string       `json:"mech"`
	Receivers []int        `json:"receivers"`
	Shares    []AgentShare `json:"shares"`
	Cost      float64      `json:"cost"`
}

// AgentShare is one receiver's cost share.
type AgentShare struct {
	Agent int     `json:"agent"`
	Share float64 `json:"share"`
}

// EncodeOutcome renders an outcome as canonical response bytes: shares
// sorted by agent id, floats in Go's shortest round-trip decimal form.
// These exact bytes are what the cache stores and replays. An outcome
// json.Marshal cannot represent (a NaN or Inf share out of a mechanism)
// is an error, not a panic: the caller runs on the admission
// dispatcher, where a panic would take down the whole daemon.
func EncodeOutcome(network, mechName string, o mech.Outcome) ([]byte, error) {
	resp := EvalResponse{
		Network:   network,
		Mech:      mechName,
		Receivers: o.Receivers,
		Shares:    make([]AgentShare, 0, len(o.Shares)),
		Cost:      o.Cost,
	}
	if resp.Receivers == nil {
		resp.Receivers = []int{}
	}
	for a, s := range o.Shares {
		resp.Shares = append(resp.Shares, AgentShare{Agent: a, Share: s})
	}
	sort.Slice(resp.Shares, func(i, j int) bool { return resp.Shares[i].Agent < resp.Shares[j].Agent })
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("encoding %s outcome: %w", mechName, err)
	}
	return b, nil
}
