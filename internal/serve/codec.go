// Package serve is the multi-network query service over the query
// engine (DESIGN.md §8): a registry of named networks each backed by one
// shared query.Evaluator, a canonicalizing request codec feeding a
// sharded LRU result cache, singleflight coalescing of concurrent
// identical queries, admission batching of distinct ones onto the engine
// pool, and a stdlib net/http JSON surface (/v1/networks, /v1/evaluate,
// /v1/batch, /healthz, /statsz).
//
// The load-bearing invariant is byte-identity: a query's HTTP response
// body is the same byte string whether it was computed cold, replayed
// from the cache, coalesced onto another caller's computation, or
// evaluated inside a batch — because the cache stores the encoded
// response itself and the codec canonicalizes every request before the
// key is formed.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"wmcs/internal/mech"
	"wmcs/internal/mechreg"
)

// Quantum is the utility quantization grid: every reported utility is
// rounded to the nearest multiple before keying and before evaluation,
// so two requests that differ below the grid are the same query — and,
// crucially, a cache hit is exactly a cold evaluation of the same
// canonical profile, never of a nearby one.
const Quantum = 1e-6

// EvalRequest is the wire form of one /v1/evaluate query (and of each
// element of /v1/batch).
type EvalRequest struct {
	// Network is the registry name of the network to query.
	Network string `json:"network"`
	// Mech is a mechanism registry name (mechreg.Names).
	Mech string `json:"mech"`
	// R is the candidate receiver set; empty/absent means every station
	// may be served. Order and duplicates are irrelevant: the codec
	// sorts, dedups, and folds R into the profile mask.
	R []int `json:"receivers,omitempty"`
	// Profile holds the reported utilities, indexed by station id; its
	// length must equal the network's station count.
	Profile []float64 `json:"profile"`
	// Approx selects the mechanism's sampled Shapley tier; absent means
	// exact. The canonicalized spec participates in the cache key, so an
	// exact result and a sampled one — or two sampled ones with
	// different budgets or seeds — can never share an entry.
	Approx *ApproxWire `json:"approx,omitempty"`
}

// ApproxWire is the wire form of an approximate-tier selection.
type ApproxWire struct {
	// Samples is the permutation budget, >= 1.
	Samples int `json:"samples"`
	// Delta is the certificate failure probability, in (0, 1).
	Delta float64 `json:"delta"`
	// Seed pins the permutation stream (optional; 0 is a valid seed).
	Seed int64 `json:"seed,omitempty"`
}

// ErrBadApprox marks a malformed approximate-tier spec: the request
// shape was readable but the parameters violate the contract (samples
// < 1, delta outside (0,1), non-finite delta). The serving layer maps it
// to a structured 422 — a client defect in a well-formed request, not a
// decode failure (400) and certainly not a server fault (500).
var ErrBadApprox = errors.New("invalid approx spec")

// CanonRequest is a request in canonical form: the profile is masked to
// R (and zeroed at the source), quantized to the grid, and Key
// identifies the query *within its network* (mechanism + sparse
// profile). Two wire requests with equal semantics canonicalize to
// equal keys; the server prefixes Key with the target registration's
// name and generation to form the cache key, so entries can never
// outlive the registration they were computed against.
type CanonRequest struct {
	//lint:cachekey enters the cache key as the serving layer's name+generation.version prefix (entry.prefixFor), never via buildKey
	Network string
	Mech    string
	Profile mech.Profile
	// Approx is the validated sampled-tier spec, nil for exact requests.
	// It is part of the canonical identity: Key carries a suffix derived
	// from it, so the exact and sampled tiers (and distinct specs) occupy
	// disjoint key spaces.
	Approx *mech.ApproxSpec
	//lint:cachekey Key is buildKey's output, not an input the key must cover
	Key string
}

// mechNames is the set form of the descriptor registry's names for O(1)
// validation. (Whether the *target network's* domain admits the
// mechanism is the serving layer's per-entry check, mapped to 422; an
// unknown name is a 400 here.)
var mechNames = func() map[string]bool {
	m := make(map[string]bool)
	for _, n := range mechreg.Names() {
		m[n] = true
	}
	return m
}()

// Canonicalize validates a wire request against a network of n stations
// with the given source and produces its canonical form. The rules (the
// cache-key contract, DESIGN.md §8):
//
//  1. the mechanism name must be a registry name;
//  2. len(Profile) must equal n, every entry finite, >= 0, and small
//     enough that quantization stays finite (v/Quantum overflows
//     float64 near 1.8e302 — such a utility has no grid point, so the
//     request is rejected rather than canonicalized to +Inf);
//  3. R entries must lie in [0, n); R is sorted and deduplicated, then
//     folded into the profile: utilities outside R (and at the source)
//     become 0 — mechanisms only ever see the masked profile, so (R, u)
//     and (nil, mask(u)) are the same query and share a cache entry;
//  4. every remaining utility is rounded to the nearest multiple of
//     Quantum (ties away from zero, -0 normalized to +0);
//  5. the key encodes the mechanism and the sparse nonzero entries of
//     the canonical profile (reporting 0 is identical to not requesting
//     service, so zeros never reach the key); the network's identity
//     enters at the serving layer as a name+generation prefix;
//  6. an approx spec, if present, must validate (samples >= 1, delta in
//     (0,1) and finite — anything else wraps ErrBadApprox), and is
//     appended to the key as a tier suffix: exact and sampled requests,
//     and sampled requests with different budgets, deltas, or seeds, can
//     never share a cache entry.
func Canonicalize(req EvalRequest, n, source int) (CanonRequest, error) {
	if !mechNames[req.Mech] {
		return CanonRequest{}, fmt.Errorf("%w %q (have %s)", mechreg.ErrUnknownMechanism, req.Mech, strings.Join(mechreg.Names(), ", "))
	}
	if len(req.Profile) != n {
		return CanonRequest{}, fmt.Errorf("profile has %d entries, network has %d stations", len(req.Profile), n)
	}
	// Validate the wire profile in full — entries outside R included —
	// so a malformed request is 4xx'd rather than silently masked away.
	for i, v := range req.Profile {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return CanonRequest{}, fmt.Errorf("utility %d is not finite", i)
		}
		if v < 0 {
			return CanonRequest{}, fmt.Errorf("utility %d is negative (%g)", i, v)
		}
		if math.IsInf(quantize(v), 0) {
			return CanonRequest{}, fmt.Errorf("utility %d (%g) overflows the quantization grid", i, v)
		}
	}
	u := make(mech.Profile, n)
	if len(req.R) == 0 {
		// Absent and explicitly-empty R read the same on the wire:
		// every station may be served ("nobody" is expressed by an
		// all-zero profile, identically to excluding everyone).
		copy(u, req.Profile)
	} else {
		for _, r := range req.R {
			if r < 0 || r >= n {
				return CanonRequest{}, fmt.Errorf("receiver %d out of range [0, %d)", r, n)
			}
			u[r] = req.Profile[r]
		}
	}
	if source >= 0 && source < n {
		u[source] = 0
	}
	for i, v := range u {
		u[i] = quantize(v)
	}
	c := CanonRequest{Network: req.Network, Mech: req.Mech, Profile: u}
	if req.Approx != nil {
		spec := mech.ApproxSpec{Samples: req.Approx.Samples, Delta: req.Approx.Delta, Seed: req.Approx.Seed}
		if err := spec.Validate(); err != nil {
			return CanonRequest{}, fmt.Errorf("%w: %v", ErrBadApprox, err)
		}
		c.Approx = &spec
	}
	c.Key = buildKey(c)
	return c, nil
}

// quantize rounds to the Quantum grid, normalizing -0 so the key byte
// encoding of "zero" is unique.
func quantize(v float64) float64 {
	q := math.Round(v/Quantum) * Quantum
	if q == 0 {
		return 0
	}
	return q
}

// buildKey renders the canonical key. Nonzero utilities are encoded as
// exact hex floats ('x' formatting round-trips float64 bit patterns),
// so distinct grid points never collide; 0x1f separators cannot appear
// in any component.
func buildKey(c CanonRequest) string {
	var b strings.Builder
	b.Grow(len(c.Mech) + 16*len(c.Profile)/2)
	b.WriteString(c.Mech)
	for i, v := range c.Profile {
		if v == 0 {
			continue
		}
		b.WriteByte(0x1f)
		b.WriteString(strconv.Itoa(i))
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	}
	if c.Approx != nil {
		// The tier suffix: no profile segment can collide with it — their
		// label left of '=' is always a decimal station index, never the
		// word "approx" — so an exact key is never a prefix-plus-suffix of
		// a sampled one and vice versa. Delta is rendered as an exact hex
		// float like the utilities, so distinct specs get distinct keys.
		b.WriteByte(0x1f)
		b.WriteString("approx=")
		b.WriteString(strconv.Itoa(c.Approx.Samples))
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(c.Approx.Delta, 'x', -1, 64))
		b.WriteByte(',')
		b.WriteString(strconv.FormatInt(c.Approx.Seed, 10))
	}
	return b.String()
}

// networkKeyPrefix is the prefix every key of a network's entries
// shares; eviction purges by it.
func networkKeyPrefix(network string) string { return network + "\x1f" }

// EvalResponse is the canonical wire form of one outcome. Shares are a
// sorted array (not a map) so encoding/json marshals deterministically;
// Receivers is sorted by the mechanism contract.
type EvalResponse struct {
	Network   string       `json:"network"`
	Mech      string       `json:"mech"`
	Receivers []int        `json:"receivers"`
	Shares    []AgentShare `json:"shares"`
	Cost      float64      `json:"cost"`
	// Approx carries the sampled tier's certificate; absent on exact
	// results. It is part of the cached response bytes, so a replayed
	// sampled result reports the certificate of its cold computation.
	Approx *ApproxCertWire `json:"approx,omitempty"`
}

// ApproxCertWire is the wire form of a sampled tier's (ε, δ)
// certificate: with probability at least 1-delta, every reported share
// is within epsilon of its exact Shapley value.
type ApproxCertWire struct {
	Samples  int     `json:"samples"`
	Epsilon  float64 `json:"epsilon"`
	Delta    float64 `json:"delta"`
	DeltaMax float64 `json:"delta_max"`
}

// AgentShare is one receiver's cost share.
type AgentShare struct {
	Agent int     `json:"agent"`
	Share float64 `json:"share"`
}

// EncodeOutcome renders an outcome as canonical response bytes: shares
// sorted by agent id, floats in Go's shortest round-trip decimal form.
// These exact bytes are what the cache stores and replays. An outcome
// json.Marshal cannot represent (a NaN or Inf share out of a mechanism)
// is an error, not a panic: the caller runs on the admission
// dispatcher, where a panic would take down the whole daemon.
func EncodeOutcome(network, mechName string, o mech.Outcome) ([]byte, error) {
	return EncodeOutcomeCert(network, mechName, o, nil)
}

// EncodeOutcomeCert is EncodeOutcome for the sampled tier: a non-nil
// cert is embedded in the response bytes (and hence in the cache). Exact
// results pass nil and encode identically to EncodeOutcome.
func EncodeOutcomeCert(network, mechName string, o mech.Outcome, cert *mech.ApproxCert) ([]byte, error) {
	resp := EvalResponse{
		Network:   network,
		Mech:      mechName,
		Receivers: o.Receivers,
		Shares:    make([]AgentShare, 0, len(o.Shares)),
		Cost:      o.Cost,
	}
	if resp.Receivers == nil {
		resp.Receivers = []int{}
	}
	if cert != nil {
		resp.Approx = &ApproxCertWire{
			Samples:  cert.Samples,
			Epsilon:  cert.Epsilon,
			Delta:    cert.Delta,
			DeltaMax: cert.DeltaMax,
		}
	}
	for a, s := range o.Shares {
		resp.Shares = append(resp.Shares, AgentShare{Agent: a, Share: s})
	}
	sort.Slice(resp.Shares, func(i, j int) bool { return resp.Shares[i].Agent < resp.Shares[j].Agent })
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("encoding %s outcome: %w", mechName, err)
	}
	return b, nil
}
