package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/mechreg"
	"wmcs/internal/query"
)

// TestConcurrentPatchCarryHammer is the -race hammer for the
// carry-forward pass: a writer drives a PATCH stream that exercises
// every reuse path — disable+enable round trips (the Unchanged
// carry-all), MoveStation deltas that make the alpha1-shapley
// predicate carry out-of-support entries, and moves that force
// recomputation — while readers hit /v1/evaluate and /v1/batch
// concurrently at engine widths 8 and 16. Every version-labeled
// response must be byte-identical to a cold evaluation at exactly that
// version (a stale carried entry or torn {evaluator, version} pair
// surfaces as a mismatch), and every batch element must match some
// committed version's bytes.
func TestConcurrentPatchCarryHammer(t *testing.T) {
	for _, workers := range []int{8, 16} {
		t.Run(fmt.Sprintf("width%d", workers), func(t *testing.T) {
			hammerOnce(t, workers)
		})
	}
}

func hammerOnce(t *testing.T, workers int) {
	const (
		n       = 8
		moved   = 4
		rounds  = 3 // each round: round trip + move out + move back
		readers = 4
		queries = 18
	)
	sp := instances.Spec{Name: "hammer", Scenario: "uniform", N: n, Alpha: 1, Seed: 53}
	reg := NewRegistry()
	if err := reg.RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, Options{Workers: workers})
	defer s.Close()
	entry, _ := reg.Get("hammer")
	src := entry.Net.Source()

	outside := profileFor(n, src, 9)
	outside[moved] = 0
	inside := profileFor(n, src, 9)
	probes := []EvalRequest{
		{Network: "hammer", Mech: mechreg.Alpha1Shapley, Profile: outside},
		{Network: "hammer", Mech: mechreg.Alpha1Shapley, Profile: inside},
		{Network: "hammer", Mech: mechreg.UniversalMC, Profile: outside},
	}

	// The update stream, and per committed version the expected bytes of
	// every probe (computed on an independent replica).
	home := entry.Net.Points()[moved].Clone()
	away := home.Clone()
	away[0] += 0.3
	var updates []instances.Update
	for r := 0; r < rounds; r++ {
		updates = append(updates,
			instances.Update{Disable: []int{3}, Enable: []int{3}},
			instances.Update{Moves: []instances.MoveOp{{Station: moved, Point: away.Clone()}}},
			instances.Update{Moves: []instances.MoveOp{{Station: moved, Point: home.Clone()}}},
		)
	}
	replica, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	expected := map[string][]byte{} // "version/probeIdx" -> bytes
	record := func() {
		snap := replica.Snapshot()
		ev := query.NewEvaluator(snap)
		for pi, req := range probes {
			c, err := Canonicalize(req, n, src)
			if err != nil {
				t.Fatal(err)
			}
			m, err := ev.Mechanism(req.Mech)
			if err != nil {
				t.Fatal(err)
			}
			b, err := EncodeOutcome("hammer", req.Mech, m.Run(c.Profile))
			if err != nil {
				t.Fatal(err)
			}
			expected[fmt.Sprintf("%d/%d", snap.Version(), pi)] = b
		}
	}
	record()
	for _, up := range updates {
		if err := up.Apply(replica); err != nil {
			t.Fatal(err)
		}
		record()
	}
	// Any served bytes must be in the per-probe committed set — the
	// weaker invariant /v1/batch elements (no version header) satisfy.
	anyVersion := make([]map[string]bool, len(probes))
	for pi := range probes {
		anyVersion[pi] = make(map[string]bool)
	}
	for key, b := range expected {
		var ver uint64
		var pi int
		fmt.Sscanf(key, "%d/%d", &ver, &pi)
		anyVersion[pi][string(b)] = true
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the writer
		defer wg.Done()
		for _, up := range updates {
			if w := do(t, s, "PATCH", "/v1/networks/hammer", up); w.Code != http.StatusOK {
				t.Errorf("PATCH: %d %s", w.Code, w.Body.String())
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				pi := (r + q) % len(probes)
				if q%3 == 0 {
					// A batch carrying every probe at once: distinct
					// queries share one dispatcher round on the wide
					// engine pool.
					w := do(t, s, "POST", "/v1/batch", probes)
					if w.Code != http.StatusOK {
						t.Errorf("reader %d: batch %d %s", r, w.Code, w.Body.String())
						return
					}
					var elems []json.RawMessage
					if err := json.Unmarshal(w.Body.Bytes(), &elems); err != nil || len(elems) != len(probes) {
						t.Errorf("reader %d: batch decode: %v", r, err)
						return
					}
					for i, el := range elems {
						if !anyVersion[i][string(el)] {
							t.Errorf("reader %d: batch element %d matches no committed version: %s", r, i, el)
							return
						}
					}
					continue
				}
				w := do(t, s, "POST", "/v1/evaluate", probes[pi])
				if w.Code != http.StatusOK {
					t.Errorf("reader %d: %d %s", r, w.Code, w.Body.String())
					return
				}
				ver := w.Header().Get("X-Wmcs-Version")
				want, ok := expected[ver+"/"+strconv.Itoa(pi)]
				if !ok {
					t.Errorf("reader %d: served version %q is not a committed state (torn swap?)", r, ver)
					return
				}
				if !bytes.Equal(w.Body.Bytes(), want) {
					t.Errorf("reader %d: probe %d bytes differ from version %s's state (stale carry?)\nserved: %s\nwant:   %s",
						r, pi, ver, w.Body.String(), want)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if got, want := entry.Ev.Version(), uint64(len(updates)+rounds); got != want {
		t.Fatalf("final version %d, want %d", got, want)
	}
}
