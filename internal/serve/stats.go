package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wmcs/internal/detorder"
	"wmcs/internal/mechreg"
	"wmcs/internal/obs"
)

// Stats carries the service's expvar-style counters: monotonically
// increasing atomics sampled (never reset) by /statsz and /metricsz.
// Cache hit/miss counts live in the Cache itself; these cover admission
// and execution.
type Stats struct {
	// Queries counts /v1/evaluate requests admitted (batch elements
	// included); Coalesced the subset served by riding on a concurrent
	// identical computation; Errors the requests rejected or failed.
	Queries   atomic.Uint64
	Coalesced atomic.Uint64
	Errors    atomic.Uint64
	// InFlight is the gauge of requests currently inside an evaluate or
	// batch handler. Every increment pairs with a deferred decrement
	// taken before any other work (TrackInFlight), so the gauge drains
	// to zero on every exit path — decode failures, 404s, canonicalize
	// rejects, 422s, and recovered dispatcher panics included
	// (TestInFlightDrainsOnErrorPaths hammers exactly those).
	InFlight atomic.Int64
	// SlowRequests counts OK responses slower than the server's slow
	// threshold — the numerator of a cheap SLO burn signal.
	SlowRequests atomic.Uint64
	// Batches counts dispatcher rounds; BatchedQueries the tasks they
	// carried (BatchedQueries/Batches is the realized batching factor).
	Batches        atomic.Uint64
	BatchedQueries atomic.Uint64
	// ReplicaRounds counts dispatch rounds whose groups ran concurrently
	// on replica slots (Options.ParallelEval > 1 and more than one group
	// in the round); ReplicaGroups the groups those rounds carried.
	ReplicaRounds atomic.Uint64
	ReplicaGroups atomic.Uint64
	// Updates counts applied PATCH deltas (version bumps; rejected,
	// empty, and all-no-op deltas do not count), UpdateOps the mutation
	// ops they carried. rebuild histograms the evaluator swap latency
	// over every counted update; rebuildInc/rebuildFull split it by
	// whether the swap took the delta path (substrate reuse) or a full
	// from-scratch rebuild, so rebuild.count == rebuildInc.count +
	// rebuildFull.count == Updates.
	Updates   atomic.Uint64
	UpdateOps atomic.Uint64
	// CarriedEntries counts cache entries the carry-forward pass
	// re-keyed from a retired version to its successor (served bytes
	// proven identical); DeltaRebuiltMechs the mechanisms warmed on
	// updates that reused substrate incrementally.
	CarriedEntries    atomic.Uint64
	DeltaRebuiltMechs atomic.Uint64

	rebuild     latHist
	rebuildInc  latHist
	rebuildFull latHist

	// stages histograms request time by pipeline stage (obs.Stage), fed
	// from finished traces: the per-stage split behind
	// wmcs_stage_duration_seconds and wmcsload's queue-wait share.
	stages [obs.NumStages]latHist

	// known is the pre-registered per-mechanism latency histogram set:
	// one entry per registry name, built at construction and immutable
	// afterwards, so the per-request lookup on the hot path is one
	// lock-free map read (BenchmarkStatsObserveKnown pins it at 0
	// allocs with no mutex in the profile). Names outside the registry
	// (hand-built test entries) fall back to the RWMutex-guarded extra
	// map — the slow path a production request never takes, since the
	// codec rejects unknown mechanism names before Observe runs.
	known map[string]*latHist
	mu    sync.RWMutex
	extra map[string]*latHist
}

// NewStats returns a counter set with every registry mechanism's
// histogram pre-registered.
func NewStats() *Stats {
	names := mechreg.Names()
	s := &Stats{
		known: make(map[string]*latHist, len(names)),
		extra: make(map[string]*latHist),
	}
	for _, n := range names {
		s.known[n] = &latHist{}
	}
	return s
}

// TrackInFlight increments the in-flight gauge and returns its paired
// decrement, for use as `defer s.TrackInFlight()()` as a handler's
// first statement — the defer fires on every exit path including
// panics, which is what makes the gauge provably drain to zero.
func (s *Stats) TrackInFlight() func() {
	s.InFlight.Add(1)
	return func() { s.InFlight.Add(-1) }
}

// hist resolves the latency histogram for a mechanism name: lock-free
// for pre-registered names, RWMutex fallback otherwise.
func (s *Stats) hist(mechName string) *latHist {
	if h, ok := s.known[mechName]; ok {
		return h
	}
	s.mu.RLock()
	h, ok := s.extra[mechName]
	s.mu.RUnlock()
	if ok {
		return h
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h, ok := s.extra[mechName]; ok {
		return h
	}
	h = &latHist{}
	s.extra[mechName] = h
	return h
}

// Observe records one request's service latency under its mechanism
// name (admission to response, cache hits included).
func (s *Stats) Observe(mechName string, d time.Duration) {
	s.hist(mechName).observe(d)
}

// ObserveStage records one span's duration under its pipeline stage.
func (s *Stats) ObserveStage(st obs.Stage, d time.Duration) {
	if st < obs.NumStages {
		s.stages[st].observe(d)
	}
}

// ObserveRebuild records one update's evaluator rebuild+warm latency,
// split by which rebuild path ran (incremental substrate reuse vs full
// from-scratch).
func (s *Stats) ObserveRebuild(d time.Duration, incremental bool) {
	s.rebuild.observe(d)
	if incremental {
		s.rebuildInc.observe(d)
	} else {
		s.rebuildFull.observe(d)
	}
}

// RebuildLatency summarizes the rebuild histogram for /statsz.
func (s *Stats) RebuildLatency() LatencySummary { return s.rebuild.summary() }

// RebuildIncrementalLatency summarizes the delta-path subset.
func (s *Stats) RebuildIncrementalLatency() LatencySummary { return s.rebuildInc.summary() }

// RebuildFullLatency summarizes the full-rebuild subset.
func (s *Stats) RebuildFullLatency() LatencySummary { return s.rebuildFull.summary() }

// LatencySummary is the /statsz digest of one mechanism's service
// latency: count, mean, and log-bucket quantile bounds, in microseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
}

// Latencies snapshots every observed mechanism's summary, keyed by name
// (pre-registered names with zero observations are omitted, matching
// the pre-PR-8 behavior of the lazily-populated map).
func (s *Stats) Latencies() map[string]LatencySummary {
	out := make(map[string]LatencySummary)
	s.eachHist(func(name string, h *latHist) {
		if h.count.Load() > 0 {
			out[name] = h.summary()
		}
	})
	return out
}

// MechNames returns the mechanisms observed so far, sorted.
func (s *Stats) MechNames() []string {
	var names []string
	s.eachHist(func(name string, h *latHist) {
		if h.count.Load() > 0 {
			names = append(names, name)
		}
	})
	sort.Strings(names)
	return names
}

// histSnap is one named histogram's raw exposition data (see
// latHist.snapshot for the consistency contract).
type histSnap struct {
	name    string
	buckets [latBuckets]uint64
	count   uint64
	sumNS   uint64
}

// MechHistograms snapshots every observed mechanism's latency histogram,
// sorted by name — the deterministic series order /metricsz emits.
// Zero-count histograms are omitted, matching Latencies.
func (s *Stats) MechHistograms() []histSnap {
	var out []histSnap
	s.eachHist(func(name string, h *latHist) {
		b, c, sum := h.snapshot()
		if c > 0 {
			out = append(out, histSnap{name: name, buckets: b, count: c, sumNS: sum})
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// StageHistograms snapshots the per-stage histograms in obs.Stage order,
// zero-count stages included: the stage label set is fixed, which is
// what lets a scraper (wmcsload -report) diff two scrapes without
// series appearing in between.
func (s *Stats) StageHistograms() []histSnap {
	out := make([]histSnap, obs.NumStages)
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		b, c, sum := s.stages[st].snapshot()
		out[st] = histSnap{name: st.String(), buckets: b, count: c, sumNS: sum}
	}
	return out
}

// RebuildHistograms snapshots the PATCH rebuild histograms split by
// path, in fixed order: "incremental", then "full".
func (s *Stats) RebuildHistograms() []histSnap {
	var out []histSnap
	for _, p := range []struct {
		name string
		h    *latHist
	}{{"incremental", &s.rebuildInc}, {"full", &s.rebuildFull}} {
		b, c, sum := p.h.snapshot()
		out = append(out, histSnap{name: p.name, buckets: b, count: c, sumNS: sum})
	}
	return out
}

// eachHist visits every per-mechanism histogram: the registry-known
// set first, then the extras, each group in ascending name order
// (detorder) so exposition output is stable scrape to scrape.
func (s *Stats) eachHist(fn func(name string, h *latHist)) {
	for name, h := range detorder.Sorted(s.known) {
		fn(name, h)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, h := range detorder.Sorted(s.extra) {
		fn(name, h)
	}
}

// latBuckets is the histogram resolution: bucket i holds latencies in
// [2^(i-1), 2^i) nanoseconds, so 48 buckets span 1ns to ~39h.
const latBuckets = 48

// latHist is a lock-free log2 histogram; quantiles are read as the
// upper bound of the bucket where the target rank lands, which is
// within 2× of the true value — plenty for a load report. /metricsz
// re-exposes the same buckets as a cumulative Prometheus histogram
// (obs.PromWriter.Log2Histogram), preserving the 2× bound.
type latHist struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	buckets [latBuckets]atomic.Uint64
}

func (h *latHist) observe(d time.Duration) {
	ns := uint64(max(d.Nanoseconds(), 0))
	h.count.Add(1)
	h.sumNS.Add(ns)
	i := 0
	for v := ns; v > 0 && i < latBuckets-1; v >>= 1 {
		i++
	}
	h.buckets[i].Add(1)
}

// snapshot loads the raw histogram: per-bucket counts plus the count
// and nanosecond sum — what the /metricsz exposition renders. count is
// the *bucket* sum, not the count atomic: the counters are read
// individually (no global lock), so under concurrent observes the two
// can be mid-update apart by the in-flight requests — deriving count
// from the very buckets being exposed keeps the scrape internally
// consistent (+Inf == _count, buckets monotone) at every instant.
func (h *latHist) snapshot() (buckets [latBuckets]uint64, count, sumNS uint64) {
	for i := range buckets {
		buckets[i] = h.buckets[i].Load()
		count += buckets[i]
	}
	return buckets, count, h.sumNS.Load()
}

func (h *latHist) summary() LatencySummary {
	var counts [latBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	ls := LatencySummary{Count: h.count.Load()}
	if total == 0 {
		return ls
	}
	ls.MeanUS = float64(h.sumNS.Load()) / float64(total) / 1e3
	quantile := func(q float64) float64 {
		rank := uint64(q * float64(total))
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum > rank {
				return float64(uint64(1)<<uint(i)) / 1e3 // bucket upper bound, µs
			}
		}
		return float64(uint64(1)<<uint(latBuckets-1)) / 1e3
	}
	ls.P50US = quantile(0.50)
	ls.P90US = quantile(0.90)
	ls.P99US = quantile(0.99)
	return ls
}
