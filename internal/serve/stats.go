package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stats carries the service's expvar-style counters: monotonically
// increasing atomics sampled (never reset) by /statsz. Cache hit/miss
// counts live in the Cache itself; these cover admission and execution.
type Stats struct {
	// Queries counts /v1/evaluate requests admitted (batch elements
	// included); Coalesced the subset served by riding on a concurrent
	// identical computation; Errors the requests rejected or failed.
	Queries   atomic.Uint64
	Coalesced atomic.Uint64
	Errors    atomic.Uint64
	// InFlight is the gauge of requests currently inside a handler.
	InFlight atomic.Int64
	// Batches counts dispatcher rounds; BatchedQueries the tasks they
	// carried (BatchedQueries/Batches is the realized batching factor).
	Batches        atomic.Uint64
	BatchedQueries atomic.Uint64
	// Updates counts applied PATCH deltas (version bumps; rejected,
	// empty, and all-no-op deltas do not count), UpdateOps the mutation
	// ops they carried. rebuild histograms the evaluator swap latency
	// over every counted update; rebuildInc/rebuildFull split it by
	// whether the swap took the delta path (substrate reuse) or a full
	// from-scratch rebuild, so rebuild.count == rebuildInc.count +
	// rebuildFull.count == Updates.
	Updates   atomic.Uint64
	UpdateOps atomic.Uint64
	// CarriedEntries counts cache entries the carry-forward pass
	// re-keyed from a retired version to its successor (served bytes
	// proven identical); DeltaRebuiltMechs the mechanisms warmed on
	// updates that reused substrate incrementally.
	CarriedEntries    atomic.Uint64
	DeltaRebuiltMechs atomic.Uint64

	rebuild     latHist
	rebuildInc  latHist
	rebuildFull latHist

	mu  sync.Mutex
	lat map[string]*latHist
}

// NewStats returns an empty counter set.
func NewStats() *Stats { return &Stats{lat: make(map[string]*latHist)} }

// Observe records one request's service latency under its mechanism
// name (admission to response, cache hits included).
func (s *Stats) Observe(mechName string, d time.Duration) {
	s.mu.Lock()
	h, ok := s.lat[mechName]
	if !ok {
		h = &latHist{}
		s.lat[mechName] = h
	}
	s.mu.Unlock()
	h.observe(d)
}

// ObserveRebuild records one update's evaluator rebuild+warm latency,
// split by which rebuild path ran (incremental substrate reuse vs full
// from-scratch).
func (s *Stats) ObserveRebuild(d time.Duration, incremental bool) {
	s.rebuild.observe(d)
	if incremental {
		s.rebuildInc.observe(d)
	} else {
		s.rebuildFull.observe(d)
	}
}

// RebuildLatency summarizes the rebuild histogram for /statsz.
func (s *Stats) RebuildLatency() LatencySummary { return s.rebuild.summary() }

// RebuildIncrementalLatency summarizes the delta-path subset.
func (s *Stats) RebuildIncrementalLatency() LatencySummary { return s.rebuildInc.summary() }

// RebuildFullLatency summarizes the full-rebuild subset.
func (s *Stats) RebuildFullLatency() LatencySummary { return s.rebuildFull.summary() }

// LatencySummary is the /statsz digest of one mechanism's service
// latency: count, mean, and log-bucket quantile bounds, in microseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
}

// Latencies snapshots every mechanism's summary, keyed by name.
func (s *Stats) Latencies() map[string]LatencySummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]LatencySummary, len(s.lat))
	for name, h := range s.lat {
		out[name] = h.summary()
	}
	return out
}

// MechNames returns the mechanisms observed so far, sorted.
func (s *Stats) MechNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.lat))
	for n := range s.lat {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// latBuckets is the histogram resolution: bucket i holds latencies in
// [2^(i-1), 2^i) nanoseconds, so 48 buckets span 1ns to ~39h.
const latBuckets = 48

// latHist is a lock-free log2 histogram; quantiles are read as the
// upper bound of the bucket where the target rank lands, which is
// within 2× of the true value — plenty for a load report.
type latHist struct {
	count   atomic.Uint64
	sumNS   atomic.Uint64
	buckets [latBuckets]atomic.Uint64
}

func (h *latHist) observe(d time.Duration) {
	ns := uint64(max(d.Nanoseconds(), 0))
	h.count.Add(1)
	h.sumNS.Add(ns)
	i := 0
	for v := ns; v > 0 && i < latBuckets-1; v >>= 1 {
		i++
	}
	h.buckets[i].Add(1)
}

func (h *latHist) summary() LatencySummary {
	var counts [latBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	ls := LatencySummary{Count: h.count.Load()}
	if total == 0 {
		return ls
	}
	ls.MeanUS = float64(h.sumNS.Load()) / float64(total) / 1e3
	quantile := func(q float64) float64 {
		rank := uint64(q * float64(total))
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum > rank {
				return float64(uint64(1)<<uint(i)) / 1e3 // bucket upper bound, µs
			}
		}
		return float64(uint64(1)<<uint(latBuckets-1)) / 1e3
	}
	ls.P50US = quantile(0.50)
	ls.P90US = quantile(0.90)
	ls.P99US = quantile(0.99)
	return ls
}
