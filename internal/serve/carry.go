package serve

import (
	"strconv"
	"strings"

	"wmcs/internal/mechreg"
	"wmcs/internal/query"
)

// This file is the cache carry-forward pass of PATCH /v1/networks
// (DESIGN.md §12.4): after an update retires version v for v', entries
// cached under v's prefix are normally unreachable garbage — but when
// the update's delta *proves* a cached outcome identical on the new
// network, the entry can be re-keyed under v' instead of recomputed.
// Two proofs are accepted:
//
//   - the Unchanged fast path: the op sequence canceled out bitwise
//     (wireless.StateEqual), the outgoing evaluator itself was
//     republished, and every entry — the sampled (approx) tier
//     included — is valid verbatim, because any query under v' runs
//     on the same evaluator object;
//   - a per-mechanism CarrySafe predicate from the descriptor
//     registry: exact-tier entries only, with the canonical support
//     set parsed back out of the cache key. The registry's default is
//     nil (never carry) — a predicate exists only where DESIGN.md
//     states the proof.
//
// The pass is bounded (carryLimit hottest entries, MRU-first per
// shard) and purely an optimization: a skipped entry is recomputed on
// the next miss with identical bytes, so correctness never depends on
// the scan completing or on the predicate accepting.

// carryLimit bounds how many retired-prefix keys one update inspects.
// Carrying is O(keys scanned), runs inside the PATCH handler, and the
// hottest entries are found first — past a few hundred the marginal
// entry is cold enough that recomputing it on demand is fine.
const carryLimit = 512

// carryForward re-keys still-valid cache entries from the retired
// version's prefix to the new one and returns how many it carried.
// Call before DeletePrefix(old prefix): the pass reads the old keys.
func (s *Server) carryForward(entry *NetworkEntry, res query.UpdateResult) int {
	oldPrefix := entry.prefixFor(res.OldVersion)
	newPrefix := entry.prefixFor(res.NewVersion)
	carried := 0
	for _, key := range s.cache.KeysWithPrefix(oldPrefix, carryLimit) {
		canon := key[len(oldPrefix):]
		if !res.Unchanged && !carrySafe(canon, res) {
			continue
		}
		body, ok := s.cache.Get(key)
		if !ok {
			continue // evicted between the scan and now
		}
		newKey := newPrefix + canon
		s.cache.Put(newKey, body)
		// Same stranded-entry discipline as the batcher's runGroup: if
		// the entry was evicted — or updated *again* — while we carried,
		// our Put may have landed after that successor's purge of our
		// prefix, stranding an unreachable entry in LRU capacity.
		// Deleting our own key closes the race; if we instead observed
		// our own version, the later purge is guaranteed to sweep it.
		if entry.evicted.Load() || entry.Ev.Version() != res.NewVersion {
			s.cache.Delete(newKey)
			continue
		}
		carried++
	}
	return carried
}

// carrySafe decides one exact-tier entry under the per-mechanism
// predicate. canon is the network-agnostic half of the cache key:
// mech ␟ i=hexfloat ␟ ... [␟ approx=...].
func carrySafe(canon string, res query.UpdateResult) bool {
	if strings.Contains(canon, "\x1fapprox=") {
		// The sampled tier is never carried by predicate: its
		// permutations range over the full agent set and observe touched
		// distances directly (DESIGN.md §12.3).
		return false
	}
	name, rest, _ := strings.Cut(canon, "\x1f")
	d, err := mechreg.ByName(name)
	if err != nil || d.CarrySafe == nil {
		return false
	}
	support, ok := supportFromKey(rest)
	if !ok {
		return false
	}
	return d.CarrySafe(res.OldNet, res.NewNet, res.Delta, support)
}

// supportFromKey parses the canonical support set — the station
// indices with nonzero canonical utility — back out of the key's
// profile segments ("i=hexfloat", 0x1f-separated; empty rest means an
// all-zero profile). ok is false on anything malformed: carrying on a
// misparsed support would hand the predicate the wrong question.
func supportFromKey(rest string) ([]int, bool) {
	if rest == "" {
		return nil, true
	}
	segs := strings.Split(rest, "\x1f")
	support := make([]int, 0, len(segs))
	for _, seg := range segs {
		idx, _, found := strings.Cut(seg, "=")
		if !found {
			return nil, false
		}
		i, err := strconv.Atoi(idx)
		if err != nil || i < 0 {
			return nil, false
		}
		support = append(support, i)
	}
	return support, true
}
