package serve

import (
	"math"
	"strings"
	"testing"

	"wmcs/internal/mechreg"
)

// FuzzCanonicalize drives the request codec with arbitrary utilities,
// receiver indices, and mechanism picks over a fixed 4-station network
// (source 0), and checks the cache-key contract's invariants on
// whatever Canonicalize accepts:
//
//   - rejection is total for non-finite, negative, or grid-overflowing
//     utilities and out-of-range receivers;
//   - canonicalization is deterministic (same request, same key);
//   - the documented (R, u) ≡ (nil, mask(u)) equivalence holds: folding
//     R into the wire profile by hand and resubmitting with R=nil
//     reproduces the key, so both forms share a cache entry;
//   - the canonical profile is zero at the source and outside R;
//   - Key is buildKey's rendering of the canonical form.
//
// CI runs this under `go test -fuzz` for a short smoke (the
// static-analysis job, DESIGN.md §15); the committed corpus under
// testdata/fuzz keeps the interesting shapes replaying as plain tests.
func FuzzCanonicalize(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 1, 2, 0)
	f.Add(0.0, 0.0, 0.0, 0, 0, 1)         // all-zero profile, source receiver
	f.Add(1.5e-7, 2.5e-7, 1e300, 3, 3, 2) // sub-quantum utilities, huge one
	f.Add(math.NaN(), 1.0, 1.0, 1, 2, 3)  // NaN: reject
	f.Add(-0.5, 1.0, 1.0, 1, 2, 4)        // negative: reject
	f.Add(1.0, 1.0, 1.0, -1, 9, 5)        // receivers out of range: reject
	f.Add(math.Inf(1), 1.0, 1.0, 1, 2, 6) // +Inf: reject
	f.Add(1.8e302, 1.0, 1.0, 1, 2, 7)     // overflows the grid: reject
	f.Fuzz(func(t *testing.T, u1, u2, u3 float64, r1, r2, mechPick int) {
		const n, source = 4, 0
		names := mechreg.Names()
		mechName := names[abs(mechPick)%len(names)]
		req := EvalRequest{
			Network: "fuzz",
			Mech:    mechName,
			R:       []int{r1, r2},
			Profile: []float64{0, u1, u2, u3},
		}
		c, err := Canonicalize(req, n, source)

		badUtility := false
		for _, v := range req.Profile {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || math.IsInf(quantize(v), 0) {
				badUtility = true
			}
		}
		badReceiver := r1 < 0 || r1 >= n || r2 < 0 || r2 >= n
		if badUtility || badReceiver {
			if err == nil {
				t.Fatalf("invalid request accepted: u=%v R=%v key=%q", req.Profile, req.R, c.Key)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid request rejected: u=%v R=%v: %v", req.Profile, req.R, err)
		}

		again, err := Canonicalize(req, n, source)
		if err != nil || again.Key != c.Key {
			t.Fatalf("canonicalization not deterministic: %v, %q vs %q", err, again.Key, c.Key)
		}

		// Fold R into the wire profile by hand and resubmit with R=nil:
		// the codec documents these as the same query.
		folded := make([]float64, n)
		folded[r1] = req.Profile[r1]
		folded[r2] = req.Profile[r2]
		folded[source] = 0
		equiv, err := Canonicalize(EvalRequest{Network: "fuzz", Mech: mechName, Profile: folded}, n, source)
		if err != nil || equiv.Key != c.Key {
			t.Fatalf("(R,u) and (nil,mask(u)) disagree: %v, %q vs %q", err, equiv.Key, c.Key)
		}

		inR := map[int]bool{r1: true, r2: true}
		for i, v := range c.Profile {
			if (i == source || !inR[i]) && v != 0 {
				t.Fatalf("canonical utility %d = %v outside R (or at the source) is nonzero", i, v)
			}
		}
		if want := buildKey(c); c.Key != want {
			t.Fatalf("Key %q is not buildKey's rendering %q", c.Key, want)
		}
		if !strings.HasPrefix(c.Key, mechName) {
			t.Fatalf("key %q does not start with the mechanism name %q", c.Key, mechName)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == math.MinInt {
			return 0
		}
		return -x
	}
	return x
}
