package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/query"
)

// TestServeDifferentialAllMechanisms is the serving-layer differential
// test: for every scenario family and every applicable mechanism, the
// /v1/evaluate response must be byte-identical (a) between the cold
// evaluation and the cache hit that follows it, and (b) to the encoding
// of the cmd/wmcs one-shot path — a fresh Evaluator's Mechanism().Run()
// on the canonical profile. (a) is the cache contract; (b) pins the
// serving stack to the exact floats the CLI prints, so a cached answer
// can never drift from a one-shot answer.
func TestServeDifferentialAllMechanisms(t *testing.T) {
	const n = 9
	type family struct {
		spec  instances.Spec
		mechs []string
	}
	general := []string{"universal-shapley", "universal-mc", "wireless-bb", "jv-moat"}
	var families []family
	for si, sc := range instances.Scenarios() {
		families = append(families, family{
			spec:  instances.Spec{Name: "d-" + sc.Name, Scenario: sc.Name, N: n, Alpha: 2, Seed: int64(300 + si)},
			mechs: general,
		})
	}
	// The Euclidean specials on their applicable classes.
	families = append(families,
		family{
			spec:  instances.Spec{Name: "d-alpha1", Scenario: "uniform", N: n, Alpha: 1, Seed: 41},
			mechs: []string{"alpha1-shapley", "alpha1-mc"},
		},
		family{
			spec:  instances.Spec{Name: "d-line1", Scenario: "line", N: n, Alpha: 2, Seed: 42},
			mechs: []string{"line-shapley", "line-mc"},
		},
	)

	reg := NewRegistry()
	for _, f := range families {
		if err := reg.RegisterSpec(f.spec); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(reg, Options{})
	defer s.Close()

	for _, f := range families {
		entry, _ := reg.Get(f.spec.Name)
		nw := entry.Net
		rng := rand.New(rand.NewSource(f.spec.Seed))
		for _, name := range f.mechs {
			for trial := 0; trial < 2; trial++ {
				wire := make([]float64, nw.N())
				for i := range wire {
					if i != nw.Source() {
						wire[i] = rng.Float64() * 50
					}
				}
				req := EvalRequest{Network: f.spec.Name, Mech: name, Profile: wire}
				label := fmt.Sprintf("%s/%s trial %d", f.spec.Name, name, trial)

				cold := do(t, s, "POST", "/v1/evaluate", req)
				if cold.Code != http.StatusOK {
					t.Fatalf("%s: cold status %d: %s", label, cold.Code, cold.Body.String())
				}
				warm := do(t, s, "POST", "/v1/evaluate", req)
				if warm.Header().Get("X-Wmcs-Cache") != "hit" {
					t.Fatalf("%s: second request was not a hit", label)
				}
				if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
					t.Fatalf("%s: cache hit differs from cold evaluation\ncold: %s\nwarm: %s",
						label, cold.Body.String(), warm.Body.String())
				}

				// The one-shot path: exactly what cmd/wmcs does — a fresh
				// evaluator, Mechanism by name, Run on the profile — fed
				// the canonical (quantized, masked) profile.
				c, err := Canonicalize(req, nw.N(), nw.Source())
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				m, err := query.NewEvaluator(nw).Mechanism(name)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				oneShot, err := EncodeOutcome(f.spec.Name, name, m.Run(c.Profile))
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !bytes.Equal(cold.Body.Bytes(), oneShot) {
					t.Fatalf("%s: served response differs from one-shot evaluation\nserved:   %s\none-shot: %s",
						label, cold.Body.String(), oneShot)
				}
			}
		}
	}
}
