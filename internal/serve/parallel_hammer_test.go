package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/mechreg"
	"wmcs/internal/query"
)

// TestParallelReplicaHammer is the -race hammer for the replica-slot
// dispatch path (DESIGN.md §14): two networks served on the parallel
// evaluation tier take concurrent heavy queries — exact wireless-bb,
// exact Shapley, and sampled-tier requests with certificates — while a
// writer rotates each network through PATCH versions. Concurrent
// queries against distinct networks land in shared dispatch rounds, so
// their groups run concurrently on replica slots; every version-labeled
// response must be byte-identical to a cold width-1 evaluator *on the
// parallel tier* at exactly the version its X-Wmcs-Version header names
// (width 1 stands in for the server's width because the tier is
// width-invariant by construction — the query-layer sweep pins that).
func TestParallelReplicaHammer(t *testing.T) {
	const (
		n       = 8
		readers = 6
		queries = 16
		width   = 4
	)
	specs := []instances.Spec{
		{Name: "phamA", Scenario: "uniform", N: n, Alpha: 2, Seed: 61},
		{Name: "phamB", Scenario: "clustered", N: n, Alpha: 2, Seed: 62},
	}
	reg := NewRegistry()
	reg.SetParallel(width) // before registration, as wmcsd does
	for _, sp := range specs {
		if err := reg.RegisterSpec(sp); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(reg, Options{Workers: width, ParallelEval: width})
	defer s.Close()
	for _, sp := range specs {
		entry, _ := reg.Get(sp.Name)
		if w := entry.Ev.Evaluator().ParallelWorkers(); w != width {
			t.Fatalf("%s: evaluator width %d, want %d", sp.Name, w, width)
		}
	}

	// Per network: heavy probes (the spider-contraction mechanism, a
	// Shapley tree, and a sampled-tier request whose response carries a
	// certificate) plus the PATCH stream and the per-version expected
	// bytes, computed on independent replicas with width-1 parallel
	// evaluators.
	type netCase struct {
		name     string
		probes   []EvalRequest
		updates  []instances.Update
		expected map[string][]byte // "version/probeIdx" -> bytes
	}
	cases := make([]*netCase, len(specs))
	for j, sp := range specs {
		entry, _ := reg.Get(sp.Name)
		src := entry.Net.Source()
		u := profileFor(n, src, 70+int64(j))
		nc := &netCase{
			name: sp.Name,
			probes: []EvalRequest{
				{Network: sp.Name, Mech: mechreg.WirelessBB, Profile: u},
				{Network: sp.Name, Mech: mechreg.UniversalShapley, Profile: u},
				{Network: sp.Name, Mech: mechreg.UniversalShapley, Profile: u,
					Approx: &ApproxWire{Samples: 40, Delta: 0.1, Seed: 17}},
			},
			expected: map[string][]byte{},
		}
		moved := (src + 1 + j) % n
		entryHome := entry.Net.Points()[moved].Clone()
		away := entryHome.Clone()
		away[0] += 0.2
		for r := 0; r < 2; r++ {
			nc.updates = append(nc.updates,
				instances.Update{Moves: []instances.MoveOp{{Station: moved, Point: away.Clone()}}},
				instances.Update{Moves: []instances.MoveOp{{Station: moved, Point: entryHome.Clone()}}},
			)
		}
		replica, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		record := func() {
			snap := replica.Snapshot()
			ev := query.NewEvaluator(snap, query.WithParallel(query.ParallelSpec{Workers: 1}))
			for pi, req := range nc.probes {
				c, err := Canonicalize(req, n, src)
				if err != nil {
					t.Fatal(err)
				}
				var b []byte
				if c.Approx != nil {
					o, cert, err := ev.EvaluateApprox(req.Mech, nil, c.Profile, *c.Approx)
					if err != nil {
						t.Fatal(err)
					}
					if b, err = EncodeOutcomeCert(nc.name, req.Mech, o, &cert); err != nil {
						t.Fatal(err)
					}
				} else {
					o, err := ev.Evaluate(req.Mech, nil, c.Profile)
					if err != nil {
						t.Fatal(err)
					}
					if b, err = EncodeOutcome(nc.name, req.Mech, o); err != nil {
						t.Fatal(err)
					}
				}
				nc.expected[fmt.Sprintf("%d/%d", snap.Version(), pi)] = b
			}
		}
		record()
		for _, up := range nc.updates {
			if err := up.Apply(replica); err != nil {
				t.Fatal(err)
			}
			record()
		}
		cases[j] = nc
	}

	var wg sync.WaitGroup
	for j := range cases {
		j := j
		wg.Add(1)
		go func() { // one writer per network
			defer wg.Done()
			for _, up := range cases[j].updates {
				if w := do(t, s, "PATCH", "/v1/networks/"+cases[j].name, up); w.Code != http.StatusOK {
					t.Errorf("PATCH %s: %d %s", cases[j].name, w.Code, w.Body.String())
					return
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < queries; q++ {
				nc := cases[(r+q)%len(cases)]
				pi := (r + q) % len(nc.probes)
				w := do(t, s, "POST", "/v1/evaluate", nc.probes[pi])
				if w.Code != http.StatusOK {
					t.Errorf("reader %d: %s probe %d: %d %s", r, nc.name, pi, w.Code, w.Body.String())
					return
				}
				ver := w.Header().Get("X-Wmcs-Version")
				want, ok := nc.expected[ver+"/"+strconv.Itoa(pi)]
				if !ok {
					t.Errorf("reader %d: %s served version %q is not a committed state", r, nc.name, ver)
					return
				}
				if !bytes.Equal(w.Body.Bytes(), want) {
					t.Errorf("reader %d: %s probe %d bytes differ from the cold width-1 parallel evaluation of version %s\nserved: %s\nwant:   %s",
						r, nc.name, pi, ver, w.Body.String(), want)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Replica dispatch must actually have run: with two networks hammered
	// concurrently, some dispatch round carried groups for both.
	if s.Stats().ReplicaRounds.Load() == 0 {
		t.Log("note: no dispatch round carried multiple groups (legal but unusual under this load)")
	}
}
