package serve

import (
	"container/list"
	"strings"
	"sync"
)

// Cache is a sharded LRU over canonical keys → encoded response bytes.
// Sharding keeps lock contention off the serving hot path: a key's
// shard is a pure function of its bytes (FNV-1a), each shard has its
// own mutex, recency list, and slice of the capacity. A zero-capacity
// cache is valid and never stores anything.
type Cache struct {
	shards []cacheShard
	mask   uint64
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	ll       *list.List // front = most recently used
	hits     uint64
	misses   uint64
	evicted  uint64
}

type cacheEntry struct {
	key string
	val []byte
}

// CacheStats is a point-in-time counter snapshot summed over shards.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Evicted  uint64 `json:"evicted"`
	Len      int    `json:"len"`
	Capacity int    `json:"capacity"`
}

// DefaultCacheCapacity is the result-cache size callers select by not
// caring: the sentinel the server substitutes for an unset (zero)
// Options.CacheCapacity and the default of wmcsd's -cache flag. It is
// distinct from 0, which NewCache honors literally as "disabled".
const DefaultCacheCapacity = 4096

// NewCache builds a cache of exactly `capacity` entries over `shards`
// shards (rounded up to a power of two; defaults: 16 shards). Capacity
// is distributed over the shards with the remainder spread one entry at
// a time, so the shard capacities sum to the requested figure — Stats
// reports the number asked for, and a 16-shard cache of capacity 100
// holds at most 100 entries, not 112. Capacity <= 0 disables caching
// entirely: the cache is valid and never stores anything (callers that
// want the default must say DefaultCacheCapacity). A capacity smaller
// than the shard count leaves some shards at zero — keys hashing there
// are simply never cached.
func NewCache(capacity, shards int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	if shards <= 0 {
		shards = 16
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	per, extra := capacity/n, capacity%n
	for i := range c.shards {
		c.shards[i].capacity = per
		if i < extra {
			c.shards[i].capacity++
		}
		c.shards[i].entries = make(map[string]*list.Element)
		c.shards[i].ll = list.New()
	}
	return c
}

// fnv1a hashes the key for shard selection.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (c *Cache) shardFor(key string) *cacheShard {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the cached bytes for key and refreshes its recency. The
// returned slice is the stored one: callers must not mutate it (they
// only ever write it to a response).
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		return el.Value.(*cacheEntry).val, true
	}
	s.misses++
	return nil, false
}

// Put stores val under key, evicting from the cold end of the shard
// when full. Storing an existing key refreshes it in place.
func (c *Cache) Put(key string, val []byte) {
	s := c.shardFor(key)
	if s.capacity <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.entries[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
	for s.ll.Len() > s.capacity {
		old := s.ll.Back()
		s.ll.Remove(old)
		delete(s.entries, old.Value.(*cacheEntry).key)
		s.evicted++
	}
}

// KeysWithPrefix returns up to limit keys starting with prefix,
// walking each shard's recency list front-to-back so the hottest
// entries surface first — the bounded scan behind the update handler's
// carry-forward pass. Recency is not refreshed (this is bookkeeping,
// not a client access).
func (c *Cache) KeysWithPrefix(prefix string, limit int) []string {
	if limit <= 0 {
		return nil
	}
	var out []string
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil && len(out) < limit; el = el.Next() {
			if e := el.Value.(*cacheEntry); strings.HasPrefix(e.key, prefix) {
				out = append(out, e.key)
			}
		}
		s.mu.Unlock()
		if len(out) >= limit {
			break
		}
	}
	return out
}

// Delete drops one key, reporting whether it was present. The batcher
// uses it to un-cache a result it stored for an entry that was evicted
// mid-evaluation (see runGroup).
func (c *Cache) Delete(key string) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return false
	}
	s.ll.Remove(el)
	delete(s.entries, key)
	return true
}

// DeletePrefix drops every entry whose key starts with prefix — how
// network eviction invalidates that network's results (keys start with
// the network name, see buildKey).
func (c *Cache) DeletePrefix(prefix string) int {
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, el := range s.entries {
			if strings.HasPrefix(key, prefix) {
				s.ll.Remove(el)
				delete(s.entries, key)
				dropped++
			}
		}
		s.mu.Unlock()
	}
	return dropped
}

// PrefixStats counts the entries whose keys start with prefix and the
// bytes they hold — the per-network cache gauges of /metricsz. A full
// walk under the shard locks, like DeletePrefix: scrape-rate work, not
// hot-path work.
func (c *Cache) PrefixStats(prefix string) (entries, bytes int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for key, el := range s.entries {
			if strings.HasPrefix(key, prefix) {
				entries++
				bytes += len(el.Value.(*cacheEntry).val)
			}
		}
		s.mu.Unlock()
	}
	return entries, bytes
}

// Stats sums the shard counters.
func (c *Cache) Stats() CacheStats {
	var st CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evicted += s.evicted
		st.Len += s.ll.Len()
		st.Capacity += s.capacity
		s.mu.Unlock()
	}
	return st
}
