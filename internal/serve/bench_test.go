package serve

import (
	"math/rand"
	"testing"

	"wmcs/internal/instances"
)

// BenchmarkServeHotSet drives the full serving path — codec, cache,
// singleflight, admission — with the registry's Zipf hot-set workload
// on one network, the shape the cache is built for. The hit-rate metric
// it reports is the steady-state fraction served from the cache.
func BenchmarkServeHotSet(b *testing.B) {
	reg := NewRegistry()
	spec := instances.Spec{Name: "bench", Scenario: "uniform", N: 12, Alpha: 2, Seed: 9}
	if err := reg.RegisterSpec(spec); err != nil {
		b.Fatal(err)
	}
	entry, _ := reg.Get("bench")
	s := NewServer(reg, Options{Workers: 1})
	defer s.Close()

	w, err := instances.WorkloadByName("hotset")
	if err != nil {
		b.Fatal(err)
	}
	sampler := w.New(rand.New(rand.NewSource(3)), entry.Net, instances.WorkloadOptions{HotSets: 64})

	var hits, total uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := sampler.Next()
		c, err := Canonicalize(EvalRequest{
			Network: "bench", Mech: "wireless-bb", R: q.R, Profile: q.U,
		}, entry.Net.N(), entry.Net.Source())
		if err != nil {
			b.Fatal(err)
		}
		_, source, err := s.EvaluateCanon(c)
		if err != nil {
			b.Fatal(err)
		}
		total++
		if source == "hit" {
			hits++
		}
	}
	b.StopTimer()
	if total > 0 {
		b.ReportMetric(float64(hits)/float64(total), "hit-rate")
	}
}
