package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(4, 1) // one shard so the LRU order is global
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	// Touch k0 so k1 is the cold end, then overflow.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 missing")
	}
	c.Put("k4", []byte{4})
	if _, ok := c.Get("k1"); ok {
		t.Fatal("cold entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	st := c.Stats()
	if st.Evicted != 1 || st.Len != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheDeletePrefix(t *testing.T) {
	c := NewCache(64, 4)
	c.Put("net-a\x1fjv-moat\x1f1=0x1p+0", []byte("a1"))
	c.Put("net-a\x1fwireless-bb\x1f2=0x1p+0", []byte("a2"))
	c.Put("net-b\x1fjv-moat\x1f1=0x1p+0", []byte("b1"))
	if n := c.DeletePrefix(networkKeyPrefix("net-a")); n != 2 {
		t.Fatalf("dropped %d entries, want 2", n)
	}
	if _, ok := c.Get("net-b\x1fjv-moat\x1f1=0x1p+0"); !ok {
		t.Fatal("unrelated network entry dropped")
	}
	if _, ok := c.Get("net-a\x1fjv-moat\x1f1=0x1p+0"); ok {
		t.Fatal("evicted network entry survived")
	}
}

func TestCacheDelete(t *testing.T) {
	c := NewCache(64, 4)
	c.Put("k1", []byte("v1"))
	c.Put("k2", []byte("v2"))
	if !c.Delete("k1") {
		t.Fatal("Delete(k1) reported absent")
	}
	if c.Delete("k1") {
		t.Fatal("second Delete(k1) reported present")
	}
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived Delete")
	}
	if _, ok := c.Get("k2"); !ok {
		t.Fatal("Delete(k1) took k2 with it")
	}
	if st := c.Stats(); st.Len != 1 {
		t.Fatalf("len %d after delete, want 1", st.Len)
	}
}

func TestCacheDisabled(t *testing.T) {
	// Both negative and zero capacity disable storage: the doc comment
	// has always promised "a zero-capacity cache is valid and never
	// stores anything", but capacity 0 used to be silently rewritten to
	// the 4096 default (callers wanting the default say
	// DefaultCacheCapacity now).
	for _, capacity := range []int{-1, 0} {
		c := NewCache(capacity, 8)
		c.Put("k", []byte("v"))
		if _, ok := c.Get("k"); ok {
			t.Fatalf("cache with capacity %d stored an entry", capacity)
		}
		if st := c.Stats(); st.Capacity != 0 || st.Len != 0 {
			t.Fatalf("capacity %d: stats %+v", capacity, st)
		}
	}
}

// TestCacheExactCapacityDistribution: summed shard capacity must equal
// the requested capacity for non-divisible splits — ceiling division
// used to inflate a 16-shard capacity-100 cache to 112 entries (and
// /statsz reported the inflated sum).
func TestCacheExactCapacityDistribution(t *testing.T) {
	for _, tc := range []struct{ capacity, shards, wantShards int }{
		{100, 16, 16}, // the motivating case: 16·⌈100/16⌉ = 112 before the fix
		{5, 4, 4},     // capacity barely above the shard count
		{3, 8, 8},     // capacity below the shard count: some shards hold nothing
		{4096, 16, 16},
		{101, 10, 16}, // shard rounding to a power of two keeps the sum exact
	} {
		c := NewCache(tc.capacity, tc.shards)
		if got := len(c.shards); got != tc.wantShards {
			t.Fatalf("NewCache(%d, %d): %d shards, want %d", tc.capacity, tc.shards, got, tc.wantShards)
		}
		sum := 0
		for i := range c.shards {
			sum += c.shards[i].capacity
		}
		if sum != tc.capacity {
			t.Errorf("NewCache(%d, %d): shard capacities sum to %d", tc.capacity, tc.shards, sum)
		}
		if st := c.Stats(); st.Capacity != tc.capacity {
			t.Errorf("NewCache(%d, %d): Stats().Capacity = %d", tc.capacity, tc.shards, st.Capacity)
		}
		// Overfill with distinct keys: residency can never exceed the
		// requested capacity.
		for i := 0; i < 4*tc.capacity+8; i++ {
			c.Put(fmt.Sprintf("key-%d", i), []byte{byte(i)})
		}
		if st := c.Stats(); st.Len > tc.capacity {
			t.Errorf("NewCache(%d, %d): %d entries resident, want <= %d", tc.capacity, tc.shards, st.Len, tc.capacity)
		}
	}
}

// TestCacheConcurrent hammers all shards from many goroutines; the race
// detector is the oracle.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (g*31+i)%200)
				if v, ok := c.Get(k); ok && len(v) == 0 {
					t.Error("empty value")
					return
				}
				c.Put(k, []byte(k))
			}
		}(g)
	}
	wg.Wait()
	c.DeletePrefix("key-1")
}
