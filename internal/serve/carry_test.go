package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/mechreg"
	"wmcs/internal/query"
)

// patch sends one PATCH and decodes the success body.
func patch(t *testing.T, s *Server, name string, up instances.Update) updateResponse {
	t.Helper()
	w := do(t, s, "PATCH", "/v1/networks/"+name, up)
	if w.Code != http.StatusOK {
		t.Fatalf("PATCH %s: %d %s", name, w.Code, w.Body.String())
	}
	var ur updateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ur); err != nil {
		t.Fatal(err)
	}
	return ur
}

// TestPatchNoOpRetiresNothing: a PATCH whose every op is a true no-op
// (same-value SetCost) answers 200 with zero ops, bumps nothing, and
// leaves the cached entries hot — the next request is a hit at the
// same version.
func TestPatchNoOpRetiresNothing(t *testing.T) {
	sp := instances.Spec{Name: "noop", Scenario: "symmetric", N: 8, Seed: 41}
	reg := NewRegistry()
	if err := reg.RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, Options{Workers: 1})
	defer s.Close()
	entry, _ := reg.Get("noop")
	req := EvalRequest{Network: "noop", Mech: "universal-shapley", Profile: profileFor(8, 0, 5)}
	warm := do(t, s, "POST", "/v1/evaluate", req)
	if warm.Code != http.StatusOK {
		t.Fatalf("warm: %d %s", warm.Code, warm.Body.String())
	}
	before := statszFor(t, s)
	ur := patch(t, s, "noop", instances.Update{SetCosts: []instances.CostSet{
		{I: 1, J: 2, Cost: entry.Net.C(1, 2)},
	}})
	if ur.Ops != 0 || ur.Version != ur.OldVersion || ur.CacheEntriesDropped != 0 || ur.CarriedEntries != 0 {
		t.Fatalf("no-op PATCH response: %+v", ur)
	}
	if v := entry.Ev.Version(); v != 0 {
		t.Fatalf("no-op PATCH advanced the version to %d", v)
	}
	after := statszFor(t, s)
	if after.Updates != before.Updates || after.RebuildUS.Count != before.RebuildUS.Count {
		t.Fatalf("no-op PATCH counted as an update: %+v -> %+v", before, after)
	}
	if w := do(t, s, "POST", "/v1/evaluate", req); w.Header().Get("X-Wmcs-Cache") != "hit" ||
		!bytes.Equal(w.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatal("no-op PATCH retired the cached entry")
	}
}

// TestPatchUnchangedCarriesEverything: a disable+enable round trip in
// one PATCH cancels out bitwise, so the outgoing evaluator is
// republished and *every* cached entry — the sampled tier included —
// is carried to the new version verbatim: the first post-update
// request is a hit with byte-identical bodies.
func TestPatchUnchangedCarriesEverything(t *testing.T) {
	sp := instances.Spec{Name: "flip", Scenario: "symmetric", N: 8, Seed: 43}
	reg := NewRegistry()
	if err := reg.RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, Options{Workers: 1})
	defer s.Close()
	wire := profileFor(8, 0, 7)
	reqs := []EvalRequest{
		{Network: "flip", Mech: "universal-shapley", Profile: wire},
		{Network: "flip", Mech: "universal-mc", Profile: wire},
		{Network: "flip", Mech: "universal-shapley", Profile: wire,
			Approx: &ApproxWire{Samples: 64, Delta: 0.1, Seed: 5}},
	}
	warm := make([]*bytes.Buffer, len(reqs))
	for i, req := range reqs {
		w := do(t, s, "POST", "/v1/evaluate", req)
		if w.Code != http.StatusOK {
			t.Fatalf("warm %d: %d %s", i, w.Code, w.Body.String())
		}
		warm[i] = w.Body
	}
	ur := patch(t, s, "flip", instances.Update{Disable: []int{3}, Enable: []int{3}})
	if !ur.Incremental || ur.Ops != 2 {
		t.Fatalf("round-trip PATCH response: %+v", ur)
	}
	if ur.CarriedEntries != len(reqs) {
		t.Fatalf("carried %d entries, want %d", ur.CarriedEntries, len(reqs))
	}
	if st := statszFor(t, s); st.CarriedEntries != uint64(len(reqs)) || st.RebuildIncrementalUS.Count != 1 {
		t.Fatalf("statsz after unchanged PATCH: carried=%d inc=%d", st.CarriedEntries, st.RebuildIncrementalUS.Count)
	}
	for i, req := range reqs {
		w := do(t, s, "POST", "/v1/evaluate", req)
		if src := w.Header().Get("X-Wmcs-Cache"); src != "hit" {
			t.Fatalf("req %d post-carry was a %q, want hit", i, src)
		}
		if !bytes.Equal(w.Body.Bytes(), warm[i].Bytes()) {
			t.Fatalf("req %d carried bytes differ\nwas: %s\nnow: %s", i, warm[i], w.Body)
		}
	}
}

// TestPatchCarryAlpha1ShapleyPredicate drives the one registry
// CarrySafe predicate end to end: on an α = 1 Euclidean network, move
// a station outside a query's support — the alpha1-shapley entry is
// carried (and must equal a cold evaluation on the mutated replica),
// while the alpha1-mc entry (no predicate) and any entry whose support
// contains the moved station are recomputed.
func TestPatchCarryAlpha1ShapleyPredicate(t *testing.T) {
	sp := instances.Spec{Name: "a1", Scenario: "uniform", N: 9, Alpha: 1, Seed: 47}
	reg := NewRegistry()
	if err := reg.RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, Options{Workers: 1})
	defer s.Close()
	entry, _ := reg.Get("a1")
	const moved = 4
	// outside: support excludes the moved station; inside: includes it.
	outside := profileFor(9, entry.Net.Source(), 9)
	outside[moved] = 0
	inside := profileFor(9, entry.Net.Source(), 9)
	reqSafe := EvalRequest{Network: "a1", Mech: mechreg.Alpha1Shapley, Profile: outside}
	reqIn := EvalRequest{Network: "a1", Mech: mechreg.Alpha1Shapley, Profile: inside}
	reqMC := EvalRequest{Network: "a1", Mech: mechreg.Alpha1MC, Profile: outside}
	for _, req := range []EvalRequest{reqSafe, reqIn, reqMC} {
		if w := do(t, s, "POST", "/v1/evaluate", req); w.Code != http.StatusOK {
			t.Fatalf("warm %s: %d %s", req.Mech, w.Code, w.Body.String())
		}
	}

	p := entry.Net.Points()[moved].Clone()
	p[0] += 0.35
	up := instances.Update{Moves: []instances.MoveOp{{Station: moved, Point: p}}}
	replica, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := up.Apply(replica); err != nil {
		t.Fatal(err)
	}
	ur := patch(t, s, "a1", up)
	if ur.CarriedEntries != 1 {
		t.Fatalf("carried %d entries, want exactly the out-of-support alpha1-shapley one (%+v)", ur.CarriedEntries, ur)
	}

	// The carried entry: a hit, byte-identical to a cold evaluation of
	// the same canonical query on the mutated replica.
	w := do(t, s, "POST", "/v1/evaluate", reqSafe)
	if src := w.Header().Get("X-Wmcs-Cache"); src != "hit" {
		t.Fatalf("carried entry served as %q, want hit", src)
	}
	c, err := Canonicalize(reqSafe, 9, replica.Source())
	if err != nil {
		t.Fatal(err)
	}
	m, err := query.NewEvaluator(replica).Mechanism(mechreg.Alpha1Shapley)
	if err != nil {
		t.Fatal(err)
	}
	want, err := EncodeOutcome("a1", mechreg.Alpha1Shapley, m.Run(c.Profile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatalf("carried alpha1-shapley bytes differ from cold evaluation on the moved network\ncarried: %s\ncold:    %s",
			w.Body.String(), want)
	}

	// The other two were rightly not carried.
	for _, req := range []EvalRequest{reqIn, reqMC} {
		if w := do(t, s, "POST", "/v1/evaluate", req); w.Header().Get("X-Wmcs-Cache") != "miss" {
			t.Fatalf("%s with the moved station in scope was not recomputed", req.Mech)
		}
	}
}

// TestSupportFromKey pins the key-parsing half of the carry pass.
func TestSupportFromKey(t *testing.T) {
	cases := []struct {
		rest string
		want []int
		ok   bool
	}{
		{"", nil, true},
		{"3=0x1p+1", []int{3}, true},
		{"1=0x1p+1\x1f7=0x1.8p+3", []int{1, 7}, true},
		{"junk", nil, false},
		{"-1=0x1p+1", nil, false},
		{"x=0x1p+1", nil, false},
	}
	for _, c := range cases {
		got, ok := supportFromKey(c.rest)
		if ok != c.ok || len(got) != len(c.want) {
			t.Fatalf("supportFromKey(%q) = %v, %v; want %v, %v", c.rest, got, ok, c.want, c.ok)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("supportFromKey(%q) = %v, want %v", c.rest, got, c.want)
			}
		}
	}
}
