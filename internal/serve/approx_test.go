package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"testing"

	"wmcs/internal/mechreg"
)

// This file pins the serving contract of the approximate tier
// (DESIGN.md §11): the "approx" field canonicalizes deterministically,
// its cache keys are disjoint from the exact tier's (and from every
// other spec's), a malformed spec is a structured 422 — never a 500 —
// and /v1/mechanisms advertises exactly the mechanisms whose descriptor
// declares the tier.

// TestApproxCanonicalizationRoundTrips: canonicalizing the same wire
// request twice — or semantically equal variants of it — yields the
// same key; any change to the spec yields a different key.
func TestApproxCanonicalizationRoundTrips(t *testing.T) {
	base := EvalRequest{
		Network: "uni",
		Mech:    mechreg.UniversalShapley,
		Profile: profileFor(10, 0, 3),
		Approx:  &ApproxWire{Samples: 128, Delta: 0.05, Seed: 42},
	}
	c1, err := Canonicalize(base, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Canonicalize(base, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Key != c2.Key {
		t.Fatalf("same request, different keys:\n%q\n%q", c1.Key, c2.Key)
	}
	if c1.Approx == nil || *c1.Approx != *c2.Approx {
		t.Fatalf("spec did not round-trip: %+v vs %+v", c1.Approx, c2.Approx)
	}
	// Sub-grid profile noise still collapses onto the same key with the
	// spec attached.
	noisy := base
	noisy.Profile = append([]float64(nil), base.Profile...)
	noisy.Profile[4] += Quantum / 8
	cn, err := Canonicalize(noisy, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cn.Key != c1.Key {
		t.Fatal("sub-grid noise changed an approx key")
	}
	// Every single-field perturbation of the spec moves the key.
	for _, mut := range []ApproxWire{
		{Samples: 129, Delta: 0.05, Seed: 42},
		{Samples: 128, Delta: 0.051, Seed: 42},
		{Samples: 128, Delta: 0.05, Seed: 43},
	} {
		r := base
		m := mut
		r.Approx = &m
		cm, err := Canonicalize(r, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if cm.Key == c1.Key {
			t.Fatalf("spec %+v collides with %+v", mut, *base.Approx)
		}
	}
}

// TestApproxExactKeysDisjoint: across random profiles and specs, an
// approx request never shares a key with its exact twin, nor with any
// other (profile, spec) combination.
func TestApproxExactKeysDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seen := map[string]string{} // key -> description
	record := func(key, desc string) {
		if prev, ok := seen[key]; ok && prev != desc {
			t.Fatalf("key collision between %s and %s", prev, desc)
		}
		seen[key] = desc
	}
	for trial := 0; trial < 40; trial++ {
		profile := make([]float64, 10)
		for i := 1; i < 10; i++ {
			profile[i] = float64(rng.Intn(6))
		}
		req := EvalRequest{Network: "uni", Mech: mechreg.UniversalShapley, Profile: profile}
		exact, err := Canonicalize(req, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		record(exact.Key, "exact/"+exact.Key)
		for _, spec := range []ApproxWire{
			{Samples: 1 + rng.Intn(500), Delta: 0.01 + rng.Float64()*0.5, Seed: rng.Int63n(100)},
			{Samples: 64, Delta: 0.05},
			{Samples: 64, Delta: 0.05, Seed: 7},
		} {
			s := spec
			req.Approx = &s
			approx, err := Canonicalize(req, 10, 0)
			if err != nil {
				t.Fatal(err)
			}
			if approx.Key == exact.Key {
				t.Fatalf("approx %+v collides with its exact twin: %q", spec, exact.Key)
			}
			record(approx.Key, "approx/"+approx.Key)
		}
		req.Approx = nil
	}
}

// FuzzCanonicalizeApprox: for arbitrary spec parameters, Canonicalize
// either rejects with an error wrapping ErrBadApprox (exactly when the
// spec violates its contract) or accepts deterministically with a key
// disjoint from the exact tier's.
func FuzzCanonicalizeApprox(f *testing.F) {
	f.Add(64, 0.05, int64(0))
	f.Add(1, 0.999, int64(-3))
	f.Add(0, 0.05, int64(1))   // samples < 1: reject
	f.Add(100, 0.0, int64(0))  // delta at the open boundary: reject
	f.Add(100, 1.0, int64(0))  // delta at the other boundary: reject
	f.Add(100, -0.2, int64(5)) // negative delta: reject
	f.Add(100, math.NaN(), int64(0))
	f.Add(100, math.Inf(1), int64(0))
	f.Fuzz(func(t *testing.T, samples int, delta float64, seed int64) {
		req := EvalRequest{
			Network: "uni",
			Mech:    mechreg.UniversalShapley,
			Profile: profileFor(10, 0, 11),
			Approx:  &ApproxWire{Samples: samples, Delta: delta, Seed: seed},
		}
		c, err := Canonicalize(req, 10, 0)
		valid := samples >= 1 && delta > 0 && delta < 1 // NaN fails both comparisons
		if valid != (err == nil) {
			t.Fatalf("samples=%d delta=%v: valid=%v but err=%v", samples, delta, valid, err)
		}
		if err != nil {
			if !errors.Is(err, ErrBadApprox) {
				t.Fatalf("invalid spec produced a non-ErrBadApprox error: %v", err)
			}
			return
		}
		again, err := Canonicalize(req, 10, 0)
		if err != nil || again.Key != c.Key {
			t.Fatalf("accepted spec did not round-trip: %v, %q vs %q", err, again.Key, c.Key)
		}
		exactReq := req
		exactReq.Approx = nil
		exact, err := Canonicalize(exactReq, 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Key == c.Key {
			t.Fatalf("approx key equals exact key: %q", c.Key)
		}
	})
}

// TestEvaluateApproxEndToEnd: an approx request answers 200 with a
// certificate in the body, replays byte-identically from the cache, and
// never collides with the exact result for the same profile.
func TestEvaluateApproxEndToEnd(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	profile := profileFor(10, 0, 7)
	exactReq := EvalRequest{Network: "uni", Mech: mechreg.UniversalShapley, Profile: profile}
	approxReq := exactReq
	approxReq.Approx = &ApproxWire{Samples: 256, Delta: 0.05, Seed: 1}

	exact := do(t, s, "POST", "/v1/evaluate", exactReq)
	if exact.Code != http.StatusOK {
		t.Fatalf("exact: %d %s", exact.Code, exact.Body.String())
	}
	cold := do(t, s, "POST", "/v1/evaluate", approxReq)
	if cold.Code != http.StatusOK {
		t.Fatalf("approx cold: %d %s", cold.Code, cold.Body.String())
	}
	if cold.Header().Get("X-Wmcs-Cache") != "miss" {
		// The exact request above must not have warmed the approx key.
		t.Fatalf("approx cold was a %q", cold.Header().Get("X-Wmcs-Cache"))
	}
	var resp EvalResponse
	if err := json.Unmarshal(cold.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Approx == nil {
		t.Fatalf("approx response carries no certificate: %s", cold.Body.String())
	}
	cert := resp.Approx
	if cert.Samples != 256 || cert.Delta != 0.05 || !(cert.Epsilon > 0) || math.IsInf(cert.Epsilon, 0) {
		t.Fatalf("malformed certificate: %+v", cert)
	}
	var exactResp EvalResponse
	if err := json.Unmarshal(exact.Body.Bytes(), &exactResp); err != nil {
		t.Fatal(err)
	}
	if exactResp.Approx != nil {
		t.Fatal("exact response leaked an approx certificate")
	}
	warm := do(t, s, "POST", "/v1/evaluate", approxReq)
	if warm.Header().Get("X-Wmcs-Cache") != "hit" {
		t.Fatalf("approx warm was a %q", warm.Header().Get("X-Wmcs-Cache"))
	}
	if !bytes.Equal(cold.Body.Bytes(), warm.Body.Bytes()) {
		t.Fatal("approx cache replay is not byte-identical")
	}
	// The exact entry is still intact and still certificate-free.
	exact2 := do(t, s, "POST", "/v1/evaluate", exactReq)
	if exact2.Header().Get("X-Wmcs-Cache") != "hit" || !bytes.Equal(exact.Body.Bytes(), exact2.Body.Bytes()) {
		t.Fatal("approx traffic perturbed the exact cache entry")
	}
	// A different seed is a different query: fresh computation, its own
	// entry.
	reseeded := approxReq
	reseeded.Approx = &ApproxWire{Samples: 256, Delta: 0.05, Seed: 2}
	other := do(t, s, "POST", "/v1/evaluate", reseeded)
	if other.Code != http.StatusOK || other.Header().Get("X-Wmcs-Cache") != "miss" {
		t.Fatalf("reseeded approx: %d source %q", other.Code, other.Header().Get("X-Wmcs-Cache"))
	}
}

// TestApproxErrorsAreStructured422: a malformed spec or a tier-less
// mechanism answers a structured 422 with a branchable code — not a 400
// (the request decoded fine) and not a 500 (nothing is the server's
// fault).
func TestApproxErrorsAreStructured422(t *testing.T) {
	s := newTestServer(t, Options{})
	check := func(req EvalRequest, wantCode string) {
		t.Helper()
		w := do(t, s, "POST", "/v1/evaluate", req)
		if w.Code != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d (%s), want 422", wantCode, w.Code, w.Body.String())
		}
		var e errBody
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Code != wantCode || e.Error == "" || e.Mech != req.Mech {
			t.Fatalf("unstructured 422: %s", w.Body.String())
		}
	}
	profile := profileFor(10, 0, 5)
	for _, spec := range []ApproxWire{
		{Samples: 0, Delta: 0.05},
		{Samples: -7, Delta: 0.05},
		{Samples: 64, Delta: 0},
		{Samples: 64, Delta: 1},
		{Samples: 64, Delta: -0.1},
		{Samples: 64, Delta: 17},
	} {
		sp := spec
		check(EvalRequest{Network: "uni", Mech: mechreg.UniversalShapley, Profile: profile, Approx: &sp}, "bad_approx")
	}
	// jv-moat declares no sampled tier: valid spec, wrong mechanism.
	check(EvalRequest{Network: "uni", Mech: mechreg.JVMoat, Profile: profile,
		Approx: &ApproxWire{Samples: 64, Delta: 0.05}}, "no_approx_tier")
}

// TestMechanismsAdvertiseApprox: the /v1/mechanisms approx flag equals
// the descriptor's declaration for every registry row — the listing and
// evaluate-time reality can never disagree (conformance pins the
// declaration against the built mechanism).
func TestMechanismsAdvertiseApprox(t *testing.T) {
	s := newTestServer(t, Options{})
	w := do(t, s, "GET", "/v1/mechanisms", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("mechanisms: %d", w.Code)
	}
	var out struct {
		Mechanisms []mechInfo `json:"mechanisms"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	any := false
	for i, d := range mechreg.All() {
		if got := out.Mechanisms[i].Approx; got != d.Approx {
			t.Errorf("%s: listing says approx=%v, descriptor says %v", d.Name, got, d.Approx)
		}
		any = any || d.Approx
	}
	if !any {
		t.Fatal("no registry mechanism declares a sampled tier — the flag test is vacuous")
	}
}
