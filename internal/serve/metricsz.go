package serve

import (
	"net/http"
	"runtime"
	"sort"
	"time"

	"wmcs/internal/obs"
)

// handleMetricsz serves GET /metricsz: the same counters /statsz
// reports, rendered as Prometheus text exposition (DESIGN.md §13.2).
// Counters come straight from the Stats atomics and the Cache shard
// counters; latency histograms re-expose the serve layer's log2
// nanosecond buckets as cumulative `le` histograms via
// obs.PromWriter.Log2Histogram — an exact mapping, so any quantile read
// from the exposition inherits the documented 2×-bound contract.
// Per-network gauges (version, generation, cached entries and bytes)
// carry a "network" label; series order is deterministic (sorted
// names, fixed stage order) so two scrapes diff cleanly.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)

	p.Counter("wmcs_requests_total", "Evaluate requests admitted (batch elements included).", s.stats.Queries.Load())
	p.Counter("wmcs_coalesced_total", "Requests served by riding on a concurrent identical computation.", s.stats.Coalesced.Load())
	p.Counter("wmcs_errors_total", "Requests rejected or failed.", s.stats.Errors.Load())
	p.Counter("wmcs_slow_requests_total", "OK responses at or above the slow-request threshold.", s.stats.SlowRequests.Load())
	p.Counter("wmcs_batches_total", "Dispatcher rounds run.", s.stats.Batches.Load())
	p.Counter("wmcs_batched_queries_total", "Tasks carried by dispatcher rounds.", s.stats.BatchedQueries.Load())
	p.Counter("wmcs_replica_rounds_total", "Dispatch rounds whose groups ran concurrently on replica slots.", s.stats.ReplicaRounds.Load())
	p.Counter("wmcs_replica_groups_total", "Groups carried by replica-dispatched rounds.", s.stats.ReplicaGroups.Load())
	p.Counter("wmcs_updates_total", "Applied network deltas (version bumps).", s.stats.Updates.Load())
	p.Counter("wmcs_update_ops_total", "Mutation ops carried by applied deltas.", s.stats.UpdateOps.Load())
	p.Counter("wmcs_carried_entries_total", "Cache entries carried forward across version bumps.", s.stats.CarriedEntries.Load())
	p.Counter("wmcs_delta_rebuilt_mechs_total", "Mechanisms warmed by incremental delta rebuilds.", s.stats.DeltaRebuiltMechs.Load())

	cs := s.cache.Stats()
	p.Counter("wmcs_cache_hits_total", "Result cache hits.", cs.Hits)
	p.Counter("wmcs_cache_misses_total", "Result cache misses.", cs.Misses)
	p.Counter("wmcs_cache_evictions_total", "Result cache LRU evictions.", cs.Evicted)
	p.Gauge("wmcs_cache_entries", "Result cache entries resident.", float64(cs.Len))
	p.Gauge("wmcs_cache_capacity_entries", "Result cache capacity in entries.", float64(cs.Capacity))

	p.Gauge("wmcs_in_flight_requests", "Requests currently inside an evaluate or batch handler.", float64(s.stats.InFlight.Load()))
	p.Gauge("wmcs_parallel_eval_width", "Configured intra-query parallel width (0 = serial tier).", float64(s.opts.ParallelEval))
	p.Gauge("wmcs_networks", "Hosted networks.", float64(s.reg.Len()))

	// Per-network gauges: version and generation identify the lifecycle
	// state serving the network's bytes (the "regGen.version" cache
	// generation of /statsz, split into its two halves); the cache pair
	// sizes its resident share of the result cache.
	entries := s.reg.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	p.Header("wmcs_network_version", "Per-network lifecycle version (0 as registered, +1 per applied mutation op).", "gauge")
	for _, e := range entries {
		p.SampleUint("wmcs_network_version", []obs.Label{{Key: "network", Value: e.Name}}, e.Ev.Version())
	}
	p.Header("wmcs_network_generation", "Per-network registration generation (bumps on evict/re-register, not on updates).", "gauge")
	for _, e := range entries {
		p.SampleUint("wmcs_network_generation", []obs.Label{{Key: "network", Value: e.Name}}, e.gen)
	}
	p.Header("wmcs_network_cache_entries", "Result cache entries resident for the network.", "gauge")
	p.Header("wmcs_network_cache_bytes", "Result cache bytes resident for the network.", "gauge")
	for _, e := range entries {
		n, bytes := s.cache.PrefixStats(networkKeyPrefix(e.Name))
		p.SampleUint("wmcs_network_cache_entries", []obs.Label{{Key: "network", Value: e.Name}}, uint64(n))
		p.SampleUint("wmcs_network_cache_bytes", []obs.Label{{Key: "network", Value: e.Name}}, uint64(bytes))
	}

	p.Header("wmcs_request_duration_seconds", "Service latency by mechanism (admission to response, cache hits included); log2 buckets, quantiles within 2x.", "histogram")
	for _, h := range s.stats.MechHistograms() {
		p.Log2Histogram("wmcs_request_duration_seconds", []obs.Label{{Key: "mech", Value: h.name}}, h.buckets[:], h.count, h.sumNS)
	}
	p.Header("wmcs_stage_duration_seconds", "Request time by pipeline stage, from finished traces; log2 buckets.", "histogram")
	for _, h := range s.stats.StageHistograms() {
		p.Log2Histogram("wmcs_stage_duration_seconds", []obs.Label{{Key: "stage", Value: h.name}}, h.buckets[:], h.count, h.sumNS)
	}
	p.Header("wmcs_rebuild_duration_seconds", "PATCH evaluator rebuild+warm+swap latency by rebuild path; log2 buckets.", "histogram")
	for _, h := range s.stats.RebuildHistograms() {
		p.Log2Histogram("wmcs_rebuild_duration_seconds", []obs.Label{{Key: "path", Value: h.name}}, h.buckets[:], h.count, h.sumNS)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.Gauge("wmcs_goroutines", "Live goroutines.", float64(runtime.NumGoroutine()))
	p.Gauge("wmcs_heap_inuse_bytes", "Bytes in in-use heap spans.", float64(ms.HeapInuse))
	p.Counter("wmcs_gc_pause_ns_total", "Cumulative GC pause, nanoseconds.", ms.PauseTotalNs)
	p.Gauge("wmcs_uptime_seconds", "Seconds since the server was constructed.", time.Since(s.boot).Seconds())
	// A write error means the transport already failed mid-scrape;
	// nothing useful is left to do with it.
	_ = p.Err()
}
