package serve

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"time"

	"wmcs/internal/obs"
)

// This file is the serving side of the observability layer (DESIGN.md
// §13): every /v1/evaluate, /v1/batch and PATCH request gets a pooled
// obs.Trace whose ID is echoed in the X-Wmcs-Trace response header;
// spans recorded along the admission pipeline feed the per-stage
// histograms, the slowest-trace ring behind /debugz/slow, and the
// structured request-summary log. The invariant the differential tests
// pin: tracing never changes response bodies — the only wire-visible
// additions are the header and the explicit ?trace=1 envelope, whose
// Response field embeds the canonical bytes verbatim.

// DefaultSlowRequest is the wall-time threshold above which an
// otherwise healthy request is logged and counted slow when the caller
// leaves Options.SlowRequest unset.
const DefaultSlowRequest = 250 * time.Millisecond

// DefaultSlowTraces is the /debugz/slow ring capacity selected by an
// unset Options.SlowTraces.
const DefaultSlowTraces = 32

// tracedResponse is the ?trace=1 envelope: the span breakdown plus the
// exact bytes the untraced request would have answered. Response is
// embedded raw, so opting into a trace can never perturb the canonical
// body — it is the same byte string, wrapped.
type tracedResponse struct {
	Trace    obs.Snapshot    `json:"trace"`
	Response json.RawMessage `json:"response"`
}

// wantTrace reports whether the request opted into the inline span
// breakdown.
func wantTrace(r *http.Request) bool { return r.URL.Query().Get("trace") == "1" }

// sourceWord maps the X-Wmcs-Cache header vocabulary to the logging
// schema's source field ("cache" | "coalesced" | "computed").
func sourceWord(source string) string {
	switch source {
	case "hit":
		return "cache"
	case "coalesced":
		return "coalesced"
	case "miss":
		return "computed"
	}
	return source
}

// closeTrace retires a request trace: stamp the total, feed the
// per-stage histograms (skipped for the outer batch trace, whose
// fan-out span would pollute the per-request stage distributions),
// classify slow, emit the request-summary log record if warranted,
// offer the trace to the slow ring, and return it to the pool. Always
// deferred right after Start, so every exit path — decode failures,
// 4xxs, recovered panics — retires its trace exactly once.
func (s *Server) closeTrace(tr *obs.Trace, stages bool) {
	total := tr.Finish()
	if stages {
		for _, sp := range tr.Spans() {
			s.stats.ObserveStage(sp.Stage, sp.Dur)
		}
	}
	ok := tr.Status >= 200 && tr.Status < 300
	slow := s.slow > 0 && total >= s.slow && ok
	if slow {
		s.stats.SlowRequests.Add(1)
	}
	if s.logger != nil && (!ok || slow) {
		s.logRequest(tr, total, slow)
	}
	s.tracer.Offer(tr)
	s.tracer.Release(tr)
}

// logRequest emits one structured request-summary record (the logging
// schema of DESIGN.md §13.4): trace ID, op, network, mechanism,
// version, source, status, total duration, and the per-stage split as
// a "stages" group of microsecond attrs.
func (s *Server) logRequest(tr *obs.Trace, total time.Duration, slow bool) {
	level := slog.LevelInfo
	switch {
	case tr.Status >= 500:
		level = slog.LevelError
	case tr.Status >= 300:
		level = slog.LevelWarn
	}
	attrs := make([]slog.Attr, 0, 12)
	attrs = append(attrs,
		slog.String("trace", tr.ID),
		slog.String("op", tr.Op),
		slog.Int("status", tr.Status),
		slog.Float64("dur_us", float64(total.Nanoseconds())/1e3),
	)
	if tr.Network != "" {
		attrs = append(attrs, slog.String("network", tr.Network))
	}
	if tr.Mech != "" {
		attrs = append(attrs, slog.String("mech", tr.Mech))
	}
	if tr.Version > 0 {
		attrs = append(attrs, slog.Uint64("version", tr.Version))
	}
	if tr.Source != "" {
		attrs = append(attrs, slog.String("source", tr.Source))
	}
	if slow {
		attrs = append(attrs, slog.Bool("slow", true))
	}
	if tr.Err != "" {
		attrs = append(attrs, slog.String("error", tr.Err))
	}
	// The per-stage split: one attr per recorded stage, durations
	// summed per stage so repeated spans (none today) stay one field.
	var perStage [obs.NumStages]time.Duration
	var seen [obs.NumStages]bool
	for _, sp := range tr.Spans() {
		if sp.Stage < obs.NumStages {
			perStage[sp.Stage] += sp.Dur
			seen[sp.Stage] = true
		}
	}
	stageAttrs := make([]any, 0, obs.NumStages)
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		if seen[st] {
			stageAttrs = append(stageAttrs, slog.Float64(st.String()+"_us", float64(perStage[st].Nanoseconds())/1e3))
		}
	}
	attrs = append(attrs, slog.Group("stages", stageAttrs...))
	s.logger.LogAttrs(context.Background(), level, "request", attrs...)
}

// writeTraced answers a request with body (already-canonical bytes) at
// the given status, honoring the ?trace=1 envelope. The envelope's
// snapshot is taken at write time, so it carries every span recorded so
// far; the closing bookkeeping (ring, histograms, log) still sees the
// final Finish.
func (s *Server) writeTraced(w http.ResponseWriter, traced bool, tr *obs.Trace, code int, body []byte) {
	tr.Status = code
	if !traced {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		w.Write(body)
		return
	}
	writeJSON(w, code, tracedResponse{Trace: tr.Snapshot(), Response: body})
}

// handleSlowTraces serves GET /debugz/slow: the ring of the slowest
// traces seen since boot, slowest first.
func (s *Server) handleSlowTraces(w http.ResponseWriter, r *http.Request) {
	slowest := s.tracer.Slowest()
	if slowest == nil {
		slowest = []obs.Snapshot{}
	}
	writeJSON(w, http.StatusOK, struct {
		Slowest []obs.Snapshot `json:"slowest"`
	}{slowest})
}
