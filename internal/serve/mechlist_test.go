package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/mechreg"
)

// TestNetworksListingMatchesEvaluateReality is the regression test for
// the listing bug this PR fixes: /v1/networks used to advertise every
// registry mechanism on every network, including ones whose domain
// check would 422 at evaluate time. Now each network's advertised set
// must match evaluate-time reality exactly: every listed mechanism
// evaluates 200, every unlisted registry mechanism evaluates 422 with
// the structured unsupported_domain code.
func TestNetworksListingMatchesEvaluateReality(t *testing.T) {
	reg := NewRegistry()
	// Three deliberately different domains: planar α=2 (general
	// mechanisms only), a line at α=2 (adds the d=1 specials), and a
	// line at α=1 (everything, α=1 specials included).
	for _, sp := range []instances.Spec{
		{Name: "disk2", Scenario: "disk", N: 9, Alpha: 2, Seed: 1},
		{Name: "line2", Scenario: "line", N: 9, Alpha: 2, Seed: 2},
		{Name: "line1", Scenario: "line", N: 9, Alpha: 1, Seed: 3},
	} {
		if err := reg.RegisterSpec(sp); err != nil {
			t.Fatal(err)
		}
	}
	s := NewServer(reg, Options{})
	defer s.Close()

	w := do(t, s, "GET", "/v1/networks", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("list: %d", w.Code)
	}
	var list struct {
		Networks []struct {
			Name       string   `json:"name"`
			Stations   int      `json:"stations"`
			Source     int      `json:"source"`
			Mechanisms []string `json:"mechanisms"`
		} `json:"networks"`
		Mechanisms []string `json:"mechanisms"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if strings.Join(list.Mechanisms, ",") != strings.Join(mechreg.Names(), ",") {
		t.Fatalf("top-level mechanisms %v != registry %v", list.Mechanisms, mechreg.Names())
	}
	if len(list.Networks) != 3 {
		t.Fatalf("%d networks listed", len(list.Networks))
	}
	wantListed := map[string]int{"disk2": 4, "line2": 6, "line1": len(mechreg.Names())}
	for _, nwInfo := range list.Networks {
		if got := len(nwInfo.Mechanisms); got != wantListed[nwInfo.Name] {
			t.Errorf("%s advertises %d mechanisms (%v), want %d",
				nwInfo.Name, got, nwInfo.Mechanisms, wantListed[nwInfo.Name])
		}
		listed := map[string]bool{}
		for _, m := range nwInfo.Mechanisms {
			listed[m] = true
		}
		for _, name := range list.Mechanisms {
			req := EvalRequest{Network: nwInfo.Name, Mech: name, Profile: profileFor(nwInfo.Stations, nwInfo.Source, 7)}
			resp := do(t, s, "POST", "/v1/evaluate", req)
			if listed[name] && resp.Code != http.StatusOK {
				t.Errorf("%s lists %s but evaluate returned %d: %s",
					nwInfo.Name, name, resp.Code, resp.Body.String())
			}
			if !listed[name] {
				if resp.Code != http.StatusUnprocessableEntity {
					t.Errorf("%s omits %s but evaluate returned %d, want 422",
						nwInfo.Name, name, resp.Code)
					continue
				}
				var e struct {
					Error   string `json:"error"`
					Code    string `json:"code"`
					Mech    string `json:"mech"`
					Network string `json:"network"`
				}
				if err := json.Unmarshal(resp.Body.Bytes(), &e); err != nil {
					t.Fatal(err)
				}
				if e.Code != "unsupported_domain" || e.Mech != name || e.Network != nwInfo.Name || e.Error == "" {
					t.Errorf("unstructured 422 for %s on %s: %s", name, nwInfo.Name, resp.Body.String())
				}
			}
		}
	}
}

// TestMechanismsEndpoint: /v1/mechanisms serves the registry — names in
// registry order plus the declared metadata clients pick mechanisms by.
func TestMechanismsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{})
	w := do(t, s, "GET", "/v1/mechanisms", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("mechanisms: %d", w.Code)
	}
	var out struct {
		Mechanisms []mechInfo `json:"mechanisms"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Mechanisms) != len(mechreg.All()) {
		t.Fatalf("%d mechanisms served, registry has %d", len(out.Mechanisms), len(mechreg.All()))
	}
	for i, d := range mechreg.All() {
		m := out.Mechanisms[i]
		if m.Name != d.Name {
			t.Errorf("position %d: %s, registry says %s", i, m.Name, d.Name)
		}
		if m.Domain == "" || m.PaperRef == "" || m.Strategyproofness == "" || m.BudgetBalance == "" {
			t.Errorf("%s: incomplete metadata: %+v", m.Name, m)
		}
		if m.Parallel != d.Parallel {
			t.Errorf("%s: parallel flag %v, descriptor says %v", m.Name, m.Parallel, d.Parallel)
		}
	}
}

// TestBatchStructured422: batch elements carry the same structured
// domain-mismatch errors as the single endpoint.
func TestBatchStructured422(t *testing.T) {
	s := newTestServer(t, Options{})
	reqs := []EvalRequest{
		{Network: "uni", Mech: "line-shapley", Profile: profileFor(10, 0, 1)}, // domain mismatch
		{Network: "uni", Mech: "jv-moat", Profile: profileFor(10, 0, 2)},      // fine
	}
	w := do(t, s, "POST", "/v1/batch", reqs)
	if w.Code != http.StatusOK {
		t.Fatalf("batch: %d", w.Code)
	}
	var elems []json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &elems); err != nil {
		t.Fatal(err)
	}
	var e struct {
		Code string `json:"code"`
		Mech string `json:"mech"`
	}
	if err := json.Unmarshal(elems[0], &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "unsupported_domain" || e.Mech != "line-shapley" {
		t.Fatalf("batch element 0 not structured: %s", elems[0])
	}
	if strings.Contains(string(elems[1]), `"code"`) {
		t.Fatalf("successful element leaked error fields: %s", elems[1])
	}
}
