package serve

import (
	"encoding/json"
	"log/slog"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wmcs/internal/obs"
)

// evalReqFor builds the canonical test query against "uni" (10
// stations, source 0).
func evalReqFor(mech string, seed int64) EvalRequest {
	return EvalRequest{Network: "uni", Mech: mech, Profile: profileFor(10, 0, seed)}
}

// tracedEnvelope mirrors the ?trace=1 wire form for decoding.
type tracedEnvelope struct {
	Trace    obs.Snapshot    `json:"trace"`
	Response json.RawMessage `json:"response"`
}

// lockedWriter serializes a slog handler's writes into a builder the
// test can read back safely.
type lockedWriter struct {
	mu *sync.Mutex
	b  *strings.Builder
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func newLockedTextLogger(b *strings.Builder, mu *sync.Mutex) *slog.Logger {
	return slog.New(slog.NewTextHandler(&lockedWriter{mu: mu, b: b}, nil))
}

// TestMetricszExposition: the exposition parses strictly, its
// histograms are structurally valid (monotone buckets, +Inf == _count,
// _sum present), and its figures agree with /statsz read at the same
// quiet moment — same counters, same per-mechanism counts, and _sum
// consistent with the /statsz mean to float precision.
func TestMetricszExposition(t *testing.T) {
	s := newTestServer(t, Options{})
	// A mix: distinct queries (misses), a repeat (hit), and an error.
	for i := int64(0); i < 4; i++ {
		if w := do(t, s, "POST", "/v1/evaluate", evalReqFor("universal-shapley", i)); w.Code != 200 {
			t.Fatalf("evaluate %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	do(t, s, "POST", "/v1/evaluate", evalReqFor("universal-shapley", 0)) // hit
	do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "nope", Mech: "universal-shapley"})

	w := do(t, s, "GET", "/metricsz", nil)
	if w.Code != 200 {
		t.Fatalf("/metricsz: %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	doc, err := obs.ParseProm(strings.NewReader(w.Body.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, w.Body.String())
	}
	if err := doc.CheckHistograms(); err != nil {
		t.Fatalf("histogram structure: %v", err)
	}

	// Families carry the right types.
	for name, typ := range map[string]string{
		"wmcs_requests_total":            "counter",
		"wmcs_cache_hits_total":          "counter",
		"wmcs_in_flight_requests":        "gauge",
		"wmcs_network_version":           "gauge",
		"wmcs_request_duration_seconds":  "histogram",
		"wmcs_stage_duration_seconds":    "histogram",
		"wmcs_rebuild_duration_seconds":  "histogram",
		"wmcs_uptime_seconds":            "gauge",
		"wmcs_slow_requests_total":       "counter",
		"wmcs_network_cache_bytes":       "gauge",
		"wmcs_gc_pause_ns_total":         "counter",
		"wmcs_batched_queries_total":     "counter",
		"wmcs_delta_rebuilt_mechs_total": "counter",
	} {
		f, ok := doc.Families[name]
		if !ok {
			t.Fatalf("family %s missing", name)
		}
		if f.Type != typ {
			t.Fatalf("family %s: type %q, want %q", name, f.Type, typ)
		}
	}

	// Counters agree with /statsz scraped at the same quiet moment.
	var st statszPayload
	if err := json.Unmarshal(do(t, s, "GET", "/statsz", nil).Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"wmcs_requests_total":     float64(st.Queries),
		"wmcs_errors_total":       float64(st.Errors),
		"wmcs_cache_hits_total":   float64(st.Cache.Hits),
		"wmcs_networks":           float64(st.Networks),
		"wmcs_in_flight_requests": float64(st.InFlight), // both must read 0 at rest
	} {
		if got, ok := doc.Get(name, nil); !ok || got != want {
			t.Fatalf("%s = %v (ok=%v), statsz says %v", name, got, ok, want)
		}
	}
	// Per-mechanism histogram count and sum agree with the /statsz
	// latency summary (both derive from the same atomics).
	for mech, sum := range st.LatencyUS {
		cnt, ok := doc.Get("wmcs_request_duration_seconds_count", map[string]string{"mech": mech})
		if !ok || cnt != float64(sum.Count) {
			t.Fatalf("mech %s: metricsz count %v vs statsz %d", mech, cnt, sum.Count)
		}
		sSec, _ := doc.Get("wmcs_request_duration_seconds_sum", map[string]string{"mech": mech})
		statszSec := sum.MeanUS * float64(sum.Count) / 1e6
		if math.Abs(sSec-statszSec) > 1e-9*math.Max(1, statszSec) {
			t.Fatalf("mech %s: metricsz sum %v s vs statsz mean*count %v s", mech, sSec, statszSec)
		}
	}
	// Per-network gauges exist for both hosted networks at version 0.
	for _, nw := range []string{"uni", "line"} {
		if v, ok := doc.Get("wmcs_network_version", map[string]string{"network": nw}); !ok || v != 0 {
			t.Fatalf("network_version{%s} = %v (ok=%v)", nw, v, ok)
		}
		if _, ok := doc.Get("wmcs_network_cache_entries", map[string]string{"network": nw}); !ok {
			t.Fatalf("network_cache_entries{%s} missing", nw)
		}
	}
	// The stage label set is complete even for stages that never ran.
	for _, stage := range obs.StageNames() {
		if _, ok := doc.Get("wmcs_stage_duration_seconds_count", map[string]string{"stage": stage}); !ok {
			t.Fatalf("stage series %q missing", stage)
		}
	}
}

// TestTracingChangesNoBodyBytes is the differential test pinning the
// tentpole invariant: tracing never alters response bodies. Two
// identically-seeded servers answer the same cold queries — one plain,
// one with ?trace=1 — and the envelope's Response bytes must equal the
// plain body exactly; a plain request on the traced server must also be
// byte-identical (tracing machinery on the path changes nothing even
// when the envelope is not requested).
func TestTracingChangesNoBodyBytes(t *testing.T) {
	plain := newTestServer(t, Options{})
	traced := newTestServer(t, Options{})
	for _, mech := range []string{"universal-shapley", "jv-moat", "wireless-bb"} {
		for i := int64(0); i < 2; i++ {
			req := evalReqFor(mech, 100+i)
			wp := do(t, plain, "POST", "/v1/evaluate", req)
			wt := do(t, traced, "POST", "/v1/evaluate?trace=1", req)
			if wp.Code != 200 || wt.Code != 200 {
				t.Fatalf("%s/%d: plain %d traced %d: %s", mech, i, wp.Code, wt.Code, wt.Body.String())
			}
			if wt.Header().Get("X-Wmcs-Trace") == "" {
				t.Fatal("traced response missing X-Wmcs-Trace")
			}
			var env tracedEnvelope
			if err := json.Unmarshal(wt.Body.Bytes(), &env); err != nil {
				t.Fatalf("envelope: %v", err)
			}
			if string(env.Response) != wp.Body.String() {
				t.Fatalf("%s/%d: traced envelope body differs from plain body\nplain:  %s\ntraced: %s",
					mech, i, wp.Body.String(), env.Response)
			}
			if env.Trace.ID == "" || len(env.Trace.Spans) == 0 {
				t.Fatalf("envelope trace empty: %+v", env.Trace)
			}
			// And an untraced request on the traced server: same bytes.
			wu := do(t, traced, "POST", "/v1/evaluate", req)
			if wu.Body.String() != wp.Body.String() {
				t.Fatalf("%s/%d: untraced body on traced server differs", mech, i)
			}
		}
	}
	// Batch differential: same elements, plain vs ?trace=1 envelope.
	reqs := []EvalRequest{evalReqFor("universal-shapley", 200), evalReqFor("jv-moat", 201)}
	wp := do(t, plain, "POST", "/v1/batch", reqs)
	wt := do(t, traced, "POST", "/v1/batch?trace=1", reqs)
	if wp.Code != 200 || wt.Code != 200 {
		t.Fatalf("batch: plain %d traced %d", wp.Code, wt.Code)
	}
	var env tracedEnvelope
	if err := json.Unmarshal(wt.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if string(env.Response) != wp.Body.String() {
		t.Fatalf("batch envelope body differs\nplain:  %s\ntraced: %s", wp.Body.String(), env.Response)
	}
}

// TestTraceSpanCoverage: on a cold computed request, the span union
// must cover >= 95% of the trace's wall time — the acceptance contract
// that keeps the breakdown honest (no large untracked gaps).
func TestTraceSpanCoverage(t *testing.T) {
	s := newTestServer(t, Options{})
	w := do(t, s, "POST", "/v1/evaluate?trace=1", evalReqFor("wireless-bb", 999))
	if w.Code != 200 {
		t.Fatalf("evaluate: %d %s", w.Code, w.Body.String())
	}
	var env tracedEnvelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Trace.Source != "computed" {
		t.Fatalf("expected a cold computed request, got source %q", env.Trace.Source)
	}
	if env.Trace.TotalUS <= 0 {
		t.Fatalf("total %v", env.Trace.TotalUS)
	}
	if cov := env.Trace.CoveredUS / env.Trace.TotalUS; cov < 0.95 {
		t.Fatalf("span coverage %.1f%% < 95%% (total %.0fus, covered %.0fus; spans %+v)",
			100*cov, env.Trace.TotalUS, env.Trace.CoveredUS, env.Trace.Spans)
	}
	// The computed path must show the deep pipeline stages.
	seen := map[string]bool{}
	for _, sp := range env.Trace.Spans {
		seen[sp.Stage] = true
	}
	for _, want := range []string{"admission", "canonicalize", "cache_lookup", "queue_wait", "evaluate", "compute", "encode"} {
		if !seen[want] {
			t.Fatalf("computed trace missing stage %q: %+v", want, env.Trace.Spans)
		}
	}
}

// TestDebugzSlowRing: every retired trace is offered to the ring, so
// after a handful of requests /debugz/slow lists them slowest-first
// with IDs and spans; a PATCH trace appears with its update stages.
func TestDebugzSlowRing(t *testing.T) {
	s := newTestServer(t, Options{})
	for i := int64(0); i < 3; i++ {
		if w := do(t, s, "POST", "/v1/evaluate", evalReqFor("universal-shapley", 300+i)); w.Code != 200 {
			t.Fatalf("evaluate: %d", w.Code)
		}
	}
	entry, ok := s.reg.Get("uni")
	if !ok {
		t.Fatal("uni not registered")
	}
	pw := do(t, s, "PATCH", "/v1/networks/uni", updateFor(entry.Net, 1))
	if pw.Code != 200 {
		t.Fatalf("PATCH: %d %s", pw.Code, pw.Body.String())
	}
	if pw.Header().Get("X-Wmcs-Trace") == "" {
		t.Fatal("PATCH response missing X-Wmcs-Trace")
	}
	w := do(t, s, "GET", "/debugz/slow", nil)
	if w.Code != 200 {
		t.Fatalf("/debugz/slow: %d", w.Code)
	}
	var out struct {
		Slowest []obs.Snapshot `json:"slowest"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Slowest) < 4 {
		t.Fatalf("ring holds %d traces, want >= 4", len(out.Slowest))
	}
	for i := 1; i < len(out.Slowest); i++ {
		if out.Slowest[i].TotalUS > out.Slowest[i-1].TotalUS {
			t.Fatalf("ring not sorted slowest-first at %d: %v > %v", i, out.Slowest[i].TotalUS, out.Slowest[i-1].TotalUS)
		}
	}
	var update *obs.Snapshot
	for i := range out.Slowest {
		if out.Slowest[i].Op == "update" {
			update = &out.Slowest[i]
		}
	}
	if update == nil {
		t.Fatal("no update trace retained")
	}
	if update.ID != pw.Header().Get("X-Wmcs-Trace") {
		t.Fatalf("update trace ID %q != PATCH header %q", update.ID, pw.Header().Get("X-Wmcs-Trace"))
	}
	seen := map[string]bool{}
	for _, sp := range update.Spans {
		seen[sp.Stage] = true
	}
	for _, want := range []string{"admission", "rebuild", "carry_forward", "purge"} {
		if !seen[want] {
			t.Fatalf("update trace missing stage %q: %+v", want, update.Spans)
		}
	}
	if update.Version == 0 {
		t.Fatalf("update trace version = 0, want the post-PATCH version")
	}
}

// TestInFlightDrainsOnErrorPaths hammers every rejection path
// concurrently — malformed JSON (400), unknown network (404), unknown
// mechanism, domain mismatch (422), oversized batch (413) —
// interleaved with successes, then requires the InFlight gauge to read
// exactly zero: every handler exit path must hit the deferred
// TrackInFlight decrement.
func TestInFlightDrainsOnErrorPaths(t *testing.T) {
	s := newTestServer(t, Options{MaxBatchRequest: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch (w + i) % 6 {
				case 0: // malformed JSON body
					req := httptest.NewRequest("POST", "/v1/evaluate", strings.NewReader("{nope"))
					s.ServeHTTP(httptest.NewRecorder(), req)
				case 1:
					do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "ghost", Mech: "universal-shapley"})
				case 2:
					do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "uni", Mech: "no-such-mech", Profile: profileFor(10, 0, 1)})
				case 3: // line-shapley's domain excludes the 2-d "uni" network
					do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "uni", Mech: "line-shapley", Profile: profileFor(10, 0, 1)})
				case 4: // oversized batch (limit 4)
					reqs := make([]EvalRequest, 5)
					for j := range reqs {
						reqs[j] = evalReqFor("universal-shapley", int64(j))
					}
					do(t, s, "POST", "/v1/batch", reqs)
				case 5: // a success keeps the happy path in the mix
					do(t, s, "POST", "/v1/evaluate", evalReqFor("universal-shapley", int64(i%3)))
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.stats.InFlight.Load(); got != 0 {
		t.Fatalf("InFlight = %d after hammering error paths, want 0", got)
	}
	// /statsz agrees it drained.
	var st statszPayload
	if err := json.Unmarshal(do(t, s, "GET", "/statsz", nil).Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.InFlight != 0 {
		t.Fatalf("statsz in_flight = %d, want 0", st.InFlight)
	}
}

// TestSlowRequestClassification: with a 1ns threshold every OK request
// is slow (counted and logged, with the per-stage split); with the
// threshold disabled none are.
func TestSlowRequestClassification(t *testing.T) {
	var logBuf strings.Builder
	var mu sync.Mutex
	s := newTestServer(t, Options{
		SlowRequest: 1, // every OK request qualifies
		Logger:      newLockedTextLogger(&logBuf, &mu),
	})
	if w := do(t, s, "POST", "/v1/evaluate", evalReqFor("universal-shapley", 7)); w.Code != 200 {
		t.Fatalf("evaluate: %d", w.Code)
	}
	if got := s.stats.SlowRequests.Load(); got != 1 {
		t.Fatalf("SlowRequests = %d, want 1", got)
	}
	mu.Lock()
	logged := logBuf.String()
	mu.Unlock()
	if !strings.Contains(logged, "slow=true") || !strings.Contains(logged, "mech=universal-shapley") {
		t.Fatalf("slow request not logged with schema fields: %q", logged)
	}
	if !strings.Contains(logged, "stages.") {
		t.Fatalf("request log missing per-stage split: %q", logged)
	}

	off := newTestServer(t, Options{SlowRequest: -1})
	do(t, off, "POST", "/v1/evaluate", evalReqFor("universal-shapley", 7))
	if got := off.stats.SlowRequests.Load(); got != 0 {
		t.Fatalf("disabled threshold still counted %d slow", got)
	}
}

// TestErrorRequestLogged: non-2xx requests emit one summary record even
// below the slow threshold.
func TestErrorRequestLogged(t *testing.T) {
	var logBuf strings.Builder
	var mu sync.Mutex
	s := newTestServer(t, Options{Logger: newLockedTextLogger(&logBuf, &mu)})
	do(t, s, "POST", "/v1/evaluate", EvalRequest{Network: "ghost", Mech: "universal-shapley"})
	mu.Lock()
	logged := logBuf.String()
	mu.Unlock()
	if !strings.Contains(logged, "status=404") || !strings.Contains(logged, "network=ghost") {
		t.Fatalf("404 not logged: %q", logged)
	}
	if !strings.Contains(logged, "trace=") {
		t.Fatalf("log record missing trace ID: %q", logged)
	}
}

// BenchmarkStatsObserveKnown pins the satellite claim: Observe on a
// pre-registered mechanism name takes no lock and allocates nothing.
func BenchmarkStatsObserveKnown(b *testing.B) {
	s := NewStats()
	name := "universal-shapley" // registry name, pre-registered
	if _, ok := s.known[name]; !ok {
		b.Fatalf("%s not pre-registered", name)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Observe(name, 123*time.Microsecond)
		}
	})
}

// BenchmarkStatsObserveExtra is the RWMutex fallback for comparison.
func BenchmarkStatsObserveExtra(b *testing.B) {
	s := NewStats()
	s.Observe("not-a-registry-name", time.Microsecond) // populate extra
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s.Observe("not-a-registry-name", 123*time.Microsecond)
		}
	})
}
