package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"wmcs/internal/instances"
	"wmcs/internal/mechreg"
	"wmcs/internal/obs"
	"wmcs/internal/query"
)

// Options tune a Server; zero values select the defaults.
type Options struct {
	// CacheCapacity is the result cache size in entries. 0 means unset
	// and selects DefaultCacheCapacity (so the zero Options value keeps
	// its sensible-server meaning); negative disables caching. Callers
	// that need literal "no cache" semantics from a user-supplied 0
	// (wmcsd's -cache flag) translate it to a negative before building
	// Options.
	CacheCapacity int
	// CacheShards is the shard count (default 16, rounded up to a power
	// of two).
	CacheShards int
	// Workers is the engine-pool width used for evaluation batches
	// (1 = serial, <= 0 = GOMAXPROCS).
	Workers int
	// MaxBatch caps how many queued queries one dispatcher round may
	// carry (default 64).
	MaxBatch int
	// ParallelEval enables the deterministic intra-query parallel tier
	// (DESIGN.md §14) at the given width: networks registered after
	// construction get evaluators built with query.WithParallel, and the
	// admission dispatcher runs a round's per-version groups concurrently
	// on up to ParallelEval replica slots. 0 (the default) keeps the
	// historical serial tier; auto-width ("0 means GOMAXPROCS") is the
	// flag layer's job — wmcsd resolves -parallel-eval 0 and passes the
	// resolved width here.
	ParallelEval int
	// MaxBatchRequest caps the element count of one /v1/batch request
	// (default 1024).
	MaxBatchRequest int
	// Logger receives one structured request-summary record per non-2xx
	// or slow request (DESIGN.md §13.4). nil disables request logging —
	// tests and in-process embedders stay silent.
	Logger *slog.Logger
	// SlowRequest is the wall-time threshold at or above which an
	// otherwise healthy request is logged, counted in SlowRequests, and
	// worth a look in /debugz/slow. 0 selects DefaultSlowRequest;
	// negative disables slow classification.
	SlowRequest time.Duration
	// SlowTraces is the capacity of the slowest-trace ring behind
	// /debugz/slow. 0 selects DefaultSlowTraces; negative disables
	// retention (the endpoint then always answers an empty list).
	SlowTraces int
}

// Server is the HTTP face of the query service. Create with NewServer,
// serve via any http.Server (it implements http.Handler), and Close it
// when done to stop the admission dispatcher.
//
// Endpoints:
//
//	GET    /healthz              liveness ("ok")
//	GET    /statsz               counters + per-mechanism latency quantiles
//	GET    /metricsz             Prometheus text-format exposition of the same counters
//	GET    /debugz/slow          the slowest request traces since boot
//	GET    /v1/mechanisms        the mechanism registry: names, domains, guarantees
//	GET    /v1/networks          hosted networks + the mechanisms each supports
//	POST   /v1/networks          register a scenario spec (instances.Spec JSON)
//	PATCH  /v1/networks/{name}   update a network in place (instances.Update JSON)
//	DELETE /v1/networks/{name}   evict a network (and its cache entries)
//	POST   /v1/evaluate          one EvalRequest -> EvalResponse
//	POST   /v1/batch             []EvalRequest  -> []EvalResponse-or-error
type Server struct {
	reg    *Registry
	cache  *Cache
	stats  *Stats
	flight flightGroup
	batch  *batcher
	mux    *http.ServeMux
	opts   Options
	tracer *obs.Tracer
	logger *slog.Logger
	slow   time.Duration // resolved SlowRequest; <= 0 disables
	boot   time.Time     // process-start anchor for wmcs_uptime_seconds
}

// NewServer builds a server over a registry. The registry may be shared
// (e.g. populated concurrently by an operator goroutine); the server
// only reads it through its own synchronized API.
func NewServer(reg *Registry, opts Options) *Server {
	if opts.MaxBatchRequest <= 0 {
		opts.MaxBatchRequest = 1024
	}
	if opts.CacheCapacity == 0 {
		opts.CacheCapacity = DefaultCacheCapacity
	}
	if opts.SlowRequest == 0 {
		opts.SlowRequest = DefaultSlowRequest
	}
	if opts.SlowTraces == 0 {
		opts.SlowTraces = DefaultSlowTraces
	}
	s := &Server{
		reg:    reg,
		cache:  NewCache(opts.CacheCapacity, opts.CacheShards),
		stats:  NewStats(),
		opts:   opts,
		tracer: obs.NewTracer(opts.SlowTraces),
		logger: opts.Logger,
		slow:   opts.SlowRequest,
		boot:   time.Now(),
	}
	if opts.ParallelEval > 0 {
		// Future registrations (POST /v1/networks) inherit the parallel
		// tier; networks hosted before construction keep the tier their
		// caller chose (wmcsd configures the registry before loading its
		// manifest, so at the daemon every network is parallel).
		reg.SetParallel(opts.ParallelEval)
	}
	s.batch = newBatcher(s.cache, s.stats, opts.Workers, opts.MaxBatch, opts.ParallelEval)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /debugz/slow", s.handleSlowTraces)
	mux.HandleFunc("GET /v1/mechanisms", s.handleListMechanisms)
	mux.HandleFunc("GET /v1/networks", s.handleListNetworks)
	mux.HandleFunc("POST /v1/networks", s.handleRegisterNetwork)
	mux.HandleFunc("PATCH /v1/networks/{name}", s.handleUpdateNetwork)
	mux.HandleFunc("DELETE /v1/networks/{name}", s.handleEvictNetwork)
	mux.HandleFunc("POST /v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux = mux
	return s
}

// ServeHTTP dispatches to the v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the admission dispatcher. In-flight handlers finish with
// a clean "server shutting down" error; call after http.Server.Shutdown.
func (s *Server) Close() { s.batch.close() }

// Cache exposes the result cache (counters for tests and callers
// embedding the server in-process).
func (s *Server) Cache() *Cache { return s.cache }

// Stats exposes the admission counters.
func (s *Server) Stats() *Stats { return s.stats }

// EvaluateCanon serves one canonical query through the full admission
// path — cache, singleflight, batch dispatch — and returns the response
// body bytes plus how they were obtained ("hit", "miss", "coalesced").
// This is the exact path handleEvaluate takes; it is exported within
// the package surface so in-process clients (the workload driver, the
// benchmarks) exercise serving semantics without a socket.
func (s *Server) EvaluateCanon(c CanonRequest) (body []byte, source string, err error) {
	entry, ok := s.reg.Get(c.Network)
	if !ok {
		return nil, "", fmt.Errorf("unknown network %q", c.Network)
	}
	if err := entry.CheckMech(c.Mech); err != nil {
		return nil, "", err
	}
	body, source, _, err = s.evaluateEntry(entry, c, nil)
	return body, source, err
}

// evaluateEntry is EvaluateCanon with the registration already
// resolved. One atomic load pins the admission to a consistent
// {evaluator, version} pair; the cache key (and the singleflight key)
// carry the entry's generation-and-version prefix, and the admitted
// task evaluates on that exact evaluator — so concurrent
// evict/re-register cycles *and* in-place updates can neither serve nor
// poison another network state's results, and the returned version
// always describes the state that produced the bytes.
func (s *Server) evaluateEntry(entry *NetworkEntry, c CanonRequest, tr *obs.Trace) (body []byte, source string, ver uint64, err error) {
	cur := entry.Ev.Current()
	key := entry.prefixFor(cur.Version) + c.Key
	lookupStart := time.Now()
	body, ok := s.cache.Get(key)
	tr.RecordSince(obs.StageCacheLookup, lookupStart)
	if ok {
		return body, "hit", cur.Version, nil
	}
	// The flight leader's closure runs on this goroutine, so handing tr
	// down is race-free; a follower's closure never runs, so its trace
	// sees the whole wait as one coalesce span instead.
	flightStart := time.Now()
	body, err, shared := s.flight.Do(key, func() ([]byte, error) {
		return s.batch.do(entry, cur.Ev, cur.Version, c, key, tr)
	})
	if err != nil {
		return nil, "", cur.Version, err
	}
	if shared {
		tr.RecordSince(obs.StageCoalesce, flightStart)
		s.stats.Coalesced.Add(1)
		return body, "coalesced", cur.Version, nil
	}
	return body, "miss", cur.Version, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// statszPayload is the /statsz document.
type statszPayload struct {
	Networks       int    `json:"networks"`
	Queries        uint64 `json:"queries"`
	Coalesced      uint64 `json:"coalesced"`
	Errors         uint64 `json:"errors"`
	InFlight       int64  `json:"in_flight"`
	Batches        uint64 `json:"batches"`
	BatchedQueries uint64 `json:"batched_queries"`
	// ParallelEval is the configured intra-query parallel width (0 =
	// serial tier); ReplicaRounds/ReplicaGroups count the dispatch
	// rounds whose groups ran concurrently on replica slots and the
	// groups those rounds carried.
	ParallelEval  int    `json:"parallel_eval"`
	ReplicaRounds uint64 `json:"replica_rounds"`
	ReplicaGroups uint64 `json:"replica_groups"`
	// Updates counts applied network deltas, UpdateOps the mutation ops
	// they carried; RebuildUS summarizes the evaluator rebuild+warm
	// latency those swaps paid. Generations maps every hosted network
	// to its current "regGen.version" cache generation — the observable
	// proof that an update bumped the generation in place instead of
	// forcing an evict/re-register round-trip (the regGen half is
	// stable across updates).
	Updates   uint64         `json:"updates"`
	UpdateOps uint64         `json:"update_ops"`
	RebuildUS LatencySummary `json:"rebuild_us"`
	// RebuildIncrementalUS/RebuildFullUS split RebuildUS by rebuild
	// path; their counts sum to RebuildUS.Count. CarriedEntries and
	// DeltaRebuiltMechs are the cumulative carry-forward and
	// delta-rebuild counters (see carry.go and query.UpdateResult).
	RebuildIncrementalUS LatencySummary            `json:"rebuild_incremental_us"`
	RebuildFullUS        LatencySummary            `json:"rebuild_full_us"`
	CarriedEntries       uint64                    `json:"carried_entries"`
	DeltaRebuiltMechs    uint64                    `json:"delta_rebuilt_mechs"`
	Generations          map[string]string         `json:"generations"`
	Cache                CacheStats                `json:"cache"`
	LatencyUS            map[string]LatencySummary `json:"latency_us"`
	Runtime              runtimeStats              `json:"runtime"`
}

// runtimeStats is the /statsz process-health block: enough to spot a
// goroutine leak or GC pressure from a dashboard without attaching
// pprof (wmcsd -pprof exists for the deep dive).
type runtimeStats struct {
	Goroutines     int    `json:"goroutines"`
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`
	HeapInuse      uint64 `json:"heap_inuse"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	gens := make(map[string]string)
	for _, e := range s.reg.Entries() {
		gens[e.Name] = fmt.Sprintf("%d.%d", e.gen, e.Ev.Version())
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p := statszPayload{
		Networks:             s.reg.Len(),
		Queries:              s.stats.Queries.Load(),
		Coalesced:            s.stats.Coalesced.Load(),
		Errors:               s.stats.Errors.Load(),
		InFlight:             s.stats.InFlight.Load(),
		Batches:              s.stats.Batches.Load(),
		BatchedQueries:       s.stats.BatchedQueries.Load(),
		ParallelEval:         s.opts.ParallelEval,
		ReplicaRounds:        s.stats.ReplicaRounds.Load(),
		ReplicaGroups:        s.stats.ReplicaGroups.Load(),
		Updates:              s.stats.Updates.Load(),
		UpdateOps:            s.stats.UpdateOps.Load(),
		RebuildUS:            s.stats.RebuildLatency(),
		RebuildIncrementalUS: s.stats.RebuildIncrementalLatency(),
		RebuildFullUS:        s.stats.RebuildFullLatency(),
		CarriedEntries:       s.stats.CarriedEntries.Load(),
		DeltaRebuiltMechs:    s.stats.DeltaRebuiltMechs.Load(),
		Generations:          gens,
		Cache:                s.cache.Stats(),
		LatencyUS:            s.stats.Latencies(),
		Runtime: runtimeStats{
			Goroutines:     runtime.NumGoroutine(),
			GCPauseTotalNS: ms.PauseTotalNs,
			HeapInuse:      ms.HeapInuse,
		},
	}
	writeJSON(w, http.StatusOK, p)
}

// networkInfo is one row of GET /v1/networks. Mechanisms is the
// per-network supported set: exactly the registry names whose declared
// domain admits this network, i.e. the names /v1/evaluate will not
// reject with a 422 — the listing and evaluate-time reality can never
// disagree because both read the same registry snapshot.
type networkInfo struct {
	Name      string `json:"name"`
	Stations  int    `json:"stations"`
	Source    int    `json:"source"`
	Euclidean bool   `json:"euclidean"`
	// Version is the network's lifecycle version: 0 as registered,
	// bumped by every mutation op a PATCH applied. Spec (when present)
	// describes the network *as registered* — at version > 0 the served
	// costs have drifted from what the spec alone would build.
	Version    uint64          `json:"version"`
	Mechanisms []string        `json:"mechanisms"`
	Spec       *instances.Spec `json:"spec,omitempty"`
}

func (s *Server) handleListNetworks(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.Entries()
	out := struct {
		Networks []networkInfo `json:"networks"`
		// Mechanisms is the full registry name list; whether a hosted
		// network supports a given name is per-network information.
		Mechanisms []string `json:"mechanisms"`
	}{Networks: make([]networkInfo, 0, len(entries)), Mechanisms: mechreg.Names()}
	for _, e := range entries {
		info := networkInfo{
			Name:       e.Name,
			Stations:   e.Net.N(),
			Source:     e.Net.Source(),
			Euclidean:  e.Net.IsEuclidean(),
			Version:    e.Ev.Version(),
			Mechanisms: e.Supported,
		}
		if e.Spec.Scenario != "" {
			sp := e.Spec
			info.Spec = &sp
		}
		out.Networks = append(out.Networks, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// mechInfo is one row of GET /v1/mechanisms: the wire form of a
// registry descriptor — name, family, domain, paper anchor and the
// declared guarantees, rendered so clients (and the CI smoke diff
// against the CLI's listing) need no knowledge of internal types.
type mechInfo struct {
	Name     string `json:"name"`
	Family   string `json:"family"`
	Domain   string `json:"domain"`
	PaperRef string `json:"paper_ref"`
	Desc     string `json:"desc"`
	// Approx advertises a sampled Shapley tier: requests may carry an
	// "approx" object and receive an (ε, δ) certificate.
	Approx bool `json:"approx"`
	// Parallel advertises the deterministic parallel evaluation tier
	// (DESIGN.md §14): on a daemon booted with -parallel-eval this
	// mechanism's heavy paths run on the engine pool, width-invariantly.
	Parallel bool `json:"parallel"`

	BudgetBalance     string `json:"budget_balance"` // "none" | "solution" | "optimum"
	Beta              string `json:"beta,omitempty"` // declared factor, human form
	Strategyproofness string `json:"strategyproofness"`
	SPGap             string `json:"sp_gap,omitempty"`
	NPT               bool   `json:"npt"`
	VP                bool   `json:"vp"`
	CS                bool   `json:"cs"`
	Efficient         bool   `json:"efficient"`
}

func (s *Server) handleListMechanisms(w http.ResponseWriter, r *http.Request) {
	all := mechreg.All()
	out := struct {
		Mechanisms []mechInfo `json:"mechanisms"`
	}{Mechanisms: make([]mechInfo, 0, len(all))}
	for _, d := range all {
		g := d.Guarantees
		out.Mechanisms = append(out.Mechanisms, mechInfo{
			Name:              d.Name,
			Family:            d.Family,
			Domain:            d.Domain,
			PaperRef:          d.PaperRef,
			Desc:              d.Desc,
			Approx:            d.Approx,
			Parallel:          d.Parallel,
			BudgetBalance:     g.BB.String(),
			Beta:              g.BetaLabel,
			Strategyproofness: g.Strategyproofness.String(),
			SPGap:             g.SPGap,
			NPT:               g.NPT,
			VP:                g.VP,
			CS:                g.CS,
			Efficient:         g.Efficient,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRegisterNetwork(w http.ResponseWriter, r *http.Request) {
	var sp instances.Spec
	if err := decodeJSON(r, &sp); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.reg.RegisterSpec(sp); err != nil {
		code := http.StatusBadRequest // invalid spec
		if errors.Is(err, ErrDuplicateNetwork) {
			code = http.StatusConflict
		}
		writeErr(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"registered": sp.Name})
}

// updateResponse is the PATCH /v1/networks/{name} success body.
type updateResponse struct {
	Network string `json:"network"`
	// OldVersion/Version bracket the delta; Ops is how many mutation
	// ops it carried (Version - OldVersion).
	OldVersion uint64 `json:"old_version"`
	Version    uint64 `json:"version"`
	Ops        int    `json:"ops"`
	// RebuildUS is the evaluator rebuild+warm wall clock the swap paid.
	RebuildUS float64 `json:"rebuild_us"`
	// Incremental reports that the swap reused substrate via the delta
	// path (the op sequence canceled out bitwise, or the MEMT→NWST
	// reduction was rebuilt incrementally) instead of a full rebuild.
	Incremental bool `json:"incremental"`
	// CarriedEntries counts cache entries re-keyed from the retired
	// version to this one because the delta proved their bytes
	// unchanged (see carry.go).
	CarriedEntries int `json:"carried_entries"`
	// CacheEntriesDropped counts the retired version's purged cache
	// entries — space reclamation only; correctness never depends on
	// the purge (retired keys are unreachable by construction).
	CacheEntriesDropped int `json:"cache_entries_dropped"`
}

// handleUpdateNetwork applies an in-place delta (cost changes, station
// moves, station churn) to a hosted network: the versioned evaluator
// mutates a private copy, rebuilds, and atomically swaps, so the
// network's cache generation bumps in O(1) without an evict →
// re-register round-trip. In-flight queries drain against the old
// state; queries admitted after the swap see only the new one.
func (s *Server) handleUpdateNetwork(w http.ResponseWriter, r *http.Request) {
	tr := s.tracer.Start("update")
	defer s.closeTrace(tr, true)
	w.Header().Set("X-Wmcs-Trace", tr.ID)
	name := r.PathValue("name")
	tr.Network = name
	entry, ok := s.reg.Get(name)
	if !ok {
		tr.Status = http.StatusNotFound
		tr.Err = fmt.Sprintf("unknown network %q", name)
		writeErr(w, http.StatusNotFound, tr.Err)
		return
	}
	var up instances.Update
	if err := decodeJSON(r, &up); err != nil {
		tr.RecordSince(obs.StageAdmission, tr.Begin)
		tr.Status, tr.Err = http.StatusBadRequest, err.Error()
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if up.Empty() {
		tr.RecordSince(obs.StageAdmission, tr.Begin)
		tr.Status, tr.Err = http.StatusBadRequest, "empty update: no set_costs, move, disable or enable ops"
		writeErr(w, http.StatusBadRequest, tr.Err)
		return
	}
	tr.RecordSince(obs.StageAdmission, tr.Begin)
	rebuildStart := time.Now()
	res, err := entry.Ev.Update(up.Apply)
	tr.RecordSince(obs.StageRebuild, rebuildStart)
	if err != nil {
		// Every op failure is a request defect (bad index, bad value, op
		// outside the network's class); the update applied nothing.
		tr.Status, tr.Err = http.StatusUnprocessableEntity, err.Error()
		writeErr(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	tr.Version = res.NewVersion
	if res.NewVersion == res.OldVersion {
		// Every op was a true no-op (a same-value SetCost, a same-point
		// MoveStation): no version bump, no swap, and crucially no cache
		// retirement — the current version's entries stay hot. Not
		// counted as an update.
		tr.Status = http.StatusOK
		writeJSON(w, http.StatusOK, updateResponse{
			Network:    name,
			OldVersion: res.OldVersion,
			Version:    res.NewVersion,
		})
		return
	}
	s.stats.Updates.Add(1)
	s.stats.UpdateOps.Add(uint64(res.Delta.Ops))
	s.stats.ObserveRebuild(res.Rebuild, res.Incremental)
	if res.Incremental {
		s.stats.DeltaRebuiltMechs.Add(uint64(res.RebuiltMechs))
	}
	// Carry provably-unchanged hot entries to the new version before the
	// purge below retires their old keys (see carry.go).
	carryStart := time.Now()
	carried := s.carryForward(entry, res)
	tr.RecordSince(obs.StageCarryForward, carryStart)
	s.stats.CarriedEntries.Add(uint64(carried))
	// Reclaim the retired version's cache space. Correctness does not
	// wait for this: new requests already form newVer keys, and a
	// racing old-version Put self-deletes (see batcher.runGroup).
	purgeStart := time.Now()
	dropped := s.cache.DeletePrefix(entry.prefixFor(res.OldVersion))
	tr.RecordSince(obs.StagePurge, purgeStart)
	tr.Status = http.StatusOK
	writeJSON(w, http.StatusOK, updateResponse{
		Network:             name,
		OldVersion:          res.OldVersion,
		Version:             res.NewVersion,
		Ops:                 res.Delta.Ops,
		RebuildUS:           float64(res.Rebuild.Nanoseconds()) / 1e3,
		Incremental:         res.Incremental,
		CarriedEntries:      carried,
		CacheEntriesDropped: dropped,
	})
}

func (s *Server) handleEvictNetwork(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Evict(name) {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown network %q", name))
		return
	}
	dropped := s.cache.DeletePrefix(networkKeyPrefix(name))
	writeJSON(w, http.StatusOK, map[string]any{"evicted": name, "cache_entries_dropped": dropped})
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	defer s.stats.TrackInFlight()()
	tr := s.tracer.Start("evaluate")
	defer s.closeTrace(tr, true)
	w.Header().Set("X-Wmcs-Trace", tr.ID)
	traced := wantTrace(r)
	var req EvalRequest
	if err := decodeJSON(r, &req); err != nil {
		tr.RecordSince(obs.StageAdmission, tr.Begin)
		tr.Status, tr.Err = http.StatusBadRequest, err.Error()
		s.stats.Errors.Add(1)
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	tr.RecordSince(obs.StageAdmission, tr.Begin)
	tr.Network, tr.Mech = req.Network, req.Mech
	body, source, ver, code, err := s.evaluateWire(req, tr)
	tr.Version = ver
	if err != nil {
		tr.Status, tr.Err = code, err.Error()
		s.stats.Errors.Add(1)
		writeJSON(w, code, errPayload(req, err))
		return
	}
	tr.Source = sourceWord(source)
	s.stats.Observe(req.Mech, time.Since(tr.Begin))
	w.Header().Set("X-Wmcs-Cache", source)
	// The network version the response was computed against — what a
	// churn driver needs to byte-verify against the matching replica.
	w.Header().Set("X-Wmcs-Version", strconv.FormatUint(ver, 10))
	s.writeTraced(w, traced, tr, http.StatusOK, body)
}

// evaluateWire is the single-query path shared by /v1/evaluate and each
// /v1/batch element: resolve the network, canonicalize, admit. ver is
// the network version the answer was computed against. The returned
// code is the HTTP status for a non-nil error. tr (nil ok) collects the
// canonicalize span here and the deeper pipeline spans downstream.
func (s *Server) evaluateWire(req EvalRequest, tr *obs.Trace) (body []byte, source string, ver uint64, code int, err error) {
	entry, ok := s.reg.Get(req.Network)
	if !ok {
		return nil, "", 0, http.StatusNotFound, fmt.Errorf("unknown network %q", req.Network)
	}
	canonStart := time.Now()
	c, err := Canonicalize(req, entry.Net.N(), entry.Net.Source())
	tr.RecordSince(obs.StageCanonicalize, canonStart)
	if errors.Is(err, ErrBadApprox) {
		// The request decoded and the shape is right — the approx
		// parameters just violate their contract. That is a semantic
		// defect like a domain mismatch (422), not a malformed request
		// (400), and emphatically not a server fault (500).
		return nil, "", 0, http.StatusUnprocessableEntity, err
	}
	if err != nil {
		return nil, "", 0, http.StatusBadRequest, err
	}
	// Registry-declared domain check, before admission: a valid name on
	// a network outside its domain is a structured 422 — the same
	// verdict the per-network listing in /v1/networks advertises, so the
	// two can never disagree. (Stable under updates: mutation ops cannot
	// change the network class.)
	if err := entry.CheckMech(c.Mech); err != nil {
		return nil, "", 0, http.StatusUnprocessableEntity, err
	}
	s.stats.Queries.Add(1)
	body, source, ver, err = s.evaluateEntry(entry, c, tr)
	if errors.Is(err, errShuttingDown) {
		// Retryable against another replica or after restart — must not
		// look like a client error.
		return nil, "", ver, http.StatusServiceUnavailable, err
	}
	if errors.Is(err, errInternal) {
		// Server-side faults (recovered evaluation panics, unencodable
		// outcomes) are ours, not the caller's.
		return nil, "", ver, http.StatusInternalServerError, err
	}
	if err != nil {
		// Remaining post-canonicalization failures are network-class
		// mismatches (e.g. a line mechanism on a 2-d network).
		return nil, "", ver, http.StatusUnprocessableEntity, err
	}
	return body, source, ver, 0, nil
}

// errBody is the error wire form. Code annotates the structured
// rejections clients can branch on without parsing the message:
// "unsupported_domain" (the mechanism's declared domain does not admit
// the target network — the combination /v1/networks would not
// advertise), "unknown_mechanism" (no such registry name), "bad_approx"
// (an approx spec violating its contract) and "no_approx_tier" (an
// approx request against a mechanism without a sampled tier — the
// combination /v1/mechanisms would not advertise).
type errBody struct {
	Error   string `json:"error"`
	Code    string `json:"code,omitempty"`
	Mech    string `json:"mech,omitempty"`
	Network string `json:"network,omitempty"`
}

// errPayload classifies an evaluation error into its wire form using
// the registry's typed errors.
func errPayload(req EvalRequest, err error) errBody {
	b := errBody{Error: err.Error()}
	switch {
	case errors.Is(err, mechreg.ErrUnsupportedDomain):
		b.Code, b.Mech, b.Network = "unsupported_domain", req.Mech, req.Network
	case errors.Is(err, mechreg.ErrUnknownMechanism):
		b.Code, b.Mech = "unknown_mechanism", req.Mech
	case errors.Is(err, ErrBadApprox):
		b.Code, b.Mech = "bad_approx", req.Mech
	case errors.Is(err, query.ErrNoApproxTier):
		b.Code, b.Mech = "no_approx_tier", req.Mech
	}
	return b
}

// batchElem is one /v1/batch result: the canonical response bytes of
// the element, or its error (structured like the single endpoint's).
type batchElem struct {
	req  EvalRequest
	body []byte
	err  error
}

func (e batchElem) MarshalJSON() ([]byte, error) {
	if e.err != nil {
		return json.Marshal(errPayload(e.req, e.err))
	}
	return e.body, nil
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	defer s.stats.TrackInFlight()()
	tr := s.tracer.Start("batch")
	// The outer batch trace skips the stage histograms: its fan-out span
	// is a batch-level wall, not a per-request pipeline stage (the
	// children feed the histograms instead).
	defer s.closeTrace(tr, false)
	w.Header().Set("X-Wmcs-Trace", tr.ID)
	var reqs []EvalRequest
	if err := decodeJSON(r, &reqs); err != nil {
		tr.RecordSince(obs.StageAdmission, tr.Begin)
		tr.Status, tr.Err = http.StatusBadRequest, err.Error()
		s.stats.Errors.Add(1)
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(reqs) > s.opts.MaxBatchRequest {
		tr.RecordSince(obs.StageAdmission, tr.Begin)
		tr.Status = http.StatusRequestEntityTooLarge
		tr.Err = fmt.Sprintf("batch of %d exceeds limit %d", len(reqs), s.opts.MaxBatchRequest)
		s.stats.Errors.Add(1)
		writeErr(w, http.StatusRequestEntityTooLarge, tr.Err)
		return
	}
	tr.RecordSince(obs.StageAdmission, tr.Begin)
	// Fan the elements out concurrently: distinct queries pile into the
	// admission queue together (one engine batch), identical ones
	// coalesce in the flight group, hits return immediately. Each
	// element carries a child trace (ID "<batch>.<i>") and times itself,
	// so the per-mechanism quantiles reflect per-query service latency,
	// not the whole batch's wall clock — and a slow element ranks in
	// /debugz/slow individually, pointing back at its batch.
	fanStart := time.Now()
	elems := make([]batchElem, len(reqs))
	done := make(chan int, len(reqs))
	for i := range reqs {
		go func(i int) {
			ct := s.tracer.StartChild(tr, i)
			defer s.closeTrace(ct, true)
			ct.Network, ct.Mech = reqs[i].Network, reqs[i].Mech
			body, source, ver, code, err := s.evaluateWire(reqs[i], ct)
			ct.Version = ver
			elems[i] = batchElem{req: reqs[i], body: body, err: err}
			if err != nil {
				ct.Status, ct.Err = code, err.Error()
				s.stats.Errors.Add(1)
			} else {
				ct.Status, ct.Source = http.StatusOK, sourceWord(source)
				s.stats.Observe(reqs[i].Mech, time.Since(ct.Begin))
			}
			done <- i
		}(i)
	}
	for range reqs {
		<-done
	}
	tr.RecordSince(obs.StageEvaluate, fanStart)
	encStart := time.Now()
	tr.Status = http.StatusOK
	if wantTrace(r) {
		// The envelope embeds the canonical batch body verbatim; marshal
		// it first so the trace's encode span covers the real work.
		body, err := json.Marshal(elems)
		if err != nil {
			tr.Status, tr.Err = http.StatusInternalServerError, err.Error()
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		tr.Record(obs.StageEncode, encStart, time.Since(encStart))
		writeJSON(w, http.StatusOK, tracedResponse{Trace: tr.Snapshot(), Response: body})
		return
	}
	writeJSON(w, http.StatusOK, elems)
	tr.Record(obs.StageEncode, encStart, time.Since(encStart))
}

// maxBodyBytes bounds request bodies (a 100k-station profile is ~2MB;
// 16MB leaves headroom without inviting abuse).
const maxBodyBytes = 16 << 20

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
