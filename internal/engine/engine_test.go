package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderStable(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		p := New(workers)
		out := Map(p, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndNilPool(t *testing.T) {
	if out := Map[int](nil, 0, nil); len(out) != 0 {
		t.Fatalf("empty map returned %v", out)
	}
	out := Map(nil, 3, func(i int) int { return i + 1 })
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("nil-pool map wrong: %v", out)
	}
	if (*Pool)(nil).Workers() != 1 {
		t.Fatal("nil pool must report width 1")
	}
}

func TestSerialRunsInline(t *testing.T) {
	// A width-1 pool must execute on the calling goroutine in index
	// order, so side effects are sequentially consistent without locks.
	var trace []int
	Map(Serial(), 5, func(i int) int {
		trace = append(trace, i)
		return i
	})
	for i, v := range trace {
		if v != i {
			t.Fatalf("serial order broken: %v", trace)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	Map(New(workers), 24, func(i int) int {
		cur := inFlight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inFlight.Add(-1)
		return i
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

func TestNestedMapsShareOneBound(t *testing.T) {
	// The tokens are pool-global: an outer Map over inner Maps must stay
	// within the same width, not width², and must never deadlock.
	const workers = 4
	p := New(workers)
	var inFlight, peak atomic.Int64
	Map(p, 6, func(outer int) int {
		inner := Map(p, 8, func(i int) int {
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return i
		})
		return inner[outer]
	})
	if pk := peak.Load(); pk > workers {
		t.Fatalf("nested peak concurrency %d exceeds pool width %d", pk, workers)
	}
}

func TestMapOverlapsWork(t *testing.T) {
	// Sleep-bound tasks overlap even on a single CPU; 8 tasks of 20ms
	// under 8 workers must finish far sooner than the 160ms serial sum.
	start := time.Now()
	Map(New(8), 8, func(i int) int {
		time.Sleep(20 * time.Millisecond)
		return i
	})
	if d := time.Since(start); d > 120*time.Millisecond {
		t.Fatalf("8 overlapping 20ms tasks took %v; pool is not concurrent", d)
	}
}

func TestDefaultWidthIsGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want %d", got, want)
	}
	if New(-3).Workers() != runtime.GOMAXPROCS(0) {
		t.Fatal("negative widths must fall back to GOMAXPROCS")
	}
}

func TestSeedForIsPureAndSpread(t *testing.T) {
	seen := map[int64]bool{}
	for task := 0; task < 2000; task++ {
		s := SeedFor(42, task)
		if s < 0 {
			t.Fatalf("SeedFor(42, %d) = %d is negative", task, s)
		}
		if s != SeedFor(42, task) {
			t.Fatalf("SeedFor not deterministic at task %d", task)
		}
		if seen[s] {
			t.Fatalf("seed collision at task %d", task)
		}
		seen[s] = true
	}
	if SeedFor(1, 0) == SeedFor(2, 0) {
		t.Fatal("different bases must give different seeds")
	}
}

func TestRNGStreamsIndependentOfScheduling(t *testing.T) {
	// The first draw of each task's RNG must match a serial recomputation
	// regardless of worker count.
	want := make([]float64, 50)
	for i := range want {
		want[i] = RNG(7, i).Float64()
	}
	got := Map(New(16), 50, func(i int) float64 { return RNG(7, i).Float64() })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("task %d drew %g under 16 workers, %g serially", i, got[i], want[i])
		}
	}
}
