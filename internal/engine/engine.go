// Package engine is the concurrent batch-evaluation substrate of the
// experiment harness (DESIGN.md §5). It runs independent tasks — trials,
// table cells, whole experiments — on a bounded worker pool while keeping
// every result bit-for-bit identical to a serial run:
//
//   - results are collected order-stably: Map(p, n, fn)[i] is always the
//     value of fn(i), no matter which worker computed it or when;
//   - randomness is derived per task: RNG(base, task) yields a generator
//     that depends only on (base, task), never on scheduling order, so a
//     task's stream is the same at 1 worker and at N;
//   - concurrency is bounded globally, not per call: a Pool carries
//     workers−1 helper tokens shared by every Map scheduled on it, so
//     even nested Maps (RunAll over experiments over cells) never exceed
//     the pool width in running goroutines. Callers always execute tasks
//     themselves and recruit helpers only when a token is free — no
//     blocking acquisition, hence no nesting deadlocks — and a worker
//     re-checks for freed tokens before each task, so a long-running
//     inner Map picks up capacity as sibling work drains.
//
// The contract callers must keep: fn(i) may not mutate state shared with
// fn(j). Tasks that need "the same instance" rebuild it from the same
// derived seed instead of sharing a *rand.Rand.
package engine

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds how many tasks run concurrently across every Map scheduled
// on it. A nil Pool is valid and means serial execution.
type Pool struct {
	workers int
	// tokens holds workers−1 helper slots; owning a token is the right
	// to run one goroutine beyond the calling one.
	tokens chan struct{}
}

// New returns a pool of the given width; workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tokens = make(chan struct{}, workers-1)
		for i := 0; i < workers-1; i++ {
			p.tokens <- struct{}{}
		}
	}
	return p
}

// Serial returns a width-1 pool; Map calls under it never spawn
// goroutines.
func Serial() *Pool { return &Pool{workers: 1} }

// Workers returns the pool width (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Map evaluates fn(0..n-1) under the pool and returns the results in
// index order. With a serial pool the calls happen inline on the calling
// goroutine, in order. Otherwise the caller works through the tasks
// itself and, before each one, recruits a helper goroutine if a pool
// token is free; helpers do the same and return their token when the
// queue drains. Either way out[i] == fn(i), which is what makes parallel
// experiment tables byte-identical to serial ones.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if p.Workers() <= 1 || p == nil || p.tokens == nil || n <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var work func()
	work = func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if i+1 < n {
				// Tasks remain: recruit a helper if capacity is free
				// right now (never block — the caller makes progress
				// regardless, which is what rules out deadlock under
				// nesting).
				select {
				case <-p.tokens:
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer func() { p.tokens <- struct{}{} }()
						work()
					}()
				default:
				}
			}
			out[i] = fn(i)
		}
	}
	work()
	wg.Wait()
	return out
}

// SeedFor derives a 63-bit seed for the given task from a base seed by a
// splitmix64 step. Distinct tasks get well-separated seeds even for
// adjacent indices, and the derivation is pure: it depends only on the
// arguments, never on execution order.
func SeedFor(base int64, task int) int64 {
	z := uint64(base) + (uint64(task)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z &^ (1 << 63))
}

// RNG returns a task-private generator seeded with SeedFor(base, task).
// Each task must use its own RNG: *rand.Rand is not safe for concurrent
// use, and sharing one would also make the stream depend on scheduling.
func RNG(base int64, task int) *rand.Rand {
	return rand.New(rand.NewSource(SeedFor(base, task)))
}
