package check

import (
	"math"
	"testing"
)

func airport(c []float64) func(R []int) float64 {
	return func(R []int) float64 {
		var m float64
		for _, i := range R {
			if c[i] > m {
				m = c[i]
			}
		}
		return m
	}
}

func TestCoreNonEmptyAirport(t *testing.T) {
	// Airport games always have a non-empty core (put everything on the
	// largest player).
	agents := []int{0, 1, 2}
	ok, f := CoreNonEmpty(agents, airport([]float64{1, 2, 3}))
	if !ok {
		t.Fatal("airport core should be non-empty")
	}
	var tot float64
	for _, v := range f {
		tot += v
	}
	if math.Abs(tot-3) > 1e-6 {
		t.Errorf("allocation sums to %g want 3", tot)
	}
	// Witness respects all coalition constraints.
	if f[0] > 1+1e-6 || f[0]+f[1] > 2+1e-6 {
		t.Errorf("allocation %v violates coalition bounds", f)
	}
}

func TestCoreEmptyGame(t *testing.T) {
	// C(pair) = 1 but C(grand) = 3: pairs would need to cover 3 with
	// pairwise sums ≤ 1 — impossible.
	cost := func(R []int) float64 {
		switch len(R) {
		case 0:
			return 0
		case 1:
			return 1
		case 2:
			return 1
		default:
			return 3
		}
	}
	ok, _ := CoreNonEmpty([]int{0, 1, 2}, cost)
	if ok {
		t.Fatal("core should be empty")
	}
}

func TestCoreTrivialCases(t *testing.T) {
	if ok, _ := CoreNonEmpty(nil, airport(nil)); !ok {
		t.Error("empty game has (vacuously) a core")
	}
	ok, f := CoreNonEmpty([]int{0}, airport([]float64{2}))
	if !ok || math.Abs(f[0]-2) > 1e-6 {
		t.Errorf("singleton core: ok=%v f=%v", ok, f)
	}
}

func TestCoreGuard(t *testing.T) {
	agents := make([]int, 17)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CoreNonEmpty(agents, airport(make([]float64, 17)))
}

func TestLemma33Inequalities(t *testing.T) {
	// Symmetric 5-agent game engineered like the pentagon: grand cost 10,
	// adjacent pairs cost 3.5 (< 2·10/5 = 4), singletons cost 2.5 (> 2).
	cost := func(R []int) float64 {
		switch len(R) {
		case 0:
			return 0
		case 1:
			return 2.5
		case 2:
			return 3.5
		default:
			return 10
		}
	}
	agents := []int{0, 1, 2, 3, 4}
	pairSlack, singleSlack := Lemma33Inequalities(agents, cost)
	if pairSlack >= 0 {
		t.Errorf("pair slack = %g, want negative (secession profitable)", pairSlack)
	}
	if singleSlack <= 0 {
		t.Errorf("singleton slack = %g, want positive", singleSlack)
	}
	// And indeed the LP agrees the core is empty.
	if ok, _ := CoreNonEmpty(agents, cost); ok {
		t.Error("core should be empty for this game")
	}
}

func TestLemma33RequiresFiveAgents(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Lemma33Inequalities([]int{0, 1}, airport([]float64{1, 1}))
}
