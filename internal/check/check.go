// Package check provides cross-cutting property verifiers used by the
// simulated evaluation: core non-emptiness of cost-sharing games via
// linear programming (Bondareva–Shapley style feasibility, for Lemma 3.3)
// and the Lemma 3.3 symmetry inequalities.
package check

import (
	"fmt"
	"sync"

	"wmcs/internal/lp"
	"wmcs/internal/sharing"
)

// lpWorkspaces pools solver scratch across CoreNonEmpty calls: the
// evaluation suite solves one core LP per trial cell, and the tableau
// (2^k rows × ~2^k+k columns for k agents) dominated each solve's
// allocations. Reuse is invisible in the results — lp.SolveWith
// overwrites every scratch cell it reads — and the pool keeps the
// verifier safe for concurrent trials (one workspace per checkout).
var lpWorkspaces = sync.Pool{New: func() any { return lp.NewWorkspace() }}

// CoreNonEmpty decides whether the core of the game (agents, C) is
// non-empty by LP feasibility:
//
//	f ≥ 0, Σ_{i∈N} f_i = C(N), Σ_{i∈R} f_i ≤ C(R) ∀ ∅ ≠ R ⊂ N.
//
// It returns a witness allocation when the core is non-empty. Limited to
// ≤ 16 agents (2^k constraints).
func CoreNonEmpty(agents []int, C sharing.CostFunc) (bool, []float64) {
	k := len(agents)
	if k > 16 {
		panic(fmt.Sprintf("check: CoreNonEmpty limited to 16 agents, got %d", k))
	}
	if k == 0 {
		return true, nil
	}
	p := lp.NewProblem(k)
	grand := C(agents)
	ones := make([]float64, k)
	for i := range ones {
		ones[i] = 1
	}
	p.AddConstraint(ones, lp.EQ, grand)
	subset := make([]int, 0, k)
	row := make([]float64, k)
	for mask := 1; mask < (1<<k)-1; mask++ {
		subset = subset[:0]
		for b := 0; b < k; b++ {
			if mask&(1<<b) != 0 {
				subset = append(subset, agents[b])
				row[b] = 1
			} else {
				row[b] = 0
			}
		}
		p.AddConstraint(row, lp.LE, C(subset))
	}
	// Deferred so a panicking solve cannot leak the workspace; the
	// Result never aliases it (lp.SolveWith's contract), so returning
	// it to the pool at any point after the solve is safe.
	ws := lpWorkspaces.Get().(*lp.Workspace)
	defer lpWorkspaces.Put(ws)
	res := p.SolveWith(ws)
	if res.Status != lp.Optimal {
		return false, nil
	}
	return true, res.X
}

// Lemma33Inequalities evaluates the quantities driving the Lemma 3.3
// contradiction on a 5-agent symmetric instance: under any core
// allocation, symmetry forces f(x_i) = C(R)/5, but adjacent pairs can
// secede whenever C({x_i, x_{i+1}}) < 2·C(R)/5. It reports the worst
// (smallest) adjacent-pair slack C({x_i,x_{i+1}}) − 2C(R)/5; the core is
// provably empty when the returned slack is negative and the singleton
// costs exceed C(R)/5.
func Lemma33Inequalities(agents []int, C sharing.CostFunc) (pairSlack, singletonSlack float64) {
	if len(agents) != 5 {
		panic("check: Lemma33Inequalities requires exactly 5 agents")
	}
	grand := C(agents)
	pairSlack = 1e308
	singletonSlack = 1e308
	for i := 0; i < 5; i++ {
		pair := []int{agents[i], agents[(i+1)%5]}
		if s := C(pair) - 2*grand/5; s < pairSlack {
			pairSlack = s
		}
		if s := C([]int{agents[i]}) - grand/5; s < singletonSlack {
			singletonSlack = s
		}
	}
	return pairSlack, singletonSlack
}
