package sharing

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/mech"
)

func TestIncrementalAirport(t *testing.T) {
	c := []float64{1, 2, 3}
	inc := NewIncremental([]int{0, 1, 2}, airportCost(c))
	got := inc.Shares([]int{0, 1, 2})
	// Order 0,1,2: marginals 1, 1, 1.
	for i, want := range []float64{1, 1, 1} {
		if math.Abs(got[i]-want) > 1e-12 {
			t.Errorf("share[%d] = %g want %g", i, got[i], want)
		}
	}
	// Reversed order: agent 2 pays everything.
	inc = NewIncremental([]int{2, 1, 0}, airportCost(c))
	got = inc.Shares([]int{0, 1, 2})
	if got[2] != 3 || got[1] != 0 || got[0] != 0 {
		t.Errorf("reversed shares = %v", got)
	}
}

func TestIncrementalBudgetBalanceAndCrossMono(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := make([]float64, 7)
	for i := range c {
		c[i] = rng.Float64() * 10
	}
	agents := []int{0, 1, 2, 3, 4, 5, 6}
	inc := NewIncremental(agents, airportCost(c))
	if err := CheckBudgetBalanced(inc, airportCost(c), agents, rng, 150, 1e-9); err != nil {
		t.Error(err)
	}
	// Submodular cost ⇒ cross-monotonic marginals.
	if err := CheckCrossMonotone(inc, agents, rng, 200, 1e-9); err != nil {
		t.Error(err)
	}
}

func TestIncrementalMechanismGSP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := []float64{1, 2, 3, 4}
	agents := []int{0, 1, 2, 3}
	cost := airportCost(c)
	m := &MechanismFromMethod{
		MechName: "incremental-airport",
		AgentSet: agents,
		Xi:       NewIncremental(agents, cost),
		Cost:     cost,
	}
	truth := mech.Profile{0.7, 1.9, 2.2, 3.8}
	if err := mech.CheckStrategyproof(m, truth, nil); err != nil {
		t.Error(err)
	}
	if err := mech.CheckGroupStrategyproof(m, truth, rng, 300, nil); err != nil {
		t.Error(err)
	}
	for trial := 0; trial < 15; trial++ {
		u := mech.RandomProfile(rng, 4, 5)
		o := m.Run(u)
		if err := mech.CheckAll(u, o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(o.TotalShares()-o.Cost) > 1e-9 {
			t.Fatalf("trial %d: not budget balanced", trial)
		}
	}
}

// Moulin–Shenker [38]: the Shapley value minimizes worst-case efficiency
// loss among cross-monotonic BB methods. On random airport games the
// Shapley mechanism's realized net worth must on average dominate the
// incremental mechanism's under adversarial priority orders.
func TestShapleyBeatsIncrementalOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 6
	agents := []int{0, 1, 2, 3, 4, 5}
	var shapSum, incSum float64
	for trial := 0; trial < 40; trial++ {
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64() * 10
		}
		cost := airportCost(c)
		shap := &MechanismFromMethod{MechName: "s", AgentSet: agents, Xi: NewShapley(agents, cost), Cost: cost}
		// Adversarial order: charge the closest agents the whole marginal
		// first (reverse distance order).
		order := append([]int(nil), agents...)
		for i := range order {
			for j := i + 1; j < len(order); j++ {
				if c[order[j]] > c[order[i]] {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		inc := &MechanismFromMethod{MechName: "i", AgentSet: agents, Xi: NewIncremental(order, cost), Cost: cost}
		u := mech.RandomProfile(rng, n, 8)
		shapSum += shap.Run(u).NetWorth(u)
		incSum += inc.Run(u).NetWorth(u)
	}
	if shapSum < incSum-1e-9 {
		t.Errorf("Shapley mean net worth %g below incremental %g — contradicts [38]'s worst-case ordering",
			shapSum, incSum)
	}
}
