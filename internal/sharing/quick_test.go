package sharing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property (symmetry axiom): in a symmetric game, all agents receive
// identical Shapley shares.
func TestQuickShapleySymmetry(t *testing.T) {
	f := func(seed uint16, k8 uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		k := 2 + int(k8)%5
		base := rng.Float64() * 5
		cost := func(R []int) float64 {
			if len(R) == 0 {
				return 0
			}
			return base + math.Sqrt(float64(len(R)))
		}
		agents := make([]int, k)
		for i := range agents {
			agents[i] = i
		}
		shares := NewShapley(agents, cost).Shares(agents)
		first := shares[0]
		for _, v := range shares {
			if math.Abs(v-first) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (dummy axiom): an agent whose presence never changes the cost
// pays zero under the Shapley value.
func TestQuickShapleyDummy(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		k := 3 + rng.Intn(4)
		vals := make([]float64, k)
		for i := 1; i < k; i++ {
			vals[i] = rng.Float64() * 5
		}
		// Agent 0 is a dummy: cost ignores it entirely.
		cost := func(R []int) float64 {
			var m float64
			for _, i := range R {
				if vals[i] > m {
					m = vals[i]
				}
			}
			return m
		}
		agents := make([]int, k)
		for i := range agents {
			agents[i] = i
		}
		shares := NewShapley(agents, cost).Shares(agents)
		return math.Abs(shares[0]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Moulin–Shenker receivers can always afford their shares, and
// the iteration is idempotent (re-running on the survivors changes
// nothing) for cross-monotonic methods.
func TestQuickMoulinShenkerFixpoint(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		k := 3 + rng.Intn(4)
		c := make([]float64, k)
		for i := range c {
			c[i] = rng.Float64() * 10
		}
		agents := make([]int, k)
		for i := range agents {
			agents[i] = i
		}
		cost := airportCost(c)
		xi := NewShapley(agents, cost)
		u := make([]float64, k)
		for i := range u {
			u[i] = rng.Float64() * 6
		}
		res := MoulinShenker(agents, xi, u)
		for _, i := range res.Receivers {
			if u[i] < res.Shares[i]-1e-7 {
				return false
			}
		}
		again := MoulinShenker(res.Receivers, xi, u)
		if len(again.Receivers) != len(res.Receivers) {
			return false
		}
		for idx, i := range res.Receivers {
			if again.Receivers[idx] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
