package sharing

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// boundedBy reports whether every agent's sampled share is within eps of
// its exact value. The statistical test and its non-vacuity twin share
// this predicate: the honest certificate must satisfy it, a deliberately
// shrunk one must not.
func boundedBy(exact, approx map[int]float64, eps float64) bool {
	for i, want := range exact {
		if math.Abs(approx[i]-want) > eps {
			return false
		}
	}
	return true
}

// TestSampledShapleyWithinCertificate draws sampled estimates on games
// with known exact values and checks the observed error against the
// reported Hoeffding ε for every agent, across several seeds and sample
// budgets. With the bound's confidence at 1−δ = 99.9% per run, all runs
// passing at fixed seeds is the expected outcome; a bound violation
// means the certificate lies.
func TestSampledShapleyWithinCertificate(t *testing.T) {
	games := []struct {
		name   string
		agents []int
		cost   CostFunc
	}{
		{"airport", []int{0, 1, 2, 3, 4}, airportCost([]float64{1, 2, 3, 4, 5})},
		{"symmetric", []int{0, 1, 2, 3, 4, 5}, func(R []int) float64 { return 2 * float64(len(R)) }},
		{"coverage", []int{0, 1, 2, 3}, func(R []int) float64 {
			// Weighted coverage: union of per-agent element sets.
			sets := [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
			w := []float64{3, 1, 4, 1.5}
			var have [4]bool
			for _, i := range R {
				for _, e := range sets[i] {
					have[e] = true
				}
			}
			var c float64
			for e, ok := range have {
				if ok {
					c += w[e]
				}
			}
			return c
		}},
	}
	for _, g := range games {
		exact := NewShapley(g.agents, g.cost).Shares(g.agents)
		for _, samples := range []int{200, 2000} {
			for seed := int64(1); seed <= 3; seed++ {
				s, err := NewSampledShapley(g.agents, g.cost, samples, 1e-3, seed)
				if err != nil {
					t.Fatal(err)
				}
				approx, cert := s.SharesCert(g.agents)
				if cert.Samples != samples || cert.Delta != 1e-3 {
					t.Fatalf("%s: cert echoes wrong parameters: %+v", g.name, cert)
				}
				if cert.Epsilon <= 0 || math.IsInf(cert.Epsilon, 0) || math.IsNaN(cert.Epsilon) {
					t.Fatalf("%s: degenerate epsilon %g", g.name, cert.Epsilon)
				}
				if !boundedBy(exact, approx, cert.Epsilon) {
					t.Errorf("%s seed=%d m=%d: sampled shares exceed certified ε=%g (exact %v approx %v)",
						g.name, seed, samples, cert.Epsilon, exact, approx)
				}
			}
		}
	}
}

// TestSampledShapleyCertificateNotVacuous pins that the bound check can
// fail at all: an intentionally undersampled run judged against a
// certificate whose ε was shrunk far below what its sample budget
// supports must violate the bound. If this "lying certificate" passes,
// the statistical test above is vacuous and proves nothing.
func TestSampledShapleyCertificateNotVacuous(t *testing.T) {
	agents := []int{0, 1, 2, 3, 4}
	cost := airportCost([]float64{1, 2, 3, 4, 5})
	exact := NewShapley(agents, cost).Shares(agents)
	failed := false
	for seed := int64(1); seed <= 10; seed++ {
		s, err := NewSampledShapley(agents, cost, 3, 1e-3, seed)
		if err != nil {
			t.Fatal(err)
		}
		approx, cert := s.SharesCert(agents)
		if !boundedBy(exact, approx, cert.Epsilon/200) {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("a 200x-shrunk certificate passed the bound check on every seed; the statistical test is vacuous")
	}
}

// TestSampledShapleyDeterministic pins byte-reproducibility: equal
// (seed, samples, R) must reproduce bit-equal shares regardless of call
// order or instance, which is what the serving cache key relies on.
func TestSampledShapleyDeterministic(t *testing.T) {
	agents := []int{2, 5, 7, 11}
	cost := airportCost([]float64{0, 0, 1, 0, 0, 2, 0, 5, 0, 0, 0, 4})
	a, _ := NewSampledShapley(agents, cost, 50, 0.05, 42)
	b, _ := NewSampledShapley(agents, cost, 50, 0.05, 42)
	// Warm b with a different subset first: the shared memo must not
	// perturb the permutation stream.
	b.Shares([]int{2, 5})
	s1, c1 := a.SharesCert(agents)
	s2, c2 := b.SharesCert(agents)
	if c1 != c2 {
		t.Fatalf("certificates differ: %+v vs %+v", c1, c2)
	}
	for i := range s1 {
		if math.Float64bits(s1[i]) != math.Float64bits(s2[i]) {
			t.Fatalf("share[%d] not bit-equal: %x vs %x", i, s1[i], s2[i])
		}
	}
	if a.Hits == 0 {
		t.Error("no memo hits across 50 permutations; prefix reuse is not happening")
	}
}

func TestSampledShapleyRejectsBadParameters(t *testing.T) {
	cost := func(R []int) float64 { return float64(len(R)) }
	if _, err := NewSampledShapley([]int{0}, cost, 0, 0.1, 1); err == nil {
		t.Error("samples=0 accepted")
	}
	if _, err := NewSampledShapley([]int{0}, cost, 10, 0, 1); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := NewSampledShapley([]int{0}, cost, 10, 1, 1); err == nil {
		t.Error("delta=1 accepted")
	}
	if _, err := NewSampledShapley([]int{0}, cost, 10, math.NaN(), 1); err == nil {
		t.Error("delta=NaN accepted")
	}
}

// TestShapleyAgentLimit is the regression test for the 64-agent mask
// overflow: the exact constructors must reject n > 63 with the typed
// error (historically bit 64 silently aliased), and the sampled tier —
// the documented fallback — must keep working at n = 65.
func TestShapleyAgentLimit(t *testing.T) {
	agents := make([]int, 65)
	for i := range agents {
		agents[i] = i
	}
	cost := func(R []int) float64 { return float64(len(R)) }

	_, err := NewShapleyChecked(agents, cost)
	var lim *AgentLimitError
	if !errors.As(err, &lim) {
		t.Fatalf("NewShapleyChecked(65 agents) = %v, want *AgentLimitError", err)
	}
	if lim.N != 65 || lim.Limit != ShapleyAgentLimit {
		t.Errorf("error reports N=%d Limit=%d, want 65/%d", lim.N, lim.Limit, ShapleyAgentLimit)
	}
	if _, err := NewIncrementalShapleyChecked(agents, cost); !errors.As(err, &lim) {
		t.Errorf("NewIncrementalShapleyChecked(65 agents) = %v, want *AgentLimitError", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewShapley(65 agents) did not panic")
			}
		}()
		NewShapley(agents, cost)
	}()

	// The sampled tier is the escape hatch: no universe cap, and on the
	// symmetric game its estimate is exactly 1 per agent (every marginal
	// is 1), so even a tiny budget is spot-on.
	s, err := NewSampledShapley(agents, cost, 5, 0.1, 7)
	if err != nil {
		t.Fatalf("sampled tier rejected 65 agents: %v", err)
	}
	shares, cert := s.SharesCert(agents)
	if len(shares) != 65 {
		t.Fatalf("got %d shares, want 65", len(shares))
	}
	for i, v := range shares {
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("share[%d] = %g want 1", i, v)
		}
	}
	if cert.Epsilon <= 0 {
		t.Errorf("cert epsilon %g", cert.Epsilon)
	}
}

// TestIncrementalShapleyMatchesExactBytes is the package-level
// differential: on oracles that are exactly null invariant, the
// incremental evaluator must reproduce Shapley.Shares bit for bit —
// across overlapping receiver sets, repeated calls, and null agents —
// while actually pruning oracle work.
func TestIncrementalShapleyMatchesExactBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(6)
		c := make([]float64, n)
		agents := make([]int, n)
		zeros := 0
		for i := range c {
			agents[i] = i
			if rng.Intn(3) > 0 {
				c[i] = 0.5 + math.Round(rng.Float64()*8)/2
			} else {
				zeros++ // exact zero singleton: a null agent
			}
		}
		cost := airportCost(c)
		exact := NewShapley(agents, cost)
		inc := NewIncrementalShapley(agents, cost)
		// A sequence of overlapping subsets, repeated, as Moulin–Shenker
		// rounds would produce.
		var queries [][]int
		queries = append(queries, agents)
		for q := 0; q < 6; q++ {
			var R []int
			for _, a := range agents {
				if rng.Intn(3) > 0 {
					R = append(R, a)
				}
			}
			queries = append(queries, R, R)
		}
		for _, R := range queries {
			want := exact.Shares(R)
			got := inc.Shares(R)
			if len(want) != len(got) {
				t.Fatalf("trial %d R=%v: %d shares vs %d", trial, R, len(got), len(want))
			}
			for i, w := range want {
				if math.Float64bits(got[i]) != math.Float64bits(w) {
					t.Fatalf("trial %d R=%v agent %d: %x (incremental) != %x (exact)",
						trial, R, i, math.Float64bits(got[i]), math.Float64bits(w))
				}
			}
		}
		if zeros > 0 && inc.Queries >= exactQueries(exact) {
			t.Errorf("trial %d: incremental made %d oracle calls, exact made %d — no pruning despite %d null agents",
				trial, inc.Queries, exactQueries(exact), zeros)
		}
		if inc.Queries > exactQueries(exact) {
			t.Errorf("trial %d: incremental made %d oracle calls, exact only %d",
				trial, inc.Queries, exactQueries(exact))
		}
	}
}

// exactQueries counts the distinct subsets the exact method evaluated.
func exactQueries(s *Shapley) int { return len(s.cache) }

// TestIncrementalShapleyCrossCallReuse pins the incremental claim
// itself: re-evaluating an already-seen receiver set must cost zero new
// oracle calls, and a subset of a seen set must only pay for its fresh
// subsets.
func TestIncrementalShapleyCrossCallReuse(t *testing.T) {
	agents := []int{0, 1, 2, 3, 4, 5}
	inc := NewIncrementalShapley(agents, airportCost([]float64{1, 2, 3, 4, 5, 6}))
	inc.Shares(agents)
	q0 := inc.Queries
	inc.Shares(agents)
	if inc.Queries != q0 {
		t.Errorf("repeat evaluation made %d fresh oracle calls", inc.Queries-q0)
	}
	inc.Shares([]int{0, 2, 4})
	if inc.Queries != q0 {
		t.Errorf("subset of a seen set made %d fresh oracle calls", inc.Queries-q0)
	}
}

// TestIncrementalShapleyNullAgentsPruned quantifies the submodular
// prune: with z exact-zero singletons in a k-set, the distinct oracle
// subsets collapse from 2^k−1 to 2^(k−z)−1.
func TestIncrementalShapleyNullAgentsPruned(t *testing.T) {
	c := []float64{3, 0, 5, 0, 0, 2, 1, 0} // four null agents
	agents := []int{0, 1, 2, 3, 4, 5, 6, 7}
	inc := NewIncrementalShapley(agents, airportCost(c))
	inc.Shares(agents)
	// 2^4−1 subsets of the nonzero sub-universe, plus one discovery call
	// per null singleton (the call that observes the exact zero).
	want := 1<<4 - 1 + 4
	if inc.Queries != want {
		t.Errorf("oracle calls = %d, want %d (2^4−1 + 4 discoveries)", inc.Queries, want)
	}
	// And the shares still match the exact method bit for bit.
	want2 := NewShapley(agents, airportCost(c)).Shares(agents)
	got := inc.Shares(agents)
	keys := make([]int, 0, len(want2))
	for i := range want2 {
		keys = append(keys, i)
	}
	sort.Ints(keys)
	for _, i := range keys {
		if math.Float64bits(got[i]) != math.Float64bits(want2[i]) {
			t.Fatalf("agent %d: %g != %g", i, got[i], want2[i])
		}
	}
}
