package sharing

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"wmcs/internal/engine"
)

// This file is the parallel tier of the sharing package (DESIGN.md §14):
// the exact 2^k enumeration and the sampled permutation walk, restated as
// order-stable reductions over a *fixed* partition of the work. The
// partition never depends on the worker count — width only decides how
// many partition cells run concurrently — so the bytes produced at width
// 1 and width N are identical by construction. The price of that
// property is that the parallel tier is a *different* reduction shape
// from the historical serial one (per-block partial sums folded in block
// order, per-stream permutation generators instead of one stream), so
// its low bits are not those of Shapley.Shares/SampledShapley.SharesCert
// — callers opt in, and once in, stay deterministic at any width.

// shapleyBlockBits bounds the number of enumeration blocks the exact
// parallel method partitions 2^k subsets into: 2^min(k,shapleyBlockBits)
// contiguous blocks. 64 blocks keeps the fixed merge cheap while leaving
// enough cells to feed any realistic pool width; the count is a function
// of k alone, never of the pool, which is what makes the reduction
// width-stable.
const shapleyBlockBits = 6

// sampledStreams is the fixed number of permutation streams the sampled
// parallel method shards its samples into. Like the block count it is a
// constant, not the worker count: stream j always draws the same
// permutations from its own FNV(seed‖j‖R) generator, so the estimate is
// identical whether the streams run on one core or sixteen.
const sampledStreams = 8

// shapleyBlocks returns the fixed (blockCount, blockSize) partition of
// the 2^k local-mask space. blockSize·blockCount == 2^k exactly (both
// are powers of two).
func shapleyBlocks(k int) (count, size uint64) {
	bb := shapleyBlockBits
	if k < bb {
		bb = k
	}
	count = 1 << uint(bb)
	size = (uint64(1) << uint(k)) / count
	return count, size
}

// SharesParallel computes exact Shapley shares of R with the subset
// enumeration partitioned into the fixed blocks of shapleyBlocks and
// evaluated by the pool's workers. Phase 1 fills a flat cost table
// (one entry per local subset mask, each computed exactly once); phase 2
// accumulates one partial share vector per block and folds them in block
// order. A nil or width-1 pool runs the identical blocked reduction
// serially, so the result is byte-identical at every width.
//
// The cost oracle must be safe for concurrent calls when the pool is
// wider than 1 (the oracles in this repo are pure functions). Like
// Shares, the method panics for |R| > 20.
func (s *Shapley) SharesParallel(R []int, pool *engine.Pool) map[int]float64 {
	k := len(R)
	if k == 0 {
		return map[int]float64{}
	}
	if k > 20 {
		panic(fmt.Sprintf("sharing: Shapley.SharesParallel limited to 20 agents, got %d", k))
	}
	local := make([]uint64, k) // local[i] = universe mask bit of R[i]
	for i, a := range R {
		b, ok := s.bit[a]
		if !ok {
			panic(fmt.Sprintf("sharing: agent %d not in universe", a))
		}
		local[i] = 1 << b
	}
	nBlocks, blockSize := shapleyBlocks(k)

	// Phase 1: the subset-cost table, tab[lm] = C(Q(lm)) for every local
	// mask lm. Each entry is written by exactly one block task, and its
	// value depends only on the (deterministic) oracle — never on
	// scheduling. Warm entries come from the cross-call memo, which is
	// read-only for the duration of the parallel section.
	tab := make([]float64, uint64(1)<<uint(k))
	cold := len(s.cache) == 0 // no memo to consult — skip the per-mask probes
	engine.Map(pool, int(nBlocks), func(b int) struct{} {
		members := make([]int, 0, k)
		lo, hi := uint64(b)*blockSize, (uint64(b)+1)*blockSize
		for lm := lo; lm < hi; lm++ {
			if lm == 0 {
				continue // C(∅) = 0, tab already zero
			}
			var gm uint64
			for t := lm; t != 0; t &= t - 1 { // walk set bits only
				gm |= local[bits.TrailingZeros64(t)]
			}
			if !cold {
				if c, ok := s.cache[gm]; ok {
					tab[lm] = c
					continue
				}
			}
			members = members[:0]
			for t := gm; t != 0; t &= t - 1 {
				members = append(members, s.agents[bits.TrailingZeros64(t)])
			}
			tab[lm] = s.cost(members)
		}
		return struct{}{}
	})
	// Publish the misses back into the cross-call memo so later rounds
	// (Moulin–Shenker shrinks R between calls) reuse them. Serial, in
	// ascending mask order: deterministic content either way (the oracle
	// is a function), but keeping one writer keeps the map honest. On a
	// cold memo the map is pre-sized (lm↔gm is a bijection, so every
	// entry is fresh) and inserted without probes; rehash-free growth is
	// a measurable share of the whole call at k = 18.
	if cold {
		s.cache = make(map[uint64]float64, uint64(1)<<uint(k))
	}
	for lm := uint64(1); lm < uint64(1)<<uint(k); lm++ {
		var gm uint64
		for t := lm; t != 0; t &= t - 1 {
			gm |= local[bits.TrailingZeros64(t)]
		}
		if cold {
			s.cache[gm] = tab[lm]
		} else if _, ok := s.cache[gm]; !ok {
			s.cache[gm] = tab[lm]
		}
	}

	// Phase 2: per-block partial share vectors over the flat table.
	kf := s.fact[k]
	fullLM := (uint64(1) << uint(k)) - 1
	parts := engine.Map(pool, int(nBlocks), func(b int) []float64 {
		part := make([]float64, k)
		lo, hi := uint64(b)*blockSize, (uint64(b)+1)*blockSize
		for lm := lo; lm < hi; lm++ {
			qSize := bits.OnesCount64(lm)
			if qSize == k {
				continue
			}
			w := s.fact[qSize] * s.fact[k-qSize-1] / kf
			cq := tab[lm]
			for t := fullLM &^ lm; t != 0; t &= t - 1 { // i ∉ Q, ascending
				i := bits.TrailingZeros64(t)
				part[i] += w * (tab[lm|1<<uint(i)] - cq)
			}
		}
		return part
	})
	// Fixed-order merge: fold the partials in block order, then bind to
	// agent ids. The fold order is part of the determinism contract.
	sums := make([]float64, k)
	for _, part := range parts {
		for i := 0; i < k; i++ {
			sums[i] += part[i]
		}
	}
	shares := make(map[int]float64, k)
	for i, a := range R {
		shares[a] = sums[i]
	}
	return shares
}

// streamSeed derives stream j's generator seed: FNV-1a over the instance
// seed, the stream index, and the canonical receiver set. The leading
// 0xFF tag byte keeps the stream seeds disjoint from permSeed's domain
// (which starts with the raw little-endian seed).
func (s *SampledShapley) streamSeed(j int, sorted []int) int64 {
	h := fnv.New64a()
	var b [8]byte
	h.Write([]byte{0xFF})
	binary.LittleEndian.PutUint64(b[:], uint64(s.seed))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(j))
	h.Write(b[:])
	for _, a := range sorted {
		binary.LittleEndian.PutUint64(b[:], uint64(a))
		h.Write(b[:])
	}
	return int64(h.Sum64())
}

// streamSamples returns how many of the m samples stream j draws: the
// fixed balanced split m = Σ_j (m/S + [j < m mod S]).
func streamSamples(m, j int) int {
	n := m / sampledStreams
	if j < m%sampledStreams {
		n++
	}
	return n
}

// sampledStream is one stream's contribution to the parallel estimate.
type sampledStream struct {
	sums    []float64
	fresh   map[string]float64 // subset costs not in the shared memo
	queries int
	hits    int
}

// SharesCertParallel estimates the Shapley shares of R with the sample
// budget sharded across sampledStreams fixed permutation streams, each
// seeded by streamSeed(j, R), evaluated by the pool's workers and folded
// in stream order. The certificate is computed from (samples, delta,
// Δmax) exactly as SharesCert computes it, so it is identical at every
// width — and identical to the serial tier's certificate for the same
// inputs. The shares themselves come from a different (equally valid,
// equally deterministic) sample of permutations than SharesCert's single
// stream, so the two tiers' low bits differ; within the parallel tier,
// width never changes a byte.
//
// The cost oracle must be safe for concurrent calls when the pool is
// wider than 1. During the parallel section the shared memo is frozen
// (streams read it and record fresh costs privately); the fresh costs
// are folded back afterwards in stream order.
func (s *SampledShapley) SharesCertParallel(R []int, pool *engine.Pool) (map[int]float64, ApproxCert) {
	k := len(R)
	if k == 0 {
		return map[int]float64{}, ApproxCert{Samples: s.samples, Delta: s.delta}
	}
	members := append([]int(nil), R...)
	sort.Ints(members)

	// Δmax from the singleton costs, serially — same pass as SharesCert,
	// so the certificate matches the serial tier bit for bit. This also
	// warms the memo before it freezes for the streams.
	var dmax float64
	single := make([]int, 1)
	for _, a := range members {
		single[0] = a
		if c := s.costOfSorted(single); c > dmax {
			dmax = c
		}
	}

	idx := make(map[int]int, k)
	for i, a := range members {
		idx[a] = i
	}
	streams := engine.Map(pool, sampledStreams, func(j int) *sampledStream {
		st := &sampledStream{sums: make([]float64, k), fresh: map[string]float64{}}
		n := streamSamples(s.samples, j)
		if n == 0 {
			return st
		}
		rng := rand.New(rand.NewSource(s.streamSeed(j, members)))
		perm := make([]int, k)
		prefix := make([]int, 0, k)
		for t := 0; t < n; t++ {
			copy(perm, members)
			rng.Shuffle(k, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			prefix = prefix[:0]
			prev := 0.0
			for _, a := range perm {
				at := sort.SearchInts(prefix, a)
				prefix = append(prefix, 0)
				copy(prefix[at+1:], prefix[at:])
				prefix[at] = a
				c := st.costOf(s, prefix)
				st.sums[idx[a]] += c - prev
				prev = c
			}
		}
		return st
	})
	// Fold the streams in stream order: sums, counters, then the fresh
	// memo entries. Duplicate fresh keys across streams carry the same
	// value (the oracle is a function), so the merged memo content is
	// deterministic too.
	sums := make([]float64, k)
	for _, st := range streams {
		for i := 0; i < k; i++ {
			sums[i] += st.sums[i]
		}
		s.Queries += st.queries
		s.Hits += st.hits
		for key, c := range st.fresh {
			s.cache[key] = c
		}
	}
	shares := make(map[int]float64, k)
	for i, a := range members {
		shares[a] = sums[i] / float64(s.samples)
	}
	eps := dmax * math.Sqrt(math.Log(2*float64(k)/s.delta)/(2*float64(s.samples)))
	return shares, ApproxCert{Samples: s.samples, Epsilon: eps, Delta: s.delta, DeltaMax: dmax}
}

// costOf is costOfSorted against the frozen shared memo with the
// stream's private overlay for fresh subsets.
func (st *sampledStream) costOf(s *SampledShapley, sorted []int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	key := subsetKey(sorted)
	if c, ok := s.cache[key]; ok {
		st.hits++
		return c
	}
	if c, ok := st.fresh[key]; ok {
		st.hits++
		return c
	}
	st.queries++
	c := s.cost(sorted)
	st.fresh[key] = c
	return c
}

// ParallelMethod adapts a *Shapley or *SampledShapley to the Method
// interface through its parallel tier, so Moulin–Shenker rounds and the
// mechanism wrappers evaluate every round at the pool's width.
type ParallelMethod struct {
	Exact   *Shapley        // exactly one of Exact/Sampled is set
	Sampled *SampledShapley //
	Pool    *engine.Pool
}

// Shares implements Method.
func (p *ParallelMethod) Shares(R []int) map[int]float64 {
	if p.Exact != nil {
		return p.Exact.SharesParallel(R, p.Pool)
	}
	shares, _ := p.Sampled.SharesCertParallel(R, p.Pool)
	return shares
}
