package sharing

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/engine"
	"wmcs/internal/mech"
)

// randSubmodularCost builds a deterministic non-decreasing submodular
// oracle: a coverage function over weighted ground elements.
func randSubmodularCost(n, ground int, seed int64) CostFunc {
	rng := rand.New(rand.NewSource(seed))
	covers := make([][]int, n)
	for i := range covers {
		m := 1 + rng.Intn(4)
		for j := 0; j < m; j++ {
			covers[i] = append(covers[i], rng.Intn(ground))
		}
	}
	wgt := make([]float64, ground)
	for i := range wgt {
		wgt[i] = 0.5 + rng.Float64()
	}
	return func(R []int) float64 {
		seen := make(map[int]bool)
		tot := 0.0
		for _, a := range R {
			for _, g := range covers[a] {
				if !seen[g] {
					seen[g] = true
					tot += wgt[g]
				}
			}
		}
		return tot
	}
}

func agentsUpto(n int) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	return a
}

// TestSharesParallelWidthInvariant is the core determinism contract:
// the blocked reduction produces bit-identical shares at width 1 and at
// every wider pool.
func TestSharesParallelWidthInvariant(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 7, 10, 13} {
		agents := agentsUpto(k)
		cost := randSubmodularCost(k, 3*k, int64(1000+k))
		want := NewShapley(agents, cost).SharesParallel(agents, engine.Serial())
		for _, width := range []int{2, 3, 4, 8, 16} {
			got := NewShapley(agents, cost).SharesParallel(agents, engine.New(width))
			if len(got) != len(want) {
				t.Fatalf("k=%d width=%d: %d shares, want %d", k, width, len(got), len(want))
			}
			for a, v := range want {
				if got[a] != v {
					t.Fatalf("k=%d width=%d agent %d: %v != %v (bitwise)", k, width, a, got[a], v)
				}
			}
		}
	}
}

// TestSharesParallelMatchesSerial pins the parallel tier to the
// historical serial enumeration within float tolerance (the reduction
// shapes differ, so low bits may too).
func TestSharesParallelMatchesSerial(t *testing.T) {
	for _, k := range []int{1, 2, 4, 6, 9, 12} {
		agents := agentsUpto(k)
		cost := randSubmodularCost(k, 2*k+1, int64(77+k))
		serial := NewShapley(agents, cost).Shares(agents)
		par := NewShapley(agents, cost).SharesParallel(agents, engine.New(4))
		for a, v := range serial {
			if d := math.Abs(par[a] - v); d > 1e-9 {
				t.Fatalf("k=%d agent %d: parallel %v vs serial %v (diff %g)", k, a, par[a], v, d)
			}
		}
	}
}

// TestSharesParallelSubsetAndMemo exercises R ⊂ universe and verifies
// the cost table is folded back into the cross-call memo: a second call
// on a shrunken set must issue no fresh oracle calls.
func TestSharesParallelSubsetAndMemo(t *testing.T) {
	agents := agentsUpto(8)
	calls := 0
	base := randSubmodularCost(8, 12, 5)
	counting := func(R []int) float64 { calls++; return base(R) }
	s := NewShapley(agents, counting)
	pool := engine.New(4)
	R := []int{1, 2, 4, 5, 7}
	first := s.SharesParallel(R, pool)
	callsAfterFirst := calls
	if callsAfterFirst == 0 {
		t.Fatal("no oracle calls on a cold memo")
	}
	second := s.SharesParallel(R[:4], pool)
	if calls != callsAfterFirst {
		t.Fatalf("shrunken re-query issued %d fresh oracle calls, want 0", calls-callsAfterFirst)
	}
	if len(first) != 5 || len(second) != 4 {
		t.Fatalf("share counts %d/%d, want 5/4", len(first), len(second))
	}
	// And the blocked subset result matches the serial method bitwise-
	// tolerantly on the same instance.
	want := NewShapley(agents, base).Shares(R[:4])
	for a, v := range want {
		if d := math.Abs(second[a] - v); d > 1e-9 {
			t.Fatalf("agent %d: %v vs serial %v", a, second[a], v)
		}
	}
}

// TestSampledParallelWidthInvariant: the stream-sharded estimator is
// bitwise width-invariant, certificates included.
func TestSampledParallelWidthInvariant(t *testing.T) {
	agents := agentsUpto(9)
	cost := randSubmodularCost(9, 20, 42)
	mk := func() *SampledShapley {
		s, err := NewSampledShapley(agents, cost, 37, 0.05, 11)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	wantShares, wantCert := mk().SharesCertParallel(agents, engine.Serial())
	for _, width := range []int{2, 4, 8, 16} {
		got, cert := mk().SharesCertParallel(agents, engine.New(width))
		if cert != wantCert {
			t.Fatalf("width %d: cert %+v != %+v", width, cert, wantCert)
		}
		for a, v := range wantShares {
			if got[a] != v {
				t.Fatalf("width %d agent %d: %v != %v (bitwise)", width, a, got[a], v)
			}
		}
	}
}

// TestSampledParallelCertMatchesSerialTier: the certificate depends only
// on (samples, delta, Δmax), so the parallel tier's cert equals the
// serial tier's exactly even though the share estimates differ.
func TestSampledParallelCertMatchesSerialTier(t *testing.T) {
	agents := agentsUpto(7)
	cost := randSubmodularCost(7, 15, 3)
	s1, _ := NewSampledShapley(agents, cost, 25, 0.1, 9)
	s2, _ := NewSampledShapley(agents, cost, 25, 0.1, 9)
	_, serialCert := s1.SharesCert(agents)
	_, parCert := s2.SharesCertParallel(agents, engine.New(4))
	if serialCert != parCert {
		t.Fatalf("parallel cert %+v != serial cert %+v", parCert, serialCert)
	}
}

// TestSampledParallelEstimateQuality: the sharded estimator still
// converges to the exact values (it is the same estimator over a
// different fixed sample of permutations).
func TestSampledParallelEstimateQuality(t *testing.T) {
	agents := agentsUpto(6)
	cost := randSubmodularCost(6, 10, 8)
	exact := NewShapley(agents, cost).Shares(agents)
	s, _ := NewSampledShapley(agents, cost, 4000, 0.05, 13)
	approx, cert := s.SharesCertParallel(agents, engine.New(4))
	for a, v := range exact {
		if d := math.Abs(approx[a] - v); d > cert.Epsilon {
			t.Fatalf("agent %d: |%v-%v| = %g exceeds ε=%g", a, approx[a], v, d, cert.Epsilon)
		}
	}
}

// TestSampledParallelCounters: Queries/Hits fold deterministically and
// the fresh costs land in the shared memo (a replay is all hits).
func TestSampledParallelCounters(t *testing.T) {
	agents := agentsUpto(6)
	cost := randSubmodularCost(6, 10, 21)
	s, _ := NewSampledShapley(agents, cost, 16, 0.1, 2)
	pool := engine.New(4)
	s.SharesCertParallel(agents, pool)
	q1 := s.Queries
	if q1 == 0 {
		t.Fatal("no oracle queries recorded")
	}
	s.SharesCertParallel(agents, pool)
	if s.Queries != q1 {
		t.Fatalf("replay issued %d fresh queries, want 0", s.Queries-q1)
	}
	// Determinism of the counters themselves across identical instances.
	s2, _ := NewSampledShapley(agents, cost, 16, 0.1, 2)
	s2.SharesCertParallel(agents, engine.New(2))
	if s2.Queries != q1 {
		t.Fatalf("query count %d differs across widths (want %d)", s2.Queries, q1)
	}
}

// TestMechanismFromMethodParallelTier: with a Pool the mechanism runs
// the parallel tiers end to end, and its exact outcome is width-stable.
func TestMechanismFromMethodParallelTier(t *testing.T) {
	agents := agentsUpto(8)
	cost := randSubmodularCost(8, 14, 31)
	u := make(mech.Profile, len(agents))
	rng := rand.New(rand.NewSource(4))
	for _, a := range agents {
		u[a] = rng.Float64() * 3
	}
	run := func(width int) mech.Outcome {
		m := &MechanismFromMethod{
			MechName: "par", AgentSet: agents,
			Xi: NewShapley(agents, cost), Cost: cost,
			Pool: engine.New(width),
		}
		return m.Run(u)
	}
	base := run(1)
	for _, width := range []int{2, 4, 8} {
		got := run(width)
		if len(got.Receivers) != len(base.Receivers) || got.Cost != base.Cost {
			t.Fatalf("width %d outcome drifted: %+v vs %+v", width, got, base)
		}
		for i, r := range base.Receivers {
			if got.Receivers[i] != r {
				t.Fatalf("width %d receivers %v vs %v", width, got.Receivers, base.Receivers)
			}
		}
		for a, v := range base.Shares {
			if got.Shares[a] != v {
				t.Fatalf("width %d share[%d] %v != %v", width, a, got.Shares[a], v)
			}
		}
	}
	// Approx tier through the mechanism wrapper, width-stable with cert.
	runA := func(width int) (mech.Outcome, mech.ApproxCert) {
		m := &MechanismFromMethod{
			MechName: "par", AgentSet: agents,
			Xi: NewShapley(agents, cost), Cost: cost,
			Pool: engine.New(width),
		}
		out, cert, err := m.RunApprox(u, mech.ApproxSpec{Samples: 33, Delta: 0.1, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return out, cert
	}
	aBase, cBase := runA(1)
	for _, width := range []int{2, 8} {
		got, cert := runA(width)
		if cert != cBase {
			t.Fatalf("width %d approx cert %+v != %+v", width, cert, cBase)
		}
		for a, v := range aBase.Shares {
			if got.Shares[a] != v {
				t.Fatalf("width %d approx share[%d] %v != %v", width, a, got.Shares[a], v)
			}
		}
	}
}
