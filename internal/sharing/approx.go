package sharing

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// This file implements the approximate Shapley tier: sampled-permutation
// estimation with an explicit Hoeffding certificate. The exact methods
// (NewShapley, NewIncrementalShapley) enumerate 2^k subsets and encode
// them as uint64 masks, which caps both the practical set size (~20) and
// the universe (ShapleyAgentLimit). The sampled tier has neither cap:
// subsets are keyed by canonical byte strings, and the work is m·k oracle
// calls for m sampled permutations — with a persistent subset-cost memo,
// so permutations sharing prefixes, repeated queries, and Moulin–Shenker
// rounds over overlapping receiver sets all reuse each other's
// evaluations.

// ApproxCert is the statistical guarantee attached to a sampled Shapley
// evaluation: with probability at least 1−Delta, every agent's reported
// share is within Epsilon of its exact Shapley value.
//
// The bound is Hoeffding's inequality union-bounded over the agents: a
// permutation marginal of a non-decreasing submodular cost lies in
// [0, Δmax] where Δmax = max_i C({i}) (submodularity makes the singleton
// marginal the largest), so the mean of m independent marginals deviates
// from its expectation — the exact Shapley value — by more than
//
//	ε = Δmax · sqrt(ln(2k/δ) / (2m))
//
// with probability at most δ/k per agent, hence at most δ overall.
type ApproxCert struct {
	Samples  int     // permutations drawn
	Epsilon  float64 // per-agent additive error bound
	Delta    float64 // probability the bound fails for some agent
	DeltaMax float64 // observed marginal range Δmax the bound used
}

// SampledShapley estimates Shapley shares by averaging marginal vectors
// over m uniformly random permutations, drawn from a deterministic
// seeded generator: equal (seed, samples, R) inputs reproduce equal
// bytes, which is what lets the serving layer cache approximate results
// under a canonical key. It implements Method; SharesCert additionally
// returns the (ε, δ) certificate.
type SampledShapley struct {
	agents  []int
	cost    CostFunc
	samples int
	delta   float64
	seed    int64
	cache   map[string]float64
	// Queries and Hits count oracle calls and memo hits.
	Queries, Hits int
}

// NewSampledShapley builds the sampled method: m permutation samples per
// evaluation, failure budget delta ∈ (0,1), and a seed pinning the
// permutation stream. Unlike the exact constructors there is no agent
// cap.
func NewSampledShapley(agents []int, cost CostFunc, samples int, delta float64, seed int64) (*SampledShapley, error) {
	if samples < 1 {
		return nil, fmt.Errorf("sharing: sampled Shapley needs at least 1 sample, got %d", samples)
	}
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("sharing: sampled Shapley delta must be in (0,1), got %g", delta)
	}
	s := &SampledShapley{
		agents:  append([]int(nil), agents...),
		cost:    cost,
		samples: samples,
		delta:   delta,
		seed:    seed,
		cache:   map[string]float64{},
	}
	sort.Ints(s.agents)
	return s, nil
}

// subsetKey encodes a sorted agent subset as a canonical byte string.
func subsetKey(sorted []int) string {
	buf := make([]byte, 0, 2*len(sorted)+2)
	for _, a := range sorted {
		buf = binary.AppendUvarint(buf, uint64(a))
	}
	return string(buf)
}

// costOfSorted returns C of a sorted subset, memoized across every
// evaluation this instance has performed.
func (s *SampledShapley) costOfSorted(sorted []int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	key := subsetKey(sorted)
	if c, ok := s.cache[key]; ok {
		s.Hits++
		return c
	}
	s.Queries++
	c := s.cost(sorted)
	s.cache[key] = c
	return c
}

// Shares implements Method.
func (s *SampledShapley) Shares(R []int) map[int]float64 {
	shares, _ := s.SharesCert(R)
	return shares
}

// SharesCert estimates the Shapley shares of R and returns the Hoeffding
// certificate of the estimate. The permutation stream is derived from
// the instance seed and the canonical members of R, so equal queries
// reproduce equal bytes regardless of call order.
func (s *SampledShapley) SharesCert(R []int) (map[int]float64, ApproxCert) {
	k := len(R)
	if k == 0 {
		return map[int]float64{}, ApproxCert{Samples: s.samples, Delta: s.delta}
	}
	members := append([]int(nil), R...)
	sort.Ints(members)

	// Δmax from the singleton costs (these warm the memo for the
	// permutation walks too).
	var dmax float64
	single := make([]int, 1)
	for _, a := range members {
		single[0] = a
		if c := s.costOfSorted(single); c > dmax {
			dmax = c
		}
	}

	rng := rand.New(rand.NewSource(s.permSeed(members)))
	sums := make([]float64, k)
	perm := make([]int, k)
	prefix := make([]int, 0, k)
	idx := make(map[int]int, k)
	for i, a := range members {
		idx[a] = i
	}
	for t := 0; t < s.samples; t++ {
		copy(perm, members)
		rng.Shuffle(k, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		prefix = prefix[:0]
		prev := 0.0
		for _, a := range perm {
			// Insert a into the sorted prefix.
			at := sort.SearchInts(prefix, a)
			prefix = append(prefix, 0)
			copy(prefix[at+1:], prefix[at:])
			prefix[at] = a
			c := s.costOfSorted(prefix)
			sums[idx[a]] += c - prev
			prev = c
		}
	}
	shares := make(map[int]float64, k)
	for i, a := range members {
		shares[a] = sums[i] / float64(s.samples)
	}
	eps := dmax * math.Sqrt(math.Log(2*float64(k)/s.delta)/(2*float64(s.samples)))
	return shares, ApproxCert{Samples: s.samples, Epsilon: eps, Delta: s.delta, DeltaMax: dmax}
}

// permSeed mixes the instance seed with the canonical receiver set.
func (s *SampledShapley) permSeed(sorted []int) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(s.seed))
	h.Write(b[:])
	for _, a := range sorted {
		binary.LittleEndian.PutUint64(b[:], uint64(a))
		h.Write(b[:])
	}
	return int64(h.Sum64())
}
