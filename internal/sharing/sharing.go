// Package sharing implements cost-sharing methods and the Moulin–Shenker
// mechanism template M(ξ) (§1.1 of the paper): a cost-sharing method ξ
// distributes C(R) among the members of R; if ξ is cross-monotonic then
// M(ξ) — iteratively dropping agents whose reported utility is below
// their current share — is budget balanced, group strategyproof and meets
// NPT, VP and CS [37,38]. The package provides an exact Shapley-value
// method for arbitrary cost oracles (≤ ~20 agents), property checkers for
// cross-monotonicity and submodularity, and the M(ξ) driver.
package sharing

import (
	"fmt"
	"math/rand"
	"sort"

	"wmcs/internal/engine"
	"wmcs/internal/mech"
)

// CostFunc is a cost oracle over agent subsets: C(R) with C(∅) = 0.
// Implementations must be symmetric in the order of R.
type CostFunc func(R []int) float64

// Method is a cost-sharing method ξ: Shares(R) distributes a cost among
// the members of R (agents outside R get no entry).
type Method interface {
	// Shares returns ξ(R, ·) for every member of R.
	Shares(R []int) map[int]float64
}

// MethodFunc adapts a function to the Method interface.
type MethodFunc func(R []int) map[int]float64

// Shares implements Method.
func (f MethodFunc) Shares(R []int) map[int]float64 { return f(R) }

// Shapley is the exact Shapley-value cost-sharing method for an arbitrary
// cost oracle, computed by subset enumeration with memoized cost queries:
//
//	φ(R, i) = Σ_{Q ⊆ R\{i}} |Q|!(|R|−|Q|−1)!/|R|! · (C(Q∪{i}) − C(Q)).
//
// For non-decreasing submodular C it is cross-monotonic and budget
// balanced [38,47]. Practical for |R| ≤ ~18.
type Shapley struct {
	agents []int
	bit    map[int]uint
	cost   CostFunc
	cache  map[uint64]float64
	fact   []float64
}

// ShapleyAgentLimit is the largest universe the exact Shapley method
// accepts: subsets are encoded as bits of a uint64 mask, so a 64th agent
// would silently alias the sign bit and corrupt the memo table.
const ShapleyAgentLimit = 63

// AgentLimitError reports a universe too large for an exact method's
// subset-mask representation. Callers that can degrade gracefully — the
// approximate tier, which has no mask and no limit — should match it
// with errors.As and route the request to NewSampledShapley instead.
type AgentLimitError struct {
	N     int // agents requested
	Limit int // hard cap of the representation
}

// Error implements error.
func (e *AgentLimitError) Error() string {
	return fmt.Sprintf("sharing: exact Shapley limited to %d agents, got %d (use the sampled tier)", e.Limit, e.N)
}

// NewShapleyChecked is NewShapley returning *AgentLimitError instead of
// panicking when the universe exceeds ShapleyAgentLimit. Historically the
// constructor accepted any size and the uint64 subset masks silently
// wrapped past 64 agents; the cap is now typed and enforced.
func NewShapleyChecked(agents []int, cost CostFunc) (*Shapley, error) {
	if len(agents) > ShapleyAgentLimit {
		return nil, &AgentLimitError{N: len(agents), Limit: ShapleyAgentLimit}
	}
	return NewShapley(agents, cost), nil
}

// NewShapley builds the method over a fixed agent universe (≤ 63 agents);
// it panics past the cap — use NewShapleyChecked to handle that as a
// typed error.
func NewShapley(agents []int, cost CostFunc) *Shapley {
	if len(agents) > ShapleyAgentLimit {
		panic((&AgentLimitError{N: len(agents), Limit: ShapleyAgentLimit}).Error())
	}
	s := &Shapley{
		agents: append([]int(nil), agents...),
		bit:    make(map[int]uint, len(agents)),
		cost:   cost,
		cache:  map[uint64]float64{},
		fact:   make([]float64, len(agents)+2),
	}
	sort.Ints(s.agents)
	for idx, a := range s.agents {
		s.bit[a] = uint(idx)
	}
	s.fact[0] = 1
	for i := 1; i < len(s.fact); i++ {
		s.fact[i] = s.fact[i-1] * float64(i)
	}
	return s
}

// costOf returns C of the subset encoded by mask, memoized.
func (s *Shapley) costOf(mask uint64) float64 {
	if mask == 0 {
		return 0
	}
	if c, ok := s.cache[mask]; ok {
		return c
	}
	var R []int
	for idx, a := range s.agents {
		if mask&(1<<uint(idx)) != 0 {
			R = append(R, a)
		}
	}
	c := s.cost(R)
	s.cache[mask] = c
	return c
}

// Shares implements Method. It panics if |R| > 20 (2^|R| enumeration).
func (s *Shapley) Shares(R []int) map[int]float64 {
	k := len(R)
	if k == 0 {
		return map[int]float64{}
	}
	if k > 20 {
		panic(fmt.Sprintf("sharing: Shapley.Shares limited to 20 agents, got %d", k))
	}
	// Local bit positions within R for subset enumeration.
	full := uint64(0)
	local := make([]uint64, k) // local[i] = universe mask bit of R[i]
	for i, a := range R {
		b, ok := s.bit[a]
		if !ok {
			panic(fmt.Sprintf("sharing: agent %d not in universe", a))
		}
		local[i] = 1 << b
		full |= local[i]
	}
	shares := make(map[int]float64, k)
	// Enumerate subsets Q of R by local mask; weight depends on |Q|.
	kf := s.fact[k]
	for lm := uint64(0); lm < 1<<uint(k); lm++ {
		var qMask uint64
		qSize := 0
		for i := 0; i < k; i++ {
			if lm&(1<<uint(i)) != 0 {
				qMask |= local[i]
				qSize++
			}
		}
		if qSize == k {
			continue
		}
		w := s.fact[qSize] * s.fact[k-qSize-1] / kf
		cq := s.costOf(qMask)
		for i := 0; i < k; i++ {
			if lm&(1<<uint(i)) != 0 {
				continue // i ∈ Q
			}
			marginal := s.costOf(qMask|local[i]) - cq
			shares[R[i]] += w * marginal
		}
	}
	return shares
}

// MoulinShenkerResult is the outcome of the M(ξ) iteration.
type MoulinShenkerResult struct {
	Receivers []int
	Shares    map[int]float64
	Rounds    int
}

// MoulinShenker runs the mechanism template M(ξ): start from all agents;
// while some agent's share exceeds its reported utility, drop all such
// agents and recompute. For cross-monotonic ξ the surviving set is the
// unique largest set where everyone can pay [37].
func MoulinShenker(agents []int, xi Method, u mech.Profile) MoulinShenkerResult {
	R := append([]int(nil), agents...)
	sort.Ints(R)
	rounds := 0
	for {
		rounds++
		shares := xi.Shares(R)
		var keep []int
		for _, i := range R {
			if u[i] >= shares[i]-mech.Eps {
				keep = append(keep, i)
			}
		}
		if len(keep) == len(R) {
			return MoulinShenkerResult{Receivers: R, Shares: shares, Rounds: rounds}
		}
		R = keep
		if len(R) == 0 {
			return MoulinShenkerResult{Receivers: nil, Shares: map[int]float64{}, Rounds: rounds}
		}
	}
}

// CheckCrossMonotone samples subset pairs Q ⊆ R of the agent set and
// verifies ξ(Q, i) ≥ ξ(R, i) for all i ∈ Q. Returns the first violation.
func CheckCrossMonotone(xi Method, agents []int, rng *rand.Rand, samples int, eps float64) error {
	n := len(agents)
	if n == 0 {
		return nil
	}
	for t := 0; t < samples; t++ {
		var R, Q []int
		for _, a := range agents {
			switch rng.Intn(3) {
			case 0: // in both
				R = append(R, a)
				Q = append(Q, a)
			case 1: // only in R
				R = append(R, a)
			}
		}
		if len(Q) == 0 || len(Q) == len(R) {
			continue
		}
		sr := xi.Shares(R)
		sq := xi.Shares(Q)
		for _, i := range Q {
			if sq[i] < sr[i]-eps {
				return fmt.Errorf("cross-monotonicity violated: agent %d pays %g in Q=%v but %g in R=%v",
					i, sq[i], Q, sr[i], R)
			}
		}
	}
	return nil
}

// CheckBudgetBalanced samples subsets and verifies Σ_i ξ(R, i) = C(R)
// within eps.
func CheckBudgetBalanced(xi Method, cost CostFunc, agents []int, rng *rand.Rand, samples int, eps float64) error {
	for t := 0; t < samples; t++ {
		var R []int
		for _, a := range agents {
			if rng.Intn(2) == 0 {
				R = append(R, a)
			}
		}
		if len(R) == 0 {
			continue
		}
		// Sum in sorted agent order: map iteration would perturb the float
		// low bits and could flip the eps comparison between runs.
		shares := xi.Shares(R)
		ids := make([]int, 0, len(shares))
		for i := range shares {
			ids = append(ids, i)
		}
		sort.Ints(ids)
		var tot float64
		for _, i := range ids {
			tot += shares[i]
		}
		if want := cost(R); tot < want-eps || tot > want+eps {
			return fmt.Errorf("budget balance violated on R=%v: shares %g, cost %g", R, tot, want)
		}
	}
	return nil
}

// CheckSubmodular samples subset pairs and verifies monotonicity
// (Q ⊆ R ⇒ C(Q) ≤ C(R)) and submodularity
// (C(Q∪R) + C(Q∩R) ≤ C(Q) + C(R)).
func CheckSubmodular(cost CostFunc, agents []int, rng *rand.Rand, samples int, eps float64) error {
	for t := 0; t < samples; t++ {
		var q, r []int
		var union, inter []int
		for _, a := range agents {
			inQ, inR := rng.Intn(2) == 0, rng.Intn(2) == 0
			if inQ {
				q = append(q, a)
			}
			if inR {
				r = append(r, a)
			}
			if inQ || inR {
				union = append(union, a)
			}
			if inQ && inR {
				inter = append(inter, a)
			}
		}
		cq, cr := cost(q), cost(r)
		cu, ci := cost(union), cost(inter)
		if cu+ci > cq+cr+eps {
			return fmt.Errorf("submodularity violated: C(Q∪R)+C(Q∩R)=%g > C(Q)+C(R)=%g (Q=%v R=%v)",
				cu+ci, cq+cr, q, r)
		}
		if ci > cq+eps || ci > cr+eps || cq > cu+eps || cr > cu+eps {
			return fmt.Errorf("monotonicity violated (Q=%v R=%v)", q, r)
		}
	}
	return nil
}

// MechanismFromMethod wraps M(ξ) as a mech.Mechanism with the given cost
// oracle determining the reported outcome cost C(R(u)).
type MechanismFromMethod struct {
	MechName string
	AgentSet []int
	Xi       Method
	Cost     CostFunc
	// Pool, when non-nil, routes every evaluation through the parallel
	// tier (DESIGN.md §14): exact Shapley methods run the blocked
	// SharesParallel reduction and the approximate tier runs the
	// stream-sharded SharesCertParallel. nil keeps the historical serial
	// paths byte-for-byte.
	Pool *engine.Pool
}

// xi returns the method the Moulin–Shenker rounds evaluate: Xi itself,
// or its parallel adapter when a pool is configured and Xi is the exact
// Shapley method (closed-form methods have nothing to parallelize).
func (m *MechanismFromMethod) xi() Method {
	if m.Pool != nil {
		if sh, ok := m.Xi.(*Shapley); ok {
			return &ParallelMethod{Exact: sh, Pool: m.Pool}
		}
	}
	return m.Xi
}

// Name implements mech.Mechanism.
func (m *MechanismFromMethod) Name() string { return m.MechName }

// Agents implements mech.Mechanism.
func (m *MechanismFromMethod) Agents() []int { return m.AgentSet }

// Run implements mech.Mechanism.
func (m *MechanismFromMethod) Run(u mech.Profile) mech.Outcome {
	res := MoulinShenker(m.AgentSet, m.xi(), u)
	return mech.Outcome{
		Receivers: res.Receivers,
		Shares:    res.Shares,
		Cost:      m.Cost(res.Receivers),
	}
}

// RunApprox implements mech.ApproxRunner: the same M(ξ) iteration with ξ
// replaced by the sampled-permutation Shapley estimator over the same
// cost oracle, plus the Hoeffding certificate of the final round's
// shares. The exact method m.Xi plays no part here — the tiers never
// mix — and the certificate speaks only for the surviving receiver set:
// with probability ≥ 1−δ each reported share is within ε of the exact
// Shapley share of that set.
func (m *MechanismFromMethod) RunApprox(u mech.Profile, spec mech.ApproxSpec) (mech.Outcome, mech.ApproxCert, error) {
	if err := spec.Validate(); err != nil {
		return mech.Outcome{}, mech.ApproxCert{}, err
	}
	s, err := NewSampledShapley(m.AgentSet, m.Cost, spec.Samples, spec.Delta, spec.Seed)
	if err != nil {
		return mech.Outcome{}, mech.ApproxCert{}, err
	}
	var res MoulinShenkerResult
	var cert ApproxCert
	if m.Pool != nil {
		// Parallel tier: every round — and the final certificate — runs
		// the stream-sharded estimator, which is deterministic at any
		// pool width (DESIGN.md §14).
		res = MoulinShenker(m.AgentSet, &ParallelMethod{Sampled: s, Pool: m.Pool}, u)
		_, cert = s.SharesCertParallel(res.Receivers, m.Pool)
	} else {
		res = MoulinShenker(m.AgentSet, s, u)
		// The final round's certificate: SharesCert on the surviving set
		// replays the identical permutation stream against a warm memo, so
		// this costs no fresh oracle calls.
		_, cert = s.SharesCert(res.Receivers)
	}
	return mech.Outcome{
		Receivers: res.Receivers,
		Shares:    res.Shares,
		Cost:      m.Cost(res.Receivers),
	}, mech.ApproxCert(cert), nil
}
