package sharing

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/mech"
)

// airportCost is the classic airport game: C(R) = max_{i∈R} c_i.
// It is non-decreasing and submodular; Shapley shares have the known
// closed form (runway increments split among larger players).
func airportCost(c []float64) CostFunc {
	return func(R []int) float64 {
		var m float64
		for _, i := range R {
			if c[i] > m {
				m = c[i]
			}
		}
		return m
	}
}

func TestShapleyAirportClosedForm(t *testing.T) {
	c := []float64{1, 2, 3}
	sh := NewShapley([]int{0, 1, 2}, airportCost(c))
	got := sh.Shares([]int{0, 1, 2})
	want := map[int]float64{0: 1.0 / 3, 1: 1.0/3 + 0.5, 2: 1.0/3 + 0.5 + 1}
	for i, w := range want {
		if math.Abs(got[i]-w) > 1e-9 {
			t.Errorf("share[%d] = %g want %g", i, got[i], w)
		}
	}
	var tot float64
	for _, v := range got {
		tot += v
	}
	if math.Abs(tot-3) > 1e-9 {
		t.Errorf("total = %g want C(R)=3", tot)
	}
}

func TestShapleySymmetricGame(t *testing.T) {
	cost := func(R []int) float64 { return float64(len(R)) }
	sh := NewShapley([]int{0, 1, 2, 3}, cost)
	got := sh.Shares([]int{0, 1, 2, 3})
	for i, v := range got {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("share[%d] = %g want 1", i, v)
		}
	}
}

func TestShapleyEmptyAndSubsets(t *testing.T) {
	sh := NewShapley([]int{3, 7}, func(R []int) float64 { return float64(len(R)) * 2 })
	if got := sh.Shares(nil); len(got) != 0 {
		t.Error("empty R should have no shares")
	}
	got := sh.Shares([]int{7})
	if math.Abs(got[7]-2) > 1e-9 {
		t.Errorf("singleton share = %g", got[7])
	}
}

func TestShapleyBudgetBalanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := make([]float64, 6)
	for i := range c {
		c[i] = rng.Float64() * 10
	}
	agents := []int{0, 1, 2, 3, 4, 5}
	sh := NewShapley(agents, airportCost(c))
	if err := CheckBudgetBalanced(sh, airportCost(c), agents, rng, 100, 1e-7); err != nil {
		t.Error(err)
	}
}

func TestShapleyCrossMonotoneOnSubmodular(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := make([]float64, 6)
	for i := range c {
		c[i] = rng.Float64() * 10
	}
	agents := []int{0, 1, 2, 3, 4, 5}
	sh := NewShapley(agents, airportCost(c))
	if err := CheckCrossMonotone(sh, agents, rng, 200, 1e-7); err != nil {
		t.Error(err)
	}
}

func TestCheckCrossMonotoneCatchesViolation(t *testing.T) {
	// Anti-monotone method: shares grow with the set, so a member of a
	// smaller Q pays less than in R ⊇ Q — the opposite of
	// cross-monotonicity's ξ(Q, i) ≥ ξ(R, i).
	bad := MethodFunc(func(R []int) map[int]float64 {
		out := map[int]float64{}
		for _, i := range R {
			out[i] = float64(len(R))
		}
		return out
	})
	rng := rand.New(rand.NewSource(7))
	if err := CheckCrossMonotone(bad, []int{0, 1, 2, 3}, rng, 200, 1e-9); err == nil {
		t.Error("violation missed")
	}
}

func TestCheckSubmodular(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	agents := []int{0, 1, 2, 3}
	if err := CheckSubmodular(airportCost([]float64{1, 2, 3, 4}), agents, rng, 200, 1e-9); err != nil {
		t.Errorf("airport game flagged: %v", err)
	}
	super := func(R []int) float64 { return float64(len(R) * len(R)) }
	if err := CheckSubmodular(super, agents, rng, 200, 1e-9); err == nil {
		t.Error("superadditive cost passed")
	}
	nonMono := func(R []int) float64 { return 5 - float64(len(R)) }
	if err := CheckSubmodular(nonMono, agents, rng, 200, 1e-9); err == nil {
		t.Error("non-monotone cost passed")
	}
}

func TestMoulinShenkerAirport(t *testing.T) {
	c := []float64{1, 2, 3}
	agents := []int{0, 1, 2}
	sh := NewShapley(agents, airportCost(c))
	u := mech.Profile{0.2, 1, 5}
	res := MoulinShenker(agents, sh, u)
	if len(res.Receivers) != 2 || res.Receivers[0] != 1 || res.Receivers[1] != 2 {
		t.Fatalf("receivers = %v", res.Receivers)
	}
	// On {1,2}: increments 2 shared by both (1 each), then 1 paid by 2.
	if math.Abs(res.Shares[1]-1) > 1e-9 || math.Abs(res.Shares[2]-2) > 1e-9 {
		t.Errorf("shares = %v", res.Shares)
	}
	if res.Rounds < 2 {
		t.Errorf("expected at least 2 rounds, got %d", res.Rounds)
	}
}

func TestMoulinShenkerAllDrop(t *testing.T) {
	c := []float64{5, 5}
	sh := NewShapley([]int{0, 1}, airportCost(c))
	res := MoulinShenker([]int{0, 1}, sh, mech.Profile{0.1, 0.1})
	if len(res.Receivers) != 0 {
		t.Errorf("receivers = %v", res.Receivers)
	}
}

func TestMechanismFromMethodAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := []float64{1, 2, 3, 4}
	agents := []int{0, 1, 2, 3}
	cost := airportCost(c)
	m := &MechanismFromMethod{
		MechName: "shapley-airport",
		AgentSet: agents,
		Xi:       NewShapley(agents, cost),
		Cost:     cost,
	}
	if m.Name() != "shapley-airport" || len(m.Agents()) != 4 {
		t.Fatal("metadata wrong")
	}
	for trial := 0; trial < 20; trial++ {
		u := mech.RandomProfile(rng, 4, 5)
		o := m.Run(u)
		if err := mech.CheckAll(u, o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Exact budget balance for Shapley on submodular C.
		if math.Abs(o.TotalShares()-o.Cost) > 1e-7 {
			t.Fatalf("trial %d: shares %g != cost %g", trial, o.TotalShares(), o.Cost)
		}
	}
	// Group strategyproofness (sampled): Moulin–Shenker with
	// cross-monotonic ξ is GSP [37].
	truth := mech.Profile{0.5, 1.5, 2.5, 3.5}
	if err := mech.CheckStrategyproof(m, truth, nil); err != nil {
		t.Error(err)
	}
	if err := mech.CheckGroupStrategyproof(m, truth, rng, 300, nil); err != nil {
		t.Error(err)
	}
	if err := mech.CheckCS(m, truth, 1e6); err != nil {
		t.Error(err)
	}
}

func TestShapleyPanicsOutsideUniverse(t *testing.T) {
	sh := NewShapley([]int{0, 1}, func(R []int) float64 { return 1 })
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sh.Shares([]int{5})
}

// Property: Shapley equals the average marginal contribution over all
// permutations (direct definition) on small random games.
func TestShapleyMatchesPermutationDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(4)
		// Random monotone cost: C(R) = max of random singleton values plus
		// a concave size term.
		vals := make([]float64, k)
		for i := range vals {
			vals[i] = rng.Float64() * 5
		}
		cost := func(R []int) float64 {
			var m float64
			for _, i := range R {
				if vals[i] > m {
					m = vals[i]
				}
			}
			return m + math.Sqrt(float64(len(R)))
		}
		agents := make([]int, k)
		for i := range agents {
			agents[i] = i
		}
		sh := NewShapley(agents, cost)
		got := sh.Shares(agents)
		// Permutation average.
		want := make([]float64, k)
		perm := make([]int, k)
		var rec func(depth int, used uint, count *int)
		nperm := 0
		rec = func(depth int, used uint, _ *int) {
			if depth == k {
				nperm++
				var pre []int
				for _, i := range perm {
					with := cost(append(pre, i))
					without := cost(pre)
					want[i] += with - without
					pre = append(pre, i)
				}
				return
			}
			for i := 0; i < k; i++ {
				if used&(1<<uint(i)) == 0 {
					perm[depth] = i
					rec(depth+1, used|1<<uint(i), nil)
				}
			}
		}
		rec(0, 0, nil)
		for i := 0; i < k; i++ {
			want[i] /= float64(nperm)
			if math.Abs(got[i]-want[i]) > 1e-7 {
				t.Fatalf("trial %d: share[%d] = %g want %g", trial, i, got[i], want[i])
			}
		}
	}
}
