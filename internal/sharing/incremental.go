package sharing

import (
	"fmt"
	"sort"
)

// Incremental is the marginal-vector ("incremental") cost-sharing method
// of Moulin–Shenker [37]: fix a priority order over the agents; each
// member of R pays its marginal cost with respect to the lower-priority
// members of R already counted:
//
//	ξ(R, i) = C({j ∈ R : j ⪯ i}) − C({j ∈ R : j ≺ i}).
//
// For non-decreasing submodular C the method is budget balanced and
// cross-monotonic (submodularity makes marginals shrink as sets grow), so
// M(ξ) is a group-strategyproof BB mechanism — but unlike the Shapley
// value it treats agents asymmetrically, and [38] proves the Shapley
// value uniquely minimizes the worst-case efficiency loss in this class.
// Ablation A4 measures that gap empirically.
type Incremental struct {
	order []int // agents by priority, highest first charged last
	pos   map[int]int
	cost  CostFunc
}

// NewIncremental builds the method for the given priority order (earlier
// agents are charged their marginal first).
func NewIncremental(order []int, cost CostFunc) *Incremental {
	inc := &Incremental{
		order: append([]int(nil), order...),
		pos:   make(map[int]int, len(order)),
		cost:  cost,
	}
	for i, a := range inc.order {
		inc.pos[a] = i
	}
	return inc
}

// Shares implements Method.
func (inc *Incremental) Shares(R []int) map[int]float64 {
	members := append([]int(nil), R...)
	sort.Slice(members, func(a, b int) bool { return inc.pos[members[a]] < inc.pos[members[b]] })
	shares := make(map[int]float64, len(members))
	prefix := make([]int, 0, len(members))
	prev := 0.0
	for _, i := range members {
		prefix = append(prefix, i)
		c := inc.cost(prefix)
		shares[i] = c - prev
		prev = c
	}
	return shares
}

// IncrementalShapley is the exact Shapley method of NewShapley with the
// cost-query side made incremental: one persistent memo table shared
// across every Shares call (Moulin–Shenker rounds, overlapping receiver
// sets, deviation probes all reuse each other's subset evaluations), and
// a null-agent canonicalization that exploits submodularity to prune
// cost queries whose answer cannot change.
//
// The canonicalization: once an agent's singleton cost is observed to be
// exactly +0, monotonicity and submodularity force C(Q ∪ {i}) = C(Q) for
// every Q, so the agent's bit is cleared from every subsequent cost query
// and its marginals — exactly zero — are never recomputed. Byte-identity
// with NewShapley therefore requires the oracle to be *exactly null
// invariant*: a zero-singleton agent must never perturb the returned
// float, not even in the last bit. Set-determined oracles built from the
// paper's cost models (tree weights, power maxima) have this property —
// adding a zero-power receiver changes no sum term — and the differential
// sweep in the tests pins it per mechanism; for an oracle without the
// property, use NewShapley.
//
// The enumeration itself — subset order, weight arithmetic, accumulation
// order — is kept identical to Shapley.Shares, so the produced shares are
// byte-identical, just cheaper: 2^k oracle sets shrink to 2^(k−z) for z
// null agents, and repeated/overlapping calls shrink to their fresh
// subsets only.
type IncrementalShapley struct {
	agents []int
	bit    map[int]uint
	cost   CostFunc
	cache  map[uint64]float64
	fact   []float64
	// zeroMask accumulates universe bits whose singleton cost was
	// observed to be exactly +0 — the null agents.
	zeroMask uint64
	// singletonSeen marks universe bits whose singleton cost has been
	// evaluated, so zeroMask only reflects observed facts.
	singletonSeen uint64
	// Queries and Hits count oracle calls and memo hits (observability:
	// the differential tests assert the pruning actually pruned).
	Queries, Hits int
}

// NewIncrementalShapley builds the incremental evaluator over a fixed
// agent universe. Like NewShapley it is capped at ShapleyAgentLimit
// agents; NewIncrementalShapleyChecked returns the typed error instead.
func NewIncrementalShapley(agents []int, cost CostFunc) *IncrementalShapley {
	s, err := NewIncrementalShapleyChecked(agents, cost)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// NewIncrementalShapleyChecked is NewIncrementalShapley with the agent
// cap reported as *AgentLimitError.
func NewIncrementalShapleyChecked(agents []int, cost CostFunc) (*IncrementalShapley, error) {
	if len(agents) > ShapleyAgentLimit {
		return nil, &AgentLimitError{N: len(agents), Limit: ShapleyAgentLimit}
	}
	s := &IncrementalShapley{
		agents: append([]int(nil), agents...),
		bit:    make(map[int]uint, len(agents)),
		cost:   cost,
		cache:  map[uint64]float64{},
		fact:   make([]float64, len(agents)+2),
	}
	sort.Ints(s.agents)
	for idx, a := range s.agents {
		s.bit[a] = uint(idx)
	}
	s.fact[0] = 1
	for i := 1; i < len(s.fact); i++ {
		s.fact[i] = s.fact[i-1] * float64(i)
	}
	return s, nil
}

// costOf returns C of the subset encoded by mask, canonicalized past
// known null agents and memoized.
func (s *IncrementalShapley) costOf(mask uint64) float64 {
	mask &^= s.zeroMask
	if mask == 0 {
		return 0
	}
	if c, ok := s.cache[mask]; ok {
		s.Hits++
		return c
	}
	var R []int
	for idx, a := range s.agents {
		if mask&(1<<uint(idx)) != 0 {
			R = append(R, a)
		}
	}
	s.Queries++
	c := s.cost(R)
	s.cache[mask] = c
	if len(R) == 1 {
		bit := uint64(1) << s.bit[R[0]]
		s.singletonSeen |= bit
		if c == 0 {
			s.zeroMask |= bit
		}
	}
	return c
}

// Shares implements Method, byte-identical to Shapley.Shares over an
// exactly null-invariant oracle. It panics if |R| > 20.
func (s *IncrementalShapley) Shares(R []int) map[int]float64 {
	k := len(R)
	if k == 0 {
		return map[int]float64{}
	}
	if k > 20 {
		panic(fmt.Sprintf("sharing: Shapley.Shares limited to 20 agents, got %d", k))
	}
	full := uint64(0)
	local := make([]uint64, k)
	for i, a := range R {
		b, ok := s.bit[a]
		if !ok {
			panic(fmt.Sprintf("sharing: agent %d not in universe", a))
		}
		local[i] = 1 << b
		full |= local[i]
	}
	// Seed the null set before enumerating: every singleton of R is
	// queried up front (the enumeration would reach each of them anyway,
	// so this adds no oracle calls), after which canonicalization covers
	// all of R's null agents, not just ones discovered mid-enumeration.
	for i := 0; i < k; i++ {
		s.costOf(local[i])
	}
	shares := make(map[int]float64, k)
	kf := s.fact[k]
	for lm := uint64(0); lm < 1<<uint(k); lm++ {
		var qMask uint64
		qSize := 0
		for i := 0; i < k; i++ {
			if lm&(1<<uint(i)) != 0 {
				qMask |= local[i]
				qSize++
			}
		}
		if qSize == k {
			continue
		}
		w := s.fact[qSize] * s.fact[k-qSize-1] / kf
		cq := s.costOf(qMask)
		for i := 0; i < k; i++ {
			if lm&(1<<uint(i)) != 0 {
				continue // i ∈ Q
			}
			if local[i]&s.zeroMask != 0 {
				// Null agent: marginal is exactly +0 and adding w·0 to a
				// nonnegative share is a bitwise no-op, so skipping the
				// accumulation preserves byte-identity.
				continue
			}
			marginal := s.costOf(qMask|local[i]) - cq
			shares[R[i]] += w * marginal
		}
	}
	// Null members still own their (exactly zero) entries in the result,
	// as they would under plain enumeration.
	for i := 0; i < k; i++ {
		if _, ok := shares[R[i]]; !ok {
			shares[R[i]] = 0
		}
	}
	return shares
}
