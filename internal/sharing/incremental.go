package sharing

import (
	"sort"
)

// Incremental is the marginal-vector ("incremental") cost-sharing method
// of Moulin–Shenker [37]: fix a priority order over the agents; each
// member of R pays its marginal cost with respect to the lower-priority
// members of R already counted:
//
//	ξ(R, i) = C({j ∈ R : j ⪯ i}) − C({j ∈ R : j ≺ i}).
//
// For non-decreasing submodular C the method is budget balanced and
// cross-monotonic (submodularity makes marginals shrink as sets grow), so
// M(ξ) is a group-strategyproof BB mechanism — but unlike the Shapley
// value it treats agents asymmetrically, and [38] proves the Shapley
// value uniquely minimizes the worst-case efficiency loss in this class.
// Ablation A4 measures that gap empirically.
type Incremental struct {
	order []int // agents by priority, highest first charged last
	pos   map[int]int
	cost  CostFunc
}

// NewIncremental builds the method for the given priority order (earlier
// agents are charged their marginal first).
func NewIncremental(order []int, cost CostFunc) *Incremental {
	inc := &Incremental{
		order: append([]int(nil), order...),
		pos:   make(map[int]int, len(order)),
		cost:  cost,
	}
	for i, a := range inc.order {
		inc.pos[a] = i
	}
	return inc
}

// Shares implements Method.
func (inc *Incremental) Shares(R []int) map[int]float64 {
	members := append([]int(nil), R...)
	sort.Slice(members, func(a, b int) bool { return inc.pos[members[a]] < inc.pos[members[b]] })
	shares := make(map[int]float64, len(members))
	prefix := make([]int, 0, len(members))
	prev := 0.0
	for _, i := range members {
		prefix = append(prefix, i)
		c := inc.cost(prefix)
		shares[i] = c - prev
		prev = c
	}
	return shares
}
