package cliutil

import (
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a,b,c", []string{"a", "b", "c"}},
		{" a , ,b,", []string{"a", "b"}},
		{"", nil},
		{"solo", []string{"solo"}},
	}
	for _, c := range cases {
		if got := SplitList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestOneOfAccepts(t *testing.T) {
	// The rejection path exits the process, so only the accept path is
	// unit-testable; cmd behavior is covered by the CI smoke script.
	if got := OneOf("mech", "b", []string{"a", "b"}); got != "b" {
		t.Fatalf("OneOf returned %q", got)
	}
}
