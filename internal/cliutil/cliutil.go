// Package cliutil centralizes the flag plumbing shared by the wmcs
// commands (wmcs, benchtab, wmcsd, wmcsload): strict argument parsing
// and uniform usage-style error exits. The contract every command keeps
// is: bad input — an unknown flag, a stray positional argument, an
// unknown mechanism/scenario/experiment name — produces a nonzero exit
// and a message pointing at -h, never partial output.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// prog is the invoked command's base name for message prefixes.
func prog() string { return filepath.Base(os.Args[0]) }

// Die prints "<prog>: <message>" plus a pointer to -h on stderr and
// exits 2 — the same code the flag package uses for unknown flags, so
// every bad-input path looks alike to callers and CI.
func Die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog(), fmt.Sprintf(format, args...))
	fmt.Fprintf(os.Stderr, "run '%s -h' for usage\n", prog())
	os.Exit(2)
}

// Parse wraps flag.Parse and then rejects stray positional arguments:
// the wmcs commands are flag-only, and a forgotten dash (e.g. `wmcs
// suite`) silently running the default action is exactly the partial
// output Die exists to prevent.
func Parse() {
	flag.Parse()
	if flag.NArg() > 0 {
		Die("unexpected argument %q (all options are flags)", flag.Arg(0))
	}
}

// OneOf validates that val is one of the valid names for the given flag
// and returns it; otherwise it dies listing the choices.
func OneOf(flagName, val string, valid []string) string {
	for _, v := range valid {
		if val == v {
			return val
		}
	}
	Die("unknown %s %q (have %s)", flagName, val, strings.Join(valid, ", "))
	return "" // unreachable
}

// SplitList splits a comma-separated flag value, trimming blanks and
// dropping empty fields.
func SplitList(csv string) []string {
	var out []string
	for _, f := range strings.Split(csv, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
