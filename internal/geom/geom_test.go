package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointOps(t *testing.T) {
	p := Point{1, 2, 3}
	q := Point{4, 6, 8}
	if got := p.Add(q); !got.Equal(Point{5, 8, 11}) {
		t.Errorf("Add = %v", got)
	}
	if got := q.Sub(p); !got.Equal(Point{3, 4, 5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); !got.Equal(Point{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if p.Dim() != 3 {
		t.Errorf("Dim = %d", p.Dim())
	}
	c := p.Clone()
	c[0] = 99
	if p[0] != 1 {
		t.Error("Clone aliases the original")
	}
	if p.Equal(Point{1, 2}) {
		t.Error("Equal must reject dimension mismatch")
	}
}

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0}, Point{3}, 3},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1, 1}, Point{1, 1, 1}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, c := range cases {
		if got := Dist(c.p, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Dist(%v,%v) = %g want %g", c.p, c.q, got, c.want)
		}
	}
}

func TestDistPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dist(Point{1}, Point{1, 2})
}

func TestNorm(t *testing.T) {
	if got := (Point{3, 4}).Norm(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm = %g", got)
	}
}

func TestPowerCost(t *testing.T) {
	pc := PowerCost{Alpha: 2, Kappa: 1}
	if got := pc.Cost(Point{0, 0}, Point{3, 4}); !almostEqual(got, 25, 1e-9) {
		t.Errorf("Cost = %g want 25", got)
	}
	pc = PowerCost{Alpha: 1, Kappa: 2}
	if got := pc.Cost(Point{0}, Point{5}); !almostEqual(got, 10, 1e-12) {
		t.Errorf("Cost = %g want 10", got)
	}
	if got := NewPowerCost(3).Kappa; got != 1 {
		t.Errorf("NewPowerCost kappa = %g", got)
	}
}

func TestRangeInvertsCostDist(t *testing.T) {
	f := func(alpha8, d8 uint8) bool {
		alpha := 1 + float64(alpha8%50)/10 // [1, 5.9]
		d := float64(d8)/16 + 0.01
		pc := PowerCost{Alpha: alpha, Kappa: 1}
		return almostEqual(pc.Range(pc.CostDist(d)), d, 1e-9*(1+d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRangeZeroPower(t *testing.T) {
	pc := NewPowerCost(2)
	if pc.Range(0) != 0 || pc.Range(-1) != 0 {
		t.Error("Range of nonpositive power must be 0")
	}
}

func TestCostMatrixSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := RandomCloud(rng, 7, 3, 10)
	m := NewPowerCost(2).CostMatrix(pts)
	n := len(pts)
	for i := 0; i < n; i++ {
		if m[i*n+i] != 0 {
			t.Errorf("diagonal entry %d nonzero", i)
		}
		for j := 0; j < n; j++ {
			if m[i*n+j] != m[j*n+i] {
				t.Errorf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestRandomCloudBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := RandomCloud(rng, 50, 2, 4)
	if len(pts) != 50 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if p.Dim() != 2 {
			t.Fatalf("dim = %d", p.Dim())
		}
		for _, v := range p {
			if v < 0 || v > 4 {
				t.Fatalf("coordinate %g out of [0,4]", v)
			}
		}
	}
}

func TestLine(t *testing.T) {
	pts := Line(0, 1.5, 4)
	if len(pts) != 3 || pts[1][0] != 1.5 {
		t.Errorf("Line = %v", pts)
	}
}

func TestCircle(t *testing.T) {
	pts := Circle(5, 2, 1, 1, 0)
	if len(pts) != 5 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if !almostEqual(Dist(p, Point{1, 1}), 2, 1e-9) {
			t.Errorf("point %v not on circle", p)
		}
	}
	// Adjacent points are equidistant.
	d01 := Dist(pts[0], pts[1])
	d12 := Dist(pts[1], pts[2])
	if !almostEqual(d01, d12, 1e-9) {
		t.Errorf("uneven spacing %g vs %g", d01, d12)
	}
}

func TestSegment(t *testing.T) {
	pts := Segment(Point{0, 0}, Point{5, 0}, 1)
	if len(pts) != 4 {
		t.Fatalf("want 4 interior points, got %d: %v", len(pts), pts)
	}
	for i, p := range pts {
		if !almostEqual(p[0], float64(i+1), 1e-9) || !almostEqual(p[1], 0, 1e-12) {
			t.Errorf("point %d = %v", i, p)
		}
	}
	if got := Segment(Point{0}, Point{0.5}, 1); got != nil {
		t.Errorf("short segment should be empty, got %v", got)
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2.5}).String(); got != "(1, 2.5)" {
		t.Errorf("String = %q", got)
	}
}
