// Package geom provides d-dimensional Euclidean geometry primitives for
// wireless network models: points, distances, and the power cost function
// c(x, y) = kappa * dist(x, y)^alpha used throughout the paper
// (Bilò et al., "Sharing the cost of multicast transmissions in wireless
// networks", TCS 369 (2006)).
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in d-dimensional Euclidean space. The dimension is
// the slice length; all points in one instance must share a dimension.
type Point []float64

// Dim returns the dimension of the point.
func (p Point) Dim() int { return len(p) }

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have the same coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Add returns p + q.
func (p Point) Add(q Point) Point {
	r := p.Clone()
	for i := range q {
		r[i] += q[i]
	}
	return r
}

// Sub returns p − q.
func (p Point) Sub(q Point) Point {
	r := p.Clone()
	for i := range q {
		r[i] -= q[i]
	}
	return r
}

// Scale returns s·p.
func (p Point) Scale(s float64) Point {
	r := p.Clone()
	for i := range r {
		r[i] *= s
	}
	return r
}

// Norm returns the Euclidean norm of p.
func (p Point) Norm() float64 {
	var s float64
	for _, v := range p {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders the point as "(x1, x2, …)".
func (p Point) String() string {
	s := "("
	for i, v := range p {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.4g", v)
	}
	return s + ")"
}

// Dist returns the Euclidean distance between p and q. It panics if the
// dimensions differ, since mixing dimensions is always a programming error.
func Dist(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// PowerCost is the standard power-attenuation cost model of the paper:
// the power needed to transmit from x to y is kappa · dist(x, y)^alpha,
// where alpha ≥ 1 is the distance-power gradient and kappa > 0 is the
// receiver detection threshold (usually normalized to 1).
type PowerCost struct {
	Alpha float64 // distance-power gradient, typically in [1, 6]
	Kappa float64 // detection threshold, typically 1
}

// NewPowerCost returns a PowerCost with the given gradient and threshold 1.
func NewPowerCost(alpha float64) PowerCost { return PowerCost{Alpha: alpha, Kappa: 1} }

// Cost returns kappa · dist(p, q)^alpha.
func (pc PowerCost) Cost(p, q Point) float64 {
	return pc.CostDist(Dist(p, q))
}

// CostDist returns kappa · d^alpha for a precomputed distance d.
func (pc PowerCost) CostDist(d float64) float64 {
	if pc.Alpha == 1 {
		return pc.Kappa * d
	}
	return pc.Kappa * math.Pow(d, pc.Alpha)
}

// Range returns the distance reachable with power w, the inverse of
// CostDist: the largest d with kappa·d^alpha ≤ w.
func (pc PowerCost) Range(w float64) float64 {
	if w <= 0 {
		return 0
	}
	if pc.Alpha == 1 {
		return w / pc.Kappa
	}
	return math.Pow(w/pc.Kappa, 1/pc.Alpha)
}

// CostMatrix returns the symmetric n×n matrix of pairwise transmission
// costs for the given points, as a flat row-major slice.
func (pc PowerCost) CostMatrix(pts []Point) []float64 {
	n := len(pts)
	m := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c := pc.Cost(pts[i], pts[j])
			m[i*n+j] = c
			m[j*n+i] = c
		}
	}
	return m
}

// RandomCloud returns n points drawn uniformly at random from the
// d-dimensional cube [0, side]^d using rng.
func RandomCloud(rng *rand.Rand, n, d int, side float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, d)
		for j := range p {
			p[j] = rng.Float64() * side
		}
		pts[i] = p
	}
	return pts
}

// Line returns n collinear points (dimension 1) at the given coordinates.
func Line(xs ...float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{x}
	}
	return pts
}

// Circle returns n points evenly spaced on the circle of the given radius
// centred at (cx, cy), starting at angle phase (radians). Dimension 2.
func Circle(n int, radius, cx, cy, phase float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		a := phase + 2*math.Pi*float64(i)/float64(n)
		pts[i] = Point{cx + radius*math.Cos(a), cy + radius*math.Sin(a)}
	}
	return pts
}

// Segment returns points spaced step apart along the segment from a to b,
// excluding both endpoints. It is used to build the relay chains of the
// Fig. 2 pentagon instance.
func Segment(a, b Point, step float64) []Point {
	d := Dist(a, b)
	if d <= step {
		return nil
	}
	dir := b.Sub(a).Scale(1 / d)
	var pts []Point
	for t := step; t < d-1e-9; t += step {
		pts = append(pts, a.Add(dir.Scale(t)))
	}
	return pts
}
