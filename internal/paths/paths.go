// Package paths implements shortest-path algorithms on the graph
// substrate: Dijkstra with an indexed heap, BFS, Floyd–Warshall, and
// metric closures. These back the Steiner approximations, the
// Jain–Vazirani moat mechanism, and the universal shortest-path trees.
package paths

import (
	"math"

	"wmcs/internal/graph"
)

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// Tree is a shortest-path tree: Dist[v] is the distance from the root and
// Parent[v] the predecessor on a shortest path (−1 for the root and for
// unreachable vertices).
type Tree struct {
	Root   int
	Dist   []float64
	Parent []int
}

// PathTo returns the vertices on the tree path from the root to v,
// inclusive, or nil if v is unreachable.
func (t *Tree) PathTo(v int) []int {
	if t.Dist[v] == Inf {
		return nil
	}
	var rev []int
	for x := v; x != -1; x = t.Parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Reachable reports whether v is reachable from the root.
func (t *Tree) Reachable(v int) bool { return t.Dist[v] < Inf }

// Workspace owns the per-call buffers of the shortest-path algorithms —
// the indexed heap, the visited mask and a Tree — so repeated queries on
// networks of (at most) the same size allocate nothing. A Workspace is
// not safe for concurrent use; give each goroutine its own.
//
// The *Tree returned by a Workspace method is owned by the workspace and
// valid only until its next call; callers that need to keep it must copy.
type Workspace struct {
	heap *graph.IndexHeap
	done []bool
	tree Tree
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace {
	return &Workspace{heap: graph.NewIndexHeap(0)}
}

// newWorkspaceN returns a workspace pre-sized for n vertices, so the
// one-shot entry points pay exactly one allocation per buffer (the same
// count as a hand-rolled run) instead of a grow cycle.
func newWorkspaceN(n int) *Workspace {
	return &Workspace{
		heap: graph.NewIndexHeap(n),
		done: make([]bool, n),
		tree: Tree{Dist: make([]float64, n), Parent: make([]int, n)},
	}
}

// begin resizes and clears the buffers for an n-vertex run from src, and
// returns the workspace tree ready for relaxation.
func (ws *Workspace) begin(n, src int) *Tree {
	ws.heap.Grow(n)
	ws.heap.Reset()
	if cap(ws.done) < n {
		ws.done = make([]bool, n)
	}
	ws.done = ws.done[:n]
	if cap(ws.tree.Dist) < n {
		ws.tree.Dist = make([]float64, n)
		ws.tree.Parent = make([]int, n)
	}
	ws.tree.Dist = ws.tree.Dist[:n]
	ws.tree.Parent = ws.tree.Parent[:n]
	for i := 0; i < n; i++ {
		ws.done[i] = false
		ws.tree.Dist[i] = Inf
		ws.tree.Parent[i] = -1
	}
	ws.tree.Root = src
	return &ws.tree
}

// Dijkstra computes a shortest-path tree from src on an undirected graph
// with nonnegative weights, reusing the workspace buffers.
func (ws *Workspace) Dijkstra(g *graph.Graph, src int) *Tree {
	t := ws.begin(g.N(), src)
	h, done := ws.heap, ws.done
	h.Push(src, 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if done[u] {
			continue
		}
		done[u] = true
		t.Dist[u] = du
		for _, e := range g.Neighbors(u) {
			if done[e.To] {
				continue
			}
			nd := du + e.W
			if nd < t.Dist[e.To] {
				t.Dist[e.To] = nd
				t.Parent[e.To] = u
				h.PushOrDecrease(e.To, nd)
			}
		}
	}
	return t
}

// DijkstraDigraph computes a shortest-path tree from src on a digraph with
// nonnegative arc weights, reusing the workspace buffers.
func (ws *Workspace) DijkstraDigraph(g *graph.Digraph, src int) *Tree {
	t := ws.begin(g.N(), src)
	h, done := ws.heap, ws.done
	h.Push(src, 0)
	for h.Len() > 0 {
		u, du := h.Pop()
		if done[u] {
			continue
		}
		done[u] = true
		t.Dist[u] = du
		for _, e := range g.Out(u) {
			if done[e.To] {
				continue
			}
			nd := du + e.W
			if nd < t.Dist[e.To] {
				t.Dist[e.To] = nd
				t.Parent[e.To] = u
				h.PushOrDecrease(e.To, nd)
			}
		}
	}
	return t
}

// DijkstraMatrix computes a shortest-path tree from src over the complete
// graph described by the symmetric cost matrix m, in O(n²) without a
// heap, reusing the workspace buffers.
func (ws *Workspace) DijkstraMatrix(m *graph.Matrix, src int) *Tree {
	n := m.N()
	t := ws.begin(n, src)
	done := ws.done
	t.Dist[src] = 0
	for iter := 0; iter < n; iter++ {
		u, best := -1, Inf
		for v := 0; v < n; v++ {
			if !done[v] && t.Dist[v] < best {
				u, best = v, t.Dist[v]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for v := 0; v < n; v++ {
			if done[v] || v == u {
				continue
			}
			nd := best + m.At(u, v)
			if nd < t.Dist[v] {
				t.Dist[v] = nd
				t.Parent[v] = u
			}
		}
	}
	return t
}

// Dijkstra computes a shortest-path tree from src on an undirected graph
// with nonnegative weights. The one-shot entry point; repeated queries
// should hold a Workspace instead.
func Dijkstra(g *graph.Graph, src int) *Tree {
	return newWorkspaceN(g.N()).Dijkstra(g, src)
}

// DijkstraDigraph computes a shortest-path tree from src on a digraph with
// nonnegative arc weights.
func DijkstraDigraph(g *graph.Digraph, src int) *Tree {
	return newWorkspaceN(g.N()).DijkstraDigraph(g, src)
}

// DijkstraMatrix computes a shortest-path tree from src over the complete
// graph described by the symmetric cost matrix m, in O(n²) without a heap.
// This is the right tool for the paper's complete cost graphs.
func DijkstraMatrix(m *graph.Matrix, src int) *Tree {
	return newWorkspaceN(m.N()).DijkstraMatrix(m, src)
}

// BFSDigraph returns the set of vertices reachable from src in the
// digraph, as a boolean mask, together with a BFS parent array and the BFS
// visit order. It is used both for multicast-feasibility checks and for
// the BFS numbering of the MEMT→NWST reduction.
func BFSDigraph(g *graph.Digraph, src int) (reach []bool, parent []int, order []int) {
	n := g.N()
	reach = make([]bool, n)
	parent = make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	queue := []int{src}
	reach[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range g.Out(u) {
			if !reach[e.To] {
				reach[e.To] = true
				parent[e.To] = u
				queue = append(queue, e.To)
			}
		}
	}
	return reach, parent, order
}

// BFS returns reachability, parents and visit order from src in an
// undirected graph, ignoring weights.
func BFS(g *graph.Graph, src int) (reach []bool, parent []int, order []int) {
	n := g.N()
	reach = make([]bool, n)
	parent = make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	queue := []int{src}
	reach[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range g.Neighbors(u) {
			if !reach[e.To] {
				reach[e.To] = true
				parent[e.To] = u
				queue = append(queue, e.To)
			}
		}
	}
	return reach, parent, order
}

// FloydWarshall returns the all-pairs shortest-path distance matrix of the
// undirected graph g. Unreachable pairs get Inf.
func FloydWarshall(g *graph.Graph) *graph.Matrix {
	n := g.N()
	d := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.SetAsym(i, j, Inf)
			}
		}
	}
	for _, e := range g.Edges() {
		if e.W < d.At(e.From, e.To) {
			d.Set(e.From, e.To, e.W)
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d.At(i, k)
			if dik == Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := dik + d.At(k, j); nd < d.At(i, j) {
					d.SetAsym(i, j, nd)
				}
			}
		}
	}
	return d
}

// MetricClosure runs Dijkstra from every vertex in terms and returns the
// |terms|×|terms| distance matrix between terminals plus the per-terminal
// shortest-path trees (indexed like terms). It is the workhorse of the
// Kou–Markowsky–Berman Steiner approximation and the moat mechanism.
func MetricClosure(g *graph.Graph, terms []int) (*graph.Matrix, []*Tree) {
	k := len(terms)
	d := graph.NewMatrix(k)
	trees := make([]*Tree, k)
	for i, t := range terms {
		trees[i] = Dijkstra(g, t)
		for j, u := range terms {
			if i != j {
				d.SetAsym(i, j, trees[i].Dist[u])
			}
		}
	}
	return d, trees
}
