// Package paths implements shortest-path algorithms on the graph
// substrate: Dijkstra with an indexed heap, BFS, Floyd–Warshall, and
// metric closures. These back the Steiner approximations, the
// Jain–Vazirani moat mechanism, and the universal shortest-path trees.
package paths

import (
	"math"

	"wmcs/internal/graph"
)

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// Tree is a shortest-path tree: Dist[v] is the distance from the root and
// Parent[v] the predecessor on a shortest path (−1 for the root and for
// unreachable vertices).
type Tree struct {
	Root   int
	Dist   []float64
	Parent []int
}

// PathTo returns the vertices on the tree path from the root to v,
// inclusive, or nil if v is unreachable.
func (t *Tree) PathTo(v int) []int {
	if t.Dist[v] == Inf {
		return nil
	}
	var rev []int
	for x := v; x != -1; x = t.Parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Reachable reports whether v is reachable from the root.
func (t *Tree) Reachable(v int) bool { return t.Dist[v] < Inf }

// Dijkstra computes a shortest-path tree from src on an undirected graph
// with nonnegative weights.
func Dijkstra(g *graph.Graph, src int) *Tree {
	n := g.N()
	t := newTree(n, src)
	h := graph.NewIndexHeap(n)
	h.Push(src, 0)
	done := make([]bool, n)
	for h.Len() > 0 {
		u, du := h.Pop()
		if done[u] {
			continue
		}
		done[u] = true
		t.Dist[u] = du
		for _, e := range g.Neighbors(u) {
			if done[e.To] {
				continue
			}
			nd := du + e.W
			if nd < t.Dist[e.To] {
				t.Dist[e.To] = nd
				t.Parent[e.To] = u
				h.PushOrDecrease(e.To, nd)
			}
		}
	}
	return t
}

// DijkstraDigraph computes a shortest-path tree from src on a digraph with
// nonnegative arc weights.
func DijkstraDigraph(g *graph.Digraph, src int) *Tree {
	n := g.N()
	t := newTree(n, src)
	h := graph.NewIndexHeap(n)
	h.Push(src, 0)
	done := make([]bool, n)
	for h.Len() > 0 {
		u, du := h.Pop()
		if done[u] {
			continue
		}
		done[u] = true
		t.Dist[u] = du
		for _, e := range g.Out(u) {
			if done[e.To] {
				continue
			}
			nd := du + e.W
			if nd < t.Dist[e.To] {
				t.Dist[e.To] = nd
				t.Parent[e.To] = u
				h.PushOrDecrease(e.To, nd)
			}
		}
	}
	return t
}

// DijkstraMatrix computes a shortest-path tree from src over the complete
// graph described by the symmetric cost matrix m, in O(n²) without a heap.
// This is the right tool for the paper's complete cost graphs.
func DijkstraMatrix(m *graph.Matrix, src int) *Tree {
	n := m.N()
	t := newTree(n, src)
	done := make([]bool, n)
	t.Dist[src] = 0
	for iter := 0; iter < n; iter++ {
		u, best := -1, Inf
		for v := 0; v < n; v++ {
			if !done[v] && t.Dist[v] < best {
				u, best = v, t.Dist[v]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for v := 0; v < n; v++ {
			if done[v] || v == u {
				continue
			}
			nd := best + m.At(u, v)
			if nd < t.Dist[v] {
				t.Dist[v] = nd
				t.Parent[v] = u
			}
		}
	}
	return t
}

func newTree(n, src int) *Tree {
	t := &Tree{Root: src, Dist: make([]float64, n), Parent: make([]int, n)}
	for i := range t.Dist {
		t.Dist[i] = Inf
		t.Parent[i] = -1
	}
	return t
}

// BFSDigraph returns the set of vertices reachable from src in the
// digraph, as a boolean mask, together with a BFS parent array and the BFS
// visit order. It is used both for multicast-feasibility checks and for
// the BFS numbering of the MEMT→NWST reduction.
func BFSDigraph(g *graph.Digraph, src int) (reach []bool, parent []int, order []int) {
	n := g.N()
	reach = make([]bool, n)
	parent = make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	queue := []int{src}
	reach[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range g.Out(u) {
			if !reach[e.To] {
				reach[e.To] = true
				parent[e.To] = u
				queue = append(queue, e.To)
			}
		}
	}
	return reach, parent, order
}

// BFS returns reachability, parents and visit order from src in an
// undirected graph, ignoring weights.
func BFS(g *graph.Graph, src int) (reach []bool, parent []int, order []int) {
	n := g.N()
	reach = make([]bool, n)
	parent = make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	queue := []int{src}
	reach[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range g.Neighbors(u) {
			if !reach[e.To] {
				reach[e.To] = true
				parent[e.To] = u
				queue = append(queue, e.To)
			}
		}
	}
	return reach, parent, order
}

// FloydWarshall returns the all-pairs shortest-path distance matrix of the
// undirected graph g. Unreachable pairs get Inf.
func FloydWarshall(g *graph.Graph) *graph.Matrix {
	n := g.N()
	d := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				d.SetAsym(i, j, Inf)
			}
		}
	}
	for _, e := range g.Edges() {
		if e.W < d.At(e.From, e.To) {
			d.Set(e.From, e.To, e.W)
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d.At(i, k)
			if dik == Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := dik + d.At(k, j); nd < d.At(i, j) {
					d.SetAsym(i, j, nd)
				}
			}
		}
	}
	return d
}

// MetricClosure runs Dijkstra from every vertex in terms and returns the
// |terms|×|terms| distance matrix between terminals plus the per-terminal
// shortest-path trees (indexed like terms). It is the workhorse of the
// Kou–Markowsky–Berman Steiner approximation and the moat mechanism.
func MetricClosure(g *graph.Graph, terms []int) (*graph.Matrix, []*Tree) {
	k := len(terms)
	d := graph.NewMatrix(k)
	trees := make([]*Tree, k)
	for i, t := range terms {
		trees[i] = Dijkstra(g, t)
		for j, u := range terms {
			if i != j {
				d.SetAsym(i, j, trees[i].Dist[u])
			}
		}
	}
	return d, trees
}
