package paths

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wmcs/internal/graph"
)

// Property: shortest-path distances satisfy the relaxation inequality
// d(s, v) ≤ d(s, u) + w(u, v) on every edge, and d(s, s) = 0.
func TestQuickDijkstraRelaxed(t *testing.T) {
	f := func(seed uint16, n8 uint8) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + int(n8)%10
		g := graph.New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(i, rng.Intn(i), rng.Float64()*5+0.01)
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, rng.Float64()*5+0.01)
			}
		}
		tr := Dijkstra(g, 0)
		if tr.Dist[0] != 0 {
			return false
		}
		for _, e := range g.Edges() {
			if tr.Dist[e.To] > tr.Dist[e.From]+e.W+1e-9 {
				return false
			}
			if tr.Dist[e.From] > tr.Dist[e.To]+e.W+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: every tree path's length equals the reported distance.
func TestQuickPathLengthsMatchDistances(t *testing.T) {
	f := func(seed uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 3 + rng.Intn(9)
		g := graph.New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(i, rng.Intn(i), rng.Float64()*5+0.01)
		}
		tr := Dijkstra(g, 0)
		for v := 0; v < n; v++ {
			path := tr.PathTo(v)
			var sum float64
			for i := 0; i+1 < len(path); i++ {
				// Find the cheapest edge between consecutive path nodes.
				best := 1e308
				for _, e := range g.Neighbors(path[i]) {
					if e.To == path[i+1] && e.W < best {
						best = e.W
					}
				}
				sum += best
			}
			if len(path) > 0 && (sum-tr.Dist[v] > 1e-9 || tr.Dist[v]-sum > 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
