package paths

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/graph"
)

// diamond builds the graph 0-1(1), 0-2(4), 1-2(2), 1-3(6), 2-3(3).
func diamond() *graph.Graph {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 4)
	g.AddEdge(1, 2, 2)
	g.AddEdge(1, 3, 6)
	g.AddEdge(2, 3, 3)
	return g
}

func TestDijkstraDiamond(t *testing.T) {
	tr := Dijkstra(diamond(), 0)
	want := []float64{0, 1, 3, 6}
	for v, w := range want {
		if tr.Dist[v] != w {
			t.Errorf("Dist[%d] = %g want %g", v, tr.Dist[v], w)
		}
	}
	if got := tr.PathTo(3); len(got) != 4 || got[0] != 0 || got[1] != 1 || got[2] != 2 || got[3] != 3 {
		t.Errorf("PathTo(3) = %v", got)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	tr := Dijkstra(g, 0)
	if tr.Reachable(2) {
		t.Error("vertex 2 should be unreachable")
	}
	if tr.PathTo(2) != nil {
		t.Error("PathTo unreachable should be nil")
	}
	if !tr.Reachable(1) || tr.Dist[1] != 1 {
		t.Error("vertex 1 should be reachable at distance 1")
	}
}

func TestDijkstraDigraph(t *testing.T) {
	g := graph.NewDigraph(4)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 1)
	g.AddArc(2, 3, 1)
	g.AddArc(3, 0, 1) // cycle back, irrelevant
	tr := DijkstraDigraph(g, 0)
	if tr.Dist[3] != 3 {
		t.Errorf("Dist[3] = %g", tr.Dist[3])
	}
	rev := DijkstraDigraph(g, 1)
	if rev.Dist[0] != 3 { // must go 1→2→3→0
		t.Errorf("directed distance wrong: %g", rev.Dist[0])
	}
}

// Property: Dijkstra on a random graph agrees with Floyd–Warshall.
func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(12)
		g := graph.New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(i, j, rng.Float64()*10)
				}
			}
		}
		fw := FloydWarshall(g)
		for s := 0; s < n; s++ {
			tr := Dijkstra(g, s)
			for v := 0; v < n; v++ {
				a, b := tr.Dist[v], fw.At(s, v)
				if math.IsInf(a, 1) != math.IsInf(b, 1) {
					t.Fatalf("trial %d: reachability mismatch s=%d v=%d", trial, s, v)
				}
				if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-9 {
					t.Fatalf("trial %d: dist mismatch s=%d v=%d: %g vs %g", trial, s, v, a, b)
				}
			}
		}
	}
}

// Property: DijkstraMatrix on a complete graph agrees with heap Dijkstra.
func TestDijkstraMatrixMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(15)
		m := graph.NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, 0.1+rng.Float64()*10)
			}
		}
		g := m.Complete()
		for s := 0; s < n; s++ {
			a := DijkstraMatrix(m, s)
			b := Dijkstra(g, s)
			for v := 0; v < n; v++ {
				if math.Abs(a.Dist[v]-b.Dist[v]) > 1e-9 {
					t.Fatalf("trial %d s=%d v=%d: %g vs %g", trial, s, v, a.Dist[v], b.Dist[v])
				}
			}
		}
	}
}

func TestBFSDigraph(t *testing.T) {
	g := graph.NewDigraph(5)
	g.AddArc(0, 1, 1)
	g.AddArc(0, 2, 1)
	g.AddArc(2, 3, 1)
	// 4 unreachable
	reach, parent, order := BFSDigraph(g, 0)
	if !reach[0] || !reach[1] || !reach[2] || !reach[3] || reach[4] {
		t.Errorf("reach = %v", reach)
	}
	if parent[3] != 2 || parent[0] != -1 {
		t.Errorf("parent = %v", parent)
	}
	if len(order) != 4 || order[0] != 0 {
		t.Errorf("order = %v", order)
	}
	// BFS order property: parents appear before children.
	pos := map[int]int{}
	for i, v := range order {
		pos[v] = i
	}
	for _, v := range order {
		if p := parent[v]; p >= 0 && pos[p] >= pos[v] {
			t.Errorf("parent %d after child %d", p, v)
		}
	}
}

func TestBFSUndirected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 5)
	reach, parent, order := BFS(g, 2)
	if !reach[0] || reach[3] {
		t.Errorf("reach = %v", reach)
	}
	if parent[0] != 1 {
		t.Errorf("parent = %v", parent)
	}
	if order[0] != 2 {
		t.Errorf("order = %v", order)
	}
}

func TestMetricClosure(t *testing.T) {
	g := diamond()
	terms := []int{0, 3}
	d, trees := MetricClosure(g, terms)
	if d.At(0, 1) != 6 || d.At(1, 0) != 6 {
		t.Errorf("closure dist = %g / %g", d.At(0, 1), d.At(1, 0))
	}
	if trees[0].Root != 0 || trees[1].Root != 3 {
		t.Error("tree roots wrong")
	}
	// Path between terminals goes through the cheap interior.
	p := trees[0].PathTo(3)
	if len(p) != 4 {
		t.Errorf("path = %v", p)
	}
}

func TestFloydWarshallParallelEdges(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 5)
	g.AddEdge(0, 1, 2) // parallel cheaper edge must win
	d := FloydWarshall(g)
	if d.At(0, 1) != 2 {
		t.Errorf("dist = %g", d.At(0, 1))
	}
}
