package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"wmcs/internal/lint"
)

// loader type-checks fixture packages from source. A fixture's imports
// resolve in two ways: a sibling fixture (a directory under
// testdata/src) is loaded recursively from source, and anything else —
// stdlib or real wmcs packages — goes through compiler export data
// obtained once per path from `go list -export`. That keeps fixtures
// free to import the packages whose types the analyzers match on
// (wmcs/internal/detorder, wmcs/internal/nwst, sync, time, math/rand)
// without this harness re-typechecking the transitive stdlib.
type loader struct {
	mu       sync.Mutex
	fset     *token.FileSet
	repoRoot string
	srcRoot  string
	exports  map[string]string // import path -> export data file
	gc       types.ImporterFrom
	units    map[string]*lint.Unit
	loading  map[string]bool
}

var sharedLoader = sync.OnceValue(newLoader)

func newLoader() *loader {
	root, err := findRepoRoot()
	if err != nil {
		panic("linttest: " + err.Error())
	}
	l := &loader{
		fset:     token.NewFileSet(),
		repoRoot: root,
		srcRoot:  filepath.Join(root, "internal", "lint", "testdata", "src"),
		exports:  make(map[string]string),
		units:    make(map[string]*lint.Unit),
		loading:  make(map[string]bool),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", l.lookup).(types.ImporterFrom)
	return l
}

// findRepoRoot walks up from the working directory (the package source
// dir under `go test`) to the directory holding go.mod.
func findRepoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// lookup feeds the gc importer the export data files ensureExports
// collected.
func (l *loader) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

func (l *loader) load(importPath string) (*lint.Unit, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.loadLocked(importPath)
}

func (l *loader) loadLocked(importPath string) (*lint.Unit, error) {
	if u, ok := l.units[importPath]; ok {
		return u, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("fixture import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := filepath.Join(l.srcRoot, filepath.FromSlash(importPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var imports []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			imports = append(imports, strings.Trim(imp.Path.Value, `"`))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	if err := l.ensureExports(imports); err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: fixtureImporter{l},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", importPath, err)
	}
	u := lint.NewUnit(l.fset, files, pkg, info, importPath)
	l.units[importPath] = u
	return u, nil
}

// ensureExports resolves export data files for every non-fixture import
// not yet known, in one `go list -export -deps` run from the repo root
// (-deps so the gc importer can follow indirect references).
func (l *loader) ensureExports(imports []string) error {
	var need []string
	seen := make(map[string]bool)
	for _, p := range imports {
		if p == "unsafe" || seen[p] || l.exports[p] != "" || l.isFixture(p) {
			continue
		}
		seen[p] = true
		need = append(need, p)
	}
	if len(need) == 0 {
		return nil
	}
	args := append([]string{"list", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}"}, need...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.repoRoot
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return fmt.Errorf("go list -export %v: %v\n%s", need, err, ee.Stderr)
		}
		return fmt.Errorf("go list -export %v: %v", need, err)
	}
	for _, line := range strings.Split(string(out), "\n") {
		ip, exp, ok := strings.Cut(line, "\t")
		if ok && exp != "" {
			l.exports[ip] = exp
		}
	}
	return nil
}

func (l *loader) isFixture(path string) bool {
	st, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// fixtureImporter routes imports during a fixture typecheck: sibling
// fixtures from source, everything else through export data. It runs
// inside loadLocked, so recursive loads stay under the loader's lock.
type fixtureImporter struct{ l *loader }

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	return fi.ImportFrom(path, "", 0)
}

func (fi fixtureImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if fi.l.isFixture(path) {
		u, err := fi.l.loadLocked(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return fi.l.gc.ImportFrom(path, dir, mode)
}
