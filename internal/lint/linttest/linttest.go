// Package linttest is the fixture harness for the internal/lint
// analyzers — a stdlib-only equivalent of
// golang.org/x/tools/go/analysis/analysistest. A test points Run at a
// fixture package under internal/lint/testdata/src/<importpath>; the
// harness type-checks it from source (resolving imports against the
// testdata tree first, then the wmcs module, then GOROOT), runs one
// analyzer, and diffs the diagnostics against `// want "regexp"`
// comments in the fixture:
//
//	total += v // want `float accumulation`
//
// Every diagnostic must be matched by a want on its line and every
// want must fire; a line with neither is asserted clean. The loader is
// shared process-wide, so fixtures importing heavyweight repo packages
// (wmcs/internal/nwst) pay the source-typecheck once per test binary.
package linttest

import (
	"regexp"
	"strings"
	"testing"

	"wmcs/internal/lint"
)

// Run loads the fixture package at importPath and checks analyzer a's
// diagnostics against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, importPath string) {
	t.Helper()
	unit, err := sharedLoader().load(importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	diags := lint.Run(unit, []*lint.Analyzer{a})

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*wantExpect)
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := cutWant(c.Text)
				if !ok {
					continue
				}
				rx, err := regexp.Compile(text)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", unit.Fset.Position(c.Pos()), text, err)
				}
				p := unit.Fset.Position(c.Pos())
				k := key{p.Filename, p.Line}
				wants[k] = append(wants[k], &wantExpect{rx: rx, pos: p.String()})
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.met && w.rx.MatchString(d.Message) {
				w.met, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.met {
				t.Errorf("%s: want %q did not fire", w.pos, w.rx)
			}
		}
	}
}

type wantExpect struct {
	rx  *regexp.Regexp
	pos string
	met bool
}

// cutWant extracts the pattern from a `// want "rx"` or `// want `+
// "`rx`" comment, anywhere in the comment text (so it can trail code).
func cutWant(comment string) (string, bool) {
	_, rest, ok := strings.Cut(comment, "want ")
	if !ok {
		return "", false
	}
	rest = strings.TrimSpace(rest)
	if len(rest) < 2 {
		return "", false
	}
	quote := rest[0]
	if quote != '"' && quote != '`' {
		return "", false
	}
	end := strings.IndexByte(rest[1:], quote)
	if end < 0 {
		return "", false
	}
	return rest[1 : 1+end], true
}
