// Package detorderfix is the detorder analyzer fixture: map-range
// accumulations that must fire, and the ordered / order-erased /
// annotated shapes that must not.
package detorderfix

import (
	"sort"

	"wmcs/internal/detorder"
)

// FloatAccum folds floats in map iteration order — the canonical bug.
func FloatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation over map iteration`
	}
	return sum
}

// SelfFold is the spelled-out form of the same bug.
func SelfFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `float accumulation over map iteration`
	}
	return sum
}

// IntAccum is order-independent: integer addition commutes exactly.
func IntAccum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// LocalFloat accumulates into a variable that dies with the iteration
// body, so no order-dependent value escapes.
func LocalFloat(m map[string][]float64) int {
	var n int
	for _, vs := range m {
		var rowSum float64
		for _, v := range vs {
			rowSum += v
		}
		if rowSum > 0 {
			n++
		}
	}
	return n
}

// EscapingAppend returns a slice built in map iteration order.
func EscapingAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append order escapes this map iteration via "keys"`
	}
	return keys
}

// SortedAppend sorts the slice in the same block before anything reads
// it — the append order is erased, so this is clean.
func SortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Annotated carries a justified whole-loop directive on the range
// statement's line, covering the accumulation inside.
func Annotated(m map[string]float64) float64 {
	var sum float64
	//lint:detorder fixture: every addend is identical, so order cannot matter
	for _, v := range m {
		sum += v
	}
	return sum
}

// ViaHelper iterates the sorted view — the blessed pattern. The range
// target is an iterator function, not a map, so the analyzer never
// matches.
func ViaHelper(m map[string]float64) float64 {
	var sum float64
	for _, v := range detorder.Sorted(m) {
		sum += v
	}
	return sum
}

// ViaKeys walks detorder.Keys — a sorted slice, not a map.
func ViaKeys(m map[string]float64) []string {
	var out []string
	for _, k := range detorder.Keys(m) {
		out = append(out, k)
	}
	return out
}
