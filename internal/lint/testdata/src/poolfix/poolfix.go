// Package poolfix is the poolput analyzer fixture: pool checkouts with
// and without the deferred return, across both recognized pool types.
package poolfix

import (
	"sync"

	"wmcs/internal/nwst"
)

var bufs = sync.Pool{New: func() any { return new([]byte) }}

// Balanced is the contract: Get paired with a deferred Put.
func Balanced() int {
	b := bufs.Get().(*[]byte)
	defer bufs.Put(b)
	return len(*b)
}

// Leaky takes from the pool and never returns it.
func Leaky() int {
	b := bufs.Get().(*[]byte) // want `pool Get on bufs without a deferred bufs\.Put`
	return len(*b)
}

// NotDeferred puts the object back, but not via defer — a panic or an
// early return between Get and Put leaks it.
func NotDeferred(risky func()) int {
	b := bufs.Get().(*[]byte) // want `pool Get on bufs without a deferred bufs\.Put`
	risky()
	n := len(*b)
	bufs.Put(b)
	return n
}

// ClosurePut defers a closure containing the Put — the rebind-safe
// shape for objects reassigned after Get.
func ClosurePut() int {
	b := bufs.Get().(*[]byte)
	defer func() { bufs.Put(b) }()
	return len(*b)
}

// Transferred hands the object to the caller, who must return it; the
// ownership story rides on the annotation.
func Transferred() *[]byte {
	b := bufs.Get().(*[]byte) //lint:poolput fixture: ownership transfers to the caller, who Puts on release
	return b
}

// StateBalanced covers the second recognized pool type,
// nwst.StatePool.
func StateBalanced(p *nwst.StatePool, terminals []int, free []bool) {
	st := p.Get(terminals, free)
	defer p.Put(st)
}

// StateLeaky leaks from an nwst.StatePool.
func StateLeaky(p *nwst.StatePool, terminals []int, free []bool) *nwst.State {
	return p.Get(terminals, free) // want `pool Get on p without a deferred p\.Put`
}
