// Package noclockout is outside the deterministic set (its fixture
// import path is not under wmcs/internal/<deterministic>), so noclock
// must stay silent on wall-clock reads here — telemetry layers like
// serve and obs own the clock.
package noclockout

import "time"

// Stamp reads the wall clock, legitimately.
func Stamp() time.Time {
	return time.Now()
}

// Latency measures elapsed time, legitimately.
func Latency(start time.Time) time.Duration {
	return time.Since(start)
}
