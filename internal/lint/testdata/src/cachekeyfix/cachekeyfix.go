// Package cachekeyfix declares doubles of serve's CanonRequest and
// buildKey so the cachekey analyzer has an activation site: consumed
// fields (directly and through a helper) pass, an unkeyed exported
// field fires, and an annotated field names its other route.
package cachekeyfix

import "strconv"

// CanonRequest mirrors the serve struct shape the analyzer guards.
type CanonRequest struct {
	// Annotated enters the key outside buildKey, per its annotation.
	//lint:cachekey fixture: keyed by the entry prefix, not buildKey
	Annotated string
	Mechanism string
	Cells     int
	Forgotten string // want `field CanonRequest\.Forgotten is not consumed by buildKey`
	internal  string
}

func buildKey(c *CanonRequest) string {
	return c.Mechanism + "|" + cellsPart(c)
}

// cellsPart is reached transitively from buildKey, so the field it
// selects counts as consumed.
func cellsPart(c *CanonRequest) string {
	return strconv.Itoa(c.Cells)
}

// Touch keeps the unexported field referenced so the fixture compiles
// without a vet complaint about unused fields elsewhere.
func Touch(c *CanonRequest) string {
	return c.internal
}
