// Package noclockfix sits (by fixture import path) inside the
// deterministic set, so noclock polices it: wall-clock reads and
// global-source rand calls fire; seeded RNG discipline and annotated
// telemetry pass.
package noclockfix

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock — the canonical violation.
func Stamp() time.Time {
	return time.Now() // want `wall-clock time\.Now in deterministic package`
}

// Elapsed reads the clock twice over.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock time\.Since in deterministic package`
}

// GlobalDraw pulls from the process-wide source.
func GlobalDraw() float64 {
	return rand.Float64() // want `global rand\.Float64 draws from the process-wide source`
}

// SeededDraw is the repo's RNG discipline: a seeded *rand.Rand is a
// pure function of its seed. The constructor's New prefix and the
// method call (not a package selector) both pass.
func SeededDraw(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// AnnotatedStamp is telemetry that never reaches pinned output.
func AnnotatedStamp() time.Time {
	return time.Now() //lint:wallclock fixture: duration metadata only, never serialized into pinned bytes
}

// DurationType uses time for its types only — not a function
// reference, so never flagged.
func DurationType(d time.Duration) time.Duration {
	return d * 2
}
