package lint

import (
	"go/ast"
	"go/types"
)

// Cachekey is the structural guard on the serve cache-key contract
// (DESIGN.md §8): every exported field of the canonicalized request
// struct must be consumed by the cache-key writer. Adding a request
// field that changes evaluation without extending the key — the PR 6
// approx-tier hazard — would make two semantically different requests
// share a cache entry; with this analyzer the omission fails `go vet`.
//
// The analyzer activates in any package that declares both a struct
// type named CanonRequest and a function buildKey (in the tree that is
// exactly wmcs/internal/serve; the fixture suite declares doubles). A
// field is "consumed" when buildKey — or a package-level function it
// (transitively) calls — selects it off a CanonRequest value. Fields
// that enter the key by another route carry //lint:cachekey with the
// justification naming that route.
var Cachekey = &Analyzer{
	Name: "cachekey",
	Doc: "every exported field of serve's CanonRequest must be consumed " +
		"by buildKey or annotated with the route it takes into the key",
	Run: runCachekey,
}

const (
	canonStructName = "CanonRequest"
	keyWriterName   = "buildKey"
)

func runCachekey(pass *Pass) {
	var structDecl *ast.StructType
	var structPos map[string]ast.Node // field name -> field AST node
	var canonType types.Object
	funcs := make(map[string]*ast.FuncDecl)

	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil {
					funcs[d.Name.Name] = d
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || ts.Name.Name != canonStructName {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					structDecl = st
					canonType = pass.Info.Defs[ts.Name]
					structPos = make(map[string]ast.Node)
					for _, fld := range st.Fields.List {
						for _, name := range fld.Names {
							structPos[name.Name] = fld
						}
					}
				}
			}
		}
	}
	writer := funcs[keyWriterName]
	if structDecl == nil || writer == nil || canonType == nil {
		return
	}

	// Collect the fields selected off CanonRequest values in the key
	// writer and in every package-level function reachable from it.
	used := make(map[string]bool)
	visited := make(map[string]bool)
	var visit func(fn *ast.FuncDecl)
	visit = func(fn *ast.FuncDecl) {
		if visited[fn.Name.Name] || fn.Body == nil {
			return
		}
		visited[fn.Name.Name] = true
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel := pass.Info.Selections[n]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				recv := sel.Recv()
				if p, ok := recv.(*types.Pointer); ok {
					recv = p.Elem()
				}
				if named, ok := recv.(*types.Named); ok && named.Obj() == canonType {
					used[n.Sel.Name] = true
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if callee, ok := funcs[id.Name]; ok {
						visit(callee)
					}
				}
			}
			return true
		})
	}
	visit(writer)

	for _, fld := range structDecl.Fields.List {
		for _, name := range fld.Names {
			if !name.IsExported() || used[name.Name] {
				continue
			}
			pass.Reportf(fld.Pos(), "field %s.%s is not consumed by %s; extend the cache key or annotate //lint:cachekey with the field's route into the key", canonStructName, name.Name, keyWriterName)
		}
	}
}
