package lint

import (
	"go/ast"
	"go/types"
)

// Poolput requires that every checkout from a recognized object pool is
// returned by a deferred Put on every exit path of the function that
// took it: `x := p.Get(...)` must be matched by `defer p.Put(...)` (or
// a deferred closure containing the Put) on the same pool expression.
// A non-deferred Put is exactly the PR 8 InFlight bug class — a panic
// or early return between Get and Put leaks the object, and the
// differential sweeps only catch it if they happen to drive that path.
//
// Recognized pools: sync.Pool and wmcs/internal/nwst.StatePool (the
// obs trace pool and the lp.Workspace pool are sync.Pools and so
// covered). Ownership transfer — Get in a constructor whose caller
// releases elsewhere, as in obs.Tracer.Start — carries
// //lint:poolput <justification>.
var Poolput = &Analyzer{
	Name: "poolput",
	Doc: "requires a deferred Put for every sync.Pool / nwst.StatePool " +
		"Get, so pooled objects survive panics and early returns",
	Run: runPoolput,
}

// poolTypes maps (package path, type name) to the recognized pools.
var poolTypes = map[[2]string]bool{
	{"sync", "Pool"}:                    true,
	{"wmcs/internal/nwst", "StatePool"}: true,
}

func runPoolput(pass *Pass) {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Get" {
				return true
			}
			recvT := pass.Info.Types[sel.X].Type
			if !isPoolType(recvT) {
				return true
			}
			fn := enclosingFunc(stack)
			if fn == nil {
				// Get in a package-level initializer: nothing to defer
				// against; require an annotation.
				pass.Reportf(call.Pos(), "pool Get outside a function body; annotate //lint:poolput with the ownership story")
				return true
			}
			pool := types.ExprString(sel.X)
			if !hasDeferredPut(pass.Info, fn, pool) {
				pass.Reportf(call.Pos(), "pool Get on %s without a deferred %s.Put in the same function; defer the Put (or annotate //lint:poolput if ownership transfers)", pool, pool)
			}
			return true
		})
	}
}

func isPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return poolTypes[[2]string{obj.Pkg().Path(), obj.Name()}]
}

// enclosingFunc returns the body of the innermost enclosing function
// declaration or literal.
func enclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// hasDeferredPut reports whether body contains `defer <pool>.Put(...)`,
// directly or inside a deferred closure, where <pool> renders to the
// same expression string as the Get's receiver.
func hasDeferredPut(info *types.Info, body *ast.BlockStmt, pool string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		ds, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isPutOn(ds.Call, pool) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(ds.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isPutOn(call, pool) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isPutOn(call *ast.CallExpr, pool string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name := sel.Sel.Name; name != "Put" && name != "Release" {
		return false
	}
	return types.ExprString(sel.X) == pool
}
