package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"wmcs/internal/lint"
	"wmcs/internal/lint/linttest"
)

// The fixture tests pin non-vacuity for every analyzer: each fixture
// package contains `// want` lines that must fire AND allowlisted /
// annotated shapes that must stay silent (linttest fails on both
// missed wants and unexpected diagnostics).

func TestDetorderFixture(t *testing.T) {
	linttest.Run(t, lint.Detorder, "detorderfix")
}

func TestNoclockFixture(t *testing.T) {
	linttest.Run(t, lint.Noclock, "wmcs/internal/query/noclockfix")
}

// TestNoclockOutsideDeterministicSet loads a fixture full of wall-clock
// reads at an import path outside the deterministic set; the analyzer
// must not fire at all.
func TestNoclockOutsideDeterministicSet(t *testing.T) {
	linttest.Run(t, lint.Noclock, "noclockout")
}

func TestPoolputFixture(t *testing.T) {
	linttest.Run(t, lint.Poolput, "poolfix")
}

func TestCachekeyFixture(t *testing.T) {
	linttest.Run(t, lint.Cachekey, "cachekeyfix")
}

// TestDirectiveHygiene checks the grammar rules lint.Run enforces
// before any analyzer runs: unknown directive names and justification-
// free directives are themselves diagnostics.
func TestDirectiveHygiene(t *testing.T) {
	src := `package p

//lint:bogus some reason
var A = 1

//lint:detorder
var B = 2
`
	diags := runOnSource(t, src)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "unknown lint directive //lint:bogus") {
		t.Errorf("diag 0 = %v, want unknown-directive", diags[0])
	}
	if !strings.Contains(diags[1].Message, "//lint:detorder directive requires a justification") {
		t.Errorf("diag 1 = %v, want missing-justification", diags[1])
	}
	for _, d := range diags {
		if d.Analyzer != "lint" {
			t.Errorf("%v attributed to %q, want the framework name \"lint\"", d, d.Analyzer)
		}
	}
}

// TestUnitPathTrimsTestVariant pins the canonicalization the vet
// driver relies on: test-augmented compilations arrive as
// "path [path.test]" and must match the plain path for package-scoped
// rules (noclock's deterministic set, detorder's helper allowlist).
func TestUnitPathTrimsTestVariant(t *testing.T) {
	u := newUnit(t, "package p\n", "wmcs/internal/query [wmcs/internal/query.test]")
	if u.Path != "wmcs/internal/query" {
		t.Fatalf("Path = %q, want test-variant suffix trimmed", u.Path)
	}
}

// TestDeterministicPkg pins the path matching: whole segments only,
// subpackages included.
func TestDeterministicPkg(t *testing.T) {
	for path, want := range map[string]bool{
		"wmcs/internal/query":          true,
		"wmcs/internal/query/sub":      true,
		"wmcs/internal/nwst":           true,
		"wmcs/internal/serve":          false,
		"wmcs/internal/obs":            false,
		"wmcs/internal/queryx":         false, // prefix of a name is not the name
		"wmcs/cmd/benchtab":            false,
		"other/module/internal/query":  false,
		"wmcs/internal/mech/submodule": true,
	} {
		if got := lint.DeterministicPkg(path); got != want {
			t.Errorf("DeterministicPkg(%q) = %v, want %v", path, got, want)
		}
	}
}

func newUnit(t *testing.T, src, path string) *lint.Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return lint.NewUnit(fset, []*ast.File{f}, types.NewPackage(path, "p"), &types.Info{}, path)
}

// runOnSource runs the whole suite over a single-file package with no
// type information — enough for the directive-grammar checks, which
// fire before any analyzer consults types.
func runOnSource(t *testing.T, src string) []lint.Diagnostic {
	t.Helper()
	return lint.Run(newUnit(t, src, "p"), lint.All())
}
