// Package lint hosts wmcs's in-tree static analyzers (DESIGN.md §15):
// small go/ast + go/types checkers that turn the determinism, pooling,
// and cache-key contracts stated in prose into build failures. The
// suite is surfaced as cmd/wmcsvet, a `go vet -vettool` binary, so CI
// (and any local `go vet -vettool=$(pwd)/bin/wmcsvet ./...`) enforces
// the contracts on every package.
//
// # Annotation grammar
//
// A finding that is deliberate is silenced with a line directive:
//
//	//lint:<analyzer> <justification>
//
// placed on the flagged line or the line directly above it. The
// justification is mandatory — an empty one is itself a diagnostic —
// because the annotation is the documentation of *why* the contract
// does not apply (ownership transferred, telemetry that never reaches
// response bytes, ...). Analyzer names are the directive names:
// detorder, noclock (directive name "wallclock"), poolput, cachekey.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named contract checker. The shape deliberately
// mirrors golang.org/x/tools/go/analysis.Analyzer so the suite could
// be rehosted on the upstream framework without touching analyzer
// logic; the framework here is stdlib-only because the repo carries no
// module dependencies.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and is its directive
	// name (except noclock, whose directive is "wallclock" — the
	// annotation names the hazard, not the checker).
	Name string
	// Directive is the //lint:<name> tag that suppresses this
	// analyzer's diagnostics. Usually equal to Name.
	Directive string
	// Doc is the one-paragraph contract statement.
	Doc string
	// Run reports findings on one package via pass.Reportf.
	Run func(pass *Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the canonical import path under analysis (test-variant
	// suffixes trimmed).
	Path string

	unit *Unit
	sink func(Diagnostic)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A directive is one parsed //lint:<name> <justification> comment.
type directive struct {
	name          string
	justification string
	pos           token.Position
}

// A Unit is a type-checked package plus its parsed lint directives —
// the input shared by every analyzer. Both drivers (the vet-protocol
// one in internal/lint/driver and the source-loading test harness in
// internal/lint/linttest) reduce their loads to a Unit.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Path  string

	// directives indexes parsed //lint: comments by file and line.
	directives map[string]map[int]*directive
}

// NewUnit assembles a Unit and scans every file's comments for lint
// directives. path should be the canonical import path ("wmcs/..."
// style); any " [test-variant]" suffix is trimmed.
func NewUnit(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, path string) *Unit {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	u := &Unit{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
		Path:       path,
		directives: make(map[string]map[int]*directive),
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				name, just, _ := strings.Cut(text, " ")
				p := fset.Position(c.Pos())
				byLine := u.directives[p.Filename]
				if byLine == nil {
					byLine = make(map[int]*directive)
					u.directives[p.Filename] = byLine
				}
				byLine[p.Line] = &directive{
					name:          name,
					justification: strings.TrimSpace(just),
					pos:           p,
				}
			}
		}
	}
	return u
}

// Run applies the analyzers to the unit and returns their findings
// sorted by position. Before the analyzers proper, every directive with
// a missing justification is reported — the annotation grammar requires
// one, whichever analyzer it addresses.
func Run(u *Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	sink := func(d Diagnostic) { diags = append(diags, d) }

	known := make(map[string]bool)
	for _, a := range analyzers {
		known[a.directiveName()] = true
	}
	for _, byLine := range u.directives {
		for _, d := range byLine {
			switch {
			case !known[d.name]:
				sink(Diagnostic{
					Pos:      d.pos,
					Analyzer: "lint",
					Message:  fmt.Sprintf("unknown lint directive //lint:%s (have: cachekey, detorder, poolput, wallclock)", d.name),
				})
			case d.justification == "":
				sink(Diagnostic{
					Pos:      d.pos,
					Analyzer: "lint",
					Message:  fmt.Sprintf("//lint:%s directive requires a justification", d.name),
				})
			}
		}
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    u.Files,
			Pkg:      u.Pkg,
			Info:     u.Info,
			Path:     u.Path,
			unit:     u,
			sink:     sink,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

func (a *Analyzer) directiveName() string {
	if a.Directive != "" {
		return a.Directive
	}
	return a.Name
}

// Reportf records a finding at pos unless a matching, justified
// //lint: directive covers pos's line (same line or the line above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if d := p.directiveAt(position); d != nil && d.justification != "" {
		return
	}
	p.sink(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Suppressed reports whether a justified directive for this analyzer
// covers pos's line — used by analyzers that honor an annotation on an
// enclosing construct (detorder accepts one on the range statement's
// `for` line, covering the whole loop body).
func (p *Pass) Suppressed(pos token.Pos) bool {
	d := p.directiveAt(p.Fset.Position(pos))
	return d != nil && d.justification != ""
}

func (p *Pass) directiveAt(pos token.Position) *directive {
	byLine := p.unit.directives[pos.Filename]
	if byLine == nil {
		return nil
	}
	name := p.Analyzer.directiveName()
	if d := byLine[pos.Line]; d != nil && d.name == name {
		return d
	}
	if d := byLine[pos.Line-1]; d != nil && d.name == name {
		return d
	}
	return nil
}

// InTestFile reports whether pos lies in a _test.go file; analyzers
// skip those (the contracts govern shipped code, and tests legitimately
// probe order sensitivity, wall clocks, and leak paths).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// All returns the full analyzer suite, sorted by name. This is the set
// cmd/wmcsvet registers and DESIGN.md §15 documents.
func All() []*Analyzer {
	return []*Analyzer{Cachekey, Detorder, Noclock, Poolput}
}

// walkStack is ast.Inspect with an ancestor stack: fn receives each
// node along with its ancestors, outermost first. Returning false
// skips the node's children.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// rootObj resolves the variable object an lvalue-ish expression is
// anchored on: the object of an identifier, or the field object of a
// selector. Returns nil for anything else.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return rootObj(info, e.X)
	case *ast.StarExpr:
		return rootObj(info, e.X)
	}
	return nil
}

// within reports whether pos lies inside node's extent.
func within(node ast.Node, pos token.Pos) bool {
	return node.Pos() <= pos && pos < node.End()
}
