package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detorder flags range statements over maps whose body's visible effect
// depends on iteration order: accumulating into a float (exact float
// addition does not commute, so the sum's bits vary run to run) or
// appending to a slice declared outside the loop (the element order
// leaks to whatever consumes the slice — encoders especially).
//
// Order-erasing code passes without annotation: loops whose appended
// slice is sorted afterwards in the same block (sort.* / slices.*
// call naming the slice), and anything iterating via the allowlisted
// helpers in wmcs/internal/detorder — those range a sorted key slice,
// not the map, so they never match. Deliberate exceptions carry
// //lint:detorder <justification>.
var Detorder = &Analyzer{
	Name: "detorder",
	Doc: "flags map iteration whose float accumulation or append order " +
		"escapes the loop; pinned-order iteration goes through wmcs/internal/detorder",
	Run: runDetorder,
}

// detorderPkg is the allowlisted helper package: it is the one place
// allowed to turn a map into an ordered sequence, so the analyzer does
// not police it.
const detorderPkg = "wmcs/internal/detorder"

func runDetorder(pass *Pass) {
	if pass.Path == detorderPkg {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, stack)
			return true
		})
	}
}

// checkMapRange inspects one map-range body for order-dependent
// effects. stack holds rs's ancestors (for the sorted-afterwards
// check, which looks at the statements following rs in its block).
func checkMapRange(pass *Pass, rs *ast.RangeStmt, stack []ast.Node) {
	// An annotation on the `for` line covers the whole loop: some
	// bodies have several order-independent accumulations under one
	// argument (see jv's dual update).
	if pass.Suppressed(rs.Pos()) {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) == 1 && isFloat(pass.Info, as.Lhs[0]) && escapesLoop(pass.Info, as.Lhs[0], rs) {
				pass.Reportf(as.Pos(), "float accumulation over map iteration is order-dependent; iterate via %s or sort first", detorderPkg)
			}
		case token.ASSIGN:
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				rhs := as.Rhs[i]
				if isSelfFloatFold(pass.Info, lhs, rhs) && escapesLoop(pass.Info, lhs, rs) {
					pass.Reportf(as.Pos(), "float accumulation over map iteration is order-dependent; iterate via %s or sort first", detorderPkg)
					continue
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(pass.Info, call) && len(call.Args) > 0 {
					obj := rootObj(pass.Info, call.Args[0])
					if obj == nil || !escapeObj(obj, rs) {
						continue
					}
					if sortedAfterwards(pass.Info, obj, rs, stack) {
						continue
					}
					pass.Reportf(as.Pos(), "append order escapes this map iteration via %q; sort the slice in this block, or iterate via %s", obj.Name(), detorderPkg)
				}
			}
		}
		return true
	})
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isSelfFloatFold recognizes `x = x <op> y` (either operand side) with
// a float-typed x.
func isSelfFloatFold(info *types.Info, lhs, rhs ast.Expr) bool {
	bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	if !isFloat(info, lhs) {
		return false
	}
	obj := rootObj(info, lhs)
	if obj == nil {
		return false
	}
	return rootObj(info, bin.X) == obj || rootObj(info, bin.Y) == obj
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// escapesLoop reports whether e is anchored on a variable declared
// outside rs (so the order-dependent value survives the loop). Struct
// fields always escape: their declaration is the type, not the loop.
func escapesLoop(info *types.Info, e ast.Expr, rs *ast.RangeStmt) bool {
	obj := rootObj(info, e)
	return obj != nil && escapeObj(obj, rs)
}

func escapeObj(obj types.Object, rs *ast.RangeStmt) bool {
	return !within(rs, obj.Pos())
}

// sortedAfterwards reports whether a statement after rs in its
// enclosing block calls into package sort or slices with obj among the
// arguments — the append order is erased before anything can read it.
func sortedAfterwards(info *types.Info, obj types.Object, rs *ast.RangeStmt, stack []ast.Node) bool {
	var block *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
	}
	if block == nil {
		return false
	}
	for _, st := range block.List {
		if st.Pos() < rs.End() {
			continue
		}
		found := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "sort", "slices":
			default:
				return true
			}
			for _, arg := range call.Args {
				if rootObj(info, arg) == obj {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
