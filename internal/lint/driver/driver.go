// Package driver runs the lint analyzer suite under the `go vet
// -vettool` protocol, using only the standard library (the repo
// carries no module dependencies, so golang.org/x/tools/go/analysis is
// deliberately not imported; the Analyzer/Pass shapes in internal/lint
// mirror it instead).
//
// The protocol, as cmd/go speaks it: the tool must answer `-V=full`
// with a self-identifying version line (cmd/go hashes it into the
// build cache key), answer `-flags` with a JSON description of its
// analyzer flags (we have none: `[]`), and otherwise accept a single
// *.cfg argument — a JSON file describing one type-checked package:
// its Go files, the export-data file of every import, and where to
// write the "vetx" facts output. Diagnostics go to stderr and a
// nonzero exit fails `go vet`.
//
// Type information is recovered from the compiler's export data via
// go/importer's gc importer with a lookup function over the config's
// PackageFile map — the same data the unitchecker in x/tools reads.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"wmcs/internal/lint"
)

// vetConfig is the subset of cmd/go's vet configuration the driver
// consumes. Field names are fixed by the protocol.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoVersion   string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	// VetxOnly marks a dependency package analyzed only for facts.
	// The suite has no cross-package facts, so these are a no-op
	// beyond writing the (empty) facts file.
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the wmcsvet entry point: it never returns.
func Main(analyzers []*lint.Analyzer) {
	args := os.Args[1:]
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			printVersion()
			os.Exit(0)
		case a == "-flags":
			fmt.Println("[]")
			os.Exit(0)
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: %s vet.cfg (a `go vet -vettool` driver; see DESIGN.md §15)\n", progname())
		os.Exit(2)
	}
	diags, err := runConfig(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname(), err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	os.Exit(0)
}

func runConfig(path string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	// The facts file must exist for cmd/go to cache, even though the
	// suite publishes no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	// Dependencies come through as fact-only loads, and the standard
	// library is never ours to lint.
	if cfg.VetxOnly || cfg.Standard[cfg.ImportPath] {
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}
	lookup := func(p string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[p]; ok {
			p = mapped
		}
		file, ok := cfg.PackageFile[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(file)
	}
	goarch := runtime.GOARCH
	if env := os.Getenv("GOARCH"); env != "" {
		goarch = env
	}
	tcfg := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookup),
		Sizes:    types.SizesFor(cfg.Compiler, goarch),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}
	return lint.Run(lint.NewUnit(fset, files, pkg, info, cfg.ImportPath), analyzers), nil
}

func progname() string {
	return strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
}

// printVersion answers -V=full. cmd/go requires the first two fields
// to be the program name and the word "version", and mixes the rest
// into its action cache key — hashing the executable means a rebuilt
// wmcsvet (new analyzers, new allowlists) invalidates cached vet
// verdicts.
func printVersion() {
	h := sha256.New()
	if self, err := os.Executable(); err == nil {
		if f, err := os.Open(self); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version 1.0 buildID=%x\n", progname(), h.Sum(nil)[:16])
}
