package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Noclock bans ambient nondeterminism — wall-clock reads and the
// process-global math/rand source — in the deterministic packages: the
// layers whose outputs are pinned byte-for-byte by the differential
// sweeps (width-1 ≡ width-N, pooled ≡ fresh, serial ≡ parallel).
//
// Seeded constructors (rand.New, rand.NewSource, rand.NewPCG, ...) and
// methods on a *rand.Rand value are fine: given the seed they are pure
// functions, and the repo's per-cell RNG discipline is built on them.
// What cannot appear without annotation is anything reading state the
// test harness does not control: time.Now/Since/Until/Sleep/..., and
// package-level rand functions, which draw from the shared global
// source. The serve/obs layers sit outside the deterministic set —
// latency telemetry is their job. Inside the set, a deliberate
// wall-clock read (e.g. duration metadata that never reaches response
// bytes) carries //lint:wallclock <justification>.
var Noclock = &Analyzer{
	Name:      "noclock",
	Directive: "wallclock",
	Doc: "bans time.Now-style wall-clock reads and global math/rand " +
		"calls in the deterministic packages",
	Run: runNoclock,
}

// deterministicPkgs are the package names under wmcs/internal/ whose
// outputs must be a pure function of their inputs. Matching is by path
// segment: wmcs/internal/<name> and everything below it.
var deterministicPkgs = []string{
	"engine",
	"experiments",
	"instances",
	"mech",
	"mechreg",
	"memtred",
	"nwst",
	"nwstmech",
	"query",
	"sharing",
	"wmech",
}

// bannedTimeFuncs are the package time functions that read or schedule
// against the wall clock. Types (time.Duration, time.Time) and pure
// constructors/parsers remain available.
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// DeterministicPkg reports whether path is inside the deterministic
// set. Exported for the meta-test that pins the documented set.
func DeterministicPkg(path string) bool {
	for _, name := range deterministicPkgs {
		prefix := "wmcs/internal/" + name
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

func runNoclock(pass *Pass) {
	if !DeterministicPkg(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			// Only function references count: *rand.Rand in a
			// signature is the discipline, not a violation.
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			name := sel.Sel.Name
			switch pn.Imported().Path() {
			case "time":
				if bannedTimeFuncs[name] {
					pass.Reportf(sel.Pos(), "wall-clock time.%s in deterministic package %s; annotate //lint:wallclock if the value never reaches pinned output", name, pass.Path)
				}
			case "math/rand", "math/rand/v2":
				if !strings.HasPrefix(name, "New") {
					pass.Reportf(sel.Pos(), "global rand.%s draws from the process-wide source in deterministic package %s; use a seeded *rand.Rand", name, pass.Path)
				}
			}
			return true
		})
	}
}
