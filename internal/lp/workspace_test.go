package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomProblem builds a small random LP mixing all three relations and
// negative right-hand sides (exercising the normalization path).
func randomProblem(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(5)
	m := 1 + rng.Intn(8)
	p := NewProblem(n)
	obj := make([]float64, n)
	for j := range obj {
		obj[j] = rng.Float64()*4 - 1
	}
	p.SetObjective(obj)
	row := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := range row {
			row[j] = rng.Float64()*6 - 2
		}
		p.AddConstraint(row, Op(rng.Intn(3)), rng.Float64()*10-3)
	}
	return p
}

// TestSolveWithMatchesSolve pins the workspace contract: a reused
// Workspace — dirty from arbitrarily many prior solves of different
// shapes — yields bitwise the same Result as a fresh allocation, status,
// objective and every solution coordinate included.
func TestSolveWithMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ws := NewWorkspace()
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng)
		fresh := p.Solve()
		reused := p.SolveWith(ws)
		if fresh.Status != reused.Status {
			t.Fatalf("trial %d: status %v != %v", trial, reused.Status, fresh.Status)
		}
		if fresh.Status != Optimal {
			continue
		}
		if math.Float64bits(fresh.Obj) != math.Float64bits(reused.Obj) {
			t.Fatalf("trial %d: obj %v != %v", trial, reused.Obj, fresh.Obj)
		}
		for j := range fresh.X {
			if math.Float64bits(fresh.X[j]) != math.Float64bits(reused.X[j]) {
				t.Fatalf("trial %d: x[%d] %v != %v", trial, j, reused.X[j], fresh.X[j])
			}
		}
	}
}

// BenchmarkSolveFresh/BenchmarkSolveWorkspace document the pooling win
// the E9 experiment banks on.
func benchProblem() *Problem {
	rng := rand.New(rand.NewSource(7))
	n := 5
	p := NewProblem(n)
	ones := make([]float64, n)
	for j := range ones {
		ones[j] = 1
	}
	p.AddConstraint(ones, EQ, 10)
	row := make([]float64, n)
	for mask := 1; mask < (1<<n)-1; mask++ {
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				row[b] = 1
			} else {
				row[b] = 0
			}
		}
		p.AddConstraint(row, LE, 2+rng.Float64()*8)
	}
	return p
}

func BenchmarkSolveFresh(b *testing.B) {
	p := benchProblem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Solve()
	}
}

func BenchmarkSolveWorkspace(b *testing.B) {
	p := benchProblem()
	ws := NewWorkspace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.SolveWith(ws)
	}
}
