// Package lp implements a dense two-phase primal simplex solver for small
// linear programs, used to decide core non-emptiness of cost-sharing games
// (Lemma 3.3 of the paper): the core of a cost function C over agents N is
// the feasible region of
//
//	Σ_{i∈N} f_i = C(N),  Σ_{i∈R} f_i ≤ C(R) ∀ R ⊂ N,  f ≥ 0,
//
// which for |N| ≤ ~12 agents is a small dense LP.
//
// The solver minimizes c·x subject to Ax {≤,=,≥} b with x ≥ 0, using a
// tableau with Bland's anti-cycling rule. It is written for correctness on
// small instances, not for scale.
package lp

import (
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

// Status is the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("lp.Status(%d)", int(s))
}

type constraint struct {
	coeffs []float64
	op     Op
	rhs    float64
}

// Problem is an LP in the form: minimize Obj·x subject to the added
// constraints, with x ≥ 0 componentwise.
type Problem struct {
	nvars int
	obj   []float64
	cons  []constraint
}

// NewProblem returns a problem on n nonnegative variables with a zero
// objective (a pure feasibility problem until SetObjective is called).
func NewProblem(n int) *Problem {
	return &Problem{nvars: n, obj: make([]float64, n)}
}

// NVars returns the number of variables.
func (p *Problem) NVars() int { return p.nvars }

// SetObjective sets the minimization objective coefficients.
func (p *Problem) SetObjective(c []float64) {
	if len(c) != p.nvars {
		panic(fmt.Sprintf("lp: objective length %d != %d", len(c), p.nvars))
	}
	copy(p.obj, c)
}

// AddConstraint appends the constraint coeffs·x op rhs. The coefficient
// slice is copied.
func (p *Problem) AddConstraint(coeffs []float64, op Op, rhs float64) {
	if len(coeffs) != p.nvars {
		panic(fmt.Sprintf("lp: constraint length %d != %d", len(coeffs), p.nvars))
	}
	p.cons = append(p.cons, constraint{coeffs: append([]float64(nil), coeffs...), op: op, rhs: rhs})
}

// Result holds the solution of an LP.
type Result struct {
	Status Status
	X      []float64 // primal solution (valid when Status == Optimal)
	Obj    float64   // objective value (valid when Status == Optimal)
}

const eps = 1e-9

// Workspace holds the scratch buffers one Solve call needs — the
// normalized rows, the tableau, the basis, and the phase cost rows. A
// caller solving many problems of similar shape (the core-membership
// trials: one LP per cell, 2^k−1 rows each) passes one Workspace to
// SolveWith and pays the tableau allocation once instead of per solve.
// A Workspace is not safe for concurrent use; pool one per worker.
//
// The buffers are pure scratch: SolveWith overwrites every cell it
// reads, so reuse cannot change a result — the pivot arithmetic is
// identical to a fresh allocation's, byte for byte.
type Workspace struct {
	rowCoeffs []float64
	tabData   []float64
	tab       [][]float64
	basis     []int
	phase1    []float64
	objRow    []float64
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// grow returns a length-n float64 slice backed by *buf, extending the
// backing array when needed. The slice is zeroed.
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Solve runs the two-phase simplex and returns the result.
func (p *Problem) Solve() Result { return p.SolveWith(nil) }

// SolveWith is Solve drawing its scratch space from ws; a nil ws
// allocates fresh buffers (exactly Solve's historical behavior). The
// returned Result never aliases the workspace.
func (p *Problem) SolveWith(ws *Workspace) Result {
	if ws == nil {
		ws = NewWorkspace()
	}
	m := len(p.cons)
	// Count auxiliary columns: one slack per LE, one surplus per GE; one
	// artificial per GE and EQ row plus per LE row with negative rhs
	// (normalized below to keep b ≥ 0).
	type rowInfo struct {
		coeffs []float64
		rhs    float64
		op     Op
	}
	rows := make([]rowInfo, m)
	coeffBacking := grow(&ws.rowCoeffs, m*p.nvars)
	for i, c := range p.cons {
		rc := coeffBacking[i*p.nvars : (i+1)*p.nvars : (i+1)*p.nvars]
		copy(rc, c.coeffs)
		r := rowInfo{coeffs: rc, rhs: c.rhs, op: c.op}
		if r.rhs < 0 { // normalize to b ≥ 0
			for j := range r.coeffs {
				r.coeffs[j] = -r.coeffs[j]
			}
			r.rhs = -r.rhs
			switch r.op {
			case LE:
				r.op = GE
			case GE:
				r.op = LE
			}
		}
		rows[i] = r
	}
	nSlack := 0
	nArt := 0
	for _, r := range rows {
		switch r.op {
		case LE:
			nSlack++
		case GE:
			nSlack++ // surplus
			nArt++
		case EQ:
			nArt++
		}
	}
	total := p.nvars + nSlack + nArt
	// Tableau: m rows × (total+1) cols; last col = rhs.
	width := total + 1
	tabData := grow(&ws.tabData, m*width)
	if cap(ws.tab) < m {
		ws.tab = make([][]float64, m)
	}
	tab := ws.tab[:m]
	if cap(ws.basis) < m {
		ws.basis = make([]int, m)
	}
	basis := ws.basis[:m]
	slackAt := p.nvars
	artAt := p.nvars + nSlack
	for i, r := range rows {
		row := tabData[i*width : (i+1)*width : (i+1)*width]
		copy(row, r.coeffs)
		row[total] = r.rhs
		switch r.op {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		}
		tab[i] = row
	}

	// Phase I: minimize sum of artificials.
	if nArt > 0 {
		phase1 := grow(&ws.phase1, total)
		for j := p.nvars + nSlack; j < total; j++ {
			phase1[j] = 1
		}
		st, _ := simplex(tab, basis, phase1, total)
		if st == Unbounded {
			// Cannot happen for phase I (objective bounded below by 0),
			// but guard anyway.
			return Result{Status: Infeasible}
		}
		// Feasible iff artificial sum is ~0.
		var artSum float64
		for i, b := range basis {
			if b >= p.nvars+nSlack {
				artSum += tab[i][total]
			}
		}
		if artSum > 1e-7 {
			return Result{Status: Infeasible}
		}
		// Pivot remaining artificials out of the basis where possible.
		for i, b := range basis {
			if b < p.nvars+nSlack {
				continue
			}
			pivoted := false
			for j := 0; j < p.nvars+nSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; harmless to leave (rhs ≈ 0).
				_ = i
			}
		}
	}

	// Phase II: minimize the real objective over x and auxiliary columns
	// (zero cost on slacks, effectively +inf on artificials by forbidding
	// them as entering columns).
	objRow := grow(&ws.objRow, total)
	copy(objRow, p.obj)
	st, _ := simplexForbidding(tab, basis, objRow, total, p.nvars+nSlack)
	if st == Unbounded {
		return Result{Status: Unbounded}
	}
	x := make([]float64, p.nvars)
	for i, b := range basis {
		if b < p.nvars {
			x[b] = tab[i][total]
		}
	}
	var obj float64
	for j, c := range p.obj {
		obj += c * x[j]
	}
	return Result{Status: Optimal, X: x, Obj: obj}
}

// simplex minimizes cost over the tableau with Bland's rule. Returns the
// status and objective value.
func simplex(tab [][]float64, basis []int, cost []float64, total int) (Status, float64) {
	return simplexForbidding(tab, basis, cost, total, total)
}

// simplexForbidding is simplex but never lets a column ≥ forbidFrom enter
// the basis (used in phase II to exclude artificials).
func simplexForbidding(tab [][]float64, basis []int, cost []float64, total, forbidFrom int) (Status, float64) {
	m := len(tab)
	for iter := 0; iter < 20000; iter++ {
		// Reduced costs: r_j = c_j − c_B · B⁻¹A_j. Tableau is kept in
		// canonical form, so compute via the basis cost row.
		entering := -1
		for j := 0; j < total && j < forbidFrom; j++ {
			rc := cost[j]
			for i := 0; i < m; i++ {
				rc -= cost[basis[i]] * tab[i][j]
			}
			if rc < -eps { // Bland: first improving column
				entering = j
				break
			}
		}
		if entering < 0 {
			var obj float64
			for i := 0; i < m; i++ {
				obj += cost[basis[i]] * tab[i][total]
			}
			return Optimal, obj
		}
		// Ratio test with Bland tie-break on smallest basis index.
		leaving := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][entering]
			if a > eps {
				ratio := tab[i][total] / a
				if ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && (leaving < 0 || basis[i] < basis[leaving])) {
					bestRatio = ratio
					leaving = i
				}
			}
		}
		if leaving < 0 {
			return Unbounded, 0
		}
		pivot(tab, basis, leaving, entering)
	}
	// Iteration cap: treat as optimal-so-far; with Bland's rule this
	// should be unreachable on the sizes we solve.
	var obj float64
	for i := 0; i < m; i++ {
		obj += cost[basis[i]] * tab[i][total]
	}
	return Optimal, obj
}

func pivot(tab [][]float64, basis []int, row, col int) {
	m := len(tab)
	width := len(tab[row])
	pv := tab[row][col]
	for j := 0; j < width; j++ {
		tab[row][j] /= pv
	}
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			tab[i][j] -= f * tab[row][j]
		}
	}
	basis[row] = col
}

// Feasible is a convenience wrapper: it reports whether the problem has
// any feasible point (ignoring the objective).
func (p *Problem) Feasible() bool {
	q := NewProblem(p.nvars)
	q.cons = p.cons
	return q.Solve().Status == Optimal
}
