package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimpleMin(t *testing.T) {
	// min x+y s.t. x+y ≥ 2, x ≤ 5, y ≤ 5 → obj 2.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1})
	p.AddConstraint([]float64{1, 1}, GE, 2)
	p.AddConstraint([]float64{1, 0}, LE, 5)
	p.AddConstraint([]float64{0, 1}, LE, 5)
	r := p.Solve()
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(r.Obj-2) > 1e-7 {
		t.Errorf("obj = %g want 2", r.Obj)
	}
}

func TestMaximizationViaNegation(t *testing.T) {
	// max 3x+2y s.t. x+y ≤ 4, x+3y ≤ 6 → x=4, y=0, obj 12.
	p := NewProblem(2)
	p.SetObjective([]float64{-3, -2})
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 3}, LE, 6)
	r := p.Solve()
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(r.Obj+12) > 1e-7 {
		t.Errorf("obj = %g want -12", r.Obj)
	}
	if math.Abs(r.X[0]-4) > 1e-7 || math.Abs(r.X[1]) > 1e-7 {
		t.Errorf("x = %v", r.X)
	}
}

func TestEquality(t *testing.T) {
	// min x s.t. x + y = 3, y ≤ 1 → x = 2.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 0})
	p.AddConstraint([]float64{1, 1}, EQ, 3)
	p.AddConstraint([]float64{0, 1}, LE, 1)
	r := p.Solve()
	if r.Status != Optimal || math.Abs(r.Obj-2) > 1e-7 {
		t.Fatalf("r = %+v", r)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 3)
	if got := p.Solve().Status; got != Infeasible {
		t.Errorf("status = %v", got)
	}
	if p.Feasible() {
		t.Error("Feasible() should be false")
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{-1}) // max x
	p.AddConstraint([]float64{1}, GE, 0)
	if got := p.Solve().Status; got != Unbounded {
		t.Errorf("status = %v", got)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// −x ≤ −2  ⇔  x ≥ 2; min x → 2.
	p := NewProblem(1)
	p.SetObjective([]float64{1})
	p.AddConstraint([]float64{-1}, LE, -2)
	r := p.Solve()
	if r.Status != Optimal || math.Abs(r.Obj-2) > 1e-7 {
		t.Fatalf("r = %+v", r)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Beale's classic cycling example (cycles without Bland's rule).
	p := NewProblem(4)
	p.SetObjective([]float64{-0.75, 150, -0.02, 6})
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	r := p.Solve()
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(r.Obj-(-0.05)) > 1e-6 {
		t.Errorf("obj = %g want -0.05", r.Obj)
	}
}

func TestFeasibilityAgainstBruteForce(t *testing.T) {
	// Random interval systems in 2 vars: a ≤ x ≤ b, c ≤ y ≤ d,
	// x + y ≥ e. Feasibility is decidable by hand; compare.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		a, b := rng.Float64()*5, rng.Float64()*5
		if a > b {
			a, b = b, a
		}
		c, d := rng.Float64()*5, rng.Float64()*5
		if c > d {
			c, d = d, c
		}
		e := rng.Float64() * 15
		p := NewProblem(2)
		p.AddConstraint([]float64{1, 0}, GE, a)
		p.AddConstraint([]float64{1, 0}, LE, b)
		p.AddConstraint([]float64{0, 1}, GE, c)
		p.AddConstraint([]float64{0, 1}, LE, d)
		p.AddConstraint([]float64{1, 1}, GE, e)
		want := b+d >= e-1e-9
		if got := p.Feasible(); got != want {
			t.Fatalf("trial %d: feasible=%v want %v (a=%g b=%g c=%g d=%g e=%g)",
				trial, got, want, a, b, c, d, e)
		}
	}
}

// Random LPs: verify weak duality sanity — the reported optimum is
// feasible and no sampled feasible point beats it.
func TestOptimalityAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(3)
		m := 2 + rng.Intn(4)
		p := NewProblem(n)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = rng.Float64()*4 - 2
		}
		p.SetObjective(obj)
		cons := make([][]float64, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() // nonneg rows + LE keeps it bounded... except obj may want 0
			}
			cons[i] = row
			rhs[i] = 1 + rng.Float64()*5
			p.AddConstraint(row, LE, rhs[i])
		}
		// Bound the box so negative objectives cannot be unbounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.AddConstraint(row, LE, 10)
		}
		r := p.Solve()
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		// Solution feasible?
		for i := 0; i < m; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += cons[i][j] * r.X[j]
			}
			if s > rhs[i]+1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %g > %g", trial, i, s, rhs[i])
			}
		}
		for _, x := range r.X {
			if x < -1e-9 || x > 10+1e-6 {
				t.Fatalf("trial %d: x out of box: %v", trial, r.X)
			}
		}
		// Sampled points never beat the optimum.
		for s := 0; s < 300; s++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 10
			}
			ok := true
			for i := 0; i < m && ok; i++ {
				var sum float64
				for j := 0; j < n; j++ {
					sum += cons[i][j] * x[j]
				}
				ok = sum <= rhs[i]
			}
			if !ok {
				continue
			}
			var v float64
			for j := 0; j < n; j++ {
				v += obj[j] * x[j]
			}
			if v < r.Obj-1e-6 {
				t.Fatalf("trial %d: sampled %g beats reported optimum %g", trial, v, r.Obj)
			}
		}
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
	if Status(9).String() == "" {
		t.Error("unknown status should still render")
	}
}

func TestPanicsOnBadLengths(t *testing.T) {
	p := NewProblem(2)
	func() {
		defer func() { recover() }()
		p.SetObjective([]float64{1})
		t.Error("SetObjective should panic")
	}()
	defer func() {
		if recover() == nil {
			t.Error("AddConstraint should panic")
		}
	}()
	p.AddConstraint([]float64{1}, LE, 0)
}
