// Package jv implements the Jain–Vazirani-style family of cross-monotonic
// 2-budget-balanced cost-sharing methods for Steiner connectivity [29],
// realized as uniform/weighted moat growth on the shortest-path metric
// over the receivers and the source (the primal-dual view of Edmonds'
// branching LP). Combined with the Steiner power heuristic and Lemma 3.5,
// it yields the 2(3^d − 1)-BB group-strategyproof wireless mechanisms of
// Theorem 3.6 (12-BB for d = 2, Theorem 3.7, via Ambühl's bound).
//
// Growth process: every terminal (the source included) grows a moat at
// unit rate in the shortest-path metric, so two components merge exactly
// when the Kruskal threshold reaches their closure distance; an agent
// pays while its component does not yet contain the source, and each
// paying component collects at rate 2, split among its members
// proportionally to the growth weights f_i (the paper's parameterizing
// mappings). The totals telescope to the metric-closure MST weight:
//
//	Σ_i ξ(R, i) = 2 Σ_m t_m = MST(closure of R ∪ {s}),
//
// which is at least the realized tree's power cost (cost recovery) and at
// most 2× the optimal Steiner cost (2-approximate competitiveness).
// Cross-monotonicity holds because adding agents only merges components
// earlier and only enlarges the component an agent shares its rate with.
//
// An earlier variant that froze moats when they reached the source was
// measurably *not* cross-monotonic (a larger agent set can freeze an
// intermediate moat smaller and delay someone else's root meeting); the
// all-grow process repairs this, matching the population-monotonic MST
// allocations of Kent–Skorin-Kapov [30] that Jain–Vazirani build on.
package jv

import (
	"math"
	"sort"

	"wmcs/internal/graph"
	"wmcs/internal/mech"
	"wmcs/internal/mst"
	"wmcs/internal/paths"
	"wmcs/internal/sharing"
	"wmcs/internal/steiner"
	"wmcs/internal/wireless"
)

// Weights maps an agent to its growth weight f_i > 0; nil means uniform.
type Weights func(agent int) float64

// MoatResult is the outcome of one moat-growing run.
type MoatResult struct {
	// Shares are the cost shares ξ(R, i) = 2 × accumulated dual.
	Shares map[int]float64
	// Dual is Σ_S y_S, the total moat growth (a Steiner lower bound).
	Dual float64
	// Tree is the realized multicast tree in the host network.
	Tree wireless.Tree
	// Assignment implements Tree via the Steiner power heuristic.
	Assignment wireless.Assignment
}

// Moats runs the growth process for receivers R on the network's
// shortest-path metric and realizes the merge tree as a power assignment.
func Moats(nw *wireless.Network, R []int, w Weights) MoatResult {
	if w == nil {
		w = func(int) float64 { return 1 }
	}
	src := nw.Source()
	terms := append([]int{src}, R...)
	// Shortest-path distances and trees from every terminal over the
	// complete cost graph.
	k := len(terms)
	trees := make([]*paths.Tree, k)
	for i, t := range terms {
		trees[i] = paths.DijkstraMatrix(nw.CostMatrix(), t)
	}
	dist := func(i, j int) float64 { return trees[i].Dist[terms[j]] }

	comp := graph.NewUnionFind(k)
	radius := make([]float64, k) // moat radius per terminal; all grow at rate 1
	shares := make(map[int]float64, len(R))
	paying := func(c int) bool { return comp.Find(c) != comp.Find(0) }
	type merge struct{ a, b int }
	var merges []merge
	var dual float64
	for comp.Sets() > 1 {
		// Next meeting time over terminal pairs in different components;
		// every moat grows, so the combined closing rate is always 2.
		best := math.Inf(1)
		var ba, bb int
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if comp.Same(i, j) {
					continue
				}
				dt := (dist(i, j) - radius[i] - radius[j]) / 2
				if dt < best {
					best, ba, bb = dt, i, j
				}
			}
		}
		if math.IsInf(best, 1) {
			break // disconnected (cannot happen on complete graphs)
		}
		if best < 0 {
			best = 0 // simultaneous meetings
		}
		// Advance time: every moat grows; only components without the
		// source pay, 2·dt per component, split by the weights f_i.
		groups := map[int][]int{}
		for i := 0; i < k; i++ {
			radius[i] += best
			if paying(i) {
				groups[comp.Find(i)] = append(groups[comp.Find(i)], i)
			}
		}
		// Map iteration order is safe here: each group touches a disjoint
		// agent set exactly once and contributes the same `best` to dual,
		// so no float result depends on the order.
		//lint:detorder disjoint agent sets per group; dual gains the identical addend each visit, so no float depends on order
		for _, members := range groups {
			var wsum float64
			for _, i := range members {
				wsum += w(terms[i])
			}
			dual += best
			for _, i := range members {
				shares[terms[i]] += 2 * best * w(terms[i]) / wsum
			}
		}
		merges = append(merges, merge{a: ba, b: bb})
		comp.Union(ba, bb)
	}
	// Realize the merge tree: union of shortest paths for each merge,
	// re-spanned from the source and pruned to the terminals.
	sub := graph.New(nw.N())
	seen := map[[2]int]bool{}
	for _, mg := range merges {
		path := trees[mg.a].PathTo(terms[mg.b])
		for i := 0; i+1 < len(path); i++ {
			a, b := path[i], path[i+1]
			if a > b {
				a, b = b, a
			}
			if !seen[[2]int{a, b}] {
				seen[[2]int{a, b}] = true
				sub.AddEdge(a, b, nw.C(a, b))
			}
		}
	}
	edges := steiner.Prune(nw.N(), mst.Prim(sub, src), terms)
	tree := wireless.TreeFromUndirectedEdges(nw.N(), edges, src)
	tree = wireless.PruneTree(tree, R)
	return MoatResult{
		Shares:     shares,
		Dual:       dual,
		Tree:       tree,
		Assignment: nw.AssignmentForTree(tree),
	}
}

// Method returns the moat cost-sharing method ξ(R, ·) as a sharing.Method
// (used both by the mechanism and by the cross-monotonicity experiments).
func Method(nw *wireless.Network, w Weights) sharing.Method {
	return sharing.MethodFunc(func(R []int) map[int]float64 {
		if len(R) == 0 {
			return map[int]float64{}
		}
		return Moats(nw, R, w).Shares
	})
}

// Mechanism wraps Moulin–Shenker over the moat method: the Theorem 3.6
// group-strategyproof 2(3^d − 1)-BB wireless multicast mechanism.
type Mechanism struct {
	Net     *wireless.Network
	weights Weights
}

// NewMechanism builds the mechanism; nil weights mean the uniform member
// of the JV family.
func NewMechanism(nw *wireless.Network, w Weights) *Mechanism {
	return &Mechanism{Net: nw, weights: w}
}

// Name implements mech.Mechanism with the package-internal default;
// the descriptor registry (internal/mechreg) assigns the public jv-moat
// name to registry-built instances.
func (m *Mechanism) Name() string { return "moat" }

// Agents implements mech.Mechanism.
func (m *Mechanism) Agents() []int { return m.Net.AllReceivers() }

// Result extends the outcome with the power assignment actually built.
type Result struct {
	Outcome    mech.Outcome
	Assignment wireless.Assignment
}

// Run implements mech.Mechanism.
func (m *Mechanism) Run(u mech.Profile) mech.Outcome { return m.RunDetailed(u).Outcome }

// RunDetailed runs Moulin–Shenker over the moat shares and realizes the
// final receiver set's tree.
func (m *Mechanism) RunDetailed(u mech.Profile) Result {
	res := sharing.MoulinShenker(m.Agents(), Method(m.Net, m.weights), u)
	if len(res.Receivers) == 0 {
		return Result{
			Outcome:    mech.Outcome{Shares: map[int]float64{}},
			Assignment: make(wireless.Assignment, m.Net.N()),
		}
	}
	final := Moats(m.Net, res.Receivers, m.weights)
	return Result{
		Outcome: mech.Outcome{
			Receivers: res.Receivers,
			Shares:    res.Shares,
			Cost:      final.Assignment.Total(),
		},
		Assignment: final.Assignment,
	}
}

// BetaBound returns the Theorem 3.6 guarantee 2(3^d − 1) for dimension d
// (improved to 12 at d = 2 by Theorem 3.7 via Ambühl's MST bound).
func BetaBound(d int) float64 {
	if d == 2 {
		return 12
	}
	return 2 * (math.Pow(3, float64(d)) - 1)
}

// SortedAgents is a small helper returning a sorted copy (used by
// experiments when subsetting agent lists).
func SortedAgents(R []int) []int {
	out := append([]int(nil), R...)
	sort.Ints(out)
	return out
}
