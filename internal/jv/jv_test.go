package jv

import (
	"math"
	"math/rand"
	"testing"

	"wmcs/internal/geom"
	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/mst"
	"wmcs/internal/paths"
	"wmcs/internal/sharing"
	"wmcs/internal/steiner"
	"wmcs/internal/wireless"
)

func TestMoatsTwoTerminalLine(t *testing.T) {
	// Source at 0, receiver at distance 2, α = 1: both moats grow and
	// meet at time 1; the receiver pays 2×1 = 2, exactly the closure MST
	// weight and the tree cost.
	nw := wireless.NewEuclidean(geom.Line(0, 2), geom.NewPowerCost(1), 0)
	res := Moats(nw, []int{1}, nil)
	if math.Abs(res.Dual-1) > 1e-9 {
		t.Errorf("dual = %g want 1", res.Dual)
	}
	if math.Abs(res.Shares[1]-2) > 1e-9 {
		t.Errorf("share = %g want 2", res.Shares[1])
	}
	if math.Abs(res.Assignment.Total()-2) > 1e-9 {
		t.Errorf("assignment total = %g want 2", res.Assignment.Total())
	}
	if !nw.Feasible(res.Assignment, []int{1}) {
		t.Error("infeasible")
	}
}

// Invariant of the all-grow process: total shares equal the MST weight of
// the shortest-path metric closure over R ∪ {s}.
func TestMoatsTotalIsClosureMST(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		nw := instances.RandomEuclidean(rng, 7, 2, 1+rng.Float64()*2, 10)
		R := nw.AllReceivers()[:1+rng.Intn(5)]
		res := Moats(nw, R, nil)
		var tot float64
		for _, s := range res.Shares {
			tot += s
		}
		terms := append([]int{nw.Source()}, R...)
		closure, _ := paths.MetricClosure(nw.CompleteGraph(), terms)
		mstW := mst.Weight(mst.PrimMatrix(closure, 0))
		if math.Abs(tot-mstW) > 1e-7 {
			t.Fatalf("trial %d: Σshares %g != closure MST %g", trial, tot, mstW)
		}
	}
}

func TestMoatsSharesCoverTreeAndRespect2OPT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		nw := instances.RandomEuclidean(rng, 6+rng.Intn(4), 2, 1+rng.Float64()*2, 10)
		var R []int
		for _, v := range nw.AllReceivers() {
			if rng.Float64() < 0.7 {
				R = append(R, v)
			}
		}
		if len(R) == 0 {
			R = []int{1}
		}
		res := Moats(nw, R, nil)
		if !nw.Feasible(res.Assignment, R) {
			t.Fatalf("trial %d: infeasible", trial)
		}
		var tot float64
		for _, s := range res.Shares {
			tot += s
		}
		// Cost recovery against the realized assignment.
		if tot < res.Assignment.Total()-1e-9 {
			t.Fatalf("trial %d: shares %g below assignment cost %g", trial, tot, res.Assignment.Total())
		}
		// 2-BB against the optimal *Steiner tree* (the JV comparator).
		terms := append([]int{nw.Source()}, R...)
		opt := steiner.DreyfusWagner(nw.CompleteGraph(), terms)
		if tot > 2*opt.Cost+1e-9 {
			t.Fatalf("trial %d: shares %g exceed 2×Steiner OPT %g", trial, tot, 2*opt.Cost)
		}
	}
}

func TestMoatsCrossMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		nw := instances.RandomEuclidean(rng, 8, 2, 2, 10)
		xi := Method(nw, nil)
		if err := sharing.CheckCrossMonotone(xi, nw.AllReceivers(), rng, 60, 1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestWeightedFamilyStillRecoversCost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw := instances.RandomEuclidean(rng, 8, 2, 2, 10)
	R := nw.AllReceivers()
	w := func(a int) float64 { return 1 + float64(a%3) } // a non-uniform f_i
	res := Moats(nw, R, w)
	var tot float64
	for _, s := range res.Shares {
		tot += s
	}
	if tot < res.Assignment.Total()-1e-9 {
		t.Fatalf("weighted family broke cost recovery: %g < %g", tot, res.Assignment.Total())
	}
	// Total shares are weight-independent (2×dual); only the split moves.
	uni := Moats(nw, R, nil)
	var totU float64
	for _, s := range uni.Shares {
		totU += s
	}
	if math.Abs(tot-totU) > 1e-9 {
		t.Errorf("total shares should not depend on weights: %g vs %g", tot, totU)
	}
}

func TestMechanismAxiomsAndGSP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nw := instances.RandomEuclidean(rng, 7, 2, 2, 10)
	m := NewMechanism(nw, nil)
	if m.Name() != "moat" || len(m.Agents()) != 6 { // package-internal default; mechreg assigns the public name
		t.Fatal("metadata wrong")
	}
	for trial := 0; trial < 8; trial++ {
		u := mech.RandomProfile(rng, nw.N(), 80)
		res := m.RunDetailed(u)
		o := res.Outcome
		if err := mech.CheckNPT(o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := mech.CheckVP(u, o); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(o.Receivers) > 0 {
			if err := mech.CheckCostRecovery(o); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !nw.Feasible(res.Assignment, o.Receivers) {
				t.Fatalf("trial %d: infeasible", trial)
			}
		}
	}
	truth := mech.RandomProfile(rng, nw.N(), 80)
	if err := mech.CheckStrategyproof(m, truth, nil); err != nil {
		t.Error(err)
	}
	if err := mech.CheckGroupStrategyproof(m, truth, rng, 100, nil); err != nil {
		t.Error(err)
	}
	if err := mech.CheckCS(m, truth, 1e9); err != nil {
		t.Error(err)
	}
}

func TestBetaBoundConstants(t *testing.T) {
	if BetaBound(2) != 12 {
		t.Errorf("d=2 bound = %g want 12 (Theorem 3.7)", BetaBound(2))
	}
	if BetaBound(3) != 2*(27-1) {
		t.Errorf("d=3 bound = %g want 52", BetaBound(3))
	}
}

func TestSortedAgents(t *testing.T) {
	in := []int{3, 1, 2}
	out := SortedAgents(in)
	if out[0] != 1 || out[2] != 3 || in[0] != 3 {
		t.Error("SortedAgents must sort a copy")
	}
}

// Theorem 3.6 end to end at small scale: shares ≤ 2(3^d −1)·C*(R) with
// C* from the exact solver.
func TestTheorem36BoundSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		nw := instances.RandomEuclidean(rng, 7, 2, 2, 10)
		m := NewMechanism(nw, nil)
		u := mech.UniformProfile(nw.N(), 1e8)
		o := m.Run(u)
		opt, _ := wireless.ExactMEMT(nw, o.Receivers)
		if o.TotalShares() > BetaBound(2)*opt+1e-7 {
			t.Fatalf("trial %d: shares %g exceed 12×opt %g", trial, o.TotalShares(), opt)
		}
	}
}
