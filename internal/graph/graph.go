// Package graph provides the graph substrate shared by all algorithms in
// this repository: adjacency-list weighted graphs (undirected and
// directed), dense symmetric cost matrices, a disjoint-set union, and an
// indexed binary min-heap.
//
// Vertices are dense integers 0..N()−1 throughout; algorithms that need
// sparse identifiers keep their own mapping.
package graph

import (
	"fmt"
	"sort"
)

// Edge is a weighted edge. For undirected graphs an Edge is stored once in
// each endpoint's adjacency list; Edges() reports each edge once with
// From < To.
type Edge struct {
	From, To int
	W        float64
}

// Graph is a weighted undirected multigraph with dense vertex ids.
type Graph struct {
	adj [][]Edge
	m   int
}

// New returns an empty undirected graph on n vertices.
func New(n int) *Graph {
	return &Graph{adj: make([][]Edge, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts an undirected edge {u, v} of weight w. Self-loops are
// rejected because no algorithm in this repository uses them.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.adj[u] = append(g.adj[u], Edge{From: u, To: v, W: w})
	g.adj[v] = append(g.adj[v], Edge{From: v, To: u, W: w})
	g.m++
}

// AddVertex appends a fresh isolated vertex and returns its id. After a
// Rewind the slot's adjacency capacity is reused, so grow-rewind-grow
// cycles (the contraction states of repeated queries) stop allocating
// once the high-water mark is reached.
func (g *Graph) AddVertex() int {
	if cap(g.adj) > len(g.adj) {
		g.adj = g.adj[:len(g.adj)+1]
		g.adj[len(g.adj)-1] = g.adj[len(g.adj)-1][:0]
	} else {
		g.adj = append(g.adj, nil)
	}
	return len(g.adj) - 1
}

// Neighbors returns the adjacency list of u. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []Edge { return g.adj[u] }

// Assemble wraps pre-built adjacency lists as a graph of m edges. It is
// the constructor for incremental rebuilds that share unchanged
// adjacency slices with an existing graph (memtred.Rebuild): every
// undirected edge must appear in both endpoints' lists (as Edge{From: u,
// To: v} in adj[u] and the mirror in adj[v]) and be counted once in m.
// Both the caller and the donor graph must treat shared lists as
// immutable afterwards — algorithms that mutate (AddEdge/AddVertex/
// Rewind) operate on Clones.
func Assemble(adj [][]Edge, m int) *Graph { return &Graph{adj: adj, m: m} }

// Degree returns the number of incident edges of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Edges returns every edge exactly once, with From < To, sorted by
// (W, From, To) for determinism.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.m)
	for u, l := range g.adj {
		for _, e := range l {
			if e.To > u {
				es = append(es, Edge{From: u, To: e.To, W: e.W})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].W != es[j].W {
			return es[i].W < es[j].W
		}
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		return es[i].To < es[j].To
	})
	return es
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{adj: make([][]Edge, len(g.adj)), m: g.m}
	for i, l := range g.adj {
		c.adj[i] = append([]Edge(nil), l...)
	}
	return c
}

// Snapshot records the current size of the graph so later growth
// (AddVertex/AddEdge) can be undone with Rewind. It captures per-vertex
// adjacency lengths, so edges added between pre-existing vertices are
// rewound too.
type Snapshot struct {
	n, m int
	deg  []int
}

// Snapshot captures the current graph extent. The returned value stays
// valid for any number of Rewind calls.
func (g *Graph) Snapshot() Snapshot {
	s := Snapshot{n: len(g.adj), m: g.m, deg: make([]int, len(g.adj))}
	for i, l := range g.adj {
		s.deg[i] = len(l)
	}
	return s
}

// Rewind truncates the graph back to the state captured by s: vertices
// added since are removed and every adjacency list is cut to its recorded
// length. It panics if the graph shrank below the snapshot in the
// meantime.
func (g *Graph) Rewind(s Snapshot) {
	if len(g.adj) < s.n {
		panic("graph: Rewind past a shrunken graph")
	}
	for i := s.n; i < len(g.adj); i++ {
		// Keep the backing arrays: Edge holds no pointers and AddVertex
		// reuses the capacity on the next growth cycle.
		g.adj[i] = g.adj[i][:0]
	}
	g.adj = g.adj[:s.n]
	for i := 0; i < s.n; i++ {
		g.adj[i] = g.adj[i][:s.deg[i]]
	}
	g.m = s.m
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.Edges() {
		s += e.W
	}
	return s
}

// Digraph is a weighted directed multigraph with dense vertex ids.
type Digraph struct {
	out [][]Edge
	in  [][]Edge
	m   int
}

// NewDigraph returns an empty digraph on n vertices.
func NewDigraph(n int) *Digraph {
	return &Digraph{out: make([][]Edge, n), in: make([][]Edge, n)}
}

// N returns the number of vertices.
func (g *Digraph) N() int { return len(g.out) }

// M returns the number of arcs.
func (g *Digraph) M() int { return g.m }

// AddArc inserts the arc u→v with weight w.
func (g *Digraph) AddArc(u, v int, w float64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	e := Edge{From: u, To: v, W: w}
	g.out[u] = append(g.out[u], e)
	g.in[v] = append(g.in[v], e)
	g.m++
}

// Out returns the outgoing arcs of u (owned by the digraph).
func (g *Digraph) Out(u int) []Edge { return g.out[u] }

// In returns the incoming arcs of u (owned by the digraph).
func (g *Digraph) In(u int) []Edge { return g.in[u] }

// Arcs returns all arcs sorted by (From, To, W) for determinism.
func (g *Digraph) Arcs() []Edge {
	es := make([]Edge, 0, g.m)
	for _, l := range g.out {
		es = append(es, l...)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].From != es[j].From {
			return es[i].From < es[j].From
		}
		if es[i].To != es[j].To {
			return es[i].To < es[j].To
		}
		return es[i].W < es[j].W
	})
	return es
}

// Matrix is a dense symmetric cost matrix over n vertices, the natural
// representation of the paper's complete "cost graph" (S, c). The zero
// diagonal is maintained by construction.
type Matrix struct {
	n int
	a []float64
}

// NewMatrix returns an n×n zero matrix.
func NewMatrix(n int) *Matrix { return &Matrix{n: n, a: make([]float64, n*n)} }

// MatrixFrom wraps a row-major flat slice as a Matrix. The slice is used
// directly (not copied) and must have length n².
func MatrixFrom(n int, a []float64) *Matrix {
	if len(a) != n*n {
		panic(fmt.Sprintf("graph: matrix length %d != %d", len(a), n*n))
	}
	return &Matrix{n: n, a: a}
}

// N returns the dimension.
func (m *Matrix) N() int { return m.n }

// At returns the entry (i, j).
func (m *Matrix) At(i, j int) float64 { return m.a[i*m.n+j] }

// Set assigns entry (i, j) and, to preserve symmetry, (j, i).
func (m *Matrix) Set(i, j int, w float64) {
	m.a[i*m.n+j] = w
	m.a[j*m.n+i] = w
}

// SetAsym assigns only entry (i, j), for callers that need an asymmetric
// matrix (e.g. all-pairs shortest-path tables).
func (m *Matrix) SetAsym(i, j int, w float64) { m.a[i*m.n+j] = w }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{n: m.n, a: append([]float64(nil), m.a...)}
}

// Complete returns the complete undirected graph whose edge weights are
// the strict upper triangle of m (entries must be nonnegative).
func (m *Matrix) Complete() *Graph {
	g := New(m.n)
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			g.AddEdge(i, j, m.At(i, j))
		}
	}
	return g
}
