package graph

// IndexHeap is an indexed d-ary (d = 4) min-heap over keys 0..n−1 with
// float64 priorities, supporting DecreaseKey. It backs Dijkstra and
// Prim. The wider node halves the sift depth, which measurably speeds
// the decrease-key-heavy Dijkstra loops of the NWST oracles.
//
// The comparison order (priority, then key) is total, so the pop
// sequence — and with it every byte of downstream output — is identical
// to the binary heap's: the minimum is unique regardless of the
// internal arity.
//
// The zero value is not usable; construct with NewIndexHeap.
type IndexHeap struct {
	prio []float64 // prio[key]
	pos  []int     // pos[key] = index in heap, −1 if absent
	heap []int     // heap of keys
}

// NewIndexHeap returns an empty heap able to hold keys 0..n−1.
func NewIndexHeap(n int) *IndexHeap {
	h := &IndexHeap{
		prio: make([]float64, n),
		pos:  make([]int, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Reset empties the heap without releasing its buffers, so a workspace can
// reuse one heap across many Dijkstra/Prim runs with zero allocations.
// Only the keys still present are touched, making Reset O(Len), not O(n).
func (h *IndexHeap) Reset() {
	for _, k := range h.heap {
		h.pos[k] = -1
	}
	h.heap = h.heap[:0]
}

// Grow extends the key space to 0..n−1 in one reallocation, keeping
// current contents. It is a no-op when the heap already holds n keys or
// more.
func (h *IndexHeap) Grow(n int) {
	if len(h.pos) >= n {
		return
	}
	pos := make([]int, n)
	prio := make([]float64, n)
	copy(pos, h.pos)
	copy(prio, h.prio)
	for i := len(h.pos); i < n; i++ {
		pos[i] = -1
	}
	h.pos = pos
	h.prio = prio
}

// Cap returns the size of the key space (the n of NewIndexHeap/Grow).
func (h *IndexHeap) Cap() int { return len(h.pos) }

// Len returns the number of keys currently in the heap.
func (h *IndexHeap) Len() int { return len(h.heap) }

// Contains reports whether key k is in the heap.
func (h *IndexHeap) Contains(k int) bool { return h.pos[k] >= 0 }

// Priority returns the current priority of key k; only meaningful if k is
// or was in the heap.
func (h *IndexHeap) Priority(k int) float64 { return h.prio[k] }

// Push inserts key k with priority p. It panics if k is already present.
func (h *IndexHeap) Push(k int, p float64) {
	if h.pos[k] >= 0 {
		panic("graph: IndexHeap.Push of present key")
	}
	h.prio[k] = p
	h.pos[k] = len(h.heap)
	h.heap = append(h.heap, k)
	h.up(len(h.heap) - 1)
}

// DecreaseKey lowers the priority of present key k to p. Calls with
// p ≥ current priority are ignored, which lets Dijkstra relax
// unconditionally.
func (h *IndexHeap) DecreaseKey(k int, p float64) {
	if h.pos[k] < 0 || p >= h.prio[k] {
		return
	}
	h.prio[k] = p
	h.up(h.pos[k])
}

// PushOrDecrease inserts k if absent, otherwise lowers its priority.
func (h *IndexHeap) PushOrDecrease(k int, p float64) {
	if h.pos[k] < 0 {
		h.Push(k, p)
	} else {
		h.DecreaseKey(k, p)
	}
}

// Pop removes and returns the key with minimum priority and that priority.
// It panics on an empty heap.
func (h *IndexHeap) Pop() (int, float64) {
	if len(h.heap) == 0 {
		panic("graph: IndexHeap.Pop on empty heap")
	}
	k := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[k] = -1
	if last > 0 {
		h.down(0)
	}
	return k, h.prio[k]
}

func (h *IndexHeap) less(i, j int) bool {
	a, b := h.heap[i], h.heap[j]
	if h.prio[a] != h.prio[b] {
		return h.prio[a] < h.prio[b]
	}
	return a < b // deterministic tie-break
}

func (h *IndexHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

// arity is the heap width; 4 is the usual sweet spot for Dijkstra
// workloads (shallower sifts, still cache-friendly child scans).
const arity = 4

func (h *IndexHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / arity
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *IndexHeap) down(i int) {
	n := len(h.heap)
	for {
		first := arity*i + 1
		if first >= n {
			return
		}
		m := first
		last := first + arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, m) {
				m = c
			}
		}
		if !h.less(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}
