package graph

// UnionFind is a disjoint-set union with union by rank and path
// compression. It additionally tracks the size of each set and the number
// of disjoint sets, which several mechanisms use to detect termination.
type UnionFind struct {
	parent []int
	rank   []int
	size   []int
	sets   int
}

// NewUnionFind returns n singleton sets {0}, …, {n−1}.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		size:   make([]int, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Reset restores n singleton sets without reallocating, so one UnionFind
// can serve many Kruskal/moat runs. With n larger than the current
// capacity the backing arrays grow once and are then stable.
func (uf *UnionFind) Reset(n int) {
	if cap(uf.parent) < n {
		uf.parent = make([]int, n)
		uf.rank = make([]int, n)
		uf.size = make([]int, n)
	}
	uf.parent = uf.parent[:n]
	uf.rank = uf.rank[:n]
	uf.size = uf.size[:n]
	for i := 0; i < n; i++ {
		uf.parent[i] = i
		uf.rank[i] = 0
		uf.size[i] = 1
	}
	uf.sets = n
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y and reports whether a merge happened
// (false if they were already in the same set).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	uf.size[rx] += uf.size[ry]
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// SizeOf returns the size of x's set.
func (uf *UnionFind) SizeOf(x int) int { return uf.size[uf.Find(x)] }

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }
