package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(1, 2, 0.5)
	g.AddEdge(2, 3, 2)
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d", g.Degree(1))
	}
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("Edges len = %d", len(es))
	}
	// Sorted by weight.
	if es[0].W != 0.5 || es[1].W != 1.5 || es[2].W != 2 {
		t.Errorf("Edges not sorted: %v", es)
	}
	for _, e := range es {
		if e.From >= e.To {
			t.Errorf("edge not normalized: %v", e)
		}
	}
	if got := g.TotalWeight(); got != 4 {
		t.Errorf("TotalWeight = %g", got)
	}
	v := g.AddVertex()
	if v != 4 || g.N() != 5 {
		t.Errorf("AddVertex = %d, N = %d", v, g.N())
	}
}

func TestGraphSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).AddEdge(1, 1, 1)
}

func TestGraphClone(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.AddEdge(1, 2, 2)
	if g.M() != 1 || c.M() != 2 {
		t.Errorf("clone not independent: g.M=%d c.M=%d", g.M(), c.M())
	}
}

func TestDigraphBasics(t *testing.T) {
	g := NewDigraph(3)
	g.AddArc(0, 1, 1)
	g.AddArc(1, 2, 2)
	g.AddArc(0, 2, 3)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if len(g.Out(0)) != 2 || len(g.In(2)) != 2 || len(g.In(0)) != 0 {
		t.Errorf("adjacency wrong: out0=%d in2=%d in0=%d", len(g.Out(0)), len(g.In(2)), len(g.In(0)))
	}
	arcs := g.Arcs()
	if len(arcs) != 3 || arcs[0].From != 0 || arcs[0].To != 1 {
		t.Errorf("Arcs = %v", arcs)
	}
}

func TestMatrix(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 1, 5)
	m.Set(1, 2, 7)
	if m.At(1, 0) != 5 || m.At(0, 1) != 5 {
		t.Error("Set must be symmetric")
	}
	m.SetAsym(2, 0, 9)
	if m.At(2, 0) != 9 || m.At(0, 2) != 0 {
		t.Error("SetAsym must be one-sided")
	}
	c := m.Clone()
	c.Set(0, 1, 99)
	if m.At(0, 1) != 5 {
		t.Error("Clone aliases")
	}
	g := m.Complete()
	if g.N() != 3 || g.M() != 3 {
		t.Errorf("Complete: N=%d M=%d", g.N(), g.M())
	}
}

func TestMatrixFromValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatrixFrom(2, []float64{1, 2, 3})
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Sets() != 6 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) || !uf.Union(0, 2) {
		t.Fatal("unions should succeed")
	}
	if uf.Union(1, 3) {
		t.Error("redundant union should report false")
	}
	if !uf.Same(1, 3) || uf.Same(0, 4) {
		t.Error("Same is wrong")
	}
	if uf.SizeOf(3) != 4 || uf.SizeOf(5) != 1 {
		t.Errorf("SizeOf wrong: %d %d", uf.SizeOf(3), uf.SizeOf(5))
	}
	if uf.Sets() != 3 {
		t.Errorf("Sets = %d", uf.Sets())
	}
}

// Property: after an arbitrary sequence of unions, Same agrees with a naive
// label-propagation implementation.
func TestUnionFindMatchesNaive(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 24
		uf := NewUnionFind(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		relabel := func(from, to int) {
			for i := range label {
				if label[i] == from {
					label[i] = to
				}
			}
		}
		for _, op := range ops {
			a := int(op) % n
			b := int(op>>8) % n
			if a == b {
				continue
			}
			uf.Union(a, b)
			relabel(label[a], label[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Same(i, j) != (label[i] == label[j]) {
					return false
				}
			}
		}
		// Set count matches distinct labels.
		distinct := map[int]bool{}
		for _, l := range label {
			distinct[l] = true
		}
		return uf.Sets() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIndexHeapOrdering(t *testing.T) {
	h := NewIndexHeap(10)
	prios := []float64{5, 3, 8, 1, 9, 2, 7, 0, 6, 4}
	for k, p := range prios {
		h.Push(k, p)
	}
	var got []float64
	for h.Len() > 0 {
		_, p := h.Pop()
		got = append(got, p)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("pops not sorted: %v", got)
	}
}

func TestIndexHeapDecreaseKey(t *testing.T) {
	h := NewIndexHeap(3)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.DecreaseKey(2, 5)
	h.DecreaseKey(1, 25) // ignored: not a decrease
	k, p := h.Pop()
	if k != 2 || p != 5 {
		t.Errorf("Pop = (%d, %g), want (2, 5)", k, p)
	}
	if h.Priority(1) != 20 {
		t.Errorf("priority of 1 changed to %g", h.Priority(1))
	}
	h.PushOrDecrease(2, 1) // reinsert popped key
	k, _ = h.Pop()
	if k != 2 {
		t.Errorf("PushOrDecrease reinsert failed, popped %d", k)
	}
}

func TestIndexHeapPanics(t *testing.T) {
	h := NewIndexHeap(2)
	h.Push(0, 1)
	func() {
		defer func() { recover() }()
		h.Push(0, 2)
		t.Error("double Push should panic")
	}()
	h.Pop()
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty should panic")
		}
	}()
	h.Pop()
}

// Property: heap pops match sorting, including after random DecreaseKeys.
func TestIndexHeapMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		h := NewIndexHeap(n)
		prio := make([]float64, n)
		for k := 0; k < n; k++ {
			prio[k] = rng.Float64() * 100
			h.Push(k, prio[k])
		}
		for d := 0; d < n/2; d++ {
			k := rng.Intn(n)
			p := rng.Float64() * 100
			if p < prio[k] {
				prio[k] = p
			}
			h.DecreaseKey(k, p)
		}
		want := append([]float64(nil), prio...)
		sort.Float64s(want)
		for i := 0; i < n; i++ {
			k, p := h.Pop()
			if p != want[i] {
				t.Fatalf("trial %d: pop %d = %g want %g", trial, i, p, want[i])
			}
			if prio[k] != p {
				t.Fatalf("trial %d: priority table inconsistent", trial)
			}
			if h.Contains(k) {
				t.Fatalf("popped key still contained")
			}
		}
	}
}
