package query

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"wmcs/internal/euclid1"
	"wmcs/internal/instances"
	"wmcs/internal/jv"
	"wmcs/internal/mech"
	"wmcs/internal/nwst"
	"wmcs/internal/universal"
	"wmcs/internal/wireless"
	"wmcs/internal/wmech"
)

// sameOutcome compares two outcomes for exact (bit-level) equality: the
// determinism contract is byte-identical output, so no tolerances.
func sameOutcome(a, b mech.Outcome) bool {
	if !reflect.DeepEqual(a.Receivers, b.Receivers) || len(a.Shares) != len(b.Shares) {
		return false
	}
	if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) {
		return false
	}
	for i, s := range a.Shares {
		if math.Float64bits(s) != math.Float64bits(b.Shares[i]) {
			return false
		}
	}
	return true
}

// freshMechanism builds the mechanism the pre-Evaluator way: every
// substrate freshly allocated, nothing pooled or cached.
func freshMechanism(t *testing.T, name string, nw *wireless.Network) mech.Mechanism {
	t.Helper()
	switch name {
	case "universal-shapley":
		return universal.ShapleyMechanism(universal.SPT(nw))
	case "universal-mc":
		return universal.MCMechanism(universal.SPT(nw))
	case "wireless-bb":
		return wmech.New(nw, nwst.KleinRaviOracle)
	case "jv-moat":
		return jv.NewMechanism(nw, nil)
	case "alpha1-shapley":
		return euclid1.NewAirportGame(nw).ShapleyMechanism()
	case "line-shapley":
		return euclid1.NewLineGame(nw).ShapleyMechanism()
	}
	t.Fatalf("no fresh constructor for %q", name)
	return nil
}

// TestEvaluatorMatchesFreshAcrossScenarios is the workspace differential
// test at the top layer: for every scenario family in the registry and
// every generally-applicable mechanism, repeated pooled/Reset execution
// through one Evaluator must be byte-identical to fresh-allocation
// execution, on multiple profiles.
func TestEvaluatorMatchesFreshAcrossScenarios(t *testing.T) {
	const n = 9
	names := []string{"universal-shapley", "universal-mc", "wireless-bb", "jv-moat"}
	for si, sc := range instances.Scenarios() {
		rng := rand.New(rand.NewSource(int64(100 + si)))
		nw := sc.Gen(rng, n, 2)
		ev := NewEvaluator(nw, WithOracle(nwst.KleinRaviOracle))
		for _, name := range names {
			fresh := freshMechanism(t, name, nw)
			for trial := 0; trial < 3; trial++ {
				u := mech.RandomProfile(rng, n, 60)
				want := fresh.Run(u)
				got, err := ev.Evaluate(name, nil, u)
				if err != nil {
					t.Fatalf("%s/%s: %v", sc.Name, name, err)
				}
				if !sameOutcome(want, got) {
					t.Fatalf("%s/%s trial %d: evaluator diverged from fresh run\nfresh: %+v\npooled: %+v",
						sc.Name, name, trial, want, got)
				}
				// Second pass through the (now warm) pooled path.
				again, _ := ev.Evaluate(name, nil, u)
				if !sameOutcome(want, again) {
					t.Fatalf("%s/%s trial %d: warm evaluator diverged", sc.Name, name, trial)
				}
			}
		}
	}
}

// TestEvaluatorEuclideanSpecials covers the α=1 and d=1 registry entries
// on their applicable network classes.
func TestEvaluatorEuclideanSpecials(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		nw   *wireless.Network
	}{
		{"alpha1-shapley", instances.RandomEuclidean(rng, 8, 2, 1, 10)},
		{"line-shapley", instances.RandomLine(rng, 8, 2, 10)},
	}
	for _, c := range cases {
		ev := NewEvaluator(c.nw)
		fresh := freshMechanism(t, c.name, c.nw)
		for trial := 0; trial < 3; trial++ {
			u := mech.RandomProfile(rng, c.nw.N(), 40)
			want := fresh.Run(u)
			got, err := ev.Evaluate(c.name, nil, u)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			if !sameOutcome(want, got) {
				t.Fatalf("%s trial %d: evaluator diverged", c.name, trial)
			}
		}
	}
}

// TestEvaluateRestrictsToR checks the receiver-set semantics: Evaluate
// with R must equal running the mechanism on the profile masked to R.
func TestEvaluateRestrictsToR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nw := instances.RandomEuclidean(rng, 10, 2, 2, 10)
	ev := NewEvaluator(nw, WithOracle(nwst.KleinRaviOracle))
	u := mech.RandomProfile(rng, nw.N(), 60)
	R := []int{1, 3, 4, 7}
	masked := make(mech.Profile, len(u))
	for _, r := range R {
		masked[r] = u[r]
	}
	for _, name := range []string{"universal-shapley", "wireless-bb", "jv-moat"} {
		want, err := ev.Evaluate(name, nil, masked)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.Evaluate(name, R, u)
		if err != nil {
			t.Fatal(err)
		}
		if !sameOutcome(want, got) {
			t.Fatalf("%s: R-restricted evaluate diverged from masked profile", name)
		}
		for _, r := range got.Receivers {
			found := false
			for _, x := range R {
				if x == r {
					found = true
				}
			}
			if !found && got.Shares[r] > 0 {
				t.Fatalf("%s: station %d outside R charged %g", name, r, got.Shares[r])
			}
		}
	}
}

// TestEvaluateBatchParallelDeterminism is the acceptance check: a mixed
// batch must be byte-identical at 1 worker and at 8.
func TestEvaluateBatchParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nw := instances.RandomEuclidean(rng, 10, 2, 2, 10)
	ev := NewEvaluator(nw, WithOracle(nwst.KleinRaviOracle))
	names := []string{"universal-shapley", "universal-mc", "wireless-bb", "jv-moat"}
	var reqs []Request
	for i := 0; i < 24; i++ {
		reqs = append(reqs, Request{
			Mech:    names[i%len(names)],
			Profile: mech.RandomProfile(rng, nw.N(), 60),
		})
	}
	serial := ev.EvaluateBatch(reqs, 1)
	parallel := ev.EvaluateBatch(reqs, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch")
	}
	for i := range serial {
		if (serial[i].Err == nil) != (parallel[i].Err == nil) {
			t.Fatalf("request %d: error mismatch", i)
		}
		if !sameOutcome(serial[i].Outcome, parallel[i].Outcome) {
			t.Fatalf("request %d (%s): -parallel 1 vs 8 diverged", i, reqs[i].Mech)
		}
	}
}

// TestEvaluatorErrors covers registry validation through the evaluator:
// failures must carry the registry's typed errors so callers (the
// serving layer's 400-vs-422 mapping) can branch on kind.
func TestEvaluatorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nw := instances.RandomEuclidean(rng, 6, 2, 2, 10) // α=2, d=2
	ev := NewEvaluator(nw)
	if _, err := ev.Mechanism("alpha1-shapley"); !errors.Is(err, ErrUnsupportedDomain) {
		t.Errorf("alpha1 on α=2 network: %v, want ErrUnsupportedDomain", err)
	}
	if _, err := ev.Mechanism("line-mc"); !errors.Is(err, ErrUnsupportedDomain) {
		t.Errorf("line on 2-d network: %v, want ErrUnsupportedDomain", err)
	}
	if _, err := ev.Mechanism("bogus"); !errors.Is(err, ErrUnknownMechanism) {
		t.Errorf("unknown mechanism: %v, want ErrUnknownMechanism", err)
	}
	if _, err := ev.Evaluate("bogus", nil, mech.Profile{}); !errors.Is(err, ErrUnknownMechanism) {
		t.Errorf("Evaluate unknown mechanism: %v, want ErrUnknownMechanism", err)
	}
}

// TestEvaluatorSupported: the per-network supported set is exactly the
// names Evaluate accepts — the contract the serving layer's /v1/networks
// advertisement leans on.
func TestEvaluatorSupported(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct {
		label string
		nw    *wireless.Network
	}{
		{"planar α=2", instances.RandomEuclidean(rng, 7, 2, 2, 10)},
		{"line α=2", instances.RandomLine(rng, 7, 2, 10)},
		{"line α=1", instances.RandomLine(rng, 7, 1, 10)},
		{"symmetric", instances.RandomSymmetric(rng, 7, 0.5, 10)},
	} {
		ev := NewEvaluator(tc.nw)
		supported := map[string]bool{}
		for _, name := range ev.Supported() {
			supported[name] = true
		}
		u := mech.RandomProfile(rng, tc.nw.N(), 40)
		for _, name := range Names() {
			_, err := ev.Evaluate(name, nil, u)
			if supported[name] && err != nil {
				t.Errorf("%s: Supported lists %s but Evaluate failed: %v", tc.label, name, err)
			}
			if !supported[name] && !errors.Is(err, ErrUnsupportedDomain) {
				t.Errorf("%s: Supported omits %s but Evaluate returned %v", tc.label, name, err)
			}
		}
	}
}
