// Package query implements the build-once / query-many evaluation engine
// over a fixed wireless network (DESIGN.md §7). The paper's mechanisms
// answer many receiver-set queries against one network — who is served,
// who pays — and every layer below this package is amortizable: the
// MEMT→NWST reduction depends only on the network, mechanism construction
// (universal trees, interval tables) depends only on the network, and the
// NWST contraction states are resettable. An Evaluator performs each of
// those constructions at most once and serves an arbitrary number of
// Evaluate/EvaluateBatch queries against them.
//
// Determinism contract: a query's result is byte-identical no matter how
// the evaluator has been used before (pooled states reset to
// as-constructed behavior) and no matter the EvaluateBatch worker count
// (results are collected order-stably by the engine pool). Mechanisms
// cached here must be safe for concurrent Run, which every registry
// mechanism is: they are read-only after construction, and the wireless
// mechanism's contraction-state pool is mutex-guarded.
package query

import (
	"fmt"
	"sync"

	"wmcs/internal/engine"
	"wmcs/internal/euclid1"
	"wmcs/internal/jv"
	"wmcs/internal/mech"
	"wmcs/internal/memtred"
	"wmcs/internal/nwst"
	"wmcs/internal/universal"
	"wmcs/internal/wireless"
	"wmcs/internal/wmech"
)

// Names lists the mechanism names an Evaluator accepts, in registry order.
func Names() []string {
	return []string{
		"universal-shapley", "universal-mc", "wireless-bb",
		"alpha1-shapley", "alpha1-mc", "line-shapley", "line-mc", "jv-moat",
	}
}

// Evaluator is the reusable query engine for one network: it caches the
// MEMT→NWST reduction and one mechanism instance per registry name, each
// built on first use.
//
// Concurrency: an Evaluator is safe for unbounded concurrent use, from a
// cold start onward — the serving layer shares one per hosted network
// across every client. The discipline is two-layered:
//
//   - construction is serialized by e.mu: the substrate caches (rd, spt)
//     and the mechanism map are only read or written with the mutex
//     held, so concurrent first queries race to the lock, one builds,
//     and the rest observe the completed value;
//   - execution is lock-free: Run is invoked on the shared mechanism
//     outside the mutex, which is sound because every registry mechanism
//     is immutable after construction, and the one piece of mutable
//     per-query state — the wireless mechanism's NWST contraction
//     workspace — is checked out of a mutex-guarded StatePool
//     (nwst.StatePool), giving each concurrent Run a private state.
//
// The determinism contract survives concurrency: pooled states reset to
// as-constructed behavior, so a query's outcome is bit-identical no
// matter which goroutine runs it, how many run at once, or what ran
// before (TestEvaluatorConcurrentHammer pins this under -race).
type Evaluator struct {
	net    *wireless.Network
	oracle nwst.Oracle

	mu    sync.Mutex
	rd    *memtred.Reduction
	spt   *universal.Tree
	mechs map[string]mech.Mechanism
}

// Option tunes an Evaluator at construction.
type Option func(*Evaluator)

// WithOracle selects the spider oracle of the wireless-bb mechanism
// (default nwst.BranchSpiderOracle, the paper's 1.5 ln k choice).
func WithOracle(o nwst.Oracle) Option {
	return func(e *Evaluator) { e.oracle = o }
}

// NewEvaluator builds the query engine for a network. Construction is
// cheap: all per-network work (reduction, universal tree, interval
// tables) happens lazily on the first query that needs it.
func NewEvaluator(nw *wireless.Network, opts ...Option) *Evaluator {
	e := &Evaluator{
		net:    nw,
		oracle: nwst.BranchSpiderOracle,
		mechs:  make(map[string]mech.Mechanism),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Network returns the network the evaluator serves.
func (e *Evaluator) Network() *wireless.Network { return e.net }

// Reduction returns the network's MEMT→NWST reduction, built on first
// call and shared by every wireless-bb query afterwards.
func (e *Evaluator) Reduction() *memtred.Reduction {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reductionLocked()
}

func (e *Evaluator) reductionLocked() *memtred.Reduction {
	if e.rd == nil {
		e.rd = memtred.New(e.net)
	}
	return e.rd
}

func (e *Evaluator) sptLocked() *universal.Tree {
	if e.spt == nil {
		e.spt = universal.SPT(e.net)
	}
	return e.spt
}

// Mechanism returns the cached mechanism for a registry name, building
// and validating it on first use. The returned mechanism is shared: all
// registry mechanisms are safe for concurrent Run.
func (e *Evaluator) Mechanism(name string) (mech.Mechanism, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.mechs[name]; ok {
		return m, nil
	}
	m, err := e.build(name)
	if err != nil {
		return nil, err
	}
	e.mechs[name] = m
	return m, nil
}

// build constructs a mechanism by registry name; called with e.mu held so
// the shared substrates (reduction, SPT) are cached consistently. Errors
// carry the public "wmcs:" prefix because they surface unchanged through
// the wmcs.Evaluator alias and wmcs.ByName.
func (e *Evaluator) build(name string) (mech.Mechanism, error) {
	nw := e.net
	switch name {
	case "universal-shapley":
		return universal.ShapleyMechanism(e.sptLocked()), nil
	case "universal-mc":
		return universal.MCMechanism(e.sptLocked()), nil
	case "wireless-bb":
		return wmech.NewFromReduction(e.reductionLocked(), e.oracle), nil
	case "alpha1-shapley", "alpha1-mc":
		if !nw.IsEuclidean() || nw.PowerModel().Alpha != 1 {
			return nil, fmt.Errorf("wmcs: %s requires a Euclidean network with alpha = 1", name)
		}
		g := euclid1.NewAirportGame(nw)
		if name == "alpha1-shapley" {
			return g.ShapleyMechanism(), nil
		}
		return g.MCMechanism(), nil
	case "line-shapley", "line-mc":
		if nw.Dim() != 1 {
			return nil, fmt.Errorf("wmcs: %s requires a 1-dimensional network", name)
		}
		g := euclid1.NewLineGame(nw)
		if name == "line-shapley" {
			return g.ShapleyMechanism(), nil
		}
		return g.MCMechanism(), nil
	case "jv-moat":
		return jv.NewMechanism(nw, nil), nil
	}
	return nil, fmt.Errorf("wmcs: unknown mechanism %q (try one of %v)", name, Names())
}

// Evaluate runs one receiver-set query: mechanism name, candidate
// receiver set R, reported profile u. R restricts the query — stations
// outside R are treated as not requesting service (utility 0); a nil R
// means every station may be served. The mechanism then decides, within
// R, who is actually served and what each receiver pays.
func (e *Evaluator) Evaluate(name string, R []int, u mech.Profile) (mech.Outcome, error) {
	m, err := e.Mechanism(name)
	if err != nil {
		return mech.Outcome{}, err
	}
	if R != nil {
		u = restrict(u, R)
	}
	return m.Run(u), nil
}

// restrict returns the profile that reports u inside R and 0 elsewhere.
func restrict(u mech.Profile, R []int) mech.Profile {
	v := make(mech.Profile, len(u))
	for _, r := range R {
		if r >= 0 && r < len(u) {
			v[r] = u[r]
		}
	}
	return v
}

// Request is one EvaluateBatch query.
type Request struct {
	Mech    string       // registry mechanism name
	R       []int        // candidate receiver set; nil = all stations
	Profile mech.Profile // reported utilities
}

// Response pairs a request's outcome with its per-request error (bad
// mechanism name or network class); Outcome is meaningful iff Err is nil.
type Response struct {
	Outcome mech.Outcome
	Err     error
}

// EvaluateBatch evaluates the requests on an engine pool of the given
// width (1 = serial, ≤ 0 = GOMAXPROCS) and returns the responses in
// request order. Results are byte-identical at every worker count:
// requests are independent, the engine collects order-stably, and the
// shared substrates behave identically no matter which worker touches
// them first.
func (e *Evaluator) EvaluateBatch(reqs []Request, workers int) []Response {
	pool := engine.New(workers)
	return engine.Map(pool, len(reqs), func(i int) Response {
		o, err := e.Evaluate(reqs[i].Mech, reqs[i].R, reqs[i].Profile)
		return Response{Outcome: o, Err: err}
	})
}
