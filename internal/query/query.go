// Package query implements the build-once / query-many evaluation engine
// over a fixed wireless network (DESIGN.md §7). The paper's mechanisms
// answer many receiver-set queries against one network — who is served,
// who pays — and every layer below this package is amortizable: the
// MEMT→NWST reduction depends only on the network, mechanism construction
// (universal trees, interval tables) depends only on the network, and the
// NWST contraction states are resettable. An Evaluator performs each of
// those constructions at most once and serves an arbitrary number of
// Evaluate/EvaluateBatch queries against them.
//
// Which mechanisms exist, what networks they admit and how they are
// built comes from the descriptor registry (internal/mechreg, DESIGN.md
// §9): the evaluator is a registry client — it owns the per-network
// BuildContext (the shared substrate the descriptors' Build closures
// draw from) and caches one built mechanism per name.
//
// Determinism contract: a query's result is byte-identical no matter how
// the evaluator has been used before (pooled states reset to
// as-constructed behavior) and no matter the EvaluateBatch worker count
// (results are collected order-stably by the engine pool). Mechanisms
// cached here must be safe for concurrent Run, which every registry
// mechanism is: they are read-only after construction, and the wireless
// mechanism's contraction-state pool is mutex-guarded.
package query

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"wmcs/internal/engine"
	"wmcs/internal/mech"
	"wmcs/internal/mechreg"
	"wmcs/internal/memtred"
	"wmcs/internal/nwst"
	"wmcs/internal/wireless"
)

// Names lists the mechanism names an Evaluator accepts, in registry
// order (delegated to the descriptor registry — the single source of
// truth for mechanism names).
func Names() []string { return mechreg.Names() }

// ErrUnknownMechanism and ErrUnsupportedDomain are the registry's typed
// lookup errors, re-exported so evaluator callers can branch without
// importing mechreg: an unknown name is a caller bug (the serving layer
// answers 400), a domain mismatch is a valid name on the wrong network
// class (422).
var (
	ErrUnknownMechanism  = mechreg.ErrUnknownMechanism
	ErrUnsupportedDomain = mechreg.ErrUnsupportedDomain
)

// Evaluator is the reusable query engine for one network: it caches the
// shared substrate (MEMT→NWST reduction, universal tree) inside a
// registry BuildContext and one mechanism instance per registry name,
// each built on first use.
//
// Concurrency: an Evaluator is safe for unbounded concurrent use, from a
// cold start onward — the serving layer shares one per hosted network
// across every client. The discipline is two-layered:
//
//   - construction is serialized by e.mu: the BuildContext's substrate
//     caches and the mechanism map are only read or written with the
//     mutex held, so concurrent first queries race to the lock, one
//     builds, and the rest observe the completed value;
//   - execution is lock-free: Run is invoked on the shared mechanism
//     outside the mutex, which is sound because every registry mechanism
//     is immutable after construction, and the one piece of mutable
//     per-query state — the wireless mechanism's NWST contraction
//     workspace — is checked out of a mutex-guarded StatePool
//     (nwst.StatePool), giving each concurrent Run a private state.
//
// The determinism contract survives concurrency: pooled states reset to
// as-constructed behavior, so a query's outcome is bit-identical no
// matter which goroutine runs it, how many run at once, or what ran
// before (TestEvaluatorConcurrentHammer pins this under -race).
type Evaluator struct {
	net *wireless.Network
	// noDelta disables the versioned evaluator's delta-aware update
	// paths (WithoutDeltaRebuild) — carried here because options apply
	// per evaluator and VersionedEvaluator consults the current one.
	noDelta bool
	// pool and parallelWorkers carry the WithParallel configuration: a
	// shared engine pool for the parallel evaluation tier (DESIGN.md
	// §14) and its declared width. nil/0 = serial tier.
	pool            *engine.Pool
	parallelWorkers int

	mu        sync.Mutex
	ctx       *mechreg.BuildContext
	mechs     map[string]mech.Mechanism
	supported []string
}

// Option tunes an Evaluator at construction.
type Option func(*Evaluator)

// WithOracle selects the spider oracle of the wireless-bb mechanism
// (default nwst.BranchSpiderOracle, the paper's 1.5 ln k choice).
func WithOracle(o nwst.Oracle) Option {
	return func(e *Evaluator) { e.ctx.Oracle = o }
}

// WithoutDeltaRebuild makes VersionedEvaluator.Update always rebuild
// from scratch, ignoring the mutation delta. It exists as the
// full-rebuild baseline the E15 experiment and the differential sweep
// compare the delta path against — production callers want the default.
func WithoutDeltaRebuild() Option {
	return func(e *Evaluator) { e.noDelta = true }
}

// NewEvaluator builds the query engine for a network. Construction is
// cheap: all per-network work (reduction, universal tree, interval
// tables) happens lazily on the first query that needs it.
func NewEvaluator(nw *wireless.Network, opts ...Option) *Evaluator {
	e := &Evaluator{
		net:   nw,
		ctx:   mechreg.NewBuildContext(nw),
		mechs: make(map[string]mech.Mechanism),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Network returns the network the evaluator serves.
func (e *Evaluator) Network() *wireless.Network { return e.net }

// Reduction returns the network's MEMT→NWST reduction, built on first
// call and shared by every wireless-bb query afterwards.
func (e *Evaluator) Reduction() *memtred.Reduction {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ctx.Reduction()
}

// builtReduction peeks at the reduction without forcing a build: the
// versioned update path only has a donor when some query already paid
// for one.
func (e *Evaluator) builtReduction() *memtred.Reduction {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ctx.PeekReduction()
}

// seedReduction installs an incrementally rebuilt reduction before the
// evaluator is published (VersionedEvaluator.Update's delta path).
func (e *Evaluator) seedReduction(rd *memtred.Reduction) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ctx.SeedReduction(rd)
}

// setSupported pre-fills the supported-name cache; used by the
// versioned update path, which knows the set is version-invariant (the
// mutation ops preserve the network class).
func (e *Evaluator) setSupported(names []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.supported = names
}

// Supported lists, in registry order, the mechanism names whose declared
// domain admits this evaluator's network — exactly the names Evaluate
// will not reject with ErrUnsupportedDomain. The serving layer
// advertises this set per hosted network.
func (e *Evaluator) Supported() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.supported == nil {
		e.supported = mechreg.SupportedNames(e.net)
	}
	// Callers get a copy: appending to a shared cached slice would race
	// across goroutines (and corrupt the cache).
	return append([]string(nil), e.supported...)
}

// Mechanism returns the cached mechanism for a registry name, building
// and validating it on first use (a registry lookup plus the
// descriptor's domain check; errors wrap ErrUnknownMechanism or
// ErrUnsupportedDomain and carry the public "wmcs:" prefix because they
// surface unchanged through the wmcs.Evaluator alias and wmcs.ByName).
// The returned mechanism is shared: all registry mechanisms are safe
// for concurrent Run.
func (e *Evaluator) Mechanism(name string) (mech.Mechanism, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.mechs[name]; ok {
		return m, nil
	}
	// Built with e.mu held so the BuildContext's substrate caches
	// (reduction, SPT) are read and written consistently.
	m, err := mechreg.Build(name, e.ctx)
	if err != nil {
		return nil, err
	}
	e.mechs[name] = m
	return m, nil
}

// Evaluate runs one receiver-set query: mechanism name, candidate
// receiver set R, reported profile u. R restricts the query — stations
// outside R are treated as not requesting service (utility 0); a nil R
// means every station may be served. The mechanism then decides, within
// R, who is actually served and what each receiver pays.
func (e *Evaluator) Evaluate(name string, R []int, u mech.Profile) (mech.Outcome, error) {
	m, err := e.Mechanism(name)
	if err != nil {
		return mech.Outcome{}, err
	}
	if R != nil {
		u = restrict(u, R)
	}
	return m.Run(u), nil
}

// ErrNoApproxTier marks an approximate request against a mechanism whose
// descriptor declares no sampled tier. The name and network class are
// fine — only the tier selection is not — so the serving layer answers a
// structured 422, like a domain mismatch.
var ErrNoApproxTier = errors.New("mechanism has no approximate tier")

// EvaluateApprox runs one receiver-set query on the mechanism's sampled
// tier: same restriction semantics as Evaluate, plus the (ε, δ)
// certificate of the returned shares. It fails with ErrNoApproxTier when
// the mechanism does not implement mech.ApproxRunner, and passes through
// the spec-validation error of an invalid ApproxSpec.
func (e *Evaluator) EvaluateApprox(name string, R []int, u mech.Profile, spec mech.ApproxSpec) (mech.Outcome, mech.ApproxCert, error) {
	m, err := e.Mechanism(name)
	if err != nil {
		return mech.Outcome{}, mech.ApproxCert{}, err
	}
	ar, ok := m.(mech.ApproxRunner)
	if !ok {
		return mech.Outcome{}, mech.ApproxCert{}, fmt.Errorf("wmcs: %q: %w", name, ErrNoApproxTier)
	}
	if R != nil {
		u = restrict(u, R)
	}
	return ar.RunApprox(u, spec)
}

// restrict returns the profile that reports u inside R and 0 elsewhere.
func restrict(u mech.Profile, R []int) mech.Profile {
	v := make(mech.Profile, len(u))
	for _, r := range R {
		if r >= 0 && r < len(u) {
			v[r] = u[r]
		}
	}
	return v
}

// Request is one EvaluateBatch query.
type Request struct {
	Mech    string       // registry mechanism name
	R       []int        // candidate receiver set; nil = all stations
	Profile mech.Profile // reported utilities
	// Approx selects the mechanism's sampled tier; nil runs exact. The
	// two tiers never share results: the serving layer keys its cache on
	// the canonicalized spec.
	Approx *mech.ApproxSpec
}

// Response pairs a request's outcome with its per-request error (bad
// mechanism name or network class); Outcome is meaningful iff Err is nil.
// Cert is non-nil exactly for successful approximate-tier requests.
type Response struct {
	Outcome mech.Outcome
	Cert    *mech.ApproxCert
	Err     error
}

// EvaluateBatch evaluates the requests on an engine pool of the given
// width (1 = serial, ≤ 0 = GOMAXPROCS) and returns the responses in
// request order. Results are byte-identical at every worker count:
// requests are independent, the engine collects order-stably, and the
// shared substrates behave identically no matter which worker touches
// them first.
func (e *Evaluator) EvaluateBatch(reqs []Request, workers int) []Response {
	pool := engine.New(workers)
	return engine.Map(pool, len(reqs), func(i int) Response {
		return e.evalOne(reqs[i])
	})
}

// EvaluateBatchTimed is EvaluateBatch plus per-request timing: durs[i]
// is how long request i's own evaluation took on its worker — the
// serving layer's per-stage attribution hook (the batch's total wall
// time is the caller's to measure around the call). Timing reads the
// clock twice per request and never influences the result bytes, so
// the determinism contract of EvaluateBatch carries over unchanged.
func (e *Evaluator) EvaluateBatchTimed(reqs []Request, workers int) ([]Response, []time.Duration) {
	durs := make([]time.Duration, len(reqs))
	pool := engine.New(workers)
	resps := engine.Map(pool, len(reqs), func(i int) Response {
		start := time.Now() //lint:wallclock per-element latency telemetry for serve's stage attribution; never reaches response bytes
		r := e.evalOne(reqs[i])
		durs[i] = time.Since(start) //lint:wallclock per-element latency telemetry for serve's stage attribution; never reaches response bytes
		return r
	})
	return resps, durs
}

// evalOne dispatches one batch element to the exact or sampled tier.
func (e *Evaluator) evalOne(req Request) Response {
	if spec := req.Approx; spec != nil {
		o, cert, err := e.EvaluateApprox(req.Mech, req.R, req.Profile, *spec)
		if err != nil {
			return Response{Err: err}
		}
		return Response{Outcome: o, Cert: &cert}
	}
	o, err := e.Evaluate(req.Mech, req.R, req.Profile)
	return Response{Outcome: o, Err: err}
}
