package query

import (
	"fmt"
	"math/rand"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/mech"
	"wmcs/internal/mechreg"
	"wmcs/internal/wireless"
	"wmcs/internal/wmech"
)

// This file is the registry × scenario differential sweep for the
// memoized hot path: every mechanism the registry admits on a scenario
// family, probed at several receiver-set sizes, must answer
// bit-identically (a) at engine widths 1 and 8, (b) on a memo-warm
// evaluator replaying queries it has already seen, (c) against a fresh
// evaluator with cold substrates, (d) for wireless-bb, against the seed
// evaluation path itself — a mechanism with trajectory memoization
// disabled — and (e) across a VersionedEvaluator.Update, where the new
// generation must match a from-scratch build of the updated network
// (i.e. the retired generation's memo must not leak forward).

// sweepFamily pairs a scenario spec with the registry mechanisms its
// network class admits.
type sweepFamily struct {
	spec  instances.Spec
	mechs []string
}

func sweepFamilies(n int) []sweepFamily {
	general := []string{mechreg.UniversalShapley, mechreg.UniversalMC, mechreg.WirelessBB, mechreg.JVMoat}
	var fams []sweepFamily
	for si, sc := range instances.Scenarios() {
		fams = append(fams, sweepFamily{
			spec:  instances.Spec{Name: "sw-" + sc.Name, Scenario: sc.Name, N: n, Alpha: 2, Seed: int64(900 + si)},
			mechs: general,
		})
	}
	fams = append(fams,
		sweepFamily{
			spec:  instances.Spec{Name: "sw-alpha1", Scenario: "uniform", N: n, Alpha: 1, Seed: 921},
			mechs: []string{mechreg.Alpha1Shapley, mechreg.Alpha1MC},
		},
		sweepFamily{
			spec:  instances.Spec{Name: "sw-line1", Scenario: "line", N: n, Alpha: 2, Seed: 922},
			mechs: []string{mechreg.LineShapley, mechreg.LineMC},
		},
	)
	return fams
}

// sweepRequests builds the family's request grid: every mechanism at
// receiver-set sizes 2, n/2 and n-1, each with a seeded random profile.
func sweepRequests(nw *wireless.Network, mechs []string, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	recvs := nw.AllReceivers()
	var reqs []Request
	for _, name := range mechs {
		for _, size := range []int{2, len(recvs) / 2, len(recvs)} {
			R := append([]int(nil), recvs...)
			rng.Shuffle(len(R), func(i, j int) { R[i], R[j] = R[j], R[i] })
			R = R[:size]
			u := make(mech.Profile, nw.N())
			for _, r := range R {
				u[r] = 1 + rng.Float64()*40
			}
			reqs = append(reqs, Request{Mech: name, R: R, Profile: u})
		}
	}
	return reqs
}

// mutateForUpdate perturbs one station (or, on the abstract family, one
// edge) so the version bumps and most costs of interest change.
func mutateForUpdate(nw *wireless.Network) error {
	if !nw.IsEuclidean() {
		_, err := nw.SetCost(1, 2, nw.CostMatrix().At(1, 2)*1.25+0.1)
		return err
	}
	i := (nw.Source() + 1) % nw.N()
	p := nw.Points()[i].Clone()
	p[0] += 0.07
	_, err := nw.MoveStation(i, p)
	return err
}

func TestRegistryScenarioDifferentialSweep(t *testing.T) {
	const n = 9
	for _, f := range sweepFamilies(n) {
		f := f
		t.Run(f.spec.Name, func(t *testing.T) {
			nw, err := f.spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			ve := NewVersioned(nw)
			reqs := sweepRequests(ve.Network(), f.mechs, f.spec.Seed)

			check := func(leg string, got, want []Response) {
				t.Helper()
				for i := range got {
					if (got[i].Err == nil) != (want[i].Err == nil) {
						t.Fatalf("%s req %d (%s): err %v vs %v", leg, i, reqs[i].Mech, got[i].Err, want[i].Err)
					}
					if got[i].Err == nil && !sameOutcome(got[i].Outcome, want[i].Outcome) {
						t.Fatalf("%s req %d (%s, |R|=%d): outcomes diverge\ngot:  %+v\nwant: %+v",
							leg, i, reqs[i].Mech, len(reqs[i].R), got[i].Outcome, want[i].Outcome)
					}
				}
			}

			// (a) engine width must not matter, cold or warm.
			serial := ve.Evaluator().EvaluateBatch(reqs, 1)
			wide := ve.Evaluator().EvaluateBatch(reqs, 8)
			check("width 8 vs 1", wide, serial)

			// (b) a memo-warm evaluator replaying the same queries.
			replay := ve.Evaluator().EvaluateBatch(reqs, 8)
			check("warm replay", replay, serial)

			// (c) a fresh evaluator: cold substrate caches, empty memo.
			fresh := NewEvaluator(ve.Network()).EvaluateBatch(reqs, 1)
			check("fresh evaluator", serial, fresh)

			// (d) the seed path: wireless-bb with trajectory memoization
			// off entirely, run outside any evaluator.
			seed := wmech.New(ve.Network(), nil)
			seed.DisableMemo()
			for i, r := range reqs {
				if r.Mech != mechreg.WirelessBB {
					continue
				}
				if serial[i].Err != nil {
					t.Fatalf("wireless-bb req %d failed: %v", i, serial[i].Err)
				}
				if got := seed.Run(restrict(r.Profile, r.R)); !sameOutcome(serial[i].Outcome, got) {
					t.Fatalf("memoized wireless-bb diverges from the memo-off seed path (req %d, |R|=%d)\nmemo: %+v\nseed: %+v",
						i, len(r.R), serial[i].Outcome, got)
				}
			}

			// (e) across an update, three ways that must agree bitwise:
			// the delta-aware rebuild (default), the full from-scratch
			// rebuild (WithoutDeltaRebuild), and a cold evaluator over
			// the updated network — a stale memo, a wrongly-shared
			// substrate slice, or an unsound incremental reduction
			// would make one of them reproduce the *old* network's
			// answers. Both versioned paths warm the same mechanism set
			// first (the batches above built it), so the comparison
			// covers the warmed instances, not just lazy rebuilds.
			veFull := NewVersioned(nw, WithoutDeltaRebuild())
			veFull.Evaluator().EvaluateBatch(reqs, 1)
			res, err := ve.Update(mutateForUpdate)
			if err != nil {
				t.Fatal(err)
			}
			if res.NewVersion <= res.OldVersion {
				t.Fatalf("update did not bump the version: %d -> %d", res.OldVersion, res.NewVersion)
			}
			if _, err := veFull.Update(mutateForUpdate); err != nil {
				t.Fatal(err)
			}
			after := ve.Evaluator().EvaluateBatch(reqs, 8)
			full := veFull.Evaluator().EvaluateBatch(reqs, 8)
			scratch := NewEvaluator(ve.Network()).EvaluateBatch(reqs, 1)
			check(fmt.Sprintf("post-update v%d delta vs cold", res.NewVersion), after, scratch)
			check(fmt.Sprintf("post-update v%d full vs cold", res.NewVersion), full, scratch)
		})
	}
}
