package query

import (
	"math/rand"
	"sync"
	"testing"

	"wmcs/internal/instances"
	"wmcs/internal/mech"
)

// TestEvaluatorConcurrentHammer drives one Evaluator from many
// goroutines at once — from a cold start, so the lazy substrate
// construction (reduction, universal tree, mechanism map) races too —
// and checks every concurrent outcome bit-for-bit against a serial
// baseline. Run under -race (CI does) this is the package's concurrency
// proof; without -race it still pins cross-goroutine determinism.
func TestEvaluatorConcurrentHammer(t *testing.T) {
	const (
		n       = 10
		workers = 12
		rounds  = 2
	)
	rng := rand.New(rand.NewSource(77))
	nw := instances.RandomEuclidean(rng, n, 2, 2, 10)
	names := []string{"universal-shapley", "universal-mc", "wireless-bb", "jv-moat"}

	// Fixed query set, answered serially first on a separate evaluator.
	profiles := make([]mech.Profile, 6)
	for i := range profiles {
		profiles[i] = mech.RandomProfile(rng, n, 50)
		profiles[i][nw.Source()] = 0
	}
	baseline := make(map[string][]mech.Outcome)
	serial := NewEvaluator(nw)
	for _, name := range names {
		outs := make([]mech.Outcome, len(profiles))
		for i, u := range profiles {
			o, err := serial.Evaluate(name, nil, u)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			outs[i] = o
		}
		baseline[name] = outs
	}

	// Cold evaluator, hammered: every worker walks the query grid in a
	// different order so builds, pool checkouts and cache reads overlap.
	ev := NewEvaluator(nw)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := 0; k < len(names)*len(profiles); k++ {
					idx := (k*7 + w + r) % (len(names) * len(profiles))
					name := names[idx%len(names)]
					pi := idx / len(names)
					got, err := ev.Evaluate(name, nil, profiles[pi])
					if err != nil {
						errs <- err
						return
					}
					if !sameOutcome(baseline[name][pi], got) {
						t.Errorf("worker %d: %s on profile %d diverged from serial baseline", w, name, pi)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEvaluateBatchConcurrentCallers checks the other concurrency
// surface: many goroutines each running EvaluateBatch on the same
// evaluator (as the serving layer's dispatcher does for every admission
// round) with full worker pools, all agreeing with the serial answers.
func TestEvaluateBatchConcurrentCallers(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	nw := instances.RandomEuclidean(rng, 9, 2, 2, 10)
	reqs := make([]Request, 12)
	for i := range reqs {
		reqs[i] = Request{
			Mech:    []string{"universal-shapley", "wireless-bb", "jv-moat"}[i%3],
			Profile: mech.RandomProfile(rng, 9, 40),
		}
	}
	ev := NewEvaluator(nw)
	want := ev.EvaluateBatch(reqs, 1)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := ev.EvaluateBatch(reqs, 4)
			for i := range got {
				if (got[i].Err == nil) != (want[i].Err == nil) {
					t.Errorf("request %d: error mismatch", i)
					return
				}
				if got[i].Err == nil && !sameOutcome(want[i].Outcome, got[i].Outcome) {
					t.Errorf("request %d: outcome diverged under concurrent batches", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}
