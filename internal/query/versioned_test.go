package query

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"wmcs/internal/graph"
	"wmcs/internal/mech"
	"wmcs/internal/wireless"
)

func symNet(n int, seed int64) *wireless.Network {
	rng := rand.New(rand.NewSource(seed))
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 0.5+rng.Float64()*9.5)
		}
	}
	return wireless.NewSymmetric(m, 0)
}

func TestVersionedUpdateSwapsAndDrains(t *testing.T) {
	nw := symNet(8, 3)
	v := NewVersioned(nw)
	u := mech.RandomProfile(rand.New(rand.NewSource(9)), 8, 50)

	before := v.Current()
	o1, err := before.Ev.Evaluate("universal-shapley", nil, u)
	if err != nil {
		t.Fatal(err)
	}
	res, err := v.Update(func(nw *wireless.Network) error {
		_, err := nw.SetCost(1, 2, 0.01)
		return err
	})
	if err != nil || res.OldVersion != 0 || res.NewVersion != 1 {
		t.Fatalf("Update: %+v err=%v", res, err)
	}
	after := v.Current()
	if after == before || after.Version != 1 {
		t.Fatalf("swap missing: %+v", after)
	}
	// The old pair still answers, identically to before the update: an
	// in-flight query that resolved the pair pre-swap drains untouched.
	o1b, err := before.Ev.Evaluate("universal-shapley", nil, u)
	if err != nil || !reflect.DeepEqual(o1, o1b) {
		t.Fatalf("old evaluator drifted after swap: %v / %+v vs %+v", err, o1, o1b)
	}
	// The new pair answers against the mutated network: byte-for-byte
	// what a cold evaluator over the same mutated snapshot computes.
	o2, err := after.Ev.Evaluate("universal-shapley", nil, u)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewEvaluator(after.Ev.Network()).Evaluate("universal-shapley", nil, u)
	if err != nil || !reflect.DeepEqual(o2, cold) {
		t.Fatalf("swapped evaluator differs from cold rebuild: %v", err)
	}
	if reflect.DeepEqual(o1, o2) {
		t.Fatal("update had no observable effect (cost change chosen too small?)")
	}
}

func TestVersionedUpdateIsAtomicOnError(t *testing.T) {
	v := NewVersioned(symNet(6, 4))
	before := v.Current()
	sentinel := errors.New("boom")
	res, err := v.Update(func(nw *wireless.Network) error {
		// Partial mutation, then failure: nothing may be published.
		if _, err := nw.SetCost(1, 2, 3); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) || res.OldVersion != res.NewVersion {
		t.Fatalf("Update: %+v err=%v", res, err)
	}
	if cur := v.Current(); cur != before {
		t.Fatal("failed update swapped the pair")
	}
	if c := v.Network().C(1, 2); c == 3 {
		t.Fatal("partial mutation leaked into the published network")
	}
}

func TestVersionedNoOpUpdateKeepsPair(t *testing.T) {
	v := NewVersioned(symNet(6, 5))
	before := v.Current()
	res, err := v.Update(func(nw *wireless.Network) error { return nil })
	if err != nil || res.OldVersion != res.NewVersion || res.Rebuild != 0 {
		t.Fatalf("no-op update: %+v err=%v", res, err)
	}
	if v.Current() != before {
		t.Fatal("no-op update swapped the pair")
	}
}

func TestVersionedWarmRebuild(t *testing.T) {
	v := NewVersioned(symNet(7, 6))
	u := mech.RandomProfile(rand.New(rand.NewSource(2)), 7, 50)
	for _, name := range []string{"universal-shapley", "jv-moat"} {
		if _, err := v.Evaluator().Evaluate(name, nil, u); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Update(func(nw *wireless.Network) error {
		_, err := nw.SetCost(2, 3, 1.5)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got := v.Evaluator().BuiltNames()
	want := []string{"jv-moat", "universal-shapley"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warmed mechanisms %v, want %v", got, want)
	}
}

func TestVersionedCallerCannotMutateThroughInput(t *testing.T) {
	nw := symNet(6, 7)
	v := NewVersioned(nw)
	if _, err := nw.SetCost(1, 2, 42); err != nil {
		t.Fatal(err)
	}
	if v.Network().C(1, 2) == 42 {
		t.Fatal("caller mutation reached the versioned evaluator's snapshot")
	}
	if v.Version() != 0 {
		t.Fatalf("version %d, want 0", v.Version())
	}
}

// TestVersionedUnchangedFastPath: an op sequence that cancels out
// bitwise (disable + enable) republishes the *same* evaluator object
// under the new version — zero mechanism rebuilds, Unchanged set.
func TestVersionedUnchangedFastPath(t *testing.T) {
	v := NewVersioned(symNet(8, 5))
	oldEv := v.Evaluator()
	res, err := v.Update(func(nw *wireless.Network) error {
		if _, err := nw.SetStationEnabled(3, false); err != nil {
			return err
		}
		_, err := nw.SetStationEnabled(3, true)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Unchanged || !res.Incremental || res.RebuiltMechs != 0 {
		t.Fatalf("round trip not detected as unchanged: %+v", res)
	}
	if res.NewVersion != res.OldVersion+2 {
		t.Fatalf("version transition %d -> %d, want +2", res.OldVersion, res.NewVersion)
	}
	if v.Evaluator() != oldEv {
		t.Fatal("unchanged update swapped in a new evaluator")
	}
	if v.Version() != res.NewVersion {
		t.Fatalf("published version %d, want %d", v.Version(), res.NewVersion)
	}
}

// TestVersionedUnchangedFastPathDisabled: WithoutDeltaRebuild must not
// take the fast path even when the states compare equal.
func TestVersionedUnchangedFastPathDisabled(t *testing.T) {
	v := NewVersioned(symNet(8, 5), WithoutDeltaRebuild())
	oldEv := v.Evaluator()
	res, err := v.Update(func(nw *wireless.Network) error {
		if _, err := nw.SetStationEnabled(3, false); err != nil {
			return err
		}
		_, err := nw.SetStationEnabled(3, true)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Unchanged || res.Incremental {
		t.Fatalf("baseline evaluator took a reuse path: %+v", res)
	}
	if v.Evaluator() == oldEv {
		t.Fatal("baseline update did not swap the evaluator")
	}
}

// TestVersionedIncrementalReductionSeed: after a single-row SetCost on
// an evaluator that built the MEMT→NWST reduction, the update must
// seed the replacement incrementally (Incremental, no Unchanged) and
// still answer byte-identically to a cold evaluator.
func TestVersionedIncrementalReductionSeed(t *testing.T) {
	v := NewVersioned(symNet(9, 7))
	u := mech.RandomProfile(rand.New(rand.NewSource(11)), 9, 50)
	// Warm wireless-bb so the outgoing evaluator owns a reduction donor.
	if _, err := v.Evaluator().Evaluate("wireless-bb", nil, u); err != nil {
		t.Fatal(err)
	}
	res, err := v.Update(func(nw *wireless.Network) error {
		_, err := nw.SetCost(1, 2, nw.C(1, 2)*1.25)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Incremental || res.Unchanged {
		t.Fatalf("single-row SetCost did not take the incremental path: %+v", res)
	}
	if res.RebuiltMechs != 1 {
		t.Fatalf("warmed %d mechanisms, want 1 (wireless-bb)", res.RebuiltMechs)
	}
	got, err := v.Evaluator().Evaluate("wireless-bb", nil, u)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewEvaluator(v.Network()).Evaluate("wireless-bb", nil, u)
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(got, want) {
		t.Fatalf("incremental evaluator diverges from cold\ngot:  %+v\nwant: %+v", got, want)
	}
}

// TestVersionedNoOpOpsDoNotRetire: a mutate whose every op is a true
// no-op (same-value SetCost) publishes nothing.
func TestVersionedNoOpOpsDoNotRetire(t *testing.T) {
	v := NewVersioned(symNet(8, 5))
	oldEv := v.Evaluator()
	res, err := v.Update(func(nw *wireless.Network) error {
		_, err := nw.SetCost(1, 2, nw.C(1, 2))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NewVersion != res.OldVersion || !res.Delta.Empty() || res.Rebuild != 0 {
		t.Fatalf("no-op ops published something: %+v", res)
	}
	if v.Evaluator() != oldEv {
		t.Fatal("no-op update swapped the evaluator")
	}
}
