package query

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"wmcs/internal/graph"
	"wmcs/internal/mech"
	"wmcs/internal/wireless"
)

func symNet(n int, seed int64) *wireless.Network {
	rng := rand.New(rand.NewSource(seed))
	m := graph.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 0.5+rng.Float64()*9.5)
		}
	}
	return wireless.NewSymmetric(m, 0)
}

func TestVersionedUpdateSwapsAndDrains(t *testing.T) {
	nw := symNet(8, 3)
	v := NewVersioned(nw)
	u := mech.RandomProfile(rand.New(rand.NewSource(9)), 8, 50)

	before := v.Current()
	o1, err := before.Ev.Evaluate("universal-shapley", nil, u)
	if err != nil {
		t.Fatal(err)
	}
	oldVer, newVer, _, err := v.Update(func(nw *wireless.Network) error {
		return nw.SetCost(1, 2, 0.01)
	})
	if err != nil || oldVer != 0 || newVer != 1 {
		t.Fatalf("Update: old=%d new=%d err=%v", oldVer, newVer, err)
	}
	after := v.Current()
	if after == before || after.Version != 1 {
		t.Fatalf("swap missing: %+v", after)
	}
	// The old pair still answers, identically to before the update: an
	// in-flight query that resolved the pair pre-swap drains untouched.
	o1b, err := before.Ev.Evaluate("universal-shapley", nil, u)
	if err != nil || !reflect.DeepEqual(o1, o1b) {
		t.Fatalf("old evaluator drifted after swap: %v / %+v vs %+v", err, o1, o1b)
	}
	// The new pair answers against the mutated network: byte-for-byte
	// what a cold evaluator over the same mutated snapshot computes.
	o2, err := after.Ev.Evaluate("universal-shapley", nil, u)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewEvaluator(after.Ev.Network()).Evaluate("universal-shapley", nil, u)
	if err != nil || !reflect.DeepEqual(o2, cold) {
		t.Fatalf("swapped evaluator differs from cold rebuild: %v", err)
	}
	if reflect.DeepEqual(o1, o2) {
		t.Fatal("update had no observable effect (cost change chosen too small?)")
	}
}

func TestVersionedUpdateIsAtomicOnError(t *testing.T) {
	v := NewVersioned(symNet(6, 4))
	before := v.Current()
	sentinel := errors.New("boom")
	oldVer, newVer, _, err := v.Update(func(nw *wireless.Network) error {
		// Partial mutation, then failure: nothing may be published.
		if err := nw.SetCost(1, 2, 3); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) || oldVer != newVer {
		t.Fatalf("Update: old=%d new=%d err=%v", oldVer, newVer, err)
	}
	if cur := v.Current(); cur != before {
		t.Fatal("failed update swapped the pair")
	}
	if c := v.Network().C(1, 2); c == 3 {
		t.Fatal("partial mutation leaked into the published network")
	}
}

func TestVersionedNoOpUpdateKeepsPair(t *testing.T) {
	v := NewVersioned(symNet(6, 5))
	before := v.Current()
	oldVer, newVer, rebuild, err := v.Update(func(nw *wireless.Network) error { return nil })
	if err != nil || oldVer != newVer || rebuild != 0 {
		t.Fatalf("no-op update: old=%d new=%d rebuild=%v err=%v", oldVer, newVer, rebuild, err)
	}
	if v.Current() != before {
		t.Fatal("no-op update swapped the pair")
	}
}

func TestVersionedWarmRebuild(t *testing.T) {
	v := NewVersioned(symNet(7, 6))
	u := mech.RandomProfile(rand.New(rand.NewSource(2)), 7, 50)
	for _, name := range []string{"universal-shapley", "jv-moat"} {
		if _, err := v.Evaluator().Evaluate(name, nil, u); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := v.Update(func(nw *wireless.Network) error {
		return nw.SetCost(2, 3, 1.5)
	}); err != nil {
		t.Fatal(err)
	}
	got := v.Evaluator().BuiltNames()
	want := []string{"jv-moat", "universal-shapley"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("warmed mechanisms %v, want %v", got, want)
	}
}

func TestVersionedCallerCannotMutateThroughInput(t *testing.T) {
	nw := symNet(6, 7)
	v := NewVersioned(nw)
	if err := nw.SetCost(1, 2, 42); err != nil {
		t.Fatal(err)
	}
	if v.Network().C(1, 2) == 42 {
		t.Fatal("caller mutation reached the versioned evaluator's snapshot")
	}
	if v.Version() != 0 {
		t.Fatalf("version %d, want 0", v.Version())
	}
}
