package query

import (
	"errors"
	"math"
	"testing"

	"wmcs/internal/mech"
	"wmcs/internal/mechreg"
)

// This file is the width-1 ≡ width-N differential sweep for the parallel
// evaluation tier (DESIGN.md §14): over the full registry × scenario
// grid, an evaluator built with WithParallel must answer bit-identically
// at every pool width — exact outcomes, sampled outcomes, AND the (ε, δ)
// certificates — and the exact tier must also agree with the legacy
// serial evaluator on these instances (the parallel oracle's fixed-slice
// fold applies the same acceptance predicate, so real instances without
// sub-eps ratio chains coincide exactly).

// sameCert compares approx certificates bitwise (nil == nil).
func sameCert(a, b *mech.ApproxCert) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Samples == b.Samples && a.Delta == b.Delta &&
		math.Float64bits(a.Epsilon) == math.Float64bits(b.Epsilon) &&
		math.Float64bits(a.DeltaMax) == math.Float64bits(b.DeltaMax)
}

// withApproxTier appends, for every mechanism in reqs that declares a
// sampled tier, a copy of each of its requests routed through that tier.
func withApproxTier(reqs []Request) []Request {
	out := append([]Request(nil), reqs...)
	for _, r := range reqs {
		d, err := mechreg.ByName(r.Mech)
		if err != nil || !d.Approx {
			continue
		}
		ar := r
		ar.Approx = &mech.ApproxSpec{Samples: 48, Delta: 0.1, Seed: 31}
		out = append(out, ar)
	}
	return out
}

func TestParallelWidthInvariantSweep(t *testing.T) {
	const n = 9
	for _, f := range sweepFamilies(n) {
		f := f
		t.Run(f.spec.Name, func(t *testing.T) {
			nw, err := f.spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			reqs := withApproxTier(sweepRequests(nw, f.mechs, f.spec.Seed))

			p1 := NewEvaluator(nw, WithParallel(ParallelSpec{Workers: 1}))
			base := p1.EvaluateBatch(reqs, 1)
			for _, width := range []int{2, 3, 8} {
				pw := NewEvaluator(nw, WithParallel(ParallelSpec{Workers: width}))
				got := pw.EvaluateBatch(reqs, 1)
				for i := range got {
					if (got[i].Err == nil) != (base[i].Err == nil) {
						t.Fatalf("width %d req %d (%s): err %v vs %v",
							width, i, reqs[i].Mech, got[i].Err, base[i].Err)
					}
					if got[i].Err != nil {
						continue
					}
					if !sameOutcome(got[i].Outcome, base[i].Outcome) {
						t.Fatalf("width %d req %d (%s, approx=%v, |R|=%d): outcomes diverge\ngot:  %+v\nwant: %+v",
							width, i, reqs[i].Mech, reqs[i].Approx != nil, len(reqs[i].R),
							got[i].Outcome, base[i].Outcome)
					}
					if !sameCert(got[i].Cert, base[i].Cert) {
						t.Fatalf("width %d req %d (%s): certificates diverge\ngot:  %+v\nwant: %+v",
							width, i, reqs[i].Mech, got[i].Cert, base[i].Cert)
					}
				}
			}

			// The exact tier must also match the legacy serial evaluator:
			// closed-form mechanisms are untouched by the pool, and the
			// parallel spider oracle coincides with the serial one on
			// these instances.
			legacy := NewEvaluator(nw).EvaluateBatch(reqs, 1)
			for i := range base {
				if reqs[i].Approx != nil {
					continue // sampled tiers differ by design across tiers
				}
				if (base[i].Err == nil) != (legacy[i].Err == nil) {
					t.Fatalf("legacy req %d (%s): err %v vs %v", i, reqs[i].Mech, base[i].Err, legacy[i].Err)
				}
				if base[i].Err == nil && !sameOutcome(base[i].Outcome, legacy[i].Outcome) {
					t.Fatalf("exact tier diverges from legacy serial (req %d, %s, |R|=%d)\nparallel: %+v\nlegacy:   %+v",
						i, reqs[i].Mech, len(reqs[i].R), base[i].Outcome, legacy[i].Outcome)
				}
			}
		})
	}
}

// TestParallelSurvivesVersionedUpdate: WithParallel is part of the
// versioned evaluator's option set, so every rebuilt generation keeps
// the configured width, and post-update answers still match a cold
// width-1 parallel evaluator over the updated network.
func TestParallelSurvivesVersionedUpdate(t *testing.T) {
	f := sweepFamilies(9)[0]
	nw, err := f.spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	ve := NewVersioned(nw, WithParallel(ParallelSpec{Workers: 4}))
	if w := ve.Evaluator().ParallelWorkers(); w != 4 {
		t.Fatalf("pre-update width = %d, want 4", w)
	}
	reqs := withApproxTier(sweepRequests(ve.Network(), f.mechs, f.spec.Seed))
	ve.Evaluator().EvaluateBatch(reqs, 1) // warm the mechanism set
	if _, err := ve.Update(mutateForUpdate); err != nil {
		t.Fatal(err)
	}
	if w := ve.Evaluator().ParallelWorkers(); w != 4 {
		t.Fatalf("post-update width = %d, want 4 (options must carry across swaps)", w)
	}
	after := ve.Evaluator().EvaluateBatch(reqs, 1)
	cold := NewEvaluator(ve.Network(), WithParallel(ParallelSpec{Workers: 1})).EvaluateBatch(reqs, 1)
	for i := range after {
		if (after[i].Err == nil) != (cold[i].Err == nil) {
			t.Fatalf("req %d (%s): err %v vs %v", i, reqs[i].Mech, after[i].Err, cold[i].Err)
		}
		if after[i].Err == nil && (!sameOutcome(after[i].Outcome, cold[i].Outcome) || !sameCert(after[i].Cert, cold[i].Cert)) {
			t.Fatalf("post-update width-4 diverges from cold width-1 (req %d, %s)", i, reqs[i].Mech)
		}
	}
}

// TestParallelSpecValidation pins the typed-error contract: zero and
// negative widths are rejected with *ParallelSpecError (auto-width is
// the flag layer's job), and the panicking constructor panics.
func TestParallelSpecValidation(t *testing.T) {
	for _, w := range []int{0, -1, -8} {
		_, err := WithParallelChecked(ParallelSpec{Workers: w})
		var pe *ParallelSpecError
		if !errors.As(err, &pe) {
			t.Fatalf("WithParallelChecked(%d): err = %v, want *ParallelSpecError", w, err)
		}
		if pe.Workers != w {
			t.Fatalf("ParallelSpecError.Workers = %d, want %d", pe.Workers, w)
		}
	}
	if opt, err := WithParallelChecked(ParallelSpec{Workers: 2}); err != nil || opt == nil {
		t.Fatalf("WithParallelChecked(2): opt=%v err=%v", opt, err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("WithParallel(ParallelSpec{Workers: 0}) did not panic")
			}
		}()
		WithParallel(ParallelSpec{Workers: 0})
	}()
	ev := NewEvaluator(nil)
	if w := ev.ParallelWorkers(); w != 0 {
		t.Fatalf("default ParallelWorkers = %d, want 0 (serial tier)", w)
	}
}
