package query

import (
	"fmt"

	"wmcs/internal/engine"
)

// ParallelSpec configures deterministic intra-query parallelism
// (DESIGN.md §14): one expensive evaluation — the wireless-bb spider
// oracle's center scans, the sampled Shapley tier's permutation
// streams, the exact library enumeration — runs on Workers engine
// workers instead of one, with byte-identical output at every width.
// The parallel tier is opt-in because its reductions are shaped
// differently from the historical serial ones (fixed blocks and streams
// instead of one sequence): within the tier, width never changes a
// byte; across tiers, the sampled estimator's low bits differ.
type ParallelSpec struct {
	// Workers is the engine-pool width, ≥ 1. There is no "auto" value
	// here by design: resolution of 0-means-GOMAXPROCS happens at the
	// flag layer (wmcsd logs the resolved width at boot), so the
	// evaluator's configuration is always explicit and reproducible.
	Workers int
}

// ParallelSpecError reports a ParallelSpec whose width is not a positive
// worker count. Mirroring sharing.AgentLimitError, the spec is rejected
// with a typed error instead of silently falling back to serial — a
// silent fallback would mask a misconfigured deployment as a slow one.
type ParallelSpecError struct {
	Workers int // the rejected width
}

// Error implements error.
func (e *ParallelSpecError) Error() string {
	return fmt.Sprintf("query: ParallelSpec.Workers must be >= 1, got %d (resolve auto-width at the flag layer)", e.Workers)
}

// Validate returns a *ParallelSpecError when the spec is invalid.
func (sp ParallelSpec) Validate() error {
	if sp.Workers < 1 {
		return &ParallelSpecError{Workers: sp.Workers}
	}
	return nil
}

// WithParallel routes heavy evaluations through the parallel tier at the
// spec's width; it panics on an invalid spec — use WithParallelChecked
// to handle that as a typed error (the NewShapley/NewShapleyChecked
// pattern).
func WithParallel(spec ParallelSpec) Option {
	opt, err := WithParallelChecked(spec)
	if err != nil {
		panic(err.Error())
	}
	return opt
}

// WithParallelChecked is WithParallel returning *ParallelSpecError
// instead of panicking when the spec is invalid.
func WithParallelChecked(spec ParallelSpec) (Option, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return func(e *Evaluator) {
		e.pool = engine.New(spec.Workers)
		e.parallelWorkers = spec.Workers
		e.ctx.Pool = e.pool
	}, nil
}

// ParallelWorkers reports the configured parallel width, 0 when the
// evaluator runs the serial tier (the default).
func (e *Evaluator) ParallelWorkers() int { return e.parallelWorkers }
