package query

import (
	"sync"
	"sync/atomic"
	"time"

	"wmcs/internal/detorder"
	"wmcs/internal/memtred"
	"wmcs/internal/wireless"
)

// Versioned is one immutable network state and the evaluator serving
// it: the pair an atomic load of VersionedEvaluator.Current returns.
// Readers that grab a Versioned keep a consistent view for as long as
// they hold it — the network snapshot inside is never mutated again —
// so a query admitted against version v evaluates against exactly
// version v's costs even if a dozen updates land meanwhile.
type Versioned struct {
	// Ev is the evaluator over this version's frozen network snapshot.
	Ev *Evaluator
	// Version is the network's wireless.(*Network).Version() at the
	// moment this state was frozen.
	Version uint64
}

// VersionedEvaluator is the live-network face of the query engine
// (DESIGN.md §10): it owns a master copy of a mutable network and, per
// version, an immutable {snapshot, evaluator} pair. Reads are lock-free
// (one atomic pointer load); updates serialize on a mutex, mutate a
// private copy, rebuild the evaluator over it, warm the mechanisms the
// outgoing evaluator had built, and atomically swap the pair in.
// In-flight queries drain against the evaluator they were admitted
// with — an update never invalidates, blocks, or tears them.
type VersionedEvaluator struct {
	// mu serializes Update; Current is deliberately not behind it.
	mu   sync.Mutex
	opts []Option
	// live is the master network state. It is only read and replaced
	// inside Update (under mu); the evaluator in cur always holds the
	// same state, reachable lock-free.
	live *wireless.Network
	cur  atomic.Pointer[Versioned]
}

// NewVersioned wraps a network in a versioned evaluator. The network is
// snapshotted at entry, so the caller's copy can be mutated (or
// discarded) freely afterwards without affecting served results.
func NewVersioned(nw *wireless.Network, opts ...Option) *VersionedEvaluator {
	live := nw.Snapshot()
	v := &VersionedEvaluator{opts: opts, live: live}
	v.cur.Store(&Versioned{Ev: NewEvaluator(live, opts...), Version: live.Version()})
	return v
}

// Current returns the current {evaluator, version} pair in one atomic
// load. Callers serving a query must resolve Current once and use both
// fields from the same pair — reading the evaluator and the version in
// separate calls can interleave with an update and mislabel results.
func (v *VersionedEvaluator) Current() *Versioned { return v.cur.Load() }

// Evaluator returns the current evaluator (shorthand for callers that
// do not need the version).
func (v *VersionedEvaluator) Evaluator() *Evaluator { return v.Current().Ev }

// Version returns the current network version.
func (v *VersionedEvaluator) Version() uint64 { return v.Current().Version }

// Network returns the current version's frozen network snapshot. It is
// shared with the serving evaluator: treat it as read-only (mutate
// through Update only).
func (v *VersionedEvaluator) Network() *wireless.Network { return v.Current().Ev.Network() }

// UpdateResult reports what one Update did: the version transition, the
// rebuild wall clock, which rebuild path ran, and the inputs the
// serving layer's cache carry-forward pass needs (the accumulated
// delta and the frozen old/new network snapshots).
type UpdateResult struct {
	// OldVersion and NewVersion are the version transition; equal for a
	// no-op or failed update.
	OldVersion, NewVersion uint64
	// Rebuild is the evaluator construction + warm wall clock (0 for a
	// no-op), the figure the serving layer histograms — split by
	// Incremental.
	Rebuild time.Duration
	// Incremental reports that the delta path reused substrate: either
	// the update canceled out bitwise (Unchanged) or the MEMT→NWST
	// reduction was rebuilt incrementally from the outgoing evaluator's.
	Incremental bool
	// Unchanged reports the fast path for op sequences that cancel out
	// bitwise (a disable+enable round trip): the outgoing evaluator is
	// republished under the new version with zero rebuild, and every
	// cache entry of the old version remains valid verbatim.
	Unchanged bool
	// RebuiltMechs counts the mechanisms warmed onto the new evaluator
	// (0 on the Unchanged path).
	RebuiltMechs int
	// Delta is the accumulated change record of the update's ops.
	Delta wireless.Delta
	// OldNet and NewNet are the frozen pre/post network snapshots the
	// carry-forward predicates compare (nil for no-op/failed updates).
	OldNet, NewNet *wireless.Network
}

// Update applies mutate to a private copy of the live network and, if
// the copy's version advanced, swaps in an evaluator over it. The
// rules:
//
//   - mutate sees a snapshot: if it returns an error, nothing is
//     published — no version bump, no swap, and any partial mutations
//     it made die with the discarded copy (updates are atomic);
//   - a successful mutate that bumps nothing (every op a true no-op) is
//     a no-op: OldVersion == NewVersion and the current pair is
//     untouched;
//   - an op sequence that cancels out bitwise (StateEqual) republishes
//     the outgoing evaluator under the new version — zero rebuild, and
//     byte-identity is trivial because it IS the same evaluator;
//   - otherwise a new evaluator is built. When the accumulated delta
//     left rows clean (a single-row SetCost) and the outgoing evaluator
//     had built the MEMT→NWST reduction, the new one is seeded with an
//     incremental rebuild (memtred.Rebuild) — structurally identical to
//     a from-scratch build, so byte-identity is preserved while the
//     dominant per-update cost scales with the dirty rows, not n³. The
//     evaluator is then *warmed*: every mechanism name the outgoing
//     evaluator had built is rebuilt (in sorted name order), so the
//     serving path never pays first-query latency right after an
//     update. Mechanism instances are never carried across versions —
//     their trajectory memos observe the whole network, and DESIGN.md
//     §12.2 documents why every attempted carry predicate for them is
//     unsound. Rebuild is the construction+warm wall clock.
//
// WithoutDeltaRebuild disables the two reuse paths (the full-rebuild
// baseline E15b measures against). Concurrent readers keep whatever
// pair they already resolved; the swap only changes what later Current
// calls observe.
func (v *VersionedEvaluator) Update(mutate func(*wireless.Network) error) (UpdateResult, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	res := UpdateResult{OldVersion: v.live.Version()}
	res.NewVersion = res.OldVersion
	work := v.live.Snapshot()
	if err := mutate(work); err != nil {
		return res, err
	}
	res.Delta = work.TakeDelta()
	res.NewVersion = work.Version()
	if res.NewVersion == res.OldVersion {
		return res, nil
	}
	cur := v.cur.Load()
	res.OldNet = cur.Ev.Network()
	res.NewNet = work
	start := time.Now() //lint:wallclock rebuild-duration telemetry (UpdateResult.Rebuild feeds /statsz histograms); never reaches response bytes
	if !cur.Ev.noDelta && v.live.StateEqual(work) {
		res.Unchanged, res.Incremental = true, true
		res.Rebuild = time.Since(start) //lint:wallclock rebuild-duration telemetry; never reaches response bytes
		v.live = work
		v.cur.Store(&Versioned{Ev: cur.Ev, Version: res.NewVersion})
		return res, nil
	}
	next := NewEvaluator(work, v.opts...)
	// The mutation ops preserve the network class, so the supported set
	// is version-invariant — carry it instead of recomputing.
	next.setSupported(cur.Ev.Supported())
	if prev := cur.Ev.builtReduction(); prev != nil {
		if !cur.Ev.noDelta && !res.Delta.AllRowsDirty() && !res.Delta.NodeSetChanged {
			if rd := memtred.Rebuild(prev, work, res.Delta.DirtyRows); rd != nil {
				next.seedReduction(rd)
				res.Incremental = true
			}
		}
		if !res.Incremental {
			// The outgoing evaluator had paid for the reduction, so the
			// warm contract extends to it: rebuild from scratch now
			// rather than on the first post-update wireless-bb query.
			// (The incremental branch above already installed one.)
			next.Reduction()
		}
	}
	for _, name := range cur.Ev.BuiltNames() {
		if _, err := next.Mechanism(name); err != nil {
			// A name the old evaluator built can only fail here if mutate
			// swapped in an impossible state — refuse to publish it.
			res.NewVersion = res.OldVersion
			res.Incremental, res.Rebuild, res.RebuiltMechs = false, 0, 0
			return res, err
		}
		res.RebuiltMechs++
	}
	res.Rebuild = time.Since(start) //lint:wallclock rebuild-duration telemetry; never reaches response bytes
	v.live = work
	v.cur.Store(&Versioned{Ev: next, Version: res.NewVersion})
	return res, nil
}

// BuiltNames lists, sorted, the mechanism names this evaluator has
// built so far — the working set a versioned swap warms on the
// replacement evaluator.
func (e *Evaluator) BuiltNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return detorder.Keys(e.mechs)
}
