package query

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wmcs/internal/wireless"
)

// Versioned is one immutable network state and the evaluator serving
// it: the pair an atomic load of VersionedEvaluator.Current returns.
// Readers that grab a Versioned keep a consistent view for as long as
// they hold it — the network snapshot inside is never mutated again —
// so a query admitted against version v evaluates against exactly
// version v's costs even if a dozen updates land meanwhile.
type Versioned struct {
	// Ev is the evaluator over this version's frozen network snapshot.
	Ev *Evaluator
	// Version is the network's wireless.(*Network).Version() at the
	// moment this state was frozen.
	Version uint64
}

// VersionedEvaluator is the live-network face of the query engine
// (DESIGN.md §10): it owns a master copy of a mutable network and, per
// version, an immutable {snapshot, evaluator} pair. Reads are lock-free
// (one atomic pointer load); updates serialize on a mutex, mutate a
// private copy, rebuild the evaluator over it, warm the mechanisms the
// outgoing evaluator had built, and atomically swap the pair in.
// In-flight queries drain against the evaluator they were admitted
// with — an update never invalidates, blocks, or tears them.
type VersionedEvaluator struct {
	// mu serializes Update; Current is deliberately not behind it.
	mu   sync.Mutex
	opts []Option
	// live is the master network state. It is only read and replaced
	// inside Update (under mu); the evaluator in cur always holds the
	// same state, reachable lock-free.
	live *wireless.Network
	cur  atomic.Pointer[Versioned]
}

// NewVersioned wraps a network in a versioned evaluator. The network is
// snapshotted at entry, so the caller's copy can be mutated (or
// discarded) freely afterwards without affecting served results.
func NewVersioned(nw *wireless.Network, opts ...Option) *VersionedEvaluator {
	live := nw.Snapshot()
	v := &VersionedEvaluator{opts: opts, live: live}
	v.cur.Store(&Versioned{Ev: NewEvaluator(live, opts...), Version: live.Version()})
	return v
}

// Current returns the current {evaluator, version} pair in one atomic
// load. Callers serving a query must resolve Current once and use both
// fields from the same pair — reading the evaluator and the version in
// separate calls can interleave with an update and mislabel results.
func (v *VersionedEvaluator) Current() *Versioned { return v.cur.Load() }

// Evaluator returns the current evaluator (shorthand for callers that
// do not need the version).
func (v *VersionedEvaluator) Evaluator() *Evaluator { return v.Current().Ev }

// Version returns the current network version.
func (v *VersionedEvaluator) Version() uint64 { return v.Current().Version }

// Network returns the current version's frozen network snapshot. It is
// shared with the serving evaluator: treat it as read-only (mutate
// through Update only).
func (v *VersionedEvaluator) Network() *wireless.Network { return v.Current().Ev.Network() }

// Update applies mutate to a private copy of the live network and, if
// the copy's version advanced, swaps in a freshly built evaluator over
// it. The rules:
//
//   - mutate sees a snapshot: if it returns an error, nothing is
//     published — no version bump, no swap, and any partial mutations
//     it made die with the discarded copy (updates are atomic);
//   - a successful mutate that bumps nothing (an empty delta) is a
//     no-op: oldVer == newVer and the current pair is untouched;
//   - otherwise the new evaluator is *warmed* before the swap: every
//     mechanism name the outgoing evaluator had built is rebuilt over
//     the new substrate (in sorted name order), so the serving path
//     never pays first-query substrate-construction latency right
//     after an update. rebuild is the construction+warm wall clock —
//     the figure the serving layer histograms.
//
// Concurrent readers keep whatever pair they already resolved; the swap
// only changes what later Current calls observe.
func (v *VersionedEvaluator) Update(mutate func(*wireless.Network) error) (oldVer, newVer uint64, rebuild time.Duration, err error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	oldVer = v.live.Version()
	work := v.live.Snapshot()
	if err := mutate(work); err != nil {
		return oldVer, oldVer, 0, err
	}
	newVer = work.Version()
	if newVer == oldVer {
		return oldVer, oldVer, 0, nil
	}
	start := time.Now()
	next := NewEvaluator(work, v.opts...)
	for _, name := range v.cur.Load().Ev.BuiltNames() {
		if _, err := next.Mechanism(name); err != nil {
			// Mutation ops preserve the network class, so a name the old
			// evaluator built can only fail here if mutate swapped in an
			// impossible state — refuse to publish it.
			return oldVer, oldVer, 0, err
		}
	}
	rebuild = time.Since(start)
	v.live = work
	v.cur.Store(&Versioned{Ev: next, Version: newVer})
	return oldVer, newVer, rebuild, nil
}

// BuiltNames lists, sorted, the mechanism names this evaluator has
// built so far — the working set a versioned swap warms on the
// replacement evaluator.
func (e *Evaluator) BuiltNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.mechs))
	for name := range e.mechs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
